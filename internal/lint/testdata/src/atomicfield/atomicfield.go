// Package atomicfield exercises the atomicfield analyzer: fields of
// //amg:atomic structs are only touched through atomic methods.
package atomicfield

import "sync/atomic"

// counters is the audited set, mirroring the serve metrics struct.
//
//amg:atomic
type counters struct {
	hits   atomic.Int64
	misses atomic.Int64
	flag   atomic.Bool
	plain  int64 // want `not a sync/atomic type`
}

// free is unannotated: plain fields and accesses are fine.
type free struct{ n int64 }

func allowed(c *counters) int64 {
	c.hits.Add(1)
	c.flag.Store(true)
	g := &c.misses // address-of: the atomic free-function form
	g.Add(1)
	return c.hits.Load()
}

func mixed(c *counters) {
	v := c.hits // want `accessed non-atomically`
	_ = v
	c.misses = atomic.Int64{} // want `accessed non-atomically`
	if c.hits.Load() > 0 {    // method receiver: fine
		c.misses.Add(1)
	}
	f := free{n: 1}
	f.n++ // unannotated struct: fine
}
