package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// SentinelIs enforces the classified-error contract: sentinel errors
// (krylov.ErrDiverged, serve.ErrPanic, amg.ErrCanceled, ...) travel
// wrapped, so they must be compared with errors.Is and wrapped with %w:
//
//   - err == sentinel / err != sentinel comparisons between two
//     error-typed operands are flagged (nil comparisons are fine)
//   - switch statements over an error-typed tag are flagged per case
//   - fmt.Errorf calls formatting an error with anything but %w are
//     flagged (a %v/%s-formatted error breaks the errors.Is chain)
//
// Test files are included: a test comparing with == passes today and
// silently stops checking anything the first time a layer wraps.
var SentinelIs = &Analyzer{
	Name: "sentinelis",
	Doc:  "check sentinel errors are compared with errors.Is and wrapped with %w",
	Run:  runSentinelIs,
}

func runSentinelIs(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isErrorExpr(info, n.X) && isErrorExpr(info, n.Y) {
					pass.Reportf(n.Pos(), "error compared with %s: use errors.Is (sentinels travel wrapped)", n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorExpr(info, n.Tag) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if isErrorExpr(info, e) {
							pass.Reportf(e.Pos(), "error switched by identity: use errors.Is (sentinels travel wrapped)")
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// isErrorExpr reports whether e's static type implements error and e is
// not a nil literal. Interface-typed operands are what == comparisons
// against sentinels look like; concrete error types are included for
// switch cases.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	if isUntypedNil(info, e) {
		return false
	}
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t != nil && types.Implements(t, errorIface) {
			pass.Reportf(arg.Pos(), "error formatted without %%w breaks the errors.Is chain: wrap it or format err.Error()")
			return
		}
	}
}
