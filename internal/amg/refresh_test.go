// Tests for the symbolic/numeric setup split: BuildSymbolic+BuildNumeric
// and Refresh must produce hierarchies bitwise identical to a fresh
// Build on the same values, for every worker count, and Refresh must
// reject pattern mismatches cleanly.
package amg

import (
	"strings"
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/sparse"
)

var refreshWorkerCounts = []int{1, 2, 8}

// refreshProblems returns the same-pattern test operators: a Laplace3D
// stencil matrix and an irregular weighted FEM-like Laplacian.
func refreshProblems() map[string]*sparse.Matrix {
	return map[string]*sparse.Matrix{
		"laplace3d":   gen.Laplacian(gen.Laplace3D(12, 12, 12), 0.05),
		"weightedfem": gen.WeightedLaplacian(gen.RandomFEM(8, 8, 8, 14, 3), 0.1, 11),
	}
}

// rescale returns a copy of a with deterministically perturbed values on
// the identical pattern (an SPD-preserving global + per-entry scaling).
func rescale(a *sparse.Matrix, seed int) *sparse.Matrix {
	b := a.Clone()
	s := 1 + 0.25*float64(seed%3)
	for p := range b.Val {
		b.Val[p] *= s
	}
	return b
}

// hierarchiesEqual compares two hierarchies bitwise: level operators,
// prolongators, restrictions, inverse diagonals, spectral radii, and the
// dense coarse factorization.
func hierarchiesEqual(t *testing.T, label string, got, want *Hierarchy) {
	t.Helper()
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("%s: %d levels, want %d", label, len(got.Levels), len(want.Levels))
	}
	eqMatrix := func(what string, g, w *sparse.Matrix) {
		t.Helper()
		if g == nil || w == nil {
			if g != w {
				t.Fatalf("%s: %s nil mismatch", label, what)
			}
			return
		}
		if g.Rows != w.Rows || g.Cols != w.Cols || len(g.Col) != len(w.Col) {
			t.Fatalf("%s: %s shape/nnz mismatch", label, what)
		}
		for i := range w.RowPtr {
			if g.RowPtr[i] != w.RowPtr[i] {
				t.Fatalf("%s: %s RowPtr[%d] differs", label, what, i)
			}
		}
		for p := range w.Col {
			if g.Col[p] != w.Col[p] {
				t.Fatalf("%s: %s Col[%d] differs", label, what, p)
			}
			if g.Val[p] != w.Val[p] {
				t.Fatalf("%s: %s Val[%d] = %v, want %v (not bitwise identical)", label, what, p, g.Val[p], w.Val[p])
			}
		}
	}
	for k := range want.Levels {
		gl, wl := got.Levels[k], want.Levels[k]
		eqMatrix("A", gl.A, wl.A)
		eqMatrix("P", gl.P, wl.P)
		eqMatrix("R", gl.R, wl.R)
		if gl.rho != wl.rho {
			t.Fatalf("%s: level %d rho %v, want %v", label, k, gl.rho, wl.rho)
		}
		for i := range wl.dinv {
			if gl.dinv[i] != wl.dinv[i] {
				t.Fatalf("%s: level %d dinv[%d] differs", label, k, i)
			}
		}
	}
	if got.coarse.N != want.coarse.N {
		t.Fatalf("%s: coarse order %d, want %d", label, got.coarse.N, want.coarse.N)
	}
	for i := range want.coarse.Data {
		if got.coarse.Data[i] != want.coarse.Data[i] {
			t.Fatalf("%s: coarse factor entry %d differs", label, i)
		}
	}
}

// preconditionOnce applies one V-cycle to a fixed residual, for
// comparing smoother state (gsOp) that hierarchiesEqual cannot inspect
// structurally.
func preconditionOnce(h *Hierarchy) []float64 {
	n := h.Levels[0].A.Rows
	r := make([]float64, n)
	z := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	h.Precondition(r, z)
	return z
}

func TestRefreshDeterministicAcrossWorkers(t *testing.T) {
	for name, a := range refreshProblems() {
		for _, w := range refreshWorkerCounts {
			opt := Options{Threads: w, MinCoarseSize: 60}
			// The split phases must reproduce the one-shot Build.
			h, err := BuildSymbolic(a, opt)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, w, err)
			}
			if err := h.BuildNumeric(a); err != nil {
				t.Fatalf("%s/%d: %v", name, w, err)
			}
			want, err := Build(a, opt)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, w, err)
			}
			hierarchiesEqual(t, name+"/split-vs-build", h, want)

			// Refresh with perturbed values must equal a fresh Build on
			// those values — including after several refreshes.
			for seed := 1; seed <= 3; seed++ {
				a2 := rescale(a, seed)
				if err := h.Refresh(a2); err != nil {
					t.Fatalf("%s/%d: refresh %d: %v", name, w, seed, err)
				}
				want2, err := Build(a2, opt)
				if err != nil {
					t.Fatalf("%s/%d: %v", name, w, err)
				}
				hierarchiesEqual(t, name+"/refresh-vs-build", h, want2)
			}

			// Refreshing back to the original values restores the original
			// hierarchy exactly.
			if err := h.Refresh(a); err != nil {
				t.Fatalf("%s/%d: %v", name, w, err)
			}
			hierarchiesEqual(t, name+"/refresh-roundtrip", h, want)
		}
	}
}

func TestRefreshDeterministicSmootherVariants(t *testing.T) {
	a := gen.Laplacian(gen.Laplace3D(10, 10, 10), 0.05)
	a2 := rescale(a, 1)
	for name, opt := range map[string]Options{
		"chebyshev":  {MinCoarseSize: 60, Smoother: SmootherChebyshev},
		"pointsgs":   {MinCoarseSize: 60, Smoother: SmootherPointSGS, PreSweeps: 1, PostSweeps: 1},
		"clustersgs": {MinCoarseSize: 60, Smoother: SmootherClusterSGS, PreSweeps: 1, PostSweeps: 1},
		"unsmoothed": {MinCoarseSize: 60, UnsmoothedProlongator: true},
	} {
		h, err := Build(a, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := h.Refresh(a2); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := Build(a2, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hierarchiesEqual(t, name, h, want)
		// One V-cycle application must match bitwise too (this covers the
		// rebuilt Gauss-Seidel operators).
		zg, zw := preconditionOnce(h), preconditionOnce(want)
		for i := range zw {
			if zg[i] != zw[i] {
				t.Fatalf("%s: V-cycle output %d differs after refresh", name, i)
			}
		}
	}
}

func TestRefreshRejectsPatternMismatch(t *testing.T) {
	a := gen.Laplacian(gen.Laplace3D(8, 8, 8), 0.05)
	h, err := Build(a, Options{MinCoarseSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Different size.
	other := gen.Laplacian(gen.Laplace3D(8, 8, 9), 0.05)
	if err := h.Refresh(other); err == nil {
		t.Fatal("refresh with different dimensions not rejected")
	}
	// Same size, different pattern (an extra stencil connection).
	same := gen.Laplacian(gen.RandomFEM(8, 8, 8, 10, 5), 0.05)
	if same.Rows == a.Rows {
		if err := h.Refresh(same); err == nil {
			t.Fatal("refresh with different pattern not rejected")
		} else if !strings.Contains(err.Error(), "pattern") {
			t.Fatalf("pattern mismatch error not descriptive: %v", err)
		}
	}
	// Non-finite values.
	bad := a.Clone()
	bad.Val[0] = bad.Val[0] / 0.0 // +Inf
	if err := h.Refresh(bad); err == nil {
		t.Fatal("refresh with non-finite values not rejected")
	}
	// The hierarchy is still usable after rejected refreshes.
	if err := h.Refresh(a); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshRejectsZeroDiagonal(t *testing.T) {
	a := gen.Laplacian(gen.Laplace3D(8, 8, 8), 0.05)
	h, err := Build(a, Options{MinCoarseSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	bad := a.Clone()
	for p := bad.RowPtr[3]; p < bad.RowPtr[4]; p++ {
		if int(bad.Col[p]) == 3 {
			bad.Val[p] = 0
		}
	}
	before := preconditionOnce(h)
	if err := h.Refresh(bad); err == nil {
		t.Fatal("refresh with zero diagonal not rejected")
	} else if !strings.Contains(err.Error(), "zero diagonal") {
		t.Fatalf("zero-diagonal error not descriptive: %v", err)
	}
	// The rejection happened before any level state was touched: the
	// hierarchy still reports valid and keeps serving the previous
	// operator, bitwise unchanged.
	if !h.Valid() {
		t.Fatal("pre-mutation rejection invalidated the hierarchy")
	}
	after := preconditionOnce(h)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("V-cycle result changed after rejected refresh at %d: %g vs %g", i, before[i], after[i])
		}
	}
	want, err := Build(a, Options{MinCoarseSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	hierarchiesEqual(t, "after-rejected-refresh", h, want)
	// A subsequent good refresh still works.
	if err := h.Refresh(rescale(a, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshRejectsMissingAndSignFlippedDiagonal(t *testing.T) {
	a := gen.Laplacian(gen.Laplace3D(8, 8, 8), 0.05)
	h, err := Build(a, Options{MinCoarseSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	before := preconditionOnce(h)

	// A sign-flipped diagonal entry (the operator turning indefinite on
	// the identical pattern) must be rejected pre-mutation.
	flip := a.Clone()
	for p := flip.RowPtr[5]; p < flip.RowPtr[6]; p++ {
		if int(flip.Col[p]) == 5 {
			flip.Val[p] = -flip.Val[p]
		}
	}
	if err := h.Refresh(flip); err == nil {
		t.Fatal("refresh with sign-flipped diagonal not rejected")
	} else if !strings.Contains(err.Error(), "sign flip") {
		t.Fatalf("sign-flip error not descriptive: %v", err)
	}
	if !h.Valid() {
		t.Fatal("sign-flip rejection invalidated the hierarchy")
	}
	after := preconditionOnce(h)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("V-cycle result changed after rejected refresh at %d", i)
		}
	}
	// A uniformly negated operator is still sign-consistent per row
	// against its own previous state only if signs match; flipping every
	// diagonal is also a flip relative to the built state and must be
	// rejected too.
	neg := a.Clone()
	neg.Scale(-1)
	if err := h.Refresh(neg); err == nil {
		t.Fatal("refresh with fully negated operator not rejected")
	}
	// The hierarchy remains usable for the original values.
	if err := h.Refresh(a); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSymbolicLeavesValuesToNumeric(t *testing.T) {
	// BuildNumeric on a hierarchy built symbolically from one value set
	// but filled from another must match Build of the second set: the
	// symbolic phase must not capture any value-dependent state.
	a := gen.Laplacian(gen.Laplace3D(10, 10, 10), 0.05)
	a2 := rescale(a, 2)
	h, err := BuildSymbolic(a, Options{MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.BuildNumeric(a2); err != nil {
		t.Fatal(err)
	}
	want, err := Build(a2, Options{MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	hierarchiesEqual(t, "symbolic-then-other-values", h, want)
}

// TestBuildRejectsMissingDiagonal: a pattern with no stored diagonal in
// some row cannot produce a usable numeric state; validateValues'
// missing-entry (diagPos < 0) branch must reject it.
func TestBuildRejectsMissingDiagonal(t *testing.T) {
	a := gen.Laplacian(gen.Laplace2D(6, 6), 0.05)
	// Rebuild the CSR with row 3's diagonal entry deleted.
	b := &sparse.Matrix{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int, 1, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if i == 3 && int(a.Col[p]) == 3 {
				continue
			}
			b.Col = append(b.Col, a.Col[p])
			b.Val = append(b.Val, a.Val[p])
		}
		b.RowPtr = append(b.RowPtr, len(b.Col))
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(b, Options{}); err == nil {
		t.Fatal("matrix with missing diagonal entry accepted")
	} else if !strings.Contains(err.Error(), "zero diagonal") {
		t.Fatalf("missing-diagonal error not descriptive: %v", err)
	}
}

// TestRefreshDeepNumericFailureInvalidates: a value set that passes the
// pre-mutation validation but fails mid-replay (here: a singular coarse
// factorization) must invalidate the hierarchy — Valid reports false
// and Precondition panics — until a subsequent numeric pass succeeds.
func TestRefreshDeepNumericFailureInvalidates(t *testing.T) {
	a := &sparse.Matrix{Rows: 2, Cols: 2,
		RowPtr: []int{0, 2, 4}, Col: []int32{0, 1, 0, 1}, Val: []float64{2, 1, 1, 2}}
	h, err := Build(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Positive diagonal, finite, same signs — but singular: the dense
	// coarse factorization fails after the level state was refreshed.
	sing := a.Clone()
	copy(sing.Val, []float64{1, 1, 1, 1})
	if err := h.Refresh(sing); err == nil {
		t.Fatal("singular refresh not rejected")
	}
	if h.Valid() {
		t.Fatal("deep numeric failure left the hierarchy marked valid")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Precondition on an invalidated hierarchy did not panic")
			}
		}()
		preconditionOnce(h)
	}()
	if err := h.Refresh(a); err != nil {
		t.Fatal(err)
	}
	if !h.Valid() {
		t.Fatal("successful refresh did not restore validity")
	}
	preconditionOnce(h)
}

// TestBuildNumericIsHistoryIndependent: BuildNumeric is a full numeric
// rebuild — "values may differ" — so unlike Refresh it must accept a
// sign-changed operator regardless of what was built before, and the
// result must equal building the negated operator directly.
func TestBuildNumericIsHistoryIndependent(t *testing.T) {
	a := gen.Laplacian(gen.Laplace3D(8, 8, 8), 0.05)
	neg := a.Clone()
	neg.Scale(-1)
	h, err := Build(a, Options{MinCoarseSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.BuildNumeric(neg); err != nil {
		t.Fatalf("BuildNumeric rejected sign-changed values after a prior numeric pass: %v", err)
	}
	want, err := Build(neg, Options{MinCoarseSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	hierarchiesEqual(t, "rebuild-negated", h, want)
	// Refresh keeps its stricter same-operator contract.
	if err := h.Refresh(a); err == nil {
		t.Fatal("Refresh accepted a sign flip relative to the current operator")
	}
}
