package partition

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mis2go/internal/gen"
	"mis2go/internal/graph"
)

func randomGraph(n, m int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}
	return graph.FromEdges(n, edges)
}

func TestFromCSRUnitWeights(t *testing.T) {
	g := gen.Laplace2D(5, 5)
	wg := FromCSR(g)
	if wg.TotalVW() != 25 {
		t.Fatalf("total VW = %d", wg.TotalVW())
	}
	for _, w := range wg.EW {
		if w != 1 {
			t.Fatal("edge weight not unit")
		}
	}
}

func TestCoarsenPreservesWeight(t *testing.T) {
	g := gen.Laplace2D(10, 10)
	wg := FromCSR(g)
	// Pair vertices (v, v+1) into 50 aggregates.
	labels := make([]int32, 100)
	for v := range labels {
		labels[v] = int32(v / 2)
	}
	cg := wg.Coarsen(labels, 50)
	if cg.N != 50 {
		t.Fatalf("coarse N = %d", cg.N)
	}
	if cg.TotalVW() != wg.TotalVW() {
		t.Fatalf("vertex weight not preserved: %d vs %d", cg.TotalVW(), wg.TotalVW())
	}
	// Edge weight conservation: coarse edge weight total + intra-aggregate
	// edges = fine total.
	fineTotal := int64(0)
	for _, w := range wg.EW {
		fineTotal += w
	}
	fineTotal /= 2
	coarseTotal := int64(0)
	for _, w := range cg.EW {
		coarseTotal += w
	}
	coarseTotal /= 2
	intra := int64(0)
	for v := 0; v < wg.N; v++ {
		for p := wg.RowPtr[v]; p < wg.RowPtr[v+1]; p++ {
			w := wg.Col[p]
			if int32(v) < w && labels[v] == labels[w] {
				intra += wg.EW[p]
			}
		}
	}
	if coarseTotal+intra != fineTotal {
		t.Fatalf("edge weight leak: coarse %d + intra %d != fine %d", coarseTotal, intra, fineTotal)
	}
}

func TestCoarsenDeterministic(t *testing.T) {
	g := randomGraph(200, 800, 9)
	wg := FromCSR(g)
	labels := make([]int32, g.N)
	for v := range labels {
		labels[v] = int32(v % 40)
	}
	a := wg.Coarsen(labels, 40)
	b := wg.Coarsen(labels, 40)
	if len(a.Col) != len(b.Col) {
		t.Fatal("nondeterministic coarsening")
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] || a.EW[i] != b.EW[i] {
			t.Fatal("nondeterministic coarsening (map order leaked)")
		}
	}
}

func TestHEMIsValidAggregation(t *testing.T) {
	f := func(seed int64) bool {
		n := 4 + int(uint64(seed)%150)
		g := randomGraph(n, 3*n, seed)
		agg := HEM(FromCSR(g))
		if len(agg.Labels) != n {
			return false
		}
		// Every aggregate has 1 or 2 vertices (it is a matching).
		size := make([]int, agg.NumAggregates)
		for _, a := range agg.Labels {
			if a < 0 || int(a) >= agg.NumAggregates {
				return false
			}
			size[a]++
		}
		for _, s := range size {
			if s < 1 || s > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHEMMatchesAdjacentVertices(t *testing.T) {
	g := gen.Laplace2D(12, 12)
	wg := FromCSR(g)
	agg := HEM(wg)
	// Matched pairs must be adjacent.
	byAgg := map[int32][]int32{}
	for v, a := range agg.Labels {
		byAgg[a] = append(byAgg[a], int32(v))
	}
	for _, vs := range byAgg {
		if len(vs) == 2 && !g.HasEdge(vs[0], vs[1]) {
			t.Fatalf("matched non-adjacent vertices %v", vs)
		}
	}
	// On a grid, most vertices should be matched (few singletons).
	singles := 0
	for _, vs := range byAgg {
		if len(vs) == 1 {
			singles++
		}
	}
	if singles > g.N/4 {
		t.Fatalf("too many singletons: %d of %d aggregates", singles, agg.NumAggregates)
	}
}

func TestPartitionGrid(t *testing.T) {
	g := gen.Laplace2D(32, 32)
	for _, pol := range []Policy{MIS2Policy, HEMPolicy} {
		res, err := Partition(g, Options{Policy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if err := Check(FromCSR(g), res.Part, 2); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Balance > 1.10 {
			t.Fatalf("%v: balance %.3f too lax", pol, res.Balance)
		}
		// A 32x32 grid has an ideal bisection cut of 32; multilevel with
		// greedy refinement should stay within a small factor.
		if res.EdgeCut > 4*32 {
			t.Fatalf("%v: edge cut %d far from optimal 32", pol, res.EdgeCut)
		}
		if res.Levels < 2 {
			t.Fatalf("%v: no multilevel structure (%d levels)", pol, res.Levels)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := randomGraph(500, 2000, 21)
	for _, pol := range []Policy{MIS2Policy, HEMPolicy} {
		a, err := Partition(g, Options{Policy: pol, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Partition(g, Options{Policy: pol, Threads: 8})
		if err != nil {
			t.Fatal(err)
		}
		if a.EdgeCut != b.EdgeCut {
			t.Fatalf("%v: cut differs across thread counts: %d vs %d", pol, a.EdgeCut, b.EdgeCut)
		}
		for v := range a.Part {
			if a.Part[v] != b.Part[v] {
				t.Fatalf("%v: partition differs across thread counts", pol)
			}
		}
	}
}

func TestPartitionBeatsNaiveSplit(t *testing.T) {
	// Multilevel partitioning must beat the trivial first-half/second-half
	// split on a random graph (where index order is meaningless).
	g := randomGraph(600, 3600, 5)
	wg := FromCSR(g)
	naive := make([]int32, g.N)
	for v := g.N / 2; v < g.N; v++ {
		naive[v] = 1
	}
	naiveCut := EdgeCut(wg, naive)
	res, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut >= naiveCut {
		t.Fatalf("multilevel cut %d not better than naive %d", res.EdgeCut, naiveCut)
	}
}

func TestMIS2CoarseningCompetitiveWithHEM(t *testing.T) {
	// Gilbert et al. (cited in the paper) find MIS-2 coarsening
	// outperforms HEM for regular graphs. Require MIS-2 to be at least
	// competitive (within 1.5x) on a regular mesh.
	g := gen.Laplace3D(12, 12, 12)
	mis2, err := Partition(g, Options{Policy: MIS2Policy})
	if err != nil {
		t.Fatal(err)
	}
	hem, err := Partition(g, Options{Policy: HEMPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if float64(mis2.EdgeCut) > 1.5*float64(hem.EdgeCut)+8 {
		t.Fatalf("MIS-2 cut %d not competitive with HEM cut %d", mis2.EdgeCut, hem.EdgeCut)
	}
}

func TestRefineImprovesGrownBisection(t *testing.T) {
	g := gen.Laplace2D(24, 24)
	wg := FromCSR(g)
	part := growBisect(wg)
	before := EdgeCut(wg, part)
	refine(wg, part, Options{}.withDefaults())
	after := EdgeCut(wg, part)
	if after > before {
		t.Fatalf("refinement worsened the cut: %d -> %d", before, after)
	}
}

func TestEdgeCutAndBalance(t *testing.T) {
	// 4-cycle split into adjacent pairs: cut = 2.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	wg := FromCSR(g)
	part := []int32{0, 0, 1, 1}
	if cut := EdgeCut(wg, part); cut != 2 {
		t.Fatalf("cut = %d, want 2", cut)
	}
	if b := balance(wg, part); b != 1.0 {
		t.Fatalf("balance = %f, want 1", b)
	}
}

func TestCheckCatchesBadPartitions(t *testing.T) {
	g := gen.Laplace2D(4, 4)
	wg := FromCSR(g)
	if err := Check(wg, make([]int32, 3), 2); err == nil {
		t.Fatal("length mismatch not caught")
	} else if !strings.Contains(err.Error(), "3 labels for 16 vertices") {
		t.Fatalf("length mismatch error not descriptive: %v", err)
	}
	bad := make([]int32, 16)
	bad[0] = 7
	if err := Check(wg, bad, 2); err == nil {
		t.Fatal("out-of-range part id not caught")
	} else if !strings.Contains(err.Error(), "part[0] = 7 out of range [0, 2)") {
		t.Fatalf("out-of-range error not descriptive: %v", err)
	}
	bad[0] = -1
	if err := Check(wg, bad, 2); err == nil {
		t.Fatal("negative part id not caught")
	}
	if err := Check(wg, make([]int32, 16), 2); err == nil {
		t.Fatal("empty side not caught")
	} else if !strings.Contains(err.Error(), "part 1 of 2 is empty") {
		t.Fatalf("empty-part error not descriptive: %v", err)
	}
	if err := Check(wg, make([]int32, 16), 0); err == nil {
		t.Fatal("nonpositive k not caught")
	}
	// A graph with fewer vertices than parts legitimately has empty
	// parts (KWay leaves unsplittable subgraphs in the low half).
	small := FromCSR(gen.Laplace2D(2, 1))
	if err := Check(small, []int32{0, 2}, 4); err != nil {
		t.Fatalf("sparse labeling of a tiny graph rejected: %v", err)
	}
}

func TestCheckKWayLabels(t *testing.T) {
	g := gen.Laplace2D(16, 16)
	res, err := KWay(g, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(FromCSR(g), res.Part, res.K); err != nil {
		t.Fatalf("KWay result fails Check: %v", err)
	}
	// Labels valid for k=8 are also valid for any larger power, minus
	// the empty-part requirement which the vertex count disables here.
	if err := Check(FromCSR(g), res.Part, 4); err == nil {
		t.Fatal("labels >= k not caught")
	}
}

func TestPartitionTooSmall(t *testing.T) {
	if _, err := Partition(graph.FromEdges(1, nil), Options{}); err == nil {
		t.Fatal("singleton graph must be rejected")
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two disjoint 4x4 grids: the ideal bisection cuts zero edges.
	var edges []graph.Edge
	idx := func(b, x, y int) int32 { return int32(b*16 + y*4 + x) }
	for b := 0; b < 2; b++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				if x+1 < 4 {
					edges = append(edges, graph.Edge{U: idx(b, x, y), V: idx(b, x+1, y)})
				}
				if y+1 < 4 {
					edges = append(edges, graph.Edge{U: idx(b, x, y), V: idx(b, x, y+1)})
				}
			}
		}
	}
	g := graph.FromEdges(32, edges)
	res, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != 0 {
		t.Fatalf("disconnected graph bisection should cut 0, cut %d", res.EdgeCut)
	}
	if res.Balance > 1.01 {
		t.Fatalf("balance %.3f", res.Balance)
	}
}

func TestKWayPartition(t *testing.T) {
	g := gen.Laplace2D(24, 24)
	for _, k := range []int{2, 4, 8} {
		res, err := KWay(g, k, Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.K != k {
			t.Fatalf("k=%d: reported K %d", k, res.K)
		}
		counts := make([]int, k)
		for _, p := range res.Part {
			if p < 0 || int(p) >= k {
				t.Fatalf("k=%d: part %d out of range", k, p)
			}
			counts[p]++
		}
		for part, c := range counts {
			if c == 0 {
				t.Fatalf("k=%d: part %d empty", k, part)
			}
		}
		if res.Balance > 1.5 {
			t.Fatalf("k=%d: balance %.3f", k, res.Balance)
		}
		if res.EdgeCut <= 0 {
			t.Fatalf("k=%d: zero cut on connected mesh", k)
		}
	}
}

func TestKWayRejectsBadK(t *testing.T) {
	g := gen.Laplace2D(8, 8)
	for _, k := range []int{0, 1, 3, 6} {
		if _, err := KWay(g, k, Options{}); err == nil {
			t.Fatalf("k=%d accepted", k)
		}
	}
}

func TestKWayMoreCutsThanBisection(t *testing.T) {
	g := gen.Laplace2D(20, 20)
	r2, err := KWay(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := KWay(g, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r8.EdgeCut <= r2.EdgeCut {
		t.Fatalf("8-way cut %d not larger than 2-way %d", r8.EdgeCut, r2.EdgeCut)
	}
}

func TestStructureSharesStorage(t *testing.T) {
	g := gen.Laplace2D(6, 6)
	wg := FromCSR(g)
	s := wg.Structure()
	if s.N != wg.N || &s.Col[0] != &wg.Col[0] {
		t.Fatal("Structure must share the adjacency storage")
	}
}

func TestKWayDeterministic(t *testing.T) {
	g := randomGraph(300, 1500, 3)
	a, err := KWay(g, 4, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KWay(g, 4, Options{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCut != b.EdgeCut {
		t.Fatalf("k-way cut differs across thread counts: %d vs %d", a.EdgeCut, b.EdgeCut)
	}
	for v := range a.Part {
		if a.Part[v] != b.Part[v] {
			t.Fatal("k-way partition differs across thread counts")
		}
	}
}

func TestKWayLargePartCount(t *testing.T) {
	// 512 parts exceeds the old uint8 ceiling of 256: every label must
	// survive the int32 widening and every part must be nonempty.
	g := gen.Laplace2D(48, 48)
	res, err := KWay(g, 512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(FromCSR(g), res.Part, 512); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	for _, p := range res.Part {
		seen[p] = true
	}
	if len(seen) != 512 {
		t.Fatalf("only %d of 512 parts populated", len(seen))
	}
	if res.Balance > 2.5 {
		t.Fatalf("balance %.3f", res.Balance)
	}
}

func TestPartitionFingerprint(t *testing.T) {
	g := gen.Laplace2D(20, 20)
	a, err := KWay(g, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KWay(g, 8, Options{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint not deterministic across thread counts")
	}
	if a.Fingerprint() == 0 {
		t.Fatal("zero fingerprint")
	}
	// Same labels, different k: distinct fingerprints (k is folded in).
	if Fingerprint(8, a.Part) == Fingerprint(16, a.Part) {
		t.Fatal("fingerprint ignores k")
	}
	// A single moved vertex must change the fingerprint.
	mut := append([]int32(nil), a.Part...)
	mut[len(mut)/2] = (mut[len(mut)/2] + 1) % 8
	if Fingerprint(8, mut) == a.Fingerprint() {
		t.Fatal("fingerprint ignores labels")
	}
	// Position sensitivity: swapping two different labels changes it.
	i, j := -1, -1
	for v := range a.Part {
		if a.Part[v] != a.Part[0] {
			i, j = 0, v
			break
		}
	}
	if i >= 0 {
		swp := append([]int32(nil), a.Part...)
		swp[i], swp[j] = swp[j], swp[i]
		if Fingerprint(8, swp) == a.Fingerprint() {
			t.Fatal("fingerprint not position-sensitive")
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if MIS2Policy.String() != "MIS-2" || HEMPolicy.String() != "HEM" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "unknown" {
		t.Fatal("unknown policy name wrong")
	}
}
