package coarsen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mis2go/internal/graph"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

func randomGraph(n, m int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}
	return graph.FromEdges(n, edges)
}

func grid2D(nx, ny int) *graph.CSR {
	idx := func(x, y int) int32 { return int32(y*nx + x) }
	var edges []graph.Edge
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				edges = append(edges, graph.Edge{U: idx(x, y), V: idx(x+1, y)})
			}
			if y+1 < ny {
				edges = append(edges, graph.Edge{U: idx(x, y), V: idx(x, y+1)})
			}
		}
	}
	return graph.FromEdges(nx*ny, edges)
}

type scheme struct {
	name string
	run  func(*graph.CSR) Aggregation
}

func allSchemes() []scheme {
	return []scheme{
		{name: "Basic", run: func(g *graph.CSR) Aggregation { return Basic(g, Options{}) }},
		{name: "MIS2Agg", run: func(g *graph.CSR) Aggregation { return MIS2Aggregation(g, Options{}) }},
		{name: "SerialGreedy", run: SerialGreedy},
		{name: "SerialD2C", run: func(g *graph.CSR) Aggregation { return D2C(g, 0, false) }},
		{name: "NBD2C", run: func(g *graph.CSR) Aggregation { return D2C(g, 0, true) }},
	}
}

func TestAllSchemesTotalOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int(uint64(seed)%120)
		g := randomGraph(n, 3*n, seed)
		for _, s := range allSchemes() {
			agg := s.run(g)
			if Check(g, agg) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBasicAggregatesAroundRoots(t *testing.T) {
	g := grid2D(15, 15)
	agg := Basic(g, Options{})
	if err := Check(g, agg); err != nil {
		t.Fatal(err)
	}
	// Each root and all its neighbors share the root's aggregate.
	for i, r := range agg.Roots {
		if int(agg.Labels[r]) != i && i < agg.NumAggregates {
			// finalizeSingletons appends roots for stragglers, whose ids
			// follow the MIS roots; check label consistency instead.
			continue
		}
		a := agg.Labels[r]
		for _, w := range g.Neighbors(r) {
			if agg.Labels[w] != a {
				t.Fatalf("neighbor %d of root %d not in root aggregate", w, r)
			}
		}
	}
}

func TestMIS2AggregationDiameter(t *testing.T) {
	// Every aggregate from roots+neighbors+cleanup has vertices within
	// distance <= 2 of the root... cleanup can attach distance-2 vertices;
	// check aggregate diameter is bounded (<= 4 in graph distance).
	g := grid2D(12, 12)
	agg := MIS2Aggregation(g, Options{})
	if err := Check(g, agg); err != nil {
		t.Fatal(err)
	}
	sizes := Sizes(agg)
	for a, s := range sizes {
		if s > 30 {
			t.Fatalf("aggregate %d suspiciously large: %d", a, s)
		}
	}
}

func TestMIS2AggregationFewerSmallAggregates(t *testing.T) {
	// Algorithm 3's phase-2 threshold avoids tiny secondary aggregates;
	// on a mesh the mean aggregate size should comfortably exceed 3.
	g := grid2D(40, 40)
	agg := MIS2Aggregation(g, Options{})
	mean := float64(g.N) / float64(agg.NumAggregates)
	if mean < 3 {
		t.Fatalf("mean aggregate size %.2f too small", mean)
	}
}

func TestDeterminismAcrossThreads(t *testing.T) {
	g := randomGraph(400, 2000, 31)
	for _, s := range []struct {
		name string
		run  func(threads int) Aggregation
	}{
		{name: "Basic", run: func(th int) Aggregation { return Basic(g, Options{Threads: th}) }},
		{name: "MIS2Agg", run: func(th int) Aggregation { return MIS2Aggregation(g, Options{Threads: th}) }},
		{name: "NBD2C", run: func(th int) Aggregation { return D2C(g, th, true) }},
	} {
		ref := s.run(1)
		for _, th := range []int{2, 8} {
			got := s.run(th)
			if got.NumAggregates != ref.NumAggregates {
				t.Fatalf("%s: aggregate count differs across threads", s.name)
			}
			for v := range ref.Labels {
				if got.Labels[v] != ref.Labels[v] {
					t.Fatalf("%s: label of %d differs across threads", s.name, v)
				}
			}
		}
	}
}

func TestRootsAreDistance2Separated(t *testing.T) {
	g := grid2D(20, 20)
	agg := Basic(g, Options{})
	// Basic roots are exactly the MIS-2: pairwise distance > 2.
	for i, r := range agg.Roots {
		for j := i + 1; j < len(agg.Roots); j++ {
			if g.DistanceLeq2(r, agg.Roots[j]) {
				t.Fatalf("roots %d and %d within distance 2", r, agg.Roots[j])
			}
		}
	}
}

func TestCoarseGraph(t *testing.T) {
	g := grid2D(10, 10)
	agg := MIS2Aggregation(g, Options{})
	cg := CoarseGraph(g, agg)
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.N != agg.NumAggregates {
		t.Fatalf("coarse N = %d, want %d", cg.N, agg.NumAggregates)
	}
	// Every coarse edge must be witnessed by a fine edge.
	for a := int32(0); int(a) < cg.N; a++ {
		for _, b := range cg.Neighbors(a) {
			found := false
			for v := int32(0); int(v) < g.N && !found; v++ {
				if agg.Labels[v] != a {
					continue
				}
				for _, w := range g.Neighbors(v) {
					if agg.Labels[w] == b {
						found = true
						break
					}
				}
			}
			if !found {
				t.Fatalf("coarse edge (%d,%d) has no fine witness", a, b)
			}
		}
	}
}

func TestProlongatorColumnsOrthonormal(t *testing.T) {
	g := grid2D(12, 12)
	agg := MIS2Aggregation(g, Options{})
	p := Prolongator(agg)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Rows != g.N || p.Cols != agg.NumAggregates {
		t.Fatal("prolongator shape wrong")
	}
	// P^T P = I for the tentative prolongator.
	rt := par.New(2)
	ptp, err := sparse.Multiply(rt, p.Transpose(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ptp.Rows; i++ {
		for q := ptp.RowPtr[i]; q < ptp.RowPtr[i+1]; q++ {
			want := 0.0
			if int(ptp.Col[q]) == i {
				want = 1.0
			}
			if math.Abs(ptp.Val[q]-want) > 1e-12 {
				t.Fatalf("PtP entry (%d,%d) = %g", i, ptp.Col[q], ptp.Val[q])
			}
		}
	}
}

func TestCheckCatchesBadAggregation(t *testing.T) {
	g := grid2D(4, 4)
	agg := Basic(g, Options{})
	bad := Aggregation{Labels: append([]int32(nil), agg.Labels...), NumAggregates: agg.NumAggregates}
	bad.Labels[0] = int32(agg.NumAggregates) // out of range
	if Check(g, bad) == nil {
		t.Fatal("out-of-range label not caught")
	}
	bad2 := Aggregation{Labels: agg.Labels, NumAggregates: agg.NumAggregates + 1}
	if Check(g, bad2) == nil {
		t.Fatal("empty aggregate not caught")
	}
	if Check(g, Aggregation{Labels: []int32{0}, NumAggregates: 1}) == nil {
		t.Fatal("length mismatch not caught")
	}
}

func TestEdgeCases(t *testing.T) {
	for _, s := range allSchemes() {
		empty := graph.FromEdges(0, nil)
		agg := s.run(empty)
		if agg.NumAggregates != 0 || len(agg.Labels) != 0 {
			t.Fatalf("%s: empty graph mishandled", s.name)
		}
		single := graph.FromEdges(1, nil)
		agg = s.run(single)
		if err := Check(single, agg); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		iso := graph.FromEdges(4, nil)
		agg = s.run(iso)
		if err := Check(iso, agg); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if agg.NumAggregates != 4 {
			t.Fatalf("%s: isolated vertices must be singleton aggregates, got %d", s.name, agg.NumAggregates)
		}
	}
}

func TestSizesSumToN(t *testing.T) {
	g := randomGraph(300, 1200, 5)
	for _, s := range allSchemes() {
		agg := s.run(g)
		total := 0
		for _, sz := range Sizes(agg) {
			total += sz
		}
		if total != g.N {
			t.Fatalf("%s: sizes sum %d != %d", s.name, total, g.N)
		}
	}
}
