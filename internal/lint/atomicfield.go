package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces the Metrics/counter contract: structs annotated
// //amg:atomic hold only sync/atomic values, and those fields are used
// only as atomic method-call receivers (c.n.Add(1), c.n.Load()) or
// address-of operands. Anything else — reading the field into a
// variable, assigning over it, passing it by value — is a plain access
// racing the atomic ones, exactly the mixed plain/atomic bug class the
// -race stress suites can only catch when a test happens to interleave.
//
// The annotation is matched within the declaring package (the repo's
// annotated counter structs are unexported).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "check fields of //amg:atomic structs are only accessed atomically",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	fields := collectAtomicFields(pass)
	if len(fields) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		checkAtomicUses(pass, f, fields)
	}
	return nil
}

// collectAtomicFields finds //amg:atomic struct declarations, flags
// non-atomic field types at the declaration, and returns the set of
// field objects whose uses must be audited.
func collectAtomicFields(pass *Pass) map[types.Object]string {
	fields := map[types.Object]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasDirective(ts.Doc, "//amg:atomic") && !hasDirective(gd.Doc, "//amg:atomic") {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					pass.Reportf(ts.Pos(), "//amg:atomic annotation on non-struct type %s", ts.Name.Name)
					continue
				}
				for _, fld := range st.Fields.List {
					ft := pass.TypesInfo.TypeOf(fld.Type)
					if ft == nil {
						continue
					}
					if !isSyncAtomicType(ft) {
						pass.Reportf(fld.Pos(), "field of //amg:atomic struct %s is not a sync/atomic type (%s): mixed plain/atomic access", ts.Name.Name, ft)
						continue
					}
					for _, name := range fld.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							fields[obj] = ts.Name.Name
						}
					}
				}
			}
		}
	}
	return fields
}

func isSyncAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// checkAtomicUses walks one file with a parent stack, flagging selector
// expressions that resolve to an annotated field unless the selector is
// (a) the receiver of an immediate method call, or (b) an address-of
// operand (the &c.n form sync/atomic free functions take).
func checkAtomicUses(pass *Pass, f *ast.File, fields map[types.Object]string) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		owner, isAtomic := fields[obj]
		if !isAtomic {
			return true
		}
		if atomicUseAllowed(pass, stack) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "field %s of //amg:atomic struct %s accessed non-atomically (use its atomic methods or take its address)", sel.Sel.Name, owner)
		return true
	})
}

// atomicUseAllowed inspects the parents of the selector on top of the
// stack: stack[len-1] is the field selector itself.
func atomicUseAllowed(pass *Pass, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	sel := stack[len(stack)-1].(*ast.SelectorExpr)
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.UnaryExpr:
		// &c.n — handed to atomic free functions or retained as *atomic.T.
		return p.Op == token.AND && ast.Unparen(p.X) == sel
	case *ast.SelectorExpr:
		// c.n.Add(1): parent selects a method off the field; require the
		// grandparent to be the call applying it.
		if p.X != sel {
			return false
		}
		if _, isMethod := pass.TypesInfo.Selections[p]; !isMethod {
			return false
		}
		if len(stack) < 3 {
			return false
		}
		call, ok := stack[len(stack)-3].(*ast.CallExpr)
		return ok && ast.Unparen(call.Fun) == p
	}
	return false
}
