// Command amglint is the repo's static-analysis multichecker: a go vet
// -vettool implementing the cmd/go vet protocol with stdlib only (the
// x/tools unitchecker is not vendorable in the offline build, so the
// three-part contract is implemented here directly):
//
//  1. `amglint -V=full` prints a tool identity line; cmd/go keys its
//     vet result cache on it, so the line embeds a content hash of the
//     amglint binary itself — rebuilding amglint with different
//     analyzers invalidates stale cached verdicts.
//  2. `amglint -flags` prints the supported flags as JSON; cmd/go uses
//     it to validate flags passed to `go vet -vettool=amglint`.
//  3. `amglint [-<analyzer>=false ...] path/to/vet.cfg` analyzes the
//     one package described by the config, printing findings to stderr
//     and exiting 2 when any were reported.
//
// Wire-up: `make lint` (and through it `make check` and CI) runs
//
//	go vet -vettool=$(abspath bin/amglint) ./...
//
// Each analyzer has a boolean flag (default true) to disable it, e.g.
// `go vet -vettool=... -hotalloc=false ./...`.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mis2go/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("amglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go passes -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the supported flags as JSON and exit")
	enabled := map[string]*bool{}
	for _, a := range lint.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *versionFlag != "":
		// cmd/go (work.toolID) accepts `name version devel ... buildID=<id>`
		// and uses the content id for cache keying; self-hashing makes a
		// rebuilt amglint a different tool in the vet cache.
		fmt.Fprintf(stdout, "amglint version devel buildID=%s\n", selfID())
		return 0
	case *flagsFlag:
		type flagJSON struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []flagJSON
		for _, a := range lint.All() {
			out = append(out, flagJSON{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, err := json.MarshalIndent(out, "", "\t")
		if err != nil {
			fmt.Fprintf(stderr, "amglint: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, string(data))
		return 0
	}

	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: amglint [flags] vet.cfg (invoked by go vet -vettool)")
		return 1
	}
	on := map[string]bool{}
	for name, v := range enabled {
		on[name] = *v
	}
	analyzers := lint.FilterAnalyzers(lint.All(), on)
	exit := 0
	for _, cfg := range fs.Args() {
		if !strings.HasSuffix(cfg, ".cfg") {
			fmt.Fprintf(stderr, "amglint: argument %q is not a vet config file\n", cfg)
			return 1
		}
		if c := lint.RunUnit(cfg, analyzers, stderr); c > exit {
			exit = c
		}
	}
	return exit
}

// selfID hashes the running binary; failures degrade to a constant
// (cmd/go then caches across rebuilds, which is only a staleness
// nuisance, not a correctness problem for the analyzers themselves).
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "static"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "static"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "static"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
