package amg

import (
	"math"
	"testing"

	"mis2go/internal/coarsen"
	"mis2go/internal/gen"
	"mis2go/internal/graph"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

func laplaceProblem(nx, ny, nz int) (*sparse.Matrix, []float64) {
	g := gen.Laplace3D(nx, ny, nz)
	a := gen.Laplacian(g, 0.05)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = math.Sin(0.01*float64(i)) + 1
	}
	return a, b
}

func TestBuildHierarchyShape(t *testing.T) {
	a, _ := laplaceProblem(12, 12, 12)
	h, err := Build(a, Options{MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() < 2 {
		t.Fatalf("levels = %d, want >= 2", h.NumLevels())
	}
	for i := 0; i < h.NumLevels()-1; i++ {
		cur, next := h.Levels[i], h.Levels[i+1]
		if next.A.Rows >= cur.A.Rows {
			t.Fatalf("level %d did not coarsen: %d -> %d", i, cur.A.Rows, next.A.Rows)
		}
		if cur.P.Rows != cur.A.Rows || cur.P.Cols != next.A.Rows {
			t.Fatalf("level %d prolongator shape %dx%d", i, cur.P.Rows, cur.P.Cols)
		}
		if err := next.A.Validate(); err != nil {
			t.Fatalf("level %d coarse operator invalid: %v", i+1, err)
		}
	}
	oc := h.OperatorComplexity()
	if oc < 1 || oc > 3 {
		t.Fatalf("operator complexity %.2f out of healthy range", oc)
	}
}

func TestVCycleSolve(t *testing.T) {
	a, b := laplaceProblem(10, 10, 10)
	h, err := Build(a, Options{MinCoarseSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	iters, rel := h.Solve(b, x, 1e-10, 200)
	if rel >= 1e-10 {
		t.Fatalf("V-cycle iteration stalled: rel=%.3e after %d cycles", rel, iters)
	}
	if iters > 100 {
		t.Fatalf("too many cycles: %d", iters)
	}
}

func TestAMGPreconditionedCG(t *testing.T) {
	a, b := laplaceProblem(14, 14, 14)
	rt := par.New(0)
	h, err := Build(a, Options{MinCoarseSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	st, err := krylov.CG(rt, a, b, x, 1e-12, 300, h)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("AMG-CG did not converge: %+v", st)
	}
	// AMG should beat unpreconditioned CG on iteration count.
	y := make([]float64, a.Rows)
	stPlain, err := krylov.CG(rt, a, b, y, 1e-12, 3000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations >= stPlain.Iterations {
		t.Fatalf("AMG-CG iterations %d >= plain CG %d", st.Iterations, stPlain.Iterations)
	}
}

func TestAggregationSchemesAllWork(t *testing.T) {
	a, b := laplaceProblem(8, 8, 8)
	rt := par.New(0)
	schemes := map[string]AggregateFunc{
		"basic":   func(g *graph.CSR) coarsen.Aggregation { return coarsen.Basic(g, coarsen.Options{}) },
		"mis2agg": func(g *graph.CSR) coarsen.Aggregation { return coarsen.MIS2Aggregation(g, coarsen.Options{}) },
		"serial":  coarsen.SerialGreedy,
		"d2c":     func(g *graph.CSR) coarsen.Aggregation { return coarsen.D2C(g, 0, true) },
	}
	for name, f := range schemes {
		h, err := Build(a, Options{Aggregate: f, MinCoarseSize: 40})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := make([]float64, a.Rows)
		st, err := krylov.CG(rt, a, b, x, 1e-10, 500, h)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !st.Converged {
			t.Fatalf("%s: not converged %+v", name, st)
		}
	}
}

func TestUnsmoothedVsSmoothedProlongator(t *testing.T) {
	a, b := laplaceProblem(12, 12, 6)
	rt := par.New(0)
	hs, err := Build(a, Options{MinCoarseSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	hu, err := Build(a, Options{MinCoarseSize: 60, UnsmoothedProlongator: true})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, a.Rows)
	xu := make([]float64, a.Rows)
	sts, err := krylov.CG(rt, a, b, xs, 1e-10, 1000, hs)
	if err != nil {
		t.Fatal(err)
	}
	stu, err := krylov.CG(rt, a, b, xu, 1e-10, 1000, hu)
	if err != nil {
		t.Fatal(err)
	}
	// Smoothed aggregation should not be (much) worse than plain
	// aggregation on a Poisson problem; typically it is clearly better.
	if sts.Iterations > stu.Iterations+5 {
		t.Fatalf("smoothed prolongator worse: %d vs %d iterations", sts.Iterations, stu.Iterations)
	}
}

func TestBuildRejectsBadMatrices(t *testing.T) {
	// Non-square.
	bad := &sparse.Matrix{Rows: 2, Cols: 3, RowPtr: []int{0, 0, 0}}
	if _, err := Build(bad, Options{}); err == nil {
		t.Fatal("non-square accepted")
	}
	// Zero diagonal.
	zd := &sparse.Matrix{Rows: 2, Cols: 2,
		RowPtr: []int{0, 1, 2}, Col: []int32{1, 0}, Val: []float64{1, 1}}
	if _, err := Build(zd, Options{}); err == nil {
		t.Fatal("zero diagonal accepted")
	}
	// Structurally broken.
	broken := &sparse.Matrix{Rows: 2, Cols: 2, RowPtr: []int{0, 1}, Col: []int32{0}, Val: []float64{1}}
	if _, err := Build(broken, Options{}); err == nil {
		t.Fatal("invalid CSR accepted")
	}
}

func TestSmallMatrixSingleLevel(t *testing.T) {
	// A matrix below MinCoarseSize: direct solve only.
	g := gen.Laplace2D(5, 5)
	a := gen.Laplacian(g, 0.5)
	h, err := Build(a, Options{MinCoarseSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 1 {
		t.Fatalf("levels = %d, want 1", h.NumLevels())
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	z := make([]float64, a.Rows)
	h.Precondition(b, z)
	// One "V-cycle" is a direct solve here: residual must be ~0.
	r := make([]float64, a.Rows)
	a.SpMV(par.New(1), z, r)
	for i := range r {
		if math.Abs(r[i]-b[i]) > 1e-10 {
			t.Fatalf("direct coarse solve inaccurate at %d", i)
		}
	}
}

func TestDeterministicHierarchy(t *testing.T) {
	a, _ := laplaceProblem(10, 10, 5)
	h1, err := Build(a, Options{Threads: 1, MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Build(a, Options{Threads: 8, MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if h1.NumLevels() != h2.NumLevels() {
		t.Fatal("level counts differ across thread counts")
	}
	for l := range h1.Levels {
		a1, a2 := h1.Levels[l].A, h2.Levels[l].A
		if a1.Rows != a2.Rows || a1.NNZ() != a2.NNZ() {
			t.Fatalf("level %d operators differ structurally", l)
		}
		for i := range a1.Val {
			if math.Abs(a1.Val[i]-a2.Val[i]) > 1e-13 {
				t.Fatalf("level %d value %d differs", l, i)
			}
		}
	}
}

func TestChebyshevSmoother(t *testing.T) {
	a, b := laplaceProblem(12, 12, 12)
	rt := par.New(0)
	hCheb, err := Build(a, Options{MinCoarseSize: 60, Smoother: SmootherChebyshev,
		ChebyshevDegree: 2, PreSweeps: 1, PostSweeps: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	st, err := krylov.CG(rt, a, b, x, 1e-10, 400, hCheb)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("Chebyshev-smoothed AMG did not converge: %+v", st)
	}
	// Degree-2 Chebyshev (1 sweep) should be competitive with 2 Jacobi
	// sweeps in iteration count.
	hJac, err := Build(a, Options{MinCoarseSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, a.Rows)
	stJ, err := krylov.CG(rt, a, b, y, 1e-10, 400, hJac)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 2*stJ.Iterations {
		t.Fatalf("Chebyshev iterations %d much worse than Jacobi %d", st.Iterations, stJ.Iterations)
	}
}

func TestChebyshevDegreeImprovesSmoothing(t *testing.T) {
	a, b := laplaceProblem(10, 10, 10)
	rt := par.New(0)
	iters := func(degree int) int {
		h, err := Build(a, Options{MinCoarseSize: 60, Smoother: SmootherChebyshev,
			ChebyshevDegree: degree, PreSweeps: 1, PostSweeps: 1})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows)
		st, err := krylov.CG(rt, a, b, x, 1e-10, 400, h)
		if err != nil {
			t.Fatal(err)
		}
		return st.Iterations
	}
	if i4, i1 := iters(4), iters(1); i4 > i1 {
		t.Fatalf("degree-4 Chebyshev (%d iters) worse than degree-1 (%d)", i4, i1)
	}
}

func TestWeightedProblem(t *testing.T) {
	g := gen.Laplace3D(9, 9, 9)
	a := gen.WeightedLaplacian(g, 0.02, 99)
	h, err := Build(a, Options{MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64(i % 3)
	}
	x := make([]float64, a.Rows)
	st, err := krylov.CG(par.New(0), a, b, x, 1e-10, 400, h)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("not converged on weighted problem: %+v", st)
	}
}
