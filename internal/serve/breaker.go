// Poison-pattern quarantine: a per-pattern circuit breaker in front of
// the solve paths. A pattern fingerprint that keeps producing classified
// numerical failures is quarantined — requests against it fail fast
// with ErrQuarantined, paying no build or solve cost — until a cooldown
// expires and a single half-open probe is let through: a successful
// probe closes the breaker, a failed one re-quarantines with a doubled
// cooldown (capped at 64× the base), the exponential-backoff discipline
// that keeps a persistently poisonous pattern from periodically
// stampeding the solver.
//
// The breaker state machine (per fingerprint):
//
//	closed ──(threshold consecutive numerical failures)──▶ open
//	open ──(cooldown expires; next request becomes the probe)──▶ half-open
//	half-open ──(probe succeeds)──▶ closed (entry deleted)
//	half-open ──(probe fails numerically)──▶ open, cooldown ×2
//	half-open ──(probe canceled / panics: no verdict)──▶ open, immediate re-probe
//
// The breaker is keyed by pattern fingerprint — the same key as the
// hierarchy cache — but lives in its own map: quarantine state must
// survive LRU eviction of the cache entry (the poison pattern's entry
// is exactly the one that keeps failing to build), and a closed breaker
// carries no state at all (successes delete their entry, so the map
// holds only failing patterns, capped at breakerMaxEntries).
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrQuarantined is wrapped by requests rejected because their pattern
// fingerprint is quarantined after repeated numerical failures. The
// concrete error is a *QuarantinedError carrying the remaining
// cooldown, so transports can emit a Retry-After.
var ErrQuarantined = errors.New("serve: pattern quarantined")

// QuarantinedError is the concrete quarantine rejection: RetryAfter is
// the time until the breaker will admit a half-open probe. It unwraps
// to ErrQuarantined.
type QuarantinedError struct {
	RetryAfter time.Duration
}

func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("serve: pattern quarantined after repeated numerical failures (retry in %v)", e.RetryAfter)
}

func (e *QuarantinedError) Unwrap() error { return ErrQuarantined }

const (
	// breakerMaxEntries caps the tracked (failing) fingerprints; beyond
	// it the entry closest to its probe time is evicted — the one
	// losing the least protection.
	breakerMaxEntries = 4096
	// breakerMaxBackoff caps the cooldown growth at base × this factor.
	breakerMaxBackoff = 64
)

// breakerEntry is one fingerprint's breaker state. probing marks a
// half-open probe in flight (it holds all other requests out until the
// probe reports).
type breakerEntry struct {
	fails    int
	open     bool
	probing  bool
	until    time.Time
	cooldown time.Duration
}

// breaker is the per-pattern circuit breaker. One short mutex hold per
// request on admit and one on record; never held across build or solve.
type breaker struct {
	mu        sync.Mutex
	threshold int
	base      time.Duration
	entries   map[uint64]*breakerEntry
}

func newBreaker(threshold int, base time.Duration) *breaker {
	return &breaker{threshold: threshold, base: base, entries: make(map[uint64]*breakerEntry)}
}

// admit gates one admitted request on its pattern's breaker state:
// closed (or untracked) patterns pass, quarantined patterns are
// rejected with the remaining cooldown, and the first request to
// arrive after the cooldown becomes the half-open probe (probe true) —
// concurrent requests stay rejected until the probe reports.
func (b *breaker) admit(fp uint64) (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[fp]
	if !ok || !e.open {
		return false, nil
	}
	now := time.Now()
	if now.Before(e.until) {
		return false, &QuarantinedError{RetryAfter: e.until.Sub(now)}
	}
	if e.probing {
		return false, &QuarantinedError{RetryAfter: e.cooldown}
	}
	e.probing = true
	return true, nil
}

// recordSuccess closes the fingerprint's breaker: consecutive-failure
// tracking and quarantine state are deleted outright, so healthy
// patterns cost the breaker nothing.
func (b *breaker) recordSuccess(fp uint64, probe bool, m *counters) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		m.probeSuccesses.Add(1)
	}
	delete(b.entries, fp)
}

// recordFailure counts one classified numerical failure: at threshold
// consecutive failures the pattern is quarantined for the base
// cooldown; a failed half-open probe re-quarantines immediately with a
// doubled cooldown.
func (b *breaker) recordFailure(fp uint64, probe bool, m *counters) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[fp]
	if !ok {
		b.prune()
		e = &breakerEntry{cooldown: b.base}
		b.entries[fp] = e
	}
	e.fails++
	now := time.Now()
	if probe {
		m.probeFailures.Add(1)
		e.probing = false
		if e.cooldown < b.base*breakerMaxBackoff {
			e.cooldown *= 2
		}
		e.open = true
		e.until = now.Add(e.cooldown)
		m.quarantines.Add(1)
		return
	}
	if !e.open && e.fails >= b.threshold {
		e.open = true
		e.cooldown = b.base
		e.until = now.Add(e.cooldown)
		m.quarantines.Add(1)
	}
}

// recordNeutral releases a probe that ended without a numerical verdict
// (canceled, contained panic, invalidated batch): the breaker stays
// open but the next request may probe immediately — a cancellation says
// nothing about the pattern's health.
func (b *breaker) recordNeutral(fp uint64, probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[fp]; ok && e.probing {
		e.probing = false
		e.until = time.Now()
	}
}

// prune evicts the tracked entry with the earliest probe time when the
// map is at capacity. Called with b.mu held.
func (b *breaker) prune() {
	if len(b.entries) < breakerMaxEntries {
		return
	}
	var victim uint64
	var oldest time.Time
	first := true
	for k, e := range b.entries {
		if first || e.until.Before(oldest) {
			victim, oldest, first = k, e.until, false
		}
	}
	delete(b.entries, victim)
}
