// Package order provides bandwidth-reducing matrix orderings and the
// permutation plumbing around them: reverse Cuthill-McKee (RCM) on the
// matrix graph, symmetric matrix permutation P·A·Pᵀ, and the vector
// permute / inverse-permute pair that moves right-hand sides into the
// reordered numbering and solutions back out.
//
// A bandwidth-reducing ordering clusters each row's column indices near
// the diagonal, so the gathers from x in the memory-bound kernels (CSR
// and especially the chunked SELL-C-sigma format, whose lanes gather
// eight rows' worth of x at once) stay within a narrow, cache-resident
// window. Everything here is deterministic: ties are broken by vertex
// id, so the ordering is a pure function of the graph.
//
//amg:deterministic
package order

import (
	"fmt"
	"sort"

	"mis2go/internal/graph"
	"mis2go/internal/sparse"
)

// RCM returns the reverse Cuthill-McKee ordering of g as a permutation
// perm with perm[new] = old: position new in the reordered numbering is
// occupied by original vertex perm[new]. Each connected component is
// traversed breadth-first from a pseudo-peripheral root (found by a
// repeated farthest-vertex sweep), neighbors visited in ascending-degree
// order (ties by id), and the completed ordering is reversed — the
// classic bandwidth-reducing ordering for mesh-like graphs.
func RCM(g *graph.CSR) []int32 {
	n := g.N
	perm := make([]int32, 0, n)
	visited := make([]bool, n)
	depth := make([]int32, n) // pseudo-peripheral BFS scratch, all -1
	for i := range depth {
		depth[i] = -1
	}
	scratch := make([]int32, 0, 16) // reusable neighbor buffer
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(g, int32(start), depth)
		// BFS from root in degree-sorted order, appending to perm.
		head := len(perm)
		perm = append(perm, root)
		visited[root] = true
		for head < len(perm) {
			v := perm[head]
			head++
			scratch = scratch[:0]
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					scratch = append(scratch, u)
				}
			}
			sortByDegree(g, scratch)
			perm = append(perm, scratch...)
		}
	}
	// Reverse: RCM is Cuthill-McKee read backwards.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// sortByDegree orders vs by ascending degree, ties by vertex id —
// deterministic and stable for the BFS frontier.
func sortByDegree(g *graph.CSR, vs []int32) {
	sort.Slice(vs, func(i, j int) bool {
		di, dj := g.Degree(vs[i]), g.Degree(vs[j])
		if di != dj {
			return di < dj
		}
		return vs[i] < vs[j]
	})
}

// pseudoPeripheral finds an approximate peripheral vertex of start's
// component: repeated BFS sweeps move to a farthest minimum-degree
// vertex until the eccentricity stops growing (the George-Liu
// heuristic). depth is n-sized scratch holding -1 everywhere on entry
// and on return (each sweep resets only the vertices it touched, so the
// cost stays proportional to the component). Deterministic: the
// candidate with the smallest id wins ties.
func pseudoPeripheral(g *graph.CSR, start int32, depth []int32) int32 {
	cur := start
	curEcc := int32(-1)
	var queue, last []int32
	for {
		// BFS measuring eccentricity and collecting the deepest level.
		for _, v := range queue {
			depth[v] = -1
		}
		queue = append(queue[:0], cur)
		depth[cur] = 0
		ecc := int32(0)
		head := 0
		for head < len(queue) {
			v := queue[head]
			head++
			for _, u := range g.Neighbors(v) {
				if depth[u] < 0 {
					depth[u] = depth[v] + 1
					ecc = depth[u]
					queue = append(queue, u)
				}
			}
		}
		if ecc <= curEcc {
			for _, v := range queue {
				depth[v] = -1
			}
			return cur
		}
		curEcc = ecc
		last = last[:0]
		for _, v := range queue {
			if depth[v] == ecc {
				last = append(last, v)
			}
		}
		// Farthest vertex of minimum degree, smallest id on ties.
		best := last[0]
		for _, v := range last[1:] {
			dv, db := g.Degree(v), g.Degree(best)
			if dv < db || (dv == db && v < best) {
				best = v
			}
		}
		cur = best
	}
}

// Inverse returns the inverse permutation: inv[perm[i]] = i.
func Inverse(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for i, p := range perm {
		inv[p] = int32(i)
	}
	return inv
}

// checkPerm validates that perm is a permutation of [0, n).
func checkPerm(perm []int32, n int) error {
	if len(perm) != n {
		return fmt.Errorf("order: permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for i, p := range perm {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("order: permutation entry perm[%d] = %d out of range [0, %d)", i, p, n)
		}
		if seen[p] {
			return fmt.Errorf("order: duplicate permutation entry perm[%d] = %d", i, p)
		}
		seen[p] = true
	}
	return nil
}

// PermuteMatrix applies the symmetric permutation P·A·Pᵀ for a square
// matrix: entry (i, j) of A lands at (inv[i], inv[j]), with every output
// row sorted by column (the CSR Validate invariant), so the result
// composes with the whole solver stack. perm uses the RCM convention
// perm[new] = old.
func PermuteMatrix(a *sparse.Matrix, perm []int32) (*sparse.Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("order: symmetric permutation needs a square matrix, have %dx%d", a.Rows, a.Cols)
	}
	if err := checkPerm(perm, a.Rows); err != nil {
		return nil, err
	}
	inv := Inverse(perm)
	b := &sparse.Matrix{Rows: a.Rows, Cols: a.Cols}
	b.RowPtr = make([]int, a.Rows+1)
	b.Col = make([]int32, len(a.Col))
	b.Val = make([]float64, len(a.Val))
	type ent struct {
		col int32
		val float64
	}
	var row []ent
	k := 0
	for ni := 0; ni < a.Rows; ni++ {
		oi := perm[ni]
		row = row[:0]
		for p := a.RowPtr[oi]; p < a.RowPtr[oi+1]; p++ {
			row = append(row, ent{inv[a.Col[p]], a.Val[p]})
		}
		sort.Slice(row, func(x, y int) bool { return row[x].col < row[y].col })
		for _, e := range row {
			b.Col[k] = e.col
			b.Val[k] = e.val
			k++
		}
		b.RowPtr[ni+1] = k
	}
	return b, nil
}

// checkVectorPerm validates a vector permutation call: dst, src, and
// perm must agree in length and perm must be a permutation of [0, n).
// A malformed permutation (duplicate or out-of-range entries) would
// silently drop or double source entries — corrupt data, not an index
// panic — so it is a hard error, not a best-effort gather.
func checkVectorPerm(dst, src []float64, perm []int32) error {
	if len(dst) != len(perm) || len(src) != len(perm) {
		return fmt.Errorf("order: vector permute length mismatch (dst %d, src %d, perm %d)",
			len(dst), len(src), len(perm))
	}
	return checkPerm(perm, len(perm))
}

// PermuteVector gathers src into the reordered numbering:
// dst[new] = src[perm[new]]. Moves a right-hand side (or initial guess)
// into the space of a PermuteMatrix-reordered system. dst and src must
// not alias. The permutation is validated: duplicate or out-of-range
// entries return a descriptive error with dst untouched.
func PermuteVector(dst, src []float64, perm []int32) error {
	if err := checkVectorPerm(dst, src, perm); err != nil {
		return err
	}
	for i, p := range perm {
		dst[i] = src[p]
	}
	return nil
}

// InversePermuteVector scatters src back to the original numbering:
// dst[perm[new]] = src[new] — the exact inverse of PermuteVector (pure
// data movement, so a solution moved back loses nothing: values are
// bit-identical). dst and src must not alias. The permutation is
// validated exactly as in PermuteVector.
func InversePermuteVector(dst, src []float64, perm []int32) error {
	if err := checkVectorPerm(dst, src, perm); err != nil {
		return err
	}
	for i, p := range perm {
		dst[p] = src[i]
	}
	return nil
}

// Bandwidth returns the matrix bandwidth max_i,j |i - j| over stored
// entries (0 for empty or diagonal matrices) — the quantity RCM exists
// to reduce.
func Bandwidth(a *sparse.Matrix) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			d := int(a.Col[p]) - i
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
