// Benchmarks regenerating the paper's tables and figures (deliverable d).
// Each testing.B benchmark exercises the kernel behind one table or
// figure at a laptop-friendly scale; the cmd/experiments binary prints
// the full formatted tables (use -scale to approach paper sizes).
package mis2go

import (
	"fmt"
	"testing"

	"mis2go/internal/coarsen"
	"mis2go/internal/gen"
	"mis2go/internal/graph"
	"mis2go/internal/gs"
	"mis2go/internal/hash"
	"mis2go/internal/krylov"
	"mis2go/internal/matrices"
	"mis2go/internal/mis"
	"mis2go/internal/par"
)

// benchScale keeps individual benchmark iterations in the millisecond
// range; raise via cmd/experiments -scale for paper-sized runs.
const benchScale = 0.01

// benchSuite picks three structurally distinct suite matrices: a regular
// 3D mesh, a 2D mesh, and an irregular FEM graph.
func benchSuite() map[string]*graph.CSR {
	out := map[string]*graph.CSR{}
	for _, name := range []string{"Laplace3D_100", "thermal2", "Hook_1498"} {
		spec, err := matrices.Get(name)
		if err != nil {
			panic(err)
		}
		out[name] = spec.Build(benchScale)
	}
	return out
}

// BenchmarkTable1PriorityIterations measures MIS-2 under the three
// priority schemes of Table I (the work per run tracks the iteration
// count each scheme needs).
func BenchmarkTable1PriorityIterations(b *testing.B) {
	g, _ := matrices.Get("Laplace3D_100")
	gr := g.Build(benchScale)
	for _, kind := range []hash.Kind{hash.Fixed, hash.Xor, hash.XorStar} {
		b.Run(kind.String(), func(b *testing.B) {
			iters := 0
			for i := 0; i < b.N; i++ {
				iters = mis.MIS2(gr, mis.Options{Hash: kind}).Iterations
			}
			b.ReportMetric(float64(iters), "mis2-iters")
		})
	}
}

// BenchmarkTable2MIS2 measures the production MIS-2 on representative
// suite matrices (Table II's timing columns).
func BenchmarkTable2MIS2(b *testing.B) {
	for name, g := range benchSuite() {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(8 * (g.N + g.NumEdges())))
			for i := 0; i < b.N; i++ {
				mis.MIS2(g, mis.Options{})
			}
		})
	}
}

// BenchmarkFig2Ablation measures every rung of the optimization ladder
// (Figure 2): Baseline, +Random priority, +Worklists, +Packed, +SIMD.
func BenchmarkFig2Ablation(b *testing.B) {
	g, _ := matrices.Get("Hook_1498")
	gr := g.Build(benchScale)
	for v := mis.Variant(0); v < mis.NumVariants; v++ {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mis.MIS2Variant(gr, v, 0)
			}
		})
	}
}

// BenchmarkTable3Scaling measures MIS-2 across growing structured grids
// (Table III's |V| sweep).
func BenchmarkTable3Scaling(b *testing.B) {
	for _, side := range []int{16, 24, 32, 48} {
		g := gen.Laplace3D(side, side, side)
		b.Run(fmt.Sprintf("Laplace-%d", side), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mis.MIS2(g, mis.Options{})
			}
		})
	}
	for _, side := range []int{8, 12, 16} {
		g := gen.Elasticity3D(side, side, side, 3)
		b.Run(fmt.Sprintf("Elasticity-%d", side), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mis.MIS2(g, mis.Options{})
			}
		})
	}
}

// BenchmarkFig4Scaling measures strong scaling over worker counts
// (Figures 4/5; Figure 3's efficiency profile derives from the same
// sweep).
func BenchmarkFig4Scaling(b *testing.B) {
	g, _ := matrices.Get("Laplace3D_100")
	gr := g.Build(benchScale * 4)
	for _, threads := range []int{1, 2, 4, 8, 16} {
		threads := threads
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mis.MIS2(gr, mis.Options{Threads: threads})
			}
		})
	}
}

// BenchmarkFig6VsCUSP compares Algorithm 1 against the CUSP-style Bell
// baseline (Figure 6).
func BenchmarkFig6VsCUSP(b *testing.B) {
	for name, g := range benchSuite() {
		b.Run("CUSP/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mis.BellMISK(g, mis.BellOptions{K: 2, Hash: hash.Fixed})
			}
		})
		b.Run("KK/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mis.MIS2(g, mis.Options{})
			}
		})
	}
}

// BenchmarkFig7Coarsening compares MIS-2 + Algorithm 2 against the
// ViennaCL-style pipeline (Figure 7).
func BenchmarkFig7Coarsening(b *testing.B) {
	g, _ := matrices.Get("thermal2")
	gr := g.Build(benchScale)
	b.Run("ViennaCL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			roots := mis.BellMISK(gr, mis.BellOptions{K: 2, Hash: hash.Fixed, Salt: 0x51EC7A11}).InSet
			coarsen.BasicFromRoots(gr, roots, 0)
		}
	})
	b.Run("KK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coarsen.Basic(gr, coarsen.Options{})
		}
	})
}

// BenchmarkTable5AMG measures SA-AMG setup+solve for each aggregation
// scheme (Table V).
func BenchmarkTable5AMG(b *testing.B) {
	side := 20
	g := gen.Laplace3D(side, side, side)
	a := gen.Laplacian(g, 1e-8)
	n := a.Rows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	rt := par.New(0)
	schemes := map[string]AMGOptions{
		"MIS2Agg":   {},
		"MIS2Basic": {Aggregate: func(gr *Graph) Aggregation { return coarsen.Basic(gr, coarsen.Options{}) }},
		"SerialAgg": {Aggregate: coarsen.SerialGreedy},
		"NBD2C":     {Aggregate: func(gr *Graph) Aggregation { return coarsen.D2C(gr, 0, true) }},
	}
	for name, opt := range schemes {
		opt := opt
		b.Run(name, func(b *testing.B) {
			var lastIters int
			for i := 0; i < b.N; i++ {
				h, err := NewAMG(a, opt)
				if err != nil {
					b.Fatal(err)
				}
				x := make([]float64, n)
				st, err := krylov.CG(rt, a, rhs, x, 1e-12, 500, h)
				if err != nil {
					b.Fatal(err)
				}
				lastIters = st.Iterations
			}
			b.ReportMetric(float64(lastIters), "cg-iters")
		})
	}
}

// BenchmarkTable6ClusterGS measures point vs cluster multicolor SGS setup
// and preconditioned GMRES solve (Table VI).
func BenchmarkTable6ClusterGS(b *testing.B) {
	spec, _ := matrices.Get("bodyy5")
	a := spec.Matrix(0.2)
	n := a.Rows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%5) - 2
	}
	rt := par.New(0)
	b.Run("PointSetup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gs.NewPoint(a, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ClusterSetup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agg := coarsen.MIS2Aggregation(a.Graph(), coarsen.Options{})
			if _, err := gs.NewCluster(a, agg, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	point, err := gs.NewPoint(a, 0)
	if err != nil {
		b.Fatal(err)
	}
	agg := coarsen.MIS2Aggregation(a.Graph(), coarsen.Options{})
	cluster, err := gs.NewCluster(a, agg, 0)
	if err != nil {
		b.Fatal(err)
	}
	for name, m := range map[string]krylov.Preconditioner{"PointApply": point, "ClusterApply": cluster} {
		m := m
		b.Run(name, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				x := make([]float64, n)
				st, err := krylov.GMRES(rt, a, rhs, x, 1e-8, 800, 50, m)
				if err != nil {
					b.Fatal(err)
				}
				iters = st.Iterations
			}
			b.ReportMetric(float64(iters), "gmres-iters")
		})
	}
}

// --- Ablation benches beyond the paper (DESIGN.md) ---

// BenchmarkAblationHash isolates the hash function cost.
func BenchmarkAblationHash(b *testing.B) {
	b.Run("xorshift", func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			acc ^= hash.Xorshift64(uint64(i) + 1)
		}
		_ = acc
	})
	b.Run("xorshift-star", func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			acc ^= hash.Xorshift64Star(uint64(i) + 1)
		}
		_ = acc
	})
}

// BenchmarkScanImpl compares the parallel prefix sum against a serial
// scan (the worklist compaction primitive of §V-B).
func BenchmarkScanImpl(b *testing.B) {
	n := 1 << 20
	in := make([]int, n)
	for i := range in {
		in[i] = i % 3
	}
	out := make([]int, n+1)
	for _, threads := range []int{1, 8} {
		rt := par.New(threads)
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				par.ScanExclusive(rt, in, out)
			}
		})
	}
}

// BenchmarkSpGEMMSquare compares direct MIS-2 against the Lemma IV.2
// route (explicit G² then MIS-1), quantifying why Bell's SpGEMM-free
// formulation — and ours — avoids squaring the graph.
func BenchmarkSpGEMMSquare(b *testing.B) {
	g := gen.Laplace3D(20, 20, 20)
	b.Run("direct-mis2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mis.MIS2(g, mis.Options{})
		}
	})
	b.Run("square-then-mis1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sq := g.Square()
			mis.LubyMIS1(sq, hash.XorStar, 0)
		}
	})
}

// BenchmarkAblationWorklist and BenchmarkAblationPacked isolate
// individual rungs of the Figure 2 ladder on a denser graph where the
// differences are visible.
func BenchmarkAblationWorklist(b *testing.B) {
	g := gen.RandomFEM(16, 16, 16, 24, 5)
	b.Run("without", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mis.MIS2Variant(g, mis.VariantRandomized, 0)
		}
	})
	b.Run("with", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mis.MIS2Variant(g, mis.VariantWorklists, 0)
		}
	})
}

func BenchmarkAblationPacked(b *testing.B) {
	g := gen.RandomFEM(16, 16, 16, 24, 5)
	b.Run("unpacked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mis.MIS2Variant(g, mis.VariantWorklists, 0)
		}
	})
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mis.MIS2Variant(g, mis.VariantPacked, 0)
		}
	})
}

func BenchmarkAblationSIMD(b *testing.B) {
	g := gen.Elasticity3D(10, 10, 10, 3) // avg degree ~70: SIMD engages
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mis.MIS2(g, mis.Options{NoSIMD: true})
		}
	})
	b.Run("unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mis.MIS2(g, mis.Options{})
		}
	})
}
