package matrices

import (
	"math"
	"testing"

	"mis2go/internal/mis"
)

func TestSuiteHas17PaperRows(t *testing.T) {
	suite := Suite()
	if len(suite) != 17 {
		t.Fatalf("suite has %d entries, want 17", len(suite))
	}
	names := Names()
	want := []string{
		"af_shell7", "apache2", "audikw_1", "ecology2", "Elasticity3D_60",
		"Emilia_923", "Fault_639", "Geo_1438", "Hook_1498", "Laplace3D_100",
		"ldoor", "parabolic_fem", "PFlow_742", "Serena", "StocF-1465",
		"thermal2", "tmt_sym",
	}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("row %d is %q, want %q (paper order)", i, names[i], w)
		}
	}
}

func TestGetKnownAndUnknown(t *testing.T) {
	if _, err := Get("Serena"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("bodyy5"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("no_such_matrix"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSurrogatesValidateAndMatchDegrees(t *testing.T) {
	for _, s := range Suite() {
		g := s.Build(0.01)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if g.N == 0 {
			t.Fatalf("%s: empty surrogate", s.Name)
		}
		// Average degree within 40% of the paper's (structure class
		// match; exact equality is impossible for irregular surrogates).
		ratio := g.AvgDegree() / s.PaperAvgDeg
		if ratio < 0.6 || ratio > 1.4 {
			t.Fatalf("%s: surrogate avg degree %.2f vs paper %.2f (ratio %.2f)",
				s.Name, g.AvgDegree(), s.PaperAvgDeg, ratio)
		}
	}
}

func TestScaleControlsSize(t *testing.T) {
	spec, _ := Get("Laplace3D_100")
	small := spec.Build(0.002)
	big := spec.Build(0.02)
	if big.N <= small.N {
		t.Fatalf("scale not monotone: %d vs %d", small.N, big.N)
	}
	// 10x the scale should give roughly 10x the vertices (cubing of the
	// rounded side makes this approximate).
	r := float64(big.N) / float64(small.N)
	if r < 3 || r > 30 {
		t.Fatalf("scale ratio %f way off", r)
	}
}

func TestSurrogatesDeterministic(t *testing.T) {
	for _, name := range []string{"Hook_1498", "ecology2"} {
		spec, _ := Get(name)
		a := spec.Build(0.005)
		b := spec.Build(0.005)
		if a.N != b.N || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: surrogate not deterministic", name)
		}
	}
}

func TestMatrixIsSPDish(t *testing.T) {
	spec, _ := Get("bodyy5")
	a := spec.Matrix(0.05)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Strict diagonal dominance.
	d := a.Diagonal()
	for i := 0; i < a.Rows; i++ {
		off := 0.0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.Col[p]) != i {
				off += math.Abs(a.Val[p])
			}
		}
		if d[i] <= off {
			t.Fatalf("row %d not dominant", i)
		}
	}
}

func TestEcology2MaxDegree3(t *testing.T) {
	spec, _ := Get("ecology2")
	g := spec.Build(0.01)
	if g.MaxDegree() > 3 {
		t.Fatalf("honeycomb surrogate max degree %d, want <= 3 (paper: 3)", g.MaxDegree())
	}
}

func TestTable6NamesResolvable(t *testing.T) {
	names := Table6Names()
	if len(names) != 5 {
		t.Fatalf("Table VI has %d systems, want 5", len(names))
	}
	for _, n := range names {
		spec, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		g := spec.Build(0.005)
		res := mis.MIS2(g, mis.Options{})
		if err := mis.CheckMIS2(g, res.InSet); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}
