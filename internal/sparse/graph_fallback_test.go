package sparse

import (
	"slices"
	"testing"

	"mis2go/internal/par"
)

// TestGraphUnsortedRowsFallback pins the seed behavior: Graph() must
// tolerate hand-built matrices whose rows are unsorted or contain
// duplicates (valid for SpMV, rejected by Validate), falling back to
// the edge-list construction instead of merging garbage.
func TestGraphUnsortedRowsFallback(t *testing.T) {
	// 3x3 matrix with row 0 unsorted: entries (0,2), (0,1).
	a := &Matrix{
		Rows: 3, Cols: 3,
		RowPtr: []int{0, 2, 4, 6},
		Col:    []int32{2, 1, 0, 1, 0, 2},
		Val:    []float64{1, 1, 1, 2, 1, 3},
	}
	g := a.GraphWith(par.New(2))
	if err := g.Validate(); err != nil {
		t.Fatalf("graph from unsorted matrix is invalid: %v", err)
	}
	// The symmetrized structure must match the sorted equivalent.
	sorted := &Matrix{
		Rows: 3, Cols: 3,
		RowPtr: []int{0, 2, 4, 6},
		Col:    []int32{1, 2, 0, 1, 0, 2},
		Val:    []float64{1, 1, 1, 2, 1, 3},
	}
	want := sorted.GraphWith(par.New(2))
	if g.N != want.N || len(g.Col) != len(want.Col) {
		t.Fatalf("structure mismatch: |V|=%d nnz=%d, want |V|=%d nnz=%d", g.N, len(g.Col), want.N, len(want.Col))
	}
	for v := 0; v <= g.N; v++ {
		if g.RowPtr[v] != want.RowPtr[v] {
			t.Fatalf("RowPtr[%d] = %d, want %d", v, g.RowPtr[v], want.RowPtr[v])
		}
	}
	for k := range g.Col {
		if g.Col[k] != want.Col[k] {
			t.Fatalf("Col[%d] = %d, want %d", k, g.Col[k], want.Col[k])
		}
	}
}

// canonicalize returns a copy of a with every row sorted and
// deduplicated (first value kept per column) — a matrix that satisfies
// the Validate invariant and therefore takes the direct
// count+scan+merge Graph path.
func canonicalize(a *Matrix) *Matrix {
	c := &Matrix{Rows: a.Rows, Cols: a.Cols}
	c.RowPtr = make([]int, a.Rows+1)
	for i := 0; i < a.Rows; i++ {
		type cv struct {
			col int32
			val float64
		}
		row := make([]cv, 0, a.RowPtr[i+1]-a.RowPtr[i])
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			row = append(row, cv{a.Col[p], a.Val[p]})
		}
		slices.SortStableFunc(row, func(x, y cv) int { return int(x.col) - int(y.col) })
		for k, e := range row {
			if k > 0 && row[k-1].col == e.col {
				continue
			}
			c.Col = append(c.Col, e.col)
			c.Val = append(c.Val, e.val)
		}
		c.RowPtr[i+1] = len(c.Col)
	}
	return c
}

// TestGraphFallbackAdversarial feeds the edge-list fallback matrices
// that violate the sorted/duplicate-free row invariant in every way the
// tolerant contract admits — duplicate columns, reverse-sorted rows,
// empty rows, self-loop-only rows — and requires the resulting graph to
// be bitwise identical (RowPtr and Col) to the direct count+scan+merge
// path run on the canonicalized equivalent, at every worker count.
func TestGraphFallbackAdversarial(t *testing.T) {
	cases := map[string]*Matrix{
		"duplicate columns": {
			Rows: 4, Cols: 4,
			RowPtr: []int{0, 3, 5, 7, 8},
			Col:    []int32{1, 1, 2, 0, 0, 3, 3, 2},
			Val:    []float64{1, 2, 3, 4, 5, 6, 7, 8},
		},
		"reverse sorted rows": {
			Rows: 4, Cols: 4,
			RowPtr: []int{0, 3, 6, 8, 10},
			Col:    []int32{3, 2, 1, 2, 1, 0, 3, 0, 2, 1},
			Val:    []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		},
		"empty rows": {
			Rows: 5, Cols: 5,
			RowPtr: []int{0, 0, 2, 2, 4, 4},
			Col:    []int32{4, 0, 2, 1},
			Val:    []float64{1, 2, 3, 4},
		},
		"self loop only rows": {
			Rows: 4, Cols: 4,
			RowPtr: []int{0, 1, 3, 4, 6},
			Col:    []int32{0, 1, 0, 2, 3, 3},
			Val:    []float64{1, 2, 3, 4, 5, 6},
		},
		"mixed adversarial": {
			// Duplicates, reverse order, self loops and an empty row in
			// one matrix; also rectangular-ish indices at the boundary.
			Rows: 6, Cols: 6,
			RowPtr: []int{0, 4, 4, 7, 9, 10, 12},
			Col:    []int32{5, 5, 0, 2, 4, 2, 2, 3, 1, 4, 1, 1},
			Val:    []float64{1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
		},
	}
	for name, a := range cases {
		canon := canonicalize(a)
		if !canon.rowsSorted(par.New(1)) {
			t.Fatalf("%s: canonicalized matrix still unsorted", name)
		}
		for _, workers := range []int{1, 2, 8} {
			rt := par.New(workers)
			got := a.GraphWith(rt)
			want := canon.GraphWith(rt)
			if err := got.Validate(); err != nil {
				t.Fatalf("%s w=%d: invalid graph: %v", name, workers, err)
			}
			if got.N != want.N || len(got.Col) != len(want.Col) {
				t.Fatalf("%s w=%d: |V|=%d nnz=%d, want |V|=%d nnz=%d",
					name, workers, got.N, len(got.Col), want.N, len(want.Col))
			}
			for v := 0; v <= got.N; v++ {
				if got.RowPtr[v] != want.RowPtr[v] {
					t.Fatalf("%s w=%d: RowPtr[%d]=%d, want %d", name, workers, v, got.RowPtr[v], want.RowPtr[v])
				}
			}
			for k := range got.Col {
				if got.Col[k] != want.Col[k] {
					t.Fatalf("%s w=%d: Col[%d]=%d, want %d", name, workers, k, got.Col[k], want.Col[k])
				}
			}
		}
	}
}
