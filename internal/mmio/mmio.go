// Package mmio reads and writes Matrix Market (.mtx) files, the exchange
// format of the SuiteSparse collection the paper's experiments draw from.
// The offline test environment substitutes synthetic surrogates
// (internal/matrices), but a downstream user with the real files can load
// them through this package and run every algorithm unchanged.
//
// Supported: `matrix coordinate` with `real`, `integer` or `pattern`
// fields and `general` or `symmetric` symmetry, the subset covering the
// paper's 15 SuiteSparse matrices.
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mis2go/internal/graph"
	"mis2go/internal/sparse"
)

// header describes a parsed MatrixMarket banner plus size line.
type header struct {
	rows, cols, nnz int
	pattern         bool
	symmetric       bool
}

func parseHeader(sc *bufio.Scanner) (header, error) {
	var h header
	if !sc.Scan() {
		return h, fmt.Errorf("mmio: empty input: %w", sc.Err())
	}
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) < 5 || banner[0] != "%%matrixmarket" || banner[1] != "matrix" {
		return h, fmt.Errorf("mmio: bad banner %q", sc.Text())
	}
	if banner[2] != "coordinate" {
		return h, fmt.Errorf("mmio: unsupported format %q (only coordinate)", banner[2])
	}
	switch banner[3] {
	case "real", "integer":
	case "pattern":
		h.pattern = true
	default:
		return h, fmt.Errorf("mmio: unsupported field %q", banner[3])
	}
	switch banner[4] {
	case "general":
	case "symmetric":
		h.symmetric = true
	default:
		return h, fmt.Errorf("mmio: unsupported symmetry %q", banner[4])
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return h, fmt.Errorf("mmio: bad size line %q", line)
		}
		var err error
		if h.rows, err = strconv.Atoi(f[0]); err != nil {
			return h, fmt.Errorf("mmio: bad row count: %w", err)
		}
		if h.cols, err = strconv.Atoi(f[1]); err != nil {
			return h, fmt.Errorf("mmio: bad col count: %w", err)
		}
		if h.nnz, err = strconv.Atoi(f[2]); err != nil {
			return h, fmt.Errorf("mmio: bad nnz count: %w", err)
		}
		if h.rows < 0 || h.cols < 0 || h.nnz < 0 {
			return h, fmt.Errorf("mmio: negative size line %q", line)
		}
		return h, nil
	}
	return h, fmt.Errorf("mmio: missing size line")
}

// entry is one coordinate triplet.
type entry struct {
	r, c int32
	v    float64
}

func readEntries(sc *bufio.Scanner, h header) ([]entry, error) {
	// Cap the header-driven preallocation: a corrupt size line must not
	// be able to demand an arbitrarily large upfront allocation.
	capHint := h.nnz
	if capHint > 1<<22 {
		capHint = 1 << 22
	}
	entries := make([]entry, 0, capHint)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if h.pattern {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("mmio: short entry %q", line)
		}
		r, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: bad row index: %w", err)
		}
		c, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: bad col index: %w", err)
		}
		if r < 1 || r > h.rows || c < 1 || c > h.cols {
			return nil, fmt.Errorf("mmio: index (%d,%d) out of bounds %dx%d", r, c, h.rows, h.cols)
		}
		v := 1.0
		if !h.pattern {
			if v, err = strconv.ParseFloat(f[2], 64); err != nil {
				return nil, fmt.Errorf("mmio: bad value: %w", err)
			}
		}
		entries = append(entries, entry{r: int32(r - 1), c: int32(c - 1), v: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) < h.nnz {
		return nil, fmt.Errorf("mmio: truncated input: header promises %d entries, found only %d", h.nnz, len(entries))
	}
	if len(entries) > h.nnz {
		return nil, fmt.Errorf("mmio: header promises %d entries, found %d (trailing data?)", h.nnz, len(entries))
	}
	return entries, nil
}

// ReadMatrix parses a Matrix Market stream into a CSR matrix. Symmetric
// inputs are expanded to full storage. Duplicate coordinates are
// rejected: the Matrix Market coordinate format stores each entry once,
// and silently summing (or keeping one of) the duplicates corrupts the
// matrix — in a symmetric file, storing both triangles of a pair makes
// the expanded value silently double.
func ReadMatrix(r io.Reader) (*sparse.Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	h, err := parseHeader(sc)
	if err != nil {
		return nil, err
	}
	entries, err := readEntries(sc, h)
	if err != nil {
		return nil, err
	}
	if h.symmetric {
		n := len(entries)
		for i := 0; i < n; i++ {
			e := entries[i]
			if e.r != e.c {
				entries = append(entries, entry{r: e.c, c: e.r, v: e.v})
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].r != entries[j].r {
			return entries[i].r < entries[j].r
		}
		return entries[i].c < entries[j].c
	})
	for i := 1; i < len(entries); i++ {
		if entries[i].r == entries[i-1].r && entries[i].c == entries[i-1].c {
			hint := ""
			if h.symmetric {
				hint = " (a symmetric file stores each off-diagonal pair once; the mirror is implied)"
			}
			return nil, fmt.Errorf("mmio: duplicate coordinate entry (%d,%d)%s",
				entries[i].r+1, entries[i].c+1, hint)
		}
	}
	m := &sparse.Matrix{Rows: h.rows, Cols: h.cols}
	m.RowPtr = make([]int, h.rows+1)
	m.Col = make([]int32, 0, len(entries))
	m.Val = make([]float64, 0, len(entries))
	for _, e := range entries {
		m.Col = append(m.Col, e.c)
		m.Val = append(m.Val, e.v)
		m.RowPtr[e.r+1]++
	}
	for i := 0; i < h.rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("mmio: inconsistent matrix: %w", err)
	}
	return m, nil
}

// ReadGraph parses a Matrix Market stream as an undirected graph:
// the pattern of the matrix, symmetrized, diagonal dropped.
func ReadGraph(r io.Reader) (*graph.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	h, err := parseHeader(sc)
	if err != nil {
		return nil, err
	}
	if h.rows != h.cols {
		return nil, fmt.Errorf("mmio: graph requires square matrix, got %dx%d", h.rows, h.cols)
	}
	entries, err := readEntries(sc, h)
	if err != nil {
		return nil, err
	}
	edges := make([]graph.Edge, 0, len(entries))
	for _, e := range entries {
		if e.r != e.c {
			edges = append(edges, graph.Edge{U: e.r, V: e.c})
		}
	}
	return graph.FromEdges(h.rows, edges), nil
}

// WriteMatrix writes m in coordinate real general format.
func WriteMatrix(w io.Writer, m *sparse.Matrix) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.Col[p]+1, m.Val[p])
		}
	}
	return bw.Flush()
}

// WriteGraph writes g in coordinate pattern symmetric format (each
// undirected edge once, lower triangle).
func WriteGraph(w io.Writer, g *graph.CSR) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern symmetric")
	edges := 0
	for v := int32(0); int(v) < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if u < v {
				edges++
			}
		}
	}
	fmt.Fprintf(bw, "%d %d %d\n", g.N, g.N, edges)
	for v := int32(0); int(v) < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if u < v {
				fmt.Fprintf(bw, "%d %d\n", v+1, u+1)
			}
		}
	}
	return bw.Flush()
}
