// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (§VI), each printing rows in the
// paper's format. The cmd/experiments binary and the root bench_test.go
// drive these runners.
//
// Architecture substitution: the paper measures four platforms (V100,
// MI100, Skylake, ThunderX2). This repository has one CPU; platform
// columns are replaced by worker-count configurations of the goroutine
// runtime, which exercise the identical parallel structure (see
// DESIGN.md). Relative comparisons between algorithms — the content of
// every table — are preserved.
package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/matrices"
	"mis2go/internal/mis"
)

// Config holds shared experiment parameters.
type Config struct {
	// Out receives the formatted table.
	Out io.Writer
	// Scale multiplies the paper's matrix sizes (1.0 = paper scale).
	Scale float64
	// Trials is the number of timing repetitions averaged (paper: 100).
	Trials int
	// Threads is the default worker count (0 = GOMAXPROCS).
	Threads int
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	return c
}

// timeMean runs f once to warm up, then trials times, returning the mean.
func timeMean(trials int, f func()) time.Duration {
	f()
	start := time.Now()
	for i := 0; i < trials; i++ {
		f()
	}
	return time.Duration(int64(time.Since(start)) / int64(trials))
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// geomean returns the geometric mean of positive values.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// threadConfigs returns the worker-count ladder used as the platform
// substitute: 1, 2, 4, ... up to GOMAXPROCS.
func threadConfigs() []int {
	maxT := runtime.GOMAXPROCS(0)
	var cfg []int
	for t := 1; t < maxT; t *= 2 {
		cfg = append(cfg, t)
	}
	return append(cfg, maxT)
}

// suiteGraphs materializes the 17-matrix suite at the configured scale.
func suiteGraphs(scale float64) []struct {
	Spec matrices.Spec
	G    *graph.CSR
} {
	specs := matrices.Suite()
	out := make([]struct {
		Spec matrices.Spec
		G    *graph.CSR
	}, len(specs))
	for i, s := range specs {
		out[i].Spec = s
		out[i].G = s.Build(scale)
	}
	return out
}

// Table1 reproduces Table I: MIS-2 iteration counts for the three random
// priority methods (Fixed as in Bell et al., plain xorshift, xorshift*).
func Table1(cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "Table I: MIS-2 iteration counts for three priority methods (scale=%.3g)\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s %8s %8s %9s\n", "matrix", "Fixed", "Xor", "Xor*")
	for _, m := range suiteGraphs(cfg.Scale) {
		fixed := mis.MIS2(m.G, mis.Options{Hash: hash.Fixed, Threads: cfg.Threads}).Iterations
		xor := mis.MIS2(m.G, mis.Options{Hash: hash.Xor, Threads: cfg.Threads}).Iterations
		star := mis.MIS2(m.G, mis.Options{Hash: hash.XorStar, Threads: cfg.Threads}).Iterations
		fmt.Fprintf(cfg.Out, "%-18s %8d %8d %9d\n", m.Spec.Name, fixed, xor, star)
	}
}

// Table2 reproduces Table II: suite statistics and mean MIS-2 times. The
// paper's four architectures become four worker-count configurations.
func Table2(cfg Config) {
	cfg = cfg.withDefaults()
	maxT := runtime.GOMAXPROCS(0)
	platforms := []int{1, maxT / 4, maxT / 2, maxT}
	for i, p := range platforms {
		if p < 1 {
			platforms[i] = 1
		}
	}
	fmt.Fprintf(cfg.Out, "Table II: suite statistics and mean MIS-2 time in ms over %d trials (scale=%.3g)\n", cfg.Trials, cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s %10s %12s %8s %8s", "matrix", "|V|", "|E|", "avg deg", "max deg")
	for _, p := range platforms {
		fmt.Fprintf(cfg.Out, " %9s", fmt.Sprintf("%dT", p))
	}
	fmt.Fprintln(cfg.Out)
	for _, m := range suiteGraphs(cfg.Scale) {
		fmt.Fprintf(cfg.Out, "%-18s %10d %12d %8.2f %8d",
			m.Spec.Name, m.G.N, m.G.NumEdges()/2, m.G.AvgDegree(), m.G.MaxDegree())
		for _, p := range platforms {
			d := timeMean(cfg.Trials, func() { mis.MIS2(m.G, mis.Options{Threads: p}) })
			fmt.Fprintf(cfg.Out, " %9.3f", ms(d))
		}
		fmt.Fprintln(cfg.Out)
	}
}

// Fig2 reproduces Figure 2: cumulative speedup of the four optimizations
// over the Bell baseline, per matrix plus geometric means.
func Fig2(cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "Figure 2: cumulative optimization speedups over Bell baseline (scale=%.3g)\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s", "matrix")
	for v := mis.Variant(1); v < mis.NumVariants; v++ {
		fmt.Fprintf(cfg.Out, " %16s", v.String())
	}
	fmt.Fprintln(cfg.Out)
	speedups := make([][]float64, mis.NumVariants)
	for _, m := range suiteGraphs(cfg.Scale) {
		times := make([]time.Duration, mis.NumVariants)
		for v := mis.Variant(0); v < mis.NumVariants; v++ {
			v := v
			times[v] = timeMean(cfg.Trials, func() { mis.MIS2Variant(m.G, v, cfg.Threads) })
		}
		fmt.Fprintf(cfg.Out, "%-18s", m.Spec.Name)
		for v := mis.Variant(1); v < mis.NumVariants; v++ {
			s := float64(times[0]) / float64(times[v])
			speedups[v] = append(speedups[v], s)
			fmt.Fprintf(cfg.Out, " %15.2fx", s)
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintf(cfg.Out, "%-18s", "geomean")
	for v := mis.Variant(1); v < mis.NumVariants; v++ {
		fmt.Fprintf(cfg.Out, " %15.2fx", geomean(speedups[v]))
	}
	fmt.Fprintln(cfg.Out)
}

// Table3 reproduces Table III: MIS-2 size and iteration count for growing
// structured problems (Elasticity and Laplace grids).
func Table3(cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "Table III: MIS-2 size and iterations on structured problems (scale=%.3g)\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-26s %10s %10s %7s\n", "problem", "|V|", "|MIS-2|", "iters")
	s := math.Cbrt(cfg.Scale * 50) // paper runs at scale ~1; keep dims proportional
	dims := func(x, y, z int) (int, int, int) {
		f := func(d int) int {
			v := int(float64(d) * s / math.Cbrt(50))
			if v < 4 {
				v = 4
			}
			return v
		}
		return f(x), f(y), f(z)
	}
	type row struct {
		name    string
		x, y, z int
		elas    bool
	}
	rows := []row{
		{name: "Elasticity 30x30x30", x: 30, y: 30, z: 30, elas: true},
		{name: "Elasticity 60x30x30", x: 60, y: 30, z: 30, elas: true},
		{name: "Elasticity 60x60x30", x: 60, y: 60, z: 30, elas: true},
		{name: "Elasticity 60x60x60", x: 60, y: 60, z: 60, elas: true},
		{name: "Laplace 50x50x50", x: 50, y: 50, z: 50},
		{name: "Laplace 100x50x50", x: 100, y: 50, z: 50},
		{name: "Laplace 100x100x50", x: 100, y: 100, z: 50},
		{name: "Laplace 100x100x100", x: 100, y: 100, z: 100},
	}
	for _, r := range rows {
		x, y, z := dims(r.x, r.y, r.z)
		g := buildStructured(x, y, z, r.elas)
		res := mis.MIS2(g, mis.Options{Threads: cfg.Threads})
		fmt.Fprintf(cfg.Out, "%-26s %10d %10d %7d\n", r.name, g.N, len(res.InSet), res.Iterations)
	}
}

// Fig3 reproduces Figure 3: bandwidth-efficiency portability profiles.
// Platform = worker config; efficiency = MIS-2 instances per second per
// worker, normalized per problem to the best config.
func Fig3(cfg Config) {
	cfg = cfg.withDefaults()
	configs := threadConfigs()
	fmt.Fprintf(cfg.Out, "Figure 3: efficiency profile across worker configs (scale=%.3g)\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s", "matrix")
	for _, t := range configs {
		fmt.Fprintf(cfg.Out, " %8s", fmt.Sprintf("%dT", t))
	}
	fmt.Fprintln(cfg.Out)
	for _, m := range suiteGraphs(cfg.Scale) {
		eff := make([]float64, len(configs))
		best := 0.0
		for i, t := range configs {
			t := t
			d := timeMean(cfg.Trials, func() { mis.MIS2(m.G, mis.Options{Threads: t}) })
			eff[i] = 1 / (d.Seconds() * float64(t)) // instances/sec per worker
			if eff[i] > best {
				best = eff[i]
			}
		}
		fmt.Fprintf(cfg.Out, "%-18s", m.Spec.Name)
		for i := range configs {
			fmt.Fprintf(cfg.Out, " %8.3f", eff[i]/best)
		}
		fmt.Fprintln(cfg.Out)
	}
}

// Fig4 reproduces Figure 4 (strong scaling; the paper's Intel sweep):
// efficiency t1/(t_k * k) per worker count, including oversubscription
// beyond the physical core count, which mirrors the paper's hyperthread
// falloff.
func Fig4(cfg Config) { figScaling(cfg, "Figure 4: strong scaling efficiency (Intel sweep analogue)") }

// Fig5 reproduces Figure 5 (the paper's ARM sweep; same harness, second
// measurement pass).
func Fig5(cfg Config) { figScaling(cfg, "Figure 5: strong scaling efficiency (ARM sweep analogue)") }

func figScaling(cfg Config, title string) {
	cfg = cfg.withDefaults()
	maxT := runtime.GOMAXPROCS(0)
	configs := threadConfigs()
	configs = append(configs, 2*maxT) // oversubscription point
	fmt.Fprintf(cfg.Out, "%s (scale=%.3g)\n", title, cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s", "matrix")
	for _, t := range configs {
		fmt.Fprintf(cfg.Out, " %8s", fmt.Sprintf("%dT", t))
	}
	fmt.Fprintln(cfg.Out)
	for _, m := range suiteGraphs(cfg.Scale) {
		var t1 time.Duration
		fmt.Fprintf(cfg.Out, "%-18s", m.Spec.Name)
		for i, t := range configs {
			t := t
			d := timeMean(cfg.Trials, func() { mis.MIS2(m.G, mis.Options{Threads: t}) })
			if i == 0 {
				t1 = d
			}
			fmt.Fprintf(cfg.Out, " %8.3f", float64(t1)/(float64(d)*float64(t)))
		}
		fmt.Fprintln(cfg.Out)
	}
}

// buildStructured builds either an Elasticity (27-pt, 3 dof) or Laplace
// (7-pt) grid graph.
func buildStructured(x, y, z int, elasticity bool) *graph.CSR {
	if elasticity {
		return genElasticity(x, y, z)
	}
	return genLaplace(x, y, z)
}
