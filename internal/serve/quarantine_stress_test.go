// Poison-pattern storm test: concurrent traffic mixing healthy systems
// with three poison classes — an indefinite operator (CG breakdown), a
// NaN right-hand side (non-finite residual), and an exactly singular
// operator (divergence) — against a service with the circuit breaker
// armed. The gates: every poison request fails with a classified
// numerical error or a quarantine rejection (never an unclassified
// error), healthy traffic stays bitwise identical to its sequential
// references throughout, the breaker opens and (for a transient poison)
// probes half-open and closes again, no deadlock (watchdog), and zero
// goroutine leaks. Runs under -race in `make check`.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/gen"
	"mis2go/internal/krylov"
	"mis2go/internal/leakcheck"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

func TestServeStressPoisonQuarantine(t *testing.T) {
	cfg := Config{
		AMG:           amg.Options{MinCoarseSize: 40},
		Tol:           1e-10,
		MaxIter:       200,
		CacheCapacity: 2, // below the pattern count: eviction pressure during the storm
		BatchWindow:   100 * time.Microsecond,
		MaxBatch:      4,
		// The ladder is off: every poison request keeps its classified
		// failure, so the breaker sees each one (the ladder has its own
		// tests; here it would only slow the storm down).
		MaxEscalations:      -1,
		QuarantineThreshold: 3,
		QuarantineCooldown:  10 * time.Millisecond,
	}
	s := New(cfg)
	rcfg := cfg.withDefaults()
	rt := par.New(rcfg.Threads)

	// Healthy traffic: two patterns, two value sets each, with
	// sequential references through the same guarded batch kernel.
	type system struct {
		a    *sparse.Matrix
		b    []float64
		want []float64
	}
	patterns := []*sparse.Matrix{
		gen.Laplacian(gen.Laplace3D(7, 7, 7), 0.05),
		gen.Laplacian(gen.Laplace2D(20, 20), 0.1),
	}
	reference := func(a *sparse.Matrix, b []float64) []float64 {
		h, err := amg.Build(a, rcfg.AMG)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, a.Rows)
		if _, err := krylov.CGBatchCtx(nil, rt, a, append([]float64(nil), b...), want, 1, rcfg.Tol, rcfg.MaxIter, h, nil, rcfg.Health); err != nil {
			t.Fatal(err)
		}
		return want
	}
	var healthy []system
	for p, base := range patterns {
		for v, sc := range []float64{1, 2.5} {
			a := base.Clone()
			a.Scale(sc)
			b := make([]float64, a.Rows)
			for i := range b {
				b[i] = float64((i*13+p+v)%23) - 11
			}
			healthy = append(healthy, system{a: a, b: b, want: reference(a, b)})
		}
	}

	// Poison traffic. Each class has its own pattern (the breaker keys
	// on pattern fingerprints, so healthy patterns are never tainted):
	// an indefinite operator (breakdown), an exactly singular Neumann
	// Laplacian (divergence), and a healthy "transient" pattern served
	// NaN right-hand sides during the storm — the one that must recover
	// through a half-open probe afterwards.
	indefinite := gen.Laplacian(gen.Laplace2D(14, 14), 0.1)
	indefinite.Scale(-1)
	singular := gen.Laplacian(gen.Laplace2D(16, 16), 0)
	transient := gen.Laplacian(gen.Laplace3D(6, 6, 6), 0.1)
	rhsFor := func(a *sparse.Matrix, nan bool) []float64 {
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1 + float64(i%5)
		}
		if nan {
			b[len(b)/3] = math.NaN()
		}
		return b
	}
	transientWant := reference(transient, rhsFor(transient, false))

	base := leakcheck.Capture()

	const goroutines = 8
	requests := 40
	if testing.Short() {
		requests = 12
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				seq := g*requests + r
				if seq%3 == 0 {
					// Poison request, class rotating.
					var a *sparse.Matrix
					var b []float64
					switch (seq / 3) % 3 {
					case 0:
						a, b = indefinite, rhsFor(indefinite, false)
					case 1:
						a, b = singular, rhsFor(singular, false)
					default:
						a, b = transient, rhsFor(transient, true)
					}
					_, _, err := s.Solve(context.Background(), a, b)
					if err == nil {
						errc <- fmt.Errorf("goroutine %d request %d: poison solve returned success", g, r)
						return
					}
					if !isNumericalFailure(err) && !errors.Is(err, ErrQuarantined) {
						errc <- fmt.Errorf("goroutine %d request %d: unclassified poison failure: %w", g, r, err)
						return
					}
					continue
				}
				sys := healthy[seq%len(healthy)]
				x, _, err := s.Solve(context.Background(), sys.a, sys.b)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d request %d: healthy solve failed: %w", g, r, err)
					return
				}
				for i := range x {
					if math.Float64bits(x[i]) != math.Float64bits(sys.want[i]) {
						errc <- fmt.Errorf("goroutine %d request %d: healthy bit mismatch at %d (%g vs %g)",
							g, r, i, x[i], sys.want[i])
						return
					}
				}
			}
		}(g)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("poison storm deadlocked")
	}
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	m := s.Metrics()
	t.Logf("poison storm metrics: %+v", m)
	if m.NumericalFailures == 0 {
		t.Fatal("no classified numerical failures; the poison mix is broken")
	}
	if m.Quarantines == 0 {
		t.Fatal("the breaker never opened under sustained poison")
	}
	if m.QuarantineRejections == 0 {
		t.Fatal("no request was failed fast; the breaker is not saving any work")
	}

	// Half-open recovery: the transient pattern was only ever poisoned
	// through its right-hand sides; healthy requests against it must get
	// through a probe and close its breaker within the backoff budget
	// (cooldowns double per failed probe, capped at 64x the 10ms base).
	healthyB := rhsFor(transient, false)
	deadline := time.Now().Add(30 * time.Second)
	for {
		x, st, err := s.Solve(context.Background(), transient, healthyB)
		if err == nil {
			if !st.Converged {
				t.Fatalf("transient recovery not converged: %+v", st)
			}
			for i := range x {
				if math.Float64bits(x[i]) != math.Float64bits(transientWant[i]) {
					t.Fatalf("transient recovery bit mismatch at %d", i)
				}
			}
			break
		}
		var qe *QuarantinedError
		if !errors.As(err, &qe) {
			t.Fatalf("transient recovery: unexpected failure: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("transient pattern never recovered: %v (metrics %+v)", err, s.Metrics())
		}
		time.Sleep(qe.RetryAfter + time.Millisecond)
	}
	m = s.Metrics()
	if m.Probes == 0 || m.ProbeSuccesses == 0 {
		t.Fatalf("recovery did not go through a half-open probe: %+v", m)
	}
	// Closed for good: an immediate follow-up must not probe or reject.
	if _, _, err := s.Solve(context.Background(), transient, healthyB); err != nil {
		t.Fatalf("post-recovery solve failed: %v", err)
	}
	if got := s.Metrics(); got.Probes != m.Probes {
		t.Fatalf("breaker still probing after recovery: %+v", got)
	}

	// Healthy sweep through whatever cache state survived.
	for i, sys := range healthy {
		x, _, err := s.Solve(context.Background(), sys.a, sys.b)
		if err != nil {
			t.Fatalf("post-storm healthy solve %d: %v", i, err)
		}
		for j := range x {
			if math.Float64bits(x[j]) != math.Float64bits(sys.want[j]) {
				t.Fatalf("post-storm healthy solve %d: bit mismatch at %d", i, j)
			}
		}
	}

	leakcheck.Check(t, base)
}

// TestServeHealthyBitwiseAcrossWorkerCounts: the health guard reads
// only residual norms the convergence test already computes, so the
// healthy path through a guarded service is bitwise identical at every
// worker count.
func TestServeHealthyBitwiseAcrossWorkerCounts(t *testing.T) {
	a := gen.Laplacian(gen.Laplace3D(7, 7, 7), 0.05)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64((i*13)%23) - 11
	}
	var want []float64
	for _, threads := range []int{1, 2, 8} {
		cfg := Config{
			AMG:         amg.Options{MinCoarseSize: 40},
			Tol:         1e-10,
			MaxIter:     200,
			BatchWindow: -1,
			Threads:     threads,
		}
		s := New(cfg)
		x, st, err := s.Solve(context.Background(), a, b)
		if err != nil {
			t.Fatalf("threads %d: %v", threads, err)
		}
		if !st.Converged {
			t.Fatalf("threads %d: not converged: %+v", threads, st)
		}
		if want == nil {
			want = x
			continue
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(want[i]) {
				t.Fatalf("threads %d: bit mismatch at %d (%g vs %g)", threads, i, x[i], want[i])
			}
		}
	}
}
