package schwarz

import (
	"math"
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

func poisson(nx, ny int) (*sparse.Matrix, []float64) {
	g := gen.Laplace2D(nx, ny)
	a := gen.DirichletLaplacian(g, 4)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = math.Sin(0.07*float64(i)) + 1
	}
	return a, b
}

func TestSchwarzPreconditionedCG(t *testing.T) {
	a, b := poisson(40, 40)
	p, err := New(a, Options{Subdomains: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSubdomains() == 0 || !p.HasCoarse() {
		t.Fatalf("unexpected structure: %d subdomains, coarse=%v", p.NumSubdomains(), p.HasCoarse())
	}
	x := make([]float64, a.Rows)
	st, err := krylov.CG(par.New(0), a, b, x, 1e-10, 500, p)
	if err != nil || !st.Converged {
		t.Fatalf("Schwarz-CG failed: %v %+v", err, st)
	}
	// Must beat unpreconditioned CG.
	y := make([]float64, a.Rows)
	stPlain, err := krylov.CG(par.New(0), a, b, y, 1e-10, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations >= stPlain.Iterations {
		t.Fatalf("Schwarz iterations %d >= plain %d", st.Iterations, stPlain.Iterations)
	}
}

func TestCoarseLevelHelps(t *testing.T) {
	// The two-level method scales with subdomain count; one-level
	// degrades. At fixed size, two-level should need no more iterations.
	a, b := poisson(36, 36)
	rt := par.New(0)
	iters := func(noCoarse bool) int {
		p, err := New(a, Options{Subdomains: 16, NoCoarse: noCoarse})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows)
		st, err := krylov.CG(rt, a, b, x, 1e-10, 1000, p)
		if err != nil || !st.Converged {
			t.Fatalf("noCoarse=%v: %v %+v", noCoarse, err, st)
		}
		return st.Iterations
	}
	one, two := iters(true), iters(false)
	if two > one {
		t.Fatalf("coarse level hurt: %d (two-level) vs %d (one-level)", two, one)
	}
}

func TestOverlapImprovesConvergence(t *testing.T) {
	a, b := poisson(32, 32)
	rt := par.New(0)
	iters := func(overlap int) int {
		p, err := New(a, Options{Subdomains: 8, Overlap: overlap, NoCoarse: true})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows)
		st, err := krylov.CG(rt, a, b, x, 1e-10, 2000, p)
		if err != nil || !st.Converged {
			t.Fatalf("overlap=%d: %v %+v", overlap, err, st)
		}
		return st.Iterations
	}
	if i2, i1 := iters(2), iters(1); i2 > i1+3 {
		t.Fatalf("more overlap degraded convergence: %d vs %d", i2, i1)
	}
}

func TestDeterministicAcrossThreads(t *testing.T) {
	// Bitwise determinism of the pooled subdomain fan at 1/2/8 workers,
	// with the local AMG threshold forced low so large subdomains
	// exercise the hierarchy path, not just dense LU.
	a, b := poisson(32, 32)
	run := func(threads int) []float64 {
		p, err := New(a, Options{Subdomains: 8, Threads: threads, LocalAMGThreshold: 64})
		if err != nil {
			t.Fatal(err)
		}
		if st := p.Stats(); st.AMGLocal == 0 {
			t.Fatalf("threshold 64 produced no AMG locals: %+v", st)
		}
		z := make([]float64, a.Rows)
		p.Precondition(b, z)
		return z
	}
	z1 := run(1)
	for _, threads := range []int{2, 8} {
		zt := run(threads)
		for i := range z1 {
			if z1[i] != zt[i] {
				t.Fatalf("threads=%d nondeterministic at %d: %g vs %g", threads, i, z1[i], zt[i])
			}
		}
	}
}

func TestPreconditionerIsSymmetricOperator(t *testing.T) {
	// Additive Schwarz with exact local solves is symmetric:
	// <M r1, r2> == <r1, M r2>.
	a, _ := poisson(20, 20)
	p, err := New(a, Options{Subdomains: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	r1 := make([]float64, n)
	r2 := make([]float64, n)
	for i := 0; i < n; i++ {
		r1[i] = math.Sin(0.3 * float64(i))
		r2[i] = math.Cos(0.11 * float64(i))
	}
	z1 := make([]float64, n)
	z2 := make([]float64, n)
	p.Precondition(r1, z1)
	p.Precondition(r2, z2)
	var a12, a21 float64
	for i := 0; i < n; i++ {
		a12 += z1[i] * r2[i]
		a21 += r1[i] * z2[i]
	}
	if math.Abs(a12-a21) > 1e-9*(1+math.Abs(a12)) {
		t.Fatalf("not symmetric: %g vs %g", a12, a21)
	}
}

func TestErrorCases(t *testing.T) {
	bad := &sparse.Matrix{Rows: 2, Cols: 3, RowPtr: []int{0, 0, 0}}
	if _, err := New(bad, Options{}); err == nil {
		t.Fatal("non-square accepted")
	}
	empty := &sparse.Matrix{Rows: 0, Cols: 0, RowPtr: []int{0}}
	if _, err := New(empty, Options{}); err == nil {
		t.Fatal("empty accepted")
	}
	a, _ := poisson(10, 10)
	if _, err := New(a, Options{Overlap: -1}); err == nil {
		t.Fatal("negative overlap accepted")
	}
	// With dense local solves forced, a subdomain above sparse.MaxDenseN
	// must be rejected with a helpful error, not an OOM.
	big, _ := poisson(100, 100)
	if _, err := New(big, Options{Subdomains: 2, NoCoarse: true, LocalAMGThreshold: -1}); err == nil {
		t.Fatal("oversized dense subdomain accepted")
	}
	// The same configuration is legal by default: large subdomains get
	// per-subdomain AMG hierarchies instead of dense factorizations.
	p, err := New(big, Options{Subdomains: 2, NoCoarse: true})
	if err != nil {
		t.Fatalf("AMG local solver rejected a large subdomain: %v", err)
	}
	if st := p.Stats(); st.AMGLocal != p.NumSubdomains() || st.DenseLocal != 0 {
		t.Fatalf("expected all-AMG locals, got %+v", st)
	}
	// Apply-only operator formats expose no CSR entries to extract.
	sell, err := sparse.NewOperator(a, sparse.FormatSELL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sell, Options{}); err == nil {
		t.Fatal("SELL operator accepted")
	}
}

func TestDefaultsReasonable(t *testing.T) {
	a, b := poisson(40, 40)
	p, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSubdomains() < 2 {
		t.Fatalf("defaults produced %d subdomains", p.NumSubdomains())
	}
	x := make([]float64, a.Rows)
	st, err := krylov.CG(par.New(0), a, b, x, 1e-9, 1000, p)
	if err != nil || !st.Converged {
		t.Fatalf("defaults failed: %v %+v", err, st)
	}
}
