# Makefile — build, test, and perf-trajectory targets.
#
# `make bench` runs the tracked hot-path micro-benchmarks and writes
# BENCH_PR$(PR).json with current numbers joined against the committed
# seed baseline (BENCH_SEED.json), including per-benchmark speedups.

PR ?= 1
BENCH_PATTERN := 'BenchmarkRepeatedMultiply|BenchmarkRepeatedRAP|BenchmarkCGJacobi$$|BenchmarkCGJacobiWorkspace|BenchmarkSpMVHot|BenchmarkVCycleApply|BenchmarkGSSweepApply|BenchmarkMIS2Repeated'

.PHONY: all build test race bench

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -run '^$$' -bench $(BENCH_PATTERN) -benchtime=1s -count=1 . \
		| go run ./cmd/benchjson -baseline BENCH_SEED.json -label pr$(PR) -out BENCH_PR$(PR).json
