// Symbolic/numeric setup split: cached SpGEMM plans.
//
// AMG setup solves long sequences of systems whose sparsity pattern is
// fixed while the values change (time stepping, Newton, parameter
// sweeps). The expensive part of Gustavson's SpGEMM — the mark/merge
// symbolic phase that discovers each output row's pattern — depends only
// on the operand patterns, so it can run once and be replayed. A *plan*
// captures that symbolic result: the output RowPtr/Col (sorted rows) plus
// a fingerprint of the operand patterns, and its Numeric method refills a
// result matrix's values with zero steady-state allocations (accumulator
// scratch comes from the worker arenas).
//
// Every replay is bitwise identical to the corresponding one-shot kernel
// (Multiply, Transpose, SmoothProlongator, RAP): the per-row accumulation
// order is the same, and gathering through the pre-sorted pattern visits
// entries in exactly the order the one-shot kernel writes them after its
// row sort. Replays are deterministic for any worker count, and a plan
// built at one worker count replays identically at any other.
package sparse

import (
	"fmt"
	"math"

	"mis2go/internal/hash"
	"mis2go/internal/par"
)

// fingerprint returns the pattern fingerprint of a matrix.
func fingerprint(a *Matrix) uint64 {
	return hash.PatternFingerprint(a.Rows, a.Cols, a.RowPtr, a.Col)
}

// ProductPlan is the cached symbolic phase of Multiply: the pattern of
// C = A*B for fixed operand patterns. Create with PlanMultiply; replay
// values with Numeric. The plan's pattern slices are shared with
// matrices returned by NewMatrix and must not be mutated.
type ProductPlan struct {
	aRows, aCols, bCols int
	aFP, bFP            uint64
	ptr                 []int
	col                 []int32
	// The gather schedule: output entry k is the sum of
	// a.Val[aIdx[t]]*b.Val[bIdx[t]] for t in [entryPtr[k], entryPtr[k+1]),
	// accumulated in stored order — exactly the order Gustavson's fused
	// kernel touches those contributions, so a schedule replay is bitwise
	// identical to it while running branch-free with no accumulator
	// scratch. nil (falling back to the mark/acc replay) when an index
	// would overflow int32.
	entryPtr   []int
	aIdx, bIdx []int32
}

// PlanMultiply computes the pattern of C = A*B (Gustavson's mark phase:
// count, scan, then collect-and-sort each output row) and returns the
// reusable plan. Only the operand patterns are read, never the values.
func PlanMultiply(rt *par.Runtime, a, b *Matrix) (*ProductPlan, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("sparse: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	pl := &ProductPlan{
		aRows: a.Rows, aCols: a.Cols, bCols: b.Cols,
		aFP: fingerprint(a), bFP: fingerprint(b),
	}
	pl.ptr = make([]int, a.Rows+1)
	car := par.AcquireArena()
	counts := par.Get[int](car, a.Rows)
	countProductRows(rt, a, b, counts)
	nnz := par.ScanExclusive(rt, counts, pl.ptr)
	par.Put(car, counts)
	par.ReleaseArena(car)
	pl.col = make([]int32, nnz)

	// Fill pass: collect each output row's pattern and sort it, so every
	// numeric replay can gather through it without sorting.
	par.ForWith(rt, a.Rows,
		func(ar *par.Arena) []int32 {
			mark := par.Get[int32](ar, b.Cols)
			for i := range mark {
				mark[i] = -1
			}
			return mark
		},
		func(lo, hi int, mark []int32) {
			for i := lo; i < hi; i++ {
				base := pl.ptr[i]
				k := base
				for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
					row := a.Col[p]
					for q := b.RowPtr[row]; q < b.RowPtr[row+1]; q++ {
						j := b.Col[q]
						if mark[j] != int32(i) {
							mark[j] = int32(i)
							pl.col[k] = j
							k++
						}
					}
				}
				sortRow(pl.col[base:k])
			}
		},
		func(ar *par.Arena, mark []int32) { par.Put(ar, mark) })
	pl.buildSchedule(rt, a, b)
	return pl, nil
}

// maxScheduleFlopsFactor bounds the gather schedule's memory: the
// schedule stores 8 bytes per multiply-add, so a product whose flop
// count exceeds this multiple of the combined operand/result sizes
// (dense-ish rows, far outside the mesh/Galerkin regime the schedule
// targets) would let the plan dwarf the matrices it serves. Such plans
// fall back to the mark/acc replay, which is bitwise identical.
const maxScheduleFlopsFactor = 8

// buildSchedule records, for every output entry, its (aIdx, bIdx)
// contribution pairs in the exact order the fused Gustavson kernel
// accumulates them: per row, A entries in order, each expanded over its
// B row. Rows own contiguous entry ranges, so both passes parallelize
// over rows with disjoint writes (deterministic for any worker count,
// and independent of the planning worker count). Skipped when any index
// would overflow the int32 schedule storage or the flop count exceeds
// the memory bound.
func (pl *ProductPlan) buildSchedule(rt *par.Runtime, a, b *Matrix) {
	nnz := len(pl.col)
	if len(a.Val) > math.MaxInt32 || len(b.Val) > math.MaxInt32 {
		return
	}
	pl.entryPtr = make([]int, nnz+1)
	car := par.AcquireArena()
	counts := par.Get[int](car, nnz)
	// Pass 1: contributions per output entry. pos maps a column to its
	// entry index within the current row (only the row's own columns are
	// read back, so no clearing between rows is needed).
	par.ForWith(rt, pl.aRows,
		func(ar *par.Arena) []int32 {
			return par.Get[int32](ar, pl.bCols)
		},
		func(lo, hi int, pos []int32) {
			for i := lo; i < hi; i++ {
				for k := pl.ptr[i]; k < pl.ptr[i+1]; k++ {
					pos[pl.col[k]] = int32(k - pl.ptr[i])
					counts[k] = 0
				}
				base := pl.ptr[i]
				for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
					row := a.Col[p]
					for q := b.RowPtr[row]; q < b.RowPtr[row+1]; q++ {
						counts[base+int(pos[b.Col[q]])]++
					}
				}
			}
		},
		func(ar *par.Arena, pos []int32) { par.Put(ar, pos) })
	total := par.ScanExclusive(rt, counts, pl.entryPtr)
	par.Put(car, counts)
	par.ReleaseArena(car)
	if total > math.MaxInt32 || total > maxScheduleFlopsFactor*(len(a.Col)+len(b.Col)+nnz) {
		pl.entryPtr = nil
		return
	}
	pl.aIdx = make([]int32, total)
	pl.bIdx = make([]int32, total)
	// Pass 2: write the pairs through per-entry cursors (row-owned, so
	// the cursor array needs no synchronization).
	par.ForWith(rt, pl.aRows,
		func(ar *par.Arena) scheduleScratch {
			return scheduleScratch{
				pos: par.Get[int32](ar, pl.bCols),
				cur: par.Get[int](ar, maxRowNNZ(pl.ptr, pl.aRows)),
			}
		},
		func(lo, hi int, s scheduleScratch) {
			for i := lo; i < hi; i++ {
				base := pl.ptr[i]
				for k := base; k < pl.ptr[i+1]; k++ {
					s.pos[pl.col[k]] = int32(k - base)
					s.cur[k-base] = pl.entryPtr[k]
				}
				for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
					row := a.Col[p]
					for q := b.RowPtr[row]; q < b.RowPtr[row+1]; q++ {
						e := s.pos[b.Col[q]]
						t := s.cur[e]
						pl.aIdx[t] = int32(p)
						pl.bIdx[t] = int32(q)
						s.cur[e] = t + 1
					}
				}
			}
		},
		func(ar *par.Arena, s scheduleScratch) {
			par.Put(ar, s.pos)
			par.Put(ar, s.cur)
		})
}

// scheduleScratch is the per-participant state of the schedule fill
// pass: the column→entry position map and the per-entry write cursors
// of the current row.
type scheduleScratch struct {
	pos []int32
	cur []int
}

// maxRowNNZ returns the largest output-row length, sizing the per-row
// cursor scratch.
func maxRowNNZ(ptr []int, rows int) int {
	m := 0
	for i := 0; i < rows; i++ {
		if l := ptr[i+1] - ptr[i]; l > m {
			m = l
		}
	}
	return m
}

// NNZ returns the number of stored entries of the planned product.
func (pl *ProductPlan) NNZ() int { return len(pl.col) }

// NewMatrix returns a result matrix with the plan's pattern and zeroed
// values, ready for Numeric. The RowPtr/Col slices are shared with the
// plan (both treat the pattern as immutable).
func (pl *ProductPlan) NewMatrix() *Matrix {
	return &Matrix{Rows: pl.aRows, Cols: pl.bCols, RowPtr: pl.ptr, Col: pl.col, Val: make([]float64, len(pl.col))}
}

// Numeric replays the plan for new operand values: c.Val is overwritten
// with the values of A*B. A and B must have the planned patterns
// (verified via fingerprint), and c must carry the plan's pattern —
// normally a matrix from NewMatrix. Zero steady-state allocations;
// bitwise identical to Multiply on the same operands.
func (pl *ProductPlan) Numeric(rt *par.Runtime, a, b, c *Matrix) error {
	if err := pl.checkShapes(a, b, c); err != nil {
		return err
	}
	if fingerprint(a) != pl.aFP {
		return fmt.Errorf("sparse: plan replay: pattern of A changed since PlanMultiply")
	}
	if fingerprint(b) != pl.bFP {
		return fmt.Errorf("sparse: plan replay: pattern of B changed since PlanMultiply")
	}
	pl.numeric(rt, a, b, c)
	return nil
}

// Replay is Numeric without the O(nnz) fingerprint verification, for
// callers that already guarantee the operand patterns match the plan —
// e.g. an AMG hierarchy that fingerprint-checks its fine matrix once per
// refresh and owns every other operand. Shapes and pattern sizes are
// still checked.
//
//amg:hotpath
func (pl *ProductPlan) Replay(rt *par.Runtime, a, b, c *Matrix) error {
	if err := pl.checkShapes(a, b, c); err != nil {
		return err
	}
	pl.numeric(rt, a, b, c)
	return nil
}

// checkShapes verifies the O(1) replay preconditions: operand and result
// dimensions and stored-entry counts.
func (pl *ProductPlan) checkShapes(a, b, c *Matrix) error {
	if a.Rows != pl.aRows || a.Cols != pl.aCols || b.Rows != pl.aCols || b.Cols != pl.bCols {
		return fmt.Errorf("sparse: plan replay dimension mismatch %dx%d * %dx%d (planned %dx%d * %dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, pl.aRows, pl.aCols, pl.aCols, pl.bCols)
	}
	if c.Rows != pl.aRows || c.Cols != pl.bCols || len(c.Col) != len(pl.col) || len(c.Val) != len(pl.col) {
		return fmt.Errorf("sparse: plan replay: result matrix does not carry the plan pattern (use NewMatrix)")
	}
	return nil
}

// numeric is the unchecked replay, used internally where the operands
// are plan-owned and the checks would be redundant per-call cost. With a
// gather schedule the replay is a branch-free multiply-add stream over
// the cached (aIdx, bIdx) pairs; otherwise it falls back to the mark/acc
// accumulation. Both paths are bitwise identical to Multiply.
//
//amg:hotpath
func (pl *ProductPlan) numeric(rt *par.Runtime, a, b, c *Matrix) {
	if pl.entryPtr != nil {
		if rt.Serial(pl.aRows) {
			pl.scheduleRange(a, b, c, 0, pl.aRows)
			return
		}
		rt.For(pl.aRows, func(lo, hi int) {
			pl.scheduleRange(a, b, c, lo, hi)
		})
		return
	}
	if rt.Serial(pl.aRows) {
		ar := par.AcquireArena()
		mark := par.Get[int32](ar, pl.bCols)
		acc := par.Get[float64](ar, pl.bCols)
		for i := range mark {
			mark[i] = -1
		}
		productNumericRange(a, b, c, mark, acc, 0, pl.aRows)
		par.Put(ar, mark)
		par.Put(ar, acc)
		par.ReleaseArena(ar)
		return
	}
	par.ForWith(rt, pl.aRows,
		func(ar *par.Arena) spgemmScratch {
			s := spgemmScratch{
				mark: par.Get[int32](ar, pl.bCols),
				acc:  par.Get[float64](ar, pl.bCols),
			}
			for i := range s.mark {
				s.mark[i] = -1
			}
			return s
		},
		func(lo, hi int, s spgemmScratch) {
			productNumericRange(a, b, c, s.mark, s.acc, lo, hi)
		},
		func(ar *par.Arena, s spgemmScratch) {
			par.Put(ar, s.mark)
			par.Put(ar, s.acc)
		})
}

// scheduleRange replays rows [lo, hi) through the gather schedule: each
// output entry sums its cached contribution pairs in stored order. The
// first pair initializes the accumulator (not 0 + x, preserving the
// fused kernel's first-touch semantics bit for bit, signed zeros
// included); every entry has at least one pair by construction.
//
//amg:hotpath
func (pl *ProductPlan) scheduleRange(a, b, c *Matrix, lo, hi int) {
	ep := pl.entryPtr
	ai, bi := pl.aIdx, pl.bIdx
	av, bv := a.Val, b.Val
	for k := pl.ptr[lo]; k < pl.ptr[hi]; k++ {
		s, e := ep[k], ep[k+1]
		acc := av[ai[s]] * bv[bi[s]]
		for t := s + 1; t < e; t++ {
			acc += av[ai[t]] * bv[bi[t]]
		}
		c.Val[k] = acc
	}
}

// productNumericRange replays rows [lo, hi): the same first-touch
// accumulation as Multiply's numeric pass, then a gather through the
// pre-sorted cached pattern (which visits entries in exactly the order
// Multiply writes them after sortRow — hence bitwise-identical values).
//
//amg:hotpath
func productNumericRange(a, b, c *Matrix, mark []int32, acc []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			ak := a.Val[p]
			row := a.Col[p]
			for q := b.RowPtr[row]; q < b.RowPtr[row+1]; q++ {
				j := b.Col[q]
				if mark[j] != int32(i) {
					mark[j] = int32(i)
					acc[j] = ak * b.Val[q]
				} else {
					acc[j] += ak * b.Val[q]
				}
			}
		}
		for idx := c.RowPtr[i]; idx < c.RowPtr[i+1]; idx++ {
			c.Val[idx] = acc[c.Col[idx]]
		}
	}
}

// TransposePlan is the cached symbolic phase of Transpose: the transposed
// pattern plus the entry permutation, so a replay is a values-only
// permuted copy.
type TransposePlan struct {
	rows, cols int
	fp         uint64
	ptr        []int
	col        []int32
	// perm[p] is the output position of input entry p.
	perm []int
}

// PlanTranspose computes the pattern of A^T and the entry permutation.
func PlanTranspose(rt *par.Runtime, a *Matrix) *TransposePlan {
	pl := &TransposePlan{rows: a.Rows, cols: a.Cols, fp: fingerprint(a)}
	pl.perm = make([]int, len(a.Col))
	ptr, col, _ := a.transposeBlocked(rt, a.Cols, false, pl.perm)
	pl.ptr = make([]int, a.Cols+1)
	copy(pl.ptr, ptr)
	pl.col = make([]int32, len(a.Col))
	copy(pl.col, col)
	arenaRelease(ptr, col, nil)
	return pl
}

// NewMatrix returns a transpose-shaped matrix with the plan's pattern and
// zeroed values, ready for Numeric. RowPtr/Col are shared with the plan.
func (pl *TransposePlan) NewMatrix() *Matrix {
	return &Matrix{Rows: pl.cols, Cols: pl.rows, RowPtr: pl.ptr, Col: pl.col, Val: make([]float64, len(pl.col))}
}

// Numeric replays the transpose for new values: t.Val[perm[p]] = a.Val[p].
// Bitwise identical to Transpose (an exact value copy) and allocation-free.
func (pl *TransposePlan) Numeric(rt *par.Runtime, a, t *Matrix) error {
	if err := pl.checkShapes(a, t); err != nil {
		return err
	}
	if fingerprint(a) != pl.fp {
		return fmt.Errorf("sparse: transpose replay: pattern of A changed since PlanTranspose")
	}
	pl.replay(rt, a, t)
	return nil
}

// Replay is Numeric without the fingerprint verification (see
// ProductPlan.Replay for the contract).
//
//amg:hotpath
func (pl *TransposePlan) Replay(rt *par.Runtime, a, t *Matrix) error {
	if err := pl.checkShapes(a, t); err != nil {
		return err
	}
	pl.replay(rt, a, t)
	return nil
}

func (pl *TransposePlan) checkShapes(a, t *Matrix) error {
	if a.Rows != pl.rows || a.Cols != pl.cols || len(a.Val) != len(pl.perm) {
		return fmt.Errorf("sparse: transpose replay dimension mismatch %dx%d (planned %dx%d)", a.Rows, a.Cols, pl.rows, pl.cols)
	}
	if t.Rows != pl.cols || t.Cols != pl.rows || len(t.Val) != len(pl.perm) {
		return fmt.Errorf("sparse: transpose replay: result matrix does not carry the plan pattern (use NewMatrix)")
	}
	return nil
}

//amg:hotpath
func (pl *TransposePlan) replay(rt *par.Runtime, a, t *Matrix) {
	nnz := len(pl.perm)
	if rt.Serial(nnz) {
		pl.scatterRange(a, t, 0, nnz)
		return
	}
	rt.For(nnz, func(lo, hi int) {
		pl.scatterRange(a, t, lo, hi)
	})
}

//amg:hotpath
func (pl *TransposePlan) scatterRange(a, t *Matrix, lo, hi int) {
	for p := lo; p < hi; p++ {
		t.Val[pl.perm[p]] = a.Val[p]
	}
}

// SmoothPlan is the cached symbolic phase of SmoothProlongator: the union
// pattern of the product D^{-1}A*P0 and P0 itself, row-sorted.
type SmoothPlan struct {
	aRows, aCols, p0Cols int
	aFP, p0FP            uint64
	ptr                  []int
	col                  []int32
}

// PlanSmoothProlongator computes the pattern of (I - omega*D^{-1}*A)*P0,
// which depends only on the patterns of A and P0 (dinv and omega scale
// values, never the pattern).
func PlanSmoothProlongator(rt *par.Runtime, a, p0 *Matrix) (*SmoothPlan, error) {
	if a.Cols != p0.Rows {
		return nil, fmt.Errorf("sparse: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, p0.Rows, p0.Cols)
	}
	pl := &SmoothPlan{
		aRows: a.Rows, aCols: a.Cols, p0Cols: p0.Cols,
		aFP: fingerprint(a), p0FP: fingerprint(p0),
	}
	pl.ptr = make([]int, a.Rows+1)
	car := par.AcquireArena()
	counts := par.Get[int](car, a.Rows)
	countSmoothedRows(rt, a, p0, counts)
	nnz := par.ScanExclusive(rt, counts, pl.ptr)
	par.Put(car, counts)
	par.ReleaseArena(car)
	pl.col = make([]int32, nnz)

	// Fill pass: per row, collect and sort the product pattern, then
	// merge it with the (sorted) P0 row — the same merge order as the
	// one-shot kernel, writing columns only.
	par.ForWith(rt, a.Rows,
		func(ar *par.Arena) smoothScratch {
			s := smoothScratch{
				mark: par.Get[int32](ar, p0.Cols),
				cols: par.Get[int32](ar, p0.Cols),
			}
			for i := range s.mark {
				s.mark[i] = -1
			}
			return s
		},
		func(lo, hi int, s smoothScratch) {
			mark := s.mark
			for i := lo; i < hi; i++ {
				nc := 0
				for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
					row := a.Col[p]
					for q := p0.RowPtr[row]; q < p0.RowPtr[row+1]; q++ {
						j := p0.Col[q]
						if mark[j] != int32(i) {
							mark[j] = int32(i)
							s.cols[nc] = j
							nc++
						}
					}
				}
				prod := s.cols[:nc]
				sortRow(prod)
				k := pl.ptr[i]
				pp, pq := 0, p0.RowPtr[i]
				eq := p0.RowPtr[i+1]
				for pp < nc || pq < eq {
					switch {
					case pq >= eq || (pp < nc && prod[pp] < p0.Col[pq]):
						pl.col[k] = prod[pp]
						pp++
					case pp >= nc || p0.Col[pq] < prod[pp]:
						pl.col[k] = p0.Col[pq]
						pq++
					default:
						pl.col[k] = prod[pp]
						pp++
						pq++
					}
					k++
				}
			}
		},
		func(ar *par.Arena, s smoothScratch) {
			par.Put(ar, s.mark)
			par.Put(ar, s.cols)
		})
	return pl, nil
}

// NewMatrix returns a smoothed-prolongator-shaped matrix with the plan's
// pattern and zeroed values. RowPtr/Col are shared with the plan.
func (pl *SmoothPlan) NewMatrix() *Matrix {
	return &Matrix{Rows: pl.aRows, Cols: pl.p0Cols, RowPtr: pl.ptr, Col: pl.col, Val: make([]float64, len(pl.col))}
}

// Numeric replays the plan for new values of A (and a new dinv/omega):
// out.Val is overwritten with (I - omega*D^{-1}*A)*P0. Bitwise identical
// to SmoothProlongator and allocation-free in steady state.
func (pl *SmoothPlan) Numeric(rt *par.Runtime, a, p0 *Matrix, dinv []float64, omega float64, out *Matrix) error {
	if err := pl.checkShapes(a, p0, dinv, out); err != nil {
		return err
	}
	if fingerprint(a) != pl.aFP {
		return fmt.Errorf("sparse: smooth replay: pattern of A changed since PlanSmoothProlongator")
	}
	if fingerprint(p0) != pl.p0FP {
		return fmt.Errorf("sparse: smooth replay: pattern of P0 changed since PlanSmoothProlongator")
	}
	pl.replay(rt, a, p0, dinv, omega, out)
	return nil
}

// Replay is Numeric without the fingerprint verification (see
// ProductPlan.Replay for the contract).
//
//amg:hotpath
func (pl *SmoothPlan) Replay(rt *par.Runtime, a, p0 *Matrix, dinv []float64, omega float64, out *Matrix) error {
	if err := pl.checkShapes(a, p0, dinv, out); err != nil {
		return err
	}
	pl.replay(rt, a, p0, dinv, omega, out)
	return nil
}

func (pl *SmoothPlan) checkShapes(a, p0 *Matrix, dinv []float64, out *Matrix) error {
	if a.Rows != pl.aRows || a.Cols != pl.aCols || p0.Rows != pl.aCols || p0.Cols != pl.p0Cols {
		return fmt.Errorf("sparse: smooth replay dimension mismatch %dx%d * %dx%d (planned %dx%d * %dx%d)",
			a.Rows, a.Cols, p0.Rows, p0.Cols, pl.aRows, pl.aCols, pl.aCols, pl.p0Cols)
	}
	if len(dinv) != a.Rows {
		return fmt.Errorf("sparse: dinv length %d, want %d", len(dinv), a.Rows)
	}
	if out.Rows != pl.aRows || out.Cols != pl.p0Cols || len(out.Col) != len(pl.col) || len(out.Val) != len(pl.col) {
		return fmt.Errorf("sparse: smooth replay: result matrix does not carry the plan pattern (use NewMatrix)")
	}
	return nil
}

//amg:hotpath
func (pl *SmoothPlan) replay(rt *par.Runtime, a, p0 *Matrix, dinv []float64, omega float64, out *Matrix) {
	if rt.Serial(pl.aRows) {
		ar := par.AcquireArena()
		mark := par.Get[int32](ar, pl.p0Cols)
		acc := par.Get[float64](ar, pl.p0Cols)
		for i := range mark {
			mark[i] = -1
		}
		smoothNumericRange(a, p0, dinv, omega, out, mark, acc, 0, pl.aRows)
		par.Put(ar, mark)
		par.Put(ar, acc)
		par.ReleaseArena(ar)
		return
	}
	par.ForWith(rt, pl.aRows,
		func(ar *par.Arena) spgemmScratch {
			s := spgemmScratch{
				mark: par.Get[int32](ar, pl.p0Cols),
				acc:  par.Get[float64](ar, pl.p0Cols),
			}
			for i := range s.mark {
				s.mark[i] = -1
			}
			return s
		},
		func(lo, hi int, s spgemmScratch) {
			smoothNumericRange(a, p0, dinv, omega, out, s.mark, s.acc, lo, hi)
		},
		func(ar *par.Arena, s spgemmScratch) {
			par.Put(ar, s.mark)
			par.Put(ar, s.acc)
		})
}

// smoothNumericRange replays rows [lo, hi): the product row of D^{-1}A*P0
// accumulates exactly as in the one-shot kernel, then the cached union
// pattern is walked against the P0 row — marked entries came from the
// product, matching P0 columns contribute the identity term — writing
// the same expressions in the same order as the one-shot merge.
//
//amg:hotpath
func smoothNumericRange(a, p0 *Matrix, dinv []float64, omega float64, out *Matrix, mark []int32, acc []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		di := dinv[i]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			ak := di * a.Val[p]
			row := a.Col[p]
			for q := p0.RowPtr[row]; q < p0.RowPtr[row+1]; q++ {
				j := p0.Col[q]
				if mark[j] != int32(i) {
					mark[j] = int32(i)
					acc[j] = ak * p0.Val[q]
				} else {
					acc[j] += ak * p0.Val[q]
				}
			}
		}
		pq := p0.RowPtr[i]
		eq := p0.RowPtr[i+1]
		for idx := out.RowPtr[i]; idx < out.RowPtr[i+1]; idx++ {
			j := out.Col[idx]
			inP0 := pq < eq && p0.Col[pq] == j
			switch {
			case inP0 && mark[j] == int32(i):
				out.Val[idx] = p0.Val[pq] + -omega*acc[j]
				pq++
			case mark[j] == int32(i):
				out.Val[idx] = -omega * acc[j]
			default: // P0-only entry
				out.Val[idx] = p0.Val[pq]
				pq++
			}
		}
	}
}

// RAPPlan is the cached symbolic phase of the Galerkin triple product
// R*A*P: two chained product plans plus the plan-owned intermediate A*P,
// whose value buffer is refilled in place on every replay.
type RAPPlan struct {
	ap      *Matrix
	apPlan  *ProductPlan
	rapPlan *ProductPlan
}

// PlanRAP computes the patterns of AP = A*P and R*AP. Only operand
// patterns are read.
func PlanRAP(rt *par.Runtime, r, a, p *Matrix) (*RAPPlan, error) {
	apPlan, err := PlanMultiply(rt, a, p)
	if err != nil {
		return nil, err
	}
	ap := apPlan.NewMatrix()
	rapPlan, err := PlanMultiply(rt, r, ap)
	if err != nil {
		return nil, err
	}
	return &RAPPlan{ap: ap, apPlan: apPlan, rapPlan: rapPlan}, nil
}

// NNZ returns the number of stored entries of the planned coarse operator.
func (pl *RAPPlan) NNZ() int { return pl.rapPlan.NNZ() }

// NewMatrix returns a coarse-operator matrix with the plan's pattern and
// zeroed values, ready for Numeric.
func (pl *RAPPlan) NewMatrix() *Matrix { return pl.rapPlan.NewMatrix() }

// Numeric replays the triple product for new values: out.Val is
// overwritten with R*A*P, staging A*P in the plan-owned intermediate.
// Bitwise identical to RAP and allocation-free in steady state.
func (pl *RAPPlan) Numeric(rt *par.Runtime, r, a, p, out *Matrix) error {
	if err := pl.apPlan.Numeric(rt, a, p, pl.ap); err != nil {
		return err
	}
	return pl.rapPlan.Numeric(rt, r, pl.ap, out)
}

// Replay is Numeric without the fingerprint verification (see
// ProductPlan.Replay for the contract). The intermediate A*P is
// plan-owned, so only the caller-supplied operands' shapes are checked.
//
//amg:hotpath
func (pl *RAPPlan) Replay(rt *par.Runtime, r, a, p, out *Matrix) error {
	if err := pl.apPlan.Replay(rt, a, p, pl.ap); err != nil {
		return err
	}
	return pl.rapPlan.Replay(rt, r, pl.ap, out)
}
