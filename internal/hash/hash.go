// Package hash implements the deterministic pseudo-random hash functions
// used to assign vertex priorities in the MIS-2 algorithm (paper §V-A).
//
// The paper compares three schemes (Table I):
//   - Fixed:   priorities chosen once, as in Bell et al. (the CUSP baseline);
//   - Xor:     h(iter, v) = f(f(iter) XOR f(v)) with f = 64-bit xorshift;
//   - Xor*:    the same construction with f = 64-bit xorshift* (xorshift
//     followed by a multiplicative step), which breaks the iteration-to-
//     iteration correlation that makes plain xorshift perform poorly.
//
// Both f functions are due to Marsaglia.
//
//amg:deterministic
package hash

// Xorshift64 is Marsaglia's 64-bit xorshift generator step.
// Note Xorshift64(0) == 0; callers salt inputs so 0 never occurs for
// meaningful states (vertex ids are offset by 1).
func Xorshift64(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

// Xorshift64Star is Marsaglia's xorshift* generator: xorshift followed by a
// multiplication by an odd constant, which decorrelates successive salted
// inputs (paper §V-A).
func Xorshift64Star(x uint64) uint64 {
	x ^= x << 12
	x ^= x >> 25
	x ^= x << 27
	return x * 0x2545F4914F6CDD1D
}

// Func is a 64-bit mixing function.
type Func func(uint64) uint64

// Kind selects a priority scheme for the MIS-2 algorithm.
type Kind int

const (
	// XorStar is h(iter,v) = f(f(iter) ^ f(v)) with f = xorshift*.
	// This is the scheme used for all paper experiments outside Table I.
	XorStar Kind = iota
	// Xor is the same construction with plain xorshift (poor; Table I).
	Xor
	// Fixed uses h(0, v) for every iteration, reproducing Bell et al.'s
	// fixed priorities.
	Fixed
)

// String returns the Table I column name of the kind.
func (k Kind) String() string {
	switch k {
	case XorStar:
		return "Xor* Hash"
	case Xor:
		return "Xor Hash"
	case Fixed:
		return "Fixed"
	}
	return "unknown"
}

// Priority returns the pseudo-random priority h(iter, v) for the kind.
// Vertex ids are offset by 1 so that vertex 0 does not map through the
// xorshift fixed point at 0.
func (k Kind) Priority(iter uint64, v uint64) uint64 {
	switch k {
	case XorStar:
		return Xorshift64Star(Xorshift64Star(iter+1) ^ Xorshift64Star(v+1))
	case Xor:
		return Xorshift64(Xorshift64(iter+1) ^ Xorshift64(v+1))
	default: // Fixed
		return Xorshift64Star(Xorshift64Star(1) ^ Xorshift64Star(v+1))
	}
}

// Rehashes reports whether the kind assigns new priorities each iteration.
func (k Kind) Rehashes() bool { return k != Fixed }

// fpSalt seeds the fingerprint chain (the 64-bit golden ratio, the
// usual sequence-breaking constant); fpMul is the odd xorshift*
// multiplier, reused as an FNV-style diffusion step.
const (
	fpSalt = 0x9E3779B97F4A7C15
	fpMul  = 0x2545F4914F6CDD1D
)

// fpMix folds one value into a running fingerprint with an xor-multiply
// step (FNV-1a with a 64-bit odd multiplier): two operations per element
// keep fingerprinting a small fraction of a numeric re-setup, while the
// multiply chain makes the result position-sensitive. The final
// avalanche in PatternFingerprint diffuses the remaining low-bit bias.
func fpMix(h, v uint64) uint64 {
	return (h ^ v) * fpMul
}

// PatternFingerprint computes a deterministic 64-bit fingerprint of a CSR
// sparsity pattern: the dimensions, row boundaries, and column indices,
// independent of the stored values. Two matrices share a fingerprint
// exactly when they have the same pattern (up to hash collision), which
// is the "same pattern, new values" precondition of the symbolic/numeric
// re-setup split: plan replays and Hierarchy.Refresh check it before
// reusing cached SpGEMM patterns. Allocation-free and O(rows + nnz).
func PatternFingerprint(rows, cols int, rowPtr []int, col []int32) uint64 {
	h := fpMix(fpSalt, uint64(rows))
	h = fpMix(h, uint64(cols))
	for _, p := range rowPtr {
		h = fpMix(h, uint64(p))
	}
	for _, c := range col {
		h = fpMix(h, uint64(uint32(c)))
	}
	return Xorshift64Star(h)
}

// FingerprintSeed is the canonical chain seed for Combine-based
// fingerprints, so independent fingerprint kinds (patterns, partitions,
// composed cache keys) all start from the same constant and differ only
// by what they fold in.
const FingerprintSeed uint64 = fpSalt

// Combine folds v into a running 64-bit fingerprint h with the same
// xor-multiply step PatternFingerprint uses internally. Chains built
// with Combine are position-sensitive; finish them with Finalize to
// diffuse the remaining low-bit bias before using the result as a hash
// key.
func Combine(h, v uint64) uint64 { return fpMix(h, v) }

// Finalize applies the avalanche step ending every fingerprint chain.
func Finalize(h uint64) uint64 { return Xorshift64Star(h) }
