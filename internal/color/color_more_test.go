package color

import (
	"testing"
	"testing/quick"

	"mis2go/internal/graph"
)

func completeGraph(n int) *graph.CSR {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	return graph.FromEdges(n, edges)
}

func pathGraph(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	return graph.FromEdges(n, edges)
}

func TestGreedyBoundedByMaxDegreePlusOne(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%120)
		g := randomGraph(n, 4*n, seed)
		return NumColors(Greedy(g)) <= g.MaxDegree()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelBoundedByMaxDegreePlusOne(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%120)
		g := randomGraph(n, 4*n, seed)
		return NumColors(Parallel(g, 0)) <= g.MaxDegree()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteGraphNeedsNColors(t *testing.T) {
	g := completeGraph(7)
	if nc := NumColors(Greedy(g)); nc != 7 {
		t.Fatalf("greedy K7 colors = %d", nc)
	}
	if nc := NumColors(Parallel(g, 0)); nc != 7 {
		t.Fatalf("parallel K7 colors = %d", nc)
	}
	// In K7 everything is within distance 1, so D2 coloring equals D1.
	if nc := NumColors(GreedyDistance2(g)); nc != 7 {
		t.Fatalf("D2 K7 colors = %d", nc)
	}
}

func TestPathTwoColors(t *testing.T) {
	g := pathGraph(20)
	if nc := NumColors(Greedy(g)); nc != 2 {
		t.Fatalf("path greedy colors = %d", nc)
	}
	// Distance-2 coloring of a path needs exactly 3 colors.
	if nc := NumColors(GreedyDistance2(g)); nc != 3 {
		t.Fatalf("path D2 colors = %d", nc)
	}
}

func TestD2LowerBoundClosedNeighborhood(t *testing.T) {
	// Distance-2 chromatic number >= maxdeg+1 (a vertex and all its
	// neighbors are pairwise within distance 2).
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%60)
		g := randomGraph(n, 3*n, seed)
		return NumColors(GreedyDistance2(g)) >= g.MaxDegree()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelD2NotWildlyWorseThanSerial(t *testing.T) {
	g := randomGraph(300, 1500, 77)
	s := NumColors(GreedyDistance2(g))
	p := NumColors(ParallelDistance2(g, 0))
	if p > 2*s+4 {
		t.Fatalf("parallel D2 uses %d colors vs serial %d", p, s)
	}
}

func TestColorSetsCoverEveryVertexOnce(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%100)
		g := randomGraph(n, 3*n, seed)
		sets := Sets(Parallel(g, 0))
		total := 0
		for _, s := range sets {
			total += len(s)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNumColorsEmpty(t *testing.T) {
	if NumColors(nil) != 0 {
		t.Fatal("NumColors(nil) != 0")
	}
	if len(Sets(nil)) != 0 {
		t.Fatal("Sets(nil) not empty")
	}
}

func TestDistance2ViaMIS2Valid(t *testing.T) {
	f := func(seed int64) bool {
		n := 4 + int(uint64(seed)%70)
		g := randomGraph(n, 3*n, seed)
		return CheckDistance2(g, Distance2ViaMIS2(g, 0)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDistance2ViaMIS2PaletteCompetitive(t *testing.T) {
	g := randomGraph(300, 1200, 33)
	viaMIS := NumColors(Distance2ViaMIS2(g, 0))
	greedy := NumColors(GreedyDistance2(g))
	if viaMIS > 2*greedy+4 {
		t.Fatalf("MIS-based D2 coloring uses %d colors vs greedy %d", viaMIS, greedy)
	}
}

func TestDistance2ViaMIS2Deterministic(t *testing.T) {
	g := randomGraph(200, 800, 44)
	a := Distance2ViaMIS2(g, 1)
	b := Distance2ViaMIS2(g, 8)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("nondeterministic across thread counts")
		}
	}
}
