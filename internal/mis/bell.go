// Bell/Dalton/Olson general MIS-k algorithm (SISC 2012), the algorithm
// implemented by the CUSP and ViennaCL libraries and the baseline of the
// paper's Figure 2 ablation and Figures 6/7 comparisons.
//
// Unlike Algorithm 1 it:
//   - stores uncompressed 3-field tuples (status, random, id) — three
//     arrays per tuple, three tuples per vertex (paper §V-C);
//   - processes every vertex in every iteration (no worklists, §V-B);
//   - chooses random priorities once, before the first iteration (§V-A),
//     unless rehash is set (the "+ Random priority" ablation step).
package mis

import (
	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/par"
)

// Unpacked statuses, ordered so lexicographic tuple comparison matches the
// IN < UNDECIDED < OUT convention of Algorithm 1.
const (
	statIn  uint8 = 0
	statUnd uint8 = 1
	statOut uint8 = 2
)

// triple is a struct-of-arrays tuple store, deliberately uncompressed to
// reproduce the baseline's memory traffic.
type triple struct {
	stat []uint8
	rnd  []uint64
	id   []int32
}

func newTriple(n int) triple {
	return triple{stat: make([]uint8, n), rnd: make([]uint64, n), id: make([]int32, n)}
}

// less compares tuple i of a with tuple j of b lexicographically.
func tupleLess(a triple, i int32, b triple, j int32) bool {
	if a.stat[i] != b.stat[j] {
		return a.stat[i] < b.stat[j]
	}
	if a.rnd[i] != b.rnd[j] {
		return a.rnd[i] < b.rnd[j]
	}
	return a.id[i] < b.id[j]
}

func tupleAssign(dst triple, i int32, src triple, j int32) {
	dst.stat[i] = src.stat[j]
	dst.rnd[i] = src.rnd[j]
	dst.id[i] = src.id[j]
}

// BellOptions configures the baseline algorithm.
type BellOptions struct {
	// K is the independence distance (2 for MIS-2). 0 defaults to 2.
	K int
	// Rehash assigns new priorities every iteration instead of once
	// (the "+ Random priority" ablation configuration).
	Rehash bool
	// Hash selects the priority hash (XorStar by default).
	Hash hash.Kind
	// Salt perturbs the priority stream, modeling independent library
	// implementations (CUSP vs ViennaCL use different RNGs; Table IV
	// compares their result quality).
	Salt uint64
	// Threads is the worker count; 0 means GOMAXPROCS.
	Threads int
}

// BellMISK computes a distance-K maximal independent set with the
// Bell/Dalton/Olson propagation algorithm. Deterministic.
func BellMISK(g *graph.CSR, opt BellOptions) Result {
	k := opt.K
	if k <= 0 {
		k = 2
	}
	rt := par.New(opt.Threads)
	n := g.N
	if n == 0 {
		return Result{InSet: []int32{}}
	}
	// Three tuple stores, as in the reference implementation: the vertex's
	// own tuple S and two ping-pong propagation buffers T, That.
	s := newTriple(n)
	t := newTriple(n)
	that := newTriple(n)

	salt := opt.Salt
	prio := func(iter, v uint64) uint64 {
		p := opt.Hash.Priority(iter, v)
		if salt != 0 {
			p = hash.Xorshift64Star(p ^ salt)
		}
		return p
	}
	rt.For(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			s.stat[v] = statUnd
			s.rnd[v] = prio(0, uint64(v))
			s.id[v] = int32(v)
		}
	})

	iter := 0
	for {
		if opt.Rehash && iter > 0 {
			it64 := uint64(iter)
			rt.For(n, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					if s.stat[v] == statUnd {
						s.rnd[v] = prio(it64, uint64(v))
					}
				}
			})
		}
		// T <- S
		rt.For(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				tupleAssign(t, int32(v), s, int32(v))
			}
		})
		// k rounds of min-propagation over closed neighborhoods:
		// after round r, T_v is the minimum tuple within radius r.
		for round := 0; round < k; round++ {
			rt.For(n, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					best := int32(v)
					bestStore := t
					for _, w := range g.Neighbors(int32(v)) {
						if tupleLess(t, w, bestStore, best) {
							best = w
						}
					}
					tupleAssign(that, int32(v), t, best)
				}
			})
			t, that = that, t
		}
		// Decide: v joins the MIS if its own undecided tuple is the
		// radius-k minimum; v leaves if an IN vertex is within radius k.
		changed := par.ReduceSum[int64](rt, n, func(v int) int64 {
			if s.stat[v] != statUnd {
				return 0
			}
			if t.stat[v] == statUnd && t.id[v] == int32(v) && t.rnd[v] == s.rnd[v] {
				s.stat[v] = statIn
				return 1
			}
			if t.stat[v] == statIn {
				s.stat[v] = statOut
				return 1
			}
			return 0
		})
		iter++
		if changed == 0 || !anyUndecided(rt, s.stat) {
			break
		}
	}

	in := make([]int32, 0, n/16+1)
	for v := 0; v < n; v++ {
		if s.stat[v] == statIn {
			in = append(in, int32(v))
		}
	}
	return Result{InSet: in, Iterations: iter}
}

func anyUndecided(rt *par.Runtime, stat []uint8) bool {
	return par.ReduceSum[int64](rt, len(stat), func(v int) int64 {
		if stat[v] == statUnd {
			return 1
		}
		return 0
	}) > 0
}
