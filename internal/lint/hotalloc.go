package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc checks that functions annotated //amg:hotpath contain no
// allocation constructs. The annotation marks the kernel set whose
// zero-alloc contract the runtime gates (alloc_test.go) sample; the
// analyzer enforces it on every annotated body at compile time:
//
//   - make, new, and append (slice growth) calls
//   - slice and map composite literals, and taking the address of any
//     composite literal (struct and array value literals are stack
//     values and allowed)
//   - closure (func literal) creation, except literals passed directly
//     to the par runtime (For/ForWith participants are the repo's
//     parallelism idiom; their handoff cost is what the workers==1
//     inline fast path and the alloc gates measure)
//   - go and defer statements
//   - allocating string conversions (string <-> []byte/[]rune, string(rune))
//   - calls into fmt (formatting allocates)
//   - variadic calls that materialize an argument slice
//   - arguments boxed into interface parameters (panic is exempt:
//     unwinding is never the hot path)
//
// The annotation is matched on methods as well as free functions.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "check //amg:hotpath functions for allocation constructs",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "//amg:hotpath") {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	name := funcName(fd)
	// parExempt records func literals passed directly to the par
	// runtime; the literal itself is allowed but its body is still
	// walked (it runs inside the hot loop).
	parExempt := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hotpath %s starts a goroutine", name)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "hotpath %s defers (allocates a defer record in loops)", name)
		case *ast.FuncLit:
			if !parExempt[n] {
				pass.Reportf(n.Pos(), "hotpath %s creates a closure (captured variables escape)", name)
			}
		case *ast.CompositeLit:
			// Struct and array value literals live on the stack; slice
			// and map literals allocate their backing store.
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(n.Pos(), "hotpath %s allocates a slice literal", name)
				case *types.Map:
					pass.Reportf(n.Pos(), "hotpath %s allocates a map literal", name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hotpath %s takes the address of a composite literal (escapes to the heap)", name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, info, n, name, parExempt)
		}
		return true
	})
}

func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, name string, parExempt map[*ast.FuncLit]bool) {
	// Type conversions: only string-ish conversions allocate.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && allocatingConversion(info, tv.Type, call.Args[0]) {
			pass.Reportf(call.Pos(), "hotpath %s performs an allocating string conversion", name)
		}
		return
	}
	obj := calleeObj(info, call)
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "make":
			pass.Reportf(call.Pos(), "hotpath %s calls make", name)
		case "new":
			pass.Reportf(call.Pos(), "hotpath %s calls new", name)
		case "append":
			pass.Reportf(call.Pos(), "hotpath %s calls append (growth allocates)", name)
		case "panic":
			// Unwinding is cold; boxing the panic value is fine.
		}
		return
	}
	if isPkgFunc(info, call, "fmt") {
		pass.Reportf(call.Pos(), "hotpath %s calls into fmt (formatting allocates)", name)
		return
	}
	if isPkgFunc(info, call, "par") {
		// Participant closures handed to the par runtime are the
		// sanctioned parallelism idiom; mark direct literal arguments
		// exempt (their bodies are still checked by the walk).
		for _, arg := range call.Args {
			if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				parExempt[fl] = true
			}
		}
		return
	}
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		pass.Reportf(call.Pos(), "hotpath %s makes a variadic call (argument slice allocates)", name)
		return
	}
	// Boxing: a concrete value passed where an interface is expected.
	for i, arg := range call.Args {
		pi := i
		if pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi < 0 {
			break
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == sig.Params().Len()-1 && !call.Ellipsis.IsValid() {
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(info, arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "hotpath %s boxes %s into interface %s", name, at, pt)
	}
}

func allocatingConversion(info *types.Info, to types.Type, from ast.Expr) bool {
	ft := info.TypeOf(from)
	if ft == nil {
		return false
	}
	toS := isStringType(to)
	fromS := isStringType(ft)
	if toS && !fromS {
		return true // string([]byte), string([]rune), string(rune)
	}
	if fromS && isByteOrRuneSlice(to) {
		return true // []byte(s), []rune(s)
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
