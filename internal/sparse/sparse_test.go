package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mis2go/internal/par"
)

// randomMatrix builds a random rows x cols CSR matrix with about density
// fraction of entries, deterministic in seed.
func randomMatrix(rows, cols int, density float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := &Matrix{Rows: rows, Cols: cols}
	m.RowPtr = make([]int, rows+1)
	for i := 0; i < rows; i++ {
		prev := int32(-1)
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				m.Col = append(m.Col, int32(j))
				m.Val = append(m.Val, rng.NormFloat64())
				prev = int32(j)
			}
		}
		_ = prev
		m.RowPtr[i+1] = len(m.Col)
	}
	return m
}

func toDenseSlice(a *Matrix) []float64 {
	d := make([]float64, a.Rows*a.Cols)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			d[i*a.Cols+int(a.Col[p])] = a.Val[p]
		}
	}
	return d
}

func denseMul(a, b []float64, n, k, m int) []float64 {
	c := make([]float64, n*m)
	for i := 0; i < n; i++ {
		for kk := 0; kk < k; kk++ {
			av := a[i*k+kk]
			if av == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				c[i*m+j] += av * b[kk*m+j]
			}
		}
	}
	return c
}

func almostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

func TestSpMVAgainstDense(t *testing.T) {
	rt := par.New(4)
	f := func(seed int64) bool {
		rows := 1 + int(uint64(seed)%40)
		cols := 1 + int(uint64(seed)%37)
		a := randomMatrix(rows, cols, 0.3, seed)
		x := make([]float64, cols)
		for i := range x {
			x[i] = float64(i%5) - 2
		}
		y := make([]float64, rows)
		a.SpMV(rt, x, y)
		d := toDenseSlice(a)
		want := make([]float64, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want[i] += d[i*cols+j] * x[j]
			}
		}
		return almostEqual(y, want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyAgainstDense(t *testing.T) {
	rt := par.New(4)
	f := func(seed int64) bool {
		n := 1 + int(uint64(seed)%25)
		k := 1 + int(uint64(seed)%20)
		m := 1 + int(uint64(seed)%22)
		a := randomMatrix(n, k, 0.3, seed)
		b := randomMatrix(k, m, 0.3, seed+1)
		c, err := Multiply(rt, a, b)
		if err != nil || c.Validate() != nil {
			return false
		}
		want := denseMul(toDenseSlice(a), toDenseSlice(b), n, k, m)
		return almostEqual(toDenseSlice(c), want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyDimensionMismatch(t *testing.T) {
	rt := par.New(2)
	a := randomMatrix(3, 4, 0.5, 1)
	b := randomMatrix(5, 3, 0.5, 2)
	if _, err := Multiply(rt, a, b); err == nil {
		t.Fatal("dimension mismatch not reported")
	}
}

func TestMultiplyDeterministicAcrossThreads(t *testing.T) {
	a := randomMatrix(80, 60, 0.1, 3)
	b := randomMatrix(60, 70, 0.1, 4)
	ref, err := Multiply(par.New(1), a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		c, err := Multiply(par.New(w), a, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Col) != len(ref.Col) {
			t.Fatalf("nnz differs: %d vs %d", len(c.Col), len(ref.Col))
		}
		for i := range ref.Col {
			if c.Col[i] != ref.Col[i] || c.Val[i] != ref.Val[i] {
				t.Fatalf("entry %d differs across thread counts", i)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rows := 1 + int(uint64(seed)%30)
		cols := 1 + int(uint64(seed)%30)
		a := randomMatrix(rows, cols, 0.25, seed)
		at := a.Transpose()
		if at.Validate() != nil || at.Rows != cols || at.Cols != rows {
			return false
		}
		da := toDenseSlice(a)
		dt := toDenseSlice(at)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if da[i*cols+j] != dt[j*rows+i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAdd(t *testing.T) {
	a := randomMatrix(20, 20, 0.2, 5)
	b := randomMatrix(20, 20, 0.2, 6)
	c, err := Add(a, b, -2.5)
	if err != nil || c.Validate() != nil {
		t.Fatalf("Add failed: %v", err)
	}
	da, db, dc := toDenseSlice(a), toDenseSlice(b), toDenseSlice(c)
	for i := range da {
		want := da[i] - 2.5*db[i]
		if math.Abs(dc[i]-want) > 1e-12 {
			t.Fatalf("entry %d: got %g want %g", i, dc[i], want)
		}
	}
	if _, err := Add(a, randomMatrix(5, 5, 0.5, 7), 1); err == nil {
		t.Fatal("Add dimension mismatch not reported")
	}
}

func TestRAPGalerkin(t *testing.T) {
	rt := par.New(4)
	a := randomMatrix(12, 12, 0.3, 8)
	p := randomMatrix(12, 4, 0.4, 9)
	r := p.Transpose()
	c, err := RAP(rt, r, a, p)
	if err != nil {
		t.Fatal(err)
	}
	da, dp := toDenseSlice(a), toDenseSlice(p)
	ap := denseMul(da, dp, 12, 12, 4)
	dr := toDenseSlice(r)
	want := denseMul(dr, ap, 4, 12, 4)
	if !almostEqual(toDenseSlice(c), want, 1e-10) {
		t.Fatal("RAP mismatch with dense reference")
	}
}

func TestDiagonal(t *testing.T) {
	a := &Matrix{Rows: 3, Cols: 3,
		RowPtr: []int{0, 2, 3, 5},
		Col:    []int32{0, 2, 1, 0, 2},
		Val:    []float64{4, 1, 5, 2, 6},
	}
	d := a.Diagonal()
	if d[0] != 4 || d[1] != 5 || d[2] != 6 {
		t.Fatalf("Diagonal = %v", d)
	}
}

func TestGraphFromMatrix(t *testing.T) {
	// 3x3 with diagonal and off-diagonals (0,1), (1,2) stored one-sided.
	a := &Matrix{Rows: 3, Cols: 3,
		RowPtr: []int{0, 2, 3, 4},
		Col:    []int32{0, 1, 1, 2},
		Val:    []float64{2, -1, 2, 2},
	}
	g := a.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge 0-1 missing (symmetrization)")
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 2) == false && g.NumEdges() != 2 {
		t.Fatal("unexpected structure")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	a := randomMatrix(5, 5, 0.5, 10)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := a.Clone()
	bad.Col[0] = 99
	if bad.Validate() == nil {
		t.Fatal("out-of-range column not caught")
	}
	bad = a.Clone()
	if len(bad.Val) > 0 {
		bad.Val[0] = math.NaN()
		if bad.Validate() == nil {
			t.Fatal("NaN not caught")
		}
	}
	bad = a.Clone()
	bad.RowPtr[1] = -1
	if bad.Validate() == nil {
		t.Fatal("bad RowPtr not caught")
	}
}

func TestIdentityAndScaleClone(t *testing.T) {
	id := Identity(4)
	if id.Validate() != nil || id.NNZ() != 4 {
		t.Fatal("identity malformed")
	}
	c := id.Clone()
	c.Scale(3)
	if id.Val[0] != 1 || c.Val[0] != 3 {
		t.Fatal("Clone/Scale aliasing or arithmetic wrong")
	}
}

func TestDenseLUSolve(t *testing.T) {
	// Well-conditioned SPD-ish system with known solution.
	n := 30
	a := &Matrix{Rows: n, Cols: n}
	a.RowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		if i > 0 {
			a.Col = append(a.Col, int32(i-1))
			a.Val = append(a.Val, -1)
		}
		a.Col = append(a.Col, int32(i))
		a.Val = append(a.Val, 4)
		if i < n-1 {
			a.Col = append(a.Col, int32(i+1))
			a.Val = append(a.Val, -1)
		}
		a.RowPtr[i+1] = len(a.Col)
	}
	d, err := a.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Factorize(); err != nil {
		t.Fatal(err)
	}
	xWant := make([]float64, n)
	for i := range xWant {
		xWant[i] = math.Sin(float64(i))
	}
	b := make([]float64, n)
	a.SpMV(par.New(1), xWant, b)
	x := make([]float64, n)
	d.Solve(b, x)
	if !almostEqual(x, xWant, 1e-10) {
		t.Fatal("LU solve inaccurate")
	}
}

func TestDenseSingularDetected(t *testing.T) {
	d := &Dense{N: 2, Data: []float64{1, 2, 2, 4}}
	if err := d.Factorize(); err == nil {
		t.Fatal("singular matrix not detected")
	}
}

func TestToDenseRequiresSquare(t *testing.T) {
	a := randomMatrix(3, 4, 0.5, 11)
	if _, err := a.ToDense(); err == nil {
		t.Fatal("non-square ToDense not rejected")
	}
}
