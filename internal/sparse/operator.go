package sparse

import (
	"fmt"
	"math"

	"mis2go/internal/par"
)

// Operator is the format-independent view of a sparse operator: the
// kernels the solver stack (Krylov iterations, AMG V-cycles, smoother
// sweeps) needs, dispatched over the storage format. Both *Matrix (CSR)
// and *SELL implement it.
//
// Every implementation accumulates each output row's terms in the same
// canonical order — strict left-to-right over the row's stored entries
// with a single accumulator — so switching the format of an operator
// never changes any result by even one ULP, for any worker count. See
// DESIGN.md ("Operator formats").
type Operator interface {
	// Dims returns the operator shape (rows, cols).
	Dims() (rows, cols int)
	// NNZ returns the number of stored entries.
	NNZ() int
	// SpMV computes y = A*x.
	SpMV(rt *par.Runtime, x, y []float64)
	// SpMVResidual computes r = b - A*x in one traversal.
	SpMVResidual(rt *par.Runtime, b, x, r []float64)
	// SpMVAdd computes y += A*x in one traversal.
	SpMVAdd(rt *par.Runtime, x, y []float64)
	// SpMM computes the multi-RHS product Y = A*X for k interleaved
	// right-hand sides (see Matrix.SpMM for the layout).
	SpMM(rt *par.Runtime, k int, x, y []float64)
	// DiagonalInto fills d with the diagonal entries (zero where absent).
	DiagonalInto(rt *par.Runtime, d []float64)
	// JacobiSweep performs one damped-Jacobi sweep fused into the matrix
	// traversal: dst[i] = src[i] + omega*dinv[i]*(b[i] - (A src)[i]).
	// src and dst must not alias.
	JacobiSweep(rt *par.Runtime, b, dinv []float64, omega float64, src, dst []float64)
}

// Dims returns the matrix shape, implementing Operator.
func (a *Matrix) Dims() (rows, cols int) { return a.Rows, a.Cols }

// JacobiSweep computes dst[i] = src[i] + omega*dinv[i]*(b[i] - (A src)[i])
// in one traversal of A — the fused damped-Jacobi sweep of the AMG
// V-cycle. src and dst must not alias (the sweep needs the full old
// iterate; the V-cycle ping-pongs two buffers).
func (a *Matrix) JacobiSweep(rt *par.Runtime, b, dinv []float64, omega float64, src, dst []float64) {
	if rt.Serial(a.Rows) {
		a.jacobiSweepRange(b, dinv, omega, src, dst, 0, a.Rows)
		return
	}
	rt.For(a.Rows, func(lo, hi int) {
		a.jacobiSweepRange(b, dinv, omega, src, dst, lo, hi)
	})
}

// jacobiSweepRange is the fused Jacobi kernel for rows [lo, hi), with the
// same canonical left-to-right product accumulation as spmvRange.
func (a *Matrix) jacobiSweepRange(b, dinv []float64, omega float64, src, dst []float64, lo, hi int) {
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		start, end := rp[i], rp[i+1]
		cols := a.Col[start:end]
		vals := a.Val[start:end]
		var s float64
		for k, c := range cols {
			s += vals[k] * src[c]
		}
		dst[i] = src[i] + omega*dinv[i]*(b[i]-s)
	}
}

// Format selects the storage layout of an Operator.
type Format int

const (
	// FormatAuto picks per matrix: SELL-C-sigma when the row-length
	// distribution is regular enough for the chunked kernels to win (see
	// ChooseFormat), CSR otherwise.
	FormatAuto Format = iota
	// FormatCSR always uses the CSR matrix itself.
	FormatCSR
	// FormatSELL always converts to SELL-C-sigma.
	FormatSELL
)

// String implements fmt.Stringer for diagnostics and CLI flags.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatCSR:
		return "csr"
	case FormatSELL:
		return "sell"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat converts a CLI-style name to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "auto", "":
		return FormatAuto, nil
	case "csr":
		return FormatCSR, nil
	case "sell":
		return FormatSELL, nil
	}
	return FormatAuto, fmt.Errorf("sparse: unknown operator format %q (want auto, csr, or sell)", s)
}

// sellMinRows is the smallest matrix FormatAuto converts: below it the
// whole operator fits in cache and the per-chunk bookkeeping outweighs
// the streaming win (coarse AMG levels stay CSR).
const sellMinRows = 2048

// ChooseFormat applies the FormatAuto heuristic to a's sparsity pattern:
// SELL when the matrix is large enough and the row lengths are regular —
// relative standard deviation of the row lengths at most 1/2, so chunks
// are near-uniform and the column-compressed kernel runs its full-width
// fast path almost everywhere (fine mesh/Laplacian levels) — and CSR for
// small or irregular matrices (coarse Galerkin levels, skewed meshes),
// where sorting rows by length would scatter the gathers from x for
// little padding benefit. Pattern-only: values never affect the choice.
func ChooseFormat(a *Matrix) Format {
	if a.Rows < sellMinRows || len(a.Col) == 0 {
		return FormatCSR
	}
	mean := float64(len(a.Col)) / float64(a.Rows)
	if mean == 0 {
		return FormatCSR
	}
	varsum := 0.0
	for i := 0; i < a.Rows; i++ {
		d := float64(a.RowPtr[i+1]-a.RowPtr[i]) - mean
		varsum += d * d
	}
	relstd := 0.0
	if varsum > 0 {
		relstd = math.Sqrt(varsum/float64(a.Rows)) / mean
	}
	if relstd <= 0.5 {
		return FormatSELL
	}
	return FormatCSR
}

// NewOperator returns a's kernels in the requested format. sigma is the
// SELL sort scope (0 selects the default; ignored for CSR). A malformed
// sigma (see CheckSigma) is an error under every format — FormatAuto
// must not silently turn a configuration typo into a CSR fallback.
// FormatAuto applies ChooseFormat; a SELL conversion that fails for
// capacity reasons (an operator too large for the 32-bit entry
// schedule) falls back to CSR under FormatAuto and is an error under
// FormatSELL.
func NewOperator(a *Matrix, format Format, sigma int) (Operator, error) {
	if err := CheckSigma(sigma); err != nil {
		return nil, err
	}
	switch format {
	case FormatCSR:
		return a, nil
	case FormatSELL:
		return NewSELL(a, sigma)
	case FormatAuto:
		if ChooseFormat(a) == FormatSELL {
			if s, err := NewSELL(a, sigma); err == nil {
				return s, nil
			}
		}
		return a, nil
	}
	return nil, fmt.Errorf("sparse: unknown operator format %d", int(format))
}
