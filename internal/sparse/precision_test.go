package sparse

import (
	"math"
	"strings"
	"testing"

	"mis2go/internal/par"
)

// f32TestMatrix is sellTestMatrix with every value rounded to an exact
// float32: on such a matrix the f32 operators must reproduce the f64
// kernels bit for bit (the store-time rounding is the identity and the
// accumulation order is shared).
func f32TestMatrix(rows, cols int) *Matrix {
	a := sellTestMatrix(rows, cols)
	for p, v := range a.Val {
		a.Val[p] = float64(float32(v))
	}
	return a
}

func TestParsePrecision(t *testing.T) {
	for in, want := range map[string]Precision{
		"":     PrecisionF64,
		"f64":  PrecisionF64,
		"f32":  PrecisionF32,
		"auto": PrecisionAuto,
	} {
		got, err := ParsePrecision(in)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v", in, got, err, want)
		}
		if in != "" && got.String() != in {
			t.Fatalf("Precision(%v).String() = %q, want %q", got, got.String(), in)
		}
	}
	if _, err := ParsePrecision("half"); err == nil {
		t.Fatal("ParsePrecision accepted an unknown precision")
	}
}

// TestCheckF32RangeBoundary pins the exact acceptance boundary of the
// pre-mutation range scan: ±MaxFloat32 are exactly representable and
// pass; the next representable float64 beyond fails; float32 subnormals
// (and float64 values that underflow to f32 zero) pass — underflow
// loses precision, never validity; NaN and both infinities fail.
func TestCheckF32RangeBoundary(t *testing.T) {
	accept := [][]float64{
		{math.MaxFloat32, -math.MaxFloat32},
		{1e-40, -1e-40},                       // float32 subnormals
		{5e-324, math.SmallestNonzeroFloat64}, // underflow to f32 zero
		{0, 1, -1, 6.5},
	}
	for _, vals := range accept {
		if err := CheckF32Range(vals); err != nil {
			t.Fatalf("CheckF32Range(%v) = %v, want nil", vals, err)
		}
	}
	reject := map[string][]float64{
		"above max":  {0, math.Nextafter(math.MaxFloat32, math.Inf(1))},
		"below -max": {math.Nextafter(-math.MaxFloat32, math.Inf(-1))},
		"nan":        {1, math.NaN(), 2},
		"+inf":       {math.Inf(1)},
		"-inf":       {math.Inf(-1)},
	}
	for name, vals := range reject {
		err := CheckF32Range(vals)
		if err == nil {
			t.Fatalf("CheckF32Range accepted %s: %v", name, vals)
		}
		if !strings.Contains(err.Error(), "float32") {
			t.Fatalf("%s: error %q does not name the float32 range", name, err)
		}
	}
}

// TestF32KernelsBitwiseMatchCSR pins the precision-equivalence contract
// on exactly-representable values: every CSR32 and SELL32 kernel
// reproduces the f64 CSR kernel bit for bit across shapes and worker
// counts — the f32 operators share the canonical left-to-right per-row
// float64 accumulation, so when the store-time rounding is the identity
// nothing may differ.
func TestF32KernelsBitwiseMatchCSR(t *testing.T) {
	mats := map[string]*Matrix{
		"irregular": f32TestMatrix(1003, 800),
		"small":     f32TestMatrix(13, 9),
		"singlerow": f32TestMatrix(1, 5),
	}
	for name, a := range mats {
		c32, err := NewCSR32(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s32, err := NewSELL32(a, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ops := map[string]Operator{"csr32": c32, "sell32": s32}
		x := make([]float64, a.Cols)
		b := make([]float64, a.Rows)
		for i := range x {
			x[i] = float64(i%17) - 8.25
		}
		for i := range b {
			b[i] = float64(i%11) - 5.5
		}
		for opName, op := range ops {
			if r, c := op.Dims(); r != a.Rows || c != a.Cols {
				t.Fatalf("%s/%s: Dims %dx%d, want %dx%d", name, opName, r, c, a.Rows, a.Cols)
			}
			if op.NNZ() != a.NNZ() {
				t.Fatalf("%s/%s: NNZ %d, want %d", name, opName, op.NNZ(), a.NNZ())
			}
			for _, workers := range []int{1, 2, 8} {
				rt := par.New(workers)

				yCSR := make([]float64, a.Rows)
				y32 := make([]float64, a.Rows)
				a.SpMV(rt, x, yCSR)
				op.SpMV(rt, x, y32)
				bitsEqual(t, name+"/"+opName+"/SpMV", y32, yCSR)

				a.SpMVResidual(rt, b, x, yCSR)
				op.SpMVResidual(rt, b, x, y32)
				bitsEqual(t, name+"/"+opName+"/SpMVResidual", y32, yCSR)

				copy(yCSR, b)
				copy(y32, b)
				a.SpMVAdd(rt, x, yCSR)
				op.SpMVAdd(rt, x, y32)
				bitsEqual(t, name+"/"+opName+"/SpMVAdd", y32, yCSR)

				if a.Cols <= a.Rows {
					dinv := make([]float64, a.Rows)
					src := make([]float64, a.Rows)
					for i := range dinv {
						dinv[i] = 1 / (2 + float64(i%5))
						src[i] = float64(i%7) - 3
					}
					a.JacobiSweep(rt, b, dinv, 0.7, src, yCSR)
					op.JacobiSweep(rt, b, dinv, 0.7, src, y32)
					bitsEqual(t, name+"/"+opName+"/JacobiSweep", y32, yCSR)
				}

				for _, k := range []int{2, 4, 8, 5} {
					xk := make([]float64, a.Cols*k)
					for i := range xk {
						xk[i] = float64(i%19) - 9
					}
					ykCSR := make([]float64, a.Rows*k)
					yk32 := make([]float64, a.Rows*k)
					a.SpMM(rt, k, xk, ykCSR)
					op.SpMM(rt, k, xk, yk32)
					bitsEqual(t, name+"/"+opName+"/SpMM", yk32, ykCSR)
				}

				dCSR := make([]float64, a.Rows)
				d32 := make([]float64, a.Rows)
				a.DiagonalInto(rt, dCSR)
				op.DiagonalInto(rt, d32)
				bitsEqual(t, name+"/"+opName+"/Diagonal", d32, dCSR)
			}
		}
	}
}

// TestF32FillValuesRejectedLeavesPrevious pins the fail-closed refresh
// contract of both f32 operators: FillValues scans the new values for
// float32-range violations before any store, so a rejected refresh
// leaves the previously converted values serving bitwise unchanged,
// and a following valid refresh lands normally.
func TestF32FillValuesRejectedLeavesPrevious(t *testing.T) {
	a := f32TestMatrix(500, 400)
	c32, err := NewCSR32(a)
	if err != nil {
		t.Fatal(err)
	}
	s32, err := NewSELL32(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := par.New(1)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%17) - 8.25
	}
	apply := func(op Operator) []float64 {
		y := make([]float64, a.Rows)
		op.SpMV(rt, x, y)
		return y
	}
	for name, op := range map[string]ValueFiller{"csr32": c32, "sell32": s32} {
		before := apply(op.(Operator))
		for _, poison := range []float64{math.MaxFloat32 * 2, -math.MaxFloat32 * 2, math.NaN(), math.Inf(1)} {
			bad := a.Clone()
			bad.Val[len(bad.Val)/3] = poison
			if err := op.FillValues(bad); err == nil {
				t.Fatalf("%s: FillValues accepted poison %g", name, poison)
			}
			bitsEqual(t, name+"/after rejected refresh", apply(op.(Operator)), before)
		}
		// Subnormal and boundary values are valid refresh inputs.
		edge := a.Clone()
		edge.Val[0] = math.MaxFloat32
		if len(edge.Val) > 1 {
			edge.Val[1] = 1e-40
		}
		if err := op.FillValues(edge); err != nil {
			t.Fatalf("%s: FillValues rejected boundary values: %v", name, err)
		}
		// And the refresh actually landed: a fresh conversion of the same
		// values serves identically.
		fresh, err := NewCSR32(edge)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, name+"/after valid refresh", apply(op.(Operator)), apply(fresh))
	}
}

// TestF32FillValuesShapeMismatch: a refresh from a different shape or
// entry count is a descriptive error, not a corruption.
func TestF32FillValuesShapeMismatch(t *testing.T) {
	a := f32TestMatrix(100, 80)
	other := f32TestMatrix(90, 80)
	c32, err := NewCSR32(a)
	if err != nil {
		t.Fatal(err)
	}
	s32, err := NewSELL32(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, op := range map[string]ValueFiller{"csr32": c32, "sell32": s32} {
		if err := op.FillValues(other); err == nil {
			t.Fatalf("%s: FillValues accepted a different shape", name)
		}
	}
}

// TestNewOperatorPrecDispatch pins the construction policy: explicit
// formats convert to the matching f32 operator, FormatAuto follows
// ChooseFormat, PrecisionAuto is rejected (it is a per-level hierarchy
// policy), and out-of-range values fail construction for every format.
func TestNewOperatorPrecDispatch(t *testing.T) {
	big := f32TestMatrix(4000, 4000) // above sellMinRows, regular enough for SELL
	small := f32TestMatrix(64, 64)
	if op, err := NewOperatorPrec(big, FormatCSR, 0, PrecisionF32); err != nil {
		t.Fatal(err)
	} else if _, ok := op.(*CSR32); !ok {
		t.Fatalf("FormatCSR/f32 gave %T", op)
	}
	if op, err := NewOperatorPrec(big, FormatSELL, 0, PrecisionF32); err != nil {
		t.Fatal(err)
	} else if _, ok := op.(*SELL32); !ok {
		t.Fatalf("FormatSELL/f32 gave %T", op)
	}
	if op, err := NewOperatorPrec(small, FormatAuto, 0, PrecisionF32); err != nil {
		t.Fatal(err)
	} else if _, ok := op.(*CSR32); !ok {
		t.Fatalf("small FormatAuto/f32 gave %T, want CSR32", op)
	}
	if op, err := NewOperatorPrec(small, FormatCSR, 0, PrecisionF64); err != nil {
		t.Fatal(err)
	} else if _, ok := op.(*Matrix); !ok {
		t.Fatalf("FormatCSR/f64 gave %T", op)
	}
	if _, err := NewOperatorPrec(small, FormatAuto, 0, PrecisionAuto); err == nil {
		t.Fatal("NewOperatorPrec accepted PrecisionAuto")
	}
	over := small.Clone()
	over.Val[0] = math.MaxFloat32 * 2
	for _, format := range []Format{FormatAuto, FormatCSR, FormatSELL} {
		if _, err := NewOperatorPrec(over, format, 0, PrecisionF32); err == nil {
			t.Fatalf("format %v accepted an out-of-range value", format)
		}
	}
	c32, _ := NewCSR32(small)
	s32, _ := NewSELL32(small, 0)
	sell, _ := NewSELL(small, 0)
	for _, probe := range []struct {
		op   Operator
		want Precision
	}{
		{small, PrecisionF64},
		{sell, PrecisionF64},
		{c32, PrecisionF32},
		{s32, PrecisionF32},
	} {
		if got := OperatorPrecision(probe.op); got != probe.want {
			t.Fatalf("OperatorPrecision(%T) = %v, want %v", probe.op, got, probe.want)
		}
	}
}
