// Package par provides a small deterministic parallel runtime built on a
// persistent worker pool: blocked parallel-for, reductions, exclusive
// prefix sums (scans), and order-preserving parallel filtering, plus
// per-worker scratch arenas for allocation-free kernels.
//
// It plays the role Kokkos plays in the paper: every construct here is
// deterministic with respect to the number of workers, because each worker
// writes only to disjoint index ranges and combination steps use a fixed
// blocking that does not depend on scheduling. Blocks are executed by
// long-lived pool goroutines (plus the caller) that claim them from an
// atomic counter; which goroutine runs a block never affects the result.
// See DESIGN.md for the determinism contract.
//
//amg:deterministic
package par

import (
	"runtime"
	"sync"
)

// Runtime executes parallel constructs with a fixed number of workers.
// The worker count determines only the blocking (and hence how much
// concurrency a construct can use); the goroutines doing the work come
// from the shared process-wide pool. The zero value is not ready for
// use; call New.
type Runtime struct {
	workers int
}

// interned holds premade Runtimes for common worker counts, so the
// pervasive New-per-call pattern (facade entry points, setup paths)
// allocates nothing. Runtimes are immutable, making the shared
// instances safe.
var interned [257]Runtime

func init() {
	for i := range interned {
		interned[i] = Runtime{workers: i}
	}
}

// New returns a Runtime with the given number of workers.
// If workers <= 0, runtime.GOMAXPROCS(0) workers are used.
func New(workers int) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < len(interned) {
		return &interned[workers]
	}
	return &Runtime{workers: workers}
}

var defaultRuntime struct {
	once sync.Once
	rt   *Runtime
}

// Default returns a process-wide Runtime with GOMAXPROCS workers, for
// operations whose API predates explicit runtimes. All algorithms are
// deterministic for any worker count, so using Default never changes
// results.
func Default() *Runtime {
	defaultRuntime.once.Do(func() { defaultRuntime.rt = New(0) })
	return defaultRuntime.rt
}

// Workers reports the worker count.
func (r *Runtime) Workers() int { return r.workers }

// minGrain is the smallest per-worker chunk worth dispatching to the pool.
const minGrain = 512

// split returns the block count and chunk size For uses for n items —
// the same fixed blocking as the seed implementation, a function of
// (n, workers) only.
func (r *Runtime) split(n int) (nb, chunk int) {
	w := r.workers
	if w == 1 || n <= minGrain {
		return 1, n
	}
	if w > n/minGrain {
		w = n / minGrain
		if w < 1 {
			w = 1
		}
	}
	chunk = (n + w - 1) / w
	return (n + chunk - 1) / chunk, chunk
}

// Serial reports whether For would run a loop over [0, n) inline on the
// caller. Hot kernels use it to bypass the closure-based API entirely,
// keeping single-worker execution allocation-free.
func (r *Runtime) Serial(n int) bool {
	return r.workers == 1 || n <= minGrain
}

// For splits [0, n) into contiguous blocks and calls body(lo, hi) for each
// block, possibly concurrently. body must only write to state owned by
// indices in [lo, hi) for the result to be deterministic.
//
// When the effective worker count is one — a single-worker Runtime, a
// loop too small to split, or a split that collapses to one block — the
// body runs inline on the caller goroutine with no pool handoff: no
// task, no atomics, no channel traffic. Single-thread solves therefore
// pay nothing for the parallel API.
func (r *Runtime) For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nb, chunk := r.split(n)
	if nb == 1 {
		body(0, n)
		return
	}
	dispatch(n, nb, chunk, body, nil)
}

// ForWith is For with per-participant scratch: setup runs once on each
// goroutine that executes blocks (lazily, before its first block) with
// that goroutine's arena; body receives the participant's scratch state;
// teardown (optional) runs after a participant's last block, typically
// returning buffers with Put. The scratch state must not influence
// results across blocks for the construct to stay deterministic
// (stamp-guarded accumulators satisfy this).
func ForWith[S any](r *Runtime, n int, setup func(*Arena) S, body func(lo, hi int, s S), teardown func(*Arena, S)) {
	if n <= 0 {
		return
	}
	nb, chunk := r.split(n)
	if nb == 1 {
		// Effective workers == 1: run the single participant inline on
		// the caller, skipping the pool handoff and the participant
		// closure wrappers (which would heap-allocate per call).
		a := callerArena()
		s := setup(a)
		body(0, n, s)
		if teardown != nil {
			teardown(a, s)
		}
		releaseCallerArena(a)
		return
	}
	wa := func(a *Arena) participant {
		s := setup(a)
		p := participant{run: func(lo, hi int) { body(lo, hi, s) }}
		if teardown != nil {
			p.done = func() { teardown(a, s) }
		}
		return p
	}
	dispatch(n, nb, chunk, nil, wa)
}

// ForEach calls body(i) for each i in [0, n), possibly concurrently.
func (r *Runtime) ForEach(n int, body func(i int)) {
	r.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Blocks returns the block boundaries For would use for n items:
// a slice b with b[0]=0, b[len(b)-1]=n. Exposed so that two-pass
// algorithms (count, then write) can share identical blocking.
func (r *Runtime) Blocks(n int) []int {
	if n <= 0 {
		return []int{0, 0}
	}
	nb, chunk := r.split(n)
	b := make([]int, 0, nb+1)
	for lo := 0; lo < n; lo += chunk {
		b = append(b, lo)
	}
	b = append(b, n)
	return b
}

// ForBlocks runs body(b) for each block b in [0, nb), possibly
// concurrently. Intended for block-level two-pass algorithms where each
// index is a whole chunk of work (see Blocks).
func (r *Runtime) ForBlocks(nb int, body func(b int)) {
	if nb <= 0 {
		return
	}
	if nb == 1 || r.workers == 1 {
		for b := 0; b < nb; b++ {
			body(b)
		}
		return
	}
	dispatch(nb, nb, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			body(b)
		}
	}, nil)
}

// Integer is the constraint for scan/reduce element types.
type Integer interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64
}

// ReduceSum returns the sum of f(i) over [0, n). The reduction order is a
// fixed function of n and the worker count, so the result is deterministic
// (and for integers, order-independent anyway).
func ReduceSum[T Integer](r *Runtime, n int, f func(i int) T) T {
	blocks := r.Blocks(n)
	nb := len(blocks) - 1
	partial := make([]T, nb)
	r.ForBlocks(nb, func(b int) {
		var s T
		for i := blocks[b]; i < blocks[b+1]; i++ {
			s += f(i)
		}
		partial[b] = s
	})
	var total T
	for _, p := range partial {
		total += p
	}
	return total
}

// ReduceMax returns the maximum of f(i) over [0, n), or zero if n <= 0.
func ReduceMax[T Integer](r *Runtime, n int, f func(i int) T) T {
	if n <= 0 {
		var zero T
		return zero
	}
	blocks := r.Blocks(n)
	nb := len(blocks) - 1
	partial := make([]T, nb)
	r.ForBlocks(nb, func(b int) {
		m := f(blocks[b])
		for i := blocks[b] + 1; i < blocks[b+1]; i++ {
			if v := f(i); v > m {
				m = v
			}
		}
		partial[b] = m
	})
	m := partial[0]
	for _, p := range partial[1:] {
		if p > m {
			m = p
		}
	}
	return m
}

// ScanExclusive computes the exclusive prefix sum of in into out and
// returns the total. out must have len(in)+1 capacity or equal length len(in);
// if len(out) == len(in)+1, out[len(in)] is set to the total.
// in and out may alias.
//
// The computation is blocked: per-block sums, a serial scan over the block
// sums, then a per-block local scan. Identical results for any worker count.
func ScanExclusive[T Integer](r *Runtime, in, out []T) T {
	n := len(in)
	if n == 0 {
		if len(out) > 0 {
			out[0] = 0
		}
		return 0
	}
	blocks := r.Blocks(n)
	nb := len(blocks) - 1
	if nb == 1 {
		var run T
		for i := 0; i < n; i++ {
			v := in[i]
			out[i] = run
			run += v
		}
		if len(out) > n {
			out[n] = run
		}
		return run
	}
	a := AcquireArena()
	sums := Get[T](a, nb)
	offsets := Get[T](a, nb)
	r.ForBlocks(nb, func(b int) {
		var s T
		for i := blocks[b]; i < blocks[b+1]; i++ {
			s += in[i]
		}
		sums[b] = s
	})
	var run T
	for b := 0; b < nb; b++ {
		offsets[b] = run
		run += sums[b]
	}
	total := run
	r.ForBlocks(nb, func(b int) {
		acc := offsets[b]
		for i := blocks[b]; i < blocks[b+1]; i++ {
			v := in[i]
			out[i] = acc
			acc += v
		}
	})
	Put(a, sums)
	Put(a, offsets)
	ReleaseArena(a)
	if len(out) > n {
		out[n] = total
	}
	return total
}

// Filter writes the elements of src for which keep returns true into dst,
// preserving order, and returns the filled prefix of dst. dst must have
// capacity >= len(src); src and dst must not alias.
//
// This is the worklist-compaction primitive of Algorithm 1 (lines 33-34):
// a two-pass count + exclusive scan + scatter, deterministic for any worker
// count.
func Filter[T any](r *Runtime, src []T, dst []T, keep func(T) bool) []T {
	n := len(src)
	if n == 0 {
		return dst[:0]
	}
	blocks := r.Blocks(n)
	nb := len(blocks) - 1
	if nb == 1 {
		k := 0
		for _, v := range src {
			if keep(v) {
				dst[k] = v
				k++
			}
		}
		return dst[:k]
	}
	a := AcquireArena()
	counts := Get[int](a, nb)
	offsets := Get[int](a, nb)
	r.ForBlocks(nb, func(b int) {
		c := 0
		for i := blocks[b]; i < blocks[b+1]; i++ {
			if keep(src[i]) {
				c++
			}
		}
		counts[b] = c
	})
	total := 0
	for b := 0; b < nb; b++ {
		offsets[b] = total
		total += counts[b]
	}
	r.ForBlocks(nb, func(b int) {
		k := offsets[b]
		for i := blocks[b]; i < blocks[b+1]; i++ {
			if keep(src[i]) {
				dst[k] = src[i]
				k++
			}
		}
	})
	Put(a, counts)
	Put(a, offsets)
	ReleaseArena(a)
	return dst[:total]
}
