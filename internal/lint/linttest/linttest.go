// Package linttest is an analysistest-style harness for amglint
// analyzers: it loads a fixture package from testdata/src/<pkg>,
// type-checks it (resolving fixture-local imports from testdata/src and
// everything else from the standard library), runs one analyzer, and
// compares the diagnostics against `// want "regexp"` comments placed
// on the offending lines — the same expectation syntax as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// stdlib because x/tools is not vendorable in the offline build.
//
// Every fixture is a positive proof that the analyzer fires (a fixture
// whose wants go unmatched fails the test) and a negative proof that it
// stays quiet on the clean forms (any unexpected diagnostic fails the
// test).
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"mis2go/internal/lint"
)

// Run loads testdata/src/<pkg> for each named fixture package, applies
// the analyzer, and enforces the // want expectations.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(a.Name+"/"+pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, a, pkg)
		})
	}
}

func runOne(t *testing.T, a *lint.Analyzer, pkg string) {
	t.Helper()
	ld := newLoader(t, filepath.Join("testdata", "src"))
	fset, files, tpkg, info := ld.load(pkg)

	var sink strings.Builder
	diags := lint.CollectDiagnostics(fset, files, tpkg, info, []*lint.Analyzer{a}, &sink)
	if sink.Len() > 0 {
		t.Errorf("analyzer error output: %s", sink.String())
	}

	wants := collectWants(t, fset, files)
	type key struct {
		file string
		line int
	}
	unmatched := map[key][]*want{}
	for _, w := range wants {
		k := key{w.file, w.line}
		unmatched[k] = append(unmatched[k], w)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for _, w := range unmatched[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants extracts `// want "re" ["re" ...]` comment expectations.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(text)
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want expectation %q: %v", pos, c.Text, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: unquoting %q: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// loader type-checks fixture packages, resolving imports that exist
// under testdata/src as fixture packages and everything else through
// the standard library importers.
type loader struct {
	t     *testing.T
	root  string
	fset  *token.FileSet
	cache map[string]*loaded
	std   types.Importer
	src   types.Importer
}

type loaded struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func newLoader(t *testing.T, root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		t:     t,
		root:  root,
		fset:  fset,
		cache: map[string]*loaded{},
		std:   importer.Default(),
		src:   importer.ForCompiler(fset, "source", nil),
	}
}

func (ld *loader) load(pkg string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	ld.t.Helper()
	l := ld.loadErr(pkg)
	return ld.fset, l.files, l.pkg, l.info
}

func (ld *loader) loadErr(pkg string) *loaded {
	ld.t.Helper()
	if l, ok := ld.cache[pkg]; ok {
		return l
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(pkg))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("reading fixture package %s: %v", pkg, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ld.t.Fatalf("parsing fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.t.Fatalf("fixture package %s has no Go files", pkg)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if _, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); err == nil {
				return ld.loadErr(path).pkg, nil
			}
			p, err := ld.std.Import(path)
			if err == nil {
				return p, nil
			}
			// importer.Default needs installed export data; fall back to
			// compiling the stdlib package from source.
			return ld.src.Import(path)
		}),
		Error: func(error) {},
	}
	tpkg, err := cfg.Check(pkg, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("typechecking fixture package %s: %v", pkg, err)
	}
	l := &loaded{files: files, pkg: tpkg, info: info}
	ld.cache[pkg] = l
	return l
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
