package krylov

import (
	"errors"
	"math"
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

func spdProblem(nx, ny int) (*sparse.Matrix, []float64, []float64) {
	g := gen.Laplace2D(nx, ny)
	a := gen.Laplacian(g, 0.1)
	n := a.Rows
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(0.1 * float64(i))
	}
	b := make([]float64, n)
	a.SpMV(par.New(1), xTrue, b)
	return a, b, xTrue
}

func TestCGConvergesOnSPD(t *testing.T) {
	a, b, xTrue := spdProblem(20, 20)
	x := make([]float64, a.Rows)
	st, err := CG(par.New(4), a, b, x, 1e-10, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("not converged: %+v", st)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestCGIterationLimit(t *testing.T) {
	a, b, _ := spdProblem(30, 30)
	x := make([]float64, a.Rows)
	_, err := CG(par.New(2), a, b, x, 1e-14, 3, nil)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
}

func TestCGSizeMismatch(t *testing.T) {
	a, b, _ := spdProblem(5, 5)
	if _, err := CG(par.New(1), a, b, make([]float64, 3), 1e-8, 10, nil); err == nil {
		t.Fatal("size mismatch not reported")
	}
}

func TestCGDetectsIndefinite(t *testing.T) {
	// -I is definitely not SPD.
	a := sparse.Identity(10)
	a.Scale(-1)
	b := make([]float64, 10)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, 10)
	if _, err := CG(par.New(1), a, b, x, 1e-8, 50, nil); err == nil {
		t.Fatal("indefinite matrix not detected")
	}
}

func TestGMRESConvergesOnSPD(t *testing.T) {
	a, b, xTrue := spdProblem(15, 15)
	x := make([]float64, a.Rows)
	st, err := GMRES(par.New(4), a, b, x, 1e-10, 3000, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("not converged: %+v", st)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-5 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestGMRESOnNonsymmetric(t *testing.T) {
	// Upwind-ish convection-diffusion: unsymmetric but well conditioned.
	n := 200
	a := &sparse.Matrix{Rows: n, Cols: n}
	a.RowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		if i > 0 {
			a.Col = append(a.Col, int32(i-1))
			a.Val = append(a.Val, -1.5)
		}
		a.Col = append(a.Col, int32(i))
		a.Val = append(a.Val, 4)
		if i < n-1 {
			a.Col = append(a.Col, int32(i+1))
			a.Val = append(a.Val, -0.5)
		}
		a.RowPtr[i+1] = len(a.Col)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = float64(i%7) - 3
	}
	b := make([]float64, n)
	a.SpMV(par.New(1), xTrue, b)
	x := make([]float64, n)
	st, err := GMRES(par.New(2), a, b, x, 1e-10, 1000, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("not converged: %+v", st)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-5 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

type jacobiPrec struct{ dinv []float64 }

func (j jacobiPrec) Precondition(r, z []float64) {
	for i := range z {
		z[i] = j.dinv[i] * r[i]
	}
}

func TestPreconditioningReducesCGIterations(t *testing.T) {
	g := gen.Laplace2D(40, 40)
	a := gen.WeightedLaplacian(g, 0.01, 3)
	n := a.Rows
	// Non-constant RHS: a constant vector is an eigenvector of the
	// constant-row-sum Laplacian and converges in one step.
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(0.3*float64(i)) + 0.2*float64(i%11)
	}
	plain := make([]float64, n)
	stPlain, err := CG(par.New(4), a, b, plain, 1e-8, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := a.Diagonal()
	dinv := make([]float64, n)
	for i := range d {
		dinv[i] = 1 / d[i]
	}
	pre := make([]float64, n)
	stPre, err := CG(par.New(4), a, b, pre, 1e-8, 5000, jacobiPrec{dinv})
	if err != nil {
		t.Fatal(err)
	}
	if stPre.Iterations > stPlain.Iterations {
		t.Fatalf("Jacobi preconditioning increased iterations: %d > %d", stPre.Iterations, stPlain.Iterations)
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a, _, _ := spdProblem(5, 5)
	b := make([]float64, a.Rows)
	x := make([]float64, a.Rows)
	st, err := GMRES(par.New(1), a, b, x, 1e-10, 100, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 0 {
		t.Fatalf("zero RHS should converge immediately, took %d", st.Iterations)
	}
}

func TestIdentityPreconditioner(t *testing.T) {
	r := []float64{1, 2, 3}
	z := make([]float64, 3)
	Identity().Precondition(r, z)
	for i := range r {
		if z[i] != r[i] {
			t.Fatal("identity preconditioner must copy")
		}
	}
}
