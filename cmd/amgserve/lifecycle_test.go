// Lifecycle tests: probes, drain rejection, cancellation status
// mapping, and the signal-driven run/drain sequence.
package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/serve"
)

func testApp(t *testing.T) (*app, *httptest.Server) {
	t.Helper()
	svc := serve.New(serve.Config{
		AMG:         amg.Options{MinCoarseSize: 30},
		Tol:         1e-10,
		MaxIter:     200,
		BatchWindow: -1,
	})
	ap := &app{svc: svc, maxBody: 64 << 20}
	ts := httptest.NewServer(ap.mux())
	t.Cleanup(ts.Close)
	return ap, ts
}

func getStatus(t *testing.T, url string) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode, resp.Header
}

func TestProbesFlipOnDrain(t *testing.T) {
	ap, ts := testApp(t)

	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz %d, want 200", code)
	}
	if code, _ := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz %d, want 200", code)
	}

	ap.draining.Store(true)

	// Liveness must hold through a drain — a restart now would kill the
	// in-flight work the drain is protecting.
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("draining healthz %d, want 200", code)
	}
	code, hdr := getStatus(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining readyz has no Retry-After")
	}
}

func TestDrainRejectsNewSolves(t *testing.T) {
	ap, ts := testApp(t)
	body, _ := laplaceRequest(t, 1)

	// Before the drain the same request succeeds...
	postSolve(t, ts, body)

	ap.draining.Store(true)
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining solve %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining solve rejection has no Retry-After")
	}
}

// TestCancellationMapsToRetryable503: a solve whose failure chain
// carries context cancellation (here: a canceled admission or build,
// injected through the fault hook) is a retryable 503 with Retry-After
// — classified from the error itself, not from the request context.
func TestCancellationMapsToRetryable503(t *testing.T) {
	svc := serve.New(serve.Config{
		AMG:         amg.Options{MinCoarseSize: 30},
		Tol:         1e-10,
		MaxIter:     200,
		BatchWindow: -1,
		FaultHook: func(p serve.FaultPhase, ctx context.Context) error {
			if p == serve.FaultBuild {
				return fmt.Errorf("injected cancel: %w", context.Canceled)
			}
			return nil
		},
	})
	ap := &app{svc: svc, maxBody: 64 << 20}
	ts := httptest.NewServer(ap.mux())
	t.Cleanup(ts.Close)

	body, _ := laplaceRequest(t, 1)
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("canceled solve %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("canceled solve has no Retry-After")
	}
}

// TestRunDrainsOnSignal drives the run() sequence end to end: serve,
// receive a signal, flip readiness, shut down, and come back clean
// (http.ErrServerClosed is not an error).
func TestRunDrainsOnSignal(t *testing.T) {
	svc := serve.New(serve.Config{
		AMG:         amg.Options{MinCoarseSize: 30},
		Tol:         1e-10,
		MaxIter:     200,
		BatchWindow: -1,
	})
	ap := &app{svc: svc, maxBody: 64 << 20}
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: ap.mux()}
	sig := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(srv, ap, sig, 5*time.Second) }()

	// Give ListenAndServe a moment to bind, then signal.
	time.Sleep(50 * time.Millisecond)
	sig <- syscall.SIGTERM
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
	if !ap.draining.Load() {
		t.Fatal("drain did not flip readiness")
	}
}

// TestRunReportsListenFailure: a bind failure surfaces as an error, it
// is not swallowed by the clean-shutdown path.
func TestRunReportsListenFailure(t *testing.T) {
	ap := &app{svc: serve.New(serve.Config{}), maxBody: 1}
	srv := &http.Server{Addr: "127.0.0.1:-1", Handler: ap.mux()}
	sig := make(chan os.Signal, 1)
	if err := run(srv, ap, sig, time.Second); err == nil {
		t.Fatal("run with an unbindable address returned nil")
	}
}
