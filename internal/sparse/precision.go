package sparse

import (
	"fmt"
	"math"
)

// Precision selects the value-storage width of an Operator. Only the
// stored matrix values change width: every kernel takes float64 vectors
// and accumulates each row's terms in float64, in the same canonical
// left-to-right order as the f64 operators, so a given precision is
// bitwise deterministic across formats and worker counts. See DESIGN.md
// ("Mixed precision").
type Precision int

const (
	// PrecisionF64 stores operator values as float64 — the default and
	// the reference arithmetic.
	PrecisionF64 Precision = iota
	// PrecisionF32 stores operator values as float32, halving the bytes
	// streamed per stored value; products still accumulate in float64.
	PrecisionF32
	// PrecisionAuto is the hierarchy policy "f32 on all levels below the
	// finest": the fine operator (and the outer Krylov matvec) keeps the
	// full-precision values, coarser levels store f32. Callers that build
	// a single operator must resolve Auto to a concrete precision first.
	PrecisionAuto
)

// String implements fmt.Stringer for diagnostics and CLI flags.
func (p Precision) String() string {
	switch p {
	case PrecisionF64:
		return "f64"
	case PrecisionF32:
		return "f32"
	case PrecisionAuto:
		return "auto"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// ParsePrecision converts a CLI-style name to a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "":
		return PrecisionF64, nil
	case "f32":
		return PrecisionF32, nil
	case "auto":
		return PrecisionAuto, nil
	}
	return PrecisionF64, fmt.Errorf("sparse: unknown precision %q (want f64, f32, or auto)", s)
}

// ValueFiller is the refresh surface shared by the value-caching
// operator variants (*SELL, *CSR32, *SELL32): replace the stored values
// from a same-pattern CSR matrix without reallocating. FillValues
// mutates the operator and must be serialized against every reader;
// pattern identity is the caller's contract (the AMG hierarchy
// fingerprints it).
type ValueFiller interface {
	FillValues(a *Matrix) error
}

// CheckF32Range reports the first value of vals that cannot be stored as
// a float32 — non-finite, or magnitude above math.MaxFloat32 (which
// would silently convert to ±Inf). Subnormal and rounded-to-zero
// magnitudes are representable and pass. The f32 constructors and
// FillValues run this scan before mutating anything, so a rejected
// refresh leaves the previous values serving (the hierarchy's two-zone
// refresh contract).
func CheckF32Range(vals []float64) error {
	for p, v := range vals {
		if v != v || v > math.MaxFloat32 || v < -math.MaxFloat32 {
			return fmt.Errorf("sparse: value %g at entry %d is outside the float32 range", v, p)
		}
	}
	return nil
}

// NewOperatorPrec returns a's kernels in the requested format and value
// precision. PrecisionF64 defers to NewOperator unchanged; PrecisionF32
// builds the f32-valued variant (CSR32, SELL32, or ChooseFormat between
// them under FormatAuto, with the same capacity fallback to CSR32 as
// the f64 path). PrecisionAuto is a per-level hierarchy policy, not a
// single-operator precision, and is rejected here — the caller resolves
// it per level before constructing.
func NewOperatorPrec(a *Matrix, format Format, sigma int, prec Precision) (Operator, error) {
	switch prec {
	case PrecisionF64:
		return NewOperator(a, format, sigma)
	case PrecisionAuto:
		return nil, fmt.Errorf("sparse: PrecisionAuto must be resolved to f64 or f32 per level before constructing an operator")
	case PrecisionF32:
	default:
		return nil, fmt.Errorf("sparse: unknown precision %d", int(prec))
	}
	if err := CheckSigma(sigma); err != nil {
		return nil, err
	}
	switch format {
	case FormatCSR:
		return NewCSR32(a)
	case FormatSELL:
		return NewSELL32(a, sigma)
	case FormatAuto:
		if ChooseFormat(a) == FormatSELL {
			if s, err := NewSELL32(a, sigma); err == nil {
				return s, nil
			} else if err := CheckF32Range(a.Val); err != nil {
				// A range failure is not a capacity fallback: CSR32 would
				// reject the same values, so surface the real problem.
				return nil, err
			}
		}
		return NewCSR32(a)
	}
	return nil, fmt.Errorf("sparse: unknown operator format %d", int(format))
}

// OperatorPrecision reports the value-storage precision of an operator
// built by NewOperator/NewOperatorPrec.
func OperatorPrecision(op Operator) Precision {
	switch op.(type) {
	case *CSR32, *SELL32:
		return PrecisionF32
	}
	return PrecisionF64
}
