package lint

import (
	"go/ast"
	"go/types"
)

// CtxPoll pins the cancellation contract: every exported function or
// method whose name ends in "Ctx" and takes a context.Context must
// actually consult it — by calling ctx.Err() or ctx.Done(), or by
// passing ctx on to another function. If the body contains a working
// loop (a for/range statement that makes at least one function call —
// the iteration path cancellation must reach), at least one such
// consultation must be inside a loop, so a *Ctx solver cannot
// accidentally hoist its only poll out of the iteration.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "check exported *Ctx functions reach a ctx check on their loop path",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if !fd.Name.IsExported() || len(name) <= 3 || name[len(name)-3:] != "Ctx" {
				continue
			}
			ctxObj := contextParam(pass, fd)
			if ctxObj == nil {
				continue
			}
			checkCtxBody(pass, fd, ctxObj)
		}
	}
	return nil
}

// contextParam returns the object of the first parameter whose type is
// context.Context, or nil.
func contextParam(pass *Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkCtxBody(pass *Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	info := pass.TypesInfo
	name := funcName(fd)

	var anyUse, useInLoop, workingLoop bool
	// loopDepth tracks lexical for/range nesting; callsInLoop counts
	// non-builtin calls made at loopDepth > 0.
	var walk func(n ast.Node, loopDepth int)
	usesCtx := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == ctxObj
	}
	walk = func(n ast.Node, loopDepth int) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		case *ast.CallExpr:
			consulted := false
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && usesCtx(sel.X) {
				if sel.Sel.Name == "Err" || sel.Sel.Name == "Done" {
					consulted = true
				}
			}
			for _, arg := range n.Args {
				if usesCtx(arg) {
					consulted = true
				}
			}
			if consulted {
				anyUse = true
				if loopDepth > 0 {
					useInLoop = true
				}
			}
			if _, isBuiltin := calleeObj(info, n).(*types.Builtin); !isBuiltin && loopDepth > 0 {
				if tv, ok := info.Types[ast.Unparen(n.Fun)]; !ok || !tv.IsType() {
					workingLoop = true
				}
			}
		}
		d := loopDepth
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, d)
			return false
		})
	}
	walk(fd.Body, 0)

	switch {
	case !anyUse:
		pass.Reportf(fd.Name.Pos(), "exported %s never consults its context (no ctx.Err/ctx.Done call and ctx is not passed on)", name)
	case workingLoop && !useInLoop:
		pass.Reportf(fd.Name.Pos(), "exported %s has loops that call functions but never checks ctx inside a loop (cancellation cannot reach the iteration path)", name)
	}
}
