// Tests for the self-healing layer: escalation-ladder construction and
// recovery, request-level convergence stats, per-request deadlines, and
// the poison-pattern circuit breaker's open/probe/close lifecycle.
package serve

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/gen"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// nearSingularProblem is a system a reduced-precision (f32) hierarchy
// cannot push to tol 1e-12 — the primary solve fails classified and the
// full-f64 rung recovers it.
func nearSingularProblem() (*sparse.Matrix, []float64) {
	a := gen.Laplacian(gen.Laplace2D(24, 24), 1e-7)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	return a, b
}

func TestEscalationLadderConstruction(t *testing.T) {
	base := Config{AMG: amg.Options{MinCoarseSize: 40}}.withDefaults()

	f32 := base
	f32.AMG.Precision = sparse.PrecisionF32
	names := func(rungs []rung) []string {
		var out []string
		for _, r := range rungs {
			out = append(out, r.name)
		}
		return out
	}
	got := names(buildLadder(f32))
	want := []string{"f64", "f64+sgs", "f64+gmres"}
	if len(got) != len(want) {
		t.Fatalf("f32 ladder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("f32 ladder = %v, want %v", got, want)
		}
	}

	// An f64 service skips the redundant precision rung.
	got = names(buildLadder(base))
	if len(got) != 2 || got[0] != "f64+sgs" || got[1] != "f64+gmres" {
		t.Fatalf("f64 ladder = %v, want [f64+sgs f64+gmres]", got)
	}

	// MaxEscalations truncates deterministically.
	short := f32
	short.MaxEscalations = 1
	if got = names(buildLadder(short)); len(got) != 1 || got[0] != "f64" {
		t.Fatalf("truncated ladder = %v, want [f64]", got)
	}
}

// TestEscalationRecoversF32Stall: the end-to-end recovery acceptance. A
// service running a reduced-precision (f32) hierarchy stalls on the
// near-singular problem at tol 1e-12; the ladder's f64 rebuild rung
// recovers it, and the recovered solution is bitwise identical to a
// sequential solve with the rung's own configuration.
func TestEscalationRecoversF32Stall(t *testing.T) {
	a, b := nearSingularProblem()
	cfg := Config{
		AMG:         amg.Options{MinCoarseSize: 40, Precision: sparse.PrecisionF32},
		Tol:         1e-12,
		MaxIter:     200,
		BatchWindow: -1,
	}
	s := New(cfg)
	x, st, err := s.Solve(context.Background(), a, b)
	if err != nil {
		t.Fatalf("escalation did not recover: %v (rungs %v)", err, st.Escalations)
	}
	if len(st.Escalations) == 0 || st.Escalations[len(st.Escalations)-1] != "f64" {
		t.Fatalf("want recovery by the f64 rung, got rungs %v", st.Escalations)
	}
	if !st.Converged {
		t.Fatalf("recovered request not marked converged: %+v", st)
	}
	m := s.Metrics()
	if m.Escalations == 0 || m.EscalationRecoveries != 1 {
		t.Fatalf("escalation metrics not recorded: %+v", m)
	}
	if m.NumericalFailures != 0 {
		t.Fatalf("a recovered request must not count as a numerical failure: %+v", m)
	}

	// Bitwise reference: the rung's exact configuration (f64 hierarchy,
	// guarded batch CG on the request's own matrix).
	rcfg := cfg.withDefaults()
	ropt := rcfg.AMG
	ropt.Precision = sparse.PrecisionF64
	h, err := amg.Build(a, ropt)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.Rows)
	rt := par.New(rcfg.Threads)
	if _, err := krylov.CGBatchCtx(nil, rt, a, append([]float64(nil), b...), want, 1, rcfg.Tol, rcfg.MaxIter, h, nil, rcfg.Health); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(want[i]) {
			t.Fatalf("escalated solution not bitwise reproducible: x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

// TestEscalationDisabled: MaxEscalations < 0 turns the ladder off; the
// classified primary failure surfaces unchanged.
func TestEscalationDisabled(t *testing.T) {
	a, b := nearSingularProblem()
	cfg := Config{
		AMG:                 amg.Options{MinCoarseSize: 40, Precision: sparse.PrecisionF32},
		Tol:                 1e-12,
		MaxIter:             200,
		BatchWindow:         -1,
		MaxEscalations:      -1,
		QuarantineThreshold: -1,
	}
	s := New(cfg)
	_, st, err := s.Solve(context.Background(), a, b)
	if err == nil {
		t.Fatal("expected a classified failure with the ladder disabled")
	}
	if !isNumericalFailure(err) {
		t.Fatalf("want a classified numerical failure, got %v", err)
	}
	if len(st.Escalations) != 0 {
		t.Fatalf("ladder ran while disabled: %v", st.Escalations)
	}
	if st.Converged {
		t.Fatal("failed request marked converged")
	}
	if m := s.Metrics(); m.NumericalFailures != 1 || m.Escalations != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestServeStatsConvergedResidual: satellite coverage for the explicit
// per-request convergence signal.
func TestServeStatsConvergedResidual(t *testing.T) {
	a, b := testProblem(8, 0.1)
	s := New(testConfig())
	_, st, err := s.Solve(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("healthy solve not marked converged: %+v", st)
	}
	if st.RelResidual <= 0 || st.RelResidual >= 1e-10 {
		t.Fatalf("RelResidual = %g, want in (0, tol)", st.RelResidual)
	}
}

// TestServeSolveTimeout: Config.SolveTimeout bounds the request end to
// end; an expired deadline surfaces as a cancellation wrapping
// context.DeadlineExceeded. A slow fault hook pins the request past its
// deadline deterministically (timer granularity makes a bare tiny
// timeout racy against a fast solve).
func TestServeSolveTimeout(t *testing.T) {
	a, b := testProblem(12, 0.1)
	cfg := testConfig()
	cfg.SolveTimeout = time.Millisecond
	cfg.FaultHook = func(p FaultPhase, ctx context.Context) error {
		if p == FaultAdmitted {
			<-ctx.Done() // the per-request deadline, by construction
		}
		return nil
	}
	s := New(cfg)
	_, _, err := s.Solve(context.Background(), a, b)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if m := s.Metrics(); m.NumericalFailures != 0 {
		t.Fatalf("a deadline must not count as a numerical failure: %+v", m)
	}
}

// poisonService returns a service with a 2-failure quarantine threshold,
// a short cooldown, and the ladder off (every poisoned request keeps its
// classified failure), plus a healthy matrix and a poisoned (NaN)
// right-hand side for it.
func poisonService(cooldown time.Duration) (*Service, *sparse.Matrix, []float64, []float64) {
	cfg := Config{
		AMG:                 amg.Options{MinCoarseSize: 40},
		Tol:                 1e-10,
		MaxIter:             200,
		BatchWindow:         -1,
		MaxEscalations:      -1,
		QuarantineThreshold: 2,
		QuarantineCooldown:  cooldown,
	}
	s := New(cfg)
	a, good := testProblem(6, 0.1)
	bad := append([]float64(nil), good...)
	bad[3] = math.NaN()
	return s, a, good, bad
}

// TestQuarantineOpensAndRejects: consecutive classified failures open
// the pattern's breaker; further requests fail fast with ErrQuarantined
// carrying a Retry-After, paying no solve.
func TestQuarantineOpensAndRejects(t *testing.T) {
	s, a, _, bad := poisonService(time.Minute)
	for i := 0; i < 2; i++ {
		if _, _, err := s.Solve(context.Background(), a, bad); !errors.Is(err, krylov.ErrNonFinite) {
			t.Fatalf("poison solve %d: want ErrNonFinite, got %v", i, err)
		}
	}
	_, _, err := s.Solve(context.Background(), a, bad)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("want ErrQuarantined, got %v", err)
	}
	var qe *QuarantinedError
	if !errors.As(err, &qe) || qe.RetryAfter <= 0 {
		t.Fatalf("quarantine rejection must carry a positive RetryAfter: %v", err)
	}
	m := s.Metrics()
	if m.Quarantines != 1 || m.QuarantineRejections != 1 || m.NumericalFailures != 2 {
		t.Fatalf("metrics: %+v", m)
	}
	// The rejection paid no build and no solve (the two poison solves
	// paid one build + one value hit and two batch solves).
	if m.Builds != 1 || m.BatchSolves != 2 {
		t.Fatalf("fail-fast rejection still paid build/solve: %+v", m)
	}
}

// TestQuarantineProbeRecovers: after the cooldown the first request is
// the half-open probe; a successful probe closes the breaker and
// traffic flows normally again.
func TestQuarantineProbeRecovers(t *testing.T) {
	s, a, good, bad := poisonService(10 * time.Millisecond)
	for i := 0; i < 2; i++ {
		s.Solve(context.Background(), a, bad)
	}
	if _, _, err := s.Solve(context.Background(), a, good); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("breaker should be open, got %v", err)
	}
	time.Sleep(15 * time.Millisecond)
	x, st, err := s.Solve(context.Background(), a, good)
	if err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if !st.Converged || len(x) == 0 {
		t.Fatalf("probe returned no converged solution: %+v", st)
	}
	m := s.Metrics()
	if m.Probes != 1 || m.ProbeSuccesses != 1 || m.ProbeFailures != 0 {
		t.Fatalf("probe metrics: %+v", m)
	}
	// Closed again: the next request is a plain solve, not a probe.
	if _, _, err := s.Solve(context.Background(), a, good); err != nil {
		t.Fatalf("post-recovery solve failed: %v", err)
	}
	if m = s.Metrics(); m.Probes != 1 {
		t.Fatalf("breaker did not close after the successful probe: %+v", m)
	}
}

// TestQuarantineProbeFailureBacksOff: a failed probe re-quarantines
// immediately with a doubled cooldown.
func TestQuarantineProbeFailureBacksOff(t *testing.T) {
	s, a, _, bad := poisonService(10 * time.Millisecond)
	for i := 0; i < 2; i++ {
		s.Solve(context.Background(), a, bad)
	}
	time.Sleep(15 * time.Millisecond)
	if _, _, err := s.Solve(context.Background(), a, bad); !errors.Is(err, krylov.ErrNonFinite) {
		t.Fatalf("failed probe should return its classified error, got %v", err)
	}
	// Re-quarantined: the very next request fails fast with the doubled
	// cooldown.
	_, _, err := s.Solve(context.Background(), a, bad)
	var qe *QuarantinedError
	if !errors.As(err, &qe) {
		t.Fatalf("want fail-fast after failed probe, got %v", err)
	}
	if qe.RetryAfter <= 10*time.Millisecond {
		t.Fatalf("cooldown did not back off: RetryAfter %v", qe.RetryAfter)
	}
	m := s.Metrics()
	if m.ProbeFailures != 1 || m.Quarantines != 2 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestQuarantineDisabled: QuarantineThreshold < 0 turns the breaker
// off; repeated failures keep paying full price but are never rejected.
func TestQuarantineDisabled(t *testing.T) {
	cfg := Config{
		AMG:                 amg.Options{MinCoarseSize: 40},
		Tol:                 1e-10,
		MaxIter:             200,
		BatchWindow:         -1,
		MaxEscalations:      -1,
		QuarantineThreshold: -1,
	}
	s := New(cfg)
	a, good := testProblem(6, 0.1)
	bad := append([]float64(nil), good...)
	bad[0] = math.NaN()
	for i := 0; i < 4; i++ {
		if _, _, err := s.Solve(context.Background(), a, bad); errors.Is(err, ErrQuarantined) {
			t.Fatalf("breaker fired while disabled (request %d)", i)
		}
	}
	if m := s.Metrics(); m.Quarantines != 0 || m.QuarantineRejections != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestEscalationFalseConvergenceClassified: an exactly singular Neumann
// Laplacian at a loose tolerance is the false-convergence poison — the
// CG recurrence residual passes the tolerance while the true residual
// is ~55. The service must surface a classified ErrDiverged (feeding
// the ladder and the breaker), never a "converged" garbage iterate.
func TestEscalationFalseConvergenceClassified(t *testing.T) {
	g := gen.Laplace2D(16, 16)
	a := gen.Laplacian(g, 0)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	cfg := Config{
		AMG:                 amg.Options{MinCoarseSize: 40},
		Tol:                 1e-8,
		MaxIter:             500,
		BatchWindow:         -1,
		MaxEscalations:      -1,
		QuarantineThreshold: 2,
		QuarantineCooldown:  time.Minute,
	}
	s := New(cfg)
	for i := 0; i < 2; i++ {
		_, st, err := s.Solve(context.Background(), a, b)
		if !errors.Is(err, krylov.ErrDiverged) {
			t.Fatalf("solve %d: want ErrDiverged (false convergence), got %v", i, err)
		}
		if st.Converged {
			t.Fatalf("solve %d: false convergence marked converged, relres %g", i, st.RelResidual)
		}
	}
	if _, _, err := s.Solve(context.Background(), a, b); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("want the false-convergence pattern quarantined, got %v", err)
	}
	if m := s.Metrics(); m.NumericalFailures != 2 || m.Quarantines != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}
