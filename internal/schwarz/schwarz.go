// Package schwarz implements a two-level overlapping additive Schwarz
// preconditioner, the domain-decomposition use of graph coarsening the
// paper's introduction cites (Heinlein et al., FROSch). It composes this
// repository's pieces end to end: the multilevel partitioner (itself
// built on MIS-2 coarsening) splits the matrix graph into subdomains,
// each subdomain is extended by overlap layers and factorized directly,
// and the optional coarse level is the Galerkin operator of an MIS-2
// aggregation — so both levels of the preconditioner are driven by the
// paper's kernel.
package schwarz

import (
	"errors"
	"fmt"

	"mis2go/internal/coarsen"
	"mis2go/internal/par"
	"mis2go/internal/partition"
	"mis2go/internal/sparse"
)

// Options configures New. Zero values select the noted defaults.
type Options struct {
	// Subdomains is the number of subdomains (rounded up to a power of
	// two). Default: n/256, at least 2.
	Subdomains int
	// Overlap is the number of BFS layers added around each subdomain
	// (default 1). Overlap 0 is block Jacobi.
	Overlap int
	// NoCoarse disables the second (coarse) level.
	NoCoarse bool
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
}

// Preconditioner is a built additive Schwarz operator; it implements
// krylov.Preconditioner. Not safe for concurrent use.
type Preconditioner struct {
	n   int
	rt  *par.Runtime
	sub []subdomain
	// Coarse level: z += P0 (R A P0)^{-1} P0^T r.
	coarseP *sparse.Matrix
	coarse  *sparse.Dense
	cr, cz  []float64
}

// subdomain holds the overlapped index set and its factorized local
// operator.
type subdomain struct {
	rows []int32 // ascending global rows of the overlapped subdomain
	lu   *sparse.Dense
	r, z []float64 // local scratch
}

// New builds the preconditioner for the SPD matrix a.
func New(a *sparse.Matrix, opt Options) (*Preconditioner, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("schwarz: matrix must be square")
	}
	n := a.Rows
	if n == 0 {
		return nil, errors.New("schwarz: empty matrix")
	}
	if opt.Overlap < 0 {
		return nil, fmt.Errorf("schwarz: negative overlap %d", opt.Overlap)
	}
	k := opt.Subdomains
	if k <= 0 {
		k = n / 256
	}
	if k < 2 {
		k = 2
	}
	// Round up to a power of two for recursive bisection.
	for k&(k-1) != 0 {
		k++
	}
	overlap := opt.Overlap
	if opt.Overlap == 0 {
		overlap = 1
	}
	if opt.Subdomains == 0 && opt.Overlap == 0 {
		overlap = 1
	}

	g := a.Graph()
	kw, err := partition.KWay(g, k, partition.Options{Threads: opt.Threads})
	if err != nil {
		return nil, fmt.Errorf("schwarz: partitioning: %w", err)
	}

	p := &Preconditioner{n: n, rt: par.New(opt.Threads)}
	inSub := make([]int32, n)
	for i := range inSub {
		inSub[i] = -1
	}
	for part := 0; part < k; part++ {
		// Collect the subdomain rows, then grow by BFS layers.
		var rows []int32
		for v := 0; v < n; v++ {
			if kw.Part[v] == int32(part) {
				rows = append(rows, int32(v))
				inSub[v] = int32(part)
			}
		}
		if len(rows) == 0 {
			continue
		}
		frontier := rows
		for layer := 0; layer < overlap; layer++ {
			var next []int32
			for _, v := range frontier {
				for _, w := range g.Neighbors(v) {
					if inSub[w] != int32(part) {
						inSub[w] = int32(part)
						next = append(next, w)
						rows = append(rows, w)
					}
				}
			}
			frontier = next
		}
		// inSub is reused per part; reset the overlap marks of rows not
		// owned by this part so later parts see a clean slate.
		sortInt32(rows)
		sd := subdomain{rows: rows}
		local, err := extractLocal(a, rows)
		if err != nil {
			return nil, fmt.Errorf("schwarz: subdomain %d: %w", part, err)
		}
		if err := local.Factorize(); err != nil {
			return nil, fmt.Errorf("schwarz: subdomain %d factorization: %w", part, err)
		}
		sd.lu = local
		sd.r = make([]float64, len(rows))
		sd.z = make([]float64, len(rows))
		p.sub = append(p.sub, sd)
		// Restore marks: only rows owned by this part keep it; the next
		// part uses a different id so no reset is actually required —
		// keep the loop body simple and correct by re-marking owners.
		for _, v := range rows {
			if kw.Part[v] != int32(part) {
				inSub[v] = -1
			}
		}
	}

	if !opt.NoCoarse {
		agg := coarsen.MIS2Aggregation(g, coarsen.Options{Threads: opt.Threads})
		p0 := coarsen.Prolongator(agg)
		rap, err := sparse.RAP(p.rt, p0.Transpose(), a, p0)
		if err != nil {
			return nil, fmt.Errorf("schwarz: coarse Galerkin: %w", err)
		}
		dense, err := rap.ToDense()
		if err != nil {
			return nil, err
		}
		if err := dense.Factorize(); err != nil {
			return nil, fmt.Errorf("schwarz: coarse factorization: %w", err)
		}
		p.coarseP = p0
		p.coarse = dense
		p.cr = make([]float64, agg.NumAggregates)
		p.cz = make([]float64, agg.NumAggregates)
	}
	return p, nil
}

// extractLocal builds the dense submatrix A(rows, rows).
func extractLocal(a *sparse.Matrix, rows []int32) (*sparse.Dense, error) {
	m := len(rows)
	const maxLocal = 4000
	if m > maxLocal {
		return nil, fmt.Errorf("subdomain too large for a dense solve (%d rows > %d); increase Subdomains", m, maxLocal)
	}
	pos := make(map[int32]int, m)
	for i, v := range rows {
		pos[v] = i
	}
	d := &sparse.Dense{N: m, Data: make([]float64, m*m)}
	for i, v := range rows {
		for q := a.RowPtr[v]; q < a.RowPtr[v+1]; q++ {
			if j, ok := pos[a.Col[q]]; ok {
				d.Data[i*m+j] = a.Val[q]
			}
		}
	}
	return d, nil
}

func sortInt32(a []int32) {
	// Insertion sort is fine: rows are mostly sorted already (owned rows
	// ascending, overlap appended); subdomains are small.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// NumSubdomains reports how many local solves the preconditioner applies.
func (p *Preconditioner) NumSubdomains() int { return len(p.sub) }

// HasCoarse reports whether the coarse level is active.
func (p *Preconditioner) HasCoarse() bool { return p.coarse != nil }

// Precondition applies z = sum_i R_i^T A_i^{-1} R_i r (+ coarse
// correction): one-level (restricted to subdomains) plus the aggregation
// coarse space. Additive combination keeps the operator symmetric, so it
// is a valid CG preconditioner.
func (p *Preconditioner) Precondition(r, z []float64) {
	for i := range z {
		z[i] = 0
	}
	// Local solves are independent; each writes its overlapped rows.
	// Overlapping writes from different subdomains are summed, so the
	// accumulation must be serialized per row: do subdomains in parallel
	// into local buffers, then accumulate serially (deterministic).
	p.rt.ForBlocks(len(p.sub), func(i int) {
		sd := &p.sub[i]
		for k, v := range sd.rows {
			sd.r[k] = r[v]
		}
		sd.lu.Solve(sd.r, sd.z)
	})
	for i := range p.sub {
		sd := &p.sub[i]
		for k, v := range sd.rows {
			z[v] += sd.z[k]
		}
	}
	if p.coarse != nil {
		// cr = P0^T r ; cz = Ac^{-1} cr ; z += P0 cz
		pt := p.coarseP
		for i := range p.cr {
			p.cr[i] = 0
		}
		for v := 0; v < pt.Rows; v++ {
			for q := pt.RowPtr[v]; q < pt.RowPtr[v+1]; q++ {
				p.cr[pt.Col[q]] += pt.Val[q] * r[v]
			}
		}
		p.coarse.Solve(p.cr, p.cz)
		for v := 0; v < pt.Rows; v++ {
			for q := pt.RowPtr[v]; q < pt.RowPtr[v+1]; q++ {
				z[v] += pt.Val[q] * p.cz[pt.Col[q]]
			}
		}
	}
}
