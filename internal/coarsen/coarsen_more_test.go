package coarsen

import (
	"testing"
	"testing/quick"

	"mis2go/internal/graph"
	"mis2go/internal/mis"
)

// aggregateConnected checks that the subgraph induced by each aggregate
// is connected — true for every scheme here, since vertices only join
// aggregates they are adjacent to.
func aggregateConnected(g *graph.CSR, agg Aggregation) bool {
	members := make([][]int32, agg.NumAggregates)
	for v, a := range agg.Labels {
		members[a] = append(members[a], int32(v))
	}
	inAgg := make([]int32, g.N)
	copy(inAgg, agg.Labels)
	visited := make([]bool, g.N)
	var stack []int32
	for a, vs := range members {
		if len(vs) <= 1 {
			continue
		}
		// BFS within the aggregate from its first member.
		count := 0
		stack = append(stack[:0], vs[0])
		visited[vs[0]] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			count++
			for _, w := range g.Neighbors(v) {
				if inAgg[w] == int32(a) && !visited[w] {
					visited[w] = true
					stack = append(stack, w)
				}
			}
		}
		if count != len(vs) {
			return false
		}
	}
	return true
}

func TestAggregatesConnectedProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 6 + int(uint64(seed)%120)
		g := randomGraph(n, 3*n, seed)
		for _, s := range allSchemes() {
			if !aggregateConnected(g, s.run(g)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBasicUsesMISRootsExactly(t *testing.T) {
	g := grid2D(20, 20)
	roots := mis.MIS2(g, mis.Options{}).InSet
	agg := BasicFromRoots(g, roots, 0)
	if err := Check(g, agg); err != nil {
		t.Fatal(err)
	}
	// Root i must own aggregate i.
	for i, r := range roots {
		if agg.Labels[r] != int32(i) {
			t.Fatalf("root %d not in its own aggregate", r)
		}
	}
	// Aggregate count: MIS roots plus possibly defensive singletons.
	if agg.NumAggregates < len(roots) {
		t.Fatal("fewer aggregates than roots")
	}
}

func TestBasicFromRootsOfBellBaseline(t *testing.T) {
	// The ViennaCL pipeline: Bell's MIS-2 feeding Algorithm 2.
	g := grid2D(15, 15)
	roots := mis.BellMISK(g, mis.BellOptions{K: 2}).InSet
	agg := BasicFromRoots(g, roots, 0)
	if err := Check(g, agg); err != nil {
		t.Fatal(err)
	}
	if !aggregateConnected(g, agg) {
		t.Fatal("aggregates not connected")
	}
}

func TestAggregateRadius(t *testing.T) {
	// In Algorithm 2, every member of an aggregate is within distance 2
	// of the aggregate's root.
	g := grid2D(14, 14)
	agg := Basic(g, Options{})
	rootOf := make([]int32, agg.NumAggregates)
	for i := range rootOf {
		rootOf[i] = -1
	}
	for i, r := range agg.Roots {
		if i < agg.NumAggregates {
			rootOf[agg.Labels[r]] = r
		}
	}
	for v := int32(0); int(v) < g.N; v++ {
		r := rootOf[agg.Labels[v]]
		if r < 0 {
			continue
		}
		if v != r && !g.DistanceLeq2(v, r) {
			t.Fatalf("vertex %d is more than 2 away from its root %d", v, r)
		}
	}
}

func TestMIS2AggSecondaryRootsHaveSupport(t *testing.T) {
	// Phase-2 aggregates must have at least 3 members (root + >=2
	// neighbors), per the paper's fill-in argument. Observable as: no
	// aggregate of size 2 rooted at a phase-2 root... we can at least
	// assert no aggregates of size < 3 exist beyond the phase-1 count
	// before cleanup adds members; after cleanup sizes only grow, so
	// every phase-2 aggregate has size >= 3.
	g := grid2D(25, 25)
	m1 := len(mis.MIS2(g, mis.Options{}).InSet)
	agg := MIS2Aggregation(g, Options{})
	sizes := Sizes(agg)
	for a := m1; a < agg.NumAggregates; a++ {
		if sizes[a] < 3 && !isSingletonDefensive(agg, a) {
			t.Fatalf("phase-2 aggregate %d has size %d < 3", a, sizes[a])
		}
	}
}

// isSingletonDefensive reports whether aggregate a was created by the
// defensive finalize pass (its root equals its only member and it appears
// after all scheme-created aggregates). Conservatively treat size-1
// aggregates with a root listed as defensive.
func isSingletonDefensive(agg Aggregation, a int) bool {
	count := 0
	for _, l := range agg.Labels {
		if int(l) == a {
			count++
		}
	}
	return count == 1
}

func TestCoarseGraphNoSelfLoops(t *testing.T) {
	f := func(seed int64) bool {
		n := 6 + int(uint64(seed)%100)
		g := randomGraph(n, 3*n, seed)
		agg := MIS2Aggregation(g, Options{})
		cg := CoarseGraph(g, agg)
		return cg.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveCoarseningTerminates(t *testing.T) {
	g := grid2D(40, 40)
	for level := 0; g.N > 10; level++ {
		if level > 20 {
			t.Fatal("coarsening did not make progress")
		}
		agg := MIS2Aggregation(g, Options{})
		if agg.NumAggregates >= g.N && g.N > 1 {
			t.Fatalf("no coarsening at level %d: %d -> %d", level, g.N, agg.NumAggregates)
		}
		g = CoarseGraph(g, agg)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestD2CSerialVsParallelBothValid(t *testing.T) {
	g := grid2D(18, 18)
	s := D2C(g, 0, false)
	p := D2C(g, 0, true)
	if err := Check(g, s); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if err := Check(g, p); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	// Both should produce mesh-like mean aggregate sizes.
	for _, agg := range []Aggregation{s, p} {
		mean := float64(g.N) / float64(agg.NumAggregates)
		if mean < 2 {
			t.Fatalf("mean aggregate size %.2f too small", mean)
		}
	}
}

func TestProlongatorOnSingletons(t *testing.T) {
	g := graph.FromEdges(3, nil)
	agg := Basic(g, Options{})
	p := Prolongator(agg)
	if p.Rows != 3 || p.Cols != 3 {
		t.Fatalf("prolongator shape %dx%d", p.Rows, p.Cols)
	}
	for _, v := range p.Val {
		if v != 1 {
			t.Fatal("singleton prolongator entries must be 1")
		}
	}
}

func TestQualityStats(t *testing.T) {
	g := grid2D(20, 20)
	agg := MIS2Aggregation(g, Options{})
	q := Quality(g, agg)
	if q.NumAggregates != agg.NumAggregates {
		t.Fatal("aggregate count mismatch")
	}
	if q.MinSize < 1 || q.MaxSize < q.MinSize {
		t.Fatalf("size bounds wrong: %+v", q)
	}
	if q.MeanSize*float64(q.NumAggregates) < float64(g.N)-1e-9 {
		t.Fatalf("mean size inconsistent: %+v", q)
	}
	if q.BoundaryFraction <= 0 || q.BoundaryFraction >= 1 {
		t.Fatalf("boundary fraction %f out of (0,1)", q.BoundaryFraction)
	}
	// MIS2 Basic has larger, more irregular aggregates than Algorithm 3.
	qBasic := Quality(g, Basic(g, Options{}))
	if qBasic.MeanSize <= q.MeanSize {
		t.Fatalf("Basic mean %f not larger than Agg mean %f", qBasic.MeanSize, q.MeanSize)
	}
	// Empty graph edge case.
	empty := Quality(graph.FromEdges(0, nil), Aggregation{})
	if empty.NumAggregates != 0 {
		t.Fatal("empty quality wrong")
	}
}
