// Concurrent-solve stress test: many goroutines drive mixed
// build/refresh/repeat traffic — including eviction pressure and
// coalescing — through one Service, and every served solution must be
// bitwise identical to the sequential single-caller solve of the same
// system. Runs in the `make check` race suite; the -race run is the
// gate that flushes shared-solver-state data races out of the stack.
package serve

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/gen"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// stressSystem is one (pattern, values) operator with its fixed RHS and
// the sequential reference solution.
type stressSystem struct {
	a    *sparse.Matrix
	b    []float64
	want []float64
}

func TestServeStressMixedTraffic(t *testing.T) {
	cfg := Config{
		AMG:           amg.Options{MinCoarseSize: 40},
		Tol:           1e-10,
		MaxIter:       200,
		CacheCapacity: 2, // below the pattern count: constant eviction/rebuild pressure
		BatchWindow:   100 * time.Microsecond,
		MaxBatch:      4,
	}
	s := New(cfg)
	rt := par.New(cfg.withDefaults().Threads)

	// Three structurally different patterns, three value sets each.
	patterns := []*sparse.Matrix{
		gen.Laplacian(gen.Laplace3D(7, 7, 7), 0.05),
		gen.Laplacian(gen.Laplace2D(20, 20), 0.1),
		gen.WeightedLaplacian(gen.RandomFEM(6, 6, 6, 10, 3), 0.1, 11),
	}
	scales := []float64{1, 2.5, 0.5}
	systems := make([][]stressSystem, len(patterns))
	for p, base := range patterns {
		systems[p] = make([]stressSystem, len(scales))
		for v, sc := range scales {
			a := base.Clone()
			a.Scale(sc)
			b := make([]float64, a.Rows)
			for i := range b {
				b[i] = float64((i*13+p+v)%23) - 11
			}
			// Sequential single-caller reference: fresh build, k=1 CGBatch.
			h, err := amg.Build(a.Clone(), cfg.AMG)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, a.Rows)
			if _, err := krylov.CGBatchWith(rt, a, append([]float64(nil), b...), want, 1, cfg.Tol, cfg.MaxIter, h, nil); err != nil {
				t.Fatal(err)
			}
			systems[p][v] = stressSystem{a: a, b: b, want: want}
		}
	}

	// Mixed traffic: each goroutine walks its own deterministic sequence
	// over (pattern, values) — bursts of repeats (reuse/coalesce), value
	// rotation (refresh), pattern rotation (build/evict under the tiny
	// cache). Goroutines deliberately overlap so same-operator requests
	// race into the batching window together.
	const goroutines = 8
	requests := 60
	if testing.Short() {
		requests = 20
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				// Deterministic per-goroutine mix: repeats dominate, with
				// periodic value and pattern changes.
				p := ((g + r/10) * 7) % len(systems)
				v := (r / 4 % len(scales))
				sys := systems[p][v]
				x, st, err := s.Solve(ctx, sys.a, sys.b)
				if err != nil {
					errc <- err
					return
				}
				if st.Batched < 1 || len(st.Columns) != 1 || !st.Columns[0].Converged {
					errc <- errUnconverged{p, v}
					return
				}
				for i := range x {
					if math.Float64bits(x[i]) != math.Float64bits(sys.want[i]) {
						t.Errorf("goroutine %d: pattern %d values %d: bit mismatch at %d (%g vs %g, outcome %v, batched %d)",
							g, p, v, i, x[i], sys.want[i], st.Outcome, st.Batched)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	m := s.Metrics()
	t.Logf("stress metrics: %+v (batched-RHS ratio %.2f)", m, m.BatchedRHSRatio())
	if m.Requests != int64(goroutines*requests) {
		t.Fatalf("requests %d, want %d", m.Requests, goroutines*requests)
	}
	if m.Builds == 0 || m.Refreshes == 0 || m.ValueHits == 0 || m.Evictions == 0 {
		t.Fatalf("traffic mix did not exercise build/refresh/reuse/evict: %+v", m)
	}
}

type errUnconverged [2]int

func (e errUnconverged) Error() string {
	return "served solve did not converge"
}

// TestServeStressSmootherVariants drives concurrent traffic through
// services configured with every smoother — point and cluster multicolor
// Gauss-Seidel rebuild color-set operators on every numeric refresh, the
// dense coarse solver refactorizes with reused pivots, and the setup
// paths draw heavily on the shared scratch arenas — so the -race run
// covers the remaining shared-state suspects (distinct hierarchies and
// gs operators used concurrently are the supported contract; one
// instance is single-caller and serialized by the service).
func TestServeStressSmootherVariants(t *testing.T) {
	base := gen.Laplacian(gen.Laplace3D(6, 6, 6), 0.05)
	smoothers := []amg.Smoother{
		amg.SmootherJacobi, amg.SmootherChebyshev,
		amg.SmootherPointSGS, amg.SmootherClusterSGS,
	}
	var wg sync.WaitGroup
	errc := make(chan error, len(smoothers)*2)
	for si, sm := range smoothers {
		cfg := Config{
			AMG:         amg.Options{MinCoarseSize: 30, Smoother: sm},
			Tol:         1e-8,
			MaxIter:     300,
			BatchWindow: 50 * time.Microsecond,
			MaxBatch:    4,
		}
		s := New(cfg)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(si, g int, s *Service) {
				defer wg.Done()
				b := make([]float64, base.Rows)
				for i := range b {
					b[i] = float64((i+si)%9) - 4
				}
				for r := 0; r < 8; r++ {
					a := base.Clone()
					a.Scale(1 + 0.25*float64(r%3))
					if _, _, err := s.Solve(context.Background(), a, b); err != nil {
						errc <- err
						return
					}
				}
			}(si, g, s)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
