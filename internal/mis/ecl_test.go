package mis

import (
	"testing"
	"testing/quick"

	"mis2go/internal/hash"
)

func TestECLMIS1Valid(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int(uint64(seed)%150)
		g := randomGraph(n, 3*n, seed)
		res := ECLMIS1(g, 0)
		return CheckMIS1(g, res.InSet) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestECLMIS1DeterministicAcrossThreads(t *testing.T) {
	g := randomGraph(500, 2500, 19)
	ref := ECLMIS1(g, 1)
	for _, th := range []int{2, 8, 0} {
		got := ECLMIS1(g, th)
		if !setsEqual(ref.InSet, got.InSet) {
			t.Fatalf("threads=%d: result differs", th)
		}
	}
}

func TestECLDegreeBiasGrowsTheSet(t *testing.T) {
	// The point of ECL-MIS's degree-aware priorities: a larger MIS-1 than
	// uniform random priorities on degree-skewed graphs. Compare against
	// Luby on several star-of-cliques-like irregular graphs.
	totalECL, totalLuby := 0, 0
	for seed := int64(1); seed <= 6; seed++ {
		g := randomGraph(400, 2400, seed)
		totalECL += len(ECLMIS1(g, 0).InSet)
		totalLuby += len(LubyMIS1(g, hash.XorStar, 0).InSet)
	}
	if totalECL < totalLuby {
		t.Fatalf("ECL set total %d smaller than Luby %d; degree bias not effective", totalECL, totalLuby)
	}
}

func TestECLMIS1SmallShapes(t *testing.T) {
	if got := len(ECLMIS1(fig1Graph(), 0).InSet); got == 0 {
		t.Fatal("empty MIS on example graph")
	}
	empty := ECLMIS1(randomGraph(1, 0, 1), 0)
	if len(empty.InSet) != 1 {
		t.Fatal("single vertex must be in the MIS")
	}
	star := grid2D(1, 1)
	if len(ECLMIS1(star, 0).InSet) != 1 {
		t.Fatal("singleton grid wrong")
	}
}

func TestECLPriorityClassesOrdered(t *testing.T) {
	// Lower degree must map to a strictly higher priority class.
	maxDeg := 64
	lowDeg := eclPriority(1, 1, maxDeg) >> 28
	highDeg := eclPriority(2, maxDeg, maxDeg) >> 28
	if lowDeg <= highDeg {
		t.Fatalf("degree bias inverted: class(low)=%d class(high)=%d", lowDeg, highDeg)
	}
	// Priorities are odd (undecided bit) and never collide with the
	// decided sentinels.
	for v := int32(0); v < 1000; v++ {
		p := eclPriority(v, int(v)%17, 16)
		if p&1 != 1 || p == eclIn || p == eclOut {
			t.Fatalf("bad packed priority %x", p)
		}
	}
}
