// Package hotalloc exercises the hotalloc analyzer: //amg:hotpath
// bodies must be free of allocation constructs.
package hotalloc

import (
	"fmt"

	"par"
)

// badKernel piles up every flagged construct.
//
//amg:hotpath
func badKernel(n int) []float64 {
	s := make([]float64, n) // want `calls make`
	s = append(s, 1)        // want `calls append`
	p := new(float64)       // want `calls new`
	_ = p
	f := func() int { return n } // want `creates a closure`
	_ = f()
	m := map[int]int{0: 1} // want `allocates a map literal`
	_ = m
	sl := []int{1, 2} // want `allocates a slice literal`
	_ = sl
	pt := &point{1, 2} // want `address of a composite literal`
	_ = pt
	return s
}

type point struct{ x, y int }

// goodKernel is the clean form: index loops, arithmetic, fixed-size
// array literals, struct value literals, numeric conversions.
//
//amg:hotpath
func goodKernel(x, y []float64) float64 {
	var acc [4]float64
	for i := range x {
		acc[i%4] += x[i] * y[i]
	}
	p := point{1, 2} // struct value literal: a stack value, fine
	return acc[0] + acc[1] + acc[2] + float64(int32(acc[3])) + float64(p.x)
}

// Kernel proves annotations are matched on methods, not just free
// functions.
type Kernel struct{ vals []float64 }

// Row is a clean annotated method.
//
//amg:hotpath
func (k *Kernel) Row(lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += k.vals[i]
	}
	return s
}

// Grow is a dirty annotated method.
//
//amg:hotpath
func (k *Kernel) Grow(v float64) {
	k.vals = append(k.vals, v) // want `calls append`
}

// unannotated allocates freely without findings.
func unannotated(n int) []float64 {
	return append(make([]float64, 0, n), 1)
}

// driver shows the par exemption: participant closures are allowed,
// but their bodies are still checked.
//
//amg:hotpath
func driver(rt *par.Runtime, n int, x, y []float64) {
	rt.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = 2 * x[i]
		}
	})
	par.ForWith(rt, n,
		func() []float64 { return y },
		func(lo, hi int, s []float64) {
			_ = make([]float64, 1) // want `calls make`
		},
		nil)
}

// spills exercises the remaining classes: goroutines, defers, string
// conversions, fmt, variadic calls, and interface boxing.
//
//amg:hotpath
func spills(b []byte, v int) string {
	go sink(v)       // want `starts a goroutine`
	defer sink(v)    // want `defers`
	fmt.Println(v)   // want `calls into fmt`
	variadic(1, 2)   // want `variadic call`
	box(v)           // want `boxes int into interface`
	box(nil)         // untyped nil boxes nothing
	return string(b) // want `allocating string conversion`
}

func sink(int)                    {}
func variadic(...float64) float64 { return 0 }
func box(any)                     {}
