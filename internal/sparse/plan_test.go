package sparse

import (
	"testing"

	"mis2go/internal/par"
)

// matricesEqual reports bitwise equality of pattern and values.
func matricesEqual(t *testing.T, label string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.RowPtr {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("%s: RowPtr[%d]=%d, want %d", label, i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	if len(got.Col) != len(want.Col) {
		t.Fatalf("%s: nnz %d, want %d", label, len(got.Col), len(want.Col))
	}
	for p := range want.Col {
		if got.Col[p] != want.Col[p] {
			t.Fatalf("%s: Col[%d]=%d, want %d", label, p, got.Col[p], want.Col[p])
		}
		if got.Val[p] != want.Val[p] {
			t.Fatalf("%s: Val[%d]=%v, want %v (not bitwise identical)", label, p, got.Val[p], want.Val[p])
		}
	}
}

// perturb returns a copy of a with deterministically rescaled values —
// the "same pattern, new values" refresh input.
func perturb(a *Matrix, seed int) *Matrix {
	b := a.Clone()
	for p := range b.Val {
		b.Val[p] *= 1 + 0.001*float64((p+seed)%17)
	}
	return b
}

var planWorkerCounts = []int{1, 2, 8}

func TestProductPlanMatchesMultiply(t *testing.T) {
	a := randomMatrix(120, 90, 0.06, 1)
	b := randomMatrix(90, 70, 0.08, 2)
	for _, w := range planWorkerCounts {
		rt := par.New(w)
		pl, err := PlanMultiply(rt, a, b)
		if err != nil {
			t.Fatal(err)
		}
		c := pl.NewMatrix()
		// Replay twice (the second replay exercises in-place refill) and
		// against perturbed values.
		for trial, av := range []*Matrix{a, a, perturb(a, 3)} {
			bv := b
			if trial == 2 {
				bv = perturb(b, 5)
			}
			if err := pl.Numeric(rt, av, bv, c); err != nil {
				t.Fatal(err)
			}
			want, err := Multiply(rt, av, bv)
			if err != nil {
				t.Fatal(err)
			}
			matricesEqual(t, "product replay", c, want)
			if err := c.Validate(); err != nil {
				t.Fatalf("replayed product invalid: %v", err)
			}
		}
	}
}

func TestProductPlanRejectsPatternChange(t *testing.T) {
	rt := par.New(1)
	a := randomMatrix(40, 30, 0.1, 7)
	b := randomMatrix(30, 20, 0.1, 8)
	pl, err := PlanMultiply(rt, a, b)
	if err != nil {
		t.Fatal(err)
	}
	c := pl.NewMatrix()
	a2 := randomMatrix(40, 30, 0.1, 9) // different pattern, same shape
	if err := pl.Numeric(rt, a2, b, c); err == nil {
		t.Fatal("replay with changed A pattern not rejected")
	}
	b2 := randomMatrix(30, 20, 0.1, 10)
	if err := pl.Numeric(rt, a, b2, c); err == nil {
		t.Fatal("replay with changed B pattern not rejected")
	}
	if _, err := PlanMultiply(rt, a, randomMatrix(31, 20, 0.1, 11)); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
}

func TestTransposePlanMatchesTranspose(t *testing.T) {
	a := randomMatrix(80, 130, 0.05, 3)
	for _, w := range planWorkerCounts {
		rt := par.New(w)
		pl := PlanTranspose(rt, a)
		tr := pl.NewMatrix()
		for _, av := range []*Matrix{a, perturb(a, 1)} {
			if err := pl.Numeric(rt, av, tr); err != nil {
				t.Fatal(err)
			}
			matricesEqual(t, "transpose replay", tr, av.TransposeWith(rt))
		}
	}
	// A plan built at one worker count must replay identically at others
	// (the permutation is blocking-independent).
	rt8 := par.New(8)
	pl8 := PlanTranspose(rt8, a)
	tr8 := pl8.NewMatrix()
	if err := pl8.Numeric(par.New(1), a, tr8); err != nil {
		t.Fatal(err)
	}
	matricesEqual(t, "cross-worker transpose replay", tr8, a.Transpose())
	if err := pl8.Numeric(rt8, randomMatrix(80, 130, 0.05, 4), tr8); err == nil {
		t.Fatal("transpose replay with changed pattern not rejected")
	}
}

// aggregateP0 builds a tentative-prolongator-shaped matrix: one entry
// per row, rows sorted trivially.
func aggregateP0(n, nagg int) *Matrix {
	p := &Matrix{Rows: n, Cols: nagg}
	p.RowPtr = make([]int, n+1)
	p.Col = make([]int32, n)
	p.Val = make([]float64, n)
	for i := 0; i < n; i++ {
		p.RowPtr[i+1] = i + 1
		p.Col[i] = int32(i % nagg)
		p.Val[i] = 1 + float64(i%5)/7
	}
	return p
}

func TestSmoothPlanMatchesSmoothProlongator(t *testing.T) {
	a := randomMatrix(150, 150, 0.04, 6)
	p0 := aggregateP0(150, 31)
	dinv := make([]float64, a.Rows)
	for i := range dinv {
		dinv[i] = 1 / (1 + float64(i%9))
	}
	const omega = 0.61
	for _, w := range planWorkerCounts {
		rt := par.New(w)
		pl, err := PlanSmoothProlongator(rt, a, p0)
		if err != nil {
			t.Fatal(err)
		}
		out := pl.NewMatrix()
		for _, av := range []*Matrix{a, perturb(a, 2)} {
			if err := pl.Numeric(rt, av, p0, dinv, omega, out); err != nil {
				t.Fatal(err)
			}
			want, err := SmoothProlongator(rt, av, p0, dinv, omega)
			if err != nil {
				t.Fatal(err)
			}
			matricesEqual(t, "smooth replay", out, want)
		}
	}
	rt := par.New(1)
	pl, err := PlanSmoothProlongator(rt, a, p0)
	if err != nil {
		t.Fatal(err)
	}
	out := pl.NewMatrix()
	if err := pl.Numeric(rt, randomMatrix(150, 150, 0.04, 12), p0, dinv, omega, out); err == nil {
		t.Fatal("smooth replay with changed A pattern not rejected")
	}
	if err := pl.Numeric(rt, a, p0, dinv[:10], omega, out); err == nil {
		t.Fatal("short dinv not rejected")
	}
}

func TestRAPPlanMatchesRAP(t *testing.T) {
	a := randomMatrix(140, 140, 0.04, 20)
	p := aggregateP0(140, 29)
	for _, w := range planWorkerCounts {
		rt := par.New(w)
		r := p.TransposeWith(rt)
		pl, err := PlanRAP(rt, r, a, p)
		if err != nil {
			t.Fatal(err)
		}
		out := pl.NewMatrix()
		for _, av := range []*Matrix{a, perturb(a, 4)} {
			if err := pl.Numeric(rt, r, av, p, out); err != nil {
				t.Fatal(err)
			}
			want, err := RAP(rt, r, av, p)
			if err != nil {
				t.Fatal(err)
			}
			matricesEqual(t, "RAP replay", out, want)
		}
	}
}

func TestPlanReplayDeterministicAcrossWorkers(t *testing.T) {
	a := randomMatrix(200, 200, 0.03, 30)
	b := randomMatrix(200, 60, 0.05, 31)
	pl, err := PlanMultiply(par.New(1), a, b)
	if err != nil {
		t.Fatal(err)
	}
	ref := pl.NewMatrix()
	if err := pl.Numeric(par.New(1), a, b, ref); err != nil {
		t.Fatal(err)
	}
	for _, w := range planWorkerCounts[1:] {
		c := pl.NewMatrix()
		if err := pl.Numeric(par.New(w), a, b, c); err != nil {
			t.Fatal(err)
		}
		matricesEqual(t, "cross-worker product replay", c, ref)
	}
}
