package order

import (
	"math"
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// TestRCMIsPermutation: the ordering is a valid permutation, for
// connected meshes and graphs with isolated vertices.
func TestRCMIsPermutation(t *testing.T) {
	for name, g := range map[string]func() *sparse.Matrix{
		"laplace3d": func() *sparse.Matrix { return gen.Laplacian(gen.Laplace3D(12, 12, 12), 0.1) },
		"randomfem": func() *sparse.Matrix { return gen.Laplacian(gen.RandomFEM(8, 8, 8, 12, 3), 0.1) },
	} {
		a := g()
		perm := RCM(a.Graph())
		if err := checkPerm(perm, a.Rows); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestRCMReducesBandwidth: on a deterministic irregular mesh the RCM
// ordering must not increase the bandwidth, and on a shuffled band
// matrix it must reduce it substantially.
func TestRCMReducesBandwidth(t *testing.T) {
	// A 3D mesh numbered naturally has bandwidth ~nx*ny; scramble the
	// numbering and check RCM recovers a narrow band.
	a := gen.Laplacian(gen.Laplace3D(10, 10, 10), 0.1)
	n := a.Rows
	shuffle := make([]int32, n)
	for i := range shuffle {
		shuffle[i] = int32((i*7919 + 13) % n) // 7919 coprime to 1000
	}
	scrambled, err := PermuteMatrix(a, shuffle)
	if err != nil {
		t.Fatal(err)
	}
	bwScrambled := Bandwidth(scrambled)
	perm := RCM(scrambled.Graph())
	reordered, err := PermuteMatrix(scrambled, perm)
	if err != nil {
		t.Fatal(err)
	}
	bwRCM := Bandwidth(reordered)
	if bwRCM*4 > bwScrambled {
		t.Fatalf("RCM bandwidth %d, scrambled %d: expected at least 4x reduction", bwRCM, bwScrambled)
	}
	t.Logf("bandwidth: natural %d, scrambled %d, RCM %d", Bandwidth(a), bwScrambled, bwRCM)
}

// TestRCMDeterministic: two runs produce the identical ordering.
func TestRCMDeterministic(t *testing.T) {
	a := gen.Laplacian(gen.RandomFEM(6, 6, 6, 10, 5), 0.1)
	g := a.Graph()
	p1 := RCM(g)
	p2 := RCM(g)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("orderings differ at %d", i)
		}
	}
}

// TestPermuteMatrixSemantics: P·A·Pᵀ relabels entries exactly —
// (PAPᵀ)[inv[i], inv[j]] == A[i, j] — and the result passes Validate.
func TestPermuteMatrixSemantics(t *testing.T) {
	a := gen.Laplacian(gen.Laplace2D(7, 5), 0.3)
	perm := RCM(a.Graph())
	b, err := PermuteMatrix(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("permuted matrix invalid: %v", err)
	}
	inv := Inverse(perm)
	get := func(m *sparse.Matrix, i, j int) float64 {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if int(m.Col[p]) == j {
				return m.Val[p]
			}
		}
		return 0
	}
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := int(a.Col[p])
			if got := get(b, int(inv[i]), int(inv[j])); got != a.Val[p] {
				t.Fatalf("entry (%d,%d): permuted %g, want %g", i, j, got, a.Val[p])
			}
		}
	}

	// SpMV equivariance: P(Ax) == (PAPᵀ)(Px), bitwise equal summands in
	// general differ in order, so compare within a tolerance here (the
	// 0-ULP contract is between formats, not orderings).
	rt := par.New(1)
	n := a.Rows
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	y := make([]float64, n)
	a.SpMV(rt, x, y)
	px := make([]float64, n)
	if err := PermuteVector(px, x, perm); err != nil {
		t.Fatal(err)
	}
	py := make([]float64, n)
	b.SpMV(rt, px, py)
	back := make([]float64, n)
	if err := InversePermuteVector(back, py, perm); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(back[i]-y[i]) > 1e-12*(1+math.Abs(y[i])) {
			t.Fatalf("SpMV equivariance: [%d] %g vs %g", i, back[i], y[i])
		}
	}
}

// TestPermuteVectorRoundTrip: inverse-permute undoes permute bitwise.
func TestPermuteVectorRoundTrip(t *testing.T) {
	n := 257
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32((i*101 + 7) % n)
	}
	if err := checkPerm(perm, n); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * 1.25
	}
	fwd := make([]float64, n)
	back := make([]float64, n)
	if err := PermuteVector(fwd, x, perm); err != nil {
		t.Fatal(err)
	}
	if err := InversePermuteVector(back, fwd, perm); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if back[i] != x[i] {
			t.Fatalf("round trip: [%d] %g != %g", i, back[i], x[i])
		}
	}
}

// TestPermuteMatrixErrors: non-square matrices and malformed
// permutations are clean errors.
func TestPermuteMatrixErrors(t *testing.T) {
	rect := &sparse.Matrix{Rows: 2, Cols: 3, RowPtr: []int{0, 0, 0}}
	if _, err := PermuteMatrix(rect, []int32{0, 1}); err == nil {
		t.Fatal("accepted non-square matrix")
	}
	sq := &sparse.Matrix{Rows: 2, Cols: 2, RowPtr: []int{0, 0, 0}}
	for _, bad := range [][]int32{{0}, {0, 0}, {0, 2}, {1, -1}} {
		if _, err := PermuteMatrix(sq, bad); err == nil {
			t.Fatalf("accepted invalid permutation %v", bad)
		}
	}
}

// TestBandwidthEdge: empty and diagonal matrices have bandwidth 0.
func TestBandwidthEdge(t *testing.T) {
	if bw := Bandwidth(&sparse.Matrix{Rows: 0, Cols: 0, RowPtr: []int{0}}); bw != 0 {
		t.Fatalf("empty: bandwidth %d", bw)
	}
	if bw := Bandwidth(sparse.Identity(5)); bw != 0 {
		t.Fatalf("identity: bandwidth %d", bw)
	}
}

// TestPermuteVectorRejectsMalformedPerms: duplicate, out-of-range, and
// length-mismatched permutations are descriptive errors (with dst
// untouched), never silent data corruption.
func TestPermuteVectorRejectsMalformedPerms(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	cases := map[string][]int32{
		"duplicate":  {0, 1, 1, 3},
		"outofrange": {0, 1, 2, 4},
		"negative":   {0, -1, 2, 3},
		"short":      {0, 1, 2},
	}
	for name, perm := range cases {
		dst := []float64{9, 9, 9, 9}
		if err := PermuteVector(dst, src, perm); err == nil {
			t.Fatalf("%s: PermuteVector accepted malformed permutation %v", name, perm)
		}
		for i, v := range dst {
			if v != 9 {
				t.Fatalf("%s: dst[%d] mutated to %g on rejected permutation", name, i, v)
			}
		}
		if err := InversePermuteVector(dst, src, perm); err == nil {
			t.Fatalf("%s: InversePermuteVector accepted malformed permutation %v", name, perm)
		}
	}
	// Length mismatch between the vectors and the permutation.
	if err := PermuteVector(make([]float64, 3), src, []int32{0, 1, 2, 3}); err == nil {
		t.Fatal("PermuteVector accepted dst shorter than perm")
	}
}

// TestPermuteMatrixRejectsMalformedPerms mirrors the vector validation
// on the symmetric matrix permutation.
func TestPermuteMatrixRejectsMalformedPerms(t *testing.T) {
	a := gen.Laplacian(gen.Laplace2D(4, 4), 0.1)
	for name, perm := range map[string][]int32{
		"duplicate":  dupPerm(a.Rows),
		"outofrange": rangePerm(a.Rows),
	} {
		if _, err := PermuteMatrix(a, perm); err == nil {
			t.Fatalf("%s: PermuteMatrix accepted malformed permutation", name)
		}
	}
}

func dupPerm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	p[1] = p[0]
	return p
}

func rangePerm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	p[n-1] = int32(n)
	return p
}
