// Package detorder models a deterministic kernel package: the
// directive below opts the package into the detorder analyzer.
//
//amg:deterministic
package detorder

import (
	"math/rand"
	"time"
)

func mapRange(m map[int]float64, xs []float64) float64 {
	var s float64
	for _, v := range m { // want `ranges over a map`
		s += v
	}
	for i := range xs { // slice ranges are ordered: fine
		s += xs[i]
	}
	return s
}

// waived shows the escape hatch: an integer reduction over a map is
// order-insensitive (exact commutative arithmetic), and the waiver
// comment documents why.
func waived(m map[int]int64) int64 {
	var s int64
	//amg:order-ok exact integer sum, order cannot affect the result
	for _, v := range m {
		s += v
	}
	var n int64
	for range m { //amg:order-ok counting only
		n++
	}
	return s + n
}

func clock() int64 {
	t := time.Now() // want `reads the wall clock`
	return t.Unix()
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `reads the wall clock`
}

func randomness() float64 {
	r := rand.New(rand.NewSource(42)) // fixed seed: fine
	bad := rand.Float64()             // want `global math/rand source`
	return r.Float64() + bad
}

func wallSeed(now int64) *rand.Rand {
	return rand.New(rand.NewSource(now)) // want `non-constant value`
}
