// Command benchjson converts `go test -bench` output (read from stdin)
// into the BENCH_*.json perf-trajectory format, optionally joining a
// baseline file so each benchmark records before/after numbers and the
// speedup. With -maxdrop it is also the perf-regression gate: any
// derived ratio that fell more than the given percentage below the
// baseline's ratio fails the run (after writing the output, so the
// numbers behind the failure are on disk). Used by `make bench`:
//
//	go test -run '^$' -bench ... -benchmem . | benchjson -baseline BENCH_PR5.json -maxdrop 10 -out BENCH_PR6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurements.
type Metrics struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  float64 `json:"bytes_op"`
	AllocsPerOp float64 `json:"allocs_op"`
}

// Entry pairs current numbers with an optional baseline.
type Entry struct {
	Seed *Metrics `json:"seed,omitempty"`
	Cur  *Metrics `json:"current"`
	// Speedup is seed ns/op divided by current ns/op (higher is better).
	Speedup float64 `json:"speedup,omitempty"`
}

// File is the on-disk BENCH_*.json layout.
type File struct {
	Label string `json:"label"`
	// GoVersion and GoMaxProcs record the toolchain and parallelism the
	// numbers were measured with, so trajectory entries from different
	// environments are distinguishable.
	GoVersion  string           `json:"go_version,omitempty"`
	GoMaxProcs int              `json:"gomaxprocs,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
	// Ratios are derived cross-benchmark speedups requested with -ratio
	// NAME=NUM/DEN: ns/op of benchmark NUM divided by ns/op of DEN
	// (higher means DEN is faster), e.g. batched SpMM vs separate SpMVs.
	Ratios map[string]float64 `json:"ratios,omitempty"`
}

// ratioFlags collects repeated -ratio NAME=NUM/DEN definitions.
type ratioFlags []string

func (r *ratioFlags) String() string { return strings.Join(*r, ",") }

func (r *ratioFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	baseline := flag.String("baseline", "", "baseline BENCH_*.json to join as the seed column")
	label := flag.String("label", "current", "label recorded in the output")
	var ratios ratioFlags
	flag.Var(&ratios, "ratio", "derived ratio NAME=NUM/DEN of two benchmarks' ns/op (repeatable)")
	maxDrop := flag.Float64("maxdrop", 0, "fail when a derived ratio drops more than this percent below the baseline's (0 disables the gate)")
	force := flag.Bool("force", false, "compare against a baseline recorded at a different GOMAXPROCS anyway")
	flag.Parse()

	cur, procs, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if procs == 0 {
		procs = runtime.GOMAXPROCS(0)
	}

	var base map[string]Metrics
	var baseRatios map[string]float64
	if *baseline != "" {
		var baseProcs int
		base, baseRatios, baseProcs, err = readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		// Cross-parallelism comparisons are not perf trajectories: a
		// baseline measured at a different GOMAXPROCS makes every speedup
		// and ratio gate meaningless. Refuse unless explicitly overridden.
		if err := checkProcsMatch(procs, baseProcs, *baseline, *force); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	f := File{Label: *label, GoVersion: runtime.Version(), GoMaxProcs: procs, Benchmarks: map[string]Entry{}}
	for name, m := range cur {
		m := m
		e := Entry{Cur: &m}
		if b, ok := base[name]; ok {
			b := b
			e.Seed = &b
			if m.NsPerOp > 0 {
				e.Speedup = round3(b.NsPerOp / m.NsPerOp)
			}
		}
		f.Benchmarks[name] = e
	}
	for _, def := range ratios {
		name, num, den, err := parseRatio(def, cur, baseRatios)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if f.Ratios == nil {
			f.Ratios = map[string]float64{}
		}
		f.Ratios[name] = round3(num / den)
	}

	enc, err := marshalStable(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Println(string(enc))
	} else {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		names := make([]string, 0, len(f.Benchmarks))
		for n := range f.Benchmarks {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			e := f.Benchmarks[n]
			if e.Seed != nil {
				fmt.Printf("%-28s %12.0f ns/op  (seed %12.0f, %.2fx)\n", n, e.Cur.NsPerOp, e.Seed.NsPerOp, e.Speedup)
			} else {
				fmt.Printf("%-28s %12.0f ns/op\n", n, e.Cur.NsPerOp)
			}
		}
		rnames := make([]string, 0, len(f.Ratios))
		for n := range f.Ratios {
			rnames = append(rnames, n)
		}
		sort.Strings(rnames)
		for _, n := range rnames {
			fmt.Printf("ratio %-28s %.2fx\n", n, f.Ratios[n])
		}
		fmt.Println("wrote", *out)
	}

	// The regression gate runs last, after the output file exists: a
	// failed gate should leave the numbers behind it on disk.
	if drops := ratioDrops(f.Ratios, baseRatios, *maxDrop); len(drops) > 0 {
		for _, d := range drops {
			fmt.Fprintln(os.Stderr, "benchjson:", d)
		}
		os.Exit(1)
	}
}

// checkProcsMatch rejects a baseline recorded at a different GOMAXPROCS
// than the current run (unless forced): the speedup columns and the
// -maxdrop ratio gate only mean anything when both sides measured the
// same parallelism. Baselines that never recorded their GOMAXPROCS
// (pre-trajectory files) are accepted — there is nothing to compare.
func checkProcsMatch(procs, baseProcs int, baseline string, force bool) error {
	if baseProcs == 0 || baseProcs == procs {
		return nil
	}
	if force {
		fmt.Fprintf(os.Stderr, "benchjson: warning: comparing GOMAXPROCS=%d run against %s recorded at GOMAXPROCS=%d (-force)\n",
			procs, baseline, baseProcs)
		return nil
	}
	return fmt.Errorf("this run used GOMAXPROCS=%d but baseline %s was recorded at GOMAXPROCS=%d; "+
		"rerun with the same parallelism (make bench BENCHPROCS=%d) or pass -force to compare anyway",
		procs, baseline, baseProcs, baseProcs)
}

// ratioDrops compares the derived ratios against the baseline's and
// reports every one that fell more than maxDrop percent — strictly
// more: a ratio sitting exactly at the gate passes. Ratios only
// one side defines are skipped: a new ratio has no history to regress
// against, and a retired one is a definition change, not a slowdown.
func ratioDrops(cur, base map[string]float64, maxDrop float64) []string {
	if maxDrop <= 0 {
		return nil
	}
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)
	var drops []string
	for _, n := range names {
		b, ok := base[n]
		if !ok || b <= 0 {
			continue
		}
		drop := (b - cur[n]) / b * 100
		if drop > maxDrop {
			drops = append(drops, fmt.Sprintf(
				"ratio %s regressed %.1f%% (baseline %.3fx, current %.3fx, gate %.0f%%)",
				n, drop, b, cur[n], maxDrop))
		}
	}
	return drops
}

func round3(x float64) float64 { return float64(int64(x*1000+0.5)) / 1000 }

// parseRatio resolves a NAME=NUM/DEN definition against the parsed
// benchmark metrics, returning the two ns/op values. baseRatios (may be
// nil) is consulted only to enrich the missing-benchmark error: when
// the baseline recorded a value for the ratio, the error shows what the
// trajectory is about to lose.
func parseRatio(def string, cur map[string]Metrics, baseRatios map[string]float64) (name string, num, den float64, err error) {
	name, expr, ok := strings.Cut(def, "=")
	if !ok {
		return "", 0, 0, fmt.Errorf("bad -ratio %q (want NAME=NUM/DEN)", def)
	}
	numName, denName, ok := strings.Cut(expr, "/")
	if !ok {
		return "", 0, 0, fmt.Errorf("bad -ratio %q (want NAME=NUM/DEN)", def)
	}
	var missing []string
	n, okN := cur[numName]
	if !okN {
		missing = append(missing, numName)
	}
	d, okD := cur[denName]
	if !okD && denName != numName {
		missing = append(missing, denName)
	}
	if len(missing) > 0 {
		// Fail loudly rather than emit a zero or stale ratio: a renamed
		// or dropped benchmark must break `make bench`, not silently
		// corrupt the perf trajectory.
		avail := make([]string, 0, len(cur))
		for b := range cur {
			avail = append(avail, b)
		}
		sort.Strings(avail)
		recorded := ""
		if b, ok := baseRatios[name]; ok {
			recorded = fmt.Sprintf("; the baseline recorded %s at %.3fx", name, b)
		}
		return "", 0, 0, fmt.Errorf("-ratio %s: benchmark(s) %s missing from this run (have: %s); "+
			"check the -bench pattern and the benchmark names in the -ratio definition%s",
			name, strings.Join(missing, ", "), strings.Join(avail, ", "), recorded)
	}
	if d.NsPerOp == 0 {
		return "", 0, 0, fmt.Errorf("-ratio %s: zero ns/op denominator", name)
	}
	return name, n.NsPerOp, d.NsPerOp, nil
}

// parseBench extracts Benchmark lines from `go test -bench -benchmem`
// output. Lines look like:
//
//	BenchmarkName      556   2203845 ns/op   934240 B/op   15232 allocs/op
//
// Repeated lines for one benchmark (`go test -count=N`) keep the
// fastest run: scheduler and thermal noise only ever add time, so the
// minimum is the most repeatable estimate — which the -maxdrop gate
// needs to compare runs without tripping on a single slow repetition.
func parseBench(src io.Reader) (map[string]Metrics, int, error) {
	res := map[string]Metrics{}
	procs := 0
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -N GOMAXPROCS suffix go test appends.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if p, err := strconv.Atoi(name[i+1:]); err == nil {
				procs = p
				name = name[:i]
			}
		}
		var m Metrics
		for k := 1; k+1 < len(fields); k++ {
			v, err := strconv.ParseFloat(fields[k], 64)
			if err != nil {
				continue
			}
			switch fields[k+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if m.NsPerOp > 0 {
			if prev, ok := res[name]; !ok || m.NsPerOp < prev.NsPerOp {
				res[name] = m
			}
		}
	}
	return res, procs, sc.Err()
}

// readBaseline accepts a previous benchjson file and returns its
// current-column metrics keyed by benchmark name, its derived ratios
// for the -maxdrop regression gate, and the GOMAXPROCS it recorded
// (0 when the file predates that field).
func readBaseline(path string) (map[string]Metrics, map[string]float64, int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]Metrics{}
	for name, e := range f.Benchmarks {
		if e.Cur != nil {
			out[name] = *e.Cur
		}
	}
	return out, f.Ratios, f.GoMaxProcs, nil
}

// marshalStable renders the file with sorted benchmark keys.
func marshalStable(f File) ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}
