// Luby's Monte Carlo Algorithm A for MIS-1, the distance-1 analogue of
// Algorithm 1 (paper §IV). When run on the boolean square G² with the same
// priority sequence, it must produce exactly the MIS-2 Algorithm 1 produces
// on G (Lemma IV.2) — the package tests assert this equivalence.
package mis

import (
	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/par"
)

// LubyMIS1 computes a distance-1 maximal independent set of g using
// per-iteration priorities from the given hash kind. Deterministic.
func LubyMIS1(g *graph.CSR, kind hash.Kind, threads int) Result {
	rt := par.New(threads)
	n := g.N
	if n == 0 {
		return Result{InSet: []int32{}}
	}
	c := newCodec(n)
	t := make([]uint64, n)
	m := make([]uint64, n)
	wl := make([]int32, n)
	for i := range wl {
		wl[i] = int32(i)
	}
	buf := make([]int32, n)

	iter := 0
	for len(wl) > 0 {
		it64 := uint64(iter)
		rt.For(len(wl), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := wl[i]
				t[v] = c.pack(kind.Priority(it64, uint64(v)), v)
			}
		})
		// One round of closed-neighborhood minima decides everything at
		// distance 1: v is IN if it holds the minimum, OUT if the minimum
		// is an IN vertex.
		rt.For(len(wl), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := wl[i]
				mv := t[v]
				for _, w := range g.Neighbors(v) {
					if tw := t[w]; tw < mv {
						mv = tw
					}
				}
				m[v] = mv
			}
		})
		rt.For(len(wl), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := wl[i]
				if m[v] == t[v] {
					t[v] = tupleIn
				} else if m[v] == tupleIn {
					t[v] = tupleOut
				}
			}
		})
		next := par.Filter(rt, wl, buf, func(v int32) bool { return isUndecided(t[v]) })
		wl, buf = next, wl[:n]
		iter++
	}
	return Result{InSet: collectIn(rt, t, n), Iterations: iter}
}
