package par

import (
	"sync"
	"testing"
	"unsafe"
)

func TestArenaGetPutReuse(t *testing.T) {
	a := &Arena{}
	s1 := Get[float64](a, 100)
	if len(s1) != 100 {
		t.Fatalf("len = %d, want 100", len(s1))
	}
	p1 := uintptr(unsafe.Pointer(unsafe.SliceData(s1)))
	Put(a, s1)
	s2 := Get[float64](a, 100)
	p2 := uintptr(unsafe.Pointer(unsafe.SliceData(s2)))
	if p1 != p2 {
		t.Fatalf("second Get did not reuse the buffer: %x vs %x", p1, p2)
	}
	// A differently-typed request of equal byte size also reuses.
	Put(a, s2)
	s3 := Get[uint64](a, 100)
	p3 := uintptr(unsafe.Pointer(unsafe.SliceData(s3)))
	if p1 != p3 {
		t.Fatalf("cross-type Get did not reuse the buffer")
	}
}

func TestArenaOddSizedInt32RoundTrips(t *testing.T) {
	a := &Arena{}
	// Odd element counts must not shrink the buffer across cycles.
	s := Get[int32](a, 101)
	p1 := uintptr(unsafe.Pointer(unsafe.SliceData(s)))
	Put(a, s)
	s = Get[int32](a, 101)
	p2 := uintptr(unsafe.Pointer(unsafe.SliceData(s)))
	if p1 != p2 {
		t.Fatalf("odd-sized buffer was not reused")
	}
	Put(a, s)
}

func TestArenaTightestFit(t *testing.T) {
	a := &Arena{}
	big := Get[uint64](a, 1000)
	small := Get[uint64](a, 10)
	pSmall := uintptr(unsafe.Pointer(unsafe.SliceData(small)))
	Put(a, big)
	Put(a, small)
	got := Get[uint64](a, 8)
	if uintptr(unsafe.Pointer(unsafe.SliceData(got))) != pSmall {
		t.Fatalf("Get(8) should reuse the 10-word buffer, not the 1000-word one")
	}
}

func TestArenaBucketRoundingServesNearMissSizes(t *testing.T) {
	a := &Arena{}
	// A returned buffer must serve slightly larger follow-up requests in
	// the same bucket: n, n+1, and n*k block scratch for small factors.
	s1 := Get[int](a, 100) // bucket: 128 words
	p1 := uintptr(unsafe.Pointer(unsafe.SliceData(s1)))
	Put(a, s1)
	s2 := Get[int](a, 101)
	if uintptr(unsafe.Pointer(unsafe.SliceData(s2))) != p1 {
		t.Fatal("n+1 request did not reuse the bucket-rounded buffer")
	}
	Put(a, s2)
	s3 := Get[int](a, 128)
	if uintptr(unsafe.Pointer(unsafe.SliceData(s3))) != p1 {
		t.Fatal("bucket-boundary request did not reuse the buffer")
	}
	Put(a, s3)
	// Large requests round to 4096-word multiples, not powers of two.
	big := Get[uint64](a, 5000)
	if cap(big) != 8192 {
		t.Fatalf("cap = %d, want 8192 (two 4096-word buckets)", cap(big))
	}
	Put(a, big)
}

func TestArenaZeroAllocSteadyState(t *testing.T) {
	a := &Arena{}
	Put(a, Get[float64](a, 512)) // warm up
	allocs := testing.AllocsPerRun(50, func() {
		s := Get[float64](a, 512)
		s[0] = 1
		Put(a, s)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put: %v allocs, want 0", allocs)
	}
}

func TestForWithScratchAndTeardown(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := New(workers)
		n := 10000
		out := make([]int64, n)
		var teardowns sync.Map
		ForWith(r, n,
			func(a *Arena) []int64 {
				return GetZeroed[int64](a, 1)
			},
			func(lo, hi int, s []int64) {
				for i := lo; i < hi; i++ {
					out[i] = int64(i) * 2
					s[0]++
				}
			},
			func(a *Arena, s []int64) {
				teardowns.Store(&s[0], s[0])
				Put(a, s)
			})
		for i := range out {
			if out[i] != int64(i)*2 {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, out[i])
			}
		}
		var visited int64
		teardowns.Range(func(_, v any) bool {
			visited += v.(int64)
			return true
		})
		if visited != int64(n) {
			t.Fatalf("workers=%d: teardown saw %d items, want %d", workers, visited, n)
		}
	}
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	// Many goroutines using independent Runtimes concurrently must not
	// interfere (shared pool, disjoint tasks).
	var wg sync.WaitGroup
	for gor := 0; gor < 8; gor++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := New(4)
			n := 5000
			out := make([]int, n)
			for rep := 0; rep < 20; rep++ {
				r.For(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i] = i + seed
					}
				})
				for i := range out {
					if out[i] != i+seed {
						t.Errorf("corrupted result at %d", i)
						return
					}
				}
			}
		}(gor)
	}
	wg.Wait()
}

func TestNestedFor(t *testing.T) {
	r := New(4)
	outer := 4000
	inner := 2000
	sums := make([]int64, outer)
	r.For(outer, func(lo, hi int) {
		inRT := New(2)
		for i := lo; i < hi; i++ {
			sums[i] = ReduceSum(inRT, inner, func(j int) int64 { return int64(j) })
		}
	})
	want := int64(inner) * int64(inner-1) / 2
	for i, s := range sums {
		if s != want {
			t.Fatalf("sums[%d] = %d, want %d", i, s, want)
		}
	}
}
