package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
)

// Config mirrors the JSON configuration cmd/go writes for a vet tool
// (cmd/go/internal/work.vetConfig). go vet -vettool invokes the tool
// once per package as `tool [flags] path/to/vet.cfg`; this struct is
// the contract between the two processes.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string

	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// RunUnit executes the analyzers against the single package described
// by the vet config at cfgPath, printing diagnostics to w in
// file:line:col form. It returns the process exit code: 0 clean, 1 on
// driver/typecheck errors, 2 when diagnostics were reported (matching
// x/tools unitchecker semantics, which go vet maps to failure).
func RunUnit(cfgPath string, analyzers []*Analyzer, w io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "amglint: reading config: %v\n", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "amglint: parsing config %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go reads the vetx (facts) output after every run and caches
	// it; amglint's analyzers are fact-free, so an empty file is the
	// correct output and must exist even for VetxOnly invocations.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(w, "amglint: writing vetx output: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency-only invocation: facts were the only deliverable.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(w, "amglint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Imports resolve through the export data files cmd/go already
	// built for the package's dependencies: ImportMap canonicalizes the
	// source-level path (vendoring, test variants), PackageFile names
	// the archive holding the dependency's export data.
	compilerImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tcfg := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect via the returned error; keep checking
	}
	info := newTypesInfo()
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "amglint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := RunAnalyzers(fset, files, pkg, info, analyzers, w)
	if diags > 0 {
		return 2
	}
	return 0
}

// newTypesInfo allocates a types.Info with every map analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunAnalyzers runs each analyzer over the package and prints the
// merged, position-sorted diagnostics to w, returning the count.
// Shared by the vet driver and the linttest harness.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, w io.Writer) int {
	diags := CollectDiagnostics(fset, files, pkg, info, analyzers, w)
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s [amglint/%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return len(diags)
}

// CollectDiagnostics runs the analyzers and returns their merged,
// position-sorted diagnostics without printing them. Analyzer runtime
// errors are reported to w.
func CollectDiagnostics(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, w io.Writer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(w, "amglint: analyzer %s: %v\n", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// FilterAnalyzers returns the analyzers whose name is enabled in the
// flag map (missing names default to enabled).
func FilterAnalyzers(all []*Analyzer, enabled map[string]bool) []*Analyzer {
	out := make([]*Analyzer, 0, len(all))
	for _, a := range all {
		if on, ok := enabled[a.Name]; !ok || on {
			out = append(out, a)
		}
	}
	return out
}

// Strings below are shared diagnostic phrasing helpers.

// shortPkgPath trims the module prefix from an import path for terser
// diagnostics.
func shortPkgPath(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
