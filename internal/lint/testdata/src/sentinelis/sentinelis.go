// Package sentinelis exercises the sentinelis analyzer: classified
// errors travel wrapped, so identity comparison breaks the contract.
package sentinelis

import (
	"errors"
	"fmt"
)

var ErrBoom = errors.New("boom")

type failure struct{ msg string }

func (f *failure) Error() string { return f.msg }

func compare(err error) bool {
	if err == ErrBoom { // want `use errors.Is`
		return true
	}
	if err != ErrBoom { // want `use errors.Is`
		return false
	}
	if err == nil { // nil checks are fine
		return false
	}
	return errors.Is(err, ErrBoom) // the contractual form
}

func classify(err error) int {
	switch err {
	case nil:
		return 0
	case ErrBoom: // want `switched by identity`
		return 1
	}
	switch {
	case errors.Is(err, ErrBoom): // fine: tagless switch over Is
		return 2
	}
	return 3
}

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("solve failed: %v", err) // want `without %w`
	}
	return fmt.Errorf("iteration %d overran", 3) // no error argument: fine
}

func wrapGood(err error) error {
	return fmt.Errorf("solve failed: %w", err) // fine
}

func wrapConcrete(f *failure) error {
	return fmt.Errorf("smoother: %s", f) // want `without %w`
}
