// Package sparse implements the CSR sparse matrix substrate: parallel
// sparse matrix-vector products, sparse matrix-matrix products (SpGEMM,
// Gustavson's algorithm), transposition, and the Galerkin triple product
// R*A*P needed by smoothed-aggregation algebraic multigrid.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mis2go/internal/graph"
	"mis2go/internal/par"
)

// Matrix is a sparse matrix in CSR format. Column indices within a row are
// sorted ascending for matrices that pass Validate.
type Matrix struct {
	Rows, Cols int
	RowPtr     []int   // length Rows+1
	Col        []int32 // length NNZ
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *Matrix) NNZ() int { return len(a.Col) }

// Validate checks structural invariants.
func (a *Matrix) Validate() error {
	if a.Rows < 0 || a.Cols < 0 {
		return errors.New("sparse: negative dimension")
	}
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(a.RowPtr), a.Rows+1)
	}
	if a.RowPtr[0] != 0 || a.RowPtr[a.Rows] != len(a.Col) || len(a.Col) != len(a.Val) {
		return errors.New("sparse: inconsistent RowPtr/Col/Val lengths")
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if a.Col[p] < 0 || int(a.Col[p]) >= a.Cols {
				return fmt.Errorf("sparse: row %d has out-of-range column %d", i, a.Col[p])
			}
			if p > a.RowPtr[i] && a.Col[p-1] >= a.Col[p] {
				return fmt.Errorf("sparse: row %d not sorted/duplicate-free", i)
			}
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if math.IsNaN(a.Val[p]) || math.IsInf(a.Val[p], 0) {
				return fmt.Errorf("sparse: non-finite value at row %d", i)
			}
		}
	}
	return nil
}

// SpMV computes y = A*x in parallel over rows.
func (a *Matrix) SpMV(rt *par.Runtime, x, y []float64) {
	rt.For(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				s += a.Val[p] * x[a.Col[p]]
			}
			y[i] = s
		}
	})
}

// Diagonal returns the diagonal entries of A (zero where absent).
func (a *Matrix) Diagonal() []float64 {
	d := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.Col[p]) == i {
				d[i] = a.Val[p]
				break
			}
		}
	}
	return d
}

// Graph returns the adjacency structure of A with the diagonal removed,
// symmetrized. This is the graph coarsening and coloring operate on.
func (a *Matrix) Graph() *graph.CSR {
	edges := make([]graph.Edge, 0, len(a.Col))
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.Col[p]
			if int(j) > i {
				edges = append(edges, graph.Edge{U: int32(i), V: j})
			} else if int(j) < i {
				// Keep lower entries too in case A is structurally
				// unsymmetric; FromEdges dedupes.
				edges = append(edges, graph.Edge{U: j, V: int32(i)})
			}
		}
	}
	n := a.Rows
	if a.Cols > n {
		n = a.Cols
	}
	return graph.FromEdges(n, edges)
}

// Transpose returns A^T using a counting sort over columns (deterministic).
func (a *Matrix) Transpose() *Matrix {
	t := &Matrix{Rows: a.Cols, Cols: a.Rows}
	t.RowPtr = make([]int, a.Cols+1)
	for _, j := range a.Col {
		t.RowPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	t.Col = make([]int32, len(a.Col))
	t.Val = make([]float64, len(a.Val))
	fill := make([]int, a.Cols)
	copy(fill, t.RowPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.Col[p]
			t.Col[fill[j]] = int32(i)
			t.Val[fill[j]] = a.Val[p]
			fill[j]++
		}
	}
	return t
}

// Multiply computes C = A*B with Gustavson's row-by-row SpGEMM,
// parallelized over rows of A with per-worker dense accumulators.
// Deterministic: each output row is computed independently and sorted.
func Multiply(rt *par.Runtime, a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("sparse: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := &Matrix{Rows: a.Rows, Cols: b.Cols}
	c.RowPtr = make([]int, a.Rows+1)
	counts := make([]int, a.Rows)

	// Symbolic pass: count nnz per output row.
	rt.For(a.Rows, func(lo, hi int) {
		mark := make([]int32, b.Cols)
		for i := range mark {
			mark[i] = -1
		}
		for i := lo; i < hi; i++ {
			cnt := 0
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				k := a.Col[p]
				for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
					j := b.Col[q]
					if mark[j] != int32(i) {
						mark[j] = int32(i)
						cnt++
					}
				}
			}
			counts[i] = cnt
		}
	})
	nnz := par.ScanExclusive(rt, counts, c.RowPtr)
	c.Col = make([]int32, nnz)
	c.Val = make([]float64, nnz)

	// Numeric pass.
	rt.For(a.Rows, func(lo, hi int) {
		acc := make([]float64, b.Cols)
		mark := make([]int32, b.Cols)
		for i := range mark {
			mark[i] = -1
		}
		for i := lo; i < hi; i++ {
			base := c.RowPtr[i]
			k := base
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				ak := a.Val[p]
				row := a.Col[p]
				for q := b.RowPtr[row]; q < b.RowPtr[row+1]; q++ {
					j := b.Col[q]
					if mark[j] != int32(i) {
						mark[j] = int32(i)
						acc[j] = ak * b.Val[q]
						c.Col[k] = j
						k++
					} else {
						acc[j] += ak * b.Val[q]
					}
				}
			}
			cols := c.Col[base:k]
			sort.Slice(cols, func(x, y int) bool { return cols[x] < cols[y] })
			for idx := base; idx < k; idx++ {
				c.Val[idx] = acc[c.Col[idx]]
			}
		}
	})
	return c, nil
}

// RAP computes the Galerkin coarse operator R*A*P.
func RAP(rt *par.Runtime, r, a, p *Matrix) (*Matrix, error) {
	ap, err := Multiply(rt, a, p)
	if err != nil {
		return nil, err
	}
	return Multiply(rt, r, ap)
}

// Scale multiplies all values by s in place.
func (a *Matrix) Scale(s float64) {
	for i := range a.Val {
		a.Val[i] *= s
	}
}

// Clone returns a deep copy of A.
func (a *Matrix) Clone() *Matrix {
	b := &Matrix{Rows: a.Rows, Cols: a.Cols}
	b.RowPtr = append([]int(nil), a.RowPtr...)
	b.Col = append([]int32(nil), a.Col...)
	b.Val = append([]float64(nil), a.Val...)
	return b
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := &Matrix{Rows: n, Cols: n}
	m.RowPtr = make([]int, n+1)
	m.Col = make([]int32, n)
	m.Val = make([]float64, n)
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.Col[i] = int32(i)
		m.Val[i] = 1
	}
	return m
}

// Add computes A + s*B for matrices with identical dimensions.
func Add(a, b *Matrix, s float64) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("sparse: add dimension mismatch")
	}
	c := &Matrix{Rows: a.Rows, Cols: a.Cols}
	c.RowPtr = make([]int, a.Rows+1)
	colBuf := make([]int32, 0, len(a.Col)+len(b.Col))
	valBuf := make([]float64, 0, len(a.Col)+len(b.Col))
	for i := 0; i < a.Rows; i++ {
		pa, pb := a.RowPtr[i], b.RowPtr[i]
		ea, eb := a.RowPtr[i+1], b.RowPtr[i+1]
		for pa < ea || pb < eb {
			switch {
			case pb >= eb || (pa < ea && a.Col[pa] < b.Col[pb]):
				colBuf = append(colBuf, a.Col[pa])
				valBuf = append(valBuf, a.Val[pa])
				pa++
			case pa >= ea || b.Col[pb] < a.Col[pa]:
				colBuf = append(colBuf, b.Col[pb])
				valBuf = append(valBuf, s*b.Val[pb])
				pb++
			default:
				colBuf = append(colBuf, a.Col[pa])
				valBuf = append(valBuf, a.Val[pa]+s*b.Val[pb])
				pa++
				pb++
			}
		}
		c.RowPtr[i+1] = len(colBuf)
	}
	c.Col = colBuf
	c.Val = valBuf
	return c, nil
}

// Dense is a small dense matrix used for coarse-grid solves.
type Dense struct {
	N    int
	Data []float64 // row-major
	piv  []int
}

// ToDense converts a square sparse matrix to dense form.
func (a *Matrix) ToDense() (*Dense, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("sparse: ToDense requires square matrix")
	}
	d := &Dense{N: a.Rows, Data: make([]float64, a.Rows*a.Rows)}
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			d.Data[i*a.Rows+int(a.Col[p])] = a.Val[p]
		}
	}
	return d, nil
}

// Factorize computes an LU factorization with partial pivoting in place.
func (d *Dense) Factorize() error {
	n := d.N
	d.piv = make([]int, n)
	for k := 0; k < n; k++ {
		// Pivot selection.
		pk, pmax := k, math.Abs(d.Data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(d.Data[i*n+k]); v > pmax {
				pk, pmax = i, v
			}
		}
		if pmax == 0 {
			return fmt.Errorf("sparse: singular dense matrix at pivot %d", k)
		}
		d.piv[k] = pk
		if pk != k {
			for j := 0; j < n; j++ {
				d.Data[k*n+j], d.Data[pk*n+j] = d.Data[pk*n+j], d.Data[k*n+j]
			}
		}
		inv := 1 / d.Data[k*n+k]
		for i := k + 1; i < n; i++ {
			l := d.Data[i*n+k] * inv
			d.Data[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				d.Data[i*n+j] -= l * d.Data[k*n+j]
			}
		}
	}
	return nil
}

// Solve solves the factorized system in place: x := A^{-1} b.
// Factorize must have been called.
func (d *Dense) Solve(b, x []float64) {
	n := d.N
	copy(x, b)
	for k := 0; k < n; k++ {
		if p := d.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
		for i := k + 1; i < n; i++ {
			x[i] -= d.Data[i*n+k] * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= d.Data[i*n+j] * x[j]
		}
		x[i] = s / d.Data[i*n+i]
	}
}
