package sparse

import (
	"fmt"

	"mis2go/internal/par"
)

// CSR32 is the float32-valued CSR operator: the row pointers and column
// indices are shared with the source *Matrix (the pattern is identical
// by construction and never mutated here), only the values are stored
// down-converted. Every kernel takes float64 vectors and accumulates in
// float64 — each stored value is widened back to float64 before its
// multiply — in the same strict left-to-right per-row order as the f64
// CSR kernels, so results are bitwise deterministic for any worker
// count. What changes versus *Matrix is only the bytes streamed per
// stored value (4 instead of 8) and one rounding of each value at
// store time.
//
// Concurrency: like *Matrix, all kernels are read-only on the operator
// and safe for concurrent use; FillValues mutates the stored values and
// must be serialized against every reader.
type CSR32 struct {
	rows, cols int
	rowPtr     []int   // shared with the source matrix
	col        []int32 // shared with the source matrix
	val        []float32
}

// NewCSR32 builds the f32-valued view of a, rejecting values outside
// the float32 range (CheckF32Range) before allocating. The pattern
// slices are shared with a, not copied: the AMG hierarchy owns both and
// replays values only.
func NewCSR32(a *Matrix) (*CSR32, error) {
	if err := CheckF32Range(a.Val); err != nil {
		return nil, err
	}
	c := &CSR32{rows: a.Rows, cols: a.Cols, rowPtr: a.RowPtr, col: a.Col}
	c.val = make([]float32, len(a.Val))
	for p, v := range a.Val {
		c.val[p] = float32(v)
	}
	return c, nil
}

// FillValues refreshes the stored values from a same-pattern CSR matrix.
// The float32-range scan runs before any store, so a rejected refresh
// leaves the previous values serving bitwise unchanged; the conversion
// loop itself is branch-free (position p converts entry p — the CSR
// entry schedule is the identity) and allocates nothing. Only the shape
// and entry count are checked here; pattern identity is the caller's
// contract.
func (c *CSR32) FillValues(a *Matrix) error {
	if a.Rows != c.rows || a.Cols != c.cols || len(a.Val) != len(c.val) {
		return fmt.Errorf("sparse: CSR32 refresh from %dx%d/%d entries, converted from %dx%d/%d",
			a.Rows, a.Cols, len(a.Val), c.rows, c.cols, len(c.val))
	}
	if err := CheckF32Range(a.Val); err != nil {
		return err
	}
	for p, v := range a.Val {
		c.val[p] = float32(v)
	}
	return nil
}

// Dims returns the operator shape, implementing Operator.
func (c *CSR32) Dims() (rows, cols int) { return c.rows, c.cols }

// NNZ returns the number of stored entries.
func (c *CSR32) NNZ() int { return len(c.col) }

// SpMV computes y = A*x in parallel over rows.
//
//amg:hotpath
func (c *CSR32) SpMV(rt *par.Runtime, x, y []float64) {
	if rt.Serial(c.rows) {
		c.spmvRange(x, y, 0, c.rows)
		return
	}
	rt.For(c.rows, func(lo, hi int) {
		c.spmvRange(x, y, lo, hi)
	})
}

//amg:hotpath
func (c *CSR32) spmvRange(x, y []float64, lo, hi int) {
	rp := c.rowPtr
	for i := lo; i < hi; i++ {
		start, end := rp[i], rp[i+1]
		cols := c.col[start:end]
		vals := c.val[start:end]
		var s float64
		for k, j := range cols {
			s += float64(vals[k]) * x[j]
		}
		y[i] = s
	}
}

// SpMVResidual computes r = b - A*x in one traversal. r must not alias x.
//
//amg:hotpath
func (c *CSR32) SpMVResidual(rt *par.Runtime, b, x, r []float64) {
	if rt.Serial(c.rows) {
		c.spmvResidualRange(b, x, r, 0, c.rows)
		return
	}
	rt.For(c.rows, func(lo, hi int) {
		c.spmvResidualRange(b, x, r, lo, hi)
	})
}

//amg:hotpath
func (c *CSR32) spmvResidualRange(b, x, r []float64, lo, hi int) {
	rp := c.rowPtr
	for i := lo; i < hi; i++ {
		start, end := rp[i], rp[i+1]
		cols := c.col[start:end]
		vals := c.val[start:end]
		var s float64
		for k, j := range cols {
			s += float64(vals[k]) * x[j]
		}
		r[i] = b[i] - s
	}
}

// SpMVAdd computes y += A*x in one traversal. y must not alias x.
//
//amg:hotpath
func (c *CSR32) SpMVAdd(rt *par.Runtime, x, y []float64) {
	if rt.Serial(c.rows) {
		c.spmvAddRange(x, y, 0, c.rows)
		return
	}
	rt.For(c.rows, func(lo, hi int) {
		c.spmvAddRange(x, y, lo, hi)
	})
}

//amg:hotpath
func (c *CSR32) spmvAddRange(x, y []float64, lo, hi int) {
	rp := c.rowPtr
	for i := lo; i < hi; i++ {
		start, end := rp[i], rp[i+1]
		cols := c.col[start:end]
		vals := c.val[start:end]
		var s float64
		for k, j := range cols {
			s += float64(vals[k]) * x[j]
		}
		y[i] += s
	}
}

// JacobiSweep computes dst[i] = src[i] + omega*dinv[i]*(b[i] - (A src)[i])
// in one traversal — the fused damped-Jacobi sweep. The diagonal inverse
// stays float64 (it is smoother state, not operator storage). src and
// dst must not alias.
//
//amg:hotpath
func (c *CSR32) JacobiSweep(rt *par.Runtime, b, dinv []float64, omega float64, src, dst []float64) {
	if rt.Serial(c.rows) {
		c.jacobiSweepRange(b, dinv, omega, src, dst, 0, c.rows)
		return
	}
	rt.For(c.rows, func(lo, hi int) {
		c.jacobiSweepRange(b, dinv, omega, src, dst, lo, hi)
	})
}

//amg:hotpath
func (c *CSR32) jacobiSweepRange(b, dinv []float64, omega float64, src, dst []float64, lo, hi int) {
	rp := c.rowPtr
	for i := lo; i < hi; i++ {
		start, end := rp[i], rp[i+1]
		cols := c.col[start:end]
		vals := c.val[start:end]
		var s float64
		for k, j := range cols {
			s += float64(vals[k]) * src[j]
		}
		dst[i] = src[i] + omega*dinv[i]*(b[i]-s)
	}
}

// SpMM computes the multi-RHS product Y = A*X for k interleaved
// right-hand sides (see Matrix.SpMM for the layout).
//
//amg:hotpath
func (c *CSR32) SpMM(rt *par.Runtime, k int, x, y []float64) {
	if k == 1 {
		c.SpMV(rt, x, y)
		return
	}
	if rt.Serial(c.rows) {
		c.spmmDispatch(k, x, y, 0, c.rows)
		return
	}
	rt.For(c.rows, func(lo, hi int) {
		c.spmmDispatch(k, x, y, lo, hi)
	})
}

//amg:hotpath
func (c *CSR32) spmmDispatch(k int, x, y []float64, lo, hi int) {
	switch k {
	case 4:
		c.spmm4Range(x, y, lo, hi)
	case 8:
		c.spmm8Range(x, y, lo, hi)
	default:
		c.spmmRange(k, x, y, lo, hi)
	}
}

//amg:hotpath
func (c *CSR32) spmm4Range(x, y []float64, lo, hi int) {
	rp := c.rowPtr
	for i := lo; i < hi; i++ {
		var s0, s1, s2, s3 float64
		for p := rp[i]; p < rp[i+1]; p++ {
			v := float64(c.val[p])
			xb := x[int(c.col[p])*4:]
			xb = xb[:4]
			s0 += v * xb[0]
			s1 += v * xb[1]
			s2 += v * xb[2]
			s3 += v * xb[3]
		}
		yb := y[i*4:]
		yb = yb[:4]
		yb[0], yb[1], yb[2], yb[3] = s0, s1, s2, s3
	}
}

//amg:hotpath
func (c *CSR32) spmm8Range(x, y []float64, lo, hi int) {
	rp := c.rowPtr
	for i := lo; i < hi; i++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for p := rp[i]; p < rp[i+1]; p++ {
			v := float64(c.val[p])
			xb := x[int(c.col[p])*8:]
			xb = xb[:8]
			s0 += v * xb[0]
			s1 += v * xb[1]
			s2 += v * xb[2]
			s3 += v * xb[3]
			s4 += v * xb[4]
			s5 += v * xb[5]
			s6 += v * xb[6]
			s7 += v * xb[7]
		}
		yb := y[i*8:]
		yb = yb[:8]
		yb[0], yb[1], yb[2], yb[3] = s0, s1, s2, s3
		yb[4], yb[5], yb[6], yb[7] = s4, s5, s6, s7
	}
}

//amg:hotpath
func (c *CSR32) spmmRange(k int, x, y []float64, lo, hi int) {
	rp := c.rowPtr
	for i := lo; i < hi; i++ {
		yb := y[i*k : i*k+k]
		for j := range yb {
			yb[j] = 0
		}
		for p := rp[i]; p < rp[i+1]; p++ {
			v := float64(c.val[p])
			xb := x[int(c.col[p])*k : int(c.col[p])*k+k]
			for j, xv := range xb {
				yb[j] += v * xv
			}
		}
	}
}

// DiagonalInto fills d with the diagonal entries (zero where absent),
// widened to float64.
//
//amg:hotpath
func (c *CSR32) DiagonalInto(rt *par.Runtime, d []float64) {
	if rt.Serial(c.rows) {
		c.diagonalRange(d, 0, c.rows)
		return
	}
	rt.For(c.rows, func(lo, hi int) {
		c.diagonalRange(d, lo, hi)
	})
}

//amg:hotpath
func (c *CSR32) diagonalRange(d []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		d[i] = 0
		for p := c.rowPtr[i]; p < c.rowPtr[i+1]; p++ {
			if int(c.col[p]) == i {
				d[i] = float64(c.val[p])
				break
			}
		}
	}
}
