// Package krylov provides the iterative solvers used by the paper's
// solver experiments: preconditioned conjugate gradient (Table V) and
// preconditioned restarted GMRES (Table VI).
package krylov

import (
	"errors"
	"fmt"
	"math"

	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// Preconditioner applies z = M^{-1} r. Implementations must not modify r.
type Preconditioner interface {
	Precondition(r, z []float64)
}

// identityPrec is the unpreconditioned fallback.
type identityPrec struct{}

func (identityPrec) Precondition(r, z []float64) { copy(z, r) }

// Identity returns the no-op preconditioner.
func Identity() Preconditioner { return identityPrec{} }

// Jacobi returns the diagonal (Jacobi) preconditioner for a, the simplest
// baseline between no preconditioning and the structured methods.
// It returns an error if any diagonal entry is zero.
func Jacobi(a *sparse.Matrix) (Preconditioner, error) {
	d := a.Diagonal()
	dinv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("krylov: zero diagonal at row %d", i)
		}
		dinv[i] = 1 / v
	}
	return jacobiPrecond{dinv: dinv}, nil
}

type jacobiPrecond struct{ dinv []float64 }

func (j jacobiPrecond) Precondition(r, z []float64) {
	for i := range z {
		z[i] = j.dinv[i] * r[i]
	}
}

// Stats reports the outcome of a solve.
type Stats struct {
	// Iterations performed (matrix-vector products for CG; inner
	// iterations for GMRES).
	Iterations int
	// RelResidual is the final relative residual ||b - Ax|| / ||b||.
	RelResidual float64
	// Converged reports whether the tolerance was met.
	Converged bool
}

// ErrNotConverged is wrapped by solvers that hit the iteration limit.
var ErrNotConverged = errors.New("krylov: did not converge")

// dot computes the inner product with a 4-way unrolled dual-accumulator
// loop. The summation order is a fixed function of the vector length, so
// results are identical for every worker count.
func dot(a, b []float64) float64 {
	var s0, s1 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i]*b[i] + a[i+1]*b[i+1]
		s1 += a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// axpy computes y += alpha*x.
func axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Workspace holds the scratch vectors of CG and GMRES so that repeated
// solves allocate nothing. A zero Workspace is ready for use; buffers
// grow on demand and are retained between solves. Not safe for
// concurrent use.
type Workspace struct {
	r, z, p, ap []float64
	// GMRES state (allocated only when GMRES is used).
	v       [][]float64
	h       [][]float64
	cs, sn  []float64
	s, y    []float64
	zb      []float64
	restart int
}

// NewWorkspace returns a Workspace pre-sized for systems of n unknowns.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensureCG(n)
	return w
}

// grow returns s resized to length n, reusing capacity when possible.
func grow(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func (w *Workspace) ensureCG(n int) {
	w.r = grow(w.r, n)
	w.z = grow(w.z, n)
	w.p = grow(w.p, n)
	w.ap = grow(w.ap, n)
}

func (w *Workspace) ensureGMRES(n, restart int) {
	w.ensureCG(n) // r, z, ap (as the w vector) are shared
	if w.restart < restart || len(w.v) == 0 || len(w.v[0]) < n {
		w.v = make([][]float64, restart+1)
		for i := range w.v {
			w.v[i] = make([]float64, n)
		}
		w.h = make([][]float64, restart+1)
		for i := range w.h {
			w.h[i] = make([]float64, restart)
		}
		w.cs = make([]float64, restart)
		w.sn = make([]float64, restart)
		w.s = make([]float64, restart+1)
		w.y = make([]float64, restart)
		w.restart = restart
	}
	w.zb = grow(w.zb, n)
}

// CG solves A x = b for SPD A with the preconditioned conjugate gradient
// method. x holds the initial guess on entry and the solution on exit.
// Iterations stop when the recurrence residual drops below tol*||b|| or
// maxIter is reached; Stats reports the true final residual.
func CG(rt *par.Runtime, a *sparse.Matrix, b, x []float64, tol float64, maxIter int, m Preconditioner) (Stats, error) {
	return CGWith(rt, a, b, x, tol, maxIter, m, nil)
}

// CGWith is CG with a caller-provided Workspace; repeated solves through
// the same Workspace perform no allocations. ws may be nil, in which
// case a temporary workspace is allocated.
func CGWith(rt *par.Runtime, a *sparse.Matrix, b, x []float64, tol float64, maxIter int, m Preconditioner, ws *Workspace) (Stats, error) {
	n := a.Rows
	if len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("krylov: CG size mismatch (n=%d, len(b)=%d, len(x)=%d)", n, len(b), len(x))
	}
	if m == nil {
		m = Identity()
	}
	if ws == nil {
		ws = &Workspace{}
	}
	ws.ensureCG(n)
	r, z, p, ap := ws.r, ws.z, ws.p, ws.ap

	a.SpMV(rt, x, r)
	// rr accumulates ||r||^2 with a single accumulator in index order —
	// a fixed summation order, so convergence behavior is identical for
	// every worker count — fused into the vector updates to save a pass.
	rr := 0.0
	for i := range r {
		ri := b[i] - r[i]
		r[i] = ri
		rr += ri * ri
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	m.Precondition(r, z)
	copy(p, z)
	rz := dot(r, z)

	iters := 0
	met := false
	for ; iters < maxIter; iters++ {
		if math.Sqrt(rr)/bnorm < tol {
			met = true
			break
		}
		a.SpMV(rt, p, ap)
		pap := dot(p, ap)
		if pap <= 0 {
			return Stats{Iterations: iters, RelResidual: math.Sqrt(rr) / bnorm},
				fmt.Errorf("krylov: CG breakdown, p^T A p = %g (matrix not SPD?)", pap)
		}
		alpha := rz / pap
		// Fused update of x and r with the residual norm of the new r
		// accumulated in the same pass (single accumulator, index order:
		// a fixed, scheduling-independent summation order).
		rr = 0
		for i := range r {
			x[i] += alpha * p[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			rr += ri * ri
		}
		m.Precondition(r, z)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	rel := finalResidualWith(rt, a, b, x, bnorm, ap)
	if iters < maxIter {
		met = true // loop exited on the residual test
	}
	st := Stats{Iterations: iters, RelResidual: rel, Converged: met || rel < tol}
	if !st.Converged {
		return st, fmt.Errorf("%w: CG after %d iterations, relres %.3e", ErrNotConverged, iters, rel)
	}
	return st, nil
}

// GMRES solves A x = b with left-preconditioned restarted GMRES(restart).
// x holds the initial guess on entry and the solution on exit.
func GMRES(rt *par.Runtime, a *sparse.Matrix, b, x []float64, tol float64, maxIter, restart int, m Preconditioner) (Stats, error) {
	return GMRESWith(rt, a, b, x, tol, maxIter, restart, m, nil)
}

// GMRESWith is GMRES with a caller-provided Workspace; repeated solves
// through the same Workspace perform no allocations. ws may be nil.
func GMRESWith(rt *par.Runtime, a *sparse.Matrix, b, x []float64, tol float64, maxIter, restart int, m Preconditioner, ws *Workspace) (Stats, error) {
	n := a.Rows
	if len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("krylov: GMRES size mismatch")
	}
	if m == nil {
		m = Identity()
	}
	if restart <= 0 {
		restart = 50
	}
	if restart > maxIter {
		restart = maxIter
	}
	if ws == nil {
		ws = &Workspace{}
	}
	ws.ensureGMRES(n, restart)

	// Preconditioned right-hand side norm for the stopping test.
	zb := ws.zb
	m.Precondition(b, zb)
	zbnorm := norm2(zb)
	if zbnorm == 0 {
		zbnorm = 1
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}

	r, z, w := ws.r, ws.z, ws.ap
	v := ws.v // Krylov basis
	h := ws.h // Hessenberg, h[i][j]
	cs, sn := ws.cs, ws.sn
	s, y := ws.s, ws.y

	totalIters := 0
	met := false
	for totalIters < maxIter {
		// r = M^{-1}(b - A x)
		a.SpMV(rt, x, r)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		m.Precondition(r, z)
		beta := norm2(z)
		if beta/zbnorm < tol {
			met = true
			break
		}
		inv := 1 / beta
		for i := range z {
			v[0][i] = z[i] * inv
		}
		for i := range s {
			s[i] = 0
		}
		s[0] = beta

		k := 0
		for ; k < restart && totalIters < maxIter; k++ {
			totalIters++
			// w = M^{-1} A v_k
			a.SpMV(rt, v[k], w)
			m.Precondition(w, z)
			copy(w, z)
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = dot(w, v[i])
				axpy(-h[i][k], v[i], w)
			}
			h[k+1][k] = norm2(w)
			if h[k+1][k] > 1e-300 {
				inv := 1 / h[k+1][k]
				for i := range w {
					v[k+1][i] = w[i] * inv
				}
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation to annihilate h[k+1][k].
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k], sn[k] = h[k][k]/denom, h[k+1][k]/denom
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			s[k+1] = -sn[k] * s[k]
			s[k] = cs[k] * s[k]
			if math.Abs(s[k+1])/zbnorm < tol {
				k++
				break
			}
		}
		// Solve the upper triangular system h y = s.
		for i := k - 1; i >= 0; i-- {
			y[i] = s[i]
			for j := i + 1; j < k; j++ {
				y[i] -= h[i][j] * y[j]
			}
			y[i] /= h[i][i]
		}
		for i := 0; i < k; i++ {
			axpy(y[i], v[i], x)
		}
		if k == 0 {
			break // stagnation
		}
	}
	rel := finalResidualWith(rt, a, b, x, bnorm, r)
	st := Stats{Iterations: totalIters, RelResidual: rel, Converged: met || rel < tol}
	if !st.Converged {
		return st, fmt.Errorf("%w: GMRES after %d iterations, relres %.3e", ErrNotConverged, totalIters, rel)
	}
	return st, nil
}

// finalResidualWith computes ||b - Ax|| / bnorm using scratch as the
// residual buffer (its contents are overwritten).
func finalResidualWith(rt *par.Runtime, a *sparse.Matrix, b, x []float64, bnorm float64, scratch []float64) float64 {
	a.SpMV(rt, x, scratch)
	rr := 0.0
	for i := range scratch {
		ri := b[i] - scratch[i]
		rr += ri * ri
	}
	return math.Sqrt(rr) / bnorm
}
