// Quickstart: compute a distance-2 maximal independent set of a mesh
// graph with the public API, verify it, and show the determinism
// guarantee (same result for any worker count).
package main

import (
	"fmt"
	"log"

	"mis2go"
)

func main() {
	// A 64x64x64 grid with a 7-point stencil: the paper's Laplace3D
	// family at laptop scale.
	g := mis2go.Laplace3D(64, 64, 64)
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.2f\n",
		g.N, g.NumEdges()/2, g.AvgDegree())

	// Production configuration: xorshift* per-iteration priorities,
	// worklists, packed tuples, unrolled loops on dense graphs.
	res := mis2go.MIS2(g, mis2go.MISOptions{})
	fmt.Printf("MIS-2: %d vertices (%.1f%% of V) in %d iterations\n",
		len(res.InSet), 100*float64(len(res.InSet))/float64(g.N), res.Iterations)

	if err := mis2go.VerifyMIS2(g, res.InSet); err != nil {
		log.Fatalf("invalid result: %v", err)
	}
	fmt.Println("verified: valid distance-2 maximal independent set")

	// Determinism across worker counts: a single worker produces the
	// exact same set.
	serial := mis2go.MIS2(g, mis2go.MISOptions{Threads: 1})
	if len(serial.InSet) != len(res.InSet) {
		log.Fatal("determinism violated")
	}
	for i := range serial.InSet {
		if serial.InSet[i] != res.InSet[i] {
			log.Fatal("determinism violated")
		}
	}
	fmt.Println("deterministic: 1-worker run matches the parallel run exactly")
}
