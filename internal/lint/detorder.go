package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetOrder checks packages annotated //amg:deterministic (in the
// package comment) for the nondeterminism classes that would silently
// break the 1/2/8-worker bitwise gate:
//
//   - ranging over a map (iteration order is randomized)
//   - time.Now / time.Since / time.Until (wall-clock-dependent results)
//   - the global math/rand source, or rand.NewSource/NewPCG/NewChaCha8
//     with a non-constant seed
//
// A map range whose result is provably order-insensitive (a commutative
// reduction, or output canonicalized by a later sort) may be waived with
// an `//amg:order-ok <why>` comment on the range line or the line above.
// The waiver applies only to map ranges; there is no sanctioned use of
// the wall clock or the global rand source in a deterministic package.
//
// Test files are exempt: the contract covers shipped kernel code, and
// tests legitimately time things and shuffle inputs.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "check //amg:deterministic packages for nondeterministic constructs",
	Run:  runDetOrder,
}

func runDetOrder(pass *Pass) error {
	if !packageHasDirective(pass, "//amg:deterministic") {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		waived := orderOKLines(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := info.TypeOf(n.X)
				if t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						line := pass.Fset.Position(n.Pos()).Line
						if !waived[line] && !waived[line-1] {
							pass.Reportf(n.Pos(), "deterministic package %s ranges over a map (iteration order is randomized)", pass.Pkg.Name())
						}
					}
				}
			case *ast.CallExpr:
				checkDetCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// orderOKLines collects the lines of f carrying an //amg:order-ok
// waiver comment. A waiver suppresses the map-range diagnostic on its
// own line and the line below (the usual comment-above placement).
func orderOKLines(pass *Pass, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, g := range f.Comments {
		for _, c := range g.List {
			if strings.HasPrefix(c.Text, "//amg:order-ok") {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "deterministic package %s reads the wall clock (time.%s)", pass.Pkg.Name(), fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() != nil {
			// Methods on *rand.Rand draw from a source whose seeding is
			// checked at its construction site below.
			return
		}
		switch fn.Name() {
		case "New":
			// Wraps an already-constructed source.
		case "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			for _, arg := range call.Args {
				if tv, ok := pass.TypesInfo.Types[arg]; !ok || tv.Value == nil {
					pass.Reportf(call.Pos(), "deterministic package %s seeds %s.%s with a non-constant value", pass.Pkg.Name(), shortPkgPath(fn.Pkg().Path()), fn.Name())
					return
				}
			}
		default:
			pass.Reportf(call.Pos(), "deterministic package %s uses the global math/rand source (%s.%s)", pass.Pkg.Name(), shortPkgPath(fn.Pkg().Path()), fn.Name())
		}
	}
}
