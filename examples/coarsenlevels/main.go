// Multilevel coarsening example: the multilevel-partitioning use case
// from the paper's introduction (and Gilbert et al.'s application of
// MIS-2 coarsening). Recursively coarsen a mesh graph with Algorithm 3
// until it is small enough for a direct method, printing the level sizes
// and coarsening rates.
package main

import (
	"fmt"

	"mis2go"
)

func main() {
	g := mis2go.Laplace2D(256, 256)
	fmt.Printf("level %2d: %8d vertices %9d edges\n", 0, g.N, g.NumEdges()/2)

	level := 0
	for g.N > 100 && level < 20 {
		agg := mis2go.Aggregate(g, 0)
		coarse := mis2go.CoarseGraph(g, agg)
		level++
		rate := float64(g.N) / float64(coarse.N)
		fmt.Printf("level %2d: %8d vertices %9d edges   (coarsening rate %.1fx, avg aggregate %.1f)\n",
			level, coarse.N, coarse.NumEdges()/2, rate, rate)
		g = coarse
	}
	fmt.Printf("reached %d vertices after %d levels — ready for serial partitioning\n", g.N, level)
}
