package serve

import "fmt"

// FaultPhase names the points in a request's lifecycle where the
// Config.FaultHook is consulted. The hook runs with the request's own
// context, so injection plans carried in context values can target one
// request among many — the property that makes fault-injection stress
// tests deterministic under arbitrary goroutine interleavings.
type FaultPhase int

const (
	// FaultAdmitted fires right after the request passes the admission
	// semaphore, before any cache work. It runs outside the panic
	// isolation sections — hooks must not panic here.
	FaultAdmitted FaultPhase = iota
	// FaultBuild fires inside the full-construction critical section,
	// before the hierarchy build, holding the entry lock. An error or
	// panic here exercises the failed-build path (entry dropped, later
	// requests rebuild).
	FaultBuild
	// FaultRefresh fires inside the numeric-refresh critical section,
	// before any value mutation, holding the entry lock. An error here
	// is a pre-mutation rejection (the entry stays usable); a panic
	// retires the entry.
	FaultRefresh
	// FaultSolve fires inside the batch-leader critical section, after
	// the coalescing window closed and with the entry lock held, just
	// before the CGBatch call. The context is the leader's — followers
	// coalesced into the batch share the outcome. A panic here is the
	// "mid-batch panic" scenario: every follower must be woken with an
	// error wrapping ErrPanic and the entry must be retired, never
	// deadlocked on the condition variable.
	FaultSolve
	// FaultEscalate fires at the start of each escalation-ladder rung,
	// inside the rung's panic isolation, before the rung's hierarchy
	// build. An error fails the rung (the ladder moves on, or stops on
	// a cancellation); a panic stops the ladder with ErrPanic.
	FaultEscalate
)

// String names the phase for logs and test output.
func (p FaultPhase) String() string {
	switch p {
	case FaultAdmitted:
		return "admitted"
	case FaultBuild:
		return "build"
	case FaultRefresh:
		return "refresh"
	case FaultSolve:
		return "solve"
	case FaultEscalate:
		return "escalate"
	}
	return fmt.Sprintf("FaultPhase(%d)", int(p))
}
