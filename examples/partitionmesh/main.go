// Multilevel partitioning example: the paper's future-work application
// (§VII) — use the MIS-2 aggregation as the coarsening step of a
// multilevel graph bisection, and compare against classic heavy-edge
// matching coarsening on edge cut and balance.
package main

import (
	"fmt"
	"log"
	"time"

	"mis2go"
)

func main() {
	g := mis2go.Laplace3D(24, 24, 24)
	fmt.Printf("graph: %d vertices, %d edges\n", g.N, g.NumEdges()/2)

	for _, policy := range []struct {
		name string
		p    mis2go.PartitionOptions
	}{
		{name: "MIS-2 coarsening", p: mis2go.PartitionOptions{Policy: mis2go.PartitionMIS2}},
		{name: "HEM coarsening", p: mis2go.PartitionOptions{Policy: mis2go.PartitionHEM}},
	} {
		start := time.Now()
		res, err := mis2go.Bisect(g, policy.p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s edge cut %5d   balance %.3f   %d levels   %v\n",
			policy.name, res.EdgeCut, res.Balance, res.Levels,
			time.Since(start).Round(time.Millisecond))
	}
}
