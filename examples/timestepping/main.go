// Time-stepping example: the workload the symbolic/numeric setup split
// exists for. An implicit Euler step of a heat equation with a
// time-dependent diffusion coefficient solves
//
//	(I/dt + kappa(t) * L) u_{t+1} = u_t / dt
//
// every step: the operator's sparsity pattern never changes while its
// values do. The AMG symbolic phase (graph extraction, MIS-2
// aggregation, SpGEMM patterns) runs once via NewAMGSymbolic; each step
// re-runs only the cheap numeric phase with Hierarchy.Refresh and
// solves through a reused CG workspace — zero steady-state allocations
// in both the re-setup and the solve.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mis2go"
)

func main() {
	const (
		side  = 32
		steps = 10
		dt    = 0.05
	)
	g := mis2go.Laplace3D(side, side, side)
	base := mis2go.GraphLaplacian(g, 0) // kappa-independent stiffness L
	n := base.Rows
	fmt.Printf("problem: Laplace3D %d^3 = %d unknowns, %d nonzeros, %d implicit Euler steps\n",
		side, n, base.NNZ(), steps)

	// The stepped operator shares L's pattern; diagPos locates the
	// diagonal entries the I/dt term lands on.
	a := base.Clone()
	diagPos := make([]int, n)
	for i := 0; i < n; i++ {
		diagPos[i] = -1
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.Col[p]) == i {
				diagPos[i] = p
				break
			}
		}
		if diagPos[i] < 0 {
			log.Fatalf("row %d has no diagonal entry", i)
		}
	}
	// assemble writes A(t) = kappa(t)*L + I/dt in place (same pattern).
	assemble := func(t float64) {
		kappa := 1 + 0.5*math.Sin(2*math.Pi*t)
		for p := range a.Val {
			a.Val[p] = kappa * base.Val[p]
		}
		for _, p := range diagPos {
			a.Val[p] += 1 / dt
		}
	}

	// Symbolic setup once; the first numeric fill completes the build.
	assemble(0)
	start := time.Now()
	h, err := mis2go.NewAMGSymbolic(a, mis2go.AMGOptions{})
	if err != nil {
		log.Fatal(err)
	}
	symbolic := time.Since(start)
	start = time.Now()
	if err := h.BuildNumeric(a); err != nil {
		log.Fatal(err)
	}
	numeric := time.Since(start)
	fmt.Printf("setup: %d levels, operator complexity %.2f — symbolic %v + numeric %v\n",
		h.NumLevels(), h.OperatorComplexity(), symbolic.Round(time.Millisecond), numeric.Round(time.Millisecond))

	u := make([]float64, n)
	rhs := make([]float64, n)
	x := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(0.01*float64(i)) + 1 // initial temperature field
	}
	ws := mis2go.NewSolverWorkspace(n)

	var refreshTotal, solveTotal time.Duration
	for step := 1; step <= steps; step++ {
		t := float64(step) * dt
		assemble(t)
		start = time.Now()
		if err := h.Refresh(a); err != nil {
			log.Fatal(err)
		}
		refreshTotal += time.Since(start)

		for i := range rhs {
			rhs[i] = u[i] / dt
			x[i] = u[i] // warm start from the previous field
		}
		start = time.Now()
		st, err := mis2go.SolveCGWith(a, rhs, x, 1e-10, 200, h, 0, ws)
		if err != nil {
			log.Fatal(err)
		}
		solveTotal += time.Since(start)
		copy(u, x)
		fmt.Printf("step %2d: kappa %.3f, %2d CG iterations, relres %.2e\n",
			step, 1+0.5*math.Sin(2*math.Pi*t), st.Iterations, st.RelResidual)
	}

	// What the cached symbolic phase saved: one full rebuild per step.
	start = time.Now()
	if _, err := mis2go.NewAMG(a, mis2go.AMGOptions{}); err != nil {
		log.Fatal(err)
	}
	fullSetup := time.Since(start)
	meanRefresh := refreshTotal / steps
	fmt.Printf("re-setup: mean %v/step vs full rebuild %v (%.1fx faster); total solve %v\n",
		meanRefresh.Round(time.Microsecond), fullSetup.Round(time.Millisecond),
		fullSetup.Seconds()/meanRefresh.Seconds(), solveTotal.Round(time.Millisecond))
}
