// Package lockcopy exercises the lockcopy analyzer: values holding
// sync or sync/atomic state must not be copied.
package lockcopy

import (
	"sync"
	"sync/atomic"
)

type Guarded struct {
	mu sync.Mutex
	n  int
}

// Wrapper holds a Guarded by value: copies of it are flagged too.
type Wrapper struct{ g Guarded }

// Count holds an atomic value: same contract.
type Count struct{ n atomic.Int64 }

func byValue(g Guarded) int { // want `parameter .* passed by value`
	return g.n
}

func (g Guarded) valueRecv() int { // want `receiver .* passed by value`
	return g.n
}

func (g *Guarded) pointerRecv() int { // pointers are fine
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func copies(list []Guarded, p *Guarded, w *Wrapper, c *Count) {
	g := *p // want `assignment copies`
	_ = g
	wv := *w // want `assignment copies`
	_ = wv
	cv := *c // want `assignment copies`
	_ = cv
	for _, v := range list { // want `range value copies`
		_ = v.n
	}
	for i := range list { // indexing is fine
		list[i].mu.Lock()
		list[i].mu.Unlock()
	}
}

func ret(p *Guarded) Guarded {
	return *p // want `return copies`
}

func fresh() *Guarded {
	g := Guarded{n: 1} // composite literals are fresh values: fine
	return &g
}

func sink(g Guarded) {} // want `parameter .* passed by value`

func callByValue(p *Guarded) {
	sink(*p) // want `call passes .* by value`
}
