package sparse

import (
	"math"
	"testing"

	"mis2go/internal/par"
)

// testMatrix builds a deterministic sparse band matrix with rows rows and
// cols cols, ~5 entries per row, mixed-sign values.
func testMatrix(t *testing.T, rows, cols int) *Matrix {
	t.Helper()
	m := &Matrix{Rows: rows, Cols: cols}
	m.RowPtr = make([]int, rows+1)
	for i := 0; i < rows; i++ {
		for _, off := range []int{-7, -1, 0, 1, 9} {
			j := i + off
			if j < 0 || j >= cols {
				continue
			}
			m.Col = append(m.Col, int32(j))
			m.Val = append(m.Val, float64((i*31+j*17)%13)-6+0.25)
		}
		m.RowPtr[i+1] = len(m.Col)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("test matrix invalid: %v", err)
	}
	return m
}

// refSpMM is the scalar reference: per column, a single accumulator in
// index order — the summation order SpMM's kernels promise.
func refSpMM(a *Matrix, k int, x, y []float64) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < k; j++ {
			s := 0.0
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				s += a.Val[p] * x[int(a.Col[p])*k+j]
			}
			y[i*k+j] = s
		}
	}
}

func TestSpMMMatchesReference(t *testing.T) {
	for _, dims := range [][2]int{{300, 300}, {240, 90}, {90, 240}} {
		a := testMatrix(t, dims[0], dims[1])
		for _, k := range []int{1, 2, 3, 4, 5, 8, 11} {
			x := make([]float64, a.Cols*k)
			for i := range x {
				x[i] = float64((i*7)%19) - 9
			}
			want := make([]float64, a.Rows*k)
			refSpMM(a, k, x, want)
			for _, workers := range []int{1, 2, 8} {
				y := make([]float64, a.Rows*k)
				a.SpMM(par.New(workers), k, x, y)
				for i := range y {
					if k == 1 {
						// SpMV's unrolled kernel has its own fixed
						// summation order; compare within round-off.
						if math.Abs(y[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
							t.Fatalf("%dx%d k=%d w=%d: y[%d]=%g, want %g", dims[0], dims[1], k, workers, i, y[i], want[i])
						}
						continue
					}
					if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%dx%d k=%d w=%d: y[%d]=%g, want %g (bitwise)", dims[0], dims[1], k, workers, i, y[i], want[i])
					}
				}
			}
		}
	}
}

func TestSpMVResidualAndAddMatchUnfused(t *testing.T) {
	a := testMatrix(t, 500, 500)
	x := make([]float64, a.Cols)
	b := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i%11) - 5
		b[i] = float64(i%7) - 3
	}
	ax := make([]float64, a.Rows)
	for _, workers := range []int{1, 2, 8} {
		rt := par.New(workers)
		a.SpMV(rt, x, ax)

		r := make([]float64, a.Rows)
		a.SpMVResidual(rt, b, x, r)
		for i := range r {
			want := b[i] - ax[i]
			if math.Float64bits(r[i]) != math.Float64bits(want) {
				t.Fatalf("w=%d: residual[%d]=%g, want %g (bitwise)", workers, i, r[i], want)
			}
		}

		y := make([]float64, a.Rows)
		for i := range y {
			y[i] = float64(i%5) - 2
		}
		want := make([]float64, a.Rows)
		for i := range want {
			want[i] = y[i] + ax[i]
		}
		a.SpMVAdd(rt, x, y)
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
				t.Fatalf("w=%d: add[%d]=%g, want %g (bitwise)", workers, i, y[i], want[i])
			}
		}
	}
}

// TestSmoothProlongatorMatchesComposition pins the fused one-pass
// Gustavson kernel against the three-step composition it replaced
// (row-scale copy, Multiply, Add): identical pattern and bitwise
// identical values, for every worker count.
func TestSmoothProlongatorMatchesComposition(t *testing.T) {
	a := testMatrix(t, 200, 200)
	// An aggregation-shaped P0: one entry per row, 40 coarse columns.
	p0 := &Matrix{Rows: 200, Cols: 40}
	p0.RowPtr = make([]int, 201)
	for i := 0; i < 200; i++ {
		p0.Col = append(p0.Col, int32((i/5)%40))
		p0.Val = append(p0.Val, 1)
		p0.RowPtr[i+1] = i + 1
	}
	dinv := make([]float64, a.Rows)
	for i := range dinv {
		dinv[i] = 1 / (1.5 + float64(i%9))
	}
	const omega = 0.61
	rt := par.New(1)

	// Reference: the seed's three-step composition.
	s := a.Clone()
	for i := 0; i < s.Rows; i++ {
		for q := s.RowPtr[i]; q < s.RowPtr[i+1]; q++ {
			s.Val[q] *= dinv[i]
		}
	}
	sp, err := Multiply(rt, s, p0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Add(p0, sp, -omega)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		got, err := SmoothProlongator(par.New(workers), a, p0, dinv, omega)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows != want.Rows || got.Cols != want.Cols || got.NNZ() != want.NNZ() {
			t.Fatalf("w=%d: shape %dx%d nnz %d, want %dx%d nnz %d",
				workers, got.Rows, got.Cols, got.NNZ(), want.Rows, want.Cols, want.NNZ())
		}
		for i := 0; i <= got.Rows; i++ {
			if got.RowPtr[i] != want.RowPtr[i] {
				t.Fatalf("w=%d: RowPtr[%d]=%d, want %d", workers, i, got.RowPtr[i], want.RowPtr[i])
			}
		}
		for p := range got.Col {
			if got.Col[p] != want.Col[p] {
				t.Fatalf("w=%d: Col[%d]=%d, want %d", workers, p, got.Col[p], want.Col[p])
			}
			if math.Float64bits(got.Val[p]) != math.Float64bits(want.Val[p]) {
				t.Fatalf("w=%d: Val[%d]=%g, want %g (bitwise)", workers, p, got.Val[p], want.Val[p])
			}
		}
	}

	// Dimension mismatches are rejected.
	if _, err := SmoothProlongator(rt, a, &Matrix{Rows: 3, Cols: 2, RowPtr: []int{0, 0, 0, 0}}, dinv, omega); err == nil {
		t.Fatal("mismatched inner dimension accepted")
	}
	if _, err := SmoothProlongator(rt, a, p0, dinv[:10], omega); err == nil {
		t.Fatal("short dinv accepted")
	}
}

func TestSpMMZeroAllocsSerial(t *testing.T) {
	a := testMatrix(t, 600, 600)
	for _, k := range []int{4, 8, 5} {
		x := make([]float64, a.Cols*k)
		y := make([]float64, a.Rows*k)
		for i := range x {
			x[i] = float64(i % 3)
		}
		rt := par.New(1)
		allocs := testing.AllocsPerRun(10, func() {
			a.SpMM(rt, k, x, y)
		})
		if allocs != 0 {
			t.Fatalf("SpMM k=%d: %v allocs/op, want 0", k, allocs)
		}
	}
}
