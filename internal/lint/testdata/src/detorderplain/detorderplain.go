// Package detorderplain has no //amg:deterministic directive: the
// detorder analyzer must stay silent on all of it.
package detorderplain

import "time"

func mapRange(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

func clock() time.Time { return time.Now() }
