// Package schwarz implements a two-level overlapping additive Schwarz
// preconditioner, the domain-decomposition use of graph coarsening the
// paper's introduction cites (Heinlein et al., FROSch). It composes this
// repository's pieces end to end: the multilevel partitioner (itself
// built on MIS-2 coarsening) splits the matrix graph into subdomains,
// each subdomain is extended by overlap layers and solved locally —
// dense LU below a size cutoff, a per-subdomain AMG hierarchy above it —
// and the optional coarse level is the Galerkin operator of an MIS-2
// aggregation, so both levels of the preconditioner are driven by the
// paper's kernel.
//
// The preconditioner decomposes into independently buildable and
// refreshable components — Layout (partition + overlapped row sets,
// pattern-only), Subdomain (one local solver), Coarse (the second
// level) — assembled into a Preconditioner that owns only per-instance
// vector scratch. Components carry their own locks and serialize their
// applies, so several assembled Preconditioners may share one component
// set concurrently (the serve package's sharded mode does exactly
// this); each assembled instance is itself single-caller.
//
// Setup follows the symbolic/numeric split of the amg package:
// Refresh(a) replays numeric-only work (local value gathers and
// refactorizations, RAP plan replay on the coarse level) for an operator
// with the pattern New saw, with the same two-zone validity semantics as
// amg.Hierarchy — pre-mutation rejections leave the previous state
// usable, mid-replay failures invalidate the preconditioner (Valid
// reports false and Precondition panics) until a Refresh succeeds.
//
// Determinism: subdomain applies fan across the par worker pool with one
// block per subdomain, each writing request-local scratch, and all
// global accumulation is serialized in subdomain order — results are
// bitwise identical for every worker count, for a fixed partition.
//
//amg:deterministic
package schwarz

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"mis2go/internal/amg"
	"mis2go/internal/coarsen"
	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/par"
	"mis2go/internal/partition"
	"mis2go/internal/sparse"
)

// ErrCanceled is wrapped by ApplyCtx, NewCtx, and RefreshCtx when their
// context is canceled. The returned error also wraps the context's
// cause, so callers can use errors.Is against either sentinel. A
// canceled apply never writes a partial result: the output vector is
// only touched in the final accumulation phase, after the last
// cancellation check.
var ErrCanceled = errors.New("schwarz: canceled")

// DefaultLocalAMGThreshold is the subdomain size above which the local
// solver is a per-subdomain AMG hierarchy instead of a dense LU
// factorization (Options.LocalAMGThreshold zero value). Dense local
// solves cost O(rows³) to factorize and O(rows²) to apply, which is the
// right trade only while subdomains stay small.
const DefaultLocalAMGThreshold = 1024

// Options configures New. Zero values select the noted defaults.
type Options struct {
	// Subdomains is the number of subdomains, rounded up to a power of
	// two for the recursive-bisection partitioner. Default: n/256, at
	// least 2. The effective counts are reported in Stats.
	Subdomains int
	// Overlap is the number of BFS layers added around each subdomain.
	// The zero value defaults to 1 unless OverlapSet is true, in which
	// case Overlap 0 is honored as written: pure block Jacobi.
	Overlap int
	// OverlapSet marks Overlap as explicitly chosen. Without it an
	// Overlap of 0 is indistinguishable from "unset" and silently
	// becomes 1, so explicit block Jacobi would be inexpressible.
	OverlapSet bool
	// NoCoarse disables the second (coarse) level.
	NoCoarse bool
	// LocalAMGThreshold is the subdomain row count above which the
	// local solver is a per-subdomain AMG hierarchy (numeric-only
	// Refresh via the symbolic/numeric split) instead of a dense LU.
	// 0 selects DefaultLocalAMGThreshold; negative forces dense LU
	// everywhere (subject to sparse.MaxDenseN). The same cutoff picks
	// the coarse-level solver.
	LocalAMGThreshold int
	// Threads is the worker count for partitioning, coarse-level setup,
	// and the fan of subdomain applies (0 = GOMAXPROCS). Per-subdomain
	// AMG hierarchies are always built single-threaded: their applies
	// run inside the pooled subdomain fan, where a nested pool handoff
	// is not allowed — the fan across subdomains is the parallelism.
	Threads int
}

// localCutoff resolves LocalAMGThreshold's zero/negative conventions.
func (o Options) localCutoff() int {
	switch {
	case o.LocalAMGThreshold < 0:
		return math.MaxInt
	case o.LocalAMGThreshold == 0:
		return DefaultLocalAMGThreshold
	default:
		return o.LocalAMGThreshold
	}
}

// effective resolves the requested subdomain count and overlap for an
// n-row operator: the power-of-two rounding and the Overlap/OverlapSet
// defaulting rule, in one place, so Stats always reports what actually
// ran.
func (o Options) effective(n int) (requested, parts, overlap int) {
	requested = o.Subdomains
	if requested <= 0 {
		requested = n / 256
	}
	if requested < 2 {
		requested = 2
	}
	parts = requested
	for parts&(parts-1) != 0 {
		parts++
	}
	overlap = o.Overlap
	if overlap == 0 && !o.OverlapSet {
		overlap = 1
	}
	return requested, parts, overlap
}

// Stats reports the effective configuration a preconditioner was built
// with — the counts after defaulting and rounding, which Options alone
// does not determine.
type Stats struct {
	// RequestedSubdomains is Options.Subdomains after defaulting
	// (n/256, at least 2), before power-of-two rounding.
	RequestedSubdomains int
	// Parts is the power-of-two part count handed to the partitioner —
	// RequestedSubdomains rounded up.
	Parts int
	// Subdomains is the number of local solves actually built; the
	// partitioner may leave parts empty on small or disconnected
	// graphs, so this can be below Parts.
	Subdomains int
	// Overlap is the effective BFS overlap depth (after the
	// OverlapSet defaulting rule).
	Overlap int
	// AMGLocal and DenseLocal split Subdomains by local solver kind
	// (per-subdomain AMG hierarchy above the size cutoff, dense LU
	// below).
	AMGLocal, DenseLocal int
	// CoarseSize is the dimension of the aggregation coarse space
	// (0 when the coarse level is disabled); CoarseAMG reports whether
	// the coarse system itself is solved by an AMG hierarchy rather
	// than a dense factorization.
	CoarseSize int
	CoarseAMG  bool
}

// Layout is the pattern-only decomposition state: the k-way partition
// of the operator's graph and the overlapped, sorted row set of each
// nonempty part. A Layout depends only on the sparsity pattern, so it
// is shared verbatim across numeric refreshes and keyed by pattern ×
// partition fingerprints in caches.
type Layout struct {
	// N is the operator dimension.
	N int
	// Sets holds the ascending global rows of each overlapped
	// subdomain, one per nonempty part.
	Sets [][]int32
	// PartitionFP is the deterministic partition fingerprint
	// (partition.Fingerprint over the k-way labels), for composing
	// sharded cache keys with hash.PatternFingerprint.
	PartitionFP uint64
	// MatrixFP is the pattern fingerprint of the operator the layout
	// was derived from; Refresh checks new values against it.
	MatrixFP uint64
	// Stats carries the partition-side effective counts
	// (RequestedSubdomains, Parts, Subdomains, Overlap).
	Stats Stats

	g *graph.CSR // the operator's graph, kept for coarse-level setup
}

// NewLayout partitions a's graph into overlapped subdomain row sets.
func NewLayout(a *sparse.Matrix, opt Options) (*Layout, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("schwarz: matrix must be square")
	}
	n := a.Rows
	if n == 0 {
		return nil, errors.New("schwarz: empty matrix")
	}
	if opt.Overlap < 0 {
		return nil, fmt.Errorf("schwarz: negative overlap %d", opt.Overlap)
	}
	requested, parts, overlap := opt.effective(n)

	rt := par.New(opt.Threads)
	g := a.GraphWith(rt)
	kw, err := partition.KWay(g, parts, partition.Options{Threads: opt.Threads})
	if err != nil {
		return nil, fmt.Errorf("schwarz: partitioning: %w", err)
	}

	lay := &Layout{
		N:           n,
		PartitionFP: kw.Fingerprint(),
		MatrixFP:    hash.PatternFingerprint(a.Rows, a.Cols, a.RowPtr, a.Col),
		g:           g,
	}
	inSub := make([]int32, n)
	for i := range inSub {
		inSub[i] = -1
	}
	for part := 0; part < parts; part++ {
		// Collect the subdomain rows, then grow by BFS layers.
		var rows []int32
		for v := 0; v < n; v++ {
			if kw.Part[v] == int32(part) {
				rows = append(rows, int32(v))
				inSub[v] = int32(part)
			}
		}
		if len(rows) == 0 {
			continue
		}
		frontier := rows
		for layer := 0; layer < overlap; layer++ {
			var next []int32
			for _, v := range frontier {
				for _, w := range g.Neighbors(v) {
					if inSub[w] != int32(part) {
						inSub[w] = int32(part)
						next = append(next, w)
						rows = append(rows, w)
					}
				}
			}
			frontier = next
		}
		sortInt32(rows)
		lay.Sets = append(lay.Sets, rows)
		// Reset the overlap marks of rows not owned by this part so
		// later parts see a clean slate.
		for _, v := range rows {
			if kw.Part[v] != int32(part) {
				inSub[v] = -1
			}
		}
	}
	lay.Stats = Stats{
		RequestedSubdomains: requested,
		Parts:               parts,
		Subdomains:          len(lay.Sets),
		Overlap:             overlap,
	}
	return lay, nil
}

// Subdomain is one local solver: the overlapped row set, the local
// submatrix A(rows, rows) with a cached gather schedule back into the
// global CSR, and either a dense LU factorization (small subdomains) or
// a per-subdomain AMG hierarchy (large ones). A mutex serializes Solve
// and Refresh, so one Subdomain may be shared by concurrent assembled
// Preconditioners; Refresh additionally requires that no sharer is
// mid-apply (callers coordinate that — the serve package drains
// in-flight solves first).
type Subdomain struct {
	mu     sync.Mutex
	rows   []int32
	gather []int32 // local entry -> global entry index in the source CSR
	local  *sparse.Matrix
	lu     *sparse.Dense
	h      *amg.Hierarchy
}

// NewSubdomain builds the local solver for the overlapped row set rows
// of a (ascending global indices). The local values are copied out of
// a; a is not retained.
func NewSubdomain(a *sparse.Matrix, rows []int32, opt Options) (*Subdomain, error) {
	m := len(rows)
	pos := make(map[int32]int32, m)
	for i, v := range rows {
		pos[v] = int32(i)
	}
	local := &sparse.Matrix{Rows: m, Cols: m, RowPtr: make([]int, m+1)}
	var gather []int32
	for i, v := range rows {
		for q := a.RowPtr[v]; q < a.RowPtr[v+1]; q++ {
			if j, ok := pos[a.Col[q]]; ok {
				local.Col = append(local.Col, j)
				local.Val = append(local.Val, a.Val[q])
				gather = append(gather, int32(q))
			}
		}
		local.RowPtr[i+1] = len(local.Col)
	}
	sd := &Subdomain{rows: rows, gather: gather, local: local}
	if m > opt.localCutoff() {
		// Per-subdomain AMG: symbolic once here, numeric replays on
		// Refresh. Single-threaded by design — see Options.Threads.
		h, err := amg.BuildSymbolic(local, localAMGOptions())
		if err != nil {
			return nil, fmt.Errorf("local AMG setup: %w", err)
		}
		if err := h.BuildNumeric(local); err != nil {
			return nil, fmt.Errorf("local AMG numeric setup: %w", err)
		}
		sd.h = h
		return sd, nil
	}
	lu, err := sparse.NewDense(m)
	if err != nil {
		return nil, fmt.Errorf("subdomain too large for a dense solve (%d rows): %w; increase Subdomains or lower LocalAMGThreshold", m, err)
	}
	if err := lu.FillFrom(local); err != nil {
		return nil, err
	}
	if err := lu.Factorize(); err != nil {
		return nil, fmt.Errorf("local factorization: %w", err)
	}
	sd.lu = lu
	return sd, nil
}

// localAMGOptions is the configuration of per-subdomain hierarchies:
// single-threaded (the applies run inside the pooled subdomain fan,
// which must not nest pool handoffs — and serial local solves are what
// make results independent of the outer worker count trivially), all
// else at the amg defaults.
func localAMGOptions() amg.Options { return amg.Options{Threads: 1} }

// Refresh gathers the operator's current values through the cached
// entry schedule and replays the numeric-only setup: refactorization
// for dense locals, BuildNumeric (the same plan-replay path as
// amg.Hierarchy.Refresh, minus the history-dependent sign check —
// independent value sets may legally disagree on diagonal signs of the
// overlap region) for AMG locals. The caller must guarantee a has the
// pattern the subdomain was built from and that no sharer is mid-apply.
func (sd *Subdomain) Refresh(a *sparse.Matrix) error {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	for j, q := range sd.gather {
		sd.local.Val[j] = a.Val[q]
	}
	if sd.h != nil {
		return sd.h.BuildNumeric(sd.local)
	}
	if err := sd.lu.FillFrom(sd.local); err != nil {
		return err
	}
	return sd.lu.Factorize()
}

// SameValues reports whether a's values restricted to this subdomain
// are bitwise identical to the values the local solver currently holds
// — the per-subdomain "pay nothing" test of sharded caches.
func (sd *Subdomain) SameValues(a *sparse.Matrix) bool {
	for j, q := range sd.gather {
		if math.Float64bits(sd.local.Val[j]) != math.Float64bits(a.Val[q]) {
			return false
		}
	}
	return true
}

// Solve applies the local solver, z = A_i⁻¹ r, in the subdomain's local
// indexing (r and z are caller-owned, length NumRows). The internal
// solver state is serialized by the subdomain's mutex, so concurrent
// holders interleave applies safely.
func (sd *Subdomain) Solve(r, z []float64) {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	if sd.h != nil {
		sd.h.Precondition(r, z)
		return
	}
	sd.lu.Solve(r, z)
}

// Rows returns the ascending global rows of the overlapped subdomain
// (caller must not mutate).
func (sd *Subdomain) Rows() []int32 { return sd.rows }

// NumRows reports the overlapped subdomain size.
func (sd *Subdomain) NumRows() int { return len(sd.rows) }

// UsesAMG reports whether the local solver is an AMG hierarchy.
func (sd *Subdomain) UsesAMG() bool { return sd.h != nil }

// Coarse is the second level: the MIS-2 aggregation coarse space with
// its Galerkin operator Ac = P0ᵀ A P0, refreshed through a cached RAP
// plan, and a direct or AMG solver for the coarse system. The tentative
// prolongator's values depend only on aggregate sizes (the pattern), so
// P0 and R0 = P0ᵀ are computed once and only the RAP replay is numeric
// work. A mutex serializes Solve and Refresh, like Subdomain.
type Coarse struct {
	mu     sync.Mutex
	p0, r0 *sparse.Matrix
	rap    *sparse.RAPPlan
	ac     *sparse.Matrix
	lu     *sparse.Dense
	h      *amg.Hierarchy
	nc     int
}

// NewCoarse builds the coarse level for a using the layout's graph.
func NewCoarse(rt *par.Runtime, a *sparse.Matrix, lay *Layout, opt Options) (*Coarse, error) {
	agg := coarsen.MIS2Aggregation(lay.g, coarsen.Options{Threads: opt.Threads})
	p0 := coarsen.Prolongator(agg)
	tp := sparse.PlanTranspose(rt, p0)
	r0 := tp.NewMatrix()
	if err := tp.Numeric(rt, p0, r0); err != nil {
		return nil, fmt.Errorf("schwarz: coarse restriction: %w", err)
	}
	rap, err := sparse.PlanRAP(rt, r0, a, p0)
	if err != nil {
		return nil, fmt.Errorf("schwarz: coarse Galerkin plan: %w", err)
	}
	ac := rap.NewMatrix()
	if err := rap.Numeric(rt, r0, a, p0, ac); err != nil {
		return nil, fmt.Errorf("schwarz: coarse Galerkin: %w", err)
	}
	c := &Coarse{p0: p0, r0: r0, rap: rap, ac: ac, nc: agg.NumAggregates}
	cutoff := opt.localCutoff()
	if cutoff > sparse.MaxDenseN {
		cutoff = sparse.MaxDenseN
	}
	if c.nc <= cutoff {
		lu, err := sparse.NewDense(c.nc)
		if err != nil {
			return nil, err
		}
		if err := lu.FillFrom(ac); err != nil {
			return nil, err
		}
		if err := lu.Factorize(); err != nil {
			return nil, fmt.Errorf("schwarz: coarse factorization: %w", err)
		}
		c.lu = lu
		return c, nil
	}
	h, err := amg.BuildSymbolic(ac, amg.Options{Threads: opt.Threads})
	if err != nil {
		return nil, fmt.Errorf("schwarz: coarse AMG setup: %w", err)
	}
	if err := h.BuildNumeric(ac); err != nil {
		return nil, fmt.Errorf("schwarz: coarse AMG numeric setup: %w", err)
	}
	c.h = h
	return c, nil
}

// Refresh replays the numeric coarse setup against a's current values:
// the RAP plan replay and the refactorization (or AMG numeric replay)
// of the coarse system. Same caller contract as Subdomain.Refresh.
func (c *Coarse) Refresh(rt *par.Runtime, a *sparse.Matrix) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.rap.Replay(rt, c.r0, a, c.p0, c.ac); err != nil {
		return err
	}
	if c.h != nil {
		return c.h.BuildNumeric(c.ac)
	}
	if err := c.lu.FillFrom(c.ac); err != nil {
		return err
	}
	return c.lu.Factorize()
}

// Solve solves the coarse system, cz = Ac⁻¹ cr (both length NumCoarse,
// caller-owned), serialized by the coarse level's mutex.
func (c *Coarse) Solve(cr, cz []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.h != nil {
		c.h.Precondition(cr, cz)
		return
	}
	c.lu.Solve(cr, cz)
}

// NumCoarse reports the coarse-space dimension.
func (c *Coarse) NumCoarse() int { return c.nc }

// UsesAMG reports whether the coarse solver is an AMG hierarchy.
func (c *Coarse) UsesAMG() bool { return c.h != nil }

// restrict computes cr = P0ᵀ r. P0 is immutable after construction, so
// this needs no lock and may run concurrently with other restricts.
func (c *Coarse) restrict(r, cr []float64) {
	for i := range cr {
		cr[i] = 0
	}
	p := c.p0
	for v := 0; v < p.Rows; v++ {
		for q := p.RowPtr[v]; q < p.RowPtr[v+1]; q++ {
			cr[p.Col[q]] += p.Val[q] * r[v]
		}
	}
}

// prolongAdd computes z += P0 cz (lock-free like restrict).
func (c *Coarse) prolongAdd(cz, z []float64) {
	p := c.p0
	for v := 0; v < p.Rows; v++ {
		for q := p.RowPtr[v]; q < p.RowPtr[v+1]; q++ {
			z[v] += p.Val[q] * cz[p.Col[q]]
		}
	}
}

// Preconditioner is an assembled additive Schwarz operator; it
// implements krylov.Preconditioner. An instance is single-caller (it
// owns per-apply vector scratch), but instances assembled over the same
// components may be used concurrently: component state is serialized
// internally.
type Preconditioner struct {
	n      int
	rt     *par.Runtime
	lay    *Layout
	subs   []*Subdomain
	coarse *Coarse
	// Request-local apply scratch: per-subdomain gather/solution
	// buffers and the coarse-space pair.
	rbuf, zbuf [][]float64
	cr, cz     []float64
	valid      bool
	stats      Stats
}

// Assemble wires prebuilt components into an applyable Preconditioner
// with fresh per-instance scratch. Components may be shared across
// assembled instances; see the type comment.
func Assemble(rt *par.Runtime, lay *Layout, subs []*Subdomain, coarse *Coarse) (*Preconditioner, error) {
	if len(subs) != len(lay.Sets) {
		return nil, fmt.Errorf("schwarz: %d subdomains for a layout with %d sets", len(subs), len(lay.Sets))
	}
	p := &Preconditioner{
		n: lay.N, rt: rt, lay: lay, subs: subs, coarse: coarse,
		rbuf: make([][]float64, len(subs)),
		zbuf: make([][]float64, len(subs)),
	}
	st := lay.Stats
	for i, sd := range subs {
		p.rbuf[i] = make([]float64, sd.NumRows())
		p.zbuf[i] = make([]float64, sd.NumRows())
		if sd.UsesAMG() {
			st.AMGLocal++
		} else {
			st.DenseLocal++
		}
	}
	if coarse != nil {
		p.cr = make([]float64, coarse.nc)
		p.cz = make([]float64, coarse.nc)
		st.CoarseSize = coarse.nc
		st.CoarseAMG = coarse.h != nil
	}
	p.stats = st
	p.valid = true
	return p, nil
}

// New builds the preconditioner for the SPD operator a. Only CSR
// operators (*sparse.Matrix) are accepted: subdomain extraction needs
// the entry arrays, which apply-only formats do not expose.
func New(a sparse.Operator, opt Options) (*Preconditioner, error) {
	return NewCtx(nil, a, opt)
}

// NewCtx is New with cooperative cancellation, checked between
// subdomain builds and before the coarse level. ctx may be nil (never
// cancels).
func NewCtx(ctx context.Context, a sparse.Operator, opt Options) (*Preconditioner, error) {
	m, err := csrMatrix(a)
	if err != nil {
		return nil, err
	}
	lay, err := NewLayout(m, opt)
	if err != nil {
		return nil, err
	}
	rt := par.New(opt.Threads)
	subs := make([]*Subdomain, len(lay.Sets))
	for i, rows := range lay.Sets {
		if err := ctxErr(ctx); err != nil {
			return nil, cancelErr(ctx)
		}
		if subs[i], err = NewSubdomain(m, rows, opt); err != nil {
			return nil, fmt.Errorf("schwarz: subdomain %d: %w", i, err)
		}
	}
	var coarse *Coarse
	if !opt.NoCoarse {
		if err := ctxErr(ctx); err != nil {
			return nil, cancelErr(ctx)
		}
		if coarse, err = NewCoarse(rt, m, lay, opt); err != nil {
			return nil, err
		}
	}
	return Assemble(rt, lay, subs, coarse)
}

// Refresh replays the numeric-only setup for an operator with the same
// pattern New saw: per-subdomain value gathers and refactorizations (or
// AMG numeric replays) plus the coarse RAP replay. Validity follows the
// amg.Hierarchy two-zone rule: rejections before any mutation (pattern
// mismatch, wrong shape, early cancellation) leave the previous state
// fully usable; failures after mutation began invalidate the
// preconditioner until a Refresh succeeds. Refresh is for
// preconditioners that own their components (built by New); refreshing
// shared components under a live sharer corrupts its applies.
func (p *Preconditioner) Refresh(a sparse.Operator) error {
	return p.RefreshCtx(nil, a)
}

// RefreshCtx is Refresh with cooperative cancellation, checked between
// subdomain refreshes. ctx may be nil (never cancels).
func (p *Preconditioner) RefreshCtx(ctx context.Context, a sparse.Operator) error {
	m, err := csrMatrix(a)
	if err != nil {
		return err
	}
	if m.Rows != p.n || m.Cols != p.n {
		return fmt.Errorf("schwarz: Refresh with %dx%d operator, preconditioner built for %dx%d", m.Rows, m.Cols, p.n, p.n)
	}
	if hash.PatternFingerprint(m.Rows, m.Cols, m.RowPtr, m.Col) != p.lay.MatrixFP {
		return errors.New("schwarz: Refresh pattern differs from the pattern New saw; rebuild with New")
	}
	if err := ctxErr(ctx); err != nil {
		return cancelErr(ctx) // pre-mutation: previous state stays usable
	}
	for i, sd := range p.subs {
		if err := sd.Refresh(m); err != nil {
			p.valid = false
			return fmt.Errorf("schwarz: subdomain %d refresh: %w", i, err)
		}
		if err := ctxErr(ctx); err != nil {
			p.valid = false // mid-replay: mixed values across subdomains
			return cancelErr(ctx)
		}
	}
	if p.coarse != nil {
		if err := p.coarse.Refresh(p.rt, m); err != nil {
			p.valid = false
			return fmt.Errorf("schwarz: coarse refresh: %w", err)
		}
	}
	p.valid = true
	return nil
}

// Valid reports whether the preconditioner has a consistent numeric
// state (false only after a mid-replay Refresh failure, until a Refresh
// succeeds).
func (p *Preconditioner) Valid() bool { return p.valid }

// checkValid panics on use of an invalidated preconditioner: applying
// half-refreshed subdomains would silently corrupt results, so misuse
// fails loudly instead (the amg.Hierarchy convention).
func (p *Preconditioner) checkValid() {
	if !p.valid {
		panic("schwarz: preconditioner has no valid numeric state (the last Refresh failed mid-replay); run Refresh successfully or rebuild with New before applying")
	}
}

// NumSubdomains reports how many local solves the preconditioner
// applies.
func (p *Preconditioner) NumSubdomains() int { return len(p.subs) }

// HasCoarse reports whether the coarse level is active.
func (p *Preconditioner) HasCoarse() bool { return p.coarse != nil }

// Stats reports the effective configuration (see Stats).
func (p *Preconditioner) Stats() Stats { return p.stats }

// PartitionFingerprint returns the deterministic fingerprint of the
// underlying k-way partition (see partition.Fingerprint).
func (p *Preconditioner) PartitionFingerprint() uint64 { return p.lay.PartitionFP }

// Precondition applies z = Σᵢ Rᵢᵀ Aᵢ⁻¹ Rᵢ r (+ coarse correction):
// one-level restricted local solves plus the aggregation coarse space.
// Additive combination keeps the operator symmetric, so it is a valid
// CG preconditioner.
func (p *Preconditioner) Precondition(r, z []float64) {
	if err := p.ApplyCtx(nil, r, z); err != nil {
		// Unreachable: a nil context never cancels and ApplyCtx has no
		// other error path.
		panic(fmt.Sprintf("schwarz: %v", err))
	}
}

// ApplyCtx is Precondition with cooperative cancellation. The apply is
// staged so z is written only in a final accumulation phase: local
// solves fan across the worker pool into per-subdomain scratch (one
// block per subdomain — the fixed blocking that makes results bitwise
// identical for every worker count), the coarse solve fills its own
// scratch, and only then is z zeroed and accumulated serially in
// subdomain order. Cancellation is checked between phases, so a
// canceled apply returns ErrCanceled with z untouched — no partial
// iterate, mirroring the krylov contract.
func (p *Preconditioner) ApplyCtx(ctx context.Context, r, z []float64) error {
	p.checkValid()
	if err := ctxErr(ctx); err != nil {
		return cancelErr(ctx)
	}
	p.rt.ForBlocks(len(p.subs), func(i int) {
		sd := p.subs[i]
		rl := p.rbuf[i]
		for k, v := range sd.rows {
			rl[k] = r[v]
		}
		sd.Solve(rl, p.zbuf[i])
	})
	if err := ctxErr(ctx); err != nil {
		return cancelErr(ctx)
	}
	if p.coarse != nil {
		p.coarse.restrict(r, p.cr)
		p.coarse.Solve(p.cr, p.cz)
		if err := ctxErr(ctx); err != nil {
			return cancelErr(ctx)
		}
	}
	for i := range z {
		z[i] = 0
	}
	for i, sd := range p.subs {
		zl := p.zbuf[i]
		for k, v := range sd.rows {
			z[v] += zl[k]
		}
	}
	if p.coarse != nil {
		p.coarse.prolongAdd(p.cz, z)
	}
	return nil
}

// csrMatrix unwraps the CSR view setup needs; apply-only formats are
// rejected with a descriptive error.
func csrMatrix(a sparse.Operator) (*sparse.Matrix, error) {
	m, ok := a.(*sparse.Matrix)
	if !ok {
		return nil, fmt.Errorf("schwarz: %T exposes no CSR entries to extract subdomains from; pass the *sparse.Matrix (SELL views are apply-only)", a)
	}
	return m, nil
}

// ctxErr reports the context's cancellation error, treating nil as
// context.Background().
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// cancelErr wraps the context's cause under ErrCanceled.
func cancelErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

func sortInt32(a []int32) {
	// Insertion sort is fine: rows are mostly sorted already (owned rows
	// ascending, overlap appended); subdomains are small.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
