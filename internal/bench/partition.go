// PartitionComparison evaluates the paper's §VII future-work proposal the
// way Gilbert et al. (IPDPS 2021) evaluate coarsening schemes for
// multilevel partitioning: edge cut and balance of a multilevel bisection
// with MIS-2-aggregation coarsening vs. heavy-edge matching, across the
// matrix suite.
package bench

import (
	"fmt"
	"time"

	"mis2go/internal/partition"
)

// PartitionComparison prints cut/balance/time for both coarsening
// policies on every suite graph.
func PartitionComparison(cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "Partitioning (paper §VII future work): MIS-2 vs HEM coarsening (scale=%.3g)\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s %12s %10s %10s %12s %10s %10s\n",
		"matrix", "MIS2 cut", "balance", "time", "HEM cut", "balance", "time")
	var ratios []float64
	for _, m := range suiteGraphs(cfg.Scale) {
		type out struct {
			res partition.Result
			d   time.Duration
		}
		run := func(p partition.Policy) (out, error) {
			start := time.Now()
			res, err := partition.Partition(m.G, partition.Options{Policy: p, Threads: cfg.Threads})
			return out{res: res, d: time.Since(start)}, err
		}
		a, errA := run(partition.MIS2Policy)
		b, errB := run(partition.HEMPolicy)
		if errA != nil || errB != nil {
			fmt.Fprintf(cfg.Out, "%-18s (error: %v %v)\n", m.Spec.Name, errA, errB)
			continue
		}
		fmt.Fprintf(cfg.Out, "%-18s %12d %10.3f %10s %12d %10.3f %10s\n",
			m.Spec.Name,
			a.res.EdgeCut, a.res.Balance, a.d.Round(time.Millisecond),
			b.res.EdgeCut, b.res.Balance, b.d.Round(time.Millisecond))
		if b.res.EdgeCut > 0 {
			ratios = append(ratios, float64(a.res.EdgeCut)/float64(b.res.EdgeCut))
		}
	}
	fmt.Fprintf(cfg.Out, "%-18s %12s  (MIS2 cut / HEM cut geomean: %.2f)\n", "summary", "", geomean(ratios))
}
