// BigScaling measures MIS-2 strong scaling at the paper's problem size
// (Laplace3D 100³, one million vertices), the companion measurement to
// Figures 4/5 recorded in EXPERIMENTS.md. Unlike the Figure 4/5 runners
// it uses one large graph instead of the (scaled-down) suite, so the
// parallel phases have enough work per worker.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"mis2go/internal/gen"
	"mis2go/internal/mis"
)

// BigScaling runs the thread sweep on a single paper-sized structured
// problem. cfg.Scale scales the grid side (1.0 = 100³).
func BigScaling(cfg Config) {
	cfg = cfg.withDefaults()
	side := int(100 * math.Cbrt(cfg.Scale*20)) // default 0.05*20 = 1.0 → 100³
	if side < 10 {
		side = 10
	}
	g := gen.Laplace3D(side, side, side)
	fmt.Fprintf(cfg.Out, "Strong scaling at paper size: Laplace3D %d^3 (|V|=%d, |E|=%d)\n",
		side, g.N, g.NumEdges()/2)
	fmt.Fprintf(cfg.Out, "%8s %12s %9s %11s\n", "threads", "time", "speedup", "efficiency")
	maxT := runtime.GOMAXPROCS(0)
	configs := threadConfigs()
	configs = append(configs, 2*maxT)
	var t1 time.Duration
	for i, th := range configs {
		th := th
		best := time.Duration(1<<62 - 1)
		for k := 0; k < cfg.Trials; k++ {
			start := time.Now()
			mis.MIS2(g, mis.Options{Threads: th})
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if i == 0 {
			t1 = best
		}
		sp := float64(t1) / float64(best)
		fmt.Fprintf(cfg.Out, "%8d %12v %8.2fx %11.3f\n",
			th, best.Round(time.Microsecond), sp, sp/float64(th))
	}
}
