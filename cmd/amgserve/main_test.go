package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/gen"
	"mis2go/internal/serve"
)

// testServer returns an httptest server over a small solve service.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := serve.New(serve.Config{
		AMG:         amg.Options{MinCoarseSize: 30},
		Tol:         1e-10,
		MaxIter:     200,
		BatchWindow: -1,
	})
	ts := httptest.NewServer(newMux(svc, 64<<20))
	t.Cleanup(ts.Close)
	return ts
}

// laplaceRequest builds the JSON request body for a small Laplacian
// system with a deterministic RHS.
func laplaceRequest(t *testing.T, scale float64) ([]byte, int) {
	t.Helper()
	a := gen.Laplacian(gen.Laplace2D(12, 12), 0.1)
	a.Scale(scale)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	body, err := json.Marshal(solveRequest{
		Rows: a.Rows, RowPtr: a.RowPtr, Col: a.Col, Val: a.Val, B: b,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body, a.Rows
}

func postSolve(t *testing.T, ts *httptest.Server, body []byte) solveResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("solve status %d: %s", resp.StatusCode, msg)
	}
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestSolveEndpoint(t *testing.T) {
	ts := testServer(t)
	body, n := laplaceRequest(t, 1)

	sr := postSolve(t, ts, body)
	if sr.Outcome != "build" {
		t.Fatalf("first solve outcome %q, want build", sr.Outcome)
	}
	if len(sr.X) != n || len(sr.Columns) != 1 || !sr.Columns[0].Converged {
		t.Fatalf("bad response: %d unknowns, %d columns", len(sr.X), len(sr.Columns))
	}
	for _, v := range sr.X {
		if math.IsNaN(v) {
			t.Fatal("NaN in solution")
		}
	}

	// Same system again: served from cache with identical bits.
	sr2 := postSolve(t, ts, body)
	if sr2.Outcome != "reuse" {
		t.Fatalf("repeat outcome %q, want reuse", sr2.Outcome)
	}
	for i := range sr.X {
		if sr.X[i] != sr2.X[i] {
			t.Fatalf("cached solve differs at %d", i)
		}
	}

	// Same pattern, new values: numeric refresh.
	body3, _ := laplaceRequest(t, 2)
	if sr3 := postSolve(t, ts, body3); sr3.Outcome != "refresh" {
		t.Fatalf("new-values outcome %q, want refresh", sr3.Outcome)
	}
}

func TestSolveEndpointMultiRHS(t *testing.T) {
	ts := testServer(t)
	a := gen.Laplacian(gen.Laplace2D(10, 10), 0.1)
	bs := make([][]float64, 3)
	for j := range bs {
		bs[j] = make([]float64, a.Rows)
		for i := range bs[j] {
			bs[j][i] = float64((i+j)%5) + 1
		}
	}
	body, _ := json.Marshal(solveRequest{Rows: a.Rows, RowPtr: a.RowPtr, Col: a.Col, Val: a.Val, Bs: bs})
	sr := postSolve(t, ts, body)
	if len(sr.Columns) != 3 || sr.Batched != 3 {
		t.Fatalf("multi-RHS: %d columns batched %d, want 3/3", len(sr.Columns), sr.Batched)
	}
	if sr.X != nil {
		t.Fatal("single-RHS convenience field set on a bs-only request")
	}
}

func TestSolveEndpointRejectsBadRequests(t *testing.T) {
	ts := testServer(t)
	for name, body := range map[string]string{
		"garbage":    "{not json",
		"no-rhs":     `{"rows":1,"rowptr":[0,1],"col":[0],"val":[2]}`,
		"bad-matrix": `{"rows":2,"rowptr":[0,1],"col":[0],"val":[2],"b":[1,2]}`,
		"short-b":    `{"rows":2,"rowptr":[0,1,2],"col":[0,1],"val":[2,2],"b":[1]}`,
	} {
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s: accepted", name)
		}
	}
	resp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve status %d, want 405", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	body, _ := laplaceRequest(t, 1)
	postSolve(t, ts, body)
	postSolve(t, ts, body)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"amgserve_requests_total 2",
		"amgserve_cache_builds_total 1",
		"amgserve_cache_hits_total 1",
		"amgserve_canceled_total 0",
		"amgserve_panics_total 0",
		"amgserve_batched_rhs_ratio",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

// singularRequest is the JSON body for an exactly singular Neumann
// Laplacian — a poison system whose AMG-preconditioned CG diverges
// deterministically (a classified numerical failure, not a 400).
func singularRequest(t *testing.T) []byte {
	t.Helper()
	a := gen.Laplacian(gen.Laplace2D(16, 16), 0)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%5)
	}
	body, err := json.Marshal(solveRequest{
		Rows: a.Rows, RowPtr: a.RowPtr, Col: a.Col, Val: a.Val, B: b,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestSolveEndpointClassifiesDivergence: a diverging solve answers 422
// with the failure class in the error text, per-column stats, no
// convenience "x", and converged=false.
func TestSolveEndpointClassifiesDivergence(t *testing.T) {
	svc := serve.New(serve.Config{
		AMG:                 amg.Options{MinCoarseSize: 30},
		Tol:                 1e-10,
		MaxIter:             200,
		BatchWindow:         -1,
		MaxEscalations:      -1,
		QuarantineThreshold: -1,
	})
	ts := httptest.NewServer(newMux(svc, 64<<20))
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(singularRequest(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d for diverged solve, want 422", resp.StatusCode)
	}
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sr.Error, "diverged") {
		t.Fatalf("error %q does not name the failure class", sr.Error)
	}
	if sr.X != nil || sr.Converged {
		t.Fatalf("diverged response leaked a converged-looking result: %+v", sr)
	}
}

// TestSolveEndpointQuarantine429: after the threshold of consecutive
// numerical failures the pattern is quarantined — further requests are
// rejected 429 with a Retry-After header, paying no solve.
func TestSolveEndpointQuarantine429(t *testing.T) {
	svc := serve.New(serve.Config{
		AMG:                 amg.Options{MinCoarseSize: 30},
		Tol:                 1e-10,
		MaxIter:             200,
		BatchWindow:         -1,
		MaxEscalations:      -1,
		QuarantineThreshold: 2,
		QuarantineCooldown:  time.Minute,
	})
	ts := httptest.NewServer(newMux(svc, 64<<20))
	t.Cleanup(ts.Close)
	body := singularRequest(t)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("poison solve %d: status %d, want 422", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quarantined solve: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive integer of seconds", ra)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"amgserve_numerical_failures_total 2",
		"amgserve_quarantines_total 1",
		"amgserve_quarantine_rejections_total 1",
	} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("metrics missing %q:\n%s", want, raw)
		}
	}
}

// TestSolveEndpointDeadline504: an expired per-request deadline
// (-solve-timeout) maps to 504 with a Retry-After — a timeout, not a
// numerical verdict.
func TestSolveEndpointDeadline504(t *testing.T) {
	svc := serve.New(serve.Config{
		AMG:          amg.Options{MinCoarseSize: 30},
		Tol:          1e-10,
		MaxIter:      200,
		BatchWindow:  -1,
		SolveTimeout: time.Millisecond,
		FaultHook: func(p serve.FaultPhase, ctx context.Context) error {
			if p == serve.FaultAdmitted {
				<-ctx.Done() // the per-request deadline, by construction
			}
			return nil
		},
	})
	ts := httptest.NewServer(newMux(svc, 64<<20))
	t.Cleanup(ts.Close)
	body, _ := laplaceRequest(t, 1)
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out solve: status %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504 without Retry-After")
	}
}

// TestSolveEndpointReportsNonConvergence: a solve that exhausts the
// iteration budget must not come back as a bare 200 — the response is
// 422 with the error and per-column stats, and the convenience "x"
// field is withheld.
func TestSolveEndpointReportsNonConvergence(t *testing.T) {
	svc := serve.New(serve.Config{
		AMG:         amg.Options{MinCoarseSize: 30},
		Tol:         1e-14,
		MaxIter:     1, // guaranteed non-convergence on a real system
		BatchWindow: -1,
	})
	ts := httptest.NewServer(newMux(svc, 64<<20))
	t.Cleanup(ts.Close)
	body, _ := laplaceRequest(t, 1)
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d for unconverged solve, want 422", resp.StatusCode)
	}
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Error == "" || sr.X != nil {
		t.Fatalf("unconverged response: error=%q x-set=%v, want error text and no convenience x", sr.Error, sr.X != nil)
	}
	if len(sr.Columns) != 1 || sr.Columns[0].Converged {
		t.Fatalf("unconverged response columns: %+v", sr.Columns)
	}
}
