package mis

import (
	"testing"
	"testing/quick"

	"mis2go/internal/graph"
)

func TestCheckMISKAgreesWithSpecializedCheckers(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int(uint64(seed)%80)
		g := randomGraph(n, 3*n, seed)
		r1 := LubyMIS1(g, 0, 0)
		if (CheckMIS1(g, r1.InSet) == nil) != (CheckMISK(g, r1.InSet, 1) == nil) {
			return false
		}
		r2 := MIS2(g, Options{})
		if (CheckMIS2(g, r2.InSet) == nil) != (CheckMISK(g, r2.InSet, 2) == nil) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckMISKOnPath(t *testing.T) {
	g := pathGraph(10)
	// {0, 4, 8} is a valid MIS-3 on a 10-path: gaps of 4 > 3, and every
	// vertex within 3 of a member.
	if err := CheckMISK(g, []int32{0, 4, 8}, 3); err != nil {
		t.Fatalf("valid MIS-3 rejected: %v", err)
	}
	// {0, 3} violates distance-3 independence.
	if CheckMISK(g, []int32{0, 3, 9}, 3) == nil {
		t.Fatal("distance-3 violation not caught")
	}
	// {0} is not maximal at k=3 (vertex 9 is 9 away).
	if CheckMISK(g, []int32{0}, 3) == nil {
		t.Fatal("non-maximality not caught")
	}
	// Bad inputs.
	if CheckMISK(g, []int32{0}, 0) == nil {
		t.Fatal("k=0 accepted")
	}
	if CheckMISK(g, []int32{-1}, 2) == nil || CheckMISK(g, []int32{0, 0}, 2) == nil {
		t.Fatal("bad members not caught")
	}
}

func TestBellGeneralKValidForAllK(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int(uint64(seed)%80)
		g := randomGraph(n, 3*n, seed)
		for k := 1; k <= 4; k++ {
			res := BellMISK(g, BellOptions{K: k, Rehash: true})
			if CheckMISK(g, res.InSet, k) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBellSaltChangesResultButStaysValid(t *testing.T) {
	g := grid2D(25, 25)
	a := BellMISK(g, BellOptions{K: 2})
	b := BellMISK(g, BellOptions{K: 2, Salt: 12345})
	if err := CheckMIS2(g, b.InSet); err != nil {
		t.Fatal(err)
	}
	if setsEqual(a.InSet, b.InSet) {
		t.Fatal("salt had no effect (independent RNG streams expected)")
	}
	// Sizes should be close (Table IV's similar-quality claim).
	ra := float64(len(a.InSet)) / float64(len(b.InSet))
	if ra < 0.8 || ra > 1.25 {
		t.Fatalf("salted size ratio %f", ra)
	}
}

func TestMISKOnDisconnectedGraph(t *testing.T) {
	// Two components: each must get at least one member at every k.
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	for i := 6; i < 10; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	g := graph.FromEdges(11, edges)
	for k := 1; k <= 3; k++ {
		res := BellMISK(g, BellOptions{K: k, Rehash: true})
		if err := CheckMISK(g, res.InSet, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}
