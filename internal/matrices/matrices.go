// Package matrices provides the 17-matrix experiment suite of the paper's
// Table II (plus bodyy5 from Table VI) as deterministic synthetic
// surrogates.
//
// Two of the paper's matrices (Laplace3D_100 and Elasticity3D_60) come
// from the Galeri/Trilinos generators and are reproduced exactly (up to
// scale). The 15 SuiteSparse matrices cannot be downloaded in this offline
// environment; each gets a surrogate matched on vertex count, average
// degree, maximum-degree character, and structure class (regular 2D/3D
// mesh vs. irregular FEM). See DESIGN.md for the substitution rationale.
//
// Every generator takes a scale factor multiplying the paper's vertex
// count: Suite(1.0) reproduces paper-sized problems (hundreds of millions
// of edges in total — several GB); experiments default to a smaller scale.
package matrices

import (
	"fmt"
	"math"

	"mis2go/internal/gen"
	"mis2go/internal/graph"
	"mis2go/internal/sparse"
)

// Spec describes one suite matrix: its paper statistics (from Table II)
// and a surrogate generator.
type Spec struct {
	// Name is the paper's matrix name.
	Name string
	// PaperV and PaperE are |V| and |E| in millions (Table II).
	PaperV, PaperE float64
	// PaperAvgDeg and PaperMaxDeg are the degree statistics in Table II.
	PaperAvgDeg float64
	PaperMaxDeg int
	// Class describes the surrogate structure.
	Class string
	build func(scale float64) *graph.CSR
}

// Build generates the surrogate graph at the given scale (fraction of the
// paper's vertex count; 1.0 = paper size).
func (s Spec) Build(scale float64) *graph.CSR { return s.build(scale) }

// Matrix generates an SPD matrix (weighted graph Laplacian with small
// diagonal shift) over the surrogate graph, for solver experiments.
func (s Spec) Matrix(scale float64) *sparse.Matrix {
	return gen.WeightedLaplacian(s.Build(scale), 0.05, hashName(s.Name))
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range s {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// dim3 returns a 3D side length so that side^3 ~= v*scale (min 4).
func dim3(v float64, scale float64) int {
	side := int(math.Cbrt(v * scale))
	if side < 4 {
		side = 4
	}
	return side
}

// dim2 returns a 2D side length so that side^2 ~= v*scale (min 8).
func dim2(v float64, scale float64) int {
	side := int(math.Sqrt(v * scale))
	if side < 8 {
		side = 8
	}
	return side
}

// slabDims returns nx=ny and nz=2 so that nx*ny*2 ~= v*scale.
func slabDims(v float64, scale float64) (int, int) {
	side := int(math.Sqrt(v * scale / 2))
	if side < 8 {
		side = 8
	}
	return side, 2
}

// honeycomb builds a max-degree-3 lattice (brick-wall honeycomb): the
// surrogate for ecology2's degree-3 structure.
func honeycomb(nx, ny int) *graph.CSR {
	idx := func(x, y int) int32 { return int32(y*nx + x) }
	var edges []graph.Edge
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				edges = append(edges, graph.Edge{U: idx(x, y), V: idx(x+1, y)})
			}
			if y+1 < ny && (x+y)%2 == 0 {
				edges = append(edges, graph.Edge{U: idx(x, y), V: idx(x, y+1)})
			}
		}
	}
	return graph.FromEdges(nx*ny, edges)
}

func femBuilder(v float64, avgDeg float64, seed uint64) func(scale float64) *graph.CSR {
	return func(scale float64) *graph.CSR {
		side := dim3(v, scale)
		return gen.RandomFEM(side, side, side, avgDeg, seed)
	}
}

// specs is the suite in the paper's Table II row order.
var specs = []Spec{
	{
		Name: "af_shell7", PaperV: 0.505, PaperE: 9.047, PaperAvgDeg: 17.92, PaperMaxDeg: 35,
		Class: "3D shell slab, 27-pt",
		build: func(scale float64) *graph.CSR {
			side, nz := slabDims(0.505e6, scale)
			return gen.Slab27(side, side, nz)
		},
	},
	{
		Name: "apache2", PaperV: 0.715, PaperE: 2.767, PaperAvgDeg: 3.87, PaperMaxDeg: 4,
		Class: "2D 5-pt mesh",
		build: func(scale float64) *graph.CSR {
			side := dim2(0.715e6, scale)
			return gen.Laplace2D(side, side)
		},
	},
	{
		Name: "audikw_1", PaperV: 0.944, PaperE: 39.298, PaperAvgDeg: 41.64, PaperMaxDeg: 114,
		Class: "irregular 3D FEM",
		build: femBuilder(0.944e6, 41.64, 0xA0D1),
	},
	{
		Name: "ecology2", PaperV: 1.000, PaperE: 2.998, PaperAvgDeg: 3.0, PaperMaxDeg: 3,
		Class: "degree-3 lattice",
		build: func(scale float64) *graph.CSR {
			side := dim2(1.0e6, scale)
			return honeycomb(side, side)
		},
	},
	{
		Name: "Elasticity3D_60", PaperV: 0.648, PaperE: 50.758, PaperAvgDeg: 78.33, PaperMaxDeg: 81,
		Class: "Galeri 27-pt, 3 dof (exact)",
		build: func(scale float64) *graph.CSR {
			side := dim3(0.648e6/3, scale)
			return gen.Elasticity3D(side, side, side, 3)
		},
	},
	{
		Name: "Emilia_923", PaperV: 0.923, PaperE: 20.964, PaperAvgDeg: 22.71, PaperMaxDeg: 48,
		Class: "irregular 3D FEM",
		build: femBuilder(0.923e6, 22.71, 0xE391),
	},
	{
		Name: "Fault_639", PaperV: 0.639, PaperE: 14.627, PaperAvgDeg: 22.9, PaperMaxDeg: 114,
		Class: "irregular 3D FEM",
		build: femBuilder(0.639e6, 22.9, 0xFA17),
	},
	{
		Name: "Geo_1438", PaperV: 1.438, PaperE: 32.297, PaperAvgDeg: 22.46, PaperMaxDeg: 48,
		Class: "irregular 3D FEM",
		build: femBuilder(1.438e6, 22.46, 0x6E03),
	},
	{
		Name: "Hook_1498", PaperV: 1.498, PaperE: 31.208, PaperAvgDeg: 20.83, PaperMaxDeg: 57,
		Class: "irregular 3D FEM",
		build: femBuilder(1.498e6, 20.83, 0x4007),
	},
	{
		Name: "Laplace3D_100", PaperV: 1.0, PaperE: 6.94, PaperAvgDeg: 6.94, PaperMaxDeg: 7,
		Class: "Galeri 7-pt (exact)",
		build: func(scale float64) *graph.CSR {
			side := dim3(1.0e6, scale)
			return gen.Laplace3D(side, side, side)
		},
	},
	{
		Name: "ldoor", PaperV: 0.952, PaperE: 23.737, PaperAvgDeg: 24.93, PaperMaxDeg: 49,
		Class: "irregular 3D FEM",
		build: femBuilder(0.952e6, 24.93, 0x1D00),
	},
	{
		Name: "parabolic_fem", PaperV: 0.526, PaperE: 2.1, PaperAvgDeg: 3.99, PaperMaxDeg: 7,
		Class: "2D 5-pt mesh",
		build: func(scale float64) *graph.CSR {
			side := dim2(0.526e6, scale)
			return gen.Laplace2D(side, side)
		},
	},
	{
		Name: "PFlow_742", PaperV: 0.743, PaperE: 18.941, PaperAvgDeg: 25.5, PaperMaxDeg: 58,
		Class: "irregular 3D FEM",
		build: femBuilder(0.743e6, 25.5, 0x9F10),
	},
	{
		Name: "Serena", PaperV: 1.391, PaperE: 32.962, PaperAvgDeg: 23.69, PaperMaxDeg: 201,
		Class: "irregular 3D FEM",
		build: femBuilder(1.391e6, 23.69, 0x5E3A),
	},
	{
		Name: "StocF-1465", PaperV: 1.465, PaperE: 11.235, PaperAvgDeg: 7.67, PaperMaxDeg: 80,
		Class: "irregular 3D FEM",
		build: femBuilder(1.465e6, 7.67, 0x57CF),
	},
	{
		Name: "thermal2", PaperV: 1.228, PaperE: 4.904, PaperAvgDeg: 3.99, PaperMaxDeg: 10,
		Class: "2D 5-pt mesh",
		build: func(scale float64) *graph.CSR {
			side := dim2(1.228e6, scale)
			return gen.Laplace2D(side, side)
		},
	},
	{
		Name: "tmt_sym", PaperV: 0.727, PaperE: 2.904, PaperAvgDeg: 4.0, PaperMaxDeg: 5,
		Class: "2D 5-pt mesh",
		build: func(scale float64) *graph.CSR {
			side := dim2(0.727e6, scale)
			return gen.Laplace2D(side, side)
		},
	},
}

// bodyy5 appears only in Table VI.
var bodyy5 = Spec{
	Name: "bodyy5", PaperV: 0.0355, PaperE: 0.28, PaperAvgDeg: 7.9, PaperMaxDeg: 8,
	Class: "2D 9-pt-ish structural mesh",
	build: func(scale float64) *graph.CSR {
		side := dim2(0.0355e6, scale)
		return gen.RandomFEM(side, side, 1, 7.9, 0xB0D5)
	},
}

// Suite returns the 17 Table II specs in paper order.
func Suite() []Spec { return append([]Spec(nil), specs...) }

// Names returns the suite matrix names in paper order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Get returns the spec with the given name (including bodyy5).
func Get(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	if name == bodyy5.Name {
		return bodyy5, nil
	}
	return Spec{}, fmt.Errorf("matrices: unknown matrix %q", name)
}

// Table6Names lists the five systems of the paper's Table VI.
func Table6Names() []string {
	return []string{"bodyy5", "Elasticity3D_60", "Geo_1438", "Laplace3D_100", "Serena"}
}
