// Package gen generates the structured and synthetic graphs/matrices used
// by the paper's experiments: Laplace 2D/3D stencil problems and
// Elasticity3D (27-point stencil, 3 dof per grid point) equivalent to the
// Galeri/Trilinos generators, plus deterministic irregular generators used
// as surrogates for SuiteSparse matrices (see DESIGN.md substitutions).
//
//amg:deterministic
package gen

import (
	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/sparse"
)

// Laplace3D returns the graph of a nx x ny x nz grid with a 7-point
// stencil (6 neighbors; the center is the implicit diagonal).
func Laplace3D(nx, ny, nz int) *graph.CSR {
	idx := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	n := nx * ny * nz
	edges := make([]graph.Edge, 0, 3*n)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := idx(x, y, z)
				if x+1 < nx {
					edges = append(edges, graph.Edge{U: v, V: idx(x+1, y, z)})
				}
				if y+1 < ny {
					edges = append(edges, graph.Edge{U: v, V: idx(x, y+1, z)})
				}
				if z+1 < nz {
					edges = append(edges, graph.Edge{U: v, V: idx(x, y, z+1)})
				}
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// Laplace2D returns the graph of an nx x ny grid with a 5-point stencil.
func Laplace2D(nx, ny int) *graph.CSR {
	idx := func(x, y int) int32 { return int32(y*nx + x) }
	n := nx * ny
	edges := make([]graph.Edge, 0, 2*n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := idx(x, y)
			if x+1 < nx {
				edges = append(edges, graph.Edge{U: v, V: idx(x+1, y)})
			}
			if y+1 < ny {
				edges = append(edges, graph.Edge{U: v, V: idx(x, y+1)})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// Grid3D27 returns the graph of a nx x ny x nz grid with a 27-point
// stencil (all neighbors in the surrounding 3x3x3 cube).
func Grid3D27(nx, ny, nz int) *graph.CSR {
	idx := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	n := nx * ny * nz
	edges := make([]graph.Edge, 0, 13*n)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := idx(x, y, z)
				// Emit each undirected edge once: lexicographically
				// positive offsets only.
				for dz := 0; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dz == 0 && (dy < 0 || (dy == 0 && dx <= 0)) {
								continue
							}
							X, Y, Z := x+dx, y+dy, z+dz
							if X < 0 || X >= nx || Y < 0 || Y >= ny || Z < 0 || Z >= nz {
								continue
							}
							edges = append(edges, graph.Edge{U: v, V: idx(X, Y, Z)})
						}
					}
				}
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// Elasticity3D returns the graph of a nx x ny x nz grid with a 27-point
// stencil and dof degrees of freedom per grid point (paper: dof=3),
// matching the structure of Galeri's Elasticity3D problem: all dofs at a
// grid point couple to all dofs at stencil-adjacent points and to each
// other.
func Elasticity3D(nx, ny, nz, dof int) *graph.CSR {
	base := Grid3D27(nx, ny, nz)
	return ExpandDOF(base, dof)
}

// ExpandDOF expands every vertex of g into dof fully-coupled vertices that
// also couple to every dof of every neighbor (block structure of a
// multi-dof FEM discretization).
func ExpandDOF(g *graph.CSR, dof int) *graph.CSR {
	if dof <= 1 {
		return g
	}
	n := g.N * dof
	rowPtr := make([]int, n+1)
	for v := 0; v < g.N; v++ {
		d := g.RowPtr[v+1] - g.RowPtr[v]
		rowDeg := (d+1)*dof - 1 // all dofs of self and neighbors, minus self
		for k := 0; k < dof; k++ {
			rowPtr[v*dof+k+1] = rowPtr[v*dof+k] + rowDeg
		}
	}
	col := make([]int32, rowPtr[n])
	for v := 0; v < g.N; v++ {
		adj := g.Neighbors(int32(v))
		for k := 0; k < dof; k++ {
			row := v*dof + k
			p := rowPtr[row]
			// Interleave self-block and neighbor blocks in sorted order:
			// collect block ids (self + neighbors), already sorted except
			// self needs insertion.
			emitBlock := func(b int32) {
				for j := 0; j < dof; j++ {
					w := int32(int(b)*dof + j)
					if int(w) == row {
						continue
					}
					col[p] = w
					p++
				}
			}
			selfDone := false
			for _, w := range adj {
				if !selfDone && int(w) > v {
					emitBlock(int32(v))
					selfDone = true
				}
				emitBlock(w)
			}
			if !selfDone {
				emitBlock(int32(v))
			}
		}
	}
	return &graph.CSR{N: n, RowPtr: rowPtr, Col: col}
}

// Slab27 returns a thin 3D slab (nx x ny x nz with small nz) with a
// 27-point stencil: a surrogate for shell-type FEM matrices with average
// degree around 17-18 (e.g. af_shell7).
func Slab27(nx, ny, nz int) *graph.CSR { return Grid3D27(nx, ny, nz) }

// RandomFEM generates a deterministic irregular mesh-like graph: vertices
// on a 3D grid with a 7-point base stencil plus extra short-range random
// edges until the average degree is approximately avgDeg. Surrogate for
// irregular SuiteSparse FEM matrices.
func RandomFEM(nx, ny, nz int, avgDeg float64, seed uint64) *graph.CSR {
	idx := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	n := nx * ny * nz
	edges := make([]graph.Edge, 0, int(avgDeg)*n/2+3*n)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := idx(x, y, z)
				if x+1 < nx {
					edges = append(edges, graph.Edge{U: v, V: idx(x+1, y, z)})
				}
				if y+1 < ny {
					edges = append(edges, graph.Edge{U: v, V: idx(x, y+1, z)})
				}
				if z+1 < nz {
					edges = append(edges, graph.Edge{U: v, V: idx(x, y, z+1)})
				}
			}
		}
	}
	// Base average degree is ~6; add random short-range edges to reach
	// avgDeg. Each extra undirected edge adds 2 to the degree sum.
	extra := int((avgDeg - 6) * float64(n) / 2)
	state := seed | 1
	rng := func() uint64 {
		state = hash.Xorshift64Star(state)
		return state
	}
	for i := 0; i < extra; i++ {
		// Pick a random vertex and a random offset within a 5x5x5 window.
		r := rng()
		x := int(r % uint64(nx))
		y := int((r >> 20) % uint64(ny))
		z := int((r >> 40) % uint64(nz))
		r2 := rng()
		dx := int(r2%5) - 2
		dy := int((r2>>16)%5) - 2
		dz := int((r2>>32)%5) - 2
		X, Y, Z := x+dx, y+dy, z+dz
		if X < 0 || X >= nx || Y < 0 || Y >= ny || Z < 0 || Z >= nz {
			continue
		}
		u, v := idx(x, y, z), idx(X, Y, Z)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(n, edges)
}

// ErdosRenyi generates a deterministic G(n, m)-style random graph with
// approximately m undirected edges.
func ErdosRenyi(n, m int, seed uint64) *graph.CSR {
	edges := make([]graph.Edge, 0, m)
	state := seed | 1
	for i := 0; i < m; i++ {
		state = hash.Xorshift64Star(state)
		u := int32(state % uint64(n))
		state = hash.Xorshift64Star(state)
		v := int32(state % uint64(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(n, edges)
}

// Laplacian returns the SPD matrix with the sparsity pattern of g:
// A[i][i] = deg(i) + shift, A[i][j] = -1 for each edge. With shift > 0 the
// matrix is strictly diagonally dominant (nonsingular).
func Laplacian(g *graph.CSR, shift float64) *sparse.Matrix {
	n := g.N
	rowPtr := make([]int, n+1)
	for v := 0; v < n; v++ {
		rowPtr[v+1] = rowPtr[v] + g.Degree(int32(v)) + 1
	}
	col := make([]int32, rowPtr[n])
	val := make([]float64, rowPtr[n])
	for v := int32(0); int(v) < n; v++ {
		p := rowPtr[v]
		placed := false
		for _, w := range g.Neighbors(v) {
			if !placed && w > v {
				col[p], val[p] = v, float64(g.Degree(v))+shift
				p++
				placed = true
			}
			col[p], val[p] = w, -1
			p++
		}
		if !placed {
			col[p], val[p] = v, float64(g.Degree(v))+shift
		}
	}
	return &sparse.Matrix{Rows: n, Cols: n, RowPtr: rowPtr, Col: col, Val: val}
}

// DirichletLaplacian returns the SPD matrix with the sparsity pattern of
// g, a constant diagonal, and -1 off-diagonals: A = diag*I - Adj(g).
// For a stencil graph with interior degree d, diag = d reproduces the
// Dirichlet-boundary discretization of the Galeri generators (boundary
// rows keep the full diagonal, which encodes the eliminated boundary).
// diag must be at least the maximum degree for positive definiteness.
func DirichletLaplacian(g *graph.CSR, diag float64) *sparse.Matrix {
	n := g.N
	rowPtr := make([]int, n+1)
	for v := 0; v < n; v++ {
		rowPtr[v+1] = rowPtr[v] + g.Degree(int32(v)) + 1
	}
	col := make([]int32, rowPtr[n])
	val := make([]float64, rowPtr[n])
	for v := int32(0); int(v) < n; v++ {
		p := rowPtr[v]
		placed := false
		for _, w := range g.Neighbors(v) {
			if !placed && w > v {
				col[p], val[p] = v, diag
				p++
				placed = true
			}
			col[p], val[p] = w, -1
			p++
		}
		if !placed {
			col[p], val[p] = v, diag
		}
	}
	return &sparse.Matrix{Rows: n, Cols: n, RowPtr: rowPtr, Col: col, Val: val}
}

// WeightedLaplacian is like Laplacian but with deterministic pseudo-random
// edge weights in (0.5, 1.5), keeping symmetry: weight of (u,v) depends
// only on the unordered pair. Produces less-trivial spectra for solver
// experiments.
func WeightedLaplacian(g *graph.CSR, shift float64, seed uint64) *sparse.Matrix {
	n := g.N
	w := func(u, v int32) float64 {
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		h := hash.Xorshift64Star(seed ^ (uint64(a)<<32 | uint64(uint32(b+1))))
		return 0.5 + float64(h%1024)/1024.0
	}
	rowPtr := make([]int, n+1)
	for v := 0; v < n; v++ {
		rowPtr[v+1] = rowPtr[v] + g.Degree(int32(v)) + 1
	}
	col := make([]int32, rowPtr[n])
	val := make([]float64, rowPtr[n])
	for v := int32(0); int(v) < n; v++ {
		sum := 0.0
		for _, u := range g.Neighbors(v) {
			sum += w(v, u)
		}
		p := rowPtr[v]
		placed := false
		for _, u := range g.Neighbors(v) {
			if !placed && u > v {
				col[p], val[p] = v, sum+shift
				p++
				placed = true
			}
			col[p], val[p] = u, -w(v, u)
			p++
		}
		if !placed {
			col[p], val[p] = v, sum+shift
		}
	}
	return &sparse.Matrix{Rows: n, Cols: n, RowPtr: rowPtr, Col: col, Val: val}
}
