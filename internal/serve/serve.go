// Package serve turns the solver stack into a concurrent solve service:
// many goroutines (request handlers, simulation shards, API clients)
// submit "matrix values + right-hand side(s)" requests and the service
// amortizes the expensive parts across them.
//
// Three observations drive the design, following the paper's argument
// that MIS-2-based setup is cheap enough to re-run freely:
//
//   - Traffic repeats sparsity patterns. Each distinct pattern is keyed
//     by hash.PatternFingerprint into an LRU cache of AMG hierarchies:
//     the first request for a pattern pays the full symbolic+numeric
//     build, a request with the same pattern but new values pays only
//     the numeric Refresh (plan replays), and a request whose values are
//     bitwise identical to the cached operator pays nothing.
//   - Traffic repeats operators. Requests that arrive within a small
//     batching window against the same operator (same pattern and
//     values) are coalesced into one krylov.CGBatch call, so one SpMM
//     traversal of the matrix per iteration serves every coalesced
//     right-hand side.
//   - Solver state is mutable. Hierarchies, workspaces, and level
//     scratch are single-caller by contract, so the service single-
//     flights all work per cache entry behind a mutex: concurrent
//     requests against different patterns run fully in parallel, while
//     requests against one pattern serialize their setup and share
//     batched solves.
//
// A Service is safe for concurrent use by any number of goroutines. A
// bounded admission semaphore (Config.MaxInFlight) provides backpressure:
// excess requests wait (or fail when their context is canceled) instead
// of piling unbounded work onto the solver. Per-request RequestStats and
// service-wide Metrics expose what each request paid.
//
// Failure domains: the request context is honored past admission — it
// cancels hierarchy construction between levels and the CG iteration
// loop itself (a coalesced batch is only canceled once every participant
// has canceled; a canceled follower detaches immediately, since the
// batch owns copies of its columns). A cancellation never corrupts the
// cache: the entry stays valid and later requests reuse it. Panics in
// the build/refresh/solve critical sections are contained — converted to
// an error for every waiter of the affected entry, which is invalidated
// and dropped so the next request rebuilds fresh — instead of killing
// the process or stranding followers on the condition variable.
//
// Determinism carries over from the underlying stack: a served solution
// is bitwise identical to the same system solved by a sequential single
// caller (krylov.CGBatch with k = 1 on a freshly built hierarchy), for
// any worker count, any cache state, and any coalescing — columns of a
// batched CG recurrence are exactly independent, and Hierarchy.Refresh
// is bitwise identical to a fresh build.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/hash"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// Config configures a Service. Zero values select the defaults noted on
// each field.
type Config struct {
	// AMG configures the hierarchies built for cached patterns.
	AMG amg.Options
	// Tol is the relative-residual tolerance of served solves
	// (default 1e-8).
	Tol float64
	// MaxIter caps CG iterations per solve (default 500).
	MaxIter int
	// CacheCapacity bounds the number of cached hierarchies; the least
	// recently used pattern is evicted beyond it (default 8, minimum 1).
	CacheCapacity int
	// BatchWindow is how long the first request against an operator
	// waits for same-operator requests to coalesce with before solving
	// (default 200µs; negative disables coalescing).
	BatchWindow time.Duration
	// MaxBatch caps the right-hand sides in one CGBatch call — both how
	// many requests coalesce and how many columns a single SolveBatch
	// request may carry, which also bounds the per-entry solver scratch
	// the cache retains (default 8; 1 disables coalescing).
	MaxBatch int
	// MaxInFlight bounds admitted in-flight requests for backpressure
	// (default 4×GOMAXPROCS).
	MaxInFlight int
	// Threads is the solver worker count (0 = GOMAXPROCS), applied to
	// the Krylov kernels and — unless AMG.Threads is set explicitly —
	// to hierarchy construction and the V-cycle preconditioner too.
	// Results are deterministic for every choice.
	Threads int
	// Precision selects the value storage width of served hierarchies
	// and, under PrecisionF32, of the outer CG operator too (the outer
	// recurrence, dot products, and residual norms always stay float64,
	// so convergence detection is unchanged in kind). Applied to the
	// hierarchies unless AMG.Precision is set explicitly, mirroring
	// Threads. The sharded (Schwarz) path keeps full precision locals
	// and ignores this field. Default PrecisionF64.
	Precision sparse.Precision
	// ShardThreshold, when positive, routes requests with at least that
	// many rows through the sharded solve path: the matrix graph is
	// partitioned, each subdomain gets its own cache entry (keyed
	// pattern × partition × subdomain) holding an independent local
	// solver, and the solve is an outer Schwarz-preconditioned CG whose
	// subdomain applies fan across the worker pool. Zero (the default)
	// disables sharding. Note each subdomain occupies one cache slot:
	// size CacheCapacity to at least ShardSubdomains + 2 per sharded
	// pattern kept warm, or subdomains of one request evict each other.
	ShardThreshold int
	// ShardSubdomains is the subdomain count for sharded solves
	// (rounded up to a power of two; 0 picks the schwarz default of
	// rows/256).
	ShardSubdomains int
	// SolveTimeout, when positive, bounds each request end to end —
	// admission wait, setup, coalescing, and the solve itself — by
	// composing a deadline onto the caller's context. An expired
	// deadline surfaces as a cancellation wrapping
	// context.DeadlineExceeded (transports map it to 504). Zero (the
	// default) imposes no service-side deadline.
	SolveTimeout time.Duration
	// Health configures the per-iteration solver health guard applied
	// to every served solve: non-finite residuals, divergence, and
	// stagnation abort the iteration with a classified error instead of
	// burning the MaxIter budget. nil selects krylov.DefaultHealth().
	// The guard reads only residual norms the iteration already
	// computed, so healthy solves are bitwise unchanged.
	Health *krylov.Health
	// MaxEscalations caps the escalation ladder: after a classified
	// numerical failure (diverged, stagnated, broken down, or MaxIter
	// exhausted — not non-finite inputs, which no strategy fixes) the
	// request is retried with up to this many progressively stronger
	// request-local configurations, in a deterministic sequence: a
	// full-f64 hierarchy rebuild (when the service runs reduced
	// precision), then a point-SGS smoother, then a GMRES outer solve.
	// Each rung attempted is recorded in RequestStats.Escalations.
	// 0 selects the default of 3 (the full ladder); negative disables
	// escalation.
	MaxEscalations int
	// QuarantineThreshold is the number of consecutive classified
	// numerical failures on one pattern fingerprint after which the
	// pattern is quarantined: further requests fail fast with
	// ErrQuarantined (no build or solve cost) until a cooldown expires,
	// then a single half-open probe request is let through — success
	// closes the breaker, failure re-quarantines with a doubled
	// cooldown (capped at 64× the base). 0 selects the default of 3;
	// negative disables the breaker.
	QuarantineThreshold int
	// QuarantineCooldown is the base quarantine duration before the
	// first half-open probe (default 1s).
	QuarantineCooldown time.Duration
	// FaultHook, when non-nil, is called at the named phase of each
	// request with that request's context, and a non-nil return fails
	// the phase as if the work itself had failed. It exists for
	// deterministic fault injection in tests: the hook may return an
	// error (injected build/refresh/solve failure), sleep (slow solve),
	// cancel the request's own context (per-request cancellation at a
	// chosen phase, via a cancel func carried in context values), or
	// panic — but only at FaultBuild, FaultRefresh, and FaultSolve,
	// which run inside the service's panic-isolation sections.
	// Production configurations leave it nil.
	FaultHook func(FaultPhase, context.Context) error
}

// defaultBatchWindow is the coalescing window when Config leaves it zero:
// long enough to catch a concurrent burst against one operator, short
// enough to be invisible next to a multigrid solve.
const defaultBatchWindow = 200 * time.Microsecond

func (c Config) withDefaults() Config {
	if c.Tol <= 0 {
		c.Tol = 1e-8
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 500
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 8
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = defaultBatchWindow
	} else if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.AMG.Threads == 0 {
		// The V-cycle preconditioner does the bulk of per-iteration work;
		// a Threads bound that only throttled the outer CG kernels would
		// be a trap, so the hierarchy inherits it unless set explicitly.
		c.AMG.Threads = c.Threads
	}
	if c.AMG.Precision == sparse.PrecisionF64 {
		c.AMG.Precision = c.Precision
	}
	if c.Health == nil {
		c.Health = krylov.DefaultHealth()
	}
	if c.MaxEscalations == 0 {
		c.MaxEscalations = 3
	} else if c.MaxEscalations < 0 {
		c.MaxEscalations = 0
	}
	if c.QuarantineThreshold == 0 {
		c.QuarantineThreshold = 3
	}
	if c.QuarantineCooldown <= 0 {
		c.QuarantineCooldown = time.Second
	}
	return c
}

// Outcome reports what a request paid at the hierarchy cache.
type Outcome int

const (
	// OutcomeBuild: first request for the pattern; paid the full
	// symbolic + numeric hierarchy construction.
	OutcomeBuild Outcome = iota
	// OutcomeRefresh: cached pattern, new values; paid the numeric
	// Refresh (plan replays) only.
	OutcomeRefresh
	// OutcomeReuse: cached pattern with bitwise-identical values; paid
	// nothing beyond the solve.
	OutcomeReuse
	// OutcomeCollision: the pattern fingerprint matched a cached entry
	// of a different shape (a hash collision); the request was served
	// correctly but uncached.
	OutcomeCollision
)

// String names the outcome for logs and metrics.
func (o Outcome) String() string {
	switch o {
	case OutcomeBuild:
		return "build"
	case OutcomeRefresh:
		return "refresh"
	case OutcomeReuse:
		return "reuse"
	case OutcomeCollision:
		return "collision"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// ErrBadRequest is wrapped by every request-shaped rejection (malformed
// matrix, wrong right-hand-side lengths, oversized batch), so transports
// can distinguish caller errors from solver failures with errors.Is.
var ErrBadRequest = errors.New("serve: bad request")

// ErrPanic is wrapped by every error produced by a contained panic in a
// build/refresh/solve critical section. The affected cache entry is
// invalidated and dropped; the panicking request and every coalesced
// follower get this error instead of a deadlock or a dead process.
var ErrPanic = errors.New("serve: panic in solver critical section")

// ErrInvalidated is returned to a batch whose cache entry was reset (by
// a contained panic or a deep refresh failure in another request) while
// the batch was parked in its coalescing window: the values the batch
// was pinned to are gone, so solving would run against a different
// operator. Retrying the request rebuilds fresh and succeeds.
var ErrInvalidated = errors.New("serve: cache entry invalidated while batch was coalescing")

// errEntryDirty marks a refresh failure that struck after the entry's
// value buffers were already swapped (outer-operator refill): the
// hierarchy may still report valid, but the entry's operator view is
// stale, so the caller must retire the entry like a deep failure.
var errEntryDirty = errors.New("entry state diverged")

// isCancellation reports whether err is any of the stack's cancellation
// outcomes (solver-loop, setup, admission, or coalescing-window cancel
// — all of them wrap the originating context error).
func isCancellation(err error) bool {
	return errors.Is(err, krylov.ErrCanceled) || errors.Is(err, amg.ErrCanceled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RequestStats reports what one request paid and how its solve went.
type RequestStats struct {
	// Outcome is the hierarchy-cache outcome. For a sharded request it
	// describes the shard head (the partition layout + coarse level);
	// per-subdomain outcomes are aggregated in the service Metrics.
	Outcome Outcome
	// Batched is the total number of right-hand-side columns in the
	// CGBatch call that served this request (1 when the request ran
	// alone).
	Batched int
	// Columns holds the solver stats of this request's right-hand
	// sides, in request order.
	Columns []krylov.Stats
	// Sharded reports that the request took the domain-decomposed path
	// (Config.ShardThreshold); Subdomains is the number of local
	// solvers its preconditioner applied.
	Sharded    bool
	Subdomains int
	// Precision is the hierarchy precision policy that served the solve
	// (the resolved Config.Precision; PrecisionF64 on the sharded path,
	// which keeps full-precision locals).
	Precision sparse.Precision
	// Converged reports that every requested column met the tolerance —
	// the explicit signal that a result is an answer, not a best-effort
	// iterate (an exhausted MaxIter additionally returns a classified
	// error wrapping krylov.ErrNotConverged).
	Converged bool
	// RelResidual is the worst (largest) final relative residual across
	// the requested columns (0 when the request failed before any
	// column was solved).
	RelResidual float64
	// Escalations names the escalation-ladder rungs attempted for this
	// request, in order (nil when the first solve was healthy). When the
	// request ultimately succeeded, the last rung named is the one that
	// recovered it.
	Escalations []string
}

// finalize derives the request-level convergence summary from the
// per-column stats.
func (st *RequestStats) finalize() {
	st.Converged = len(st.Columns) > 0
	st.RelResidual = 0
	for _, cs := range st.Columns {
		if !cs.Converged {
			st.Converged = false
		}
		if cs.RelResidual > st.RelResidual {
			st.RelResidual = cs.RelResidual
		}
	}
}

// Service is a concurrent solve service. Create one with New; the zero
// value is not usable. All methods are safe for concurrent use.
type Service struct {
	cfg Config
	rt  *par.Runtime
	// sem is the admission semaphore bounding in-flight requests.
	sem chan struct{}

	// mu guards the cache index (entries + lru). It is never held
	// across a build, refresh, or solve — those serialize on the
	// per-entry lock — so cache lookups stay fast under load. The index
	// holds three node kinds behind one LRU: single-hierarchy entries,
	// shard heads, and per-subdomain shard entries.
	mu      sync.Mutex
	entries map[uint64]cacheNode
	lru     *list.List // front = most recently used; values are cacheNode

	// rungs is the precomputed escalation ladder (see Config.
	// MaxEscalations); br is the per-pattern circuit breaker (nil when
	// Config.QuarantineThreshold is negative).
	rungs []rung
	br    *breaker

	m counters
}

// cacheNode is what the cache index stores: any of the three entry
// kinds, identified by key and threaded through the shared LRU list.
// The key and the LRU element are guarded by Service.mu; everything
// else about a node is its own business.
type cacheNode interface {
	cacheKey() uint64
	lruElem() *list.Element
	setLRUElem(*list.Element)
}

// entry is one cached pattern: the hierarchy, the service-owned fine
// matrix (current numeric values), solver scratch, and the coalescing
// state. key/rows/cols/nnz are immutable; elem belongs to the index
// (guarded by Service.mu, like the map and list it lives in); every
// other field is guarded by mu. Holding mu across the solve is what
// makes hierarchies and workspaces — single-caller by contract —
// race-clean under concurrent requests.
type entry struct {
	key             uint64
	rows, cols, nnz int

	mu   sync.Mutex
	cond *sync.Cond // signaled when pending drops to zero
	h    *amg.Hierarchy
	// fine holds the values the hierarchy's numeric state was built
	// from; spare is the ping-pong buffer a Refresh runs against, so a
	// rejected Refresh never clobbers fine (they share the immutable
	// pattern arrays and differ only in Val).
	fine, spare *sparse.Matrix
	// op is the outer-solve view of fine in the configured operator
	// format and precision (fine itself for f64 CSR; a value-caching
	// conversion refreshed through fill.FillValues otherwise) — the same
	// policy the hierarchy's finest level follows, so the per-iteration
	// outer SpMM gets the chunked (and, under PrecisionF32, halved-
	// bandwidth) kernels too. Formats are bit-compatible; a precision is
	// bitwise deterministic within itself.
	op   sparse.Operator
	fill sparse.ValueFiller
	// pending counts batches created but not yet solved; values may not
	// change while any batch is in flight.
	pending int
	// refreshWaiters counts requests parked on cond until pending
	// drains so they can refresh the values. While any are queued, new
	// batch leaders skip the coalescing window (they solve while
	// holding mu, so pending can never stay positive across an unlock)
	// — the fairness gate that keeps a new-values request from being
	// starved by a stream of current-values batches.
	refreshWaiters int
	// cur is the open batch accepting joiners (nil when none).
	cur *batch
	// Solver scratch, reused across this entry's solves (safe: the
	// entry lock is held for the duration of every solve).
	ws         *krylov.Workspace
	bbuf, xbuf []float64

	elem *list.Element
}

func (e *entry) cacheKey() uint64            { return e.key }
func (e *entry) lruElem() *list.Element      { return e.elem }
func (e *entry) setLRUElem(el *list.Element) { e.elem = el }

// batch is one coalesced CGBatch call: the columns of every joined
// request, solved together, results fanned back out. The batch owns
// copies of every joined column (made at join time, under the entry
// lock): a follower whose context is canceled can then detach and
// return immediately without the leader ever reading caller-owned
// memory that the caller has taken back.
type batch struct {
	bs    [][]float64 // batch-owned copies of the columns, join order
	xs    [][]float64 // per-column results, filled by the leader
	stats []krylov.Stats
	err   error
	k     int
	done  chan struct{} // closed by the leader after the solve
	// full is closed by the joiner that brings the batch to MaxBatch,
	// waking the leader early instead of sleeping out the rest of the
	// window (no later joiner can fit, so at most one close).
	full chan struct{}
	// live counts participants whose request context has not been
	// canceled; when the last one cancels, the solve itself is canceled
	// through solveCtx — one canceled client never aborts a batch that
	// other clients are still waiting on.
	live        atomic.Int64
	solveCtx    context.Context
	cancelSolve context.CancelCauseFunc
}

func newBatch() *batch {
	bt := &batch{done: make(chan struct{}), full: make(chan struct{})}
	bt.solveCtx, bt.cancelSolve = context.WithCancelCause(context.Background())
	return bt
}

// join appends batch-owned copies of the request's columns and their
// result buffers. Called with the entry lock held.
func (bt *batch) join(bs [][]float64, n int) {
	for _, b := range bs {
		bt.bs = append(bt.bs, append(make([]float64, 0, n), b...))
		bt.xs = append(bt.xs, make([]float64, n))
	}
}

// watch registers one participant's context with the batch's liveness
// count. The returned stop function releases the registration on the
// normal path; it must not be forgotten (the AfterFunc would outlive
// the request). The cancellation callback runs on the context's
// machinery, never holding the entry lock — the leader holds that lock
// for the whole solve, so a callback that took it would deadlock the
// very cancellation it delivers.
func (bt *batch) watch(ctx context.Context) (stop func() bool) {
	bt.live.Add(1)
	return context.AfterFunc(ctx, func() {
		if bt.live.Add(-1) == 0 {
			bt.cancelSolve(context.Cause(ctx))
		}
	})
}

// reset returns the entry to the unbuilt state (must hold e.mu): the
// next request to observe it — queued on the mutex or resuming from the
// condition wait — rebuilds from its own matrix.
func (e *entry) reset() {
	e.h, e.fine, e.spare, e.op, e.fill = nil, nil, nil, nil, nil
}

// New returns a Service with the given configuration (zero fields take
// the documented defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		rt:      par.New(cfg.Threads),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		entries: make(map[uint64]cacheNode),
		lru:     list.New(),
	}
	s.rungs = buildLadder(cfg)
	if cfg.QuarantineThreshold > 0 {
		s.br = newBreaker(cfg.QuarantineThreshold, cfg.QuarantineCooldown)
	}
	return s
}

// Solve serves one system A x = b: admission (backpressure), hierarchy
// cache lookup by pattern fingerprint, build/refresh/reuse of the
// numeric state, and a possibly coalesced CG solve. The returned x is
// freshly allocated. ctx is honored end to end: it bounds admission,
// cancels hierarchy construction between levels, detaches the request
// from a coalescing window it is parked in, and stops the CG iteration
// loop itself once every participant of the batch has canceled. A
// canceled request returns an error wrapping the context's cause and
// never a partial solution; the cache entry it touched stays valid for
// later requests.
//
// a and b are only read, and never retained past the call: the service
// keeps its own copies of the matrix and right-hand side, so the caller
// may mutate or reuse both freely after Solve returns — even when the
// request was canceled out of a shared batch.
func (s *Service) Solve(ctx context.Context, a *sparse.Matrix, b []float64) ([]float64, RequestStats, error) {
	xs, st, err := s.SolveBatch(ctx, a, [][]float64{b})
	if len(xs) == 0 {
		return nil, st, err
	}
	return xs[0], st, err
}

// SolveBatch is Solve for a request carrying several right-hand sides
// against one matrix; the columns stay together through coalescing and
// are solved in one CGBatch call. Stats carries one krylov.Stats per
// column. When some columns fail to converge the error is non-nil but
// every solution and per-column stat is still returned.
func (s *Service) SolveBatch(ctx context.Context, a *sparse.Matrix, bs [][]float64) ([][]float64, RequestStats, error) {
	var st RequestStats
	if ctx == nil {
		ctx = context.Background()
	}
	if a == nil || a.Rows != a.Cols {
		return nil, st, fmt.Errorf("%w: matrix must be square", ErrBadRequest)
	}
	if len(bs) == 0 {
		return nil, st, fmt.Errorf("%w: request carries no right-hand side", ErrBadRequest)
	}
	if len(bs) > s.cfg.MaxBatch {
		// The batch width bound applies to a single request's own
		// columns too: it is what keeps the per-entry solver scratch
		// (≈6·n·k floats inside the workspace) bounded, so one
		// oversized request cannot pin gigabytes in a cache entry.
		return nil, st, fmt.Errorf("%w: request carries %d right-hand sides, service accepts at most %d per request (Config.MaxBatch)", ErrBadRequest, len(bs), s.cfg.MaxBatch)
	}
	for j, b := range bs {
		if len(b) != a.Rows {
			return nil, st, fmt.Errorf("%w: right-hand side %d has %d entries, matrix has %d rows", ErrBadRequest, j, len(b), a.Rows)
		}
	}
	// Reject structurally invalid CSR before admission: the cached paths
	// index the request's arrays inside the per-entry critical section,
	// and a panic there would wedge the pattern for every later request.
	// The build path re-validates inside BuildSymbolic; this moves the
	// failure to the API boundary for every path.
	if err := a.Validate(); err != nil {
		return nil, st, fmt.Errorf("%w: invalid matrix: %w", ErrBadRequest, err)
	}

	// Per-request deadline: composed onto the caller's context so it
	// bounds admission wait, setup, coalescing, and the solve alike. An
	// expired deadline surfaces through the normal cancellation paths,
	// wrapping context.DeadlineExceeded.
	if s.cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SolveTimeout)
		defer cancel()
	}

	// Backpressure: block until an in-flight slot frees up, or fail
	// with the caller's context.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.m.rejected.Add(1)
		return nil, st, fmt.Errorf("serve: admission: %w", ctx.Err())
	}
	defer func() { <-s.sem }()
	s.m.requests.Add(1)
	if err := s.fault(FaultAdmitted, ctx); err != nil {
		return nil, st, err
	}

	// Circuit breaker: a quarantined pattern fails fast here, paying
	// neither build nor solve; the first request past the cooldown
	// becomes the half-open probe.
	key := hash.PatternFingerprint(a.Rows, a.Cols, a.RowPtr, a.Col)
	probe := false
	if s.br != nil {
		var qerr error
		probe, qerr = s.br.admit(key)
		if qerr != nil {
			s.m.quarantineRejections.Add(1)
			return nil, st, qerr
		}
		if probe {
			s.m.probes.Add(1)
		}
	}

	var xs [][]float64
	var rst RequestStats
	var err error
	if s.cfg.ShardThreshold > 0 && a.Rows >= s.cfg.ShardThreshold {
		xs, rst, err = s.solveSharded(ctx, a, bs, &st, key)
	} else {
		st.Precision = s.cfg.AMG.Precision
		e, collision := s.lookup(key, a)
		if collision {
			xs, rst, err = s.solveUncached(ctx, a, bs, &st)
		} else {
			xs, rst, err = s.solveCached(ctx, e, a, bs, &st)
		}
	}
	if err != nil && s.escalatable(err) {
		xs, err = s.escalate(ctx, a, bs, &rst, xs, err)
	}
	rst.finalize()
	if s.br != nil {
		switch {
		case err == nil:
			s.br.recordSuccess(key, probe, &s.m)
		case isNumericalFailure(err):
			s.br.recordFailure(key, probe, &s.m)
		default:
			s.br.recordNeutral(key, probe)
		}
	}
	if err != nil {
		if isCancellation(err) {
			s.m.canceled.Add(1)
		} else if isNumericalFailure(err) {
			s.m.numericalFailures.Add(1)
		}
	}
	return xs, rst, err
}

// fault runs the configured fault-injection hook for the phase, if any.
func (s *Service) fault(p FaultPhase, ctx context.Context) error {
	if s.cfg.FaultHook == nil {
		return nil
	}
	return s.cfg.FaultHook(p, ctx)
}

// lookup returns the cache entry for key, creating (and LRU-evicting)
// as needed under the index lock. collision reports that the key is
// cached for a different matrix shape — a fingerprint collision — in
// which case no entry is returned and the request must bypass the cache.
func (s *Service) lookup(key uint64, a *sparse.Matrix) (e *entry, collision bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if node, ok := s.entries[key]; ok {
		e, ok := node.(*entry)
		if !ok {
			// The pattern fingerprint collided with a shard node's
			// salted key — astronomically unlikely, handled like any
			// other collision: serve correctly, uncached.
			s.m.collisions.Add(1)
			return nil, true
		}
		// Shape pre-check on hit: two patterns hashing to one
		// fingerprint must not share a hierarchy. This catches
		// different-shape collisions without touching the entry lock;
		// equal-shape collisions are caught by the exact pattern
		// comparison in solveCached (silently corrupting results is the
		// one thing a collision must never do).
		if e.rows != a.Rows || e.cols != a.Cols || e.nnz != a.NNZ() {
			s.m.collisions.Add(1)
			return nil, true
		}
		s.lru.MoveToFront(e.elem)
		return e, false
	}
	e = &entry{key: key, rows: a.Rows, cols: a.Cols, nnz: a.NNZ()}
	e.cond = sync.NewCond(&e.mu)
	s.index(e)
	return e, false
}

// index inserts a node at the LRU front and evicts past capacity.
// Called with s.mu held. A node already cached under the key is
// replaced (its LRU element removed); in-flight holders of the
// replaced node keep working, like any dropped node.
func (s *Service) index(n cacheNode) {
	if old, ok := s.entries[n.cacheKey()]; ok {
		s.lru.Remove(old.lruElem())
	}
	n.setLRUElem(s.lru.PushFront(n))
	s.entries[n.cacheKey()] = n
	for s.lru.Len() > s.cfg.CacheCapacity {
		old := s.lru.Remove(s.lru.Back()).(cacheNode)
		delete(s.entries, old.cacheKey())
		s.m.evictions.Add(1)
	}
}

// touch moves a still-indexed node to the LRU front.
func (s *Service) touch(n cacheNode) {
	s.mu.Lock()
	if cur, ok := s.entries[n.cacheKey()]; ok && cur == n {
		s.lru.MoveToFront(n.lruElem())
	}
	s.mu.Unlock()
}

// drop removes a node from the cache if it is still indexed (an entry
// whose build failed, or whose numeric state a deep Refresh failure
// left unusable; a shard head or subdomain retired the same way).
// In-flight holders of the node keep working; the next request for the
// pattern rebuilds fresh. Lock order: the index lock (s.mu) may be
// taken while holding a per-node lock — the sharded path looks up
// subdomain nodes under the head lock — but never the reverse, so drop
// must not be reachable from code holding s.mu.
func (s *Service) drop(n cacheNode) {
	s.mu.Lock()
	if cur, ok := s.entries[n.cacheKey()]; ok && cur == n {
		delete(s.entries, n.cacheKey())
		s.lru.Remove(n.lruElem())
	}
	s.mu.Unlock()
}

// solveCached runs the cached-pattern path: ensure the hierarchy's
// numeric state matches the request's values (build, refresh, or
// nothing), then solve through the entry's batcher.
func (s *Service) solveCached(ctx context.Context, e *entry, a *sparse.Matrix, bs [][]float64, st *RequestStats) ([][]float64, RequestStats, error) {
	e.mu.Lock()
	for {
		if err := ctx.Err(); err != nil {
			// Honor cancellation before committing to any setup work.
			// Nothing has been mutated: the entry stays exactly as the
			// previous request left it.
			e.mu.Unlock()
			return nil, *st, fmt.Errorf("serve: canceled before solve: %w", context.Cause(ctx))
		}
		if e.h == nil {
			if e.pending > 0 {
				// The entry was reset (contained panic, deep refresh
				// failure) while batches pinned to the old values are
				// still in flight. Their leaders must observe the reset
				// and fail before this request installs new values under
				// them — wait for the drain exactly like a refresher.
				e.refreshWaiters++
				e.cond.Wait()
				e.refreshWaiters--
				continue
			}
			// First request for the pattern — or the first to observe an
			// entry reset by a failed build or deep refresh failure,
			// including waiters resuming from cond.Wait below: pay the
			// full construction. Waiters for the same pattern block on
			// e.mu here — the single-flight guarantee that K concurrent
			// first-requests build exactly once.
			if err := s.buildEntry(ctx, e, a); err != nil {
				if errors.Is(err, ErrPanic) {
					s.m.panics.Add(1)
				}
				e.mu.Unlock()
				s.drop(e)
				return nil, *st, fmt.Errorf("serve: hierarchy build: %w", err)
			}
			st.Outcome = OutcomeBuild
			s.m.builds.Add(1)
			break
		}
		if !samePattern(e.fine, a) {
			// Equal-shape fingerprint collision: the request's pattern
			// hashes to this entry's key and matches its dimensions and
			// entry count, but is a different pattern. Refreshing would
			// scatter the request's values onto the cached pattern and
			// silently solve the wrong matrix, so serve it uncached.
			e.mu.Unlock()
			s.m.collisions.Add(1)
			return s.solveUncached(ctx, a, bs, st)
		}
		if sameValues(e.fine.Val, a.Val) {
			// Same operator as the cached numeric state: pay nothing.
			st.Outcome = OutcomeReuse
			s.m.valueHits.Add(1)
			break
		}
		if e.pending > 0 {
			// In-flight batches are pinned to the current values; wait
			// for them to drain before refreshing under them. The
			// waiter count suppresses new coalescing windows, so the
			// drain is bounded by the batches already open. Everything
			// is re-checked on wake: the entry may have been reset (or
			// refreshed to these exact values) meanwhile.
			e.refreshWaiters++
			e.cond.Wait()
			e.refreshWaiters--
			continue
		}
		if err := s.refreshEntry(ctx, e, a); err != nil {
			panicked := errors.Is(err, ErrPanic)
			if panicked {
				s.m.panics.Add(1)
			}
			if panicked || !e.h.Valid() || errors.Is(err, errEntryDirty) {
				// The numeric state (or the entry's operator view of it)
				// is no longer trustworthy. Reset the entry while still
				// holding its lock — same-pattern waiters queued on e.mu
				// or e.cond must find the unbuilt state and rebuild,
				// never an invalidated hierarchy (whose Precondition
				// panics) — and retire it from the index so the next
				// lookup starts fresh.
				e.reset()
				e.cond.Broadcast()
				e.mu.Unlock()
				s.drop(e)
			} else {
				// Pre-mutation rejection (bad values, cancellation
				// caught before the replay touched anything): the
				// previous numeric state is fully usable, keep it.
				e.mu.Unlock()
			}
			return nil, *st, fmt.Errorf("serve: hierarchy refresh: %w", err)
		}
		st.Outcome = OutcomeRefresh
		s.m.refreshes.Add(1)
		break
	}
	return s.solveBatched(ctx, e, bs, st)
}

// buildEntry runs the full-construction critical section with panic
// isolation: hierarchy build, ping-pong value buffers, the outer
// operator view, and solver scratch. Called with e.mu held. Every
// entry field is assigned only after the last fallible step, so a
// failure (or contained panic, reported as an error wrapping ErrPanic)
// leaves the entry unbuilt and the caller drops it.
func (s *Service) buildEntry(ctx context.Context, e *entry, a *sparse.Matrix) (err error) {
	defer recoverTo(&err)
	if err := s.fault(FaultBuild, ctx); err != nil {
		return err
	}
	fine := a.Clone()
	h, err := amg.BuildCtx(ctx, fine, s.cfg.AMG)
	if err != nil {
		return err
	}
	// The outer CG matvec is the finest-level traversal: it follows the
	// finest level's precision — f32 only under the full PrecisionF32
	// policy (PrecisionAuto keeps the finest level, whose residual feeds
	// convergence detection, at full precision).
	outerPrec := sparse.PrecisionF64
	if s.cfg.AMG.Precision == sparse.PrecisionF32 {
		outerPrec = sparse.PrecisionF32
	}
	op, err := sparse.NewOperatorPrec(fine, s.cfg.AMG.Format, s.cfg.AMG.SellSigma, outerPrec)
	if err != nil {
		return fmt.Errorf("outer operator format: %w", err)
	}
	e.h = h
	e.fine = fine
	e.spare = &sparse.Matrix{
		Rows: fine.Rows, Cols: fine.Cols,
		RowPtr: fine.RowPtr, Col: fine.Col, // pattern arrays are immutable and shared
		Val: make([]float64, len(fine.Val)),
	}
	e.op, e.fill = op, nil
	if f, ok := op.(sparse.ValueFiller); ok {
		e.fill = f
	}
	e.ws = krylov.NewWorkspace(fine.Rows)
	return nil
}

// refreshEntry runs the numeric-refresh critical section with panic
// isolation. Called with e.mu held and e.pending == 0. On return the
// caller classifies the error: pre-mutation rejections (including a
// cancellation caught before the replay) leave the entry usable;
// ErrPanic, an invalidated hierarchy, or errEntryDirty mean the entry
// must be reset and dropped.
func (s *Service) refreshEntry(ctx context.Context, e *entry, a *sparse.Matrix) (err error) {
	defer recoverTo(&err)
	if err := s.fault(FaultRefresh, ctx); err != nil {
		return err
	}
	copy(e.spare.Val, a.Val)
	// BuildNumeric, not Refresh: the service has no "same operator
	// evolving over time" contract — independent clients may submit
	// any values on a pattern — so the history-dependent diagonal
	// sign check would make the outcome depend on invisible cache
	// state (rejected while cached, fully built after an eviction).
	// Both run the identical numeric replay at identical cost.
	if err := e.h.BuildNumericCtx(ctx, e.spare); err != nil {
		return err
	}
	e.fine, e.spare = e.spare, e.fine
	if e.fill != nil {
		// The value-caching conversion gathers the new values through
		// its cached entry schedule; plain f64 CSR outer operators just
		// re-point. A failure is impossible by construction (the
		// ping-pong matrices share the conversion's pattern, and an f32
		// outer operator implies the hierarchy's f32 finest level already
		// range-checked these values) — but the buffers are already
		// swapped, so flag it for the deep-failure path so nothing stale
		// is ever served.
		if err := e.fill.FillValues(e.fine); err != nil {
			return fmt.Errorf("outer operator refresh: %w: %w", errEntryDirty, err)
		}
	} else {
		e.op = e.fine
	}
	return nil
}

// recoverTo converts a panic in a solver critical section into an error
// wrapping ErrPanic, with the panic value and stack preserved.
func recoverTo(errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("%w: %v\n%s", ErrPanic, r, debug.Stack())
	}
}

// solveBatched joins or leads a coalesced batch for the entry's current
// operator. Called with e.mu held; returns with it released.
func (s *Service) solveBatched(ctx context.Context, e *entry, bs [][]float64, st *RequestStats) ([][]float64, RequestStats, error) {
	m := len(bs)
	// Join the open batch when the request's columns fit.
	if e.cur != nil && len(e.cur.bs)+m <= s.cfg.MaxBatch {
		bt := e.cur
		lo := len(bt.bs)
		bt.join(bs, e.rows)
		if len(bt.bs) == s.cfg.MaxBatch {
			close(bt.full) // batch is full; stop the leader's window early
		}
		e.mu.Unlock()
		stop := bt.watch(ctx)
		select {
		case <-bt.done:
			stop()
			return s.requestResult(bt, lo, m, st)
		case <-ctx.Done():
			// Detach: the batch owns copies of this request's columns,
			// so the leader finishes without it and nothing is corrupted.
			// The AfterFunc already decremented the liveness count.
			return nil, *st, fmt.Errorf("serve: canceled while coalescing: %w", context.Cause(ctx))
		}
	}

	// Lead a new batch: publish it for joiners, sleep out the window
	// (or until a joiner fills the batch), close it, and solve while
	// holding the entry lock. A canceled leader with live followers
	// still runs the solve on their behalf (it is the only goroutine
	// positioned to); only its own result comes back canceled.
	bt := newBatch()
	bt.join(bs, e.rows)
	stop := bt.watch(ctx)
	e.pending++
	if s.cfg.BatchWindow > 0 && s.cfg.MaxBatch > m && e.refreshWaiters == 0 {
		e.cur = bt
		e.mu.Unlock()
		timer := time.NewTimer(s.cfg.BatchWindow)
		select {
		case <-timer.C:
		case <-bt.full:
			timer.Stop()
		}
		e.mu.Lock()
		if e.cur == bt {
			e.cur = nil
		}
	}

	bt.k = len(bt.bs)
	if e.h == nil {
		// The entry was reset (contained panic, deep refresh failure in
		// another request) while this batch coalesced. Its columns are
		// pinned to values that no longer exist — solving against
		// whatever gets rebuilt would silently answer a different
		// system, so fail the whole batch cleanly instead.
		bt.err = ErrInvalidated
	} else {
		s.runBatchSolve(ctx, e, bt)
	}
	e.pending--
	if e.pending == 0 {
		e.cond.Broadcast()
	}
	panicked := errors.Is(bt.err, ErrPanic)
	if panicked {
		// The panic may have struck mid-update inside the hierarchy or
		// workspace: nothing about the entry's solver state can be
		// trusted anymore. Reset it (waiters rebuild) and retire it.
		s.m.panics.Add(1)
		e.reset()
		e.cond.Broadcast()
	}
	e.mu.Unlock()
	if panicked {
		s.drop(e)
	}
	close(bt.done)
	bt.cancelSolve(nil) // release the solve context's resources
	stop()
	return s.requestResult(bt, 0, m, st)
}

// runBatchSolve executes the batch's CGBatch call with panic isolation;
// called with e.mu held. reqCtx is the leader's request context (the
// fault hook reads injection plans from it); the solve itself is
// governed by bt.solveCtx, which cancels only once every live
// participant of the batch has canceled.
func (s *Service) runBatchSolve(reqCtx context.Context, e *entry, bt *batch) {
	defer recoverTo(&bt.err)
	if err := s.fault(FaultSolve, reqCtx); err != nil {
		bt.err = err
		return
	}
	k := bt.k
	n := e.rows
	e.bbuf = grow(e.bbuf, n*k)
	e.xbuf = grow(e.xbuf, n*k)
	interleave(e.bbuf, bt.bs, n, k)
	clear(e.xbuf[:n*k]) // zero initial guess for every column
	stats, err := krylov.CGBatchCtx(bt.solveCtx, s.rt, e.op, e.bbuf, e.xbuf, k, s.cfg.Tol, s.cfg.MaxIter, e.h, e.ws, s.cfg.Health)
	bt.err = err
	bt.stats = make([]krylov.Stats, len(stats))
	copy(bt.stats, stats) // stats slice is workspace-owned; keep a copy
	deinterleave(bt.xs, e.xbuf, n, k)
	s.m.batchSolves.Add(1)
	s.m.batchedRHS.Add(int64(k))
}

// requestResult extracts one request's columns [lo, lo+m) from a solved
// batch: solutions, per-column stats, and an error iff one of the
// request's own columns failed (a neighbor's failure in the same batch
// is not this request's error). Canceled, panicked, and invalidated
// batches return no solutions at all — a partial CG iterate must never
// be mistaken for an answer.
func (s *Service) requestResult(bt *batch, lo, m int, st *RequestStats) ([][]float64, RequestStats, error) {
	st.Batched = bt.k
	if bt.err != nil {
		switch {
		case errors.Is(bt.err, krylov.ErrCanceled):
			return nil, *st, fmt.Errorf("serve: solve canceled: %w", bt.err)
		case errors.Is(bt.err, ErrPanic), errors.Is(bt.err, ErrInvalidated):
			return nil, *st, fmt.Errorf("serve: %w", bt.err)
		}
	}
	xs := bt.xs[lo : lo+m]
	var err error
	if len(bt.stats) == bt.k {
		st.Columns = append(st.Columns, bt.stats[lo:lo+m]...)
		failed := 0
		for _, cs := range st.Columns {
			if !cs.Converged {
				failed++
			}
		}
		if failed > 0 {
			// Request-scoped error: the batch-wide message counts other
			// callers' columns, which is not this request's diagnostics
			// (the underlying error stays wrapped for errors.Is).
			err = fmt.Errorf("serve: %d of %d requested right-hand side(s) did not converge: %w", failed, m, bt.err)
		}
	} else {
		// The batch solve failed before producing per-column stats.
		err = fmt.Errorf("serve: %w", bt.err)
	}
	return xs, *st, err
}

// solveUncached serves a fingerprint-collision request correctly but
// without touching the cache: a fresh hierarchy and a one-shot solve
// through the same CGBatch kernel, so even this path is bitwise
// identical to the cached one. The request context governs build and
// solve directly (no coalescing to negotiate with), and panic isolation
// applies here too — the state is request-local, but the process must
// survive.
func (s *Service) solveUncached(ctx context.Context, a *sparse.Matrix, bs [][]float64, st *RequestStats) (xs [][]float64, rst RequestStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Add(1)
			xs, rst, err = nil, *st, fmt.Errorf("serve: %w: %v\n%s", ErrPanic, r, debug.Stack())
		}
	}()
	st.Outcome = OutcomeCollision
	h, err := amg.BuildCtx(ctx, a, s.cfg.AMG)
	if err != nil {
		return nil, *st, fmt.Errorf("serve: hierarchy build: %w", err)
	}
	n := a.Rows
	k := len(bs)
	bb := make([]float64, n*k)
	xb := make([]float64, n*k)
	interleave(bb, bs, n, k)
	stats, serr := krylov.CGBatchCtx(ctx, s.rt, a, bb, xb, k, s.cfg.Tol, s.cfg.MaxIter, h, nil, s.cfg.Health)
	bt := &batch{k: k, err: serr}
	for j := 0; j < k; j++ {
		bt.xs = append(bt.xs, make([]float64, n))
	}
	deinterleave(bt.xs, xb, n, k)
	bt.stats = append(bt.stats, stats...)
	return s.requestResult(bt, 0, k, st)
}

// interleave gathers k column vectors into the interleaved multi-RHS
// layout of sparse.SpMM: the k values of row i contiguous at
// [i*k : (i+1)*k].
func interleave(dst []float64, cols [][]float64, n, k int) {
	for j, col := range cols {
		for i := 0; i < n; i++ {
			dst[i*k+j] = col[i]
		}
	}
}

// deinterleave scatters an interleaved multi-RHS block back into the k
// column vectors — the exact inverse of interleave.
func deinterleave(cols [][]float64, src []float64, n, k int) {
	for j, col := range cols {
		for i := 0; i < n; i++ {
			col[i] = src[i*k+j]
		}
	}
}

// samePattern reports exact pattern equality of two same-shape matrices
// (the shape and entry count were already checked at lookup). An exact
// compare, not a second hash: this is the last line of defense against
// fingerprint collisions, and it costs no more than the value compare
// the hit path pays anyway.
func samePattern(x, y *sparse.Matrix) bool {
	for i, p := range x.RowPtr {
		if y.RowPtr[i] != p {
			return false
		}
	}
	for i, c := range x.Col {
		if y.Col[i] != c {
			return false
		}
	}
	return true
}

// sameValues reports bitwise equality of two value arrays. Bitwise (not
// ==) so that the "pay nothing" fast path never conflates values that
// would produce different operators (-0 vs 0 aside, a NaN never gets
// here: the build and refresh paths reject non-finite values).
func sameValues(x, y []float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
			return false
		}
	}
	return true
}

// grow returns s resized to length n, reusing capacity when possible.
func grow(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}
