package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func workerCounts() []int { return []int{1, 2, 3, 7, 16} }

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, w := range workerCounts() {
		rt := New(w)
		for _, n := range []int{0, 1, 5, 511, 512, 513, 10000} {
			hits := make([]int32, n)
			rt.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", w, n, i, h)
				}
			}
		}
	}
}

func TestForEach(t *testing.T) {
	rt := New(4)
	n := 2000
	hits := make([]int32, n)
	rt.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestBlocksPartition(t *testing.T) {
	for _, w := range workerCounts() {
		rt := New(w)
		for _, n := range []int{0, 1, 100, 512, 513, 99999} {
			b := rt.Blocks(n)
			if b[0] != 0 || b[len(b)-1] != n {
				t.Fatalf("workers=%d n=%d: bad boundaries %v", w, n, b)
			}
			for i := 1; i < len(b); i++ {
				if b[i] < b[i-1] {
					t.Fatalf("workers=%d n=%d: non-monotone blocks %v", w, n, b)
				}
			}
		}
	}
}

func TestNewDefaultsWorkers(t *testing.T) {
	if New(0).Workers() <= 0 {
		t.Fatal("New(0) must default to a positive worker count")
	}
	if New(-3).Workers() <= 0 {
		t.Fatal("New(-3) must default to a positive worker count")
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("Workers() = %d, want 5", got)
	}
}

func TestReduceSumMatchesSerial(t *testing.T) {
	f := func(data []int32) bool {
		var want int64
		for _, v := range data {
			want += int64(v)
		}
		for _, w := range workerCounts() {
			rt := New(w)
			got := ReduceSum[int64](rt, len(data), func(i int) int64 { return int64(data[i]) })
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceMax(t *testing.T) {
	rt := New(8)
	data := make([]uint32, 5000)
	for i := range data {
		data[i] = uint32((i * 2654435761) % 100000)
	}
	want := uint32(0)
	for _, v := range data {
		if v > want {
			want = v
		}
	}
	got := ReduceMax[uint32](rt, len(data), func(i int) uint32 { return data[i] })
	if got != want {
		t.Fatalf("ReduceMax = %d, want %d", got, want)
	}
	if ReduceMax[uint32](rt, 0, func(i int) uint32 { return 1 }) != 0 {
		t.Fatal("ReduceMax of empty range must be zero")
	}
}

func scanSerial(in []int64) ([]int64, int64) {
	out := make([]int64, len(in))
	var run int64
	for i, v := range in {
		out[i] = run
		run += v
	}
	return out, run
}

func TestScanExclusiveMatchesSerial(t *testing.T) {
	f := func(raw []int16) bool {
		in := make([]int64, len(raw))
		for i, v := range raw {
			in[i] = int64(v)
		}
		wantOut, wantTotal := scanSerial(in)
		for _, w := range workerCounts() {
			rt := New(w)
			out := make([]int64, len(in)+1)
			total := ScanExclusive(rt, in, out)
			if total != wantTotal || out[len(in)] != wantTotal {
				return false
			}
			for i := range wantOut {
				if out[i] != wantOut[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScanExclusiveLarge(t *testing.T) {
	n := 100000
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(i % 7)
	}
	wantOut, wantTotal := scanSerial(in)
	rt := New(16)
	out := make([]int64, n)
	total := ScanExclusive(rt, in, out)
	if total != wantTotal {
		t.Fatalf("total %d want %d", total, wantTotal)
	}
	for i := range out {
		if out[i] != wantOut[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], wantOut[i])
		}
	}
}

func TestScanExclusiveInPlace(t *testing.T) {
	n := 10000
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(i%13) - 5
	}
	wantOut, wantTotal := scanSerial(in)
	rt := New(8)
	total := ScanExclusive(rt, in, in) // aliased
	if total != wantTotal {
		t.Fatalf("total %d want %d", total, wantTotal)
	}
	for i := range in {
		if in[i] != wantOut[i] {
			t.Fatalf("in-place out[%d] = %d, want %d", i, in[i], wantOut[i])
		}
	}
}

func TestScanExclusiveEmpty(t *testing.T) {
	rt := New(4)
	if got := ScanExclusive(rt, nil, []int64{99}); got != 0 {
		t.Fatalf("empty scan total = %d", got)
	}
}

func TestFilterMatchesSerial(t *testing.T) {
	f := func(data []uint16) bool {
		keep := func(v uint16) bool { return v%3 == 0 }
		var want []uint16
		for _, v := range data {
			if keep(v) {
				want = append(want, v)
			}
		}
		for _, w := range workerCounts() {
			rt := New(w)
			dst := make([]uint16, len(data))
			got := Filter(rt, data, dst, keep)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterLargePreservesOrder(t *testing.T) {
	n := 200000
	src := make([]int32, n)
	for i := range src {
		src[i] = int32(i)
	}
	rt := New(16)
	dst := make([]int32, n)
	got := Filter(rt, src, dst, func(v int32) bool { return v%17 == 0 })
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order violated at %d: %d then %d", i, got[i-1], got[i])
		}
	}
	if len(got) != (n+16)/17 {
		t.Fatalf("kept %d, want %d", len(got), (n+16)/17)
	}
}

func TestFilterEmptyAndAll(t *testing.T) {
	rt := New(8)
	src := []int32{1, 2, 3}
	dst := make([]int32, 3)
	if got := Filter(rt, src, dst, func(int32) bool { return false }); len(got) != 0 {
		t.Fatalf("filter none: got %v", got)
	}
	got := Filter(rt, src, dst, func(int32) bool { return true })
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("filter all: got %v", got)
	}
	if got := Filter(rt, nil, dst, func(int32) bool { return true }); len(got) != 0 {
		t.Fatalf("filter empty src: got %v", got)
	}
}
