// Unpacked-tuple variant of Algorithm 1: identical structure (worklists,
// per-iteration priorities, k=2-specialized column minimum) but with the
// baseline's 3-field tuple representation instead of packed integers.
// This is the "+ Worklists" configuration of the Figure 2 ablation: it
// isolates the benefit of packed status tuples, which is added next.
package mis

import (
	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/par"
)

// mis2Unpacked runs Algorithm 1 with struct-of-arrays tuples.
func mis2Unpacked(g *graph.CSR, kind hash.Kind, rt *par.Runtime) Result {
	n := g.N
	if n == 0 {
		return Result{InSet: []int32{}}
	}
	// Truncate priorities exactly as the packed codec does, so that the
	// unpacked and packed rungs of the ablation produce bit-identical
	// result sets (only their speed differs).
	prioMask := ^uint64(0) >> newCodec(n).idBits
	t := newTriple(n)
	m := newTriple(n)
	wl1 := make([]int32, n)
	wl2 := make([]int32, n)
	for i := range wl1 {
		wl1[i] = int32(i)
		wl2[i] = int32(i)
	}
	buf1 := make([]int32, n)
	buf2 := make([]int32, n)

	rt.For(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			t.stat[v] = statUnd
			t.id[v] = int32(v)
		}
	})

	iter := 0
	for len(wl1) > 0 {
		it64 := uint64(iter)

		// Refresh Row.
		rt.For(len(wl1), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := wl1[i]
				t.rnd[v] = kind.Priority(it64, uint64(v)) & prioMask
			}
		})

		// Refresh Column: minimum tuple over closed neighborhood;
		// IN minima freeze to OUT.
		rt.For(len(wl2), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := wl2[i]
				best := v
				for _, w := range g.Neighbors(v) {
					if tupleLess(t, w, t, best) {
						best = w
					}
				}
				if t.stat[best] == statIn {
					m.stat[v] = statOut
					m.rnd[v] = ^uint64(0)
					m.id[v] = int32(n) // sentinel greater than any id
				} else {
					tupleAssign(m, v, t, best)
				}
			}
		})

		// Decide Set.
		rt.For(len(wl1), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := wl1[i]
				anyOut := m.stat[v] == statOut
				allEq := !anyOut && m.id[v] == v && m.rnd[v] == t.rnd[v] && m.stat[v] == statUnd
				if !anyOut {
					for _, w := range g.Neighbors(v) {
						if m.stat[w] == statOut {
							anyOut = true
							break
						}
						if m.id[w] != v || m.rnd[w] != t.rnd[v] || m.stat[w] != statUnd {
							allEq = false
						}
					}
				}
				if anyOut {
					t.stat[v] = statOut
				} else if allEq {
					t.stat[v] = statIn
				}
			}
		})

		next1 := par.Filter(rt, wl1, buf1, func(v int32) bool { return t.stat[v] == statUnd })
		wl1, buf1 = next1, wl1[:n]
		next2 := par.Filter(rt, wl2, buf2, func(v int32) bool { return m.stat[v] != statOut })
		wl2, buf2 = next2, wl2[:n]
		iter++
	}

	in := make([]int32, 0, n/16+1)
	for v := 0; v < n; v++ {
		if t.stat[v] == statIn {
			in = append(in, int32(v))
		}
	}
	return Result{InSet: in, Iterations: iter}
}
