# Makefile — build, test, and perf-trajectory targets.
#
# `make bench` runs the tracked hot-path micro-benchmarks and writes
# BENCH_PR$(PR).json with current numbers joined against $(BASELINE)
# (BENCH_SEED.json by default; pass BASELINE=BENCH_PR1.json to measure a
# PR against its predecessor), including per-benchmark speedups and the
# derived SpMM-vs-separate-SpMV ratio. The run fails when any derived
# ratio drops more than $(MAXDROP)% below the baseline's recorded ratio
# (set MAXDROP=0 to disable the regression gate).
#
# `make lint` builds the repo's custom vet tool (cmd/amglint, analyzers
# in internal/lint) and runs it over every package via `go vet
# -vettool`. Any diagnostic makes the run exit non-zero.
#
# `make check` is the CI gate: custom analyzers, vet everything, then
# run the determinism suite under the race detector (the worker-pool
# synchronization and the 1/2/8-worker bitwise contract in one pass).

PR ?= 1
BASELINE ?= BENCH_SEED.json
MAXDROP ?= 10
# Each benchmark runs BENCHCOUNT times and benchjson keeps the fastest
# repeat — scheduler/thermal noise only adds time, so min-of-N is what
# makes the $(MAXDROP) gate comparable across runs.
BENCHCOUNT ?= 3
# Benchmarks run at the machine's core count by default; override with
# BENCHPROCS=N to measure a different parallelism. benchjson records the
# value and refuses to compare against a baseline measured at a
# different GOMAXPROCS unless forced (pass FORCE=1).
BENCHPROCS ?= $(shell nproc)
FORCE ?=
BENCH_PATTERN := 'BenchmarkRepeatedMultiply|BenchmarkRepeatedRAP|BenchmarkCGJacobi$$|BenchmarkCGJacobiWorkspace|BenchmarkCGBatch8Jacobi|BenchmarkSpMVHot|BenchmarkSpMVSELL|BenchmarkSpMM8|BenchmarkSpMV8Separate|BenchmarkVCycleApply|BenchmarkVCycleF64Apply|BenchmarkVCycleF32Apply|BenchmarkGSSweepApply|BenchmarkMIS2Repeated|BenchmarkAMGBuild$$|BenchmarkAMGRefresh$$|BenchmarkServeThroughput|BenchmarkSequentialSolves|BenchmarkShardedServe|BenchmarkSingleHierarchyServe|BenchmarkServePrecisionF64|BenchmarkServePrecisionF32|BenchmarkCGNoGuard|BenchmarkCGHealthGuard'

.PHONY: all build test race bench check lint

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

lint:
	go build -o bin/amglint ./cmd/amglint
	go vet -vettool=$(CURDIR)/bin/amglint ./...

check: lint
	go vet ./...
	go test -race -run 'Deterministic|Bitwise|TestWorkspaceReuse|TestZeroRHS|TestMaxIterZero|ServeStress|Cancel|TestSharded|TestRefresh|TestPartition|TestCheck|TestFingerprint|TestF32|TestParsePrecision|TestHealth|TestEscalation|TestQuarantine|TestSolveEndpoint' ./...

bench:
	GOMAXPROCS=$(BENCHPROCS) go test -run '^$$' -bench $(BENCH_PATTERN) -benchtime=1s -count=$(BENCHCOUNT) . \
		| go run ./cmd/benchjson -baseline $(BASELINE) -label pr$(PR) \
			-ratio SpMM8_vs_8xSpMV=SpMV8Separate/SpMM8 \
			-ratio Resetup_vs_FullSetup=AMGBuild/AMGRefresh \
			-ratio SELL_vs_CSR=SpMVHot/SpMVSELL \
			-ratio Serve_vs_SequentialSolves=SequentialSolves/ServeThroughput \
			-ratio Sharded_vs_Single=SingleHierarchyServe/ShardedServe \
			-ratio VCycleF32_vs_F64=VCycleF64Apply/VCycleF32Apply \
			-ratio ServeF32_vs_F64=ServePrecisionF64/ServePrecisionF32 \
			-ratio HealthGuard_vs_Plain=CGNoGuard/CGHealthGuard \
			-maxdrop $(MAXDROP) \
			$(if $(FORCE),-force,) \
			-out BENCH_PR$(PR).json

# benchsmoke runs every benchmark once (no timing fidelity) so the bench
# code itself cannot rot unnoticed; CI runs this on every push.
benchsmoke:
	go test -run '^$$' -bench . -benchtime=1x ./...
