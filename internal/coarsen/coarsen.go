// Package coarsen implements the paper's graph coarsening (aggregation)
// algorithms:
//
//   - Basic (Algorithm 2): MIS-2 vertices become aggregate roots, roots
//     absorb their neighbors, leftovers join an adjacent aggregate
//     arbitrarily. The scheme of Bell et al. used by CUSP and ViennaCL.
//   - MIS2Aggregation (Algorithm 3): a parallel, deterministic version of
//     ML's two-phase MIS-2 aggregation with coupling-based cleanup.
//   - SerialGreedy: a sequential aggregation in the spirit of MueLu's
//     original "Serial Agg" (§VI-F baseline).
//   - D2C: distance-2-coloring-based aggregation, the "Serial D2C" /
//     "NB D2C" baselines of §VI-F (serial or parallel coloring).
//
// All parallel phases write only vertex-owned slots or use snapshot
// ("tentative") labels, so every scheme here is deterministic for any
// worker count.
//
//amg:deterministic
package coarsen

import (
	"fmt"
	"math"

	"mis2go/internal/color"
	"mis2go/internal/graph"
	"mis2go/internal/mis"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// unaggregated marks a vertex not yet assigned to an aggregate.
const unaggregated int32 = -1

// Aggregation is a partition of the vertices into aggregates.
type Aggregation struct {
	// Labels[v] is the aggregate id of vertex v, in [0, NumAggregates).
	Labels []int32
	// NumAggregates is the number of aggregates.
	NumAggregates int
	// Roots lists the aggregate root vertices where the scheme defines
	// them (one per aggregate for MIS-2 based schemes).
	Roots []int32
}

// Options configures the MIS-2 based aggregation schemes.
type Options struct {
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
	// MIS selects options for the inner MIS-2 computations.
	MIS mis.Options
}

// Basic is Algorithm 2: simple MIS-2 coarsening as in Bell et al.
func Basic(g *graph.CSR, opt Options) Aggregation {
	opt.MIS.Threads = opt.Threads
	roots := mis.MIS2(g, opt.MIS).InSet
	return BasicFromRoots(g, roots, opt.Threads)
}

// BasicFromRoots runs Algorithm 2's aggregation phases from an
// already-computed MIS-2 (any implementation's — used to reproduce the
// ViennaCL pipeline, which couples Bell's MIS-2 with this coarsening).
func BasicFromRoots(g *graph.CSR, roots []int32, threads int) Aggregation {
	rt := par.New(threads)
	labels := make([]int32, g.N)
	for i := range labels {
		labels[i] = unaggregated
	}
	// Roots and their neighbors form the initial aggregates. Root
	// neighborhoods are disjoint by distance-2 independence.
	rt.For(len(roots), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := roots[i]
			labels[r] = int32(i)
			for _, w := range g.Neighbors(r) {
				labels[w] = int32(i)
			}
		}
	})
	// Leftovers join an adjacent aggregate; "arbitrarily" in the paper,
	// here deterministically the minimum adjacent label from the phase-1
	// snapshot. Every leftover is at distance exactly 2 from a root, so
	// it has an aggregated neighbor.
	tent := append([]int32(nil), labels...)
	rt.For(g.N, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if tent[v] != unaggregated {
				continue
			}
			best := unaggregated
			for _, w := range g.Neighbors(int32(v)) {
				if a := tent[w]; a != unaggregated && (best == unaggregated || a < best) {
					best = a
				}
			}
			labels[v] = best
		}
	})
	agg := Aggregation{Labels: labels, NumAggregates: len(roots), Roots: roots}
	finalizeSingletons(g, &agg)
	return agg
}

// MIS2Aggregation is Algorithm 3: two-phase MIS-2 aggregation with
// coupling-based cleanup, the parallel deterministic equivalent of ML's
// sequential scheme.
func MIS2Aggregation(g *graph.CSR, opt Options) Aggregation {
	opt.MIS.Threads = opt.Threads
	rt := par.New(opt.Threads)

	// Phase 1: initial aggregates from MIS-2 roots and their neighbors.
	m1 := mis.MIS2(g, opt.MIS).InSet
	labels := make([]int32, g.N)
	for i := range labels {
		labels[i] = unaggregated
	}
	rt.For(len(m1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := m1[i]
			labels[r] = int32(i)
			for _, w := range g.Neighbors(r) {
				labels[w] = int32(i)
			}
		}
	})
	numAgg := len(m1)
	roots := append([]int32(nil), m1...)

	// Phase 2: a second MIS-2 on the subgraph induced by unaggregated
	// vertices; its members become roots only if they still have at least
	// 2 unaggregated neighbors (smaller aggregates would increase fill-in
	// during smoothing).
	keep := make([]bool, g.N)
	anyLeft := false
	for v := 0; v < g.N; v++ {
		if labels[v] == unaggregated {
			keep[v] = true
			anyLeft = true
		}
	}
	if anyLeft {
		sub, _, toOrig := g.InducedSubgraph(keep)
		m2 := mis.MIS2(sub, opt.MIS).InSet

		qualified := make([]int, len(m2))
		rt.For(len(m2), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				r := toOrig[m2[i]]
				cnt := 0
				for _, w := range g.Neighbors(r) {
					if labels[w] == unaggregated {
						cnt++
					}
				}
				if cnt >= 2 {
					qualified[i] = 1
				}
			}
		})
		offsets := make([]int, len(m2)+1)
		newAggs := par.ScanExclusive(rt, qualified, offsets)
		rt.For(len(m2), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if qualified[i] == 0 {
					continue
				}
				r := toOrig[m2[i]]
				id := int32(numAgg + offsets[i])
				labels[r] = id
				for _, w := range g.Neighbors(r) {
					if labels[w] == unaggregated {
						labels[w] = id
					}
				}
			}
		})
		for i, q := range qualified {
			if q == 1 {
				roots = append(roots, toOrig[m2[i]])
			}
		}
		numAgg += int(newAggs)
	}

	// Phase 3: cleanup. Aggregate sizes and couplings are computed from
	// the tentative labels saved here, which stay constant during the
	// phase — this is what makes the cleanup deterministic.
	tent := append([]int32(nil), labels...)
	aggSize := make([]int32, numAgg)
	for _, a := range tent {
		if a != unaggregated {
			aggSize[a]++
		}
	}
	rt.For(g.N, func(lo, hi int) {
		// Per-worker scratch for adjacent aggregate labels and counts.
		var la []int32
		var ct []int32
		for v := lo; v < hi; v++ {
			if tent[v] != unaggregated {
				continue
			}
			la = la[:0]
			ct = ct[:0]
			for _, w := range g.Neighbors(int32(v)) {
				a := tent[w]
				if a == unaggregated {
					continue
				}
				found := false
				for j, l := range la {
					if l == a {
						ct[j]++
						found = true
						break
					}
				}
				if !found {
					la = append(la, a)
					ct = append(ct, 1)
				}
			}
			best := unaggregated
			var bestC, bestS int32
			for j, a := range la {
				c, s := ct[j], aggSize[a]
				if best == unaggregated || c > bestC ||
					(c == bestC && (s < bestS || (s == bestS && a < best))) {
					best, bestC, bestS = a, c, s
				}
			}
			labels[v] = best
		}
	})
	agg := Aggregation{Labels: labels, NumAggregates: numAgg, Roots: roots}
	finalizeSingletons(g, &agg)
	return agg
}

// finalizeSingletons assigns fresh aggregate ids to any vertices that are
// still unaggregated (possible only in disconnected corner cases, e.g.
// isolated vertices were already handled as MIS-2 roots, but a defensive
// sweep keeps every scheme total). Serial and deterministic.
func finalizeSingletons(g *graph.CSR, agg *Aggregation) {
	for v := 0; v < g.N; v++ {
		if agg.Labels[v] == unaggregated {
			agg.Labels[v] = int32(agg.NumAggregates)
			agg.NumAggregates++
			agg.Roots = append(agg.Roots, int32(v))
		}
	}
}

// SerialGreedy is a sequential uncoupled aggregation in the spirit of
// MueLu's original host-only scheme ("Serial Agg" in Table V): a first
// pass makes a root of every vertex whose whole neighborhood is
// unaggregated; following passes join leftovers to the adjacent aggregate
// with the strongest coupling; stranded vertices become singletons.
func SerialGreedy(g *graph.CSR) Aggregation {
	labels := make([]int32, g.N)
	for i := range labels {
		labels[i] = unaggregated
	}
	numAgg := 0
	var roots []int32
	for v := int32(0); int(v) < g.N; v++ {
		if labels[v] != unaggregated {
			continue
		}
		free := true
		for _, w := range g.Neighbors(v) {
			if labels[w] != unaggregated {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		id := int32(numAgg)
		numAgg++
		roots = append(roots, v)
		labels[v] = id
		for _, w := range g.Neighbors(v) {
			labels[w] = id
		}
	}
	// Join leftovers to the most-coupled adjacent aggregate, sweeping
	// until stable.
	for changed := true; changed; {
		changed = false
		for v := int32(0); int(v) < g.N; v++ {
			if labels[v] != unaggregated {
				continue
			}
			best := unaggregated
			bestC := 0
			for _, w := range g.Neighbors(v) {
				a := labels[w]
				if a == unaggregated {
					continue
				}
				c := 0
				for _, u := range g.Neighbors(v) {
					if labels[u] == a {
						c++
					}
				}
				if c > bestC || (c == bestC && best != unaggregated && a < best) {
					best, bestC = a, c
				}
			}
			if best != unaggregated {
				labels[v] = best
				changed = true
			}
		}
	}
	agg := Aggregation{Labels: labels, NumAggregates: numAgg, Roots: roots}
	finalizeSingletons(g, &agg)
	return agg
}

// D2C is distance-2-coloring based aggregation (the Serial D2C and NB D2C
// baselines): color the graph at distance 2, then process color classes in
// order; same-colored vertices have disjoint neighborhoods, so roots of
// one color aggregate in parallel without conflicts. parallelColoring
// selects the device ("NB") coloring; otherwise the serial coloring is
// used, as in MueLu's reverse-offload path.
func D2C(g *graph.CSR, threads int, parallelColoring bool) Aggregation {
	rt := par.New(threads)
	var colors []int32
	if parallelColoring {
		colors = color.ParallelDistance2(g, threads)
	} else {
		colors = color.GreedyDistance2(g)
	}
	sets := color.Sets(colors)

	labels := make([]int32, g.N)
	for i := range labels {
		labels[i] = unaggregated
	}
	numAgg := 0
	var roots []int32
	qualified := make([]int, g.N)
	offsets := make([]int, g.N+1)
	for _, set := range sets {
		// Roots of this color: unaggregated with >= 2 unaggregated
		// neighbors (same threshold as Algorithm 3 phase 2).
		q := qualified[:len(set)]
		rt.For(len(set), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := set[i]
				q[i] = 0
				if labels[v] != unaggregated {
					continue
				}
				cnt := 0
				for _, w := range g.Neighbors(v) {
					if labels[w] == unaggregated {
						cnt++
					}
				}
				if cnt >= 2 {
					q[i] = 1
				}
			}
		})
		off := offsets[:len(set)+1]
		newAggs := par.ScanExclusive(rt, q, off)
		rt.For(len(set), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if q[i] == 0 {
					continue
				}
				v := set[i]
				id := int32(numAgg + off[i])
				labels[v] = id
				for _, w := range g.Neighbors(v) {
					if labels[w] == unaggregated {
						labels[w] = id
					}
				}
			}
		})
		for i := range set {
			if q[i] == 1 {
				roots = append(roots, set[i])
			}
		}
		numAgg += int(newAggs)
	}
	// Leftovers: join by max coupling against a snapshot, sweeping until
	// stable; stranded clusters become singletons via finalize.
	for {
		tent := append([]int32(nil), labels...)
		changed := par.ReduceSum[int64](rt, g.N, func(v int) int64 {
			if tent[v] != unaggregated {
				return 0
			}
			best := unaggregated
			bestC := 0
			for _, w := range g.Neighbors(int32(v)) {
				a := tent[w]
				if a == unaggregated {
					continue
				}
				c := 0
				for _, u := range g.Neighbors(int32(v)) {
					if tent[u] == a {
						c++
					}
				}
				if c > bestC || (c == bestC && best != unaggregated && a < best) {
					best, bestC = a, c
				}
			}
			if best == unaggregated {
				return 0
			}
			labels[v] = best
			return 1
		})
		if changed == 0 {
			break
		}
	}
	agg := Aggregation{Labels: labels, NumAggregates: numAgg, Roots: roots}
	finalizeSingletons(g, &agg)
	return agg
}

// Check verifies that the aggregation is total and well-formed: every
// vertex assigned a label in range, every aggregate nonempty and (except
// for singletons) connected through the graph.
func Check(g *graph.CSR, agg Aggregation) error {
	if len(agg.Labels) != g.N {
		return fmt.Errorf("coarsen: %d labels for %d vertices", len(agg.Labels), g.N)
	}
	size := make([]int, agg.NumAggregates)
	for v, a := range agg.Labels {
		if a < 0 || int(a) >= agg.NumAggregates {
			return fmt.Errorf("coarsen: vertex %d has label %d out of range", v, a)
		}
		size[a]++
	}
	for a, s := range size {
		if s == 0 {
			return fmt.Errorf("coarsen: aggregate %d is empty", a)
		}
	}
	return nil
}

// Sizes returns the vertex count of each aggregate.
func Sizes(agg Aggregation) []int {
	s := make([]int, agg.NumAggregates)
	for _, a := range agg.Labels {
		if a >= 0 {
			s[a]++
		}
	}
	return s
}

// QualityStats summarizes an aggregation for quality comparison
// (the data behind Table V's iteration differences and the partitioning
// comparison of Gilbert et al.).
type QualityStats struct {
	// NumAggregates and MeanSize describe the coarsening rate.
	NumAggregates int
	MeanSize      float64
	// MinSize and MaxSize bound the size distribution; irregular sizes
	// (large max) correlate with slower multigrid convergence.
	MinSize, MaxSize int
	// BoundaryFraction is the fraction of edges crossing aggregates:
	// lower means better-localized aggregates.
	BoundaryFraction float64
}

// Quality computes QualityStats for an aggregation of g.
func Quality(g *graph.CSR, agg Aggregation) QualityStats {
	sizes := Sizes(agg)
	st := QualityStats{NumAggregates: agg.NumAggregates}
	if agg.NumAggregates == 0 {
		return st
	}
	st.MinSize, st.MaxSize = sizes[0], sizes[0]
	for _, s := range sizes {
		if s < st.MinSize {
			st.MinSize = s
		}
		if s > st.MaxSize {
			st.MaxSize = s
		}
	}
	st.MeanSize = float64(g.N) / float64(agg.NumAggregates)
	if g.NumEdges() > 0 {
		cross := 0
		for v := int32(0); int(v) < g.N; v++ {
			for _, w := range g.Neighbors(v) {
				if w > v && agg.Labels[v] != agg.Labels[w] {
					cross++
				}
			}
		}
		st.BoundaryFraction = float64(cross) / float64(g.NumEdges()/2)
	}
	return st
}

// CoarseGraph collapses g according to the aggregation: coarse vertices
// are aggregates; a coarse edge links aggregates joined by any fine edge.
func CoarseGraph(g *graph.CSR, agg Aggregation) *graph.CSR {
	edges := make([]graph.Edge, 0, g.NumEdges()/2)
	for v := int32(0); int(v) < g.N; v++ {
		av := agg.Labels[v]
		for _, w := range g.Neighbors(v) {
			if w > v {
				aw := agg.Labels[w]
				if av != aw {
					edges = append(edges, graph.Edge{U: av, V: aw})
				}
			}
		}
	}
	return graph.FromEdges(agg.NumAggregates, edges)
}

// Prolongator builds the tentative prolongation matrix P0 for smoothed
// aggregation: column a has entries 1/sqrt(|a|) on the vertices of
// aggregate a (piecewise-constant near-nullspace, orthonormal columns).
func Prolongator(agg Aggregation) *sparse.Matrix {
	n := len(agg.Labels)
	sizes := Sizes(agg)
	inv := make([]float64, agg.NumAggregates)
	for a, s := range sizes {
		if s > 0 {
			inv[a] = 1 / math.Sqrt(float64(s))
		}
	}
	p := &sparse.Matrix{Rows: n, Cols: agg.NumAggregates}
	p.RowPtr = make([]int, n+1)
	p.Col = make([]int32, n)
	p.Val = make([]float64, n)
	for v := 0; v < n; v++ {
		p.RowPtr[v+1] = v + 1
		p.Col[v] = agg.Labels[v]
		p.Val[v] = inv[agg.Labels[v]]
	}
	return p
}
