// Packed status tuples (paper §V-C).
//
// Bell's algorithm stores a 3-element tuple (status, random priority,
// vertex id) per vertex. Algorithm 1 compresses the tuple into a single
// unsigned integer:
//
//	IN  = 0
//	OUT = all ones
//	undecided = (priority << b) | (id + 1),  b = ceil(log2(|V| + 2))
//
// The ordering IN < undecided < OUT is preserved by construction, the id
// in the low bits acts as a tiebreak (tuples are unique), and equation (1)
// of the paper shows no undecided value can collide with IN or OUT.
package mis

import "math/bits"

// tupleIn and tupleOut are the special packed values for decided vertices.
const (
	tupleIn  uint64 = 0
	tupleOut uint64 = ^uint64(0)
)

// codec packs and unpacks status tuples for a graph with n vertices.
type codec struct {
	idBits uint // b = ceil(log2(n+2))
	idMask uint64
}

func newCodec(n int) codec {
	b := uint(bits.Len64(uint64(n) + 1)) // 2^b >= n+2 (see DESIGN.md / paper eq. 1)
	return codec{idBits: b, idMask: (uint64(1) << b) - 1}
}

// pack builds the undecided tuple for vertex v with the given hash value.
// The priority occupies the top 64-b bits; the vertex id + 1 the low b bits.
func (c codec) pack(priority uint64, v int32) uint64 {
	return (priority << c.idBits) | (uint64(v) + 1)
}

// isUndecided reports whether t is neither IN nor OUT.
func isUndecided(t uint64) bool { return t != tupleIn && t != tupleOut }

// id recovers the vertex id from an undecided packed tuple.
func (c codec) id(t uint64) int32 { return int32(t&c.idMask) - 1 }

// priority recovers the (truncated) priority from an undecided tuple.
func (c codec) priority(t uint64) uint64 { return t >> c.idBits }
