package krylov

import (
	"errors"
	"fmt"
	"math"
)

// Classified numerical-failure sentinels. A solve that fails for a
// numerical reason wraps exactly one of these (plus ErrNotConverged for
// plain MaxIter exhaustion), so callers can branch on the failure class
// with errors.Is: a diverging solve wants a stronger method, a
// stagnating one a better preconditioner, a non-finite one rejection of
// the inputs, a breakdown an indefinite-capable solver.
var (
	// ErrDiverged is wrapped when the health guard sees the relative
	// residual exceed DivergeFactor times the best residual seen so far
	// for DivergeWindow consecutive iterations, and by the
	// false-convergence check when the recurrence residual that stopped
	// the iteration disagrees with the recomputed true residual beyond
	// falseConvergenceLimit (on singular systems the recurrence
	// residual drifts arbitrarily far from ||b - Ax|| and "converges"
	// on garbage).
	ErrDiverged = errors.New("krylov: solve diverged")
	// ErrStagnated is wrapped when the health guard sees no relative
	// progress of at least StagnationRel over StagnationWindow
	// consecutive iterations.
	ErrStagnated = errors.New("krylov: solve stagnated")
	// ErrNonFinite is wrapped when a residual norm becomes NaN or Inf —
	// the iteration has been destroyed by non-finite inputs or overflow
	// and no further iteration can recover it.
	ErrNonFinite = errors.New("krylov: non-finite residual")
	// ErrBreakdown is wrapped by the CG solvers when p^T A p <= 0: the
	// operator is not positive definite and the CG recurrence is invalid.
	ErrBreakdown = errors.New("krylov: CG breakdown (matrix not SPD?)")
)

// falseConvergenceSlack bounds the ordinary drift tolerated between
// the residual estimate that stopped the iteration (the CG recurrence
// norm, GMRES's preconditioned Givens estimate) and the recomputed
// true residual ||b - Ax|| / ||b||; see falseConvergenceLimit.
const falseConvergenceSlack = 100

// falseConvergenceLimit is the true-residual level above which a solve
// whose residual estimate passed tol is classified ErrDiverged (false
// convergence) instead of converged: max(falseConvergenceSlack*tol,
// sqrt(tol)). On healthy systems estimate and true residual agree to
// within a small factor at convergence — the slack term covers that.
// The sqrt(tol) term leaves room for the attainable-accuracy floor of
// ill-conditioned systems (~eps*cond), where the recurrence keeps
// descending below a tight tolerance while the true residual
// legitimately stalls orders of magnitude higher yet is still a usable
// answer; what the check rejects is the singular-system failure mode
// where the estimate "converges" while the true residual is O(1) or
// worse — an iterate that explains nothing of b. The check reads only
// the final recomputed residual every solver already produces for
// Stats, so it is always on (independent of any Health guard) and
// never perturbs the iteration. Non-positive tolerances disable it
// (no scale to measure drift against).
func falseConvergenceLimit(tol float64) float64 {
	if s := math.Sqrt(tol); s > falseConvergenceSlack*tol {
		return s
	}
	return falseConvergenceSlack * tol
}

// Health configures the per-iteration health guard of the *Ctx solvers.
// The guard reads only the relative residual the iteration has already
// computed for its convergence test — it adds no reductions and never
// perturbs the recurrence, so a guarded solve that stays healthy is
// bitwise identical to an unguarded one at every worker count. A nil
// *Health disables the guard entirely. The zero value of any field
// selects its default.
type Health struct {
	// DivergeFactor: the solve is declared diverged when the relative
	// residual exceeds DivergeFactor times the best residual seen so
	// far for DivergeWindow consecutive iterations. Default 1e4.
	DivergeFactor float64
	// DivergeWindow is the number of consecutive over-factor iterations
	// required before ErrDiverged (a single spike is normal for CG on
	// an ill-conditioned system). Default 5.
	DivergeWindow int
	// StagnationWindow is the number of consecutive iterations without
	// relative progress of at least StagnationRel before ErrStagnated.
	// The default (100) is deliberately conservative: ill-conditioned
	// CG plateaus for long stretches before converging, and a guard
	// that kills those is worse than no guard. Default 100.
	StagnationWindow int
	// StagnationRel is the minimum relative improvement over the last
	// progress mark that counts as progress: rel <= mark*(1 -
	// StagnationRel) resets the stagnation counter. Default 1e-3.
	StagnationRel float64
}

// DefaultHealth returns a guard with all defaults: divergence at 1e4×
// the best residual for 5 iterations, stagnation after 100 iterations
// without 0.1% relative progress.
func DefaultHealth() *Health { return &Health{} }

func (h *Health) divergeFactor() float64 {
	if h.DivergeFactor > 0 {
		return h.DivergeFactor
	}
	return 1e4
}

func (h *Health) divergeWindow() int {
	if h.DivergeWindow > 0 {
		return h.DivergeWindow
	}
	return 5
}

func (h *Health) stagnationWindow() int {
	if h.StagnationWindow > 0 {
		return h.StagnationWindow
	}
	return 100
}

func (h *Health) stagnationRel() float64 {
	if h.StagnationRel > 0 {
		return h.StagnationRel
	}
	return 1e-3
}

// guardState is the per-solve (or, in CGBatch, per-column) state of a
// health guard: the best residual seen, the consecutive over-factor
// count, the last progress mark, and the iterations since it moved.
// The zero value with best/mark = +Inf is the initial state; see
// guardInit.
type guardState struct {
	best  float64
	mark  float64
	over  int
	stall int
}

func guardInit() guardState {
	return guardState{best: math.Inf(1), mark: math.Inf(1)}
}

// check advances the guard by one iteration with relative residual rel
// and returns a classified error if the solve is unhealthy. name and
// col label the error message (col < 0 for single-RHS solves).
func (h *Health) check(g *guardState, name string, col, iter int, rel float64) error {
	if math.IsNaN(rel) || math.IsInf(rel, 0) {
		return guardErr(ErrNonFinite, name, col, iter, rel)
	}
	if rel > h.divergeFactor()*g.best {
		g.over++
		if g.over >= h.divergeWindow() {
			return guardErr(ErrDiverged, name, col, iter, rel)
		}
	} else {
		g.over = 0
	}
	if rel <= g.mark*(1-h.stagnationRel()) {
		g.mark = rel
		g.stall = 0
	} else {
		g.stall++
		if g.stall >= h.stagnationWindow() {
			return guardErr(ErrStagnated, name, col, iter, rel)
		}
	}
	if rel < g.best {
		g.best = rel
	}
	return nil
}

// guardErr builds the classified error carrying the iteration and
// residual state at the moment the guard tripped.
func guardErr(sentinel error, name string, col, iter int, rel float64) error {
	if col >= 0 {
		return fmt.Errorf("%w: %s column %d at iteration %d, relres %.3e", sentinel, name, col, iter, rel)
	}
	return fmt.Errorf("%w: %s at iteration %d, relres %.3e", sentinel, name, iter, rel)
}
