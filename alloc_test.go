// Allocation-regression tests: the hot paths must perform zero heap
// allocations after setup. Each test measures with testing.AllocsPerRun
// at one worker, where every kernel takes its closure-free serial fast
// path and scratch comes from workspaces, preallocated level vectors, or
// the arena. A regression here means a hot loop started allocating —
// exactly the per-call cost the persistent pool and arenas exist to
// remove.
package mis2go

import (
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/gs"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
)

func TestSpMVZeroAllocs(t *testing.T) {
	g := gen.Laplace3D(16, 16, 16)
	a := gen.Laplacian(g, 0.1)
	x := make([]float64, a.Rows)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	rt := par.New(1)
	allocs := testing.AllocsPerRun(20, func() {
		a.SpMV(rt, x, y)
	})
	if allocs != 0 {
		t.Fatalf("SpMV: %v allocs/op, want 0", allocs)
	}
}

func TestCGWorkspaceZeroAllocs(t *testing.T) {
	g := gen.Laplace3D(12, 12, 12)
	a := gen.Laplacian(g, 1e-2)
	n := a.Rows
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	m, err := krylov.Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	rt := par.New(1)
	ws := krylov.NewWorkspace(n)
	// Warm-up solve (also verifies convergence so the error path with
	// its fmt.Errorf allocation is never taken during measurement).
	if _, err := krylov.CGWith(rt, a, b, x, 1e-8, 500, m, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		for i := range x {
			x[i] = 0
		}
		if _, err := krylov.CGWith(rt, a, b, x, 1e-8, 500, m, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CG solve with workspace: %v allocs/op, want 0", allocs)
	}
}

func TestFacadeSolveCGWithZeroAllocs(t *testing.T) {
	g := gen.Laplace3D(12, 12, 12)
	a := gen.Laplacian(g, 1e-2)
	n := a.Rows
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	m, err := JacobiPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewSolverWorkspace(n)
	if _, err := SolveCGWith(a, b, x, 1e-8, 500, m, 1, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		for i := range x {
			x[i] = 0
		}
		if _, err := SolveCGWith(a, b, x, 1e-8, 500, m, 1, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("facade SolveCGWith: %v allocs/op, want 0", allocs)
	}
}

func TestSpMMZeroAllocs(t *testing.T) {
	g := gen.Laplace3D(16, 16, 16)
	a := gen.Laplacian(g, 0.1)
	for _, k := range []int{4, 8} {
		x := make([]float64, a.Cols*k)
		y := make([]float64, a.Rows*k)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		rt := par.New(1)
		allocs := testing.AllocsPerRun(20, func() {
			a.SpMM(rt, k, x, y)
		})
		if allocs != 0 {
			t.Fatalf("SpMM k=%d: %v allocs/op, want 0", k, allocs)
		}
	}
}

func TestCGBatchWorkspaceZeroAllocs(t *testing.T) {
	g := gen.Laplace3D(12, 12, 12)
	a := gen.Laplacian(g, 1e-2)
	n := a.Rows
	const k = 8
	b := make([]float64, n*k)
	x := make([]float64, n*k)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	m, err := JacobiPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewSolverWorkspace(n)
	if _, err := SolveCGBatchWith(a, b, x, k, 1e-8, 500, m, 1, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		for i := range x {
			x[i] = 0
		}
		if _, err := SolveCGBatchWith(a, b, x, k, 1e-8, 500, m, 1, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batch CG solve with workspace: %v allocs/op, want 0", allocs)
	}
}

func TestVCycleZeroAllocs(t *testing.T) {
	g := gen.Laplace3D(12, 12, 12)
	a := gen.Laplacian(g, 1e-2)
	h, err := NewAMG(a, AMGOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	r := make([]float64, n)
	z := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	allocs := testing.AllocsPerRun(10, func() {
		h.Precondition(r, z)
	})
	if allocs != 0 {
		t.Fatalf("V-cycle apply: %v allocs/op, want 0", allocs)
	}
}

// TestVCycleSELLZeroAllocs extends the V-cycle gate to the SELL path:
// every level forced to SELL-C-sigma, the apply still performs zero
// steady-state heap allocations.
func TestVCycleSELLZeroAllocs(t *testing.T) {
	g := gen.Laplace3D(12, 12, 12)
	a := gen.Laplacian(g, 1e-2)
	h, err := NewAMG(a, AMGOptions{Threads: 1, Format: FormatSELL})
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	r := make([]float64, n)
	z := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	allocs := testing.AllocsPerRun(10, func() {
		h.Precondition(r, z)
	})
	if allocs != 0 {
		t.Fatalf("SELL V-cycle apply: %v allocs/op, want 0", allocs)
	}
}

// TestSELLSmootherSweepZeroAllocs gates the SELL smoother kernels
// directly: the fused Jacobi sweep and the SpMV the Chebyshev smoother
// is built from allocate nothing in steady state.
func TestSELLSmootherSweepZeroAllocs(t *testing.T) {
	g := gen.Laplace3D(12, 12, 12)
	a := gen.Laplacian(g, 1e-2)
	op, err := SELLOperator(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	b := make([]float64, n)
	x := make([]float64, n)
	y := make([]float64, n)
	dinv := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
		x[i] = float64(i%7) - 3
		dinv[i] = 0.25
	}
	rt := par.New(1)
	allocs := testing.AllocsPerRun(10, func() {
		op.JacobiSweep(rt, b, dinv, 2.0/3.0, x, y)
		op.SpMV(rt, y, x)
	})
	if allocs != 0 {
		t.Fatalf("SELL smoother sweep: %v allocs/op, want 0", allocs)
	}
}

// TestRefreshSELLZeroAllocs: the values-only numeric re-setup stays
// zero-allocation with SELL-format levels (FillValues is a branch-free
// gather through the cached entry schedule).
func TestRefreshSELLZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector bypasses sync.Pool arena recycling, charging spurious allocations")
	}
	g := gen.Laplace3D(12, 12, 12)
	a := gen.Laplacian(g, 1e-2)
	h, err := NewAMG(a, AMGOptions{Threads: 1, Format: FormatSELL})
	if err != nil {
		t.Fatal(err)
	}
	a2 := a.Clone()
	for p := range a2.Val {
		a2.Val[p] *= 1.25
	}
	for i := 0; i < 2; i++ {
		if err := h.Refresh(a2); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := h.Refresh(a2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SELL Hierarchy.Refresh: %v allocs/op, want 0", allocs)
	}
}

func TestRefreshZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector bypasses sync.Pool arena recycling, charging spurious allocations")
	}
	g := gen.Laplace3D(12, 12, 12)
	a := gen.Laplacian(g, 1e-2)
	h, err := NewAMG(a, AMGOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	// New same-pattern values: the steady-state re-setup input.
	a2 := a.Clone()
	for p := range a2.Val {
		a2.Val[p] *= 1.25
	}
	// Warm-up refreshes populate the arena scratch (SpGEMM mark/acc
	// buffers) and the reused pivot array.
	for i := 0; i < 2; i++ {
		if err := h.Refresh(a2); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := h.Refresh(a2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Hierarchy.Refresh: %v allocs/op, want 0", allocs)
	}
}

func TestGSSweepZeroAllocs(t *testing.T) {
	g := gen.Laplace3D(12, 12, 12)
	a := gen.Laplacian(g, 1e-2)
	for name, build := range map[string]func() (*gs.Multicolor, error){
		"point":   func() (*gs.Multicolor, error) { return gs.NewPoint(a, 1) },
		"cluster": func() (*gs.Multicolor, error) { return NewClusterSGS(a, 1) },
	} {
		m, err := build()
		if err != nil {
			t.Fatal(err)
		}
		n := a.Rows
		b := make([]float64, n)
		x := make([]float64, n)
		for i := range b {
			b[i] = float64(i%5) - 2
		}
		allocs := testing.AllocsPerRun(10, func() {
			m.Apply(b, x, 1, true)
		})
		if allocs != 0 {
			t.Fatalf("%s GS sweep: %v allocs/op, want 0", name, allocs)
		}
	}
}
