// ECL-MIS-style greedy MIS-1 (Burtscher et al., ACM TOPC 2018), the
// algorithm the paper credits for the packed-status idea of §V-C. Two
// things distinguish it from Luby's algorithm:
//
//   - priorities favor low-degree vertices, which empirically yields a
//     larger (higher-quality) maximal independent set than uniform random
//     priorities;
//   - the whole per-vertex state packs into one small integer whose low
//     bit distinguishes decided from undecided, exactly the compression
//     trick Algorithm 1 generalizes (with an id tiebreak, since unlike
//     ECL-MIS our MIS-2 requires globally unique priorities).
package mis

import (
	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/par"
)

// eclStatus packs (priority, undecided-bit). Decided values are even:
// eclIn (all ones shifted, maximal) and eclOut (0). Undecided values are
// odd with the priority in the high bits, so comparisons order undecided
// vertices by priority.
const (
	eclOut uint32 = 0
	eclIn  uint32 = ^uint32(0) &^ 1
)

// eclPriority builds the degree-biased priority of ECL-MIS: the high
// bits prefer low degree, the rest break ties pseudo-randomly.
func eclPriority(v int32, deg int, maxDeg int) uint32 {
	// Bucket degrees into 8 classes; lower degree = higher class.
	class := uint32(7)
	if maxDeg > 0 {
		class = uint32(7 - (8*deg-1)/(maxDeg+1)%8)
	}
	r := uint32(hash.Xorshift64Star(uint64(v)+0xEC1) >> 44) // 20 bits
	return (class<<28 | r<<8) | 1                           // low bit 1 = undecided
}

// ECLMIS1 computes a distance-1 maximal independent set with the ECL-MIS
// strategy. Deterministic for any worker count.
func ECLMIS1(g *graph.CSR, threads int) Result {
	rt := par.New(threads)
	n := g.N
	if n == 0 {
		return Result{InSet: []int32{}}
	}
	maxDeg := g.MaxDegree()
	st := make([]uint32, n)
	rt.For(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			st[v] = eclPriority(int32(v), g.Degree(int32(v)), maxDeg)
		}
	})
	// higher reports whether u's undecided status beats v's, with the id
	// as the deterministic tiebreak ECL-MIS leaves to hardware ordering.
	higher := func(u, v int32) bool {
		if st[u] != st[v] {
			return st[u] > st[v]
		}
		return u > v
	}
	wl := make([]int32, n)
	for i := range wl {
		wl[i] = int32(i)
	}
	buf := make([]int32, n)
	next := make([]uint32, n)
	iter := 0
	for len(wl) > 0 {
		// A vertex joins when it beats all undecided neighbors and has no
		// IN neighbor; it leaves when a neighbor is IN. Decisions are
		// staged in next[] and applied at a barrier (deterministic).
		rt.For(len(wl), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := wl[i]
				decision := st[v]
				localMax := true
				for _, w := range g.Neighbors(v) {
					s := st[w]
					if s == eclIn {
						decision = eclOut
						localMax = false
						break
					}
					if s&1 == 1 && higher(w, v) {
						localMax = false
					}
				}
				if decision != eclOut && localMax {
					decision = eclIn
				}
				next[v] = decision
			}
		})
		rt.For(len(wl), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := wl[i]
				st[v] = next[v]
			}
		})
		remaining := par.Filter(rt, wl, buf, func(v int32) bool { return st[v]&1 == 1 })
		wl, buf = remaining, wl[:n]
		iter++
	}
	in := make([]int32, 0, n/4+1)
	for v := 0; v < n; v++ {
		if st[v] == eclIn {
			in = append(in, int32(v))
		}
	}
	return Result{InSet: in, Iterations: iter}
}
