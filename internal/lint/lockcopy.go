package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCopy is the copylocks-adjacent pass (the x/tools analyzer is not
// vendorable offline, so this is a stdlib reimplementation of the
// subset the repo needs): values whose type transitively contains a
// sync primitive or a sync/atomic value must not be copied. Copying a
// mutex forks its state; copying an atomic counter tears it away from
// its writers. Flagged sites:
//
//   - assignments whose right-hand side copies an existing lock-holding
//     value (composite literals and function results are fresh values
//     and allowed)
//   - function/method arguments passed by value
//   - declared parameters and value receivers of lock-holding types
//   - range clauses whose value variable copies lock-holding elements
//   - return statements returning an existing lock-holding value
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "check values containing sync or sync/atomic state are not copied",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) error {
	lc := &lockChecker{pass: pass, memo: map[types.Type]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				lc.checkFuncSig(n.Recv, n.Type)
			case *ast.FuncLit:
				lc.checkFuncSig(nil, n.Type)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Assigning to the blank identifier evaluates but
					// discards the value: nothing retains the copy.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					lc.checkCopyExpr(rhs, "assignment copies")
				}
			case *ast.GenDecl:
				if n.Tok == token.VAR {
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							lc.checkCopyExpr(v, "initialization copies")
						}
					}
				}
			case *ast.CallExpr:
				lc.checkCallArgs(n)
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := lc.pass.TypesInfo.TypeOf(n.Value); t != nil && lc.containsLock(t) {
						lc.pass.Reportf(n.Value.Pos(), "range value copies %s (iterate by index or over pointers)", t)
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					lc.checkCopyExpr(r, "return copies")
				}
			}
			return true
		})
	}
	return nil
}

type lockChecker struct {
	pass *Pass
	memo map[types.Type]bool
}

// checkFuncSig flags value receivers and by-value parameters of
// lock-holding types at the declaration.
func (lc *lockChecker) checkFuncSig(recv *ast.FieldList, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := lc.pass.TypesInfo.TypeOf(field.Type)
			if t != nil && lc.containsLock(t) {
				lc.pass.Reportf(field.Pos(), "%s of type %s is passed by value (copies its lock/atomic state)", kind, t)
			}
		}
	}
	report(recv, "receiver")
	report(ft.Params, "parameter")
}

// checkCopyExpr flags expressions that copy an existing lock-holding
// value. Fresh values — composite literals, conversions of them, and
// call results (flagged at their return site instead) — are allowed.
func (lc *lockChecker) checkCopyExpr(e ast.Expr, what string) {
	ex := ast.Unparen(e)
	switch ex.(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit, *ast.UnaryExpr:
		return
	}
	t := lc.pass.TypesInfo.TypeOf(ex)
	if t != nil && lc.containsLock(t) {
		lc.pass.Reportf(ex.Pos(), "%s %s (holds lock/atomic state; use a pointer)", what, t)
	}
}

func (lc *lockChecker) checkCallArgs(call *ast.CallExpr) {
	if tv, ok := lc.pass.TypesInfo.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if _, isBuiltin := calleeObj(lc.pass.TypesInfo, call).(*types.Builtin); isBuiltin {
		return // len/cap/new(T)/unsafe tricks don't copy
	}
	for _, arg := range call.Args {
		a := ast.Unparen(arg)
		if _, fresh := a.(*ast.CompositeLit); fresh {
			continue
		}
		t := lc.pass.TypesInfo.TypeOf(a)
		if t != nil && lc.containsLock(t) {
			lc.pass.Reportf(a.Pos(), "call passes %s by value (copies its lock/atomic state)", t)
		}
	}
}

// containsLock reports whether t transitively holds a sync primitive or
// sync/atomic value by value (through struct fields and arrays, not
// through pointers, slices, or maps).
func (lc *lockChecker) containsLock(t types.Type) bool {
	if v, ok := lc.memo[t]; ok {
		return v
	}
	lc.memo[t] = false // breaks cycles; recomputed below
	v := lc.containsLockUncached(t)
	lc.memo[t] = v
	return v
}

func (lc *lockChecker) containsLockUncached(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
					return true
				}
			case "sync/atomic":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lc.containsLock(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return lc.containsLock(u.Elem())
	}
	return false
}
