// Package nilderef exercises the nilderef analyzer: inside the taken
// branch of `if x == nil`, dereferencing x is a guaranteed panic.
package nilderef

type node struct {
	next *node
	val  int
}

func deref(p *node) int {
	if p == nil {
		return p.val // want `field access through p`
	}
	return p.val // fine: p is non-nil here
}

func star(p *node) node {
	if nil == p {
		return *p // want `dereference of p`
	}
	return *p
}

func reassigned(p *node) int {
	if p == nil {
		p = &node{val: 1}
		return p.val // fine: p was rebound above
	}
	return 0
}

func slices(s []int) int {
	if s == nil {
		return s[0] // want `index of s`
	}
	return len(s) // len of nil is fine (and s is non-nil here anyway)
}

func maps(m map[int]int) int {
	if m == nil {
		v := m[1] // reads of a nil map are legal
		m[1] = 2  // want `write to m`
		return v
	}
	return m[1]
}

func funcs(f func() int) int {
	if f == nil {
		return f() // want `call of f`
	}
	return f()
}

func deferredUse(p *node) func() int {
	if p == nil {
		// Conservative: closures run later, possibly after rebinding;
		// the analyzer does not look inside them.
		return func() int { return p.val }
	}
	return nil
}
