// Domain-decomposition example: the third coarsening use case from the
// paper's introduction (overlapping Schwarz methods, citing FROSch).
// Build a two-level additive Schwarz preconditioner whose subdomains come
// from MIS-2-coarsened multilevel partitioning and whose coarse space is
// an MIS-2 aggregation, then compare CG iteration counts against
// block Jacobi (explicit zero overlap), one-level Schwarz and plain CG.
// Finally re-solve after a same-pattern value change through the
// numeric-only Refresh path.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mis2go"
)

func main() {
	g := mis2go.Laplace2D(96, 96)
	a := mis2go.DirichletLaplacian(g, 4)
	n := a.Rows
	fmt.Printf("problem: Laplace2D 96^2 = %d unknowns\n", n)

	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(0.05*float64(i)) + 1
	}

	solve := func(name string, m mis2go.Preconditioner) {
		x := make([]float64, n)
		start := time.Now()
		st, err := mis2go.SolveCG(a, b, x, 1e-10, 3000, m, 0)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-22s %4d CG iterations   %v\n",
			name, st.Iterations, time.Since(start).Round(time.Millisecond))
	}

	solve("plain CG", nil)

	// Overlap: 0 alone would mean "use the default"; OverlapSet makes the
	// zero explicit, giving non-overlapping block Jacobi.
	jacobi, err := mis2go.NewSchwarz(a, mis2go.SchwarzOptions{
		Subdomains: 16, Overlap: 0, OverlapSet: true, NoCoarse: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	solve("block Jacobi", jacobi)

	oneLevel, err := mis2go.NewSchwarz(a, mis2go.SchwarzOptions{Subdomains: 16, NoCoarse: true})
	if err != nil {
		log.Fatal(err)
	}
	solve("one-level Schwarz", oneLevel)

	twoLevel, err := mis2go.NewSchwarz(a, mis2go.SchwarzOptions{Subdomains: 16})
	if err != nil {
		log.Fatal(err)
	}
	st := twoLevel.Stats()
	fmt.Printf("(two-level: requested %d -> %d subdomains, overlap %d, %d AMG + %d dense locals, MIS-2 coarse space of %d)\n",
		st.RequestedSubdomains, st.Subdomains, st.Overlap, st.AMGLocal, st.DenseLocal, st.CoarseSize)
	solve("two-level Schwarz", twoLevel)

	// Time-stepping style value change: same sparsity pattern, scaled
	// values. Refresh replays only the numeric phase — partition, overlap
	// sets, gather schedules and symbolic factorizations are all reused.
	a2 := a.Clone()
	for i := range a2.Val {
		a2.Val[i] *= 1.5
	}
	start := time.Now()
	if err := twoLevel.Refresh(a2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("numeric-only refresh after value change: %v\n",
		time.Since(start).Round(time.Millisecond))
	a = a2
	solve("two-level (refreshed)", twoLevel)
}
