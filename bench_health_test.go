package mis2go_test

import (
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
)

// The health-guard pair measures the per-iteration cost of the guard:
// identical Jacobi-preconditioned CG solves through the same workspace,
// one unguarded and one with the default guard watching every
// iteration's relative residual. The guard reads only the scalar the
// convergence test already computed, so the ratio
// HealthGuard_vs_Plain (CGNoGuard/CGHealthGuard) must stay ~1.

func benchCGGuard(b *testing.B, hg *krylov.Health) {
	g := gen.Laplace3D(24, 24, 24)
	a := gen.Laplacian(g, 1e-4)
	n := a.Rows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	m, err := krylov.Jacobi(a)
	if err != nil {
		b.Fatal(err)
	}
	rt := par.New(0)
	x := make([]float64, n)
	ws := krylov.NewWorkspace(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := krylov.CGCtx(nil, rt, a, rhs, x, 1e-8, 400, m, ws, hg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCGNoGuard(b *testing.B)     { benchCGGuard(b, nil) }
func BenchmarkCGHealthGuard(b *testing.B) { benchCGGuard(b, krylov.DefaultHealth()) }
