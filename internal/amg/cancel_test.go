// Cancellation tests for the Ctx setup variants: between-level checks
// must fire, the error must wrap ErrCanceled plus the context cause,
// pre-mutation cancels must leave the previous numeric state usable,
// and mid-replay cancels must invalidate like any other replay failure.
package amg

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

// countdownCtx cancels after a fixed number of Err() calls, letting
// tests hit a specific between-level check deterministically.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(int64(n))
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestBuildCtxCanceledUpFront(t *testing.T) {
	a, _ := laplaceProblem(8, 8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h, err := BuildCtx(ctx, a, Options{MinCoarseSize: 50})
	if h != nil {
		t.Fatal("canceled build returned a hierarchy")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
}

func TestBuildCtxCanceledBetweenLevels(t *testing.T) {
	a, _ := laplaceProblem(10, 10, 10)
	// First confirm the uncanceled hierarchy is deep enough that a
	// level-1 symbolic check exists to trip.
	ref, err := Build(a.Clone(), Options{MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ref.NumLevels() < 2 {
		t.Skip("hierarchy too shallow for a between-level check")
	}
	// One Err call per symbolic level: allow exactly one, so the level-1
	// check cancels mid-construction.
	h, err := BuildCtx(newCountdownCtx(1), a, Options{MinCoarseSize: 50})
	if h != nil {
		t.Fatal("canceled build returned a hierarchy")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestBuildCtxBackgroundIdentical(t *testing.T) {
	a, b := laplaceProblem(8, 8, 8)
	h1, err := Build(a.Clone(), Options{MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := BuildCtx(context.Background(), a.Clone(), Options{MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	x1 := make([]float64, a.Rows)
	x2 := make([]float64, a.Rows)
	h1.Solve(b, x1, 1e-10, 100)
	h2.Solve(b, x2, 1e-10, 100)
	for i := range x1 {
		if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("bit mismatch at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}

func TestRefreshCtxPreMutationCancelLeavesValid(t *testing.T) {
	a, b := laplaceProblem(8, 8, 8)
	h, err := Build(a.Clone(), Options{MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.Rows)
	h.Solve(b, want, 1e-10, 100)

	a2 := a.Clone()
	a2.Scale(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = h.RefreshCtx(ctx, a2)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if !h.Valid() {
		t.Fatal("pre-mutation cancel invalidated the hierarchy")
	}
	// The previous operator must still solve bitwise identically.
	got := make([]float64, a.Rows)
	h.Solve(b, got, 1e-10, 100)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("previous state corrupted at %d: %g vs %g", i, got[i], want[i])
		}
	}
	// And a later uncanceled refresh must succeed and track the new values.
	if err := h.Refresh(a2); err != nil {
		t.Fatal(err)
	}
	if !h.Valid() {
		t.Fatal("refresh after canceled refresh did not restore validity")
	}
}

func TestRefreshCtxMidReplayCancelInvalidates(t *testing.T) {
	a, _ := laplaceProblem(10, 10, 10)
	h, err := Build(a.Clone(), Options{MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() < 2 {
		t.Skip("hierarchy too shallow for a between-level check")
	}
	a2 := a.Clone()
	a2.Scale(1.5)
	// Err calls in the numeric phase: one pre-mutation, then one per
	// level from level 1 on. Allowing exactly one trips the level-1
	// check with level 0 already replayed.
	err = h.RefreshCtx(newCountdownCtx(1), a2)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if h.Valid() {
		t.Fatal("mid-replay cancel left the hierarchy marked valid")
	}
	// Recovery: a full uncanceled numeric pass restores validity.
	if err := h.BuildNumeric(a2); err != nil {
		t.Fatal(err)
	}
	if !h.Valid() {
		t.Fatal("BuildNumeric after mid-replay cancel did not restore validity")
	}
}
