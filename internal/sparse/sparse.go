// Package sparse implements the CSR sparse matrix substrate: parallel
// sparse matrix-vector products, sparse matrix-matrix products (SpGEMM,
// Gustavson's algorithm), transposition, and the Galerkin triple product
// R*A*P needed by smoothed-aggregation algebraic multigrid.
//
//amg:deterministic
package sparse

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"mis2go/internal/graph"
	"mis2go/internal/par"
)

// Matrix is a sparse matrix in CSR format. Column indices within a row are
// sorted ascending for matrices that pass Validate.
//
// Concurrency: every kernel (SpMV and its fused variants, SpMM,
// JacobiSweep, Diagonal, Graph, Transpose, Multiply/RAP) only reads the
// matrix and writes caller-provided outputs, so any number of
// goroutines may use one Matrix concurrently as long as none mutates
// it — Scale, direct writes to Val, and plan Numeric/Replay calls
// targeting the matrix must be serialized against all readers.
type Matrix struct {
	Rows, Cols int
	RowPtr     []int   // length Rows+1
	Col        []int32 // length NNZ
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *Matrix) NNZ() int { return len(a.Col) }

// Validate checks structural invariants.
func (a *Matrix) Validate() error {
	if a.Rows < 0 || a.Cols < 0 {
		return errors.New("sparse: negative dimension")
	}
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(a.RowPtr), a.Rows+1)
	}
	if a.RowPtr[0] != 0 || a.RowPtr[a.Rows] != len(a.Col) || len(a.Col) != len(a.Val) {
		return errors.New("sparse: inconsistent RowPtr/Col/Val lengths")
	}
	// Validate the whole row-pointer array before scanning any entries:
	// with a non-monotone RowPtr an earlier row's range can overrun
	// len(Col) even though the final pointer checks out (e.g.
	// RowPtr = [0, 3, 2] over 2 entries), so scanning as we check would
	// panic on exactly the malformed input Validate exists to reject.
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
	}
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if a.Col[p] < 0 || int(a.Col[p]) >= a.Cols {
				return fmt.Errorf("sparse: row %d has out-of-range column %d", i, a.Col[p])
			}
			if p > a.RowPtr[i] && a.Col[p-1] >= a.Col[p] {
				return fmt.Errorf("sparse: row %d not sorted/duplicate-free", i)
			}
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if math.IsNaN(a.Val[p]) || math.IsInf(a.Val[p], 0) {
				return fmt.Errorf("sparse: non-finite value at row %d", i)
			}
		}
	}
	return nil
}

// SpMV computes y = A*x in parallel over rows.
//
//amg:hotpath
func (a *Matrix) SpMV(rt *par.Runtime, x, y []float64) {
	if rt.Serial(a.Rows) {
		a.spmvRange(x, y, 0, a.Rows)
		return
	}
	rt.For(a.Rows, func(lo, hi int) {
		a.spmvRange(x, y, lo, hi)
	})
}

// spmvRange is the SpMV kernel for rows [lo, hi): per-row slices for
// bounds-check elimination and a strict left-to-right single-accumulator
// inner loop. The summation order — term p added after term p-1, one
// accumulator — is the canonical per-row order every operator format
// (CSR here, SELL-C-sigma in sell.go) reproduces exactly, so switching
// formats never changes a single bit of any result; independent rows
// still give the out-of-order core plenty of ILP. The per-row order is a
// function of the row alone, keeping results identical for every worker
// count.
//
//amg:hotpath
func (a *Matrix) spmvRange(x, y []float64, lo, hi int) {
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		start, end := rp[i], rp[i+1]
		cols := a.Col[start:end]
		vals := a.Val[start:end]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
	}
}

// SpMVResidual computes r = b - A*x in one traversal of A, fusing the
// elementwise subtraction into the product pass (the V-cycle's residual
// step without the second full-vector sweep). r must not alias x. The
// serial fast path bypasses the closure API so the call is allocation-free.
//
//amg:hotpath
func (a *Matrix) SpMVResidual(rt *par.Runtime, b, x, r []float64) {
	if rt.Serial(a.Rows) {
		a.spmvResidualRange(b, x, r, 0, a.Rows)
		return
	}
	rt.For(a.Rows, func(lo, hi int) {
		a.spmvResidualRange(b, x, r, lo, hi)
	})
}

//amg:hotpath
func (a *Matrix) spmvResidualRange(b, x, r []float64, lo, hi int) {
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		start, end := rp[i], rp[i+1]
		cols := a.Col[start:end]
		vals := a.Val[start:end]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		r[i] = b[i] - s
	}
}

// SpMVAdd computes y += A*x in one traversal of A, fusing the correction
// add into the product pass (the V-cycle's prolongate-and-correct step
// without a scratch vector or second sweep). y must not alias x.
//
//amg:hotpath
func (a *Matrix) SpMVAdd(rt *par.Runtime, x, y []float64) {
	if rt.Serial(a.Rows) {
		a.spmvAddRange(x, y, 0, a.Rows)
		return
	}
	rt.For(a.Rows, func(lo, hi int) {
		a.spmvAddRange(x, y, lo, hi)
	})
}

//amg:hotpath
func (a *Matrix) spmvAddRange(x, y []float64, lo, hi int) {
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		start, end := rp[i], rp[i+1]
		cols := a.Col[start:end]
		vals := a.Val[start:end]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] += s
	}
}

// SpMM computes the multi-RHS product Y = A*X for k right-hand sides.
// X and Y use the interleaved (column-blocked) layout: the k values of
// row i are contiguous at [i*k : (i+1)*k], so one traversal of A serves
// all k right-hand sides and every gather from X touches one contiguous
// block. len(x) must be a.Cols*k and len(y) a.Rows*k. Specialized
// register-accumulator kernels handle the 4- and 8-wide blocks the
// batched solvers use; other widths accumulate directly into Y's row
// block. Deterministic: per-row summation order is fixed.
//
//amg:hotpath
func (a *Matrix) SpMM(rt *par.Runtime, k int, x, y []float64) {
	if k == 1 {
		a.SpMV(rt, x, y)
		return
	}
	if rt.Serial(a.Rows) {
		a.spmmDispatch(k, x, y, 0, a.Rows)
		return
	}
	rt.For(a.Rows, func(lo, hi int) {
		a.spmmDispatch(k, x, y, lo, hi)
	})
}

// spmmDispatch selects the width-specialized kernel for rows [lo, hi).
//
//amg:hotpath
func (a *Matrix) spmmDispatch(k int, x, y []float64, lo, hi int) {
	switch k {
	case 4:
		a.spmm4Range(x, y, lo, hi)
	case 8:
		a.spmm8Range(x, y, lo, hi)
	default:
		a.spmmRange(k, x, y, lo, hi)
	}
}

// spmm4Range is the 4-wide SpMM kernel: four independent accumulators
// per row, one contiguous 4-block gather from X per stored entry.
//
//amg:hotpath
func (a *Matrix) spmm4Range(x, y []float64, lo, hi int) {
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		var s0, s1, s2, s3 float64
		for p := rp[i]; p < rp[i+1]; p++ {
			v := a.Val[p]
			xb := x[int(a.Col[p])*4:]
			xb = xb[:4]
			s0 += v * xb[0]
			s1 += v * xb[1]
			s2 += v * xb[2]
			s3 += v * xb[3]
		}
		yb := y[i*4:]
		yb = yb[:4]
		yb[0], yb[1], yb[2], yb[3] = s0, s1, s2, s3
	}
}

// spmm8Range is the 8-wide SpMM kernel.
//
//amg:hotpath
func (a *Matrix) spmm8Range(x, y []float64, lo, hi int) {
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for p := rp[i]; p < rp[i+1]; p++ {
			v := a.Val[p]
			xb := x[int(a.Col[p])*8:]
			xb = xb[:8]
			s0 += v * xb[0]
			s1 += v * xb[1]
			s2 += v * xb[2]
			s3 += v * xb[3]
			s4 += v * xb[4]
			s5 += v * xb[5]
			s6 += v * xb[6]
			s7 += v * xb[7]
		}
		yb := y[i*8:]
		yb = yb[:8]
		yb[0], yb[1], yb[2], yb[3] = s0, s1, s2, s3
		yb[4], yb[5], yb[6], yb[7] = s4, s5, s6, s7
	}
}

// spmmRange is the generic-width SpMM kernel; it accumulates directly
// into Y's row block (owned by this row), so no scratch is needed.
//
//amg:hotpath
func (a *Matrix) spmmRange(k int, x, y []float64, lo, hi int) {
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		yb := y[i*k : i*k+k]
		for j := range yb {
			yb[j] = 0
		}
		for p := rp[i]; p < rp[i+1]; p++ {
			v := a.Val[p]
			xb := x[int(a.Col[p])*k : int(a.Col[p])*k+k]
			for j, xv := range xb {
				yb[j] += v * xv
			}
		}
	}
}

// Diagonal returns the diagonal entries of A (zero where absent).
func (a *Matrix) Diagonal() []float64 {
	d := make([]float64, a.Rows)
	a.DiagonalInto(par.Default(), d)
	return d
}

// DiagonalInto fills d with the diagonal entries of A (zero where
// absent) in parallel over rows. The serial fast path bypasses the
// closure API so re-setup loops stay allocation-free.
//
//amg:hotpath
func (a *Matrix) DiagonalInto(rt *par.Runtime, d []float64) {
	if rt.Serial(a.Rows) {
		a.diagonalRange(d, 0, a.Rows)
		return
	}
	rt.For(a.Rows, func(lo, hi int) {
		a.diagonalRange(d, lo, hi)
	})
}

//amg:hotpath
func (a *Matrix) diagonalRange(d []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		d[i] = 0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.Col[p]) == i {
				d[i] = a.Val[p]
				break
			}
		}
	}
}

// Graph returns the adjacency structure of A with the diagonal removed,
// symmetrized. This is the graph coarsening and coloring operate on.
func (a *Matrix) Graph() *graph.CSR { return a.GraphWith(par.Default()) }

// GraphWith is Graph with an explicit runtime. For the common case of
// sorted duplicate-free rows (the Validate invariant) the symmetrized
// CSR is built directly with a count + scan + merge over rows of A and
// its structural transpose — no intermediate edge list. Deterministic:
// each output row is a merge of two sorted lists, independent of
// blocking. Matrices with unsorted or duplicate row entries fall back
// to the tolerant edge-list construction.
func (a *Matrix) GraphWith(rt *par.Runtime) *graph.CSR {
	n := a.Rows
	if a.Cols > n {
		n = a.Cols
	}
	if !a.rowsSorted(rt) {
		return a.graphFromEdges(n)
	}
	tPtr, tCol, _ := a.transposeBlocked(rt, n, false, nil)

	g := &graph.CSR{N: n}
	g.RowPtr = make([]int, n+1)
	ar := par.AcquireArena()
	counts := par.Get[int](ar, n)
	// rowOf returns the sorted column list of row i of A (empty past Rows).
	rowOf := func(i int) []int32 {
		if i >= a.Rows {
			return nil
		}
		return a.Col[a.RowPtr[i]:a.RowPtr[i+1]]
	}
	rt.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i] = mergeRow(rowOf(i), tCol[tPtr[i]:tPtr[i+1]], int32(i), nil)
		}
	})
	nnz := par.ScanExclusive(rt, counts, g.RowPtr)
	g.RowPtr[n] = nnz
	g.Col = make([]int32, nnz)
	rt.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mergeRow(rowOf(i), tCol[tPtr[i]:tPtr[i+1]], int32(i), g.Col[g.RowPtr[i]:g.RowPtr[i+1]])
		}
	})
	par.Put(ar, counts)
	par.Put(ar, tPtr)
	par.Put(ar, tCol)
	par.ReleaseArena(ar)
	return g
}

// rowsSorted reports whether every row's column indices are strictly
// ascending (the Validate invariant the merge-based Graph build needs).
func (a *Matrix) rowsSorted(rt *par.Runtime) bool {
	bad := par.ReduceSum(rt, a.Rows, func(i int) int64 {
		for p := a.RowPtr[i] + 1; p < a.RowPtr[i+1]; p++ {
			if a.Col[p-1] >= a.Col[p] {
				return 1
			}
		}
		return 0
	})
	return bad == 0
}

// graphFromEdges is the seed's tolerant Graph construction: materialize
// both triangles as an edge list and let FromEdges sort and dedupe.
func (a *Matrix) graphFromEdges(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, len(a.Col))
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.Col[p]
			if int(j) > i {
				edges = append(edges, graph.Edge{U: int32(i), V: j})
			} else if int(j) < i {
				edges = append(edges, graph.Edge{U: j, V: int32(i)})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// mergeRow merges two sorted duplicate-free column lists, dropping the
// diagonal entry diag, and either counts the union (dst == nil) or
// writes it into dst. Returns the union size.
//
//amg:hotpath
func mergeRow(x, y []int32, diag int32, dst []int32) int {
	k, px, py := 0, 0, 0
	for px < len(x) || py < len(y) {
		var c int32
		switch {
		case py >= len(y) || (px < len(x) && x[px] < y[py]):
			c = x[px]
			px++
		case px >= len(x) || y[py] < x[px]:
			c = y[py]
			py++
		default:
			c = x[px]
			px++
			py++
		}
		if c == diag {
			continue
		}
		if dst != nil {
			dst[k] = c
		}
		k++
	}
	return k
}

// Transpose returns A^T using a blocked counting sort over columns
// (deterministic for any worker count; entries within a transposed row
// stay in ascending original-row order).
func (a *Matrix) Transpose() *Matrix { return a.TransposeWith(par.Default()) }

// TransposeWith is Transpose with an explicit runtime.
func (a *Matrix) TransposeWith(rt *par.Runtime) *Matrix {
	t := &Matrix{Rows: a.Cols, Cols: a.Rows}
	ptr, col, val := a.transposeBlocked(rt, a.Cols, true, nil)
	// The arena-backed scratch becomes the result, so copy into exact
	// garbage-collected storage (the matrix outlives the arena borrow).
	t.RowPtr = make([]int, a.Cols+1)
	copy(t.RowPtr, ptr)
	t.Col = make([]int32, len(a.Col))
	copy(t.Col, col)
	t.Val = make([]float64, len(a.Val))
	copy(t.Val, val)
	arenaRelease(ptr, col, val)
	return t
}

// arenaRelease returns transposeBlocked scratch to the shared arenas.
func arenaRelease(ptr []int, col []int32, val []float64) {
	ar := par.AcquireArena()
	par.Put(ar, ptr)
	par.Put(ar, col)
	if val != nil {
		par.Put(ar, val)
	}
	par.ReleaseArena(ar)
}

// transposeBlocked computes the transpose of A with ncols output rows
// into arena-backed buffers: per-block column counts, a serial scan, and
// a deterministic parallel scatter (block b's entries for column j land
// after all blocks b' < b, preserving the serial counting-sort order).
// The returned buffers belong to the caller arena pool; callers must
// par.Put them (or copy out) when done. val is nil when withVals is false.
// When perm is non-nil (length NNZ) the scatter also records the
// destination of every input entry — perm[p] is the output position of
// entry p — which is the values-only replay schedule TransposePlan caches.
func (a *Matrix) transposeBlocked(rt *par.Runtime, ncols int, withVals bool, perm []int) (ptr []int, col []int32, val []float64) {
	ar := par.AcquireArena()
	ptr = par.Get[int](ar, ncols+1)
	col = par.Get[int32](ar, len(a.Col))
	if withVals {
		val = par.Get[float64](ar, len(a.Val))
	}
	blocks := rt.Blocks(a.Rows)
	nb := len(blocks) - 1
	// Bound the O(nb*ncols) counting scratch (and the serial offset scan
	// over it) to a small multiple of nnz: wide matrices with many
	// workers would otherwise pay more for the per-block counters than
	// for the transpose itself. The output is blocking-independent, so
	// coarsening the blocks deterministically (a function of the matrix
	// shape and worker count only) never changes results.
	if maxNB := 1 + 4*len(a.Col)/(ncols+1); nb > maxNB {
		nb = maxNB
		chunk := (a.Rows + nb - 1) / nb
		blocks = blocks[:0]
		for lo := 0; lo < a.Rows; lo += chunk {
			blocks = append(blocks, lo)
		}
		blocks = append(blocks, a.Rows)
		nb = len(blocks) - 1
	}
	// starts[b*ncols + j] counts block b's entries in column j, then
	// becomes block b's write cursor for column j.
	starts := par.Get[int](ar, nb*ncols)
	clear(starts)
	rt.ForBlocks(nb, func(b int) {
		cnt := starts[b*ncols : (b+1)*ncols]
		for p := a.RowPtr[blocks[b]]; p < a.RowPtr[blocks[b+1]]; p++ {
			cnt[a.Col[p]]++
		}
	})
	run := 0
	for j := 0; j < ncols; j++ {
		ptr[j] = run
		for b := 0; b < nb; b++ {
			c := starts[b*ncols+j]
			starts[b*ncols+j] = run
			run += c
		}
	}
	ptr[ncols] = run
	rt.ForBlocks(nb, func(b int) {
		fill := starts[b*ncols : (b+1)*ncols]
		for i := blocks[b]; i < blocks[b+1]; i++ {
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				j := a.Col[p]
				col[fill[j]] = int32(i)
				if withVals {
					val[fill[j]] = a.Val[p]
				}
				if perm != nil {
					perm[p] = fill[j]
				}
				fill[j]++
			}
		}
	})
	par.Put(ar, starts)
	par.ReleaseArena(ar)
	return ptr, col, val
}

// insertionSortThreshold is the output-row length at or below which the
// numeric pass sorts column indices with a branchy insertion sort; above
// it, slices.Sort (pdqsort, closure-free). Mesh and Galerkin rows are
// almost always short, so insertion sort dominates in practice.
const insertionSortThreshold = 32

// sortRow sorts a short column slice in place.
//
//amg:hotpath
func sortRow(cols []int32) {
	if len(cols) <= insertionSortThreshold {
		for i := 1; i < len(cols); i++ {
			v := cols[i]
			j := i - 1
			for ; j >= 0 && cols[j] > v; j-- {
				cols[j+1] = cols[j]
			}
			cols[j+1] = v
		}
		return
	}
	slices.Sort(cols)
}

// spgemmScratch is the per-participant accumulator pair of Gustavson's
// algorithm: mark stamps the rows already holding column j, acc holds
// the running dot products. Stamps are global row ids, so reusing the
// buffers across rows, blocks, and whole Multiply calls (via the arena)
// needs only one clear per participant per pass.
type spgemmScratch struct {
	mark []int32
	acc  []float64
}

// Multiply computes C = A*B with Gustavson's row-by-row SpGEMM,
// parallelized over rows of A with per-worker dense accumulators drawn
// from the participants' scratch arenas (reused across calls, e.g. the
// two products of RAP). Deterministic: each output row is computed
// independently and sorted.
func Multiply(rt *par.Runtime, a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("sparse: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := &Matrix{Rows: a.Rows, Cols: b.Cols}
	c.RowPtr = make([]int, a.Rows+1)
	car := par.AcquireArena()
	counts := par.Get[int](car, a.Rows)

	// Symbolic pass: count nnz per output row.
	countProductRows(rt, a, b, counts)
	nnz := par.ScanExclusive(rt, counts, c.RowPtr)
	par.Put(car, counts)
	par.ReleaseArena(car)
	c.Col = make([]int32, nnz)
	c.Val = make([]float64, nnz)

	// Numeric pass.
	par.ForWith(rt, a.Rows,
		func(ar *par.Arena) spgemmScratch {
			s := spgemmScratch{
				mark: par.Get[int32](ar, b.Cols),
				acc:  par.Get[float64](ar, b.Cols),
			}
			for i := range s.mark {
				s.mark[i] = -1
			}
			return s
		},
		func(lo, hi int, s spgemmScratch) {
			mark, acc := s.mark, s.acc
			for i := lo; i < hi; i++ {
				base := c.RowPtr[i]
				k := base
				for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
					ak := a.Val[p]
					row := a.Col[p]
					for q := b.RowPtr[row]; q < b.RowPtr[row+1]; q++ {
						j := b.Col[q]
						if mark[j] != int32(i) {
							mark[j] = int32(i)
							acc[j] = ak * b.Val[q]
							c.Col[k] = j
							k++
						} else {
							acc[j] += ak * b.Val[q]
						}
					}
				}
				cols := c.Col[base:k]
				sortRow(cols)
				for idx := base; idx < k; idx++ {
					c.Val[idx] = acc[c.Col[idx]]
				}
			}
		},
		func(ar *par.Arena, s spgemmScratch) {
			par.Put(ar, s.mark)
			par.Put(ar, s.acc)
		})
	return c, nil
}

// countProductRows fills counts[i] with the nnz of row i of A*B — the
// mark phase of Gustavson's algorithm, shared by the one-shot Multiply
// and the cached-plan symbolic pass (PlanMultiply).
func countProductRows(rt *par.Runtime, a, b *Matrix, counts []int) {
	par.ForWith(rt, a.Rows,
		func(ar *par.Arena) []int32 {
			mark := par.Get[int32](ar, b.Cols)
			for i := range mark {
				mark[i] = -1
			}
			return mark
		},
		func(lo, hi int, mark []int32) {
			for i := lo; i < hi; i++ {
				cnt := 0
				for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
					k := a.Col[p]
					for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
						j := b.Col[q]
						if mark[j] != int32(i) {
							mark[j] = int32(i)
							cnt++
						}
					}
				}
				counts[i] = cnt
			}
		},
		func(ar *par.Arena, mark []int32) { par.Put(ar, mark) })
}

// RAP computes the Galerkin coarse operator R*A*P.
func RAP(rt *par.Runtime, r, a, p *Matrix) (*Matrix, error) {
	ap, err := Multiply(rt, a, p)
	if err != nil {
		return nil, err
	}
	return Multiply(rt, r, ap)
}

// smoothScratch is the per-participant state of SmoothProlongator: the
// Gustavson mark/acc pair for the product D^{-1}A*P0 plus a column
// collector for the product pattern of the current row.
type smoothScratch struct {
	mark []int32
	acc  []float64
	cols []int32
}

// SmoothProlongator computes P = (I - omega*D^{-1}*A) * P0 in a single
// blocked Gustavson pass per row: the product row of D^{-1}A*P0 is
// accumulated with arena-backed mark/acc scratch, then merged with the
// (sorted) row of P0 on write-out. This fuses the row scaling by dinv,
// the SpGEMM, and the sparse Add of the seed's three-step setup into one
// traversal with no intermediate matrices. The per-row accumulation and
// merge order match the three-step composition exactly, so results are
// bitwise identical to it — and independent of the worker count.
func SmoothProlongator(rt *par.Runtime, a, p0 *Matrix, dinv []float64, omega float64) (*Matrix, error) {
	if a.Cols != p0.Rows {
		return nil, fmt.Errorf("sparse: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, p0.Rows, p0.Cols)
	}
	if len(dinv) != a.Rows {
		return nil, fmt.Errorf("sparse: dinv length %d, want %d", len(dinv), a.Rows)
	}
	c := &Matrix{Rows: a.Rows, Cols: p0.Cols}
	c.RowPtr = make([]int, a.Rows+1)
	car := par.AcquireArena()
	counts := par.Get[int](car, a.Rows)

	// Symbolic pass: per row, count the union of the product pattern and
	// the P0 row pattern.
	countSmoothedRows(rt, a, p0, counts)
	nnz := par.ScanExclusive(rt, counts, c.RowPtr)
	par.Put(car, counts)
	par.ReleaseArena(car)
	c.Col = make([]int32, nnz)
	c.Val = make([]float64, nnz)

	// Numeric pass: accumulate the product row, sort its pattern, then
	// two-pointer merge with the P0 row writing p0 - omega*product.
	par.ForWith(rt, a.Rows,
		func(ar *par.Arena) smoothScratch {
			s := smoothScratch{
				mark: par.Get[int32](ar, p0.Cols),
				acc:  par.Get[float64](ar, p0.Cols),
				cols: par.Get[int32](ar, p0.Cols),
			}
			for i := range s.mark {
				s.mark[i] = -1
			}
			return s
		},
		func(lo, hi int, s smoothScratch) {
			mark, acc := s.mark, s.acc
			for i := lo; i < hi; i++ {
				di := dinv[i]
				nc := 0
				for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
					ak := di * a.Val[p]
					row := a.Col[p]
					for q := p0.RowPtr[row]; q < p0.RowPtr[row+1]; q++ {
						j := p0.Col[q]
						if mark[j] != int32(i) {
							mark[j] = int32(i)
							acc[j] = ak * p0.Val[q]
							s.cols[nc] = j
							nc++
						} else {
							acc[j] += ak * p0.Val[q]
						}
					}
				}
				prod := s.cols[:nc]
				sortRow(prod)
				// Merge the sorted product pattern with the sorted P0 row.
				base := c.RowPtr[i]
				k := base
				pp, pq := 0, p0.RowPtr[i]
				ep := nc
				eq := p0.RowPtr[i+1]
				for pp < ep || pq < eq {
					switch {
					case pq >= eq || (pp < ep && prod[pp] < p0.Col[pq]):
						j := prod[pp]
						c.Col[k] = j
						c.Val[k] = -omega * acc[j]
						pp++
					case pp >= ep || p0.Col[pq] < prod[pp]:
						c.Col[k] = p0.Col[pq]
						c.Val[k] = p0.Val[pq]
						pq++
					default:
						j := prod[pp]
						c.Col[k] = j
						c.Val[k] = p0.Val[pq] + -omega*acc[j]
						pp++
						pq++
					}
					k++
				}
			}
		},
		func(ar *par.Arena, s smoothScratch) {
			par.Put(ar, s.mark)
			par.Put(ar, s.acc)
			par.Put(ar, s.cols)
		})
	return c, nil
}

// countSmoothedRows fills counts[i] with the nnz of row i of
// (I - omega*D^{-1}*A)*P0 — the union of the product pattern and the P0
// row pattern — shared by SmoothProlongator and PlanSmoothProlongator.
func countSmoothedRows(rt *par.Runtime, a, p0 *Matrix, counts []int) {
	par.ForWith(rt, a.Rows,
		func(ar *par.Arena) []int32 {
			mark := par.Get[int32](ar, p0.Cols)
			for i := range mark {
				mark[i] = -1
			}
			return mark
		},
		func(lo, hi int, mark []int32) {
			for i := lo; i < hi; i++ {
				cnt := 0
				for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
					k := a.Col[p]
					for q := p0.RowPtr[k]; q < p0.RowPtr[k+1]; q++ {
						j := p0.Col[q]
						if mark[j] != int32(i) {
							mark[j] = int32(i)
							cnt++
						}
					}
				}
				for q := p0.RowPtr[i]; q < p0.RowPtr[i+1]; q++ {
					if mark[p0.Col[q]] != int32(i) {
						cnt++
					}
				}
				counts[i] = cnt
			}
		},
		func(ar *par.Arena, mark []int32) { par.Put(ar, mark) })
}

// Scale multiplies all values by s in place.
func (a *Matrix) Scale(s float64) {
	for i := range a.Val {
		a.Val[i] *= s
	}
}

// Clone returns a deep copy of A.
func (a *Matrix) Clone() *Matrix {
	b := &Matrix{Rows: a.Rows, Cols: a.Cols}
	b.RowPtr = append([]int(nil), a.RowPtr...)
	b.Col = append([]int32(nil), a.Col...)
	b.Val = append([]float64(nil), a.Val...)
	return b
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := &Matrix{Rows: n, Cols: n}
	m.RowPtr = make([]int, n+1)
	m.Col = make([]int32, n)
	m.Val = make([]float64, n)
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.Col[i] = int32(i)
		m.Val[i] = 1
	}
	return m
}

// Add computes A + s*B for matrices with identical dimensions. Every
// output row is sorted and duplicate-free, so the result round-trips
// Validate whenever the input values are finite: rows that are already
// strictly sorted (the Validate invariant) take a linear two-pointer
// merge; rows violating it — unsorted or with repeated columns — are
// gathered, stably sorted, and duplicate-combined instead of silently
// producing an out-of-order result as the seed implementation did.
func Add(a, b *Matrix, s float64) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("sparse: add dimension mismatch")
	}
	c := &Matrix{Rows: a.Rows, Cols: a.Cols}
	c.RowPtr = make([]int, a.Rows+1)
	colBuf := make([]int32, 0, len(a.Col)+len(b.Col))
	valBuf := make([]float64, 0, len(a.Col)+len(b.Col))
	var scratch []addEntry
	for i := 0; i < a.Rows; i++ {
		pa, pb := a.RowPtr[i], b.RowPtr[i]
		ea, eb := a.RowPtr[i+1], b.RowPtr[i+1]
		if !rowStrictlySorted(a.Col[pa:ea]) || !rowStrictlySorted(b.Col[pb:eb]) {
			scratch = scratch[:0]
			for p := pa; p < ea; p++ {
				scratch = append(scratch, addEntry{a.Col[p], a.Val[p]})
			}
			for p := pb; p < eb; p++ {
				scratch = append(scratch, addEntry{b.Col[p], s * b.Val[p]})
			}
			colBuf, valBuf = mergeUnsortedRow(scratch, colBuf, valBuf)
			c.RowPtr[i+1] = len(colBuf)
			continue
		}
		for pa < ea || pb < eb {
			switch {
			case pb >= eb || (pa < ea && a.Col[pa] < b.Col[pb]):
				colBuf = append(colBuf, a.Col[pa])
				valBuf = append(valBuf, a.Val[pa])
				pa++
			case pa >= ea || b.Col[pb] < a.Col[pa]:
				colBuf = append(colBuf, b.Col[pb])
				valBuf = append(valBuf, s*b.Val[pb])
				pb++
			default:
				colBuf = append(colBuf, a.Col[pa])
				valBuf = append(valBuf, a.Val[pa]+s*b.Val[pb])
				pa++
				pb++
			}
		}
		c.RowPtr[i+1] = len(colBuf)
	}
	c.Col = colBuf
	c.Val = valBuf
	return c, nil
}

// addEntry is one (column, value) contribution of Add's slow path.
type addEntry struct {
	col int32
	val float64
}

// rowStrictlySorted reports whether cols is strictly ascending (sorted
// and duplicate-free), the Validate row invariant.
func rowStrictlySorted(cols []int32) bool {
	for p := 1; p < len(cols); p++ {
		if cols[p-1] >= cols[p] {
			return false
		}
	}
	return true
}

// mergeUnsortedRow stably insertion-sorts the row's contributions by
// column (A entries keep preceding B entries on ties, matching the fast
// path's A-then-B summation order) and appends the duplicate-combined
// result to colBuf/valBuf.
func mergeUnsortedRow(entries []addEntry, colBuf []int32, valBuf []float64) ([]int32, []float64) {
	for i := 1; i < len(entries); i++ {
		e := entries[i]
		j := i - 1
		for ; j >= 0 && entries[j].col > e.col; j-- {
			entries[j+1] = entries[j]
		}
		entries[j+1] = e
	}
	for k := 0; k < len(entries); {
		col, val := entries[k].col, entries[k].val
		for k++; k < len(entries) && entries[k].col == col; k++ {
			val += entries[k].val
		}
		colBuf = append(colBuf, col)
		valBuf = append(valBuf, val)
	}
	return colBuf, valBuf
}

// Dense is a small dense matrix used for coarse-grid solves.
//
// Concurrency: Solve only reads the factorization (and writes the
// caller's x), so concurrent Solve calls with distinct vectors are
// safe. Factorize and FillFrom mutate Data and the reused pivot array
// in place and must be serialized against every other method — a
// re-factorization racing a Solve silently corrupts both.
type Dense struct {
	N    int
	Data []float64 // row-major
	piv  []int
}

// MaxDenseN bounds the order of dense coarse-grid systems. A dense
// factorization stores N^2 float64s and runs O(N^3) flops, so a
// misconfigured coarse size (e.g. an AMG MinCoarseSize in the hundreds
// of thousands) would silently try to allocate gigabytes; above this
// bound (128 MiB of storage) ToDense, NewDense, and Factorize return a
// descriptive error instead.
const MaxDenseN = 4096

// checkDenseOrder rejects orders outside the sane coarse-grid range.
func checkDenseOrder(n int) error {
	if n < 0 {
		return errors.New("sparse: negative dense order")
	}
	if n > MaxDenseN {
		return fmt.Errorf("sparse: dense system of order %d exceeds the coarse-grid bound MaxDenseN=%d "+
			"(%.1f GiB of storage); lower the coarse size (e.g. amg Options.MinCoarseSize) or keep coarsening",
			n, MaxDenseN, float64(n)*float64(n)*8/(1<<30))
	}
	return nil
}

// NewDense allocates a zeroed n x n dense matrix, rejecting orders above
// MaxDenseN. Symbolic setup phases use it to preallocate the coarse
// factorization storage once; FillFrom refills it per numeric pass.
func NewDense(n int) (*Dense, error) {
	if err := checkDenseOrder(n); err != nil {
		return nil, err
	}
	return &Dense{N: n, Data: make([]float64, n*n)}, nil
}

// FillFrom overwrites d with the entries of the square sparse matrix a
// (zero where absent). Allocation-free: the repeated-setup path clears
// and rescatters in place.
func (d *Dense) FillFrom(a *Matrix) error {
	if a.Rows != a.Cols {
		return errors.New("sparse: FillFrom requires square matrix")
	}
	if a.Rows != d.N {
		return fmt.Errorf("sparse: FillFrom order %d into dense of order %d", a.Rows, d.N)
	}
	clear(d.Data)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			d.Data[i*a.Rows+int(a.Col[p])] = a.Val[p]
		}
	}
	return nil
}

// ToDense converts a square sparse matrix to dense form. Matrices larger
// than MaxDenseN are rejected (see NewDense).
func (a *Matrix) ToDense() (*Dense, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("sparse: ToDense requires square matrix")
	}
	d, err := NewDense(a.Rows)
	if err != nil {
		return nil, err
	}
	if err := d.FillFrom(a); err != nil {
		return nil, err
	}
	return d, nil
}

// Factorize computes an LU factorization with partial pivoting in place.
// The pivot array is reused across repeated factorizations of the same
// Dense, so refresh loops allocate nothing.
func (d *Dense) Factorize() error {
	n := d.N
	if err := checkDenseOrder(n); err != nil {
		return err
	}
	if cap(d.piv) >= n {
		d.piv = d.piv[:n]
	} else {
		d.piv = make([]int, n)
	}
	for k := 0; k < n; k++ {
		// Pivot selection.
		pk, pmax := k, math.Abs(d.Data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(d.Data[i*n+k]); v > pmax {
				pk, pmax = i, v
			}
		}
		if pmax == 0 {
			return fmt.Errorf("sparse: singular dense matrix at pivot %d", k)
		}
		d.piv[k] = pk
		if pk != k {
			for j := 0; j < n; j++ {
				d.Data[k*n+j], d.Data[pk*n+j] = d.Data[pk*n+j], d.Data[k*n+j]
			}
		}
		inv := 1 / d.Data[k*n+k]
		for i := k + 1; i < n; i++ {
			l := d.Data[i*n+k] * inv
			d.Data[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				d.Data[i*n+j] -= l * d.Data[k*n+j]
			}
		}
	}
	return nil
}

// Solve solves the factorized system in place: x := A^{-1} b.
// Factorize must have been called.
func (d *Dense) Solve(b, x []float64) {
	n := d.N
	copy(x, b)
	for k := 0; k < n; k++ {
		if p := d.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
		for i := k + 1; i < n; i++ {
			x[i] -= d.Data[i*n+k] * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= d.Data[i*n+j] * x[j]
		}
		x[i] = s / d.Data[i*n+i]
	}
}
