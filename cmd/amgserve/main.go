// Command amgserve exposes the concurrent solve service over HTTP: a
// JSON solve endpoint backed by the fingerprint-keyed hierarchy cache
// and request-coalescing batcher, plus plaintext metrics and lifecycle
// probes.
//
//	amgserve -addr :8080 &
//	curl -s localhost:8080/solve -d '{"rows":2,"rowptr":[0,1,2],"col":[0,1],"val":[4,4],"b":[1,2]}'
//	curl -s localhost:8080/metrics
//
// Endpoints:
//
//   - POST /solve accepts a CSR matrix with one right-hand side ("b")
//     or several ("bs") and returns the solution(s), per-column solver
//     stats, and what the request paid at the hierarchy cache ("build",
//     "refresh", "reuse", or "collision"). Repeated solves with the
//     same sparsity pattern pay only a numeric refresh; identical
//     matrices pay nothing; concurrent requests against one operator
//     are coalesced into batched CG solves (watch
//     amgserve_batched_rhs_ratio).
//   - GET /metrics returns plaintext counters.
//   - GET /healthz is liveness: 200 for as long as the process runs.
//   - GET /readyz is readiness: 200 while accepting traffic, 503 once
//     draining.
//
// Lifecycle: on SIGTERM or SIGINT the server flips /readyz to 503,
// rejects new /solve requests with 503 + Retry-After, lets in-flight
// solves finish (bounded by -drain-timeout), then exits. Cancellation
// is honored end to end: a client that disconnects mid-solve has its
// context propagated into the CG iteration loop and AMG setup, so the
// work stops instead of running to completion for nobody.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/serve"
	"mis2go/internal/sparse"
)

// solveRequest is the JSON shape of POST /solve: a CSR matrix (cols
// defaults to rows) and one or more right-hand sides.
type solveRequest struct {
	Rows   int         `json:"rows"`
	Cols   int         `json:"cols,omitempty"`
	RowPtr []int       `json:"rowptr"`
	Col    []int32     `json:"col"`
	Val    []float64   `json:"val"`
	B      []float64   `json:"b,omitempty"`
	Bs     [][]float64 `json:"bs,omitempty"`
}

// columnResult is one solved right-hand side.
type columnResult struct {
	X           []float64 `json:"x"`
	Iterations  int       `json:"iterations"`
	RelResidual float64   `json:"relres"`
	Converged   bool      `json:"converged"`
}

// solveResponse is the JSON shape of a solve that produced results.
type solveResponse struct {
	Outcome string `json:"outcome"`
	Batched int    `json:"batched"`
	// Sharded/Subdomains report the domain-decomposed path (requests at
	// or above -shard-threshold rows).
	Sharded    bool `json:"sharded,omitempty"`
	Subdomains int  `json:"subdomains,omitempty"`
	// Precision is the operator value precision that served the solve
	// ("f64", "f32", or "auto" for mixed per-level storage); the CG
	// recurrence itself is always float64.
	Precision string         `json:"precision"`
	Columns   []columnResult `json:"columns"`
	// X mirrors Columns[0].X for single-RHS requests whose column
	// converged, so the common case stays a one-field read; an
	// unconverged iterate is never surfaced through the convenience
	// field.
	X []float64 `json:"x,omitempty"`
	// Converged reports every requested column met the tolerance;
	// RelResidual is the worst final relative residual across them.
	Converged   bool    `json:"converged"`
	RelResidual float64 `json:"relres"`
	// Escalations names the escalation-ladder rungs the service
	// attempted for this request (the last one listed recovered it when
	// the response is otherwise successful).
	Escalations []string `json:"escalations,omitempty"`
	// Error carries the solver error when some column did not converge;
	// the response status is then 422 and the per-column results and
	// stats are still included.
	Error string `json:"error,omitempty"`
}

// app is the HTTP layer over the solve service plus the lifecycle
// state the probes and drain sequence read.
type app struct {
	svc     *serve.Service
	maxBody int64
	// draining flips once, on the shutdown signal: /readyz goes 503 so
	// load balancers stop routing here, and new /solve admissions are
	// refused with Retry-After while in-flight work finishes.
	draining atomic.Bool
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 8, "hierarchy cache capacity (distinct sparsity patterns)")
	window := flag.Duration("window", 200*time.Microsecond, "batching window for coalescing same-operator requests (negative disables)")
	maxBatch := flag.Int("maxbatch", 8, "max right-hand sides coalesced into one batched CG call")
	inflight := flag.Int("inflight", 0, "max in-flight requests, 0 = 4*GOMAXPROCS (backpressure bound)")
	maxBody := flag.Int64("maxbody", 512<<20, "max /solve request body bytes")
	tol := flag.Float64("tol", 1e-8, "relative residual tolerance")
	maxIter := flag.Int("maxiter", 500, "CG iteration cap")
	threads := flag.Int("threads", 0, "solver worker count, 0 = all cores")
	precName := flag.String("precision", "f64", "operator value precision: f64, f32, auto (f32 below the finest level; CG recurrence stays f64)")
	shardThreshold := flag.Int("shard-threshold", 0, "route requests with at least this many rows through domain-decomposed sharded solves, 0 disables (size -cache for the per-subdomain entries)")
	shardSubdomains := flag.Int("shard-subdomains", 0, "subdomain count for sharded solves (rounded up to a power of two), 0 = rows/256")
	solveTimeout := flag.Duration("solve-timeout", 0, "per-request deadline covering admission, setup, and solve; expired requests return 504 (0 disables)")
	maxEscalations := flag.Int("max-escalations", 0, "escalation-ladder rungs tried after a classified numerical failure, 0 = default 3, negative disables")
	quarantineThreshold := flag.Int("quarantine-threshold", 0, "consecutive numerical failures before a pattern is quarantined (429), 0 = default 3, negative disables")
	quarantineCooldown := flag.Duration("quarantine-cooldown", 0, "base quarantine duration before a half-open probe, 0 = default 1s")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight solves after SIGTERM before forcing exit")
	flag.Parse()
	prec, err := sparse.ParsePrecision(*precName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	svc := serve.New(serve.Config{
		AMG:             amg.Options{Threads: *threads},
		Precision:       prec,
		Tol:             *tol,
		MaxIter:         *maxIter,
		CacheCapacity:   *cache,
		BatchWindow:     *window,
		MaxBatch:        *maxBatch,
		MaxInFlight:     *inflight,
		Threads:         *threads,
		ShardThreshold:  *shardThreshold,
		ShardSubdomains: *shardSubdomains,

		SolveTimeout:        *solveTimeout,
		MaxEscalations:      *maxEscalations,
		QuarantineThreshold: *quarantineThreshold,
		QuarantineCooldown:  *quarantineCooldown,
	})
	ap := &app{svc: svc, maxBody: *maxBody}
	log.Printf("amgserve listening on %s (cache %d, window %v, maxbatch %d)", *addr, *cache, *window, *maxBatch)
	// Explicit server timeouts: a public solve endpoint must not let
	// slow or stalled clients pin connection goroutines forever (the
	// write timeout is generous — solutions for large systems are big).
	srv := &http.Server{
		Addr:              *addr,
		Handler:           ap.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	if err := run(srv, ap, sig, *drainTimeout); err != nil {
		log.Fatal(err)
	}
}

// run serves until the listener fails or a shutdown signal arrives,
// then drains: readiness goes down first, new admissions are refused,
// and http.Server.Shutdown waits for in-flight requests up to
// drainTimeout. http.ErrServerClosed is the clean-shutdown sentinel,
// never an error. Split from main so tests can drive the sequence.
func run(srv *http.Server, ap *app, sig <-chan os.Signal, drainTimeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("amgserve: serve: %w", err)
	case s := <-sig:
		log.Printf("amgserve: %v: draining (readiness down, finishing in-flight, limit %v)", s, drainTimeout)
		ap.draining.Store(true)
		// Keep accepting connections briefly after readiness flips:
		// Shutdown closes the listener immediately, so without this
		// window load balancers see connection-refused instead of the
		// 503 + Retry-After the probes and rejections exist to provide.
		grace := 500 * time.Millisecond
		if drainTimeout < 4*grace {
			grace = drainTimeout / 4
		}
		time.Sleep(grace)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := srv.Shutdown(ctx)
		if serr := <-errc; err == nil && !errors.Is(serr, http.ErrServerClosed) {
			err = serr
		}
		if err != nil {
			return fmt.Errorf("amgserve: drain: %w", err)
		}
		log.Printf("amgserve: drained cleanly")
		return nil
	}
}

// mux wires the service and lifecycle handlers.
func (ap *app) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", ap.handleSolve)
	mux.HandleFunc("/metrics", ap.handleMetrics)
	mux.HandleFunc("/healthz", ap.handleHealthz)
	mux.HandleFunc("/readyz", ap.handleReadyz)
	return mux
}

// newMux wires handlers over a service with the given body cap; split
// from main for tests. maxBody bounds the /solve request body so an
// oversized (or malicious) upload fails fast instead of buffering
// gigabytes before validation.
func newMux(svc *serve.Service, maxBody int64) *http.ServeMux {
	return (&app{svc: svc, maxBody: maxBody}).mux()
}

// retryAfter marks a response as retryable-elsewhere: drain rejections
// and backpressure/cancellation failures are transient by construction.
func retryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
}

func (ap *app) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a solve request", http.StatusMethodNotAllowed)
		return
	}
	if ap.draining.Load() {
		retryAfter(w)
		http.Error(w, "amgserve: draining, not accepting new solves", http.StatusServiceUnavailable)
		return
	}
	var req solveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, ap.maxBody))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	a, bs, err := req.system()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	xs, stats, err := ap.svc.SolveBatch(r.Context(), a, bs)
	if err != nil && len(xs) == 0 {
		// Request-shaped failures (bad matrix, unbuildable hierarchy,
		// canceled or timed-out work) have no partial result to report.
		// Cancellation is classified from the error chain itself, not
		// from r.Context().Err(): a 422-class failure that merely races
		// a client disconnect must not be relabeled as retryable.
		status := http.StatusUnprocessableEntity
		var qe *serve.QuarantinedError
		switch {
		case errors.Is(err, serve.ErrBadRequest):
			status = http.StatusBadRequest
		case errors.As(err, &qe):
			// Quarantined pattern: the breaker rejected the request
			// before any build/solve cost. Retry-After is the time until
			// the breaker admits a half-open probe.
			secs := int(qe.RetryAfter/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			status = http.StatusTooManyRequests
		case errors.Is(err, context.DeadlineExceeded):
			// The per-request deadline (-solve-timeout or the client's
			// own) expired mid-work: a timeout, not a rejection.
			retryAfter(w)
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			// Canceled admission (backpressure), a canceled coalescing
			// wait, or a cancel that reached the iteration loop: the
			// work was cut short, not rejected — safe to retry.
			retryAfter(w)
			status = http.StatusServiceUnavailable
		}
		// Classified numerical failures (diverged, stagnated, non-finite,
		// breakdown, MaxIter exhausted) keep 422: the failure class is in
		// the error text, and retrying the same system would fail again.
		http.Error(w, err.Error(), status)
		return
	}
	resp := solveResponse{Outcome: stats.Outcome.String(), Batched: stats.Batched,
		Sharded: stats.Sharded, Subdomains: stats.Subdomains,
		Precision: stats.Precision.String(),
		Converged: stats.Converged, RelResidual: stats.RelResidual,
		Escalations: stats.Escalations}
	for j, x := range xs {
		cr := columnResult{X: x}
		if j < len(stats.Columns) {
			cs := stats.Columns[j]
			cr.Iterations, cr.RelResidual, cr.Converged = cs.Iterations, cs.RelResidual, cs.Converged
		}
		resp.Columns = append(resp.Columns, cr)
	}
	if req.B != nil && len(xs) == 1 && len(resp.Columns) == 1 && resp.Columns[0].Converged {
		resp.X = xs[0]
	}
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		// Partial failure (some column above tolerance): report it in
		// the status line and body — a 200 with the final iterate would
		// let status-only clients mistake a non-solution for the answer.
		resp.Error = err.Error()
		w.WriteHeader(http.StatusUnprocessableEntity)
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("amgserve: encode response: %v", err)
	}
}

// system assembles the CSR matrix and RHS set. Structural validation is
// left to the service boundary (serve.SolveBatch runs Matrix.Validate
// before admission), so large matrices are scanned once, not twice.
func (req *solveRequest) system() (*sparse.Matrix, [][]float64, error) {
	if req.Cols == 0 {
		req.Cols = req.Rows
	}
	a := &sparse.Matrix{Rows: req.Rows, Cols: req.Cols, RowPtr: req.RowPtr, Col: req.Col, Val: req.Val}
	bs := req.Bs
	if req.B != nil {
		bs = append([][]float64{req.B}, bs...)
	}
	if len(bs) == 0 {
		return nil, nil, fmt.Errorf(`request carries no right-hand side (set "b" or "bs")`)
	}
	return a, bs, nil
}

func (ap *app) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := ap.svc.Metrics()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "amgserve_requests_total %d\n", m.Requests)
	fmt.Fprintf(w, "amgserve_rejected_total %d\n", m.Rejected)
	fmt.Fprintf(w, "amgserve_canceled_total %d\n", m.Canceled)
	fmt.Fprintf(w, "amgserve_panics_total %d\n", m.Panics)
	fmt.Fprintf(w, "amgserve_cache_builds_total %d\n", m.Builds)
	fmt.Fprintf(w, "amgserve_cache_refreshes_total %d\n", m.Refreshes)
	fmt.Fprintf(w, "amgserve_cache_hits_total %d\n", m.ValueHits)
	fmt.Fprintf(w, "amgserve_cache_collisions_total %d\n", m.Collisions)
	fmt.Fprintf(w, "amgserve_cache_evictions_total %d\n", m.Evictions)
	fmt.Fprintf(w, "amgserve_batch_solves_total %d\n", m.BatchSolves)
	fmt.Fprintf(w, "amgserve_batched_rhs_total %d\n", m.BatchedRHS)
	fmt.Fprintf(w, "amgserve_batched_rhs_ratio %.3f\n", m.BatchedRHSRatio())
	fmt.Fprintf(w, "amgserve_sharded_requests_total %d\n", m.ShardedRequests)
	fmt.Fprintf(w, "amgserve_shard_sub_builds_total %d\n", m.SubBuilds)
	fmt.Fprintf(w, "amgserve_shard_sub_refreshes_total %d\n", m.SubRefreshes)
	fmt.Fprintf(w, "amgserve_shard_sub_reuses_total %d\n", m.SubReuses)
	fmt.Fprintf(w, "amgserve_numerical_failures_total %d\n", m.NumericalFailures)
	fmt.Fprintf(w, "amgserve_escalations_total %d\n", m.Escalations)
	fmt.Fprintf(w, "amgserve_escalation_recoveries_total %d\n", m.EscalationRecoveries)
	fmt.Fprintf(w, "amgserve_quarantines_total %d\n", m.Quarantines)
	fmt.Fprintf(w, "amgserve_quarantine_rejections_total %d\n", m.QuarantineRejections)
	fmt.Fprintf(w, "amgserve_probes_total %d\n", m.Probes)
	fmt.Fprintf(w, "amgserve_probe_successes_total %d\n", m.ProbeSuccesses)
	fmt.Fprintf(w, "amgserve_probe_failures_total %d\n", m.ProbeFailures)
}

// handleHealthz is liveness: the process is up and serving HTTP. It
// stays 200 through a drain — restarting a draining process would cut
// off exactly the in-flight work the drain exists to protect.
func (ap *app) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 while accepting new solves, 503 once
// draining so load balancers route new traffic elsewhere.
func (ap *app) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if ap.draining.Load() {
		retryAfter(w)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
