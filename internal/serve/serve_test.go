// White-box tests for the solve service's cache layer: LRU eviction
// under capacity pressure, fingerprint-collision shape checks,
// single-flight builds, outcome accounting, and the bitwise equivalence
// of solo and coalesced solves.
package serve

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/gen"
	"mis2go/internal/hash"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// testConfig returns a service configuration sized for the small test
// problems: modest iteration budget, coalescing off by default so cache
// accounting is deterministic (batching tests override it).
func testConfig() Config {
	return Config{
		AMG:         amg.Options{MinCoarseSize: 40},
		Tol:         1e-10,
		MaxIter:     200,
		BatchWindow: -1, // disable coalescing unless a test wants it
	}
}

// testProblem builds a small SPD system with a deterministic RHS.
func testProblem(nx int, shift float64) (*sparse.Matrix, []float64) {
	a := gen.Laplacian(gen.Laplace3D(nx, nx, nx), shift)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%17)/17
	}
	return a, b
}

// referenceSolve is the sequential single-caller baseline the service
// must match bitwise: a fresh hierarchy and a k=1 CGBatch solve.
func referenceSolve(t *testing.T, cfg Config, a *sparse.Matrix, b []float64) []float64 {
	t.Helper()
	cfg = cfg.withDefaults()
	h, err := amg.Build(a, cfg.AMG)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	bb := append([]float64(nil), b...)
	if _, err := krylov.CGBatchWith(par.New(cfg.Threads), a, bb, x, 1, cfg.Tol, cfg.MaxIter, h, nil); err != nil {
		t.Fatal(err)
	}
	return x
}

func bitwiseEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: bit mismatch at %d: %g vs %g", label, i, got[i], want[i])
		}
	}
}

func TestServeSolveMatchesSequentialReference(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	a, b := testProblem(8, 0.05)
	want := referenceSolve(t, cfg, a, b)

	x, st, err := s.Solve(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Outcome != OutcomeBuild {
		t.Fatalf("first request outcome %v, want build", st.Outcome)
	}
	bitwiseEqual(t, "first solve", x, want)

	// Identical values: pay nothing, same bits.
	x2, st2, err := s.Solve(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Outcome != OutcomeReuse {
		t.Fatalf("repeat outcome %v, want reuse", st2.Outcome)
	}
	bitwiseEqual(t, "repeat solve", x2, want)

	// New values on the same pattern: numeric refresh only, and the
	// result matches a fresh sequential build of the new operator.
	a2 := a.Clone()
	a2.Scale(1.5)
	want2 := referenceSolve(t, cfg, a2.Clone(), b)
	x3, st3, err := s.Solve(context.Background(), a2, b)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Outcome != OutcomeRefresh {
		t.Fatalf("new-values outcome %v, want refresh", st3.Outcome)
	}
	bitwiseEqual(t, "refreshed solve", x3, want2)

	m := s.Metrics()
	if m.Builds != 1 || m.Refreshes != 1 || m.ValueHits != 1 || m.Requests != 3 {
		t.Fatalf("metrics %+v, want builds=1 refreshes=1 valueHits=1 requests=3", m)
	}
}

func TestServeCacheLRUEviction(t *testing.T) {
	cfg := testConfig()
	cfg.CacheCapacity = 2
	s := New(cfg)
	ctx := context.Background()

	problems := [][2]int{{6, 0}, {7, 0}, {8, 0}}
	mats := make([]*sparse.Matrix, len(problems))
	rhs := make([][]float64, len(problems))
	for i, p := range problems {
		mats[i], rhs[i] = testProblem(p[0], 0.05)
	}
	for i := range mats {
		if _, st, err := s.Solve(ctx, mats[i], rhs[i]); err != nil {
			t.Fatal(err)
		} else if st.Outcome != OutcomeBuild {
			t.Fatalf("pattern %d outcome %v, want build", i, st.Outcome)
		}
	}
	m := s.Metrics()
	if m.Evictions != 1 {
		t.Fatalf("evictions %d, want 1 (capacity 2, 3 patterns)", m.Evictions)
	}
	// Pattern 0 was least recently used and must have been evicted:
	// touching it again is a rebuild. Pattern 2 stays cached.
	if _, st, err := s.Solve(ctx, mats[0], rhs[0]); err != nil {
		t.Fatal(err)
	} else if st.Outcome != OutcomeBuild {
		t.Fatalf("evicted pattern outcome %v, want build", st.Outcome)
	}
	if _, st, err := s.Solve(ctx, mats[2], rhs[2]); err != nil {
		t.Fatal(err)
	} else if st.Outcome != OutcomeReuse {
		t.Fatalf("resident pattern outcome %v, want reuse", st.Outcome)
	}
	m = s.Metrics()
	if m.Builds != 4 || m.Evictions != 2 {
		t.Fatalf("metrics %+v, want builds=4 evictions=2", m)
	}
}

// TestServeFingerprintCollisionShapeCheck forges a collision: the cache
// index is made to map a matrix's fingerprint to an entry recorded for
// a different shape. The request must detect the shape mismatch, bypass
// the cache, and still produce the bitwise-correct answer.
func TestServeFingerprintCollisionShapeCheck(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	ctx := context.Background()
	a, b := testProblem(8, 0.05)
	a2, b2 := testProblem(6, 0.05)
	if _, _, err := s.Solve(ctx, a, b); err != nil {
		t.Fatal(err)
	}

	// Forge: point a2's fingerprint at the entry built for a.
	key2 := hash.PatternFingerprint(a2.Rows, a2.Cols, a2.RowPtr, a2.Col)
	s.mu.Lock()
	keyA := hash.PatternFingerprint(a.Rows, a.Cols, a.RowPtr, a.Col)
	s.entries[key2] = s.entries[keyA]
	s.mu.Unlock()

	want := referenceSolve(t, cfg, a2.Clone(), b2)
	x, st, err := s.Solve(ctx, a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Outcome != OutcomeCollision {
		t.Fatalf("outcome %v, want collision", st.Outcome)
	}
	bitwiseEqual(t, "collision solve", x, want)
	if m := s.Metrics(); m.Collisions != 1 {
		t.Fatalf("collisions %d, want 1", m.Collisions)
	}
}

// TestServeSingleFlightBuild: K concurrent first-requests for one
// pattern must build the hierarchy exactly once.
func TestServeSingleFlightBuild(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	a, b := testProblem(8, 0.05)
	want := referenceSolve(t, cfg, a, b)

	const k = 8
	var wg sync.WaitGroup
	results := make([][]float64, k)
	errs := make([]error, k)
	for g := 0; g < k; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine passes its own matrix copy: the service
			// must not rely on callers sharing pointers.
			results[g], _, errs[g] = s.Solve(context.Background(), a.Clone(), append([]float64(nil), b...))
		}(g)
	}
	wg.Wait()
	for g := 0; g < k; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		bitwiseEqual(t, "single-flight result", results[g], want)
	}
	m := s.Metrics()
	if m.Builds != 1 {
		t.Fatalf("builds %d, want exactly 1 for %d concurrent first-requests", m.Builds, k)
	}
	if m.ValueHits != k-1 {
		t.Fatalf("valueHits %d, want %d", m.ValueHits, k-1)
	}
}

// TestServeCoalescedBitwiseMatchesSolo: a request served inside a
// coalesced CGBatch must be bitwise identical to the same request
// served alone (and to the sequential reference).
func TestServeCoalescedBitwiseMatchesSolo(t *testing.T) {
	a, _ := testProblem(8, 0.05)
	n := a.Rows
	const k = 4
	rhs := make([][]float64, k)
	for j := range rhs {
		rhs[j] = make([]float64, n)
		for i := range rhs[j] {
			rhs[j][i] = float64((i+3*j)%11) - 5 + float64(j)
		}
	}

	// Solo: coalescing disabled, each request runs as a k=1 batch.
	soloCfg := testConfig()
	solo := New(soloCfg)
	want := make([][]float64, k)
	for j := range rhs {
		x, st, err := solo.Solve(context.Background(), a, rhs[j])
		if err != nil {
			t.Fatal(err)
		}
		if st.Batched != 1 {
			t.Fatalf("solo request batched %d, want 1", st.Batched)
		}
		want[j] = x
		bitwiseEqual(t, "solo vs reference", x, referenceSolve(t, soloCfg, a.Clone(), rhs[j]))
	}

	// Coalesced: a long window so concurrently launched requests join
	// one batch.
	cfg := testConfig()
	cfg.BatchWindow = 250 * time.Millisecond
	cfg.MaxBatch = k
	s := New(cfg)
	// Prime the cache so the batch isn't serialized behind the build.
	if _, _, err := s.Solve(context.Background(), a, rhs[0]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([][]float64, k)
	stats := make([]RequestStats, k)
	errs := make([]error, k)
	for j := 0; j < k; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			got[j], stats[j], errs[j] = s.Solve(context.Background(), a, rhs[j])
		}(j)
	}
	wg.Wait()
	maxBatched := 0
	for j := 0; j < k; j++ {
		if errs[j] != nil {
			t.Fatalf("request %d: %v", j, errs[j])
		}
		bitwiseEqual(t, "coalesced vs solo", got[j], want[j])
		if stats[j].Batched > maxBatched {
			maxBatched = stats[j].Batched
		}
	}
	if maxBatched < 2 {
		t.Fatalf("no coalescing happened (max batched %d) despite a %v window", maxBatched, cfg.BatchWindow)
	}
	if m := s.Metrics(); m.BatchedRHS != int64(k+1) {
		t.Fatalf("batched RHS %d, want %d", m.BatchedRHS, k+1)
	}
}

// TestServeMultiRHSRequest: one request carrying several right-hand
// sides solves them in one batch, each column bitwise equal to its solo
// solve.
func TestServeMultiRHSRequest(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	a, _ := testProblem(7, 0.05)
	n := a.Rows
	bs := make([][]float64, 3)
	for j := range bs {
		bs[j] = make([]float64, n)
		for i := range bs[j] {
			bs[j][i] = float64((i*7+j)%13) - 6
		}
	}
	xs, st, err := s.SolveBatch(context.Background(), a, bs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Batched != 3 || len(st.Columns) != 3 || len(xs) != 3 {
		t.Fatalf("batched=%d columns=%d results=%d, want 3/3/3", st.Batched, len(st.Columns), len(xs))
	}
	for j := range bs {
		bitwiseEqual(t, "multi-RHS column", xs[j], referenceSolve(t, cfg, a.Clone(), bs[j]))
	}
}

// TestServeRejectedRefreshKeepsEntryUsable: a Refresh rejected
// pre-mutation (zero diagonal) must leave the cached operator serving
// the previous values bitwise unchanged.
func TestServeRejectedRefreshKeepsEntryUsable(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	ctx := context.Background()
	a, b := testProblem(7, 0.05)
	want, _, err := s.Solve(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}

	bad := a.Clone()
	for p := bad.RowPtr[3]; p < bad.RowPtr[4]; p++ {
		if int(bad.Col[p]) == 3 {
			bad.Val[p] = 0
		}
	}
	if _, _, err := s.Solve(ctx, bad, b); err == nil {
		t.Fatal("zero-diagonal refresh not rejected")
	}

	x, st, err := s.Solve(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Outcome != OutcomeReuse {
		t.Fatalf("outcome %v after rejected refresh, want reuse (previous values intact)", st.Outcome)
	}
	bitwiseEqual(t, "after rejected refresh", x, want)
	if m := s.Metrics(); m.Builds != 1 {
		t.Fatalf("builds %d, want 1 (rejection must not drop the entry)", m.Builds)
	}
}

func TestServeBackpressureAdmission(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInFlight = 1
	s := New(cfg)
	a, b := testProblem(6, 0.05)

	// A canceled context is refused at admission when no slot frees up.
	s.sem <- struct{}{} // occupy the only slot
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Solve(ctx, a, b); err == nil {
		t.Fatal("canceled request admitted past a full service")
	}
	<-s.sem
	if m := s.Metrics(); m.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", m.Rejected)
	}
	// With the slot free, the same request succeeds and releases its
	// slot for the next one.
	for i := 0; i < 2; i++ {
		if _, _, err := s.Solve(context.Background(), a, b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	s := New(testConfig())
	ctx := context.Background()
	a, b := testProblem(6, 0.05)
	if _, _, err := s.Solve(ctx, a, b[:len(b)-1]); err == nil {
		t.Fatal("short right-hand side accepted")
	}
	rect := &sparse.Matrix{Rows: 2, Cols: 3, RowPtr: []int{0, 0, 0}}
	if _, _, err := s.Solve(ctx, rect, make([]float64, 2)); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
	if _, _, err := s.SolveBatch(ctx, a, nil); err == nil {
		t.Fatal("empty request accepted")
	}
	// A matrix the hierarchy build rejects must not poison the cache:
	// the entry is dropped and a later valid same-pattern request works.
	bad := a.Clone()
	for p := bad.RowPtr[0]; p < bad.RowPtr[1]; p++ {
		if int(bad.Col[p]) == 0 {
			bad.Val[p] = 0 // zero diagonal: numeric build fails
		}
	}
	if _, _, err := s.Solve(ctx, bad, b); err == nil {
		t.Fatal("zero-diagonal build accepted")
	}
	if _, st, err := s.Solve(ctx, a, b); err != nil {
		t.Fatal(err)
	} else if st.Outcome != OutcomeBuild {
		t.Fatalf("outcome %v after failed build, want build", st.Outcome)
	}
}

// TestServeEqualShapeCollision forges the nastier collision: same rows,
// cols, and nnz but a different pattern mapped to a cached entry's key.
// The exact pattern comparison on the hit path must catch it and serve
// the request uncached — never scatter the request's values onto the
// cached pattern.
func TestServeEqualShapeCollision(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	ctx := context.Background()
	// Two equal-shape, equal-nnz, different-pattern SPD systems: 1D
	// chains with the off-diagonal pair at different positions.
	chain := func(gap int) *sparse.Matrix {
		const n = 8
		a := &sparse.Matrix{Rows: n, Cols: n, RowPtr: make([]int, 1, n+1)}
		add := func(c int, v float64) { a.Col = append(a.Col, int32(c)); a.Val = append(a.Val, v) }
		for i := 0; i < n; i++ {
			if i == gap+1 {
				add(gap, -1)
			}
			add(i, 4)
			if i == gap {
				add(gap+1, -1)
			}
			a.RowPtr = append(a.RowPtr, len(a.Col))
		}
		return a
	}
	a1, a2 := chain(1), chain(5)
	if a1.NNZ() != a2.NNZ() {
		t.Fatal("test bug: shapes differ")
	}
	b := make([]float64, a1.Rows)
	for i := range b {
		b[i] = float64(i + 1)
	}
	if _, _, err := s.Solve(ctx, a1, b); err != nil {
		t.Fatal(err)
	}
	key2 := hash.PatternFingerprint(a2.Rows, a2.Cols, a2.RowPtr, a2.Col)
	key1 := hash.PatternFingerprint(a1.Rows, a1.Cols, a1.RowPtr, a1.Col)
	s.mu.Lock()
	s.entries[key2] = s.entries[key1]
	s.mu.Unlock()

	want := referenceSolve(t, cfg, a2.Clone(), b)
	x, st, err := s.Solve(ctx, a2, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Outcome != OutcomeCollision {
		t.Fatalf("outcome %v, want collision", st.Outcome)
	}
	bitwiseEqual(t, "equal-shape collision", x, want)
	if m := s.Metrics(); m.Collisions != 1 || m.Refreshes != 0 {
		t.Fatalf("metrics %+v, want collisions=1 refreshes=0", m)
	}
}

// TestServeDeepRefreshFailureResetsEntry: a refresh that passes the
// pre-mutation validation but fails mid-replay (singular coarse
// factorization) invalidates the hierarchy; the entry must be reset so
// same-pattern requests still holding it rebuild instead of panicking
// on the invalidated state.
func TestServeDeepRefreshFailureResetsEntry(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	ctx := context.Background()
	a := &sparse.Matrix{Rows: 2, Cols: 2,
		RowPtr: []int{0, 2, 4}, Col: []int32{0, 1, 0, 1}, Val: []float64{2, 1, 1, 2}}
	b := []float64{1, 2}
	want, _, err := s.Solve(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Hold the live entry, as a concurrent same-pattern waiter would.
	key := hash.PatternFingerprint(a.Rows, a.Cols, a.RowPtr, a.Col)
	s.mu.Lock()
	e := s.entries[key].(*entry)
	s.mu.Unlock()

	// Positive finite diagonal, same signs — passes pre-validation —
	// but singular, so the dense coarse factorization fails mid-replay.
	sing := a.Clone()
	copy(sing.Val, []float64{1, 1, 1, 1})
	if _, _, err := s.Solve(ctx, sing, b); err == nil {
		t.Fatal("singular refresh not rejected")
	}
	if e.h != nil {
		t.Fatal("deep refresh failure left the invalidated hierarchy on the entry")
	}
	// A waiter still holding the dropped entry rebuilds through it.
	var st RequestStats
	xs, _, err := s.solveCached(ctx, e, a, [][]float64{b}, &st)
	if err != nil {
		t.Fatal(err)
	}
	if st.Outcome != OutcomeBuild {
		t.Fatalf("outcome %v through reset entry, want build", st.Outcome)
	}
	bitwiseEqual(t, "rebuild through reset entry", xs[0], want)
	// And a fresh request (new lookup) works too.
	x2, _, err := s.Solve(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "fresh request after deep failure", x2, want)
}

// TestServeRefreshWaitersSurviveDeepFailure orchestrates the nastiest
// interleaving: requests with different new value sets park behind an
// open batch; one of them then suffers a deep refresh failure that
// resets the entry. Waiters resuming from the condition wait must
// re-check the entry state and rebuild — never dereference the reset
// fine matrix or touch the invalidated hierarchy.
func TestServeRefreshWaitersSurviveDeepFailure(t *testing.T) {
	good := &sparse.Matrix{Rows: 2, Cols: 2,
		RowPtr: []int{0, 2, 4}, Col: []int32{0, 1, 0, 1}, Val: []float64{2, 1, 1, 2}}
	scaled := good.Clone()
	scaled.Scale(3)
	sing := good.Clone()
	copy(sing.Val, []float64{1, 1, 1, 1}) // passes pre-validation, singular coarse factorization
	b := []float64{1, 2}

	cfg := testConfig()
	cfg.BatchWindow = 20 * time.Millisecond
	cfg.MaxBatch = 4
	want := referenceSolve(t, cfg, scaled.Clone(), b)

	// The race between the two waiters is scheduler-dependent; iterate
	// so both orders occur. Pre-fix, the losing order panicked on a nil
	// e.fine.
	for it := 0; it < 6; it++ {
		s := New(cfg)
		ctx := context.Background()
		if _, _, err := s.Solve(ctx, good, b); err != nil { // build
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(3)
		go func() { // batch leader: holds pending > 0 for the window
			defer wg.Done()
			if _, _, err := s.Solve(ctx, good, b); err != nil {
				t.Error(err)
			}
		}()
		time.Sleep(2 * time.Millisecond) // let the leader publish its batch
		go func() {                      // deep-failing refresher
			defer wg.Done()
			if _, _, err := s.Solve(ctx, sing, b); err == nil {
				t.Error("singular refresh not rejected")
			}
		}()
		go func() { // innocent new-values waiter
			defer wg.Done()
			x, _, err := s.Solve(ctx, scaled, b)
			if err != nil {
				t.Error(err)
				return
			}
			bitwiseEqual(t, "waiter after deep failure", x, want)
		}()
		wg.Wait()
	}
}

// TestServeRejectsOversizedRequest: MaxBatch bounds a single request's
// own columns too, keeping the entry-retained solver scratch bounded.
func TestServeRejectsOversizedRequest(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 2
	s := New(cfg)
	a, b := testProblem(6, 0.05)
	if _, _, err := s.SolveBatch(context.Background(), a, [][]float64{b, b, b}); err == nil {
		t.Fatal("request wider than MaxBatch accepted")
	}
	if _, _, err := s.SolveBatch(context.Background(), a, [][]float64{b, b}); err != nil {
		t.Fatal(err)
	}
}

// TestServeSELLOuterOperatorBitwise forces the SELL outer-operator path
// (FormatSELL converts regardless of size): build, reuse, and refresh
// through the entry-schedule FillValues must serve results bitwise
// identical to the CSR-configured service and the sequential reference.
func TestServeSELLOuterOperatorBitwise(t *testing.T) {
	csrCfg := testConfig()
	csrCfg.AMG.Format = sparse.FormatCSR
	sellCfg := testConfig()
	sellCfg.AMG.Format = sparse.FormatSELL
	csr, sell := New(csrCfg), New(sellCfg)
	ctx := context.Background()

	a, b := testProblem(8, 0.05)
	a2 := a.Clone()
	a2.Scale(1.75)
	for step, m := range []*sparse.Matrix{a, a, a2, a} {
		want, _, err := csr.Solve(ctx, m, b)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := sell.Solve(ctx, m, b)
		if err != nil {
			t.Fatal(err)
		}
		bitwiseEqual(t, "SELL outer operator step "+string(rune('0'+step)), got, want)
		if step > 0 && st.Outcome == OutcomeBuild {
			t.Fatalf("step %d rebuilt instead of reusing/refreshing", step)
		}
	}
	// White-box: the SELL conversion really is in place on the entry.
	key := hash.PatternFingerprint(a.Rows, a.Cols, a.RowPtr, a.Col)
	sell.mu.Lock()
	e, _ := sell.entries[key].(*entry)
	sell.mu.Unlock()
	if e == nil || e.fill == nil {
		t.Fatal("FormatSELL service did not install a SELL outer operator")
	}
	if _, ok := e.op.(*sparse.SELL); !ok {
		t.Fatalf("FormatSELL outer operator is %T, want *sparse.SELL", e.op)
	}
}
