package krylov

import (
	"math"
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// noBatchPrec wraps Jacobi while hiding its BatchPreconditioner fast
// path, forcing CGBatch through the de-interleaving fallback.
type noBatchPrec struct{ m Preconditioner }

func (p noBatchPrec) Precondition(r, z []float64) { p.m.Precondition(r, z) }

func TestCGBatchSolvesAllColumns(t *testing.T) {
	a := gen.Laplacian(gen.Laplace3D(8, 8, 8), 1e-2)
	n := a.Rows
	m, err := Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	rt := par.New(1)
	for _, k := range []int{1, 4, 8, 5} {
		b := make([]float64, n*k)
		x := make([]float64, n*k)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				b[i*k+j] = float64((i*13+j*7)%17) - 8
			}
		}
		stats, err := CGBatch(rt, a, b, x, k, 1e-10, 500, m)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(stats) != k {
			t.Fatalf("k=%d: %d stats", k, len(stats))
		}
		// Verify each column's true residual independently.
		xc := make([]float64, n)
		bc := make([]float64, n)
		ax := make([]float64, n)
		for j := 0; j < k; j++ {
			if !stats[j].Converged {
				t.Fatalf("k=%d column %d not converged: %+v", k, j, stats[j])
			}
			for i := 0; i < n; i++ {
				xc[i] = x[i*k+j]
				bc[i] = b[i*k+j]
			}
			a.SpMV(rt, xc, ax)
			rr, bb := 0.0, 0.0
			for i := 0; i < n; i++ {
				d := bc[i] - ax[i]
				rr += d * d
				bb += bc[i] * bc[i]
			}
			if rel := math.Sqrt(rr / bb); rel > 1e-9 {
				t.Fatalf("k=%d column %d: true relres %g", k, j, rel)
			}
		}
	}
}

// TestCGBatchGenericPreconditionerPath exercises the column-by-column
// de-interleaving fallback for preconditioners without a batch kernel
// and checks it agrees bitwise with the batch fast path (both apply the
// same per-column operator; only the application route differs).
func TestCGBatchGenericPreconditionerPath(t *testing.T) {
	a := gen.Laplacian(gen.Laplace3D(6, 6, 6), 1e-2)
	n := a.Rows
	m, err := Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	rt := par.New(1)
	const k = 4
	b := make([]float64, n*k)
	for i := range b {
		b[i] = float64(i%11) - 5
	}
	xBatch := make([]float64, n*k)
	if _, err := CGBatch(rt, a, b, xBatch, k, 1e-10, 500, m); err != nil {
		t.Fatal(err)
	}
	xGeneric := make([]float64, n*k)
	if _, err := CGBatch(rt, a, b, xGeneric, k, 1e-10, 500, noBatchPrec{m}); err != nil {
		t.Fatal(err)
	}
	for i := range xBatch {
		if math.Float64bits(xBatch[i]) != math.Float64bits(xGeneric[i]) {
			t.Fatalf("x[%d] differs between batch and generic preconditioner path", i)
		}
	}
}

// TestCGBatchWorkspaceReuse reuses one workspace across batch solves of
// different sizes and widths, requiring bitwise identity with fresh
// workspaces, then checks steady-state batch solves allocate nothing.
func TestCGBatchWorkspaceReuse(t *testing.T) {
	rt := par.New(1)
	big := gen.Laplacian(gen.Laplace3D(8, 8, 8), 1e-2)
	small := gen.Laplacian(gen.Laplace3D(4, 4, 4), 1e-2)
	ws := &Workspace{}

	run := func(a *sparse.Matrix, k int, ws *Workspace) []float64 {
		n := a.Rows
		b := make([]float64, n*k)
		x := make([]float64, n*k)
		for i := range b {
			b[i] = float64(i%9) - 4
		}
		if _, err := CGBatchWith(rt, a, b, x, k, 1e-10, 500, nil, ws); err != nil {
			t.Fatal(err)
		}
		return x
	}

	_ = run(big, 8, ws)
	got := run(small, 4, ws)
	want := run(small, 4, &Workspace{})
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("x[%d] differs bitwise after workspace reuse", i)
		}
	}

	// Steady state allocates nothing (stats live in the workspace).
	n := small.Rows
	const k = 4
	b := make([]float64, n*k)
	x := make([]float64, n*k)
	for i := range b {
		b[i] = float64(i%9) - 4
	}
	if _, err := CGBatchWith(rt, small, b, x, k, 1e-10, 500, nil, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		for i := range x {
			x[i] = 0
		}
		if _, err := CGBatchWith(rt, small, b, x, k, 1e-10, 500, nil, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CGBatchWith steady state: %v allocs/op, want 0", allocs)
	}
}

func TestCGBatchRejectsBadShapes(t *testing.T) {
	a := gen.Laplacian(gen.Laplace2D(4, 4), 1e-2)
	rt := par.New(1)
	if _, err := CGBatch(rt, a, make([]float64, a.Rows), make([]float64, a.Rows), 0, 1e-10, 10, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := CGBatch(rt, a, make([]float64, a.Rows), make([]float64, 2*a.Rows), 2, 1e-10, 10, nil); err == nil {
		t.Fatal("short b accepted")
	}
}
