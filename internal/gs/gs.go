// Package gs implements the Gauss-Seidel preconditioners of the paper's
// §III-C and Table VI:
//
//   - point multicolor Gauss-Seidel: color the matrix graph; rows of one
//     color have no mutual dependencies and update in parallel;
//   - cluster multicolor Gauss-Seidel (Algorithm 4): coarsen the graph
//     into clusters, color the cluster graph; clusters of one color update
//     in parallel, while rows inside a cluster update sequentially, making
//     the method locally equivalent to classical Gauss-Seidel and reducing
//     iteration counts;
//   - classical sequential Gauss-Seidel as a reference.
//
// Symmetric variants ("SGS") sweep colors forward then backward, with row
// order inside each cluster reversed on the backward sweep.
//
//amg:deterministic
package gs

import (
	"errors"
	"fmt"

	"mis2go/internal/coarsen"
	"mis2go/internal/color"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// Multicolor is a set-up multicolor Gauss-Seidel operator (point or
// cluster flavored).
//
// Concurrency: after setup the operator's own state (matrix, inverse
// diagonal, color sets, cluster rows) is read-only, so concurrent
// Sweep/Apply/Precondition calls on one instance are safe provided each
// caller passes its own b and x vectors — the sweeps write only into
// the caller's x. SetOmega mutates the instance and must not run
// concurrently with anything. Note that the AMG hierarchy passes its
// level scratch as b/x, so two V-cycles through one hierarchy still
// race (see amg.Hierarchy); the safety here is per distinct vectors.
type Multicolor struct {
	a    *sparse.Matrix
	dinv []float64
	// omega is the SOR over-relaxation factor (1 = plain Gauss-Seidel).
	omega float64
	// groups[c] lists the update units of color c: for the point method a
	// unit is a single row; for the cluster method the unit indexes
	// clusterRows.
	groups [][]int32
	// clusterRows[k] lists the rows of cluster unit k in ascending order;
	// nil for the point method.
	clusterRows [][]int32
	rt          *par.Runtime
	// NumColors reports the palette size used by the setup.
	NumColors int
}

// NewPoint sets up point multicolor Gauss-Seidel for a: the matrix graph
// is colored with the deterministic parallel coloring, and each color
// class becomes a parallel update group.
func NewPoint(a *sparse.Matrix, threads int) (*Multicolor, error) {
	m, err := newCommon(a, threads)
	if err != nil {
		return nil, err
	}
	colors := color.Parallel(a.GraphWith(m.rt), threads)
	m.groups = color.Sets(colors)
	m.NumColors = len(m.groups)
	return m, nil
}

// NewCluster sets up cluster multicolor Gauss-Seidel (Algorithm 4) from an
// aggregation of the matrix graph: the coarse (cluster) graph is colored;
// same-colored clusters share no matrix entries and update concurrently.
func NewCluster(a *sparse.Matrix, agg coarsen.Aggregation, threads int) (*Multicolor, error) {
	m, err := newCommon(a, threads)
	if err != nil {
		return nil, err
	}
	g := a.GraphWith(m.rt)
	if err := coarsen.Check(g, agg); err != nil {
		return nil, fmt.Errorf("gs: bad aggregation: %w", err)
	}
	cg := coarsen.CoarseGraph(g, agg)
	colors := color.Parallel(cg, threads)
	m.groups = color.Sets(colors)
	m.NumColors = len(m.groups)
	// Rows per cluster, ascending (deterministic fill by scanning rows).
	m.clusterRows = make([][]int32, agg.NumAggregates)
	sizes := coarsen.Sizes(agg)
	for k := range m.clusterRows {
		m.clusterRows[k] = make([]int32, 0, sizes[k])
	}
	for v, c := range agg.Labels {
		m.clusterRows[c] = append(m.clusterRows[c], int32(v))
	}
	return m, nil
}

func newCommon(a *sparse.Matrix, threads int) (*Multicolor, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("gs: matrix must be square")
	}
	rt := par.New(threads)
	dinv := make([]float64, a.Rows)
	a.DiagonalInto(rt, dinv)
	for i, v := range dinv {
		if v == 0 {
			return nil, fmt.Errorf("gs: zero diagonal at row %d", i)
		}
		dinv[i] = 1 / v
	}
	return &Multicolor{a: a, dinv: dinv, omega: 1, rt: rt}, nil
}

// SetOmega sets the SOR over-relaxation factor; omega must lie in (0, 2)
// for convergence on SPD systems. omega = 1 (the default) is plain
// Gauss-Seidel.
func (m *Multicolor) SetOmega(omega float64) error {
	if omega <= 0 || omega >= 2 {
		return fmt.Errorf("gs: omega %g outside (0, 2)", omega)
	}
	m.omega = omega
	return nil
}

// relaxRow performs the Gauss-Seidel update of row i in place.
//
//amg:hotpath
func (m *Multicolor) relaxRow(i int32, b, x []float64) {
	a := m.a
	s := b[i]
	for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
		j := a.Col[q]
		if j != i {
			s -= a.Val[q] * x[j]
		}
	}
	if m.omega == 1 {
		x[i] = s * m.dinv[i]
	} else {
		x[i] += m.omega * (s*m.dinv[i] - x[i])
	}
}

// Sweep performs one multicolor sweep updating x in place. forward selects
// the color order; for the cluster method the row order inside each
// cluster follows the sweep direction (paper §III-C symmetric variant).
// Single-worker sweeps run inline without closures, so a set-up operator
// sweeps without allocating.
//
//amg:hotpath
func (m *Multicolor) Sweep(b, x []float64, forward bool) {
	nc := len(m.groups)
	for ci := 0; ci < nc; ci++ {
		c := ci
		if !forward {
			c = nc - 1 - ci
		}
		set := m.groups[c]
		if m.rt.Serial(len(set)) {
			m.relaxSet(set, b, x, forward, 0, len(set))
			continue
		}
		m.rt.For(len(set), func(lo, hi int) {
			m.relaxSet(set, b, x, forward, lo, hi)
		})
	}
}

// relaxSet relaxes the units set[lo:hi] of one color class.
//
//amg:hotpath
func (m *Multicolor) relaxSet(set []int32, b, x []float64, forward bool, lo, hi int) {
	if m.clusterRows == nil {
		for k := lo; k < hi; k++ {
			m.relaxRow(set[k], b, x)
		}
		return
	}
	for k := lo; k < hi; k++ {
		rows := m.clusterRows[set[k]]
		if forward {
			for _, i := range rows {
				m.relaxRow(i, b, x)
			}
		} else {
			for r := len(rows) - 1; r >= 0; r-- {
				m.relaxRow(rows[r], b, x)
			}
		}
	}
}

// Apply runs the given number of sweeps on A x = b, updating x in place.
// When symmetric is set each sweep is a forward+backward pair (SGS).
//
//amg:hotpath
func (m *Multicolor) Apply(b, x []float64, sweeps int, symmetric bool) {
	for s := 0; s < sweeps; s++ {
		m.Sweep(b, x, true)
		if symmetric {
			m.Sweep(b, x, false)
		}
	}
}

// Precondition implements krylov.Preconditioner with one symmetric sweep
// from a zero initial guess.
//
//amg:hotpath
func (m *Multicolor) Precondition(r, z []float64) {
	for i := range z {
		z[i] = 0
	}
	m.Apply(r, z, 1, true)
}

// Sequential runs classical Gauss-Seidel sweeps on A x = b in natural row
// order, updating x in place. The reference method the multicolor
// variants approximate.
func Sequential(a *sparse.Matrix, b, x []float64, sweeps int, symmetric bool) error {
	if a.Rows != a.Cols {
		return errors.New("gs: matrix must be square")
	}
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			return fmt.Errorf("gs: zero diagonal at row %d", i)
		}
		d[i] = 1 / v
	}
	relax := func(i int32) {
		s := b[i]
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.Col[q]
			if j != i {
				s -= a.Val[q] * x[j]
			}
		}
		x[i] = s * d[i]
	}
	for sw := 0; sw < sweeps; sw++ {
		for i := int32(0); int(i) < a.Rows; i++ {
			relax(i)
		}
		if symmetric {
			for i := int32(a.Rows) - 1; i >= 0; i-- {
				relax(i)
			}
		}
	}
	return nil
}
