// Command coarsentool compares the aggregation schemes on a chosen graph:
// aggregate counts, size distribution, coarsening rate, and timing — the
// qualitative data behind Table V's iteration differences.
//
// Usage:
//
//	coarsentool -gen laplace3d -nx 50 -ny 50 -nz 50
//	coarsentool -suite Serena -scale 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"mis2go/internal/coarsen"
	"mis2go/internal/gen"
	"mis2go/internal/graph"
	"mis2go/internal/matrices"
)

func main() {
	genName := flag.String("gen", "laplace3d", "generator: laplace3d, laplace2d, elasticity, fem")
	suite := flag.String("suite", "", "use a named suite matrix surrogate instead of -gen")
	scale := flag.Float64("scale", 0.05, "suite matrix scale (with -suite)")
	nx := flag.Int("nx", 40, "grid x dimension")
	ny := flag.Int("ny", 40, "grid y dimension")
	nz := flag.Int("nz", 40, "grid z dimension")
	threads := flag.Int("threads", 0, "worker count (0 = all cores)")
	flag.Parse()

	var g *graph.CSR
	if *suite != "" {
		spec, err := matrices.Get(*suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		g = spec.Build(*scale)
	} else {
		switch *genName {
		case "laplace3d":
			g = gen.Laplace3D(*nx, *ny, *nz)
		case "laplace2d":
			g = gen.Laplace2D(*nx, *ny)
		case "elasticity":
			g = gen.Elasticity3D(*nx, *ny, *nz, 3)
		case "fem":
			g = gen.RandomFEM(*nx, *ny, *nz, 20, 0xC0FFEE)
		default:
			fmt.Fprintf(os.Stderr, "unknown generator %q\n", *genName)
			os.Exit(2)
		}
	}
	fmt.Printf("graph: |V|=%d |E|=%d avg deg %.2f\n\n", g.N, g.NumEdges()/2, g.AvgDegree())

	schemes := []struct {
		name string
		run  func() coarsen.Aggregation
	}{
		{name: "Serial Agg", run: func() coarsen.Aggregation { return coarsen.SerialGreedy(g) }},
		{name: "Serial D2C", run: func() coarsen.Aggregation { return coarsen.D2C(g, *threads, false) }},
		{name: "NB D2C", run: func() coarsen.Aggregation { return coarsen.D2C(g, *threads, true) }},
		{name: "MIS2 Basic", run: func() coarsen.Aggregation {
			return coarsen.Basic(g, coarsen.Options{Threads: *threads})
		}},
		{name: "MIS2 Agg", run: func() coarsen.Aggregation {
			return coarsen.MIS2Aggregation(g, coarsen.Options{Threads: *threads})
		}},
	}
	fmt.Printf("%-12s %9s %8s %8s %6s %6s %8s %10s\n",
		"scheme", "aggs", "rate", "mean", "min", "max", "median", "time")
	for _, s := range schemes {
		start := time.Now()
		agg := s.run()
		elapsed := time.Since(start)
		if err := coarsen.Check(g, agg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", s.name, err)
			continue
		}
		sizes := coarsen.Sizes(agg)
		sort.Ints(sizes)
		mn, mx := sizes[0], sizes[len(sizes)-1]
		median := sizes[len(sizes)/2]
		rate := float64(g.N) / float64(agg.NumAggregates)
		fmt.Printf("%-12s %9d %7.2fx %8.2f %6d %6d %8d %10v\n",
			s.name, agg.NumAggregates, rate, rate, mn, mx, median,
			elapsed.Round(time.Microsecond))
	}
}
