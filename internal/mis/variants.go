// The Figure 2 ablation grid: five implementations, each adding one of the
// paper's four optimizations (§V) on top of the previous one.
package mis

import (
	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/par"
)

// Variant identifies one rung of the cumulative optimization ladder.
type Variant int

const (
	// VariantBaseline is the reference implementation of Bell's general
	// MIS-k algorithm called with k=2: fixed priorities, full-vertex
	// sweeps, uncompressed tuples. This is also the algorithm CUSP and
	// ViennaCL implement (Figures 6/7, Table IV).
	VariantBaseline Variant = iota
	// VariantRandomized adds per-iteration xorshift* priorities (§V-A).
	VariantRandomized
	// VariantWorklists adds the dual worklists with prefix-sum compaction
	// and the k=2-specialized column minimum of Algorithm 1 (§V-B).
	VariantWorklists
	// VariantPacked adds single-word packed status tuples (§V-C).
	VariantPacked
	// VariantSIMD adds unrolled inner reductions for graphs with average
	// degree >= 16 (§V-D); this is the full Algorithm 1 as shipped.
	VariantSIMD

	// NumVariants is the number of ablation rungs.
	NumVariants = 5
)

// String returns the Figure 2 label of the variant.
func (v Variant) String() string {
	switch v {
	case VariantBaseline:
		return "Baseline"
	case VariantRandomized:
		return "Random priority"
	case VariantWorklists:
		return "Worklists"
	case VariantPacked:
		return "Packed Status"
	case VariantSIMD:
		return "SIMD"
	}
	return "unknown"
}

// MIS2Variant runs the requested ablation configuration with the given
// worker count (0 = GOMAXPROCS). All variants are deterministic and
// produce a valid MIS-2, but with different speed (Figure 2) and, for
// Baseline, a different (fixed-priority) result set.
func MIS2Variant(g *graph.CSR, variant Variant, threads int) Result {
	rt := par.New(threads)
	switch variant {
	case VariantBaseline:
		return BellMISK(g, BellOptions{K: 2, Rehash: false, Hash: hash.Fixed, Threads: threads})
	case VariantRandomized:
		return BellMISK(g, BellOptions{K: 2, Rehash: true, Hash: hash.XorStar, Threads: threads})
	case VariantWorklists:
		return mis2Unpacked(g, hash.XorStar, rt)
	case VariantPacked:
		return mis2Packed(g, hash.XorStar, false, false, rt)
	default: // VariantSIMD
		return mis2Packed(g, hash.XorStar, g.AvgDegree() >= MinSIMDDegree, false, rt)
	}
}
