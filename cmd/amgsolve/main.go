// Command amgsolve solves a Laplace3D problem with SA-AMG preconditioned
// conjugate gradient, using a selectable aggregation scheme — a
// command-line version of the paper's Table V experiment for one scheme.
//
// Usage:
//
//	amgsolve -n 60 -agg mis2agg -tol 1e-12
//
// With -resetup N the command additionally re-runs the numeric setup
// phase N times on value-perturbed same-pattern matrices
// (Hierarchy.Refresh) and reports the re-setup vs full-setup ratio —
// the time-stepping/Newton workload the symbolic/numeric split serves.
//
// With -schwarz K the preconditioner is a two-level overlapping
// additive Schwarz method over a K-subdomain partition (the
// domain-decomposition path) instead of a single AMG hierarchy; -overlap
// sets the BFS overlap depth explicitly (0 is honored as block Jacobi).
// The effective configuration — K is rounded up to a power of two, and
// empty parts are dropped — is printed, and -resetup exercises
// Preconditioner.Refresh instead.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/coarsen"
	"mis2go/internal/gen"
	"mis2go/internal/graph"
	"mis2go/internal/krylov"
	"mis2go/internal/order"
	"mis2go/internal/par"
	"mis2go/internal/schwarz"
	"mis2go/internal/sparse"
)

func main() {
	n := flag.Int("n", 50, "grid side (problem has n^3 unknowns)")
	aggName := flag.String("agg", "mis2agg", "aggregation: mis2agg, mis2basic, serial, d2c")
	tol := flag.Float64("tol", 1e-12, "CG relative tolerance")
	threads := flag.Int("threads", 0, "worker count (0 = all cores)")
	resetup := flag.Int("resetup", 0, "re-run the numeric setup N times on same-pattern perturbed values and report the re-setup ratio")
	formatName := flag.String("format", "auto", "per-level operator format: auto, csr, sell")
	precName := flag.String("precision", "f64", "operator value precision: f64, f32, auto (f32 below the finest level; CG recurrence stays f64)")
	rcm := flag.Bool("rcm", false, "reorder the system with reverse Cuthill-McKee before solving (solution is inverse-permuted back)")
	schwarzSubs := flag.Int("schwarz", 0, "precondition with K-subdomain two-level additive Schwarz instead of a single AMG hierarchy (rounded up to a power of two), 0 = off")
	overlap := flag.Int("overlap", -1, "Schwarz BFS overlap depth; 0 = explicit block Jacobi, -1 = default (1)")
	health := flag.Bool("health", true, "guard the CG iteration against divergence, stagnation, and non-finite residuals (classified errors instead of a burned iteration budget)")
	flag.Parse()
	format, err := sparse.ParseFormat(*formatName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prec, err := sparse.ParsePrecision(*precName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	aggs := map[string]amg.AggregateFunc{
		"mis2agg": func(g *graph.CSR) coarsen.Aggregation {
			return coarsen.MIS2Aggregation(g, coarsen.Options{Threads: *threads})
		},
		"mis2basic": func(g *graph.CSR) coarsen.Aggregation {
			return coarsen.Basic(g, coarsen.Options{Threads: *threads})
		},
		"serial": coarsen.SerialGreedy,
		"d2c":    func(g *graph.CSR) coarsen.Aggregation { return coarsen.D2C(g, *threads, true) },
	}
	aggFn, ok := aggs[*aggName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown aggregation %q\n", *aggName)
		os.Exit(2)
	}

	g := gen.Laplace3D(*n, *n, *n)
	a := gen.DirichletLaplacian(g, 6)
	fmt.Printf("problem: Laplace3D %d^3, %d unknowns, %d nonzeros\n", *n, a.Rows, a.NNZ())

	// Optional bandwidth-reducing reordering: solve P·A·Pᵀ (Px) = Pb and
	// inverse-permute the solution back to the original numbering.
	var perm []int32
	if *rcm {
		bwBefore := order.Bandwidth(a)
		perm = order.RCM(a.Graph())
		a, err = order.PermuteMatrix(a, perm)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("rcm: bandwidth %d -> %d\n", bwBefore, order.Bandwidth(a))
	}

	// The solve runs against either preconditioner through the same
	// krylov interface; refresh drives the matching numeric-only replay.
	var precond krylov.Preconditioner
	var refresh func(sparse.Operator) error
	var setup time.Duration
	if *schwarzSubs > 0 {
		opt := schwarz.Options{Subdomains: *schwarzSubs, Threads: *threads}
		if *overlap >= 0 {
			opt.Overlap, opt.OverlapSet = *overlap, true
		}
		start := time.Now()
		p, err := schwarz.New(a, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		setup = time.Since(start)
		st := p.Stats()
		fmt.Printf("setup: schwarz %d subdomains (requested %d, %d parts), overlap %d, %d AMG + %d dense locals, coarse %d (amg=%v), %.3f s\n",
			st.Subdomains, st.RequestedSubdomains, st.Parts, st.Overlap,
			st.AMGLocal, st.DenseLocal, st.CoarseSize, st.CoarseAMG, setup.Seconds())
		precond, refresh = p, p.Refresh
	} else {
		start := time.Now()
		h, err := amg.Build(a, amg.Options{Aggregate: aggFn, Threads: *threads, Format: format, Precision: prec})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		setup = time.Since(start)
		fmt.Printf("setup: %d levels, operator complexity %.2f, %.3f s\n",
			h.NumLevels(), h.OperatorComplexity(), setup.Seconds())
		fmt.Printf("formats:")
		for _, l := range h.Levels {
			fmt.Printf(" %s/%s(%d)", l.Format(), l.Precision(), l.A.Rows)
		}
		fmt.Println()
		precond = h
		refresh = func(a2 sparse.Operator) error { return h.Refresh(a2.(*sparse.Matrix)) }
	}

	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%17)/17
	}
	if perm != nil {
		pb := make([]float64, len(b))
		if err := order.PermuteVector(pb, b, perm); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b = pb
	}
	// The outer CG matvec runs through the same format policy as the
	// hierarchy levels, so -format sell accelerates the fine-grid SpMV
	// of every iteration too. The precision policy applies only under a
	// full -precision f32: under auto the finest level stays f64, and the
	// outer operator matches it.
	outerPrec := sparse.PrecisionF64
	if prec == sparse.PrecisionF32 {
		outerPrec = sparse.PrecisionF32
	}
	aop, err := sparse.NewOperatorPrec(a, format, 0, outerPrec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	x := make([]float64, a.Rows)
	var hg *krylov.Health
	if *health {
		hg = krylov.DefaultHealth()
	}
	start := time.Now()
	st, err := krylov.CGCtx(nil, par.New(*threads), aop, b, x, *tol, 1000, precond, nil, hg)
	solve := time.Since(start)
	if err != nil {
		// Name the failure class: a guard trip is actionable (wrong
		// discretization, lost SPD-ness) in a way "not converged" is not.
		switch {
		case errors.Is(err, krylov.ErrDiverged):
			fmt.Fprintf(os.Stderr, "solve diverged: %v\n", err)
		case errors.Is(err, krylov.ErrStagnated):
			fmt.Fprintf(os.Stderr, "solve stagnated: %v\n", err)
		case errors.Is(err, krylov.ErrNonFinite):
			fmt.Fprintf(os.Stderr, "solve produced non-finite values: %v\n", err)
		case errors.Is(err, krylov.ErrBreakdown):
			fmt.Fprintf(os.Stderr, "CG breakdown: %v\n", err)
		default:
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
	if perm != nil {
		orig := make([]float64, len(x))
		if err := order.InversePermuteVector(orig, x, perm); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		x = orig
	}
	xsum := 0.0
	for _, v := range x {
		xsum += v
	}
	fmt.Printf("solve: %d CG iterations, relres %.2e, xsum %.6e, %.3f s\n",
		st.Iterations, st.RelResidual, xsum, solve.Seconds())

	if *resetup > 0 {
		// Same pattern, new values each round: a global SPD-preserving
		// rescale, the shape of a time step or Newton update.
		a2 := a.Clone()
		var total time.Duration
		for it := 1; it <= *resetup; it++ {
			s := 1 + 0.01*float64(it)
			for p := range a2.Val {
				a2.Val[p] = a.Val[p] * s
			}
			start = time.Now()
			if err := refresh(a2); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			total += time.Since(start)
		}
		mean := total / time.Duration(*resetup)
		fmt.Printf("re-setup: %d refreshes, mean %.3f s (full setup %.3f s, %.1fx faster)\n",
			*resetup, mean.Seconds(), setup.Seconds(), setup.Seconds()/mean.Seconds())
	}
}
