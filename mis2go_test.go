package mis2go

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPublicAPIMIS2(t *testing.T) {
	g := Laplace3D(12, 12, 12)
	res := MIS2(g, MISOptions{})
	if err := VerifyMIS2(g, res.InSet); err != nil {
		t.Fatal(err)
	}
	if len(res.InSet) == 0 || res.Iterations == 0 {
		t.Fatal("degenerate result")
	}
}

func TestPublicAPINewGraph(t *testing.T) {
	g := NewGraph(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	res := MIS2(g, MISOptions{Hash: HashXorStar})
	if err := VerifyMIS2(g, res.InSet); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIAggregation(t *testing.T) {
	g := Laplace2D(20, 20)
	for _, agg := range []Aggregation{Aggregate(g, 0), CoarsenBasic(g, 0)} {
		if agg.NumAggregates == 0 {
			t.Fatal("no aggregates")
		}
		cg := CoarseGraph(g, agg)
		if cg.N != agg.NumAggregates {
			t.Fatal("coarse graph size mismatch")
		}
		if cg.N >= g.N {
			t.Fatal("no coarsening achieved")
		}
	}
}

func TestPublicAPIAMGCG(t *testing.T) {
	g := Laplace3D(10, 10, 10)
	a := GraphLaplacian(g, 0.05)
	h, err := NewAMG(a, AMGOptions{MinCoarseSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	x := make([]float64, n)
	st, err := SolveCG(a, b, x, 1e-10, 300, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("not converged: %+v", st)
	}
}

func TestPublicAPIClusterSGS(t *testing.T) {
	g := Laplace2D(25, 25)
	a := WeightedGraphLaplacian(g, 0.1, 3)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	for _, build := range []func() (*GaussSeidel, error){
		func() (*GaussSeidel, error) { return NewPointSGS(a, 0) },
		func() (*GaussSeidel, error) { return NewClusterSGS(a, 0) },
	} {
		m, err := build()
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		st, err := SolveGMRES(a, b, x, 1e-8, 800, 50, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("not converged: %+v", st)
		}
	}
}

func TestPublicAPIClusterSGSFromCustomAggregation(t *testing.T) {
	g := Laplace2D(15, 15)
	a := GraphLaplacian(g, 0.2)
	agg := CoarsenBasic(g, 0)
	m, err := NewClusterSGSFrom(a, agg, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	z := make([]float64, a.Rows)
	m.Precondition(b, z)
}

func TestPublicAPIMISK(t *testing.T) {
	g := Laplace2D(20, 20)
	for k := 1; k <= 4; k++ {
		res := MISK(g, k, 0)
		if len(res.InSet) == 0 {
			t.Fatalf("k=%d: empty set", k)
		}
		if err := VerifyMISK(g, res.InSet, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	// Larger k means sparser sets.
	if len(MISK(g, 4, 0).InSet) >= len(MISK(g, 1, 0).InSet) {
		t.Fatal("MIS-4 not sparser than MIS-1")
	}
}

func TestPublicAPIBisect(t *testing.T) {
	g := Laplace2D(30, 30)
	for _, pol := range []PartitionOptions{{Policy: PartitionMIS2}, {Policy: PartitionHEM}} {
		res, err := Bisect(g, pol)
		if err != nil {
			t.Fatal(err)
		}
		if res.Balance > 1.1 || res.EdgeCut <= 0 {
			t.Fatalf("bad bisection: %+v", res)
		}
	}
}

func TestPublicAPIMatrixMarket(t *testing.T) {
	g := Laplace2D(6, 6)
	a := GraphLaplacian(g, 0.5)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	b, err := ReadMatrixMarket(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if b.NNZ() != a.NNZ() {
		t.Fatal("matrix market round trip changed nnz")
	}
	h, err := ReadGraphMatrixMarket(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if h.N != g.N || h.NumEdges() != g.NumEdges() {
		t.Fatal("graph read from matrix differs from source pattern")
	}
}

func TestPublicAPIChebyshevAMG(t *testing.T) {
	g := Laplace3D(8, 8, 8)
	a := DirichletLaplacian(g, 6)
	h, err := NewAMG(a, AMGOptions{MinCoarseSize: 40, Smoother: SmootherChebyshev})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	st, err := SolveCG(a, b, x, 1e-10, 200, h, 0)
	if err != nil || !st.Converged {
		t.Fatalf("Chebyshev AMG failed: %v %+v", err, st)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	for name, g := range map[string]*Graph{
		"laplace3d":   Laplace3D(5, 5, 5),
		"laplace2d":   Laplace2D(8, 8),
		"elasticity":  Elasticity3D(4, 4, 4, 3),
		"randomfem":   RandomFEM(8, 8, 8, 12, 7),
		"constructed": NewGraph(3, []Edge{{U: 0, V: 1}}),
	} {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPublicAPIKWayAndQuality(t *testing.T) {
	g := Laplace2D(16, 16)
	res, err := PartitionKWay(g, 4, PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 || res.EdgeCut <= 0 {
		t.Fatalf("bad k-way result: %+v", res)
	}
	agg := Aggregate(g, 0)
	q := QualityOf(g, agg)
	if q.MeanSize <= 1 || q.BoundaryFraction <= 0 {
		t.Fatalf("bad quality stats: %+v", q)
	}
}

func TestPublicAPIJacobiPreconditioner(t *testing.T) {
	g := Laplace2D(14, 14)
	a := DirichletLaplacian(g, 4)
	m, err := JacobiPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64(i%3) - 1
	}
	x := make([]float64, a.Rows)
	st, err := SolveCG(a, b, x, 1e-10, 1000, m, 0)
	if err != nil || !st.Converged {
		t.Fatalf("Jacobi-CG failed: %v %+v", err, st)
	}
}

func TestPublicAPIGSSmoothersInAMG(t *testing.T) {
	g := Laplace3D(7, 7, 7)
	a := DirichletLaplacian(g, 6)
	for _, sm := range []AMGSmoother{SmootherJacobi, SmootherChebyshev, SmootherPointSGS, SmootherClusterSGS} {
		h, err := NewAMG(a, AMGOptions{MinCoarseSize: 40, Smoother: sm, PreSweeps: 1, PostSweeps: 1})
		if err != nil {
			t.Fatalf("smoother %d: %v", sm, err)
		}
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1
		}
		x := make([]float64, a.Rows)
		st, err := SolveCG(a, b, x, 1e-9, 300, h, 0)
		if err != nil || !st.Converged {
			t.Fatalf("smoother %d failed: %v %+v", sm, err, st)
		}
	}
}

func TestPublicAPISchwarz(t *testing.T) {
	g := Laplace2D(32, 32)
	a := DirichletLaplacian(g, 4)
	p, err := NewSchwarz(a, SchwarzOptions{Subdomains: 8})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = math.Sin(0.2 * float64(i))
	}
	x := make([]float64, a.Rows)
	st, err := SolveCG(a, b, x, 1e-9, 500, p, 0)
	if err != nil || !st.Converged {
		t.Fatalf("Schwarz-CG failed: %v %+v", err, st)
	}
}
