package mis2go_test

import (
	"fmt"

	"mis2go"
)

// ExampleMIS2 computes and verifies a distance-2 maximal independent set.
func ExampleMIS2() {
	// A path 0-1-2-3-4-5-6: a valid MIS-2 needs members more than two
	// hops apart that dominate everything within two hops.
	g := mis2go.NewGraph(7, []mis2go.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 6},
	})
	res := mis2go.MIS2(g, mis2go.MISOptions{})
	fmt.Println("size:", len(res.InSet))
	fmt.Println("valid:", mis2go.VerifyMIS2(g, res.InSet) == nil)
	// Output:
	// size: 2
	// valid: true
}

// ExampleAggregate coarsens a mesh with the paper's Algorithm 3.
func ExampleAggregate() {
	g := mis2go.Laplace2D(8, 8)
	agg := mis2go.Aggregate(g, 0)
	coarse := mis2go.CoarseGraph(g, agg)
	fmt.Println("coarsened:", g.N, "->", coarse.N, "vertices")
	fmt.Println("all assigned:", len(agg.Labels) == g.N)
	// Output:
	// coarsened: 64 -> 13 vertices
	// all assigned: true
}

// ExampleNewAMGSymbolic is the time-stepping re-setup flow: the symbolic
// setup (aggregation, SpGEMM patterns) runs once, and each step with new
// values on the same sparsity pattern pays only the cheap numeric phase
// via Refresh. A pattern change is rejected instead of silently
// rebuilding.
func ExampleNewAMGSymbolic() {
	g := mis2go.Laplace3D(8, 8, 8)
	a := mis2go.DirichletLaplacian(g, 6)
	h, err := mis2go.NewAMGSymbolic(a, mis2go.AMGOptions{MinCoarseSize: 40})
	if err != nil {
		panic(err)
	}
	if err := h.BuildNumeric(a); err != nil {
		panic(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	ws := mis2go.NewSolverWorkspace(a.Rows)
	for step := 0; step < 3; step++ {
		// New values, same pattern (e.g. a time-dependent coefficient).
		for p := range a.Val {
			a.Val[p] *= 1.1
		}
		if err := h.Refresh(a); err != nil {
			panic(err)
		}
		for i := range x {
			x[i] = 0
		}
		st, err := mis2go.SolveCGWith(a, b, x, 1e-10, 200, h, 0, ws)
		if err != nil {
			panic(err)
		}
		fmt.Printf("step %d converged: %v\n", step, st.Converged)
	}
	// A matrix with a different sparsity pattern is a clean error.
	other := mis2go.DirichletLaplacian(mis2go.Laplace3D(8, 8, 9), 6)
	fmt.Println("pattern change rejected:", h.Refresh(other) != nil)
	// Output:
	// step 0 converged: true
	// step 1 converged: true
	// step 2 converged: true
	// pattern change rejected: true
}

// ExampleNewAMG solves a Poisson problem with AMG-preconditioned CG.
func ExampleNewAMG() {
	g := mis2go.Laplace3D(8, 8, 8)
	a := mis2go.DirichletLaplacian(g, 6)
	h, err := mis2go.NewAMG(a, mis2go.AMGOptions{MinCoarseSize: 40})
	if err != nil {
		panic(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	st, err := mis2go.SolveCG(a, b, x, 1e-10, 200, h, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", st.Converged)
	// Output:
	// converged: true
}
