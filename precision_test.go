// Mixed-precision tests: float32-valued operators change only the bytes
// the kernels stream — every kernel takes float64 vectors, widens each
// stored value back to float64 before its multiply, and accumulates in
// float64 in the canonical left-to-right per-row order. These tests pin
// the three contracts that make f32 storage safe to serve: bitwise
// determinism across worker counts and formats, fail-closed refresh
// (a rejected f32 refresh leaves the previous values serving bitwise
// unchanged), and convergence quality (the f64-guarded CG pays at most
// +10% iterations for f32 operator storage).
package mis2go

import (
	"context"
	"math"
	"testing"

	"mis2go/internal/gen"
)

// TestF32VCycleBitwiseAcrossWorkersAndFormats pins f32 determinism end
// to end: under one precision policy, a V-cycle applied through CSR32
// or SELL32 level operators is bitwise identical for every format
// choice and every worker count (1/2/8). The f32 result legitimately
// differs from the f64 result (values were rounded once at store time),
// so each policy carries its own reference; the test also pins that the
// two policies agree with themselves across repeated builds.
func TestF32VCycleBitwiseAcrossWorkersAndFormats(t *testing.T) {
	g := gen.Laplace3D(20, 20, 20)
	a := GraphLaplacian(g, 1e-4)
	n := a.Rows
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	for _, prec := range []OperatorPrecision{PrecisionF32, PrecisionAuto} {
		var ref []uint64
		for _, format := range []OperatorFormat{FormatCSR, FormatSELL, FormatAuto} {
			for _, threads := range []int{1, 2, 8} {
				h, err := NewAMG(a, AMGOptions{Threads: threads, Format: format, Precision: prec})
				if err != nil {
					t.Fatalf("%v/%v, %d workers: %v", prec, format, threads, err)
				}
				z := make([]float64, n)
				h.Precondition(r, z)
				bits := make([]uint64, n)
				for i, v := range z {
					bits[i] = math.Float64bits(v)
				}
				if ref == nil {
					ref = bits
					continue
				}
				for i := range bits {
					if bits[i] != ref[i] {
						t.Fatalf("%v/%v, %d workers: z[%d] differs bitwise from the CSR path", prec, format, threads, i)
					}
				}
			}
		}
	}
}

// TestF32SolveCGBitwiseAcrossWorkers extends the gate to a full solve:
// outer f32 operator, f32 hierarchy, bitwise-identical solutions and
// stats at 1/2/8 workers.
func TestF32SolveCGBitwiseAcrossWorkers(t *testing.T) {
	g := gen.Laplace3D(16, 16, 16)
	a := GraphLaplacian(g, 1e-4)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	var refX []uint64
	var refStats SolveStats
	for k, threads := range []int{1, 2, 8} {
		h, err := NewAMG(a, AMGOptions{Threads: threads, Precision: PrecisionF32})
		if err != nil {
			t.Fatalf("%d workers: %v", threads, err)
		}
		op, err := NewOperatorPrec(a, FormatAuto, PrecisionF32)
		if err != nil {
			t.Fatalf("%d workers: %v", threads, err)
		}
		x := make([]float64, n)
		st, err := SolveCG(op, b, x, 1e-10, 400, h, threads)
		if err != nil {
			t.Fatalf("%d workers: %v", threads, err)
		}
		bits := make([]uint64, n)
		for i, v := range x {
			bits[i] = math.Float64bits(v)
		}
		if k == 0 {
			refX, refStats = bits, st
			continue
		}
		if st.Iterations != refStats.Iterations {
			t.Fatalf("%d workers: %d iterations, want %d", threads, st.Iterations, refStats.Iterations)
		}
		if math.Float64bits(st.RelResidual) != math.Float64bits(refStats.RelResidual) {
			t.Fatalf("%d workers: relres differs bitwise", threads)
		}
		for i := range bits {
			if bits[i] != refX[i] {
				t.Fatalf("%d workers: x[%d] differs bitwise", threads, i)
			}
		}
	}
}

// TestF32ConvergenceWithinTenPercent is the convergence-quality gate:
// storing operator values in float32 under the float64-guarded CG
// recurrence may cost at most 10% extra iterations versus the all-f64
// solve of the same system, on both a structured and an irregular
// problem.
func TestF32ConvergenceWithinTenPercent(t *testing.T) {
	systems := map[string]*Matrix{
		"laplace3d": GraphLaplacian(gen.Laplace3D(24, 24, 24), 1e-4),
		"randomfem": GraphLaplacian(gen.RandomFEM(12, 12, 12, 18, 7), 1e-4),
	}
	for name, a := range systems {
		n := a.Rows
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i%13) - 6
		}
		iters := func(prec OperatorPrecision) int {
			h, err := NewAMG(a, AMGOptions{Precision: prec})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, prec, err)
			}
			op, err := NewOperatorPrec(a, FormatAuto, resolveOuter(prec))
			if err != nil {
				t.Fatalf("%s/%v: %v", name, prec, err)
			}
			x := make([]float64, n)
			st, err := SolveCG(op, b, x, 1e-10, 600, h, 0)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, prec, err)
			}
			return st.Iterations
		}
		f64 := iters(PrecisionF64)
		budget := f64 + (f64+9)/10 // ceil(1.1x)
		for _, prec := range []OperatorPrecision{PrecisionF32, PrecisionAuto} {
			if got := iters(prec); got > budget {
				t.Fatalf("%s: %v solve took %d CG iterations, f64 took %d (budget +10%% = %d)", name, prec, got, f64, budget)
			}
		}
	}
}

// resolveOuter maps the hierarchy precision policy to the outer CG
// operator's single-operator precision: the outer matvec matches the
// finest level, which stays f64 under PrecisionAuto.
func resolveOuter(prec OperatorPrecision) OperatorPrecision {
	if prec == PrecisionF32 {
		return PrecisionF32
	}
	return PrecisionF64
}

// TestF32RefreshRejectedLeavesPreviousServing pins the fail-closed
// two-zone refresh contract for f32 hierarchies: a refresh whose values
// do not fit float32 (or are not finite) is rejected by the pre-mutation
// scan, the hierarchy stays valid, and the previous operator serves
// bitwise unchanged.
func TestF32RefreshRejectedLeavesPreviousServing(t *testing.T) {
	g := gen.Laplace3D(12, 12, 12)
	a := GraphLaplacian(g, 1e-2)
	h, err := NewAMG(a, AMGOptions{Precision: PrecisionF32})
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	apply := func() []uint64 {
		z := make([]float64, n)
		h.Precondition(r, z)
		bits := make([]uint64, n)
		for i, v := range z {
			bits[i] = math.Float64bits(v)
		}
		return bits
	}
	before := apply()
	// Same pattern, one value pushed outside the float32 range: the
	// fine-level range scan must reject before any level is touched.
	for _, poison := range []float64{math.MaxFloat32 * 2, math.NaN(), math.Inf(1)} {
		bad := a.Clone()
		bad.Val[len(bad.Val)/2] = poison
		if err := h.Refresh(bad); err == nil {
			t.Fatalf("poison %g: refresh accepted values that do not fit float32", poison)
		}
		after := apply()
		for i := range after {
			if after[i] != before[i] {
				t.Fatalf("poison %g: z[%d] changed after a rejected refresh", poison, i)
			}
		}
	}
	// A valid same-pattern refresh still works after the rejections —
	// the hierarchy was never invalidated.
	a2 := a.Clone()
	for p := range a2.Val {
		a2.Val[p] *= 1.25
	}
	if err := h.Refresh(a2); err != nil {
		t.Fatalf("valid refresh after rejections: %v", err)
	}
}

// TestRefreshF32ZeroAllocs extends the numeric re-setup allocation gate
// to f32 hierarchies: FillValues on CSR32/SELL32 is a branch-free
// convert through the cached entry schedule, so a values-only Refresh
// allocates nothing in steady state at either storage format.
func TestRefreshF32ZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector bypasses sync.Pool arena recycling, charging spurious allocations")
	}
	g := gen.Laplace3D(12, 12, 12)
	a := gen.Laplacian(g, 1e-2)
	for _, format := range []OperatorFormat{FormatCSR, FormatSELL} {
		h, err := NewAMG(a, AMGOptions{Threads: 1, Format: format, Precision: PrecisionF32})
		if err != nil {
			t.Fatal(err)
		}
		a2 := a.Clone()
		for p := range a2.Val {
			a2.Val[p] *= 1.25
		}
		for i := 0; i < 2; i++ {
			if err := h.Refresh(a2); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(5, func() {
			if err := h.Refresh(a2); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%v f32 Hierarchy.Refresh: %v allocs/op, want 0", format, allocs)
		}
	}
}

// TestF32RefreshMatchesFreshBuild pins refresh/build equivalence in
// f32: refreshing an f32 hierarchy onto new values yields a V-cycle
// bitwise identical to building fresh on those values.
func TestF32RefreshMatchesFreshBuild(t *testing.T) {
	g := gen.Laplace3D(14, 14, 14)
	a := GraphLaplacian(g, 1e-2)
	a2 := a.Clone()
	for p := range a2.Val {
		a2.Val[p] *= 1.5
	}
	n := a.Rows
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	for _, prec := range []OperatorPrecision{PrecisionF32, PrecisionAuto} {
		refreshed, err := NewAMG(a, AMGOptions{Precision: prec})
		if err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		if err := refreshed.Refresh(a2); err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		fresh, err := NewAMG(a2, AMGOptions{Precision: prec})
		if err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		zr := make([]float64, n)
		zf := make([]float64, n)
		refreshed.Precondition(r, zr)
		fresh.Precondition(r, zf)
		for i := range zr {
			if math.Float64bits(zr[i]) != math.Float64bits(zf[i]) {
				t.Fatalf("%v: refreshed z[%d] differs bitwise from fresh build", prec, i)
			}
		}
	}
}

// TestF32ServeRecordsPrecision pins the serving surface: a service
// configured for f32 reports the policy in per-request stats and serves
// solves bitwise identical to the sequential f32 reference.
func TestF32ServeRecordsPrecision(t *testing.T) {
	g := gen.Laplace3D(12, 12, 12)
	a := GraphLaplacian(g, 1e-2)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	svc := NewSolveService(ServeConfig{Precision: PrecisionF32, Threads: 1})
	xs, stats, err := svc.SolveBatch(context.Background(), a, [][]float64{b})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Precision != PrecisionF32 {
		t.Fatalf("served stats record precision %v, want %v", stats.Precision, PrecisionF32)
	}
	// Sequential f32 reference: same hierarchy policy, same outer
	// operator precision, same tolerance defaults (1e-8, 500), and the
	// same k=1 CGBatch recurrence the service runs.
	h, err := NewAMG(a, AMGOptions{Threads: 1, Precision: PrecisionF32})
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperatorPrec(a, FormatAuto, PrecisionF32)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	bb := append([]float64(nil), b...)
	if _, err := SolveCGBatch(op, bb, x, 1, 1e-8, 500, h, 1); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Float64bits(xs[0][i]) != math.Float64bits(x[i]) {
			t.Fatalf("served f32 solution x[%d] differs bitwise from the sequential reference", i)
		}
	}
	// The zero-value policy stays f64 and is reported as such.
	svc64 := NewSolveService(ServeConfig{Threads: 1})
	if _, st, err := svc64.SolveBatch(context.Background(), a, [][]float64{b}); err != nil {
		t.Fatal(err)
	} else if st.Precision != PrecisionF64 {
		t.Fatalf("default service records precision %v, want %v", st.Precision, PrecisionF64)
	}
}
