// Determinism tests: every algorithm must produce byte-identical results
// for any worker count. The persistent worker pool claims blocks with an
// atomic counter (work stealing), so these tests pin the contract that
// the schedule never leaks into results — the blocking is a fixed
// function of (n, workers), blocks write disjoint ranges, and all
// floating-point reductions run in a scheduling-independent order.
// Run with -race to also exercise the pool's synchronization.
package mis2go

import (
	"math"
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/graph"
	"mis2go/internal/par"
)

var detWorkerCounts = []int{1, 2, 8}

func detGraphs() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"laplace3d": gen.Laplace3D(24, 24, 24),
		"randomfem": gen.RandomFEM(12, 12, 12, 18, 7),
	}
}

func TestMIS2DeterministicAcrossWorkers(t *testing.T) {
	for name, g := range detGraphs() {
		var ref MISResult
		for k, threads := range detWorkerCounts {
			res := MIS2(g, MISOptions{Threads: threads})
			if k == 0 {
				ref = res
				if err := VerifyMIS2(g, res.InSet); err != nil {
					t.Fatalf("%s: invalid MIS-2: %v", name, err)
				}
				continue
			}
			if res.Iterations != ref.Iterations {
				t.Fatalf("%s: %d workers: %d iterations, want %d", name, threads, res.Iterations, ref.Iterations)
			}
			if len(res.InSet) != len(ref.InSet) {
				t.Fatalf("%s: %d workers: |InSet|=%d, want %d", name, threads, len(res.InSet), len(ref.InSet))
			}
			for i := range res.InSet {
				if res.InSet[i] != ref.InSet[i] {
					t.Fatalf("%s: %d workers: InSet[%d]=%d, want %d", name, threads, i, res.InSet[i], ref.InSet[i])
				}
			}
		}
	}
}

func TestAggregateDeterministicAcrossWorkers(t *testing.T) {
	for name, g := range detGraphs() {
		var ref Aggregation
		for k, threads := range detWorkerCounts {
			agg := Aggregate(g, threads)
			if k == 0 {
				ref = agg
				continue
			}
			if agg.NumAggregates != ref.NumAggregates {
				t.Fatalf("%s: %d workers: %d aggregates, want %d", name, threads, agg.NumAggregates, ref.NumAggregates)
			}
			for v := range agg.Labels {
				if agg.Labels[v] != ref.Labels[v] {
					t.Fatalf("%s: %d workers: label[%d]=%d, want %d", name, threads, v, agg.Labels[v], ref.Labels[v])
				}
			}
		}
	}
}

func TestSpMMDeterministicAcrossWorkers(t *testing.T) {
	g := gen.Laplace3D(24, 24, 24)
	a := GraphLaplacian(g, 1e-4)
	for _, k := range []int{4, 8, 5} {
		x := make([]float64, a.Cols*k)
		for i := range x {
			x[i] = float64(i%17) - 8
		}
		var ref []uint64
		for idx, threads := range detWorkerCounts {
			y := make([]float64, a.Rows*k)
			SpMM(a, x, y, k, threads)
			bits := make([]uint64, len(y))
			for i, v := range y {
				bits[i] = math.Float64bits(v)
			}
			if idx == 0 {
				ref = bits
				continue
			}
			for i := range bits {
				if bits[i] != ref[i] {
					t.Fatalf("k=%d, %d workers: y[%d] differs bitwise", k, threads, i)
				}
			}
		}
	}
}

func TestSolveCGBatchDeterministicAcrossWorkers(t *testing.T) {
	g := gen.Laplace3D(20, 20, 20)
	a := GraphLaplacian(g, 1e-4)
	n := a.Rows
	const k = 8
	b := make([]float64, n*k)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	m, err := JacobiPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	var refX []uint64
	var refStats []SolveStats
	for idx, threads := range detWorkerCounts {
		x := make([]float64, n*k)
		stats, err := SolveCGBatch(a, b, x, k, 1e-10, 600, m, threads)
		if err != nil {
			t.Fatalf("%d workers: %v", threads, err)
		}
		bits := make([]uint64, len(x))
		for i, v := range x {
			bits[i] = math.Float64bits(v)
		}
		if idx == 0 {
			refX = bits
			refStats = append([]SolveStats(nil), stats...)
			continue
		}
		for j := range stats {
			if stats[j].Iterations != refStats[j].Iterations {
				t.Fatalf("%d workers: column %d %d iterations, want %d", threads, j, stats[j].Iterations, refStats[j].Iterations)
			}
			if math.Float64bits(stats[j].RelResidual) != math.Float64bits(refStats[j].RelResidual) {
				t.Fatalf("%d workers: column %d relres differs bitwise", threads, j)
			}
		}
		for i := range bits {
			if bits[i] != refX[i] {
				t.Fatalf("%d workers: x[%d] differs bitwise", threads, i)
			}
		}
	}
}

// TestVCycleDeterministicAcrossWorkers pins the fused V-cycle paths
// (fused residual+restriction, fused prolongation+correction, fused
// ping-pong Jacobi): one preconditioner application must be bitwise
// identical for every worker count.
func TestVCycleDeterministicAcrossWorkers(t *testing.T) {
	g := gen.Laplace3D(20, 20, 20)
	a := GraphLaplacian(g, 1e-4)
	n := a.Rows
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	var ref []uint64
	for idx, threads := range detWorkerCounts {
		h, err := NewAMG(a, AMGOptions{Threads: threads})
		if err != nil {
			t.Fatalf("%d workers: %v", threads, err)
		}
		z := make([]float64, n)
		h.Precondition(r, z)
		bits := make([]uint64, n)
		for i, v := range z {
			bits[i] = math.Float64bits(v)
		}
		if idx == 0 {
			ref = bits
			continue
		}
		for i := range bits {
			if bits[i] != ref[i] {
				t.Fatalf("%d workers: z[%d] differs bitwise", threads, i)
			}
		}
	}
}

// TestSELLVCycleBitwiseMatchesCSR pins the operator-format equivalence
// contract end to end: a V-cycle applied through SELL-C-sigma level
// operators is bitwise identical to the CSR path, for every worker
// count (1/2/8) — the formats share the canonical per-row left-to-right
// accumulation order, so no kernel may differ by even one ULP.
func TestSELLVCycleBitwiseMatchesCSR(t *testing.T) {
	g := gen.Laplace3D(20, 20, 20)
	a := GraphLaplacian(g, 1e-4)
	n := a.Rows
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	var ref []uint64
	for _, format := range []OperatorFormat{FormatCSR, FormatSELL, FormatAuto} {
		for _, threads := range detWorkerCounts {
			h, err := NewAMG(a, AMGOptions{Threads: threads, Format: format})
			if err != nil {
				t.Fatalf("format %v, %d workers: %v", format, threads, err)
			}
			z := make([]float64, n)
			h.Precondition(r, z)
			bits := make([]uint64, n)
			for i, v := range z {
				bits[i] = math.Float64bits(v)
			}
			if ref == nil {
				ref = bits
				continue
			}
			for i := range bits {
				if bits[i] != ref[i] {
					t.Fatalf("format %v, %d workers: z[%d] differs bitwise from the CSR path", format, threads, i)
				}
			}
		}
	}
}

// TestRCMSELLSolveBitwiseMatchesCSR pins the reordered path: the system
// is RCM-permuted, solved through SELL-format AMG-CG, and the solution
// inverse-permuted back; the result must be bitwise identical (0 ULP)
// to the CSR-format solve of the same reordered system, inverse-permuted
// the same way, at every worker count — the permutation is pure data
// movement and the formats are bit-compatible, so nothing may drift.
func TestRCMSELLSolveBitwiseMatchesCSR(t *testing.T) {
	g := gen.Laplace3D(16, 16, 16)
	a0 := GraphLaplacian(g, 1e-4)
	perm := RCMOrder(a0)
	a, err := PermuteMatrix(a0, perm)
	if err != nil {
		t.Fatal(err)
	}
	if Bandwidth(a) > Bandwidth(a0) {
		t.Fatalf("RCM increased bandwidth: %d -> %d", Bandwidth(a0), Bandwidth(a))
	}
	n := a.Rows
	b0 := make([]float64, n)
	for i := range b0 {
		b0[i] = float64(i%13) - 6
	}
	b := make([]float64, n)
	if err := PermuteVector(b, b0, perm); err != nil {
		t.Fatal(err)
	}

	solve := func(format OperatorFormat, threads int) []uint64 {
		h, err := NewAMG(a, AMGOptions{Threads: threads, Format: format})
		if err != nil {
			t.Fatalf("format %v: %v", format, err)
		}
		// The outer CG matvec runs through the format under test too, not
		// just the hierarchy levels.
		op, err := NewOperator(a, format)
		if err != nil {
			t.Fatalf("format %v: %v", format, err)
		}
		x := make([]float64, n)
		if _, err := SolveCG(op, b, x, 1e-10, 400, h, threads); err != nil {
			t.Fatalf("format %v: %v", format, err)
		}
		// Inverse-permute the solution back to the original numbering.
		back := make([]float64, n)
		if err := InversePermuteVector(back, x, perm); err != nil {
			t.Fatalf("format %v: %v", format, err)
		}
		bits := make([]uint64, n)
		for i, v := range back {
			bits[i] = math.Float64bits(v)
		}
		return bits
	}
	ref := solve(FormatCSR, 1)
	for _, format := range []OperatorFormat{FormatCSR, FormatSELL} {
		for _, threads := range detWorkerCounts {
			bits := solve(format, threads)
			for i := range bits {
				if bits[i] != ref[i] {
					t.Fatalf("format %v, %d workers: x[%d] differs bitwise after inverse permutation", format, threads, i)
				}
			}
		}
	}
	// Sanity: the inverse-permuted solution solves the original system.
	x := make([]float64, n)
	for i, bv := range ref {
		x[i] = math.Float64frombits(bv)
	}
	res := make([]float64, n)
	a0.SpMVResidual(par.New(1), b0, x, res)
	rr, bb := 0.0, 0.0
	for i := range res {
		rr += res[i] * res[i]
		bb += b0[i] * b0[i]
	}
	if math.Sqrt(rr/bb) > 1e-9 {
		t.Fatalf("inverse-permuted solution does not solve the original system: relres %g", math.Sqrt(rr/bb))
	}
}

func TestSolveCGDeterministicAcrossWorkers(t *testing.T) {
	g := gen.Laplace3D(24, 24, 24)
	a := GraphLaplacian(g, 1e-4)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	m, err := JacobiPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	var refX []uint64
	var refStats SolveStats
	for k, threads := range detWorkerCounts {
		x := make([]float64, n)
		st, err := SolveCG(a, b, x, 1e-10, 600, m, threads)
		if err != nil {
			t.Fatalf("%d workers: %v", threads, err)
		}
		bits := make([]uint64, n)
		for i, v := range x {
			bits[i] = math.Float64bits(v)
		}
		if k == 0 {
			refX, refStats = bits, st
			continue
		}
		if st.Iterations != refStats.Iterations {
			t.Fatalf("%d workers: %d iterations, want %d", threads, st.Iterations, refStats.Iterations)
		}
		if math.Float64bits(st.RelResidual) != math.Float64bits(refStats.RelResidual) {
			t.Fatalf("%d workers: relres %g, want %g (bitwise)", threads, st.RelResidual, refStats.RelResidual)
		}
		for i := range bits {
			if bits[i] != refX[i] {
				t.Fatalf("%d workers: x[%d] differs bitwise: %x vs %x", threads, i, bits[i], refX[i])
			}
		}
	}
}
