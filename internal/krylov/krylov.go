// Package krylov provides the iterative solvers used by the paper's
// solver experiments: preconditioned conjugate gradient (Table V) and
// preconditioned restarted GMRES (Table VI).
package krylov

import (
	"errors"
	"fmt"
	"math"

	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// Preconditioner applies z = M^{-1} r. Implementations must not modify r.
type Preconditioner interface {
	Precondition(r, z []float64)
}

// identityPrec is the unpreconditioned fallback.
type identityPrec struct{}

func (identityPrec) Precondition(r, z []float64) { copy(z, r) }

// Identity returns the no-op preconditioner.
func Identity() Preconditioner { return identityPrec{} }

// Jacobi returns the diagonal (Jacobi) preconditioner for a, the simplest
// baseline between no preconditioning and the structured methods.
// It returns an error if any diagonal entry is zero.
func Jacobi(a *sparse.Matrix) (Preconditioner, error) {
	d := a.Diagonal()
	dinv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("krylov: zero diagonal at row %d", i)
		}
		dinv[i] = 1 / v
	}
	return jacobiPrecond{dinv: dinv}, nil
}

type jacobiPrecond struct{ dinv []float64 }

func (j jacobiPrecond) Precondition(r, z []float64) {
	for i := range z {
		z[i] = j.dinv[i] * r[i]
	}
}

// Stats reports the outcome of a solve.
type Stats struct {
	// Iterations performed (matrix-vector products for CG; inner
	// iterations for GMRES).
	Iterations int
	// RelResidual is the final relative residual ||b - Ax|| / ||b||.
	RelResidual float64
	// Converged reports whether the tolerance was met.
	Converged bool
}

// ErrNotConverged is wrapped by solvers that hit the iteration limit.
var ErrNotConverged = errors.New("krylov: did not converge")

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// axpy computes y += alpha*x.
func axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// CG solves A x = b for SPD A with the preconditioned conjugate gradient
// method. x holds the initial guess on entry and the solution on exit.
// Iterations stop when the recurrence residual drops below tol*||b|| or
// maxIter is reached; Stats reports the true final residual.
func CG(rt *par.Runtime, a *sparse.Matrix, b, x []float64, tol float64, maxIter int, m Preconditioner) (Stats, error) {
	n := a.Rows
	if len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("krylov: CG size mismatch (n=%d, len(b)=%d, len(x)=%d)", n, len(b), len(x))
	}
	if m == nil {
		m = Identity()
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	a.SpMV(rt, x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	m.Precondition(r, z)
	copy(p, z)
	rz := dot(r, z)

	iters := 0
	met := false
	for ; iters < maxIter; iters++ {
		if norm2(r)/bnorm < tol {
			met = true
			break
		}
		a.SpMV(rt, p, ap)
		pap := dot(p, ap)
		if pap <= 0 {
			return Stats{Iterations: iters, RelResidual: norm2(r) / bnorm},
				fmt.Errorf("krylov: CG breakdown, p^T A p = %g (matrix not SPD?)", pap)
		}
		alpha := rz / pap
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		m.Precondition(r, z)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	rel := finalResidual(rt, a, b, x, bnorm)
	if iters < maxIter {
		met = true // loop exited on the residual test
	}
	st := Stats{Iterations: iters, RelResidual: rel, Converged: met || rel < tol}
	if !st.Converged {
		return st, fmt.Errorf("%w: CG after %d iterations, relres %.3e", ErrNotConverged, iters, rel)
	}
	return st, nil
}

// GMRES solves A x = b with left-preconditioned restarted GMRES(restart).
// x holds the initial guess on entry and the solution on exit.
func GMRES(rt *par.Runtime, a *sparse.Matrix, b, x []float64, tol float64, maxIter, restart int, m Preconditioner) (Stats, error) {
	n := a.Rows
	if len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("krylov: GMRES size mismatch")
	}
	if m == nil {
		m = Identity()
	}
	if restart <= 0 {
		restart = 50
	}
	if restart > maxIter {
		restart = maxIter
	}

	// Preconditioned right-hand side norm for the stopping test.
	zb := make([]float64, n)
	m.Precondition(b, zb)
	zbnorm := norm2(zb)
	if zbnorm == 0 {
		zbnorm = 1
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}

	r := make([]float64, n)
	z := make([]float64, n)
	w := make([]float64, n)
	// Krylov basis.
	v := make([][]float64, restart+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, restart+1) // Hessenberg, h[i][j]
	for i := range h {
		h[i] = make([]float64, restart)
	}
	cs := make([]float64, restart)
	sn := make([]float64, restart)
	s := make([]float64, restart+1)
	y := make([]float64, restart)

	totalIters := 0
	met := false
	for totalIters < maxIter {
		// r = M^{-1}(b - A x)
		a.SpMV(rt, x, r)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		m.Precondition(r, z)
		beta := norm2(z)
		if beta/zbnorm < tol {
			met = true
			break
		}
		inv := 1 / beta
		for i := range z {
			v[0][i] = z[i] * inv
		}
		for i := range s {
			s[i] = 0
		}
		s[0] = beta

		k := 0
		for ; k < restart && totalIters < maxIter; k++ {
			totalIters++
			// w = M^{-1} A v_k
			a.SpMV(rt, v[k], w)
			m.Precondition(w, z)
			copy(w, z)
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = dot(w, v[i])
				axpy(-h[i][k], v[i], w)
			}
			h[k+1][k] = norm2(w)
			if h[k+1][k] > 1e-300 {
				inv := 1 / h[k+1][k]
				for i := range w {
					v[k+1][i] = w[i] * inv
				}
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation to annihilate h[k+1][k].
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k], sn[k] = h[k][k]/denom, h[k+1][k]/denom
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			s[k+1] = -sn[k] * s[k]
			s[k] = cs[k] * s[k]
			if math.Abs(s[k+1])/zbnorm < tol {
				k++
				break
			}
		}
		// Solve the upper triangular system h y = s.
		for i := k - 1; i >= 0; i-- {
			y[i] = s[i]
			for j := i + 1; j < k; j++ {
				y[i] -= h[i][j] * y[j]
			}
			y[i] /= h[i][i]
		}
		for i := 0; i < k; i++ {
			axpy(y[i], v[i], x)
		}
		if k == 0 {
			break // stagnation
		}
	}
	rel := finalResidual(rt, a, b, x, bnorm)
	st := Stats{Iterations: totalIters, RelResidual: rel, Converged: met || rel < tol}
	if !st.Converged {
		return st, fmt.Errorf("%w: GMRES after %d iterations, relres %.3e", ErrNotConverged, totalIters, rel)
	}
	return st, nil
}

func finalResidual(rt *par.Runtime, a *sparse.Matrix, b, x []float64, bnorm float64) float64 {
	r := make([]float64, a.Rows)
	a.SpMV(rt, x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return norm2(r) / bnorm
}
