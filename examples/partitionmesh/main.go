// Multilevel partitioning example: the paper's future-work application
// (§VII) — use the MIS-2 aggregation as the coarsening step of a
// multilevel graph bisection, and compare against classic heavy-edge
// matching coarsening on edge cut and balance. Then scale the same
// machinery to a 512-way partition by recursive bisection and
// fingerprint the result — the key a sharded solver cache shards under.
package main

import (
	"fmt"
	"log"
	"time"

	"mis2go"
)

func main() {
	g := mis2go.Laplace3D(24, 24, 24)
	fmt.Printf("graph: %d vertices, %d edges\n", g.N, g.NumEdges()/2)

	for _, policy := range []struct {
		name string
		p    mis2go.PartitionOptions
	}{
		{name: "MIS-2 coarsening", p: mis2go.PartitionOptions{Policy: mis2go.PartitionMIS2}},
		{name: "HEM coarsening", p: mis2go.PartitionOptions{Policy: mis2go.PartitionHEM}},
	} {
		start := time.Now()
		res, err := mis2go.Bisect(g, policy.p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s edge cut %5d   balance %.3f   %d levels   %v\n",
			policy.name, res.EdgeCut, res.Balance, res.Levels,
			time.Since(start).Round(time.Millisecond))
	}

	// k-way by recursive bisection. Part ids are int32, so k is not
	// limited to 256; 512 parts of a 13824-vertex graph is ~27 vertices
	// each. The fingerprint is a deterministic function of (k, part) —
	// two processes partitioning the same graph get the same key.
	for _, k := range []int{16, 512} {
		start := time.Now()
		res, err := mis2go.PartitionKWay(g, k, mis2go.PartitionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d-way            edge cut %5d   balance %.3f   fingerprint %016x   %v\n",
			k, res.EdgeCut, res.Balance, res.Fingerprint(),
			time.Since(start).Round(time.Millisecond))
	}
}
