// AMG example: the paper's first use case (§VI-F). Build a smoothed-
// aggregation multigrid preconditioner whose aggregates come from the
// parallel MIS-2 aggregation (Algorithm 3), and solve a 3D Poisson
// problem with preconditioned conjugate gradient — then compare against
// unpreconditioned CG to show why multigrid matters.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mis2go"
)

func main() {
	const side = 40
	g := mis2go.Laplace3D(side, side, side)
	a := mis2go.DirichletLaplacian(g, 6)
	n := a.Rows
	fmt.Printf("problem: Laplace3D %d^3 = %d unknowns, %d nonzeros\n", side, n, a.NNZ())

	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(0.002*float64(i)) + 1
	}

	start := time.Now()
	h, err := mis2go.NewAMG(a, mis2go.AMGOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AMG setup: %d levels, operator complexity %.2f, %v\n",
		h.NumLevels(), h.OperatorComplexity(), time.Since(start).Round(time.Millisecond))

	x := make([]float64, n)
	start = time.Now()
	st, err := mis2go.SolveCG(a, b, x, 1e-10, 500, h, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AMG-CG:   %3d iterations, relres %.2e, %v\n",
		st.Iterations, st.RelResidual, time.Since(start).Round(time.Millisecond))

	y := make([]float64, n)
	start = time.Now()
	stPlain, err := mis2go.SolveCG(a, b, y, 1e-10, 5000, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain CG: %3d iterations, relres %.2e, %v\n",
		stPlain.Iterations, stPlain.RelResidual, time.Since(start).Round(time.Millisecond))
	fmt.Printf("iteration reduction: %.1fx\n", float64(stPlain.Iterations)/float64(st.Iterations))
}
