// Fig1 renders the paper's Figure 1: a step-by-step trace of Algorithm 1
// on the worked 6-vertex example, printing the row tuples T, column
// minima M, and the decisions after every phase of every iteration.
package bench

import (
	"fmt"

	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/mis"
)

// Fig1 traces Algorithm 1 on the Figure 1 example graph (a tree
// 1-2-3-4 with leaves 5 and 6 on vertex 4; 0-indexed here).
func Fig1(cfg Config) {
	cfg = cfg.withDefaults()
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 3, V: 5},
	})
	fmt.Fprintln(cfg.Out, "Figure 1: Algorithm 1 trace on the worked example graph")
	fmt.Fprintln(cfg.Out, "edges: 0-1, 1-2, 2-3, 3-4, 3-5")

	const (
		in  uint64 = 0
		out uint64 = ^uint64(0)
	)
	n := g.N
	// Small-range priorities so the trace reads like the paper's figure.
	prio := func(iter, v int) uint64 {
		return hash.XorStar.Priority(uint64(iter), uint64(v)) % 90
	}
	pack := func(p uint64, v int) uint64 { return p*8 + uint64(v) + 1 }
	show := func(t uint64) string {
		switch t {
		case in:
			return "IN"
		case out:
			return "OUT"
		default:
			return fmt.Sprintf("(%d,%d)", t/8, t%8-1)
		}
	}

	t := make([]uint64, n)
	for v := 0; v < n; v++ {
		t[v] = pack(0, v) // undecided placeholder until the first refresh
	}
	m := make([]uint64, n)
	und := func(v int) bool { return t[v] != in && t[v] != out }
	remaining := n
	for iter := 0; remaining > 0; iter++ {
		for v := 0; v < n; v++ {
			if und(v) {
				t[v] = pack(prio(iter, v), v)
			}
		}
		fmt.Fprintf(cfg.Out, "iteration %d\n  Refresh Row:    T =", iter)
		for v := 0; v < n; v++ {
			fmt.Fprintf(cfg.Out, " %s", show(t[v]))
		}
		fmt.Fprintln(cfg.Out)
		for v := 0; v < n; v++ {
			mv := t[v]
			for _, w := range g.Neighbors(int32(v)) {
				if t[w] < mv {
					mv = t[w]
				}
			}
			if mv == in {
				mv = out
			}
			m[v] = mv
		}
		fmt.Fprintf(cfg.Out, "  Refresh Column: M =")
		for v := 0; v < n; v++ {
			fmt.Fprintf(cfg.Out, " %s", show(m[v]))
		}
		fmt.Fprintln(cfg.Out)
		for v := 0; v < n; v++ {
			if !und(v) {
				continue
			}
			anyOut := m[v] == out
			allEq := m[v] == t[v]
			if !anyOut {
				for _, w := range g.Neighbors(int32(v)) {
					if m[w] == out {
						anyOut = true
						break
					}
					if m[w] != t[v] {
						allEq = false
					}
				}
			}
			if anyOut {
				t[v] = out
				remaining--
			} else if allEq {
				t[v] = in
				remaining--
			}
		}
		fmt.Fprintf(cfg.Out, "  Decide Set:     T =")
		for v := 0; v < n; v++ {
			if und(v) {
				fmt.Fprintf(cfg.Out, " undec")
			} else {
				fmt.Fprintf(cfg.Out, " %s", show(t[v]))
			}
		}
		fmt.Fprintln(cfg.Out)
	}
	var set []int32
	for v := 0; v < n; v++ {
		if t[v] == in {
			set = append(set, int32(v))
		}
	}
	fmt.Fprintf(cfg.Out, "MIS-2 = %v (1-indexed: %v)\n", set, oneIndexed(set))
	if err := mis.CheckMIS2(g, set); err != nil {
		fmt.Fprintf(cfg.Out, "INVALID: %v\n", err)
	} else {
		fmt.Fprintln(cfg.Out, "verified: valid distance-2 maximal independent set")
	}
}

func oneIndexed(set []int32) []int32 {
	out := make([]int32, len(set))
	for i, v := range set {
		out[i] = v + 1
	}
	return out
}
