package sparse

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"mis2go/internal/par"
)

// SELL-C-sigma: the sliced-ELLPACK operator format for the memory-bound
// kernel core. Rows are grouped into chunks of C = 8; within a sort
// scope of sigma rows, rows are stably ordered by descending length so
// that, inside every chunk, the rows still holding an entry at column
// position j form a prefix of the chunk's lanes. Entries are stored
// column-position-major per chunk — position j of all active lanes
// contiguously — so the kernel keeps C independent accumulators (one per
// lane) and streams val/col linearly while gathering from x.
//
// Two deviations from textbook SELL-C-sigma, both in service of this
// package's determinism contract:
//
//   - Columns are compressed, not padded: each column position stores
//     only its active lanes (a count per position, descending within a
//     chunk). Padding with zeros would not only waste bandwidth but also
//     perturb results — s + 0*x[j] is not a bitwise no-op when s is -0
//     or x[j] is non-finite.
//   - Position j of a lane is the j-th stored entry of that row in the
//     source CSR matrix, and every lane accumulates strictly left to
//     right with a single accumulator — exactly the canonical per-row
//     order of the CSR kernels (spmvRange). A SELL operator therefore
//     produces bit-identical results to its CSR source, for every
//     kernel and every worker count; the row permutation affects only
//     where writes land, never what is summed in what order.
//
// The packed layout also records, per stored entry, the index of the
// CSR entry it came from. Refreshing values for a same-pattern matrix
// (the AMG numeric/Refresh path) is then a branch-free gather —
// FillValues — with zero allocations.
//
// Concurrency: like *Matrix, all kernels are read-only on the operator
// and safe for concurrent use; FillValues mutates the packed values and
// must be serialized against every reader.
type SELL struct {
	rows, cols int
	sigma      int
	perm       []int32 // lane slot -> original row; length rows
	chunkPtr   []int32 // length nchunks+1: first packed entry of chunk
	width      []int32 // per chunk: length of its longest row
	full       []int32 // per chunk: leading positions with all C lanes active
	cntPtr     []int32 // length nchunks+1: first cnt index of chunk
	cnt        []uint8 // per (chunk, position): active lane count
	col        []int32 // packed column indices
	val        []float64
	entry      []int32 // packed position -> CSR entry index (value replay)
}

// SellC is the SELL chunk size: the number of rows (lanes, independent
// accumulators) each chunk kernel processes at once.
const SellC = 8

// DefaultSellSigma is the default sort scope: windows of this many rows
// are length-sorted. Large enough to make chunks near-uniform on meshes
// with mixed interior/boundary rows, small enough that the row
// permutation stays local and the gathers from x keep their locality.
const DefaultSellSigma = 4096

// CheckSigma validates a requested SELL sort scope: 0 selects the
// default, and any explicit sigma must be a positive multiple of the
// chunk size SellC — a scope below one chunk cannot exist (the
// intra-chunk descending order is what makes active lanes a prefix),
// and a scope that is not chunk-aligned would make a chunk straddle two
// sort windows. Malformed scopes are a descriptive error rather than a
// silent clamp, so a typo in a configuration surfaces instead of
// quietly benchmarking a different layout.
func CheckSigma(sigma int) error {
	if sigma == 0 {
		return nil
	}
	if sigma < 0 || sigma%SellC != 0 {
		return fmt.Errorf("sparse: SELL sigma %d: the sort scope must be a positive multiple of the chunk size C=%d (or 0 for the default %d)",
			sigma, SellC, DefaultSellSigma)
	}
	return nil
}

// NewSELL converts a CSR matrix to SELL-C-sigma. sigma is the sort scope
// (0 selects DefaultSellSigma; any other value must be a positive
// multiple of SellC, see CheckSigma). The conversion is deterministic:
// the length sort is stable, so ties keep row order. Matrices whose
// entry count overflows the 32-bit replay schedule are rejected.
func NewSELL(a *Matrix, sigma int) (*SELL, error) {
	if err := CheckSigma(sigma); err != nil {
		return nil, err
	}
	if len(a.Col) > math.MaxInt32 || a.Rows > math.MaxInt32 {
		return nil, fmt.Errorf("sparse: SELL conversion of %dx%d matrix with %d entries overflows the 32-bit entry schedule",
			a.Rows, a.Cols, len(a.Col))
	}
	if sigma == 0 {
		sigma = DefaultSellSigma
	}
	n := a.Rows
	s := &SELL{rows: n, cols: a.Cols, sigma: sigma}
	s.perm = make([]int32, n)
	for i := range s.perm {
		s.perm[i] = int32(i)
	}
	rowLen := func(r int32) int { return a.RowPtr[r+1] - a.RowPtr[r] }
	for lo := 0; lo < n; lo += sigma {
		hi := min(lo+sigma, n)
		slices.SortStableFunc(s.perm[lo:hi], func(p, q int32) int {
			return cmp.Compare(rowLen(q), rowLen(p)) // descending
		})
	}

	nchunks := (n + SellC - 1) / SellC
	s.chunkPtr = make([]int32, nchunks+1)
	s.width = make([]int32, nchunks)
	s.full = make([]int32, nchunks)
	s.cntPtr = make([]int32, nchunks+1)
	s.col = make([]int32, 0, len(a.Col))
	s.val = make([]float64, 0, len(a.Col))
	s.entry = make([]int32, 0, len(a.Col))
	for c := 0; c < nchunks; c++ {
		lanes := s.perm[c*SellC : min(c*SellC+SellC, n)]
		w := 0
		for _, r := range lanes {
			w = max(w, rowLen(r))
		}
		full := 0
		if len(lanes) == SellC {
			full = rowLen(lanes[SellC-1]) // shortest lane: lanes are sorted
		}
		s.width[c] = int32(w)
		s.full[c] = int32(full)
		s.chunkPtr[c] = int32(len(s.col))
		s.cntPtr[c] = int32(len(s.cnt))
		for j := 0; j < w; j++ {
			m := 0
			for _, r := range lanes {
				if rowLen(r) <= j {
					break // descending lengths: the rest are shorter too
				}
				p := a.RowPtr[r] + j
				s.col = append(s.col, a.Col[p])
				s.val = append(s.val, a.Val[p])
				s.entry = append(s.entry, int32(p))
				m++
			}
			s.cnt = append(s.cnt, uint8(m))
		}
	}
	s.chunkPtr[nchunks] = int32(len(s.col))
	s.cntPtr[nchunks] = int32(len(s.cnt))
	return s, nil
}

// FillValues refreshes the packed values from a same-pattern CSR matrix
// — a branch-free gather through the cached entry schedule, zero
// allocations. Only the shape and entry count are checked here; pattern
// identity is the caller's contract (the AMG hierarchy fingerprints it).
func (s *SELL) FillValues(a *Matrix) error {
	if a.Rows != s.rows || a.Cols != s.cols || len(a.Val) != len(s.val) {
		return fmt.Errorf("sparse: SELL refresh from %dx%d/%d entries, converted from %dx%d/%d",
			a.Rows, a.Cols, len(a.Val), s.rows, s.cols, len(s.val))
	}
	av := a.Val
	for p, e := range s.entry {
		s.val[p] = av[e]
	}
	return nil
}

// Dims returns the operator shape, implementing Operator.
func (s *SELL) Dims() (rows, cols int) { return s.rows, s.cols }

// NNZ returns the number of stored entries.
func (s *SELL) NNZ() int { return len(s.col) }

// Sigma reports the sort scope the operator was converted with.
func (s *SELL) Sigma() int { return s.sigma }

// nchunks returns the chunk count.
func (s *SELL) nchunks() int { return len(s.width) }

// chunkAccum computes the row products of chunk c: accumulator l holds
// the dot product of lane l's row with x, each accumulated strictly left
// to right (the canonical per-row order shared with the CSR kernels).
// The full-lane prefix of positions runs an unrolled two-position step
// with eight independent dependency chains; trailing positions walk the
// per-position lane counts, which descend within the chunk.
//
//amg:hotpath
func (s *SELL) chunkAccum(x []float64, c int) (a0, a1, a2, a3, a4, a5, a6, a7 float64) {
	col, val := s.col, s.val
	p := int(s.chunkPtr[c])
	f := int(s.full[c])
	for j := 0; j+2 <= f; j += 2 {
		cb := col[p : p+16 : p+16]
		vb := val[p : p+16 : p+16]
		a0 += vb[0] * x[cb[0]]
		a0 += vb[8] * x[cb[8]]
		a1 += vb[1] * x[cb[1]]
		a1 += vb[9] * x[cb[9]]
		a2 += vb[2] * x[cb[2]]
		a2 += vb[10] * x[cb[10]]
		a3 += vb[3] * x[cb[3]]
		a3 += vb[11] * x[cb[11]]
		a4 += vb[4] * x[cb[4]]
		a4 += vb[12] * x[cb[12]]
		a5 += vb[5] * x[cb[5]]
		a5 += vb[13] * x[cb[13]]
		a6 += vb[6] * x[cb[6]]
		a6 += vb[14] * x[cb[14]]
		a7 += vb[7] * x[cb[7]]
		a7 += vb[15] * x[cb[15]]
		p += 16
	}
	if f&1 == 1 {
		cb := col[p : p+8 : p+8]
		vb := val[p : p+8 : p+8]
		a0 += vb[0] * x[cb[0]]
		a1 += vb[1] * x[cb[1]]
		a2 += vb[2] * x[cb[2]]
		a3 += vb[3] * x[cb[3]]
		a4 += vb[4] * x[cb[4]]
		a5 += vb[5] * x[cb[5]]
		a6 += vb[6] * x[cb[6]]
		a7 += vb[7] * x[cb[7]]
		p += 8
	}
	if w := int(s.width[c]); f < w {
		cnt := s.cnt
		base := int(s.cntPtr[c])
		for j := f; j < w; j++ {
			// Active lanes are a prefix; past the full positions the count
			// is at most SellC-1 (and at least 1, or the width would end).
			m := cnt[base+j]
			a0 += val[p] * x[col[p]]
			p++
			if m > 1 {
				a1 += val[p] * x[col[p]]
				p++
			}
			if m > 2 {
				a2 += val[p] * x[col[p]]
				p++
			}
			if m > 3 {
				a3 += val[p] * x[col[p]]
				p++
			}
			if m > 4 {
				a4 += val[p] * x[col[p]]
				p++
			}
			if m > 5 {
				a5 += val[p] * x[col[p]]
				p++
			}
			if m > 6 {
				a6 += val[p] * x[col[p]]
				p++
			}
		}
	}
	return
}

// chunkRange maps a row block [lo, hi) from the runtime's blocking to
// the chunks whose first row falls inside it. Consecutive row blocks
// tile the rows, so every chunk lands in exactly one block; blocking
// over rows (not chunks) keeps the parallel split threshold identical
// to the CSR kernels — a level does not need SellC times more rows
// before it splits across workers. Each kernel keeps its own serial
// fast path so single-worker calls build no closure and allocate
// nothing.
//
//amg:hotpath
func chunkRange(lo, hi int) (c0, c1 int) {
	return (lo + SellC - 1) / SellC, (hi + SellC - 1) / SellC
}

// SpMV computes y = A*x, parallel over chunks. Bit-identical to the CSR
// SpMV of the source matrix for every worker count.
//
//amg:hotpath
func (s *SELL) SpMV(rt *par.Runtime, x, y []float64) {
	if rt.Serial(s.rows) {
		s.spmvChunks(x, y, 0, s.nchunks())
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.spmvChunks(x, y, c0, c1)
	})
}

//amg:hotpath
func (s *SELL) spmvChunks(x, y []float64, c0, c1 int) {
	for c := c0; c < c1; c++ {
		a0, a1, a2, a3, a4, a5, a6, a7 := s.chunkAccum(x, c)
		slot := c * SellC
		if slot+SellC <= s.rows {
			pm := s.perm[slot : slot+SellC : slot+SellC]
			y[pm[0]] = a0
			y[pm[1]] = a1
			y[pm[2]] = a2
			y[pm[3]] = a3
			y[pm[4]] = a4
			y[pm[5]] = a5
			y[pm[6]] = a6
			y[pm[7]] = a7
			continue
		}
		acc := [SellC]float64{a0, a1, a2, a3, a4, a5, a6, a7}
		for l, r := range s.perm[slot:s.rows] {
			y[r] = acc[l]
		}
	}
}

// SpMVResidual computes r = b - A*x in one traversal. r must not alias x.
//
//amg:hotpath
func (s *SELL) SpMVResidual(rt *par.Runtime, b, x, r []float64) {
	if rt.Serial(s.rows) {
		c0, c1 := 0, s.nchunks()
		s.spmvResidualChunks(b, x, r, c0, c1)
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.spmvResidualChunks(b, x, r, c0, c1)
	})
}

//amg:hotpath
func (s *SELL) spmvResidualChunks(b, x, r []float64, c0, c1 int) {
	for c := c0; c < c1; c++ {
		a0, a1, a2, a3, a4, a5, a6, a7 := s.chunkAccum(x, c)
		slot := c * SellC
		if slot+SellC <= s.rows {
			pm := s.perm[slot : slot+SellC : slot+SellC]
			r[pm[0]] = b[pm[0]] - a0
			r[pm[1]] = b[pm[1]] - a1
			r[pm[2]] = b[pm[2]] - a2
			r[pm[3]] = b[pm[3]] - a3
			r[pm[4]] = b[pm[4]] - a4
			r[pm[5]] = b[pm[5]] - a5
			r[pm[6]] = b[pm[6]] - a6
			r[pm[7]] = b[pm[7]] - a7
			continue
		}
		acc := [SellC]float64{a0, a1, a2, a3, a4, a5, a6, a7}
		for l, row := range s.perm[slot:s.rows] {
			r[row] = b[row] - acc[l]
		}
	}
}

// SpMVAdd computes y += A*x in one traversal. y must not alias x.
//
//amg:hotpath
func (s *SELL) SpMVAdd(rt *par.Runtime, x, y []float64) {
	if rt.Serial(s.rows) {
		c0, c1 := 0, s.nchunks()
		s.spmvAddChunks(x, y, c0, c1)
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.spmvAddChunks(x, y, c0, c1)
	})
}

//amg:hotpath
func (s *SELL) spmvAddChunks(x, y []float64, c0, c1 int) {
	for c := c0; c < c1; c++ {
		a0, a1, a2, a3, a4, a5, a6, a7 := s.chunkAccum(x, c)
		slot := c * SellC
		if slot+SellC <= s.rows {
			pm := s.perm[slot : slot+SellC : slot+SellC]
			y[pm[0]] += a0
			y[pm[1]] += a1
			y[pm[2]] += a2
			y[pm[3]] += a3
			y[pm[4]] += a4
			y[pm[5]] += a5
			y[pm[6]] += a6
			y[pm[7]] += a7
			continue
		}
		acc := [SellC]float64{a0, a1, a2, a3, a4, a5, a6, a7}
		for l, row := range s.perm[slot:s.rows] {
			y[row] += acc[l]
		}
	}
}

// JacobiSweep computes dst[i] = src[i] + omega*dinv[i]*(b[i] - (A src)[i])
// in one traversal — the fused damped-Jacobi sweep, bit-identical to
// Matrix.JacobiSweep. src and dst must not alias.
//
//amg:hotpath
func (s *SELL) JacobiSweep(rt *par.Runtime, b, dinv []float64, omega float64, src, dst []float64) {
	if rt.Serial(s.rows) {
		c0, c1 := 0, s.nchunks()
		s.jacobiChunks(b, dinv, omega, src, dst, c0, c1)
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.jacobiChunks(b, dinv, omega, src, dst, c0, c1)
	})
}

//amg:hotpath
func (s *SELL) jacobiChunks(b, dinv []float64, omega float64, src, dst []float64, c0, c1 int) {
	for c := c0; c < c1; c++ {
		a0, a1, a2, a3, a4, a5, a6, a7 := s.chunkAccum(src, c)
		slot := c * SellC
		if slot+SellC <= s.rows {
			pm := s.perm[slot : slot+SellC : slot+SellC]
			dst[pm[0]] = src[pm[0]] + omega*dinv[pm[0]]*(b[pm[0]]-a0)
			dst[pm[1]] = src[pm[1]] + omega*dinv[pm[1]]*(b[pm[1]]-a1)
			dst[pm[2]] = src[pm[2]] + omega*dinv[pm[2]]*(b[pm[2]]-a2)
			dst[pm[3]] = src[pm[3]] + omega*dinv[pm[3]]*(b[pm[3]]-a3)
			dst[pm[4]] = src[pm[4]] + omega*dinv[pm[4]]*(b[pm[4]]-a4)
			dst[pm[5]] = src[pm[5]] + omega*dinv[pm[5]]*(b[pm[5]]-a5)
			dst[pm[6]] = src[pm[6]] + omega*dinv[pm[6]]*(b[pm[6]]-a6)
			dst[pm[7]] = src[pm[7]] + omega*dinv[pm[7]]*(b[pm[7]]-a7)
			continue
		}
		acc := [SellC]float64{a0, a1, a2, a3, a4, a5, a6, a7}
		for l, row := range s.perm[slot:s.rows] {
			dst[row] = src[row] + omega*dinv[row]*(b[row]-acc[l])
		}
	}
}

// SpMM computes the multi-RHS product Y = A*X for k interleaved
// right-hand sides (the layout of Matrix.SpMM). Each output row block is
// accumulated in stored-entry order, matching the CSR kernels bitwise.
//
//amg:hotpath
func (s *SELL) SpMM(rt *par.Runtime, k int, x, y []float64) {
	if k == 1 {
		s.SpMV(rt, x, y)
		return
	}
	if rt.Serial(s.rows) {
		s.spmmChunks(k, x, y, 0, s.nchunks())
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.spmmChunks(k, x, y, c0, c1)
	})
}

//amg:hotpath
func (s *SELL) spmmChunks(k int, x, y []float64, c0, c1 int) {
	col, val, cnt := s.col, s.val, s.cnt
	for c := c0; c < c1; c++ {
		slot := c * SellC
		lanes := s.perm[slot:min(slot+SellC, s.rows)]
		for _, row := range lanes {
			clear(y[int(row)*k : int(row)*k+k])
		}
		p := int(s.chunkPtr[c])
		w := int(s.width[c])
		f := int(s.full[c])
		base := int(s.cntPtr[c])
		for j := 0; j < w; j++ {
			m := SellC
			if j >= f {
				m = int(cnt[base+j])
			}
			for _, row := range lanes[:m] {
				v := val[p]
				xb := x[int(col[p])*k : int(col[p])*k+k]
				yb := y[int(row)*k : int(row)*k+k]
				for q, xv := range xb {
					yb[q] += v * xv
				}
				p++
			}
		}
	}
}

// DiagonalInto fills d with the diagonal entries (zero where absent),
// parallel over chunks.
//
//amg:hotpath
func (s *SELL) DiagonalInto(rt *par.Runtime, d []float64) {
	if rt.Serial(s.rows) {
		c0, c1 := 0, s.nchunks()
		s.diagonalChunks(d, c0, c1)
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.diagonalChunks(d, c0, c1)
	})
}

//amg:hotpath
func (s *SELL) diagonalChunks(d []float64, c0, c1 int) {
	col, val, cnt := s.col, s.val, s.cnt
	for c := c0; c < c1; c++ {
		slot := c * SellC
		lanes := s.perm[slot:min(slot+SellC, s.rows)]
		for _, row := range lanes {
			d[row] = 0
		}
		p := int(s.chunkPtr[c])
		w := int(s.width[c])
		f := int(s.full[c])
		base := int(s.cntPtr[c])
		for j := 0; j < w; j++ {
			m := SellC
			if j >= f {
				m = int(cnt[base+j])
			}
			for _, row := range lanes[:m] {
				if col[p] == row {
					d[row] = val[p]
				}
				p++
			}
		}
	}
}
