package gs

import (
	"math"
	"testing"

	"mis2go/internal/coarsen"
	"mis2go/internal/gen"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

func testProblem(nx, ny int) (*sparse.Matrix, []float64, []float64) {
	g := gen.Laplace2D(nx, ny)
	a := gen.Laplacian(g, 0.2)
	n := a.Rows
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Cos(0.05 * float64(i))
	}
	b := make([]float64, n)
	a.SpMV(par.New(1), xTrue, b)
	return a, b, xTrue
}

func residual(a *sparse.Matrix, b, x []float64) float64 {
	r := make([]float64, a.Rows)
	a.SpMV(par.New(1), x, r)
	s := 0.0
	for i := range r {
		d := b[i] - r[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestSequentialGSConverges(t *testing.T) {
	a, b, _ := testProblem(15, 15)
	x := make([]float64, a.Rows)
	r0 := residual(a, b, x)
	if err := Sequential(a, b, x, 50, false); err != nil {
		t.Fatal(err)
	}
	if r := residual(a, b, x); r > r0*0.01 {
		t.Fatalf("sequential GS barely converged: %g -> %g", r0, r)
	}
}

func TestPointMulticolorConverges(t *testing.T) {
	a, b, _ := testProblem(15, 15)
	m, err := NewPoint(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	r0 := residual(a, b, x)
	m.Apply(b, x, 50, false)
	if r := residual(a, b, x); r > r0*0.01 {
		t.Fatalf("point MC-GS barely converged: %g -> %g", r0, r)
	}
}

func TestClusterMulticolorConverges(t *testing.T) {
	a, b, _ := testProblem(15, 15)
	agg := coarsen.MIS2Aggregation(a.Graph(), coarsen.Options{})
	m, err := NewCluster(a, agg, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	r0 := residual(a, b, x)
	m.Apply(b, x, 50, false)
	if r := residual(a, b, x); r > r0*0.01 {
		t.Fatalf("cluster MC-GS barely converged: %g -> %g", r0, r)
	}
}

func TestClusterMatchesSequentialWithOneCluster(t *testing.T) {
	// With every row in a single cluster, cluster GS IS sequential GS.
	a, b, _ := testProblem(8, 8)
	n := a.Rows
	labels := make([]int32, n)
	agg := coarsen.Aggregation{Labels: labels, NumAggregates: 1, Roots: []int32{0}}
	m, err := NewCluster(a, agg, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	m.Apply(b, x1, 3, true)
	if err := Sequential(a, b, x2, 3, true); err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-13 {
			t.Fatalf("single-cluster GS differs from sequential at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}

func TestDeterminismAcrossThreads(t *testing.T) {
	a, b, _ := testProblem(20, 20)
	agg := coarsen.MIS2Aggregation(a.Graph(), coarsen.Options{})
	run := func(threads int, cluster bool) []float64 {
		var m *Multicolor
		var err error
		if cluster {
			m, err = NewCluster(a, agg, threads)
		} else {
			m, err = NewPoint(a, threads)
		}
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows)
		m.Apply(b, x, 5, true)
		return x
	}
	for _, cluster := range []bool{false, true} {
		ref := run(1, cluster)
		got := run(8, cluster)
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("cluster=%v: x[%d] differs across thread counts (%g vs %g)",
					cluster, i, ref[i], got[i])
			}
		}
	}
}

func TestClusterReducesIterationsVsPoint(t *testing.T) {
	// The paper's §III-C claim: cluster MC-GS preconditioning brings
	// GMRES iteration counts closer to sequential GS, i.e. no worse than
	// point MC-GS (Table VI shows ~5% fewer on average).
	g := gen.Laplace2D(30, 30)
	a := gen.WeightedLaplacian(g, 0.05, 17)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	rt := par.New(0)

	point, err := NewPoint(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	agg := coarsen.MIS2Aggregation(a.Graph(), coarsen.Options{})
	cluster, err := NewCluster(a, agg, 0)
	if err != nil {
		t.Fatal(err)
	}

	xp := make([]float64, n)
	stP, err := krylov.GMRES(rt, a, b, xp, 1e-8, 800, 50, point)
	if err != nil {
		t.Fatal(err)
	}
	xc := make([]float64, n)
	stC, err := krylov.GMRES(rt, a, b, xc, 1e-8, 800, 50, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if !stP.Converged || !stC.Converged {
		t.Fatalf("preconditioned GMRES failed: point %+v cluster %+v", stP, stC)
	}
	if float64(stC.Iterations) > 1.25*float64(stP.Iterations) {
		t.Fatalf("cluster iterations %d much worse than point %d", stC.Iterations, stP.Iterations)
	}
}

func TestSymmetricSweepOrder(t *testing.T) {
	// A symmetric sweep from zero initial guess must equal a forward
	// sweep followed by a backward sweep.
	a, b, _ := testProblem(10, 10)
	m, err := NewPoint(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1 := make([]float64, a.Rows)
	m.Apply(b, x1, 1, true)
	x2 := make([]float64, a.Rows)
	m.Sweep(b, x2, true)
	m.Sweep(b, x2, false)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("symmetric apply != forward+backward sweeps")
		}
	}
}

func TestErrorCases(t *testing.T) {
	bad := &sparse.Matrix{Rows: 2, Cols: 3, RowPtr: []int{0, 0, 0}}
	if _, err := NewPoint(bad, 0); err == nil {
		t.Fatal("non-square accepted by NewPoint")
	}
	zd := &sparse.Matrix{Rows: 2, Cols: 2,
		RowPtr: []int{0, 1, 2}, Col: []int32{1, 0}, Val: []float64{1, 1}}
	if _, err := NewPoint(zd, 0); err == nil {
		t.Fatal("zero diagonal accepted by NewPoint")
	}
	if err := Sequential(zd, []float64{1, 1}, []float64{0, 0}, 1, false); err == nil {
		t.Fatal("zero diagonal accepted by Sequential")
	}
	a, _, _ := testProblem(4, 4)
	badAgg := coarsen.Aggregation{Labels: make([]int32, 3), NumAggregates: 1}
	if _, err := NewCluster(a, badAgg, 0); err == nil {
		t.Fatal("bad aggregation accepted by NewCluster")
	}
}

func TestPreconditionInterface(t *testing.T) {
	a, b, _ := testProblem(12, 12)
	m, err := NewPoint(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	var p krylov.Preconditioner = m
	z := make([]float64, a.Rows)
	p.Precondition(b, z)
	nonzero := false
	for _, v := range z {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("preconditioner produced zero output")
	}
}
