package sparse

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mis2go/internal/par"
)

func TestMultiplyByIdentity(t *testing.T) {
	rt := par.New(4)
	a := randomMatrix(15, 15, 0.3, 21)
	id := Identity(15)
	left, err := Multiply(rt, id, a)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Multiply(rt, a, id)
	if err != nil {
		t.Fatal(err)
	}
	da := toDenseSlice(a)
	if !almostEqual(toDenseSlice(left), da, 1e-14) || !almostEqual(toDenseSlice(right), da, 1e-14) {
		t.Fatal("identity multiplication changed the matrix")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rows := 1 + int(uint64(seed)%25)
		cols := 1 + int(uint64(seed)%25)
		a := randomMatrix(rows, cols, 0.3, seed)
		att := a.Transpose().Transpose()
		if att.Rows != a.Rows || att.NNZ() != a.NNZ() {
			return false
		}
		for i := range a.Col {
			if a.Col[i] != att.Col[i] || a.Val[i] != att.Val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyAssociativity(t *testing.T) {
	rt := par.New(4)
	a := randomMatrix(8, 10, 0.4, 1)
	b := randomMatrix(10, 6, 0.4, 2)
	c := randomMatrix(6, 9, 0.4, 3)
	ab, err := Multiply(rt, a, b)
	if err != nil {
		t.Fatal(err)
	}
	abc1, err := Multiply(rt, ab, c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Multiply(rt, b, c)
	if err != nil {
		t.Fatal(err)
	}
	abc2, err := Multiply(rt, a, bc)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(toDenseSlice(abc1), toDenseSlice(abc2), 1e-10) {
		t.Fatal("(AB)C != A(BC)")
	}
}

func TestAddIdentityCancellation(t *testing.T) {
	a := randomMatrix(12, 12, 0.3, 9)
	zero, err := Add(a, a, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range zero.Val {
		if v != 0 {
			t.Fatal("A - A != 0")
		}
	}
}

func TestSpMVEmptyRows(t *testing.T) {
	// Matrix with some empty rows.
	a := &Matrix{Rows: 4, Cols: 4,
		RowPtr: []int{0, 1, 1, 2, 2},
		Col:    []int32{0, 3},
		Val:    []float64{2, 5},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 1, 1, 1}
	y := make([]float64, 4)
	a.SpMV(par.New(1), x, y)
	want := []float64{2, 0, 5, 0}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

// TestSpMVFusedEdgeCases pins the fused kernels' behavior on degenerate
// shapes: an empty matrix (n = 0) and all-empty rows must run cleanly
// (residual = b, add = no-op), at one worker and several.
func TestSpMVFusedEdgeCases(t *testing.T) {
	empty := &Matrix{Rows: 0, Cols: 0, RowPtr: []int{0}}
	allEmpty := &Matrix{Rows: 3, Cols: 3, RowPtr: []int{0, 0, 0, 0}}
	for _, workers := range []int{1, 4} {
		rt := par.New(workers)

		// n = 0: every kernel is a no-op on zero-length vectors.
		empty.SpMVResidual(rt, nil, nil, nil)
		empty.SpMVAdd(rt, nil, nil)
		empty.SpMV(rt, nil, nil)

		// All-empty rows: A = 0, so r = b and y += 0.
		b := []float64{1, -2, 3}
		x := []float64{7, 8, 9}
		r := make([]float64, 3)
		allEmpty.SpMVResidual(rt, b, x, r)
		for i := range b {
			if r[i] != b[i] {
				t.Fatalf("workers %d: residual[%d] = %g, want b[%d] = %g", workers, i, r[i], i, b[i])
			}
		}
		y := []float64{4, 5, 6}
		allEmpty.SpMVAdd(rt, x, y)
		want := []float64{4, 5, 6}
		for i := range want {
			if y[i] != want[i] {
				t.Fatalf("workers %d: add y[%d] = %g, want %g", workers, i, y[i], want[i])
			}
		}
	}
}

// TestSpMVFusedLengthMismatchPanics documents the contract for
// mis-sized vectors: the fused kernels index straight into their
// arguments, so an undersized vector is a bounds panic, not silent
// truncation.
func TestSpMVFusedLengthMismatchPanics(t *testing.T) {
	a := &Matrix{Rows: 3, Cols: 3,
		RowPtr: []int{0, 1, 2, 3},
		Col:    []int32{0, 1, 2},
		Val:    []float64{1, 1, 1},
	}
	rt := par.New(1)
	full := []float64{1, 2, 3}
	short := []float64{1}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected a bounds panic for a mis-sized vector", name)
			}
		}()
		f()
	}
	mustPanic("SpMVResidual short r", func() { a.SpMVResidual(rt, full, full, short) })
	mustPanic("SpMVResidual short b", func() { a.SpMVResidual(rt, short, full, make([]float64, 3)) })
	mustPanic("SpMVResidual short x", func() { a.SpMVResidual(rt, full, short, make([]float64, 3)) })
	mustPanic("SpMVAdd short y", func() { a.SpMVAdd(rt, full, short) })
	mustPanic("SpMVAdd short x", func() { a.SpMVAdd(rt, short, make([]float64, 3)) })
}

func TestDenseSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%20)
		// Diagonally dominant random matrix: always nonsingular.
		a := randomMatrix(n, n, 0.4, seed)
		// Boost diagonal.
		d := &Matrix{Rows: n, Cols: n}
		d.RowPtr = make([]int, n+1)
		for i := 0; i < n; i++ {
			d.Col = append(d.Col, int32(i))
			d.Val = append(d.Val, float64(n)+5)
			d.RowPtr[i+1] = i + 1
		}
		sum, err := Add(a, d, 1)
		if err != nil {
			return false
		}
		dense, err := sum.ToDense()
		if err != nil {
			return false
		}
		if dense.Factorize() != nil {
			return false
		}
		xWant := make([]float64, n)
		for i := range xWant {
			xWant[i] = float64(i%5) - 2
		}
		b := make([]float64, n)
		sum.SpMV(par.New(1), xWant, b)
		x := make([]float64, n)
		dense.Solve(b, x)
		return almostEqual(x, xWant, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphSymmetrizesUnsymmetricPattern(t *testing.T) {
	// Upper-triangular pattern only.
	a := &Matrix{Rows: 3, Cols: 3,
		RowPtr: []int{0, 2, 3, 3},
		Col:    []int32{1, 2, 2},
		Val:    []float64{1, 1, 1},
	}
	g := a.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 0) || !g.HasEdge(2, 1) {
		t.Fatal("reverse edges missing after symmetrization")
	}
}

func TestRAPShrinksDimensions(t *testing.T) {
	rt := par.New(2)
	a := randomMatrix(20, 20, 0.2, 30)
	p := &Matrix{Rows: 20, Cols: 5}
	p.RowPtr = make([]int, 21)
	for i := 0; i < 20; i++ {
		p.Col = append(p.Col, int32(i/4))
		p.Val = append(p.Val, 1)
		p.RowPtr[i+1] = i + 1
	}
	c, err := RAP(rt, p.Transpose(), a, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 5 || c.Cols != 5 {
		t.Fatalf("RAP shape %dx%d", c.Rows, c.Cols)
	}
	// Galerkin sum property for piecewise-constant P: C_total = A_total.
	var sa, sc float64
	for _, v := range a.Val {
		sa += v
	}
	for _, v := range c.Val {
		sc += v
	}
	if math.Abs(sa-sc) > 1e-10*(1+math.Abs(sa)) {
		t.Fatalf("Galerkin sum %g != %g", sc, sa)
	}
}

func TestValidateNonSquareOK(t *testing.T) {
	a := randomMatrix(3, 7, 0.5, 2)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaleZeroAndNegative(t *testing.T) {
	a := randomMatrix(5, 5, 0.5, 11)
	b := a.Clone()
	b.Scale(0)
	for _, v := range b.Val {
		if v != 0 {
			t.Fatal("scale 0 left nonzero")
		}
	}
	c := a.Clone()
	c.Scale(-1)
	for i := range c.Val {
		if c.Val[i] != -a.Val[i] {
			t.Fatal("scale -1 wrong")
		}
	}
}

// TestValidateRejectsNonMonotoneRowPtrWithoutPanic: a RowPtr whose
// intermediate pointer overruns the entry arrays while the final one
// checks out (e.g. [0, 3, 2] over 2 entries) must be a clean error —
// the seed Validate scanned row 0's out-of-bounds range before reaching
// row 1's monotonicity check and panicked on the very input it exists
// to reject.
func TestValidateRejectsNonMonotoneRowPtrWithoutPanic(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 2,
		RowPtr: []int{0, 3, 2}, Col: []int32{0, 1}, Val: []float64{2, 2}}
	if err := a.Validate(); err == nil {
		t.Fatal("non-monotone RowPtr accepted")
	} else if !strings.Contains(err.Error(), "monotone") {
		t.Fatalf("error not descriptive: %v", err)
	}
}
