// Cancellation tests, mirroring internal/krylov/cancel_test.go: a
// mid-apply cancel must return ErrCanceled (wrapping the context
// cause) with the output vector untouched — no partial iterate — and
// an uncanceled ApplyCtx must be bitwise identical to Precondition.
// The pooled fan is also gated on goroutine leaks.
package schwarz

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"mis2go/internal/leakcheck"
)

// countdownCtx flips Err() to context.Canceled after a fixed number of
// Err() calls, canceling deterministically at the Nth in-apply check
// (the krylov cancel-test pattern; Done() is never closed because the
// apply polls Err() directly).
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(int64(n))
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestApplyCtxCanceledNoPartialIterate(t *testing.T) {
	a, b := poisson(24, 24)
	p, err := New(a, Options{Subdomains: 4, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	// ApplyCtx checks at entry, after the subdomain fan, and after the
	// coarse solve; cancel at each stage and require z untouched.
	const sentinel = 12345.0
	for allow := 0; allow <= 2; allow++ {
		ctx := newCountdownCtx(allow)
		z := make([]float64, a.Rows)
		for i := range z {
			z[i] = sentinel
		}
		err := p.ApplyCtx(ctx, b, z)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("allow=%d: want ErrCanceled, got %v", allow, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("allow=%d: cause not wrapped: %v", allow, err)
		}
		for i := range z {
			if z[i] != sentinel {
				t.Fatalf("allow=%d: canceled apply wrote a partial iterate at %d", allow, i)
			}
		}
	}
	// Past the last check the apply must complete, bitwise identical to
	// the context-free entry point.
	z := make([]float64, a.Rows)
	if err := p.ApplyCtx(newCountdownCtx(100), b, z); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.Rows)
	p.Precondition(b, want)
	for i := range z {
		if math.Float64bits(z[i]) != math.Float64bits(want[i]) {
			t.Fatalf("ApplyCtx diverges from Precondition at %d", i)
		}
	}
}

func TestNewCtxAndRefreshCtxCanceled(t *testing.T) {
	a, _ := poisson(24, 24)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewCtx(ctx, a, Options{Subdomains: 4}); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("NewCtx: want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	p, err := New(a, Options{Subdomains: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A cancellation caught before any mutation (the pre-replay check)
	// is a zone-1 rejection: the preconditioner stays valid.
	if err := p.RefreshCtx(ctx, a); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RefreshCtx: want ErrCanceled, got %v", err)
	}
	if !p.Valid() {
		t.Fatal("pre-mutation cancel invalidated the preconditioner")
	}
	// A cancellation after subdomain replays began (allow=1 admits the
	// pre-replay check, then cancels after the first subdomain) is a
	// zone-2 failure: values are mixed across subdomains.
	if err := p.RefreshCtx(newCountdownCtx(1), scaleValues(a, 2)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-replay cancel: want ErrCanceled, got %v", err)
	}
	if p.Valid() {
		t.Fatal("mid-replay cancel left preconditioner valid")
	}
	if err := p.Refresh(a); err != nil || !p.Valid() {
		t.Fatalf("recovery refresh failed: %v", err)
	}
}

func TestApplyLeaksNoGoroutines(t *testing.T) {
	base := leakcheck.Capture()
	a, b := poisson(24, 24)
	p, err := New(a, Options{Subdomains: 8, Threads: 8, LocalAMGThreshold: 32})
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, a.Rows)
	for i := 0; i < 10; i++ {
		p.Precondition(b, z)
	}
	if err := p.ApplyCtx(newCountdownCtx(1), b, z); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	leakcheck.Check(t, base)
}
