package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForBlocksCoversAllBlocks(t *testing.T) {
	for _, w := range workerCounts() {
		rt := New(w)
		for _, nb := range []int{0, 1, 2, 24, 100} {
			hits := make([]int32, nb)
			rt.ForBlocks(nb, func(b int) { atomic.AddInt32(&hits[b], 1) })
			for b, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d nb=%d: block %d hit %d times", w, nb, b, h)
				}
			}
		}
	}
}

func TestForBlocksWithBlocksPartition(t *testing.T) {
	rt := New(8)
	n := 100000
	blocks := rt.Blocks(n)
	nb := len(blocks) - 1
	covered := make([]int32, n)
	rt.ForBlocks(nb, func(b int) {
		for i := blocks[b]; i < blocks[b+1]; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestScanUnsigned(t *testing.T) {
	rt := New(8)
	n := 10000
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(i % 5)
	}
	out := make([]uint32, n+1)
	total := ScanExclusive(rt, in, out)
	var want uint32
	for i := range in {
		if out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
		want += in[i]
	}
	if total != want || out[n] != want {
		t.Fatalf("total %d, want %d", total, want)
	}
}

func TestFilterStructElements(t *testing.T) {
	type pair struct{ a, b int }
	src := make([]pair, 1000)
	for i := range src {
		src[i] = pair{a: i, b: -i}
	}
	rt := New(8)
	dst := make([]pair, len(src))
	got := Filter(rt, src, dst, func(p pair) bool { return p.a%7 == 0 })
	for i, p := range got {
		if p.a != 7*i || p.b != -7*i {
			t.Fatalf("element %d = %+v", i, p)
		}
	}
}

func TestReduceSumNegativeAndOverflowSafe(t *testing.T) {
	rt := New(4)
	n := 100000
	got := ReduceSum[int64](rt, n, func(i int) int64 { return int64(i) - int64(n)/2 })
	var want int64
	for i := 0; i < n; i++ {
		want += int64(i) - int64(n)/2
	}
	if got != want {
		t.Fatalf("sum %d, want %d", got, want)
	}
}

func TestDeterminismOfFilterAcrossWorkerCountsProperty(t *testing.T) {
	f := func(data []uint32) bool {
		keep := func(v uint32) bool { return v&1 == 0 }
		ref := Filter(New(1), data, make([]uint32, len(data)), keep)
		for _, w := range []int{2, 5, 13} {
			got := Filter(New(w), data, make([]uint32, len(data)), keep)
			if len(got) != len(ref) {
				return false
			}
			for i := range ref {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksRespectMinGrain(t *testing.T) {
	rt := New(16)
	// With n barely above minGrain, blocks must not be tiny.
	b := rt.Blocks(600)
	if len(b)-1 > 2 {
		t.Fatalf("600 items split into %d blocks; grain too small", len(b)-1)
	}
}

func TestForSerialFallbackSmallN(t *testing.T) {
	rt := New(16)
	order := make([]int, 0, 100)
	// n <= minGrain runs in-place serially: body sees one contiguous range.
	rt.For(100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			order = append(order, i) // safe only if serial
		}
	})
	if len(order) != 100 {
		t.Fatalf("got %d entries", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatal("serial fallback not in order")
		}
	}
}
