package main

import (
	"strings"
	"testing"
)

func TestParseRatio(t *testing.T) {
	cur := map[string]Metrics{
		"SpMVHot":  {NsPerOp: 300},
		"SpMVSELL": {NsPerOp: 200},
	}
	name, num, den, err := parseRatio("SELL_vs_CSR=SpMVHot/SpMVSELL", cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if name != "SELL_vs_CSR" || num != 300 || den != 200 {
		t.Fatalf("got %q %g/%g", name, num, den)
	}
}

// TestParseRatioMissingBenchmark: a ratio referencing a benchmark absent
// from the run must fail with an error naming the missing benchmark and
// the available ones — never emit a zero or stale ratio.
func TestParseRatioMissingBenchmark(t *testing.T) {
	cur := map[string]Metrics{"SpMVHot": {NsPerOp: 300}}
	_, _, _, err := parseRatio("SELL_vs_CSR=SpMVHot/SpMVSELL", cur, nil)
	if err == nil {
		t.Fatal("expected an error for a missing benchmark")
	}
	msg := err.Error()
	for _, want := range []string{"SpMVSELL", "missing", "SpMVHot"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
	// Both sides missing: both named.
	_, _, _, err = parseRatio("R=A/B", cur, nil)
	if err == nil || !strings.Contains(err.Error(), "A, B") {
		t.Fatalf("expected both missing benchmarks named, got %v", err)
	}
}

// TestParseRatioMissingIncludesBaselineValue: when the baseline recorded
// the ratio about to go missing, the error says what value the
// trajectory would lose — the difference between "typo in the -bench
// pattern" and "benchmark genuinely retired" is visible at a glance.
func TestParseRatioMissingIncludesBaselineValue(t *testing.T) {
	cur := map[string]Metrics{"SpMVHot": {NsPerOp: 300}}
	baseRatios := map[string]float64{"SELL_vs_CSR": 1.512}
	_, _, _, err := parseRatio("SELL_vs_CSR=SpMVHot/SpMVSELL", cur, baseRatios)
	if err == nil {
		t.Fatal("expected an error for a missing benchmark")
	}
	if !strings.Contains(err.Error(), "1.512x") {
		t.Fatalf("error %q does not include the baseline's recorded 1.512x", err)
	}
	// No baseline record for the ratio: no phantom value in the message.
	_, _, _, err = parseRatio("SELL_vs_CSR=SpMVHot/SpMVSELL", cur, map[string]float64{"Other": 2})
	if err == nil || strings.Contains(err.Error(), "recorded") {
		t.Fatalf("unexpected baseline mention without a record: %v", err)
	}
}

// TestParseBenchKeepsFastestRepeat: with `go test -count=N` each
// benchmark appears N times; the minimum ns/op wins (noise only adds
// time), so the -maxdrop gate compares repeatable numbers.
func TestParseBenchKeepsFastestRepeat(t *testing.T) {
	out := strings.NewReader(`
BenchmarkServeThroughput-8      8   158000000 ns/op   2200000 B/op   440 allocs/op
BenchmarkServeThroughput-8      8   131000000 ns/op   2100000 B/op   430 allocs/op
BenchmarkServeThroughput-8      8   140000000 ns/op   2300000 B/op   450 allocs/op
BenchmarkSpMVHot-8           5000      300000 ns/op
`)
	cur, procs, err := parseBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if procs != 8 {
		t.Fatalf("procs %d, want 8", procs)
	}
	m := cur["ServeThroughput"]
	if m.NsPerOp != 131000000 || m.BytesPerOp != 2100000 || m.AllocsPerOp != 430 {
		t.Fatalf("kept %+v, want the fastest repeat (131ms run)", m)
	}
	if cur["SpMVHot"].NsPerOp != 300000 {
		t.Fatalf("single-run benchmark mangled: %+v", cur["SpMVHot"])
	}
}

// TestRatioDrops: the -maxdrop gate flags ratios that regressed past
// the threshold, tolerates ones within it, and skips ratios without a
// baseline counterpart (new or retired definitions are not slowdowns).
func TestRatioDrops(t *testing.T) {
	base := map[string]float64{
		"Serve_vs_Sequential": 4.0,
		"SELL_vs_CSR":         1.5,
		"Retired":             2.0,
	}
	cur := map[string]float64{
		"Serve_vs_Sequential": 3.0, // -25%: over a 10% gate
		"SELL_vs_CSR":         1.4, // -6.7%: within it
		"Brand_New":           9.9, // no history
	}
	drops := ratioDrops(cur, base, 10)
	if len(drops) != 1 {
		t.Fatalf("got %d drops, want 1: %v", len(drops), drops)
	}
	for _, want := range []string{"Serve_vs_Sequential", "25.0%", "4.000x", "3.000x"} {
		if !strings.Contains(drops[0], want) {
			t.Fatalf("drop report %q missing %q", drops[0], want)
		}
	}
	// Gate disabled: nothing fails no matter how far ratios fell.
	if drops := ratioDrops(cur, base, 0); drops != nil {
		t.Fatalf("disabled gate still reported %v", drops)
	}
	// Improvement never trips the gate.
	if drops := ratioDrops(map[string]float64{"SELL_vs_CSR": 2.0}, base, 10); drops != nil {
		t.Fatalf("improved ratio reported as a drop: %v", drops)
	}
}

// TestRatioDropsExactGateBoundary pins the gate comparison as strictly
// greater-than: a ratio that fell by exactly -maxdrop percent passes,
// and one epsilon past it fails. 4.0 -> 3.6 is exactly -10%.
func TestRatioDropsExactGateBoundary(t *testing.T) {
	base := map[string]float64{"R": 4.0}
	if drops := ratioDrops(map[string]float64{"R": 3.6}, base, 10); drops != nil {
		t.Fatalf("exact -10%% drop tripped a 10%% gate: %v", drops)
	}
	if drops := ratioDrops(map[string]float64{"R": 3.5999}, base, 10); len(drops) != 1 {
		t.Fatalf("drop just past the gate not reported: %v", drops)
	}
}

// TestCheckProcsMatch: a baseline recorded at a different GOMAXPROCS is
// refused with an error naming both values, -force downgrades the
// refusal to a warning, and files without a recorded GOMAXPROCS (or
// with a matching one) pass.
func TestCheckProcsMatch(t *testing.T) {
	err := checkProcsMatch(8, 1, "BENCH_PR7.json", false)
	if err == nil {
		t.Fatal("mismatched GOMAXPROCS accepted without -force")
	}
	for _, want := range []string{"GOMAXPROCS=8", "GOMAXPROCS=1", "BENCH_PR7.json", "-force"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	if err := checkProcsMatch(8, 1, "BENCH_PR7.json", true); err != nil {
		t.Fatalf("-force still refused: %v", err)
	}
	if err := checkProcsMatch(8, 8, "b.json", false); err != nil {
		t.Fatalf("matching GOMAXPROCS refused: %v", err)
	}
	if err := checkProcsMatch(8, 0, "b.json", false); err != nil {
		t.Fatalf("baseline without recorded GOMAXPROCS refused: %v", err)
	}
}

func TestParseRatioMalformed(t *testing.T) {
	cur := map[string]Metrics{"X": {NsPerOp: 1}}
	for _, def := range []string{"noequals", "name=noslash"} {
		if _, _, _, err := parseRatio(def, cur, nil); err == nil {
			t.Fatalf("accepted malformed ratio %q", def)
		}
	}
}
