// Runners for the comparison and solver experiments: Figures 6/7 and
// Tables IV, V, VI.
package bench

import (
	"fmt"
	"math"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/coarsen"
	"mis2go/internal/gen"
	"mis2go/internal/graph"
	"mis2go/internal/gs"
	"mis2go/internal/hash"
	"mis2go/internal/krylov"
	"mis2go/internal/matrices"
	"mis2go/internal/mis"
	"mis2go/internal/par"
)

func genLaplace(x, y, z int) *graph.CSR    { return gen.Laplace3D(x, y, z) }
func genElasticity(x, y, z int) *graph.CSR { return gen.Elasticity3D(x, y, z, 3) }

// cuspMIS2 runs the comparator standing in for the CUSP library: Bell's
// algorithm with fixed priorities, exactly as published.
func cuspMIS2(g *graph.CSR, threads int) mis.Result {
	return mis.BellMISK(g, mis.BellOptions{K: 2, Hash: hash.Fixed, Threads: threads})
}

// viennaMIS2 is the ViennaCL comparator: the same Bell algorithm with an
// independent random stream (different library, different RNG).
func viennaMIS2(g *graph.CSR, threads int) mis.Result {
	return mis.BellMISK(g, mis.BellOptions{K: 2, Hash: hash.Fixed, Salt: 0x51EC7A11, Threads: threads})
}

// Fig6 reproduces Figure 6: Kokkos-Kernels-style MIS-2 (Algorithm 1)
// vs. the CUSP implementation of Bell's algorithm.
func Fig6(cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "Figure 6: MIS-2 speedup vs CUSP (Bell, fixed priorities) (scale=%.3g)\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s %10s %10s %9s\n", "matrix", "CUSP ms", "KK ms", "speedup")
	var sp []float64
	for _, m := range suiteGraphs(cfg.Scale) {
		dC := timeMean(cfg.Trials, func() { cuspMIS2(m.G, cfg.Threads) })
		dK := timeMean(cfg.Trials, func() { mis.MIS2(m.G, mis.Options{Threads: cfg.Threads}) })
		s := float64(dC) / float64(dK)
		sp = append(sp, s)
		fmt.Fprintf(cfg.Out, "%-18s %10.3f %10.3f %8.2fx\n", m.Spec.Name, ms(dC), ms(dK), s)
	}
	fmt.Fprintf(cfg.Out, "%-18s %10s %10s %8.2fx\n", "geomean", "", "", geomean(sp))
}

// Fig7 reproduces Figure 7: MIS-2 + basic coarsening (Algorithm 2)
// vs. the ViennaCL pipeline (Bell MIS-2 + the same coarsening).
func Fig7(cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "Figure 7: MIS-2 coarsening speedup vs ViennaCL pipeline (scale=%.3g)\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s %10s %10s %9s\n", "matrix", "VCL ms", "KK ms", "speedup")
	var sp []float64
	for _, m := range suiteGraphs(cfg.Scale) {
		dV := timeMean(cfg.Trials, func() {
			roots := viennaMIS2(m.G, cfg.Threads).InSet
			coarsen.BasicFromRoots(m.G, roots, cfg.Threads)
		})
		dK := timeMean(cfg.Trials, func() {
			coarsen.Basic(m.G, coarsen.Options{Threads: cfg.Threads})
		})
		s := float64(dV) / float64(dK)
		sp = append(sp, s)
		fmt.Fprintf(cfg.Out, "%-18s %10.3f %10.3f %8.2fx\n", m.Spec.Name, ms(dV), ms(dK), s)
	}
	fmt.Fprintf(cfg.Out, "%-18s %10s %10s %8.2fx\n", "geomean", "", "", geomean(sp))
}

// Table4 reproduces Table IV: MIS-2 sizes from the three implementations
// (higher is better, all should be close).
func Table4(cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "Table IV: MIS-2 sizes, KK vs CUSP vs ViennaCL (scale=%.3g)\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s %10s %10s %10s\n", "matrix", "KK", "CUSP", "ViennaCL")
	for _, m := range suiteGraphs(cfg.Scale) {
		kk := len(mis.MIS2(m.G, mis.Options{Threads: cfg.Threads}).InSet)
		cu := len(cuspMIS2(m.G, cfg.Threads).InSet)
		vi := len(viennaMIS2(m.G, cfg.Threads).InSet)
		fmt.Fprintf(cfg.Out, "%-18s %10d %10d %10d\n", m.Spec.Name, kk, cu, vi)
	}
}

// aggScheme is one Table V row.
type aggScheme struct {
	Name string
	// Deterministic reports the determinism of the original MueLu/ML
	// implementation the row models (the paper's "Det." column). All
	// reimplementations in this repository are deterministic by
	// construction; see EXPERIMENTS.md.
	Deterministic bool
	Run           func(g *graph.CSR, threads int) coarsen.Aggregation
}

func aggSchemes() []aggScheme {
	return []aggScheme{
		{Name: "Serial Agg", Deterministic: true,
			Run: func(g *graph.CSR, _ int) coarsen.Aggregation { return coarsen.SerialGreedy(g) }},
		{Name: "Serial D2C", Deterministic: false,
			Run: func(g *graph.CSR, th int) coarsen.Aggregation { return coarsen.D2C(g, th, false) }},
		{Name: "NB D2C", Deterministic: false,
			Run: func(g *graph.CSR, th int) coarsen.Aggregation { return coarsen.D2C(g, th, true) }},
		{Name: "MIS2 Basic", Deterministic: true,
			Run: func(g *graph.CSR, th int) coarsen.Aggregation {
				return coarsen.Basic(g, coarsen.Options{Threads: th})
			}},
		{Name: "MIS2 Agg", Deterministic: true,
			Run: func(g *graph.CSR, th int) coarsen.Aggregation {
				return coarsen.MIS2Aggregation(g, coarsen.Options{Threads: th})
			}},
	}
}

// Table5 reproduces Table V: SA-AMG preconditioned CG on a Laplace3D
// problem, one row per aggregation scheme: CG iterations, aggregation
// time, total setup time, solve time, determinism.
//
// The paper uses a 100^3 grid and tolerance 1e-12; the grid side here is
// 100 * cbrt(scale), so Scale=1 reproduces the paper's problem.
func Table5(cfg Config) {
	cfg = cfg.withDefaults()
	side := int(100 * math.Cbrt(cfg.Scale))
	if side < 8 {
		side = 8
	}
	g := gen.Laplace3D(side, side, side)
	a := gen.DirichletLaplacian(g, 6)
	rt := par.New(cfg.Threads)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(0.001*float64(i)) + 1
	}
	const tol = 1e-12
	fmt.Fprintf(cfg.Out, "Table V: SA-AMG+CG on Laplace3D %d^3, tol %.0e (scale=%.3g)\n", side, tol, cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-12s %7s %10s %10s %10s %6s\n", "scheme", "iters", "agg s", "setup s", "solve s", "det.")
	for _, s := range aggSchemes() {
		s := s
		gTop := a.Graph()
		dAgg := timeMean(cfg.Trials, func() { s.Run(gTop, cfg.Threads) })
		var h *amg.Hierarchy
		dSetup := timeMean(cfg.Trials, func() {
			var err error
			h, err = amg.Build(a, amg.Options{
				Threads: cfg.Threads,
				Aggregate: func(g *graph.CSR) coarsen.Aggregation {
					return s.Run(g, cfg.Threads)
				},
			})
			if err != nil {
				panic(err)
			}
		})
		x := make([]float64, n)
		var st krylov.Stats
		dSolve := timeMean(1, func() {
			for i := range x {
				x[i] = 0
			}
			var err error
			st, err = krylov.CG(rt, a, b, x, tol, 1000, h)
			if err != nil {
				fmt.Fprintf(cfg.Out, "  (%s: %v)\n", s.Name, err)
			}
		})
		det := " "
		if s.Deterministic {
			det = "Y"
		}
		fmt.Fprintf(cfg.Out, "%-12s %7d %10.4f %10.4f %10.4f %6s\n",
			s.Name, st.Iterations, dAgg.Seconds(), dSetup.Seconds(), dSolve.Seconds(), det)
	}
}

// Table6 reproduces Table VI: point vs. cluster multicolor symmetric
// Gauss-Seidel as GMRES preconditioners on five systems: setup time,
// apply (solve) time, and GMRES iteration counts. Tolerance 1e-8, at most
// 800 iterations, as in the paper.
func Table6(cfg Config) {
	cfg = cfg.withDefaults()
	rt := par.New(cfg.Threads)
	const tol = 1e-8
	const maxIter = 800
	fmt.Fprintf(cfg.Out, "Table VI: point vs cluster multicolor SGS preconditioning GMRES, tol %.0e (scale=%.3g)\n", tol, cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s %10s %10s %14s %14s\n", "matrix", "P.Setup s", "C.Setup s", "P.Apply(it)", "C.Apply(it)")
	for _, name := range matrices.Table6Names() {
		spec, err := matrices.Get(name)
		if err != nil {
			panic(err)
		}
		a := spec.Matrix(cfg.Scale)
		n := a.Rows
		b := make([]float64, n)
		for i := range b {
			b[i] = math.Sin(0.01*float64(i)) + 0.5
		}

		var point *gs.Multicolor
		dPS := timeMean(cfg.Trials, func() {
			var err error
			point, err = gs.NewPoint(a, cfg.Threads)
			if err != nil {
				panic(err)
			}
		})
		var cluster *gs.Multicolor
		dCS := timeMean(cfg.Trials, func() {
			agg := coarsen.MIS2Aggregation(a.Graph(), coarsen.Options{Threads: cfg.Threads})
			var err error
			cluster, err = gs.NewCluster(a, agg, cfg.Threads)
			if err != nil {
				panic(err)
			}
		})

		solve := func(m krylov.Preconditioner) (krylov.Stats, time.Duration) {
			x := make([]float64, n)
			var st krylov.Stats
			d := timeMean(1, func() {
				for i := range x {
					x[i] = 0
				}
				st, _ = krylov.GMRES(rt, a, b, x, tol, maxIter, 50, m)
			})
			return st, d
		}
		stP, dPA := solve(point)
		stC, dCA := solve(cluster)
		fmt.Fprintf(cfg.Out, "%-18s %10.4f %10.4f %9.4f(%3d) %9.4f(%3d)\n",
			name, dPS.Seconds(), dCS.Seconds(),
			dPA.Seconds(), stP.Iterations, dCA.Seconds(), stC.Iterations)
	}
}

// QualitySummary prints aggregate-quality statistics for each coarsening
// scheme on a mesh problem — an extension beyond the paper's tables used
// by the ablation study in EXPERIMENTS.md.
func QualitySummary(cfg Config) {
	cfg = cfg.withDefaults()
	side := int(60 * math.Cbrt(cfg.Scale*8))
	if side < 8 {
		side = 8
	}
	g := gen.Laplace3D(side, side, side)
	fmt.Fprintf(cfg.Out, "Aggregate quality on Laplace3D %d^3\n", side)
	fmt.Fprintf(cfg.Out, "%-12s %8s %10s %8s %8s\n", "scheme", "aggs", "mean size", "min", "max")
	for _, s := range aggSchemes() {
		agg := s.Run(g, cfg.Threads)
		sizes := coarsen.Sizes(agg)
		mn, mx := sizes[0], sizes[0]
		for _, v := range sizes {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		fmt.Fprintf(cfg.Out, "%-12s %8d %10.2f %8d %8d\n",
			s.Name, agg.NumAggregates, float64(g.N)/float64(agg.NumAggregates), mn, mx)
	}
}
