// Smoothers compares the V-cycle relaxation options (Jacobi as in the
// paper's Table V, Chebyshev, point multicolor SGS, cluster multicolor
// SGS) in an SA-AMG preconditioned CG solve — the smoother ablation
// DESIGN.md lists beyond the paper's fixed Jacobi setup.
package bench

import (
	"fmt"
	"math"

	"mis2go/internal/amg"
	"mis2go/internal/gen"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
)

// Smoothers runs the smoother ablation on a Laplace3D problem.
func Smoothers(cfg Config) {
	cfg = cfg.withDefaults()
	side := int(100 * math.Cbrt(cfg.Scale))
	if side < 8 {
		side = 8
	}
	g := gen.Laplace3D(side, side, side)
	a := gen.DirichletLaplacian(g, 6)
	rt := par.New(cfg.Threads)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = math.Sin(0.003*float64(i)) + 1
	}
	fmt.Fprintf(cfg.Out, "Smoother ablation: SA-AMG+CG on Laplace3D %d^3, tol 1e-10 (scale=%.3g)\n", side, cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-14s %7s %10s %10s\n", "smoother", "iters", "setup s", "solve s")
	for _, s := range []struct {
		name string
		sm   amg.Smoother
	}{
		{name: "Jacobi(2+2)", sm: amg.SmootherJacobi},
		{name: "Chebyshev", sm: amg.SmootherChebyshev},
		{name: "Point SGS", sm: amg.SmootherPointSGS},
		{name: "Cluster SGS", sm: amg.SmootherClusterSGS},
	} {
		var h *amg.Hierarchy
		dSetup := timeMean(cfg.Trials, func() {
			var err error
			h, err = amg.Build(a, amg.Options{
				Threads: cfg.Threads, Smoother: s.sm, PreSweeps: 1, PostSweeps: 1,
			})
			if err != nil {
				panic(err)
			}
		})
		x := make([]float64, a.Rows)
		var st krylov.Stats
		dSolve := timeMean(1, func() {
			for i := range x {
				x[i] = 0
			}
			st, _ = krylov.CG(rt, a, b, x, 1e-10, 500, h)
		})
		fmt.Fprintf(cfg.Out, "%-14s %7d %10.4f %10.4f\n",
			s.name, st.Iterations, dSetup.Seconds(), dSolve.Seconds())
	}
}
