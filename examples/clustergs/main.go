// Cluster Gauss-Seidel example: the paper's second use case (§VI-G,
// Table VI). Precondition GMRES with point multicolor symmetric
// Gauss-Seidel and with cluster multicolor SGS (Algorithm 4, clusters
// from MIS-2 aggregation), and compare setup time, solve time, and
// iteration counts.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mis2go"
)

func main() {
	g := mis2go.Laplace3D(30, 30, 30)
	a := mis2go.WeightedGraphLaplacian(g, 0.05, 42)
	n := a.Rows
	fmt.Printf("problem: weighted Laplace3D 30^3 = %d unknowns\n", n)

	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(0.01*float64(i)) + 0.5
	}

	run := func(name string, build func() (*mis2go.GaussSeidel, error)) {
		start := time.Now()
		m, err := build()
		if err != nil {
			log.Fatal(err)
		}
		setup := time.Since(start)
		x := make([]float64, n)
		start = time.Now()
		st, err := mis2go.SolveGMRES(a, b, x, 1e-8, 800, 50, m, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s setup %8v   solve %8v   %3d GMRES iterations (%d colors)\n",
			name, setup.Round(time.Microsecond), time.Since(start).Round(time.Microsecond),
			st.Iterations, m.NumColors)
	}

	run("point SGS", func() (*mis2go.GaussSeidel, error) { return mis2go.NewPointSGS(a, 0) })
	run("cluster SGS", func() (*mis2go.GaussSeidel, error) { return mis2go.NewClusterSGS(a, 0) })
}
