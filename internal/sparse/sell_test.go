package sparse

import (
	"math"
	"testing"

	"mis2go/internal/par"
)

// sellTestMatrix builds an irregular but valid CSR matrix: row i has
// (i*7+3)%13 entries at deterministic pseudo-random columns. Exercises
// mixed row lengths (including empty rows), edge chunks, and sigma
// windows that actually reorder rows.
func sellTestMatrix(rows, cols int) *Matrix {
	a := &Matrix{Rows: rows, Cols: cols}
	a.RowPtr = make([]int, rows+1)
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < rows; i++ {
		nz := (i*7 + 3) % 13
		if nz > cols {
			nz = cols
		}
		seen := map[int32]bool{}
		var rowCols []int32
		for len(rowCols) < nz {
			c := int32(next() % uint64(cols))
			if !seen[c] {
				seen[c] = true
				rowCols = append(rowCols, c)
			}
		}
		// sort ascending (Validate invariant)
		for x := 1; x < len(rowCols); x++ {
			v := rowCols[x]
			y := x - 1
			for ; y >= 0 && rowCols[y] > v; y-- {
				rowCols[y+1] = rowCols[y]
			}
			rowCols[y+1] = v
		}
		for _, c := range rowCols {
			a.Col = append(a.Col, c)
			a.Val = append(a.Val, float64(int(next()%2000))/100-10)
		}
		a.RowPtr[i+1] = len(a.Col)
	}
	return a
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: [%d] = %x, want %x (not bitwise equal)", name, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestSELLKernelsBitwiseMatchCSR pins the format-equivalence contract:
// every SELL kernel reproduces the CSR kernel bit for bit, across
// shapes (uniform, irregular, empty rows, non-multiple-of-C rows),
// sigma scopes, and worker counts.
func TestSELLKernelsBitwiseMatchCSR(t *testing.T) {
	mats := map[string]*Matrix{
		"irregular":  sellTestMatrix(1003, 800),
		"small":      sellTestMatrix(13, 9),
		"singlerow":  sellTestMatrix(1, 5),
		"widechunks": sellTestMatrix(64, 4000),
	}
	if err := mats["irregular"].Validate(); err != nil {
		t.Fatal(err)
	}
	for name, a := range mats {
		for _, sigma := range []int{0, SellC, 64, 1 << 20} {
			s, err := NewSELL(a, sigma)
			if err != nil {
				t.Fatalf("%s sigma=%d: %v", name, sigma, err)
			}
			if s.NNZ() != a.NNZ() {
				t.Fatalf("%s: SELL has %d entries, CSR %d", name, s.NNZ(), a.NNZ())
			}
			x := make([]float64, a.Cols)
			b := make([]float64, a.Rows)
			for i := range x {
				x[i] = float64(i%17) - 8.25
			}
			for i := range b {
				b[i] = float64(i%11) - 5.5
			}
			for _, workers := range []int{1, 2, 8} {
				rt := par.New(workers)

				yCSR := make([]float64, a.Rows)
				ySELL := make([]float64, a.Rows)
				a.SpMV(rt, x, yCSR)
				s.SpMV(rt, x, ySELL)
				bitsEqual(t, name+"/SpMV", ySELL, yCSR)

				a.SpMVResidual(rt, b, x, yCSR)
				s.SpMVResidual(rt, b, x, ySELL)
				bitsEqual(t, name+"/SpMVResidual", ySELL, yCSR)

				copy(yCSR, b)
				copy(ySELL, b)
				a.SpMVAdd(rt, x, yCSR)
				s.SpMVAdd(rt, x, ySELL)
				bitsEqual(t, name+"/SpMVAdd", ySELL, yCSR)

				dinv := make([]float64, a.Rows)
				src := make([]float64, a.Rows)
				for i := range dinv {
					dinv[i] = 1 / (2 + float64(i%5))
					src[i] = float64(i%7) - 3
				}
				// JacobiSweep reads src both per row and per column, so it
				// only makes sense when the column range fits the row range.
				if a.Cols <= a.Rows {
					a.JacobiSweep(rt, b, dinv, 0.7, src, yCSR)
					s.JacobiSweep(rt, b, dinv, 0.7, src, ySELL)
					bitsEqual(t, name+"/JacobiSweep", ySELL, yCSR)
				}

				for _, k := range []int{2, 4, 8, 5} {
					xk := make([]float64, a.Cols*k)
					for i := range xk {
						xk[i] = float64(i%19) - 9
					}
					ykCSR := make([]float64, a.Rows*k)
					ykSELL := make([]float64, a.Rows*k)
					a.SpMM(rt, k, xk, ykCSR)
					s.SpMM(rt, k, xk, ykSELL)
					bitsEqual(t, name+"/SpMM", ykSELL, ykCSR)
				}

				dCSR := make([]float64, a.Rows)
				dSELL := make([]float64, a.Rows)
				a.DiagonalInto(rt, dCSR)
				s.DiagonalInto(rt, dSELL)
				bitsEqual(t, name+"/Diagonal", dSELL, dCSR)
			}
		}
	}
}

// TestSELLFillValues pins the values-only refresh path: new same-pattern
// values gathered through the cached entry schedule, with zero
// allocations, producing the same kernels as a fresh conversion.
func TestSELLFillValues(t *testing.T) {
	a := sellTestMatrix(500, 400)
	s, err := NewSELL(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	a2 := a.Clone()
	for p := range a2.Val {
		a2.Val[p] = a2.Val[p]*1.5 + 0.25
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := s.FillValues(a2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FillValues: %v allocs/op, want 0", allocs)
	}
	fresh, err := NewSELL(a2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := par.New(1)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	y1 := make([]float64, a.Rows)
	y2 := make([]float64, a.Rows)
	s.SpMV(rt, x, y1)
	fresh.SpMV(rt, x, y2)
	bitsEqual(t, "refreshed SpMV", y1, y2)

	// Shape mismatches are clean errors.
	if err := s.FillValues(sellTestMatrix(499, 400)); err == nil {
		t.Fatal("FillValues accepted a different shape")
	}
}

// TestSELLEmptyAndZero covers degenerate shapes: an empty matrix and an
// all-empty-row matrix convert and apply cleanly.
func TestSELLEmptyAndZero(t *testing.T) {
	for _, rows := range []int{0, 5} {
		a := &Matrix{Rows: rows, Cols: 3, RowPtr: make([]int, rows+1)}
		s, err := NewSELL(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		x := []float64{1, 2, 3}
		y := make([]float64, rows)
		for i := range y {
			y[i] = 99
		}
		s.SpMV(par.New(1), x, y)
		for i := range y {
			if y[i] != 0 {
				t.Fatalf("empty-row SpMV: y[%d] = %g, want 0", i, y[i])
			}
		}
	}
}

// TestSELLZeroAllocKernels: the SELL apply kernels are allocation-free.
func TestSELLZeroAllocKernels(t *testing.T) {
	a := sellTestMatrix(2000, 2000)
	s, err := NewSELL(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := par.New(1)
	x := make([]float64, 2000)
	y := make([]float64, 2000)
	b := make([]float64, 2000)
	dinv := make([]float64, 2000)
	for i := range x {
		x[i] = float64(i%7) - 3
		b[i] = float64(i % 5)
		dinv[i] = 0.5
	}
	kernels := map[string]func(){
		"SpMV":         func() { s.SpMV(rt, x, y) },
		"SpMVResidual": func() { s.SpMVResidual(rt, b, x, y) },
		"SpMVAdd":      func() { s.SpMVAdd(rt, x, y) },
		"JacobiSweep":  func() { s.JacobiSweep(rt, b, dinv, 0.7, x, y) },
		"Diagonal":     func() { s.DiagonalInto(rt, y) },
	}
	for name, fn := range kernels {
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Fatalf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestChooseFormat pins the auto heuristic: regular large patterns pick
// SELL, small or skewed ones stay CSR.
func TestChooseFormat(t *testing.T) {
	// Uniform 5-entry rows, large: SELL.
	n := 4096
	u := &Matrix{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		for d := -2; d <= 2; d++ {
			j := (i + d + n) % n
			u.Col = append(u.Col, int32(j))
			u.Val = append(u.Val, 1)
		}
		u.RowPtr[i+1] = len(u.Col)
	}
	if f := ChooseFormat(u); f != FormatSELL {
		t.Fatalf("uniform: ChooseFormat = %v, want sell", f)
	}
	// Small: CSR regardless of regularity.
	small := &Matrix{Rows: 16, Cols: 16, RowPtr: make([]int, 17)}
	if f := ChooseFormat(small); f != FormatCSR {
		t.Fatalf("small: ChooseFormat = %v, want csr", f)
	}
	// Highly skewed: one dense row among singletons.
	sk := &Matrix{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	for j := 0; j < n; j++ {
		sk.Col = append(sk.Col, int32(j))
		sk.Val = append(sk.Val, 1)
	}
	sk.RowPtr[1] = n
	for i := 1; i < n; i++ {
		sk.Col = append(sk.Col, int32(i))
		sk.Val = append(sk.Val, 1)
		sk.RowPtr[i+1] = len(sk.Col)
	}
	if f := ChooseFormat(sk); f != FormatCSR {
		t.Fatalf("skewed: ChooseFormat = %v, want csr", f)
	}
}

// TestNewOperatorDispatch covers the three formats and the auto
// fallback path.
func TestNewOperatorDispatch(t *testing.T) {
	a := sellTestMatrix(100, 100)
	if op, err := NewOperator(a, FormatCSR, 0); err != nil || op != Operator(a) {
		t.Fatalf("csr: op=%T err=%v", op, err)
	}
	op, err := NewOperator(a, FormatSELL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*SELL); !ok {
		t.Fatalf("sell: got %T", op)
	}
	// Auto on a small matrix falls back to CSR.
	if op, err := NewOperator(a, FormatAuto, 0); err != nil || op != Operator(a) {
		t.Fatalf("auto-small: op=%T err=%v", op, err)
	}
	if _, err := ParseFormat("bogus"); err == nil {
		t.Fatal("ParseFormat accepted bogus")
	}
	for _, s := range []string{"auto", "csr", "sell", ""} {
		if _, err := ParseFormat(s); err != nil {
			t.Fatalf("ParseFormat(%q): %v", s, err)
		}
	}
}

// TestSELLRejectsMalformedSigma: negative or non-chunk-aligned sort
// scopes are descriptive errors (0 stays the documented default), both
// directly and through every NewOperator format path.
func TestSELLRejectsMalformedSigma(t *testing.T) {
	a := sellTestMatrix(64, 64)
	for _, sigma := range []int{-1, -8, 3, SellC + 1, SellC*2 - 1} {
		if sigma > 0 && sigma%SellC == 0 {
			t.Fatalf("test bug: sigma %d is valid", sigma)
		}
		if _, err := NewSELL(a, sigma); err == nil {
			t.Fatalf("NewSELL accepted sigma %d", sigma)
		}
		for _, f := range []Format{FormatAuto, FormatSELL} {
			if _, err := NewOperator(a, f, sigma); err == nil {
				t.Fatalf("NewOperator(%v) accepted sigma %d", f, sigma)
			}
		}
	}
	// Valid scopes still pass.
	for _, sigma := range []int{0, SellC, 4 * SellC} {
		if _, err := NewSELL(a, sigma); err != nil {
			t.Fatalf("NewSELL rejected valid sigma %d: %v", sigma, err)
		}
	}
}
