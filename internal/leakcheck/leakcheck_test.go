package leakcheck

import (
	"strings"
	"testing"
)

// recorder satisfies testing.TB through embedding and captures failures
// instead of failing the real test.
type recorder struct {
	testing.TB
	failed bool
	msg    string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.failed = true
	r.msg = format
	if len(args) > 0 {
		if s, ok := args[len(args)-1].(string); ok {
			r.msg += s
		}
	}
}

func TestCleanScenarioPasses(t *testing.T) {
	base := Capture()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	Check(t, base) // the goroutine has exited (or will within the settle window)
}

func TestLeakIsDetectedAndNamed(t *testing.T) {
	base := Capture()
	block := make(chan struct{})
	go leakyWorker(block)
	rec := &recorder{TB: t}
	Check(rec, base)
	if !rec.failed {
		close(block)
		t.Fatal("blocked goroutine not reported as a leak")
	}
	if !strings.Contains(rec.msg, "leakyWorker") {
		close(block)
		t.Fatalf("leak report does not name the leaked function: %q", rec.msg)
	}
	// Release it and confirm the same baseline now passes.
	close(block)
	Check(t, base)
}

func leakyWorker(block chan struct{}) {
	<-block
}

func TestAllowlistSuppresses(t *testing.T) {
	base := Capture()
	block := make(chan struct{})
	defer close(block)
	go leakyWorker(block)
	rec := &recorder{TB: t}
	Check(rec, base, "leakcheck.leakyWorker")
	if rec.failed {
		t.Fatalf("allowlisted goroutine reported as a leak: %q", rec.msg)
	}
}
