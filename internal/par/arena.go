package par

import "unsafe"

// Arena is a per-goroutine scratch allocator for the hot paths: a small
// free list of word-granular buffers that Get carves typed slices from
// and Put returns. Buffers are uninitialized on Get (callers stamp or
// overwrite them), so steady-state parallel kernels allocate nothing.
//
// An Arena is not safe for concurrent use; each pool worker owns one,
// and other goroutines borrow one via AcquireArena/ReleaseArena.
type Arena struct {
	free [][]uint64
}

// maxArenaBuffers bounds the free list; returning a buffer to a full
// list drops the smallest buffer instead.
const maxArenaBuffers = 16

// Elem constrains arena-managed element types to pointer-free scalars,
// so reinterpreting the word-granular backing store is safe.
type Elem interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Get returns an uninitialized scratch slice of length n, reusing the
// smallest adequate free buffer. The contents are arbitrary — callers
// must initialize or stamp every element they read. The slice's
// capacity spans the entire backing buffer, so Put can return it
// without shrinking the buffer (element sizes divide the 8-byte word,
// making the round-trip exact).
func Get[T Elem](a *Arena, n int) []T {
	if n <= 0 {
		return nil
	}
	var z T
	size := int(unsafe.Sizeof(z))
	words := (n*size + 7) / 8
	buf := a.take(words)
	full := cap(buf) * 8 / size
	return unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(buf))), full)[:n]
}

// Put returns a slice obtained from Get to the arena. Only slices from
// Get may be passed (their backing store is word-granular and -aligned,
// and their capacity spans it exactly); the caller must not use s (or
// any alias of it) afterwards.
func Put[T Elem](a *Arena, s []T) {
	if cap(s) == 0 {
		return
	}
	var z T
	s = s[:cap(s)]
	words := len(s) * int(unsafe.Sizeof(z)) / 8
	if words == 0 {
		return
	}
	buf := unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(s))), words)
	a.put(buf)
}

// GetZeroed is Get followed by clearing to the zero value.
func GetZeroed[T Elem](a *Arena, n int) []T {
	s := Get[T](a, n)
	clear(s)
	return s
}

// roundWords rounds a fresh allocation up to a size bucket: the next
// power of two up to 4096 words (32 KiB), then the next multiple of
// 4096. Hot-path scratch requests arrive in near-miss sizes — n row
// counters, n+1 offsets, n*k multi-RHS block scratch for small k — and
// bucketing lets one retained buffer serve the whole family instead of
// thrashing the free list with exact-fit allocations (at most one
// bucket step, 1/8 of the largest request, of overhead).
func roundWords(words int) int {
	if words >= 4096 {
		return (words + 4095) &^ 4095
	}
	b := 64
	for b < words {
		b <<= 1
	}
	return b
}

// take removes and returns a free buffer with capacity >= words,
// preferring the tightest fit, or allocates a fresh bucket-rounded one.
func (a *Arena) take(words int) []uint64 {
	best := -1
	for k, b := range a.free {
		if cap(b) >= words && (best < 0 || cap(b) < cap(a.free[best])) {
			best = k
		}
	}
	if best < 0 {
		return make([]uint64, roundWords(words))[:words]
	}
	b := a.free[best]
	last := len(a.free) - 1
	a.free[best] = a.free[last]
	a.free[last] = nil
	a.free = a.free[:last]
	return b[:words]
}

// put adds buf to the free list, evicting the smallest buffer when full.
func (a *Arena) put(buf []uint64) {
	if len(a.free) < maxArenaBuffers {
		a.free = append(a.free, buf)
		return
	}
	smallest := 0
	for k := 1; k < len(a.free); k++ {
		if cap(a.free[k]) < cap(a.free[smallest]) {
			smallest = k
		}
	}
	if cap(a.free[smallest]) < cap(buf) {
		a.free[smallest] = buf
	}
}
