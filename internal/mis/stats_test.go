package mis

import (
	"testing"

	"mis2go/internal/hash"
)

func TestCollectStatsShape(t *testing.T) {
	g := grid2D(40, 40)
	res := MIS2(g, Options{CollectStats: true})
	if len(res.Worklist1) != res.Iterations || len(res.Worklist2) != res.Iterations {
		t.Fatalf("stats length %d/%d, want %d", len(res.Worklist1), len(res.Worklist2), res.Iterations)
	}
	// Iteration 0 sees the full vertex set in both worklists.
	if res.Worklist1[0] != g.N || res.Worklist2[0] != g.N {
		t.Fatalf("initial worklists %d/%d, want %d", res.Worklist1[0], res.Worklist2[0], g.N)
	}
	// Worklists shrink monotonically: a decided vertex never returns, and
	// M=OUT is permanent.
	for i := 1; i < res.Iterations; i++ {
		if res.Worklist1[i] > res.Worklist1[i-1] {
			t.Fatalf("worklist1 grew at iteration %d: %v", i, res.Worklist1)
		}
		if res.Worklist2[i] > res.Worklist2[i-1] {
			t.Fatalf("worklist2 grew at iteration %d: %v", i, res.Worklist2)
		}
	}
	// worklist1 (undecided) is always a subset of worklist2 candidates:
	// an undecided vertex cannot be adjacent to an IN vertex.
	for i := range res.Worklist1 {
		if res.Worklist1[i] > res.Worklist2[i] {
			t.Fatalf("worklist1 %d exceeds worklist2 %d at iteration %d",
				res.Worklist1[i], res.Worklist2[i], i)
		}
	}
}

func TestCollectStatsOffByDefault(t *testing.T) {
	res := MIS2(grid2D(10, 10), Options{})
	if res.Worklist1 != nil || res.Worklist2 != nil {
		t.Fatal("stats collected without CollectStats")
	}
}

func TestCollectStatsGeometricDecay(t *testing.T) {
	// The §V-B argument: most vertices decide in the first iterations, so
	// worklist-driven runs do far less total work than full sweeps.
	// Check the sum of worklist sizes is well below iterations * n.
	g := grid2D(60, 60)
	res := MIS2(g, Options{CollectStats: true})
	total := 0
	for _, w := range res.Worklist1 {
		total += w
	}
	full := res.Iterations * g.N
	if 2*total >= full {
		t.Fatalf("worklist work %d not well below full-sweep work %d", total, full)
	}
}

func TestCollectStatsMatchesPlainRun(t *testing.T) {
	g := randomGraph(300, 1200, 13)
	a := MIS2(g, Options{})
	b := MIS2(g, Options{CollectStats: true})
	if !setsEqual(a.InSet, b.InSet) || a.Iterations != b.Iterations {
		t.Fatal("stats collection changed the result")
	}
}

func TestStatsAcrossHashKinds(t *testing.T) {
	g := grid2D(30, 30)
	for _, k := range []hash.Kind{hash.XorStar, hash.Xor, hash.Fixed} {
		res := MIS2(g, Options{Hash: k, CollectStats: true})
		if len(res.Worklist1) == 0 {
			t.Fatalf("%v: no stats", k)
		}
		last := res.Worklist1[len(res.Worklist1)-1]
		if last <= 0 {
			t.Fatalf("%v: final iteration had empty worklist %d", k, last)
		}
	}
}
