package gen

import (
	"math"
	"testing"

	"mis2go/internal/par"
)

func TestDirichletLaplacianStructure(t *testing.T) {
	g := Laplace3D(6, 6, 6)
	a := DirichletLaplacian(g, 6)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	d := a.Diagonal()
	for i, v := range d {
		if v != 6 {
			t.Fatalf("diagonal %d = %g, want 6", i, v)
		}
	}
	// Row sums: zero for interior rows, positive for boundary rows
	// (the eliminated Dirichlet boundary).
	rt := par.New(1)
	ones := make([]float64, a.Rows)
	for i := range ones {
		ones[i] = 1
	}
	y := make([]float64, a.Rows)
	a.SpMV(rt, ones, y)
	interior := int32((2*6+2)*6 + 2)
	if math.Abs(y[interior]) > 1e-14 {
		t.Fatalf("interior row sum %g, want 0", y[interior])
	}
	if y[0] <= 0 {
		t.Fatalf("corner row sum %g, want > 0", y[0])
	}
}

func TestDirichletLaplacianSymmetric(t *testing.T) {
	g := Laplace2D(9, 9)
	a := DirichletLaplacian(g, 4)
	at := a.Transpose()
	for i := range a.Val {
		if a.Col[i] != at.Col[i] || a.Val[i] != at.Val[i] {
			t.Fatal("Dirichlet Laplacian not symmetric")
		}
	}
}

func TestDirichletLaplacianPositiveDefinite(t *testing.T) {
	// x^T A x > 0 for a few deterministic nonzero vectors.
	g := Laplace2D(8, 8)
	a := DirichletLaplacian(g, 4)
	rt := par.New(1)
	n := a.Rows
	y := make([]float64, n)
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(trial+1) * 0.31 * float64(i))
		}
		a.SpMV(rt, x, y)
		q := 0.0
		for i := range x {
			q += x[i] * y[i]
		}
		if q <= 0 {
			t.Fatalf("trial %d: x^T A x = %g", trial, q)
		}
	}
}

func TestSlab27MatchesGrid3D27(t *testing.T) {
	a := Slab27(10, 10, 2)
	b := Grid3D27(10, 10, 2)
	if a.N != b.N || a.NumEdges() != b.NumEdges() {
		t.Fatal("Slab27 is not Grid3D27")
	}
	// Slab interior degree: 3x3x2 neighborhood minus self = 17
	// (the af_shell7 surrogate's target).
	interior := int32(5*10 + 5)
	if a.Degree(interior) != 17 {
		t.Fatalf("slab interior degree = %d, want 17", a.Degree(interior))
	}
}

func TestRandomFEMRespectsLowTarget(t *testing.T) {
	// avgDeg at or below the base stencil: no extra edges are added.
	g := RandomFEM(8, 8, 8, 4.0, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.AvgDegree() > 6.5 {
		t.Fatalf("avg degree %.2f exceeds 7-pt base", g.AvgDegree())
	}
}

func TestGeneratorsMinimumDims(t *testing.T) {
	for name, g := range map[string]interface{ Validate() error }{
		"laplace3d-1":  Laplace3D(1, 1, 1),
		"laplace2d-1":  Laplace2D(1, 1),
		"grid27-1":     Grid3D27(1, 1, 1),
		"elasticity-1": Elasticity3D(1, 1, 1, 3),
		"fem-2":        RandomFEM(2, 2, 2, 8, 1),
	} {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestExpandDOFEdgeCountFormula(t *testing.T) {
	g := Laplace2D(4, 4)
	dof := 3
	e := ExpandDOF(g, dof)
	// Arc count: each vertex row of degree d expands to dof rows of
	// degree (d+1)*dof-1.
	want := 0
	for v := 0; v < g.N; v++ {
		want += dof * ((g.Degree(int32(v))+1)*dof - 1)
	}
	if e.NumEdges() != want {
		t.Fatalf("expanded arcs = %d, want %d", e.NumEdges(), want)
	}
}
