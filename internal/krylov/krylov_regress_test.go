// Regression tests for the solver edge cases: workspace reuse across
// systems of different sizes, zero right-hand sides, and maxIter = 0.
package krylov

import (
	"math"
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// TestWorkspaceReuseAcrossSizes solves a large system and then a
// strictly smaller one through the same workspace and requires bitwise
// identity with a fresh-workspace solve. The small GMRES system is an
// identity matrix with a single-entry right-hand side, which exhausts
// the Krylov subspace after one step (exact lucky breakdown): without
// the exact-size re-slice and lucky-breakdown termination, GMRES reads
// a basis vector the current cycle never wrote — scratch retained from
// the larger solve.
func TestWorkspaceReuseAcrossSizes(t *testing.T) {
	rt := par.New(1)
	// Well-conditioned so short-restart GMRES converges too; its only
	// role is to fill the workspace with larger-system scratch.
	big := gen.Laplacian(gen.Laplace3D(10, 10, 10), 0.5)
	bb := make([]float64, big.Rows)
	for i := range bb {
		bb[i] = float64(i%13) - 6
	}

	t.Run("gmres-lucky-breakdown", func(t *testing.T) {
		small := sparse.Identity(10)
		bs := make([]float64, 10)
		bs[0] = 2.0 // power of two: the Arnoldi normalization is exact

		ws := &Workspace{}
		xb := make([]float64, big.Rows)
		if _, err := GMRESWith(rt, big, bb, xb, 1e-10, 500, 5, nil, ws); err != nil {
			t.Fatal(err)
		}
		reused := make([]float64, 10)
		stReused, errReused := GMRESWith(rt, small, bs, reused, 0, 20, 5, nil, ws)
		fresh := make([]float64, 10)
		stFresh, errFresh := GMRESWith(rt, small, bs, fresh, 0, 20, 5, nil, &Workspace{})

		if (errReused == nil) != (errFresh == nil) {
			t.Fatalf("error mismatch: reused %v, fresh %v", errReused, errFresh)
		}
		if stReused.Iterations != stFresh.Iterations {
			t.Fatalf("iterations %d, fresh workspace %d", stReused.Iterations, stFresh.Iterations)
		}
		for i := range reused {
			if math.Float64bits(reused[i]) != math.Float64bits(fresh[i]) {
				t.Fatalf("x[%d] differs bitwise: %x (reused) vs %x (fresh)",
					i, math.Float64bits(reused[i]), math.Float64bits(fresh[i]))
			}
		}
		// The exact solution is b itself.
		for i := range reused {
			if reused[i] != bs[i] {
				t.Fatalf("x[%d] = %g, want %g", i, reused[i], bs[i])
			}
		}
	})

	t.Run("cg", func(t *testing.T) {
		small := gen.Laplacian(gen.Laplace3D(4, 4, 4), 1e-2)
		bs := make([]float64, small.Rows)
		for i := range bs {
			bs[i] = float64(i%7) - 3
		}
		ws := &Workspace{}
		xb := make([]float64, big.Rows)
		if _, err := CGWith(rt, big, bb, xb, 1e-10, 500, nil, ws); err != nil {
			t.Fatal(err)
		}
		reused := make([]float64, small.Rows)
		if _, err := CGWith(rt, small, bs, reused, 1e-10, 500, nil, ws); err != nil {
			t.Fatal(err)
		}
		fresh := make([]float64, small.Rows)
		if _, err := CGWith(rt, small, bs, fresh, 1e-10, 500, nil, &Workspace{}); err != nil {
			t.Fatal(err)
		}
		for i := range reused {
			if math.Float64bits(reused[i]) != math.Float64bits(fresh[i]) {
				t.Fatalf("x[%d] differs bitwise: %x vs %x",
					i, math.Float64bits(reused[i]), math.Float64bits(fresh[i]))
			}
		}
	})
}

// TestZeroRHSReturnsZero pins the b = 0 contract: the exact solution
// x = 0 in 0 iterations, for any initial guess and any tolerance —
// instead of iterating a nonzero guess down (CG) or normalizing a zero
// residual into NaN basis vectors (GMRES with tol = 0).
func TestZeroRHSReturnsZero(t *testing.T) {
	rt := par.New(1)
	a := gen.Laplacian(gen.Laplace3D(5, 5, 5), 1e-2)
	n := a.Rows
	zero := make([]float64, n)

	type solve func(x []float64, tol float64) (Stats, error)
	solvers := map[string]solve{
		"cg": func(x []float64, tol float64) (Stats, error) {
			return CG(rt, a, zero, x, tol, 100, nil)
		},
		"gmres": func(x []float64, tol float64) (Stats, error) {
			return GMRES(rt, a, zero, x, tol, 100, 10, nil)
		},
	}
	for name, run := range solvers {
		for _, tol := range []float64{1e-10, 0} {
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(i%5) - 2 // nonzero initial guess
			}
			st, err := run(x, tol)
			if err != nil {
				t.Fatalf("%s tol=%g: %v", name, tol, err)
			}
			if st.Iterations != 0 || !st.Converged || st.RelResidual != 0 {
				t.Fatalf("%s tol=%g: stats %+v, want 0 iterations, converged, zero residual", name, tol, st)
			}
			for i := range x {
				if x[i] != 0 {
					t.Fatalf("%s tol=%g: x[%d] = %g, want exactly 0", name, tol, i, x[i])
				}
			}
		}
	}

	// CGBatch: a zero column among nonzero ones.
	const k = 4
	b := make([]float64, n*k)
	x := make([]float64, n*k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			if j == 2 {
				continue // column 2 stays zero
			}
			b[i*k+j] = float64((i+j)%9) - 4
		}
		x[i*k+2] = 1 // nonzero guess in the zero column
	}
	stats, err := CGBatch(rt, a, b, x, k, 1e-10, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats[2].Iterations != 0 || !stats[2].Converged || stats[2].RelResidual != 0 {
		t.Fatalf("zero column stats %+v", stats[2])
	}
	for i := 0; i < n; i++ {
		if x[i*k+2] != 0 {
			t.Fatalf("zero column x[%d] = %g, want exactly 0", i, x[i*k+2])
		}
	}
	for _, j := range []int{0, 1, 3} {
		if !stats[j].Converged || stats[j].Iterations == 0 {
			t.Fatalf("column %d stats %+v, want converged after > 0 iterations", j, stats[j])
		}
	}
}

// TestMaxIterZeroReportsInitialResidual pins the maxIter = 0 contract:
// the initial residual is reported and x is not touched.
func TestMaxIterZeroReportsInitialResidual(t *testing.T) {
	rt := par.New(1)
	a := gen.Laplacian(gen.Laplace3D(5, 5, 5), 1e-2)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	guess := make([]float64, n)
	for i := range guess {
		guess[i] = float64(i%3) - 1
	}
	// Reference residual ||b - A guess|| / ||b||.
	r := make([]float64, n)
	a.SpMV(rt, guess, r)
	rr := 0.0
	for i := range r {
		d := b[i] - r[i]
		rr += d * d
	}
	wantRel := math.Sqrt(rr) / norm2(b)

	check := func(name string, st Stats, err error, x []float64) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: expected ErrNotConverged for maxIter=0", name)
		}
		if st.Iterations != 0 {
			t.Fatalf("%s: %d iterations, want 0", name, st.Iterations)
		}
		if math.Abs(st.RelResidual-wantRel) > 1e-14*(1+wantRel) {
			t.Fatalf("%s: relres %g, want %g", name, st.RelResidual, wantRel)
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(guess[i]) {
				t.Fatalf("%s: x[%d] modified: %g, want %g", name, i, x[i], guess[i])
			}
		}
	}

	x := append([]float64(nil), guess...)
	st, err := CG(rt, a, b, x, 1e-10, 0, nil)
	check("cg", st, err, x)

	x = append([]float64(nil), guess...)
	st, err = GMRES(rt, a, b, x, 1e-10, 0, 10, nil)
	check("gmres", st, err, x)

	// Negative maxIter must behave like 0, not clamp the restart into a
	// negative Arnoldi dimension (which used to panic in make).
	x = append([]float64(nil), guess...)
	st, err = GMRES(rt, a, b, x, 1e-10, -2, 10, nil)
	check("gmres maxIter=-2", st, err, x)

	const k = 3
	xb := make([]float64, n*k)
	bb := make([]float64, n*k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			xb[i*k+j] = guess[i]
			bb[i*k+j] = b[i]
		}
	}
	stats, err := CGBatch(rt, a, bb, xb, k, 1e-10, 0, nil)
	if err == nil {
		t.Fatal("batch: expected ErrNotConverged for maxIter=0")
	}
	for j := 0; j < k; j++ {
		if stats[j].Iterations != 0 {
			t.Fatalf("batch column %d: %d iterations, want 0", j, stats[j].Iterations)
		}
		if math.Abs(stats[j].RelResidual-wantRel) > 1e-13*(1+wantRel) {
			t.Fatalf("batch column %d: relres %g, want %g", j, stats[j].RelResidual, wantRel)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			if math.Float64bits(xb[i*k+j]) != math.Float64bits(guess[i]) {
				t.Fatalf("batch: x[%d,%d] modified", i, j)
			}
		}
	}
}
