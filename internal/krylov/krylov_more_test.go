package krylov

import (
	"math"
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

func TestCGWarmStart(t *testing.T) {
	a, b, xTrue := spdProblem(15, 15)
	// Starting from the exact solution converges immediately.
	x := append([]float64(nil), xTrue...)
	st, err := CG(par.New(2), a, b, x, 1e-10, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 0 {
		t.Fatalf("warm start took %d iterations", st.Iterations)
	}
	// Starting close converges in fewer iterations than from zero.
	near := append([]float64(nil), xTrue...)
	for i := range near {
		near[i] += 1e-6 * math.Sin(float64(i))
	}
	stNear, err := CG(par.New(2), a, b, near, 1e-10, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, a.Rows)
	stZero, err := CG(par.New(2), a, b, zero, 1e-10, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stNear.Iterations > stZero.Iterations {
		t.Fatalf("near start %d iterations > cold start %d", stNear.Iterations, stZero.Iterations)
	}
}

func TestGMRESSmallRestartStillConverges(t *testing.T) {
	a, b, xTrue := spdProblem(12, 12)
	x := make([]float64, a.Rows)
	st, err := GMRES(par.New(2), a, b, x, 1e-9, 20000, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("GMRES(5) failed: %+v", st)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-4 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestGMRESRestartClampedToMaxIter(t *testing.T) {
	a, b, _ := spdProblem(8, 8)
	x := make([]float64, a.Rows)
	// restart > maxIter must not panic or over-run.
	st, _ := GMRES(par.New(1), a, b, x, 1e-12, 10, 500, nil)
	if st.Iterations > 10 {
		t.Fatalf("exceeded maxIter: %d", st.Iterations)
	}
}

func TestGMRESSizeMismatch(t *testing.T) {
	a, b, _ := spdProblem(4, 4)
	if _, err := GMRES(par.New(1), a, b, make([]float64, 2), 1e-8, 10, 5, nil); err == nil {
		t.Fatal("size mismatch not reported")
	}
}

func TestStatsRelResidualAccurate(t *testing.T) {
	a, b, _ := spdProblem(10, 10)
	x := make([]float64, a.Rows)
	st, err := CG(par.New(1), a, b, x, 1e-10, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the residual and compare with the reported one.
	r := make([]float64, a.Rows)
	a.SpMV(par.New(1), x, r)
	num, den := 0.0, 0.0
	for i := range r {
		d := b[i] - r[i]
		num += d * d
		den += b[i] * b[i]
	}
	rel := math.Sqrt(num) / math.Sqrt(den)
	if math.Abs(rel-st.RelResidual) > 1e-12+1e-6*rel {
		t.Fatalf("reported relres %g, recomputed %g", st.RelResidual, rel)
	}
}

func TestCGOnIllConditionedReportsHonestResidual(t *testing.T) {
	// Nearly singular Neumann Laplacian: attainable accuracy is limited;
	// the solver must not claim a residual it did not achieve.
	g := gen.Laplace2D(20, 20)
	a := gen.Laplacian(g, 1e-9)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(0.37 * float64(i))
	}
	x := make([]float64, n)
	st, _ := CG(par.New(1), a, b, x, 1e-14, 3000, nil)
	r := make([]float64, n)
	a.SpMV(par.New(1), x, r)
	num, den := 0.0, 0.0
	for i := range r {
		d := b[i] - r[i]
		num += d * d
		den += b[i] * b[i]
	}
	actual := math.Sqrt(num) / math.Sqrt(den)
	if st.RelResidual < actual/10 {
		t.Fatalf("reported %g but actual %g", st.RelResidual, actual)
	}
}

func TestGMRESWithSPDPreconditionerMatchesCG(t *testing.T) {
	// Sanity: both solvers reach the same solution with Jacobi.
	a, b, xTrue := spdProblem(10, 10)
	d := a.Diagonal()
	dinv := make([]float64, len(d))
	for i := range d {
		dinv[i] = 1 / d[i]
	}
	prec := jacobiPrec{dinv}
	x1 := make([]float64, a.Rows)
	if _, err := CG(par.New(1), a, b, x1, 1e-11, 3000, prec); err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, a.Rows)
	if _, err := GMRES(par.New(1), a, b, x2, 1e-11, 3000, 80, prec); err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if math.Abs(x1[i]-xTrue[i]) > 1e-5 || math.Abs(x2[i]-xTrue[i]) > 1e-5 {
			t.Fatalf("solution mismatch at %d", i)
		}
	}
}

func TestZeroMatrixDimension(t *testing.T) {
	a := &sparse.Matrix{Rows: 0, Cols: 0, RowPtr: []int{0}}
	st, err := CG(par.New(1), a, nil, nil, 1e-8, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 0 {
		t.Fatal("empty system should converge immediately")
	}
}
