package sparse

import (
	"fmt"

	"mis2go/internal/par"
)

// SELL32 is the float32-valued SELL-C-sigma operator: identical packing,
// permutation, and traversal to *SELL (see sell.go for the layout), with
// only the packed values stored as float32. Kernels widen each value to
// float64 before its multiply and keep one float64 accumulator per lane
// in the canonical left-to-right order, so a SELL32 is bit-identical to
// the CSR32 of the same matrix for every kernel and worker count — the
// same format-independence contract the f64 operators have, one
// precision down.
//
// Concurrency: kernels are read-only and safe for concurrent use;
// FillValues mutates the packed values and must be serialized against
// every reader.
type SELL32 struct {
	rows, cols int
	sigma      int
	perm       []int32
	chunkPtr   []int32
	width      []int32
	full       []int32
	cntPtr     []int32
	cnt        []uint8
	col        []int32
	val        []float32
	entry      []int32 // packed position -> CSR entry index (value replay)
}

// NewSELL32 converts a CSR matrix to f32-valued SELL-C-sigma. The
// packing is delegated to NewSELL — the pattern arrays (permutation,
// chunk bookkeeping, columns, entry schedule) are adopted from it
// unchanged, so the two formats can never disagree on layout — and the
// packed values are down-converted after a CheckF32Range scan.
func NewSELL32(a *Matrix, sigma int) (*SELL32, error) {
	f64, err := NewSELL(a, sigma)
	if err != nil {
		return nil, err
	}
	if err := CheckF32Range(a.Val); err != nil {
		return nil, err
	}
	s := &SELL32{
		rows: f64.rows, cols: f64.cols, sigma: f64.sigma,
		perm: f64.perm, chunkPtr: f64.chunkPtr, width: f64.width,
		full: f64.full, cntPtr: f64.cntPtr, cnt: f64.cnt,
		col: f64.col, entry: f64.entry,
	}
	s.val = make([]float32, len(f64.val))
	for p, v := range f64.val {
		s.val[p] = float32(v)
	}
	return s, nil
}

// FillValues refreshes the packed values from a same-pattern CSR matrix
// through the cached entry schedule. The float32-range scan runs before
// any store, so a rejected refresh leaves the previous values serving
// bitwise unchanged; the gather itself is branch-free and allocates
// nothing. Only the shape and entry count are checked here; pattern
// identity is the caller's contract.
func (s *SELL32) FillValues(a *Matrix) error {
	if a.Rows != s.rows || a.Cols != s.cols || len(a.Val) != len(s.val) {
		return fmt.Errorf("sparse: SELL32 refresh from %dx%d/%d entries, converted from %dx%d/%d",
			a.Rows, a.Cols, len(a.Val), s.rows, s.cols, len(s.val))
	}
	if err := CheckF32Range(a.Val); err != nil {
		return err
	}
	av := a.Val
	for p, e := range s.entry {
		s.val[p] = float32(av[e])
	}
	return nil
}

// Dims returns the operator shape, implementing Operator.
func (s *SELL32) Dims() (rows, cols int) { return s.rows, s.cols }

// NNZ returns the number of stored entries.
func (s *SELL32) NNZ() int { return len(s.col) }

// Sigma reports the sort scope the operator was converted with.
func (s *SELL32) Sigma() int { return s.sigma }

// nchunks returns the chunk count.
func (s *SELL32) nchunks() int { return len(s.width) }

// chunkAccum mirrors SELL.chunkAccum with float32 loads: accumulator l
// holds lane l's dot product with x, accumulated strictly left to right
// in float64 (each stored value widened before its multiply).
//
//amg:hotpath
func (s *SELL32) chunkAccum(x []float64, c int) (a0, a1, a2, a3, a4, a5, a6, a7 float64) {
	col, val := s.col, s.val
	p := int(s.chunkPtr[c])
	f := int(s.full[c])
	for j := 0; j+2 <= f; j += 2 {
		cb := col[p : p+16 : p+16]
		vb := val[p : p+16 : p+16]
		a0 += float64(vb[0]) * x[cb[0]]
		a0 += float64(vb[8]) * x[cb[8]]
		a1 += float64(vb[1]) * x[cb[1]]
		a1 += float64(vb[9]) * x[cb[9]]
		a2 += float64(vb[2]) * x[cb[2]]
		a2 += float64(vb[10]) * x[cb[10]]
		a3 += float64(vb[3]) * x[cb[3]]
		a3 += float64(vb[11]) * x[cb[11]]
		a4 += float64(vb[4]) * x[cb[4]]
		a4 += float64(vb[12]) * x[cb[12]]
		a5 += float64(vb[5]) * x[cb[5]]
		a5 += float64(vb[13]) * x[cb[13]]
		a6 += float64(vb[6]) * x[cb[6]]
		a6 += float64(vb[14]) * x[cb[14]]
		a7 += float64(vb[7]) * x[cb[7]]
		a7 += float64(vb[15]) * x[cb[15]]
		p += 16
	}
	if f&1 == 1 {
		cb := col[p : p+8 : p+8]
		vb := val[p : p+8 : p+8]
		a0 += float64(vb[0]) * x[cb[0]]
		a1 += float64(vb[1]) * x[cb[1]]
		a2 += float64(vb[2]) * x[cb[2]]
		a3 += float64(vb[3]) * x[cb[3]]
		a4 += float64(vb[4]) * x[cb[4]]
		a5 += float64(vb[5]) * x[cb[5]]
		a6 += float64(vb[6]) * x[cb[6]]
		a7 += float64(vb[7]) * x[cb[7]]
		p += 8
	}
	if w := int(s.width[c]); f < w {
		cnt := s.cnt
		base := int(s.cntPtr[c])
		for j := f; j < w; j++ {
			m := cnt[base+j]
			a0 += float64(val[p]) * x[col[p]]
			p++
			if m > 1 {
				a1 += float64(val[p]) * x[col[p]]
				p++
			}
			if m > 2 {
				a2 += float64(val[p]) * x[col[p]]
				p++
			}
			if m > 3 {
				a3 += float64(val[p]) * x[col[p]]
				p++
			}
			if m > 4 {
				a4 += float64(val[p]) * x[col[p]]
				p++
			}
			if m > 5 {
				a5 += float64(val[p]) * x[col[p]]
				p++
			}
			if m > 6 {
				a6 += float64(val[p]) * x[col[p]]
				p++
			}
		}
	}
	return
}

// SpMV computes y = A*x, parallel over chunks. Bit-identical to the
// CSR32 SpMV of the source matrix for every worker count.
//
//amg:hotpath
func (s *SELL32) SpMV(rt *par.Runtime, x, y []float64) {
	if rt.Serial(s.rows) {
		s.spmvChunks(x, y, 0, s.nchunks())
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.spmvChunks(x, y, c0, c1)
	})
}

//amg:hotpath
func (s *SELL32) spmvChunks(x, y []float64, c0, c1 int) {
	for c := c0; c < c1; c++ {
		a0, a1, a2, a3, a4, a5, a6, a7 := s.chunkAccum(x, c)
		slot := c * SellC
		if slot+SellC <= s.rows {
			pm := s.perm[slot : slot+SellC : slot+SellC]
			y[pm[0]] = a0
			y[pm[1]] = a1
			y[pm[2]] = a2
			y[pm[3]] = a3
			y[pm[4]] = a4
			y[pm[5]] = a5
			y[pm[6]] = a6
			y[pm[7]] = a7
			continue
		}
		acc := [SellC]float64{a0, a1, a2, a3, a4, a5, a6, a7}
		for l, r := range s.perm[slot:s.rows] {
			y[r] = acc[l]
		}
	}
}

// SpMVResidual computes r = b - A*x in one traversal. r must not alias x.
//
//amg:hotpath
func (s *SELL32) SpMVResidual(rt *par.Runtime, b, x, r []float64) {
	if rt.Serial(s.rows) {
		s.spmvResidualChunks(b, x, r, 0, s.nchunks())
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.spmvResidualChunks(b, x, r, c0, c1)
	})
}

//amg:hotpath
func (s *SELL32) spmvResidualChunks(b, x, r []float64, c0, c1 int) {
	for c := c0; c < c1; c++ {
		a0, a1, a2, a3, a4, a5, a6, a7 := s.chunkAccum(x, c)
		slot := c * SellC
		if slot+SellC <= s.rows {
			pm := s.perm[slot : slot+SellC : slot+SellC]
			r[pm[0]] = b[pm[0]] - a0
			r[pm[1]] = b[pm[1]] - a1
			r[pm[2]] = b[pm[2]] - a2
			r[pm[3]] = b[pm[3]] - a3
			r[pm[4]] = b[pm[4]] - a4
			r[pm[5]] = b[pm[5]] - a5
			r[pm[6]] = b[pm[6]] - a6
			r[pm[7]] = b[pm[7]] - a7
			continue
		}
		acc := [SellC]float64{a0, a1, a2, a3, a4, a5, a6, a7}
		for l, row := range s.perm[slot:s.rows] {
			r[row] = b[row] - acc[l]
		}
	}
}

// SpMVAdd computes y += A*x in one traversal. y must not alias x.
//
//amg:hotpath
func (s *SELL32) SpMVAdd(rt *par.Runtime, x, y []float64) {
	if rt.Serial(s.rows) {
		s.spmvAddChunks(x, y, 0, s.nchunks())
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.spmvAddChunks(x, y, c0, c1)
	})
}

//amg:hotpath
func (s *SELL32) spmvAddChunks(x, y []float64, c0, c1 int) {
	for c := c0; c < c1; c++ {
		a0, a1, a2, a3, a4, a5, a6, a7 := s.chunkAccum(x, c)
		slot := c * SellC
		if slot+SellC <= s.rows {
			pm := s.perm[slot : slot+SellC : slot+SellC]
			y[pm[0]] += a0
			y[pm[1]] += a1
			y[pm[2]] += a2
			y[pm[3]] += a3
			y[pm[4]] += a4
			y[pm[5]] += a5
			y[pm[6]] += a6
			y[pm[7]] += a7
			continue
		}
		acc := [SellC]float64{a0, a1, a2, a3, a4, a5, a6, a7}
		for l, row := range s.perm[slot:s.rows] {
			y[row] += acc[l]
		}
	}
}

// JacobiSweep computes dst[i] = src[i] + omega*dinv[i]*(b[i] - (A src)[i])
// in one traversal — the fused damped-Jacobi sweep, bit-identical to
// CSR32.JacobiSweep. The diagonal inverse stays float64. src and dst
// must not alias.
//
//amg:hotpath
func (s *SELL32) JacobiSweep(rt *par.Runtime, b, dinv []float64, omega float64, src, dst []float64) {
	if rt.Serial(s.rows) {
		s.jacobiChunks(b, dinv, omega, src, dst, 0, s.nchunks())
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.jacobiChunks(b, dinv, omega, src, dst, c0, c1)
	})
}

//amg:hotpath
func (s *SELL32) jacobiChunks(b, dinv []float64, omega float64, src, dst []float64, c0, c1 int) {
	for c := c0; c < c1; c++ {
		a0, a1, a2, a3, a4, a5, a6, a7 := s.chunkAccum(src, c)
		slot := c * SellC
		if slot+SellC <= s.rows {
			pm := s.perm[slot : slot+SellC : slot+SellC]
			dst[pm[0]] = src[pm[0]] + omega*dinv[pm[0]]*(b[pm[0]]-a0)
			dst[pm[1]] = src[pm[1]] + omega*dinv[pm[1]]*(b[pm[1]]-a1)
			dst[pm[2]] = src[pm[2]] + omega*dinv[pm[2]]*(b[pm[2]]-a2)
			dst[pm[3]] = src[pm[3]] + omega*dinv[pm[3]]*(b[pm[3]]-a3)
			dst[pm[4]] = src[pm[4]] + omega*dinv[pm[4]]*(b[pm[4]]-a4)
			dst[pm[5]] = src[pm[5]] + omega*dinv[pm[5]]*(b[pm[5]]-a5)
			dst[pm[6]] = src[pm[6]] + omega*dinv[pm[6]]*(b[pm[6]]-a6)
			dst[pm[7]] = src[pm[7]] + omega*dinv[pm[7]]*(b[pm[7]]-a7)
			continue
		}
		acc := [SellC]float64{a0, a1, a2, a3, a4, a5, a6, a7}
		for l, row := range s.perm[slot:s.rows] {
			dst[row] = src[row] + omega*dinv[row]*(b[row]-acc[l])
		}
	}
}

// SpMM computes the multi-RHS product Y = A*X for k interleaved
// right-hand sides (the layout of Matrix.SpMM).
//
//amg:hotpath
func (s *SELL32) SpMM(rt *par.Runtime, k int, x, y []float64) {
	if k == 1 {
		s.SpMV(rt, x, y)
		return
	}
	if rt.Serial(s.rows) {
		s.spmmChunks(k, x, y, 0, s.nchunks())
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.spmmChunks(k, x, y, c0, c1)
	})
}

//amg:hotpath
func (s *SELL32) spmmChunks(k int, x, y []float64, c0, c1 int) {
	col, val, cnt := s.col, s.val, s.cnt
	for c := c0; c < c1; c++ {
		slot := c * SellC
		lanes := s.perm[slot:min(slot+SellC, s.rows)]
		for _, row := range lanes {
			clear(y[int(row)*k : int(row)*k+k])
		}
		p := int(s.chunkPtr[c])
		w := int(s.width[c])
		f := int(s.full[c])
		base := int(s.cntPtr[c])
		for j := 0; j < w; j++ {
			m := SellC
			if j >= f {
				m = int(cnt[base+j])
			}
			for _, row := range lanes[:m] {
				v := float64(val[p])
				xb := x[int(col[p])*k : int(col[p])*k+k]
				yb := y[int(row)*k : int(row)*k+k]
				for q, xv := range xb {
					yb[q] += v * xv
				}
				p++
			}
		}
	}
}

// DiagonalInto fills d with the diagonal entries (zero where absent),
// widened to float64, parallel over chunks.
//
//amg:hotpath
func (s *SELL32) DiagonalInto(rt *par.Runtime, d []float64) {
	if rt.Serial(s.rows) {
		s.diagonalChunks(d, 0, s.nchunks())
		return
	}
	rt.For(s.rows, func(lo, hi int) {
		c0, c1 := chunkRange(lo, hi)
		s.diagonalChunks(d, c0, c1)
	})
}

//amg:hotpath
func (s *SELL32) diagonalChunks(d []float64, c0, c1 int) {
	col, val, cnt := s.col, s.val, s.cnt
	for c := c0; c < c1; c++ {
		slot := c * SellC
		lanes := s.perm[slot:min(slot+SellC, s.rows)]
		for _, row := range lanes {
			d[row] = 0
		}
		p := int(s.chunkPtr[c])
		w := int(s.width[c])
		f := int(s.full[c])
		base := int(s.cntPtr[c])
		for j := 0; j < w; j++ {
			m := SellC
			if j >= f {
				m = int(cnt[base+j])
			}
			for _, row := range lanes[:m] {
				if col[p] == row {
					d[row] = float64(val[p])
				}
				p++
			}
		}
	}
}
