// Package partition implements multilevel graph bisection, the paper's
// stated future-work application (§VII): its conclusion proposes the
// MIS-2 aggregation of Algorithm 3 as the coarsening step of the
// multilevel partitioner of Gilbert et al. (IPDPS 2021), replacing the
// Bell-style coarsening and the more common heavy-edge matching (HEM).
//
// The package provides the full multilevel pipeline — weighted coarse
// graphs, a coarsening policy interface with MIS-2 aggregation and HEM
// policies, greedy growth bisection of the coarsest graph, and
// Fiduccia-Mattheyses-style boundary refinement during uncoarsening — so
// the coarsening schemes can be compared end to end on edge cut and
// balance, as Gilbert et al. do.
//
//amg:deterministic
package partition

import (
	"errors"
	"fmt"

	"mis2go/internal/coarsen"
	"mis2go/internal/graph"
	"mis2go/internal/hash"
)

// WGraph is a vertex- and edge-weighted undirected graph in CSR form,
// produced by collapsing a finer graph. Weights count the fine vertices
// and fine edges each coarse entity represents.
type WGraph struct {
	N      int
	RowPtr []int
	Col    []int32
	EW     []int64 // edge weight per stored arc
	VW     []int64 // vertex weight
}

// FromCSR wraps an unweighted graph with unit weights.
func FromCSR(g *graph.CSR) *WGraph {
	ew := make([]int64, len(g.Col))
	for i := range ew {
		ew[i] = 1
	}
	vw := make([]int64, g.N)
	for i := range vw {
		vw[i] = 1
	}
	return &WGraph{N: g.N, RowPtr: g.RowPtr, Col: g.Col, EW: ew, VW: vw}
}

// Structure returns the unweighted adjacency structure (shared storage).
func (wg *WGraph) Structure() *graph.CSR {
	return &graph.CSR{N: wg.N, RowPtr: wg.RowPtr, Col: wg.Col}
}

// TotalVW returns the total vertex weight.
func (wg *WGraph) TotalVW() int64 {
	t := int64(0)
	for _, w := range wg.VW {
		t += w
	}
	return t
}

// Coarsen collapses the graph according to labels (one of numAgg
// aggregates per vertex), accumulating vertex and edge weights and
// dropping intra-aggregate edges.
func (wg *WGraph) Coarsen(labels []int32, numAgg int) *WGraph {
	type key struct{ a, b int32 }
	wsum := map[key]int64{}
	vw := make([]int64, numAgg)
	for v := 0; v < wg.N; v++ {
		vw[labels[v]] += wg.VW[v]
		for p := wg.RowPtr[v]; p < wg.RowPtr[v+1]; p++ {
			w := wg.Col[p]
			if int32(v) < w { // each undirected edge once
				a, b := labels[v], labels[w]
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				wsum[key{a, b}] += wg.EW[p]
			}
		}
	}
	deg := make([]int, numAgg+1)
	//amg:order-ok degree counting is order-insensitive
	for k := range wsum {
		deg[k.a+1]++
		deg[k.b+1]++
	}
	rowPtr := make([]int, numAgg+1)
	for i := 0; i < numAgg; i++ {
		rowPtr[i+1] = rowPtr[i] + deg[i+1]
	}
	col := make([]int32, rowPtr[numAgg])
	ew := make([]int64, rowPtr[numAgg])
	fill := make([]int, numAgg)
	copy(fill, rowPtr[:numAgg])
	//amg:order-ok fill order is canonicalized by sortRows below
	for k, w := range wsum {
		col[fill[k.a]], ew[fill[k.a]] = k.b, w
		fill[k.a]++
		col[fill[k.b]], ew[fill[k.b]] = k.a, w
		fill[k.b]++
	}
	out := &WGraph{N: numAgg, RowPtr: rowPtr, Col: col, EW: ew, VW: vw}
	out.sortRows()
	return out
}

// sortRows orders each adjacency list ascending (insertion sort per row;
// rows are short), keeping EW aligned. Map iteration order above is
// nondeterministic, so this restores a canonical layout.
func (wg *WGraph) sortRows() {
	for v := 0; v < wg.N; v++ {
		lo, hi := wg.RowPtr[v], wg.RowPtr[v+1]
		for i := lo + 1; i < hi; i++ {
			c, e := wg.Col[i], wg.EW[i]
			j := i - 1
			for j >= lo && wg.Col[j] > c {
				wg.Col[j+1], wg.EW[j+1] = wg.Col[j], wg.EW[j]
				j--
			}
			wg.Col[j+1], wg.EW[j+1] = c, e
		}
	}
}

// Policy selects the coarsening scheme of the multilevel cycle.
type Policy int

const (
	// MIS2Policy coarsens with Algorithm 3 (the paper's proposal).
	MIS2Policy Policy = iota
	// HEMPolicy coarsens with greedy heavy-edge matching, the standard
	// multilevel-partitioning baseline.
	HEMPolicy
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case MIS2Policy:
		return "MIS-2"
	case HEMPolicy:
		return "HEM"
	}
	return "unknown"
}

// HEM computes a heavy-edge matching aggregation of wg: vertices are
// visited in a deterministic pseudo-random order; each unmatched vertex
// pairs with its heaviest-edge unmatched neighbor (ties to the smaller
// id). Unmatched leftovers become singletons.
func HEM(wg *WGraph) coarsen.Aggregation {
	n := wg.N
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	// Deterministic shuffle by hash priority (visiting order matters for
	// matching quality; random order avoids grid bias).
	prio := make([]uint64, n)
	for i := range prio {
		prio[i] = hash.Xorshift64Star(uint64(i) + 0x9E3779B97F4A7C15)
	}
	sortByPrio(order, prio)

	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best := int32(-1)
		var bestW int64 = -1
		for p := wg.RowPtr[v]; p < wg.RowPtr[v+1]; p++ {
			w := wg.Col[p]
			if match[w] >= 0 {
				continue
			}
			if wg.EW[p] > bestW || (wg.EW[p] == bestW && (best == -1 || w < best)) {
				best, bestW = w, wg.EW[p]
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
		} else {
			match[v] = v // singleton
		}
	}
	labels := make([]int32, n)
	numAgg := 0
	for i := range labels {
		labels[i] = -1
	}
	for v := int32(0); int(v) < n; v++ {
		if labels[v] >= 0 {
			continue
		}
		id := int32(numAgg)
		numAgg++
		labels[v] = id
		if m := match[v]; m != v && labels[m] < 0 {
			labels[m] = id
		}
	}
	return coarsen.Aggregation{Labels: labels, NumAggregates: numAgg}
}

// sortByPrio sorts ids ascending by prio (simple deterministic heapsort
// to avoid pulling package sort's interface overhead into the hot path).
func sortByPrio(ids []int32, prio []uint64) {
	less := func(a, b int32) bool {
		if prio[a] != prio[b] {
			return prio[a] < prio[b]
		}
		return a < b
	}
	n := len(ids)
	var down func(i, n int)
	down = func(i, n int) {
		for {
			c := 2*i + 1
			if c >= n {
				return
			}
			if c+1 < n && less(ids[c], ids[c+1]) {
				c++
			}
			if !less(ids[i], ids[c]) {
				return
			}
			ids[i], ids[c] = ids[c], ids[i]
			i = c
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		down(i, n)
	}
	for i := n - 1; i > 0; i-- {
		ids[0], ids[i] = ids[i], ids[0]
		down(0, i)
	}
}

// Options configures Partition.
type Options struct {
	// Policy selects the coarsening scheme (default MIS2Policy).
	Policy Policy
	// CoarsestSize stops coarsening below this many vertices
	// (default 64).
	CoarsestSize int
	// RefinePasses bounds the FM passes per level (default 8).
	RefinePasses int
	// Imbalance is the allowed part-weight imbalance fraction
	// (default 0.05: parts within 5% of perfect balance).
	Imbalance float64
	// Threads is the worker count for the MIS-2 coarsening.
	Threads int
}

func (o Options) withDefaults() Options {
	if o.CoarsestSize <= 0 {
		o.CoarsestSize = 64
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	if o.Imbalance <= 0 {
		o.Imbalance = 0.05
	}
	return o
}

// Result reports a bisection.
type Result struct {
	// Part[v] in {0,1} is the side of vertex v. Labels are int32 — the
	// same width KWay uses — so bisection results compose with k-way
	// labelings, Check, EdgeCut, and Fingerprint without conversion.
	Part []int32
	// EdgeCut is the total weight of edges crossing the cut.
	EdgeCut int64
	// Balance is max(part weight) / (total/2); 1.0 is perfect.
	Balance float64
	// Levels is the multilevel hierarchy depth used.
	Levels int
}

// Partition bisects g with the multilevel scheme: coarsen with the
// selected policy until the graph is small, bisect the coarsest graph by
// greedy region growth, then uncoarsen with boundary FM refinement at
// each level. Deterministic.
func Partition(g *graph.CSR, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if g.N < 2 {
		return Result{}, errors.New("partition: graph too small to bisect")
	}
	// Build the multilevel hierarchy.
	type level struct {
		wg     *WGraph
		labels []int32 // fine vertex -> coarse vertex (nil on coarsest)
	}
	levels := []level{{wg: FromCSR(g)}}
	for levels[len(levels)-1].wg.N > opt.CoarsestSize {
		cur := levels[len(levels)-1].wg
		var agg coarsen.Aggregation
		switch opt.Policy {
		case HEMPolicy:
			agg = HEM(cur)
		default:
			agg = coarsen.MIS2Aggregation(cur.Structure(), coarsen.Options{Threads: opt.Threads})
		}
		if agg.NumAggregates >= cur.N {
			break // no progress
		}
		levels[len(levels)-1].labels = agg.Labels
		levels = append(levels, level{wg: cur.Coarsen(agg.Labels, agg.NumAggregates)})
	}

	// Bisect the coarsest level, then project and refine upward.
	coarsest := levels[len(levels)-1].wg
	part := growBisect(coarsest)
	refine(coarsest, part, opt)
	for l := len(levels) - 2; l >= 0; l-- {
		fine := levels[l].wg
		finePart := make([]int32, fine.N)
		for v := 0; v < fine.N; v++ {
			finePart[v] = part[levels[l].labels[v]]
		}
		part = finePart
		refine(fine, part, opt)
	}

	cut := EdgeCut(levels[0].wg, part)
	return Result{
		Part:    part,
		EdgeCut: cut,
		Balance: balance(levels[0].wg, part),
		Levels:  len(levels),
	}, nil
}

// growBisect grows part 0 by weighted BFS from a pseudo-peripheral
// vertex until it holds half the total weight.
func growBisect(wg *WGraph) []int32 {
	part := make([]int32, wg.N)
	for i := range part {
		part[i] = 1
	}
	if wg.N == 0 {
		return part
	}
	target := wg.TotalVW() / 2
	var grown int64
	visited := make([]bool, wg.N)
	queue := make([]int32, 0, wg.N)
	for s := 0; s < wg.N && grown < target; s++ {
		if visited[s] {
			continue
		}
		queue = append(queue[:0], int32(s))
		visited[s] = true
		for qi := 0; qi < len(queue) && grown < target; qi++ {
			v := queue[qi]
			part[v] = 0
			grown += wg.VW[v]
			for p := wg.RowPtr[v]; p < wg.RowPtr[v+1]; p++ {
				w := wg.Col[p]
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return part
}

// refine runs FM-style passes: repeatedly move the boundary vertex with
// the best gain that keeps balance, until a pass yields no improvement.
func refine(wg *WGraph, part []int32, opt Options) {
	total := wg.TotalVW()
	maxSide := int64(float64(total) * (0.5 + opt.Imbalance/2))
	var side [2]int64
	for v := 0; v < wg.N; v++ {
		side[part[v]] += wg.VW[v]
	}
	gain := func(v int32) int64 {
		var internal, external int64
		pv := part[v]
		for p := wg.RowPtr[v]; p < wg.RowPtr[v+1]; p++ {
			if part[wg.Col[p]] == pv {
				internal += wg.EW[p]
			} else {
				external += wg.EW[p]
			}
		}
		return external - internal
	}
	for pass := 0; pass < opt.RefinePasses; pass++ {
		improved := false
		for v := int32(0); int(v) < wg.N; v++ {
			g := gain(v)
			if g <= 0 {
				continue
			}
			from := part[v]
			to := 1 - from
			if side[to]+wg.VW[v] > maxSide {
				continue
			}
			part[v] = to
			side[from] -= wg.VW[v]
			side[to] += wg.VW[v]
			improved = true
		}
		if !improved {
			break
		}
	}
}

// EdgeCut returns the total weight of edges crossing parts. It accepts
// any labeling — a bisection or a k-way partition.
func EdgeCut(wg *WGraph, part []int32) int64 {
	var cut int64
	for v := 0; v < wg.N; v++ {
		for p := wg.RowPtr[v]; p < wg.RowPtr[v+1]; p++ {
			w := wg.Col[p]
			if int32(v) < w && part[v] != part[w] {
				cut += wg.EW[p]
			}
		}
	}
	return cut
}

// balance returns max part weight over the perfect half.
func balance(wg *WGraph, part []int32) float64 {
	var side [2]int64
	for v := 0; v < wg.N; v++ {
		side[part[v]] += wg.VW[v]
	}
	m := side[0]
	if side[1] > m {
		m = side[1]
	}
	half := float64(wg.TotalVW()) / 2
	if half == 0 {
		return 1
	}
	return float64(m) / half
}

// KWayResult reports a k-way partition.
type KWayResult struct {
	// Part[v] in [0, K) is the part of vertex v.
	Part []int32
	// K is the number of parts.
	K int
	// EdgeCut is the total weight of edges crossing parts.
	EdgeCut int64
	// Balance is max part weight over the perfect share.
	Balance float64
}

// KWay partitions g into k parts (k a power of two) by recursive
// bisection, the standard multilevel approach. Deterministic.
func KWay(g *graph.CSR, k int, opt Options) (KWayResult, error) {
	if k < 2 || k&(k-1) != 0 {
		return KWayResult{}, fmt.Errorf("partition: k must be a power of two >= 2, got %d", k)
	}
	part := make([]int32, g.N)
	if err := kwayRecurse(g, part, 0, k, opt); err != nil {
		return KWayResult{}, err
	}
	wg := FromCSR(g)
	var cut int64
	for v := 0; v < wg.N; v++ {
		for p := wg.RowPtr[v]; p < wg.RowPtr[v+1]; p++ {
			w := wg.Col[p]
			if int32(v) < w && part[v] != part[w] {
				cut += wg.EW[p]
			}
		}
	}
	counts := make([]int64, k)
	for _, p := range part {
		counts[p]++
	}
	maxW := counts[0]
	for _, c := range counts[1:] {
		if c > maxW {
			maxW = c
		}
	}
	share := float64(g.N) / float64(k)
	bal := 1.0
	if share > 0 {
		bal = float64(maxW) / share
	}
	return KWayResult{Part: part, K: k, EdgeCut: cut, Balance: bal}, nil
}

// kwayRecurse bisects the subgraph currently labeled base and assigns
// halves to [base, base+k/2) and [base+k/2, base+k).
func kwayRecurse(g *graph.CSR, part []int32, base int32, k int, opt Options) error {
	if k == 1 {
		return nil
	}
	keep := make([]bool, g.N)
	any := false
	for v := 0; v < g.N; v++ {
		if part[v] == base {
			keep[v] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	sub, _, toOrig := g.InducedSubgraph(keep)
	if sub.N < 2 {
		return nil // too small to split further; leave in the low half
	}
	res, err := Partition(sub, opt)
	if err != nil {
		return err
	}
	half := int32(k / 2)
	for s, p := range res.Part {
		if p == 1 {
			part[toOrig[s]] = base + half
		}
	}
	if err := kwayRecurse(g, part, base, k/2, opt); err != nil {
		return err
	}
	return kwayRecurse(g, part, base+half, k/2, opt)
}

// Check validates a k-way labeling: one label per vertex, every label
// in [0, k), and — when the graph has at least k vertices — no empty
// part. A bisection is the k = 2 case. Errors are descriptive (which
// vertex, which label) in the style of the order package's permutation
// checks, so a bad labeling fails loudly at the boundary instead of
// corrupting a downstream subdomain extraction.
func Check(wg *WGraph, part []int32, k int) error {
	if k < 1 {
		return fmt.Errorf("partition: part count %d, want at least 1", k)
	}
	if len(part) != wg.N {
		return fmt.Errorf("partition: %d labels for %d vertices", len(part), wg.N)
	}
	count := make([]int64, k)
	for v, p := range part {
		if p < 0 || int(p) >= k {
			return fmt.Errorf("partition: label part[%d] = %d out of range [0, %d)", v, p, k)
		}
		count[p]++
	}
	if wg.N >= k {
		for p, c := range count {
			if c == 0 {
				return fmt.Errorf("partition: part %d of %d is empty", p, k)
			}
		}
	}
	return nil
}

// Fingerprint computes a deterministic 64-bit fingerprint of a k-way
// partition: the part count, the vertex count, and every label in
// vertex order, chained through the same mixing steps as
// hash.PatternFingerprint. Sharded cache keys compose this with the
// operator's pattern fingerprint, so "same pattern, same partition"
// re-setup can key per-subdomain state without serializing the labels.
// Allocation-free and O(vertices).
func Fingerprint(k int, part []int32) uint64 {
	h := hash.Combine(hash.FingerprintSeed, uint64(k))
	h = hash.Combine(h, uint64(len(part)))
	for _, p := range part {
		h = hash.Combine(h, uint64(uint32(p)))
	}
	return hash.Finalize(h)
}

// Fingerprint returns the deterministic fingerprint of the k-way result
// (see the package-level Fingerprint).
func (r KWayResult) Fingerprint() uint64 { return Fingerprint(r.K, r.Part) }
