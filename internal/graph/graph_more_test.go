package graph

import (
	"testing"
	"testing/quick"
)

func completeGraph(n int) *CSR {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: int32(i), V: int32(j)})
		}
	}
	return FromEdges(n, edges)
}

func starGraph(n int) *CSR {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: 0, V: int32(i)})
	}
	return FromEdges(n, edges)
}

func TestSquareOfStarIsComplete(t *testing.T) {
	// Every leaf of a star is within distance 2 of every other leaf.
	g := starGraph(8)
	sq := g.Square()
	for u := int32(0); u < 8; u++ {
		if sq.Degree(u) != 7 {
			t.Fatalf("square of star: degree(%d) = %d, want 7", u, sq.Degree(u))
		}
	}
}

func TestSquareOfCompleteIsComplete(t *testing.T) {
	g := completeGraph(6)
	sq := g.Square()
	if sq.NumEdges() != g.NumEdges() {
		t.Fatalf("square of K6 changed edges: %d vs %d", sq.NumEdges(), g.NumEdges())
	}
}

func TestSquareEmptyAndSingleton(t *testing.T) {
	if sq := FromEdges(0, nil).Square(); sq.N != 0 {
		t.Fatal("square of empty graph")
	}
	if sq := FromEdges(3, nil).Square(); sq.NumEdges() != 0 {
		t.Fatal("square of edgeless graph has edges")
	}
}

func TestSquareIdempotentOnDiameter2(t *testing.T) {
	// If diam(G) <= 2, G² is complete, and squaring again is a no-op.
	g := starGraph(10)
	sq := g.Square()
	sq2 := sq.Square()
	if sq2.NumEdges() != sq.NumEdges() {
		t.Fatal("square of complete graph not idempotent")
	}
}

func TestInducedSubgraphNoneAndAll(t *testing.T) {
	g := pathGraph(6)
	sub, _, toOrig := g.InducedSubgraph(make([]bool, 6))
	if sub.N != 0 || len(toOrig) != 0 {
		t.Fatal("empty induced subgraph wrong")
	}
	all := make([]bool, 6)
	for i := range all {
		all[i] = true
	}
	sub, _, _ = g.InducedSubgraph(all)
	if sub.N != 6 || sub.NumEdges() != g.NumEdges() {
		t.Fatal("full induced subgraph differs from original")
	}
}

func TestConnectedComponentsGridIsOne(t *testing.T) {
	g := randomGraph(50, 500, 3) // dense: almost surely connected
	_, num := g.ConnectedComponents()
	if num != 1 {
		t.Fatalf("dense random graph has %d components", num)
	}
	labels, num2 := FromEdges(5, nil).ConnectedComponents()
	if num2 != 5 {
		t.Fatalf("edgeless graph: %d components, want 5", num2)
	}
	seen := map[int32]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Fatal("labels not distinct for isolated vertices")
		}
		seen[l] = true
	}
}

func TestFromEdgesStressDedupe(t *testing.T) {
	// Insert the same edge many times in both orientations.
	edges := make([]Edge, 0, 1000)
	for i := 0; i < 500; i++ {
		edges = append(edges, Edge{U: 0, V: 1}, Edge{U: 1, V: 0})
	}
	g := FromEdges(2, edges)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("dedupe failed: %d arcs", g.NumEdges())
	}
}

func TestDegreeSumEqualsArcs(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%100)
		g := randomGraph(n, 4*n, seed)
		sum := 0
		for v := 0; v < g.N; v++ {
			sum += g.Degree(int32(v))
		}
		return sum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHasEdgeSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%60)
		g := randomGraph(n, 3*n, seed)
		for u := int32(0); int(u) < n; u++ {
			for v := int32(0); int(v) < n; v++ {
				if g.HasEdge(u, v) != g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteGraphStats(t *testing.T) {
	g := completeGraph(9)
	if g.MaxDegree() != 8 || g.AvgDegree() != 8 {
		t.Fatalf("K9 degrees wrong: max %d avg %f", g.MaxDegree(), g.AvgDegree())
	}
	if g.NumEdges() != 72 {
		t.Fatalf("K9 arcs = %d", g.NumEdges())
	}
}

func TestDistanceLeq2OnStar(t *testing.T) {
	g := starGraph(5)
	// All pairs are within distance 2 through the hub.
	for u := int32(0); u < 5; u++ {
		for v := int32(0); v < 5; v++ {
			if !g.DistanceLeq2(u, v) {
				t.Fatalf("star: (%d,%d) reported > 2 apart", u, v)
			}
		}
	}
}
