package hash

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestXorshiftNonZeroPreserving(t *testing.T) {
	// xorshift and xorshift* are bijections on nonzero inputs.
	f := func(x uint64) bool {
		if x == 0 {
			return Xorshift64(0) == 0
		}
		return Xorshift64(x) != 0 && Xorshift64Star(x) != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorshiftDeterministic(t *testing.T) {
	for _, x := range []uint64{1, 42, 1 << 40, ^uint64(0)} {
		if Xorshift64(x) != Xorshift64(x) || Xorshift64Star(x) != Xorshift64Star(x) {
			t.Fatalf("hash of %d not deterministic", x)
		}
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{XorStar: "Xor* Hash", Xor: "Xor Hash", Fixed: "Fixed"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind must stringify as unknown")
	}
}

func TestFixedIgnoresIteration(t *testing.T) {
	for v := uint64(0); v < 100; v++ {
		p0 := Fixed.Priority(0, v)
		for iter := uint64(1); iter < 20; iter++ {
			if Fixed.Priority(iter, v) != p0 {
				t.Fatalf("Fixed priority changed with iteration for v=%d", v)
			}
		}
	}
}

func TestRehashingKindsVaryByIteration(t *testing.T) {
	for _, k := range []Kind{XorStar, Xor} {
		same := 0
		for v := uint64(0); v < 200; v++ {
			if k.Priority(0, v) == k.Priority(1, v) {
				same++
			}
		}
		if same > 2 {
			t.Fatalf("%v: %d/200 priorities identical between iterations", k, same)
		}
	}
}

func TestRehashes(t *testing.T) {
	if !XorStar.Rehashes() || !Xor.Rehashes() || Fixed.Rehashes() {
		t.Fatal("Rehashes flags wrong")
	}
}

func TestPriorityBitBalance(t *testing.T) {
	// Sanity: xorshift* output bits should be roughly balanced over a
	// sequential input range (this is the statistical independence the
	// paper's §V-A depends on).
	n := 4096
	ones := 0
	for v := 0; v < n; v++ {
		ones += bits.OnesCount64(XorStar.Priority(3, uint64(v)))
	}
	mean := float64(ones) / float64(n)
	if mean < 28 || mean > 36 {
		t.Fatalf("mean popcount %.2f, want near 32", mean)
	}
}

func TestPatternFingerprintSensitivity(t *testing.T) {
	ptr := []int{0, 2, 4, 5}
	col := []int32{0, 1, 1, 2, 2}
	base := PatternFingerprint(3, 3, ptr, col)
	if base != PatternFingerprint(3, 3, ptr, col) {
		t.Fatal("fingerprint not deterministic")
	}
	// Copies with identical contents fingerprint identically.
	if got := PatternFingerprint(3, 3, append([]int(nil), ptr...), append([]int32(nil), col...)); got != base {
		t.Fatal("fingerprint depends on slice identity, not contents")
	}
	// Any single structural change must flip the fingerprint.
	perturbed := []uint64{
		PatternFingerprint(4, 3, ptr, col),
		PatternFingerprint(3, 4, ptr, col),
		PatternFingerprint(3, 3, []int{0, 1, 4, 5}, col),
		PatternFingerprint(3, 3, ptr, []int32{0, 2, 1, 2, 2}),
		PatternFingerprint(3, 3, ptr, col[:4]),
	}
	for i, fp := range perturbed {
		if fp == base {
			t.Fatalf("perturbation %d did not change the fingerprint", i)
		}
	}
}

func TestPatternFingerprintValueBlind(t *testing.T) {
	// The fingerprint reads only the pattern inputs; calling it twice on
	// the same pattern must agree regardless of what values a caller
	// stores alongside. (The API takes no values — this pins the empty
	// and single-row edge cases.)
	if PatternFingerprint(0, 0, []int{0}, nil) == PatternFingerprint(1, 1, []int{0, 1}, []int32{0}) {
		t.Fatal("trivial patterns collide")
	}
	if PatternFingerprint(0, 0, []int{0}, nil) != PatternFingerprint(0, 0, []int{0}, []int32{}) {
		t.Fatal("nil vs empty column slice must fingerprint identically")
	}
}

func TestPriorityDistinctAcrossVertices(t *testing.T) {
	seen := make(map[uint64]uint64)
	for v := uint64(0); v < 100000; v++ {
		p := XorStar.Priority(7, v)
		if prev, dup := seen[p]; dup {
			t.Fatalf("priority collision between v=%d and v=%d (64-bit, should be absent at this scale)", prev, v)
		}
		seen[p] = v
	}
}
