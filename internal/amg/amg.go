// Package amg implements smoothed-aggregation algebraic multigrid
// (SA-AMG), the solver substrate of the paper's Table V experiment: a
// hierarchy built by repeatedly aggregating the matrix graph (with a
// pluggable aggregation scheme such as Algorithm 3), forming the smoothed
// prolongator P = (I - omega D^{-1} A) P0, and the Galerkin coarse
// operator R A P, solved by damped-Jacobi-smoothed V-cycles with a dense
// LU factorization on the coarsest level.
package amg

import (
	"errors"
	"fmt"
	"math"

	"mis2go/internal/coarsen"
	"mis2go/internal/graph"
	"mis2go/internal/gs"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// AggregateFunc produces an aggregation of the given matrix graph.
type AggregateFunc func(g *graph.CSR) coarsen.Aggregation

// Smoother selects the level relaxation method.
type Smoother int

const (
	// SmootherJacobi is damped Jacobi, the paper's Table V setup.
	SmootherJacobi Smoother = iota
	// SmootherChebyshev is a Chebyshev polynomial smoother (the common
	// MueLu alternative; an extension beyond the paper's configuration).
	SmootherChebyshev
	// SmootherPointSGS relaxes with point multicolor symmetric
	// Gauss-Seidel (§III-C), set up per level during Build.
	SmootherPointSGS
	// SmootherClusterSGS relaxes with cluster multicolor symmetric
	// Gauss-Seidel (Algorithm 4), clusters from each level's aggregation.
	SmootherClusterSGS
)

// Options configures hierarchy construction. Zero values select the
// defaults noted on each field.
type Options struct {
	// Aggregate selects the aggregation scheme; default is Algorithm 3
	// (coarsen.MIS2Aggregation).
	Aggregate AggregateFunc
	// MaxLevels caps the hierarchy depth (default 10).
	MaxLevels int
	// MinCoarseSize stops coarsening once a level is this small
	// (default 200); that level is solved directly.
	MinCoarseSize int
	// UnsmoothedProlongator disables prolongator smoothing (plain
	// aggregation AMG instead of SA-AMG).
	UnsmoothedProlongator bool
	// JacobiDamping is the damping factor for the level smoother
	// (default 2/3).
	JacobiDamping float64
	// PreSweeps and PostSweeps are the smoothing sweep counts per
	// V-cycle (default 2 and 2: "2 sweeps of the Jacobi method" as in
	// Table V's setup).
	PreSweeps, PostSweeps int
	// Smoother selects the relaxation method (default SmootherJacobi).
	Smoother Smoother
	// ChebyshevDegree is the polynomial degree when Smoother is
	// SmootherChebyshev (default 2). PreSweeps/PostSweeps then count
	// polynomial applications.
	ChebyshevDegree int
	// ChebyshevRatio is the eigenvalue interval ratio
	// lambda_max / lambda_min targeted by the polynomial (default 20, as
	// in MueLu).
	ChebyshevRatio float64
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
}

func (o Options) withDefaults() Options {
	if o.Aggregate == nil {
		threads := o.Threads
		o.Aggregate = func(g *graph.CSR) coarsen.Aggregation {
			return coarsen.MIS2Aggregation(g, coarsen.Options{Threads: threads})
		}
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 10
	}
	if o.MinCoarseSize <= 0 {
		o.MinCoarseSize = 200
	}
	if o.JacobiDamping == 0 {
		o.JacobiDamping = 2.0 / 3.0
	}
	if o.PreSweeps == 0 {
		o.PreSweeps = 2
	}
	if o.PostSweeps == 0 {
		o.PostSweeps = 2
	}
	if o.ChebyshevDegree <= 0 {
		o.ChebyshevDegree = 2
	}
	if o.ChebyshevRatio <= 1 {
		o.ChebyshevRatio = 20
	}
	return o
}

// Level is one rung of the hierarchy.
type Level struct {
	A    *sparse.Matrix
	P    *sparse.Matrix // prolongator to this level from the next coarser (nil on coarsest)
	R    *sparse.Matrix // restriction (P^T)
	Agg  coarsen.Aggregation
	dinv []float64
	// rho is the estimated spectral radius of D^{-1}A on this level,
	// used by prolongator smoothing and the Chebyshev smoother.
	rho float64
	// gsOp is the multicolor Gauss-Seidel operator when an SGS smoother
	// is selected (nil otherwise).
	gsOp *gs.Multicolor
	// Scratch vectors sized to this level.
	x, b, r, d []float64
}

// Hierarchy is a built SA-AMG preconditioner. It implements
// krylov.Preconditioner via Precondition (one V-cycle, zero initial
// guess). Not safe for concurrent use.
type Hierarchy struct {
	Levels []*Level
	coarse *sparse.Dense
	opt    Options
	rt     *par.Runtime
	// solveR is the fine-level residual scratch of Solve, preallocated
	// so stationary iterations allocate nothing.
	solveR []float64
}

// addInto computes x += d elementwise.
func addInto(rt *par.Runtime, x, d []float64) {
	n := len(x)
	if rt.Serial(n) {
		for i := 0; i < n; i++ {
			x[i] += d[i]
		}
		return
	}
	rt.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += d[i]
		}
	})
}

// Build constructs the hierarchy for SPD matrix a.
func Build(a *sparse.Matrix, opt Options) (*Hierarchy, error) {
	opt = opt.withDefaults()
	if a.Rows != a.Cols {
		return nil, errors.New("amg: matrix must be square")
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("amg: invalid matrix: %w", err)
	}
	rt := par.New(opt.Threads)
	h := &Hierarchy{opt: opt, rt: rt}

	cur := a
	for level := 0; ; level++ {
		l := &Level{A: cur}
		l.dinv = make([]float64, cur.Rows)
		cur.DiagonalInto(rt, l.dinv)
		for i, d := range l.dinv {
			if d == 0 {
				return nil, fmt.Errorf("amg: zero diagonal at row %d of level %d", i, level)
			}
			l.dinv[i] = 1 / d
		}
		l.x = make([]float64, cur.Rows)
		l.b = make([]float64, cur.Rows)
		l.r = make([]float64, cur.Rows)
		l.d = make([]float64, cur.Rows)
		l.rho = estimateSpectralRadius(rt, cur, l.dinv, 15)
		switch opt.Smoother {
		case SmootherPointSGS:
			op, err := gs.NewPoint(cur, opt.Threads)
			if err != nil {
				return nil, fmt.Errorf("amg: level %d point SGS setup: %w", level, err)
			}
			l.gsOp = op
		case SmootherClusterSGS:
			agg := coarsen.MIS2Aggregation(cur.GraphWith(rt), coarsen.Options{Threads: opt.Threads})
			op, err := gs.NewCluster(cur, agg, opt.Threads)
			if err != nil {
				return nil, fmt.Errorf("amg: level %d cluster SGS setup: %w", level, err)
			}
			l.gsOp = op
		}
		h.Levels = append(h.Levels, l)

		if cur.Rows <= opt.MinCoarseSize || level+1 >= opt.MaxLevels {
			break
		}

		g := cur.GraphWith(rt)
		agg := opt.Aggregate(g)
		if err := coarsen.Check(g, agg); err != nil {
			return nil, fmt.Errorf("amg: level %d aggregation: %w", level, err)
		}
		if agg.NumAggregates >= cur.Rows {
			break // no coarsening progress; stop here
		}
		l.Agg = agg

		p := coarsen.Prolongator(agg)
		if !opt.UnsmoothedProlongator {
			var err error
			p, err = smoothProlongator(rt, cur, l.dinv, l.rho, p)
			if err != nil {
				return nil, fmt.Errorf("amg: level %d prolongator smoothing: %w", level, err)
			}
		}
		r := p.TransposeWith(rt)
		ac, err := sparse.RAP(rt, r, cur, p)
		if err != nil {
			return nil, fmt.Errorf("amg: level %d Galerkin product: %w", level, err)
		}
		l.P, l.R = p, r
		cur = ac
	}

	// Factor the coarsest level densely.
	last := h.Levels[len(h.Levels)-1]
	dense, err := last.A.ToDense()
	if err != nil {
		return nil, err
	}
	if err := dense.Factorize(); err != nil {
		return nil, fmt.Errorf("amg: coarse factorization: %w", err)
	}
	h.coarse = dense
	return h, nil
}

// smoothProlongator computes P = (I - omega D^{-1} A) P0 with
// omega = (4/3) / rho(D^{-1} A), rho estimated by power iteration. The
// row scaling, SpGEMM, and sparse add run as one blocked Gustavson pass
// (sparse.SmoothProlongator) with no intermediate matrices.
func smoothProlongator(rt *par.Runtime, a *sparse.Matrix, dinv []float64, rho float64, p0 *sparse.Matrix) (*sparse.Matrix, error) {
	if rho <= 0 {
		return p0, nil
	}
	omega := (4.0 / 3.0) / rho
	return sparse.SmoothProlongator(rt, a, p0, dinv, omega)
}

// estimateSpectralRadius runs a deterministic power iteration on D^{-1}A.
func estimateSpectralRadius(rt *par.Runtime, a *sparse.Matrix, dinv []float64, iters int) float64 {
	n := a.Rows
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		// Deterministic pseudo-random start vector.
		x[i] = 0.5 + float64((i*2654435761)%1024)/2048.0
	}
	lambda := 0.0
	for it := 0; it < iters; it++ {
		a.SpMV(rt, x, y)
		norm := 0.0
		for i := range y {
			y[i] *= dinv[i]
			if v := y[i]; v > norm {
				norm = v
			} else if -v > norm {
				norm = -v
			}
		}
		if norm == 0 {
			return 0
		}
		lambda = norm
		inv := 1 / norm
		for i := range y {
			x[i] = y[i] * inv
		}
	}
	return lambda
}

// NumLevels returns the hierarchy depth.
func (h *Hierarchy) NumLevels() int { return len(h.Levels) }

// OperatorComplexity is the sum of nnz over all level operators divided by
// nnz of the fine operator — the standard AMG grid quality metric.
func (h *Hierarchy) OperatorComplexity() float64 {
	total := 0
	for _, l := range h.Levels {
		total += l.A.NNZ()
	}
	return float64(total) / float64(h.Levels[0].A.NNZ())
}

// Precondition applies one V-cycle with zero initial guess: z ≈ A^{-1} r.
func (h *Hierarchy) Precondition(r, z []float64) {
	for i := range z {
		z[i] = 0
	}
	copy(h.Levels[0].b, r)
	h.vcycle(0)
	copy(z, h.Levels[0].x)
}

// Solve runs stationary V-cycle iterations until the residual drops below
// tol*||b|| or maxIter cycles; mainly for tests and examples (use CG with
// Precondition for production solves).
func (h *Hierarchy) Solve(b, x []float64, tol float64, maxIter int) (int, float64) {
	n := h.Levels[0].A.Rows
	if cap(h.solveR) < n {
		h.solveR = make([]float64, n)
	}
	r := h.solveR[:n]
	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	for it := 0; it < maxIter; it++ {
		h.Levels[0].A.SpMVResidual(h.rt, b, x, r)
		rel := norm2(r) / bnorm
		if rel < tol {
			return it, rel
		}
		copy(h.Levels[0].b, r)
		h.vcycle(0)
		addInto(h.rt, x, h.Levels[0].x)
	}
	h.Levels[0].A.SpMVResidual(h.rt, b, x, r)
	return maxIter, norm2(r) / bnorm
}

// vcycle runs one V-cycle on level l using l.b as right-hand side,
// leaving the correction in l.x. The level passes are fused: the
// residual's elementwise subtraction rides the SpMV traversal
// (SpMVResidual) feeding the restriction directly, and the coarse-grid
// correction rides the prolongation traversal (SpMVAdd) feeding the
// post-smoother — eliminating two full-vector passes per level relative
// to the unfused cycle, with bitwise-identical results.
func (h *Hierarchy) vcycle(level int) {
	l := h.Levels[level]
	if level == len(h.Levels)-1 {
		h.coarse.Solve(l.b, l.x)
		return
	}
	for i := range l.x {
		l.x[i] = 0
	}
	h.smooth(l, h.opt.PreSweeps, true)
	// Fused residual + restriction: one traversal of A writes
	// r = b - A x, which the R traversal consumes immediately.
	l.A.SpMVResidual(h.rt, l.b, l.x, l.r)
	next := h.Levels[level+1]
	l.R.SpMV(h.rt, l.r, next.b)
	h.vcycle(level + 1)
	// Fused prolongation + correction: x += P e_c in one traversal,
	// handing the corrected iterate straight to the post-smoother.
	l.P.SpMVAdd(h.rt, next.x, l.x)
	h.smooth(l, h.opt.PostSweeps, false)
}

// smooth dispatches to the configured relaxation method. xZero tells the
// smoother the iterate is exactly zero on entry (the pre-smoothing
// position of the V-cycle), enabling the first-sweep shortcut.
func (h *Hierarchy) smooth(l *Level, sweeps int, xZero bool) {
	switch h.opt.Smoother {
	case SmootherChebyshev:
		for s := 0; s < sweeps; s++ {
			h.chebyshev(l)
		}
	case SmootherPointSGS, SmootherClusterSGS:
		l.gsOp.Apply(l.b, l.x, sweeps, true)
	default:
		h.jacobi(l, sweeps, xZero)
	}
}

// chebyshev applies one Chebyshev polynomial of the configured degree to
// l.A x = l.b, updating l.x in place. The polynomial targets the interval
// [rho/ratio, 1.1*rho] of D^{-1}A eigenvalues, as in MueLu/Ifpack2.
func (h *Hierarchy) chebyshev(l *Level) {
	n := l.A.Rows
	rt := h.rt
	lmax := 1.1 * l.rho
	lmin := l.rho / h.opt.ChebyshevRatio
	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2
	sigma := theta / delta
	rhoOld := 1 / sigma

	// r = b - A x ; d = Dinv r / theta
	l.A.SpMV(rt, l.x, l.r)
	if rt.Serial(n) {
		chebInitRange(l, theta, 0, n)
	} else {
		rt.For(n, func(lo, hi int) { chebInitRange(l, theta, lo, hi) })
	}
	for k := 1; k < h.opt.ChebyshevDegree; k++ {
		addInto(rt, l.x, l.d)
		// Recompute the residual against the updated iterate (one extra
		// SpMV per degree, robust against drift).
		l.A.SpMV(rt, l.x, l.r)
		rhoNew := 1 / (2*sigma - rhoOld)
		coef1 := rhoNew * rhoOld
		coef2 := 2 * rhoNew / delta
		if rt.Serial(n) {
			chebStepRange(l, coef1, coef2, 0, n)
		} else {
			rt.For(n, func(lo, hi int) { chebStepRange(l, coef1, coef2, lo, hi) })
		}
		rhoOld = rhoNew
	}
	addInto(rt, l.x, l.d)
}

func chebInitRange(l *Level, theta float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		l.r[i] = l.b[i] - l.r[i]
		l.d[i] = l.dinv[i] * l.r[i] / theta
	}
}

func chebStepRange(l *Level, coef1, coef2 float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		r := l.b[i] - l.r[i]
		l.d[i] = coef1*l.d[i] + coef2*l.dinv[i]*r
	}
}

// jacobi runs damped Jacobi sweeps on l.A x = l.b, leaving the result in
// l.x. Each sweep is a single fused traversal of A: the row product, the
// damped-diagonal update, and the write of the new iterate happen per
// row, ping-ponging between l.x and the l.d scratch instead of staging
// the product in l.r (Jacobi needs the full old iterate, so the new one
// goes to the other buffer — in-place would turn rows into Gauss-Seidel
// updates and break determinism). When xZero is set the first sweep
// skips the traversal entirely: A*0 is exactly zero, so the sweep
// reduces to x = omega*Dinv*b, bitwise identical to the general form.
func (h *Hierarchy) jacobi(l *Level, sweeps int, xZero bool) {
	n := l.A.Rows
	omega := h.opt.JacobiDamping
	x, xn := l.x, l.d
	for s := 0; s < sweeps; s++ {
		// src/dst are loop-local copies: the closures below must not
		// capture the reassigned x/xn, which would box them on the heap
		// even on the closure-free serial path.
		src, dst := x, xn
		if xZero && s == 0 {
			if h.rt.Serial(n) {
				jacobiZeroRange(l, omega, dst, 0, n)
			} else {
				h.rt.For(n, func(lo, hi int) { jacobiZeroRange(l, omega, dst, lo, hi) })
			}
		} else {
			if h.rt.Serial(n) {
				jacobiFusedRange(l, omega, src, dst, 0, n)
			} else {
				h.rt.For(n, func(lo, hi int) { jacobiFusedRange(l, omega, src, dst, lo, hi) })
			}
		}
		x, xn = xn, x
	}
	if sweeps%2 == 1 {
		// The final iterate landed in the scratch buffer; swap the level's
		// slice headers so l.x names it (both are level-sized scratch).
		l.x, l.d = x, xn
	}
}

// jacobiFusedRange computes dst[i] = src[i] + omega*dinv[i]*(b[i] - (A src)[i])
// for rows [lo, hi) in one traversal, with the same unrolled
// dual-accumulator product kernel as SpMV.
func jacobiFusedRange(l *Level, omega float64, src, dst []float64, lo, hi int) {
	a := l.A
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		start, end := rp[i], rp[i+1]
		cols := a.Col[start:end]
		vals := a.Val[start:end]
		var s0, s1 float64
		k := 0
		for ; k+4 <= len(cols); k += 4 {
			s0 += vals[k]*src[cols[k]] + vals[k+1]*src[cols[k+1]]
			s1 += vals[k+2]*src[cols[k+2]] + vals[k+3]*src[cols[k+3]]
		}
		for ; k < len(cols); k++ {
			s0 += vals[k] * src[cols[k]]
		}
		dst[i] = src[i] + omega*l.dinv[i]*(l.b[i]-(s0+s1))
	}
}

// jacobiZeroRange is the first pre-smoothing sweep with a zero iterate:
// dst = omega*Dinv*b without touching A.
func jacobiZeroRange(l *Level, omega float64, dst []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = omega * l.dinv[i] * l.b[i]
	}
}

func norm2(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}
