//go:build !race

package mis2go

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
