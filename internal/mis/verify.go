// Validity checking for distance-2 maximal independent sets.
package mis

import (
	"fmt"

	"mis2go/internal/graph"
)

// CheckMIS2 verifies that set is a valid distance-2 maximal independent
// set of g: no two members within distance 2 (independence) and every
// vertex within distance 2 of a member (maximality). Returns nil when
// valid. O(V + E·maxdeg) time.
func CheckMIS2(g *graph.CSR, set []int32) error {
	in := make([]bool, g.N)
	for _, v := range set {
		if v < 0 || int(v) >= g.N {
			return fmt.Errorf("mis: set member %d out of range", v)
		}
		if in[v] {
			return fmt.Errorf("mis: duplicate set member %d", v)
		}
		in[v] = true
	}
	// Independence: for each member v, no member at distance 1 or 2.
	for _, v := range set {
		for _, w := range g.Neighbors(v) {
			if in[w] {
				return fmt.Errorf("mis: members %d and %d are adjacent", v, w)
			}
			for _, x := range g.Neighbors(w) {
				if x != v && in[x] {
					return fmt.Errorf("mis: members %d and %d at distance 2 via %d", v, x, w)
				}
			}
		}
	}
	// Maximality: every vertex is within distance 2 of a member.
	// Two relaxation sweeps from members cover radius 2.
	covered := make([]bool, g.N)
	for _, v := range set {
		covered[v] = true
	}
	for sweep := 0; sweep < 2; sweep++ {
		next := make([]bool, g.N)
		copy(next, covered)
		for v := int32(0); int(v) < g.N; v++ {
			if covered[v] {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if covered[w] {
					next[v] = true
					break
				}
			}
		}
		covered = next
	}
	for v := 0; v < g.N; v++ {
		if !covered[v] {
			return fmt.Errorf("mis: vertex %d is not within distance 2 of any member", v)
		}
	}
	return nil
}

// CheckMISK verifies that set is a valid distance-k maximal independent
// set of g, for any k >= 1, by bounded BFS. O(|set| * (V+E)) time —
// intended for tests and validation, not production-sized graphs.
func CheckMISK(g *graph.CSR, set []int32, k int) error {
	if k < 1 {
		return fmt.Errorf("mis: invalid distance %d", k)
	}
	in := make([]bool, g.N)
	for _, v := range set {
		if v < 0 || int(v) >= g.N {
			return fmt.Errorf("mis: set member %d out of range", v)
		}
		if in[v] {
			return fmt.Errorf("mis: duplicate set member %d", v)
		}
		in[v] = true
	}
	// dist[v] = distance to the nearest set member, capped at k+1.
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = k + 1
	}
	queue := make([]int32, 0, len(set))
	for _, v := range set {
		dist[v] = 0
		queue = append(queue, v)
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		if dist[v] == k {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if dist[v]+1 < dist[w] {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	// Independence: a member with another member within distance <= k
	// would have been relaxed below its own 0... members always have
	// dist 0, so check explicitly: BFS from each member must not reach
	// another member within k steps.
	for _, s := range set {
		if err := bfsNoMemberWithin(g, s, in, k); err != nil {
			return err
		}
	}
	// Maximality: every vertex within distance k of a member.
	for v := 0; v < g.N; v++ {
		if dist[v] > k {
			return fmt.Errorf("mis: vertex %d farther than %d from every member", v, k)
		}
	}
	return nil
}

// bfsNoMemberWithin checks no other set member lies within distance k of s.
func bfsNoMemberWithin(g *graph.CSR, s int32, in []bool, k int) error {
	dist := map[int32]int{s: 0}
	queue := []int32{s}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		if dist[v] == k {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if _, seen := dist[w]; seen {
				continue
			}
			dist[w] = dist[v] + 1
			if in[w] {
				return fmt.Errorf("mis: members %d and %d within distance %d", s, w, dist[w])
			}
			queue = append(queue, w)
		}
	}
	return nil
}

// CheckMIS1 verifies that set is a valid distance-1 maximal independent set.
func CheckMIS1(g *graph.CSR, set []int32) error {
	in := make([]bool, g.N)
	for _, v := range set {
		if v < 0 || int(v) >= g.N {
			return fmt.Errorf("mis: set member %d out of range", v)
		}
		in[v] = true
	}
	for _, v := range set {
		for _, w := range g.Neighbors(v) {
			if in[w] {
				return fmt.Errorf("mis: members %d and %d are adjacent", v, w)
			}
		}
	}
	for v := int32(0); int(v) < g.N; v++ {
		if in[v] {
			continue
		}
		free := true
		for _, w := range g.Neighbors(v) {
			if in[w] {
				free = false
				break
			}
		}
		if free {
			return fmt.Errorf("mis: vertex %d could be added (not maximal)", v)
		}
	}
	return nil
}
