// Command amgserve exposes the concurrent solve service over HTTP: a
// JSON solve endpoint backed by the fingerprint-keyed hierarchy cache
// and request-coalescing batcher, plus a plaintext metrics endpoint.
//
//	amgserve -addr :8080 &
//	curl -s localhost:8080/solve -d '{"rows":2,"rowptr":[0,1,2],"col":[0,1],"val":[4,4],"b":[1,2]}'
//	curl -s localhost:8080/metrics
//
// POST /solve accepts a CSR matrix with one right-hand side ("b") or
// several ("bs") and returns the solution(s), per-column solver stats,
// and what the request paid at the hierarchy cache ("build", "refresh",
// "reuse", or "collision"). Repeated solves with the same sparsity
// pattern pay only a numeric refresh; identical matrices pay nothing;
// concurrent requests against one operator are coalesced into batched
// CG solves (watch amgserve_batched_rhs_ratio).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/serve"
	"mis2go/internal/sparse"
)

// solveRequest is the JSON shape of POST /solve: a CSR matrix (cols
// defaults to rows) and one or more right-hand sides.
type solveRequest struct {
	Rows   int         `json:"rows"`
	Cols   int         `json:"cols,omitempty"`
	RowPtr []int       `json:"rowptr"`
	Col    []int32     `json:"col"`
	Val    []float64   `json:"val"`
	B      []float64   `json:"b,omitempty"`
	Bs     [][]float64 `json:"bs,omitempty"`
}

// columnResult is one solved right-hand side.
type columnResult struct {
	X           []float64 `json:"x"`
	Iterations  int       `json:"iterations"`
	RelResidual float64   `json:"relres"`
	Converged   bool      `json:"converged"`
}

// solveResponse is the JSON shape of a solve that produced results.
type solveResponse struct {
	Outcome string         `json:"outcome"`
	Batched int            `json:"batched"`
	Columns []columnResult `json:"columns"`
	// X mirrors Columns[0].X for single-RHS requests whose column
	// converged, so the common case stays a one-field read; an
	// unconverged iterate is never surfaced through the convenience
	// field.
	X []float64 `json:"x,omitempty"`
	// Error carries the solver error when some column did not converge;
	// the response status is then 422 and the per-column results and
	// stats are still included.
	Error string `json:"error,omitempty"`
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 8, "hierarchy cache capacity (distinct sparsity patterns)")
	window := flag.Duration("window", 200*time.Microsecond, "batching window for coalescing same-operator requests (negative disables)")
	maxBatch := flag.Int("maxbatch", 8, "max right-hand sides coalesced into one batched CG call")
	inflight := flag.Int("inflight", 0, "max in-flight requests, 0 = 4*GOMAXPROCS (backpressure bound)")
	maxBody := flag.Int64("maxbody", 512<<20, "max /solve request body bytes")
	tol := flag.Float64("tol", 1e-8, "relative residual tolerance")
	maxIter := flag.Int("maxiter", 500, "CG iteration cap")
	threads := flag.Int("threads", 0, "solver worker count, 0 = all cores")
	flag.Parse()

	svc := serve.New(serve.Config{
		AMG:           amg.Options{Threads: *threads},
		Tol:           *tol,
		MaxIter:       *maxIter,
		CacheCapacity: *cache,
		BatchWindow:   *window,
		MaxBatch:      *maxBatch,
		MaxInFlight:   *inflight,
		Threads:       *threads,
	})
	mux := newMux(svc, *maxBody)
	log.Printf("amgserve listening on %s (cache %d, window %v, maxbatch %d)", *addr, *cache, *window, *maxBatch)
	// Explicit server timeouts: a public solve endpoint must not let
	// slow or stalled clients pin connection goroutines forever (the
	// write timeout is generous — solutions for large systems are big).
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Fatal(srv.ListenAndServe())
}

// newMux wires the service handlers; split from main for tests.
// maxBody bounds the /solve request body so an oversized (or malicious)
// upload fails fast instead of buffering gigabytes before validation.
func newMux(svc *serve.Service, maxBody int64) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) { handleSolve(svc, w, r, maxBody) })
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) { handleMetrics(svc, w) })
	return mux
}

func handleSolve(svc *serve.Service, w http.ResponseWriter, r *http.Request, maxBody int64) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a solve request", http.StatusMethodNotAllowed)
		return
	}
	var req solveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	a, bs, err := req.system()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	xs, stats, err := svc.SolveBatch(r.Context(), a, bs)
	if err != nil && len(xs) == 0 {
		// Request-shaped failures (bad matrix, unbuildable hierarchy,
		// canceled admission) have no partial result to report.
		status := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, serve.ErrBadRequest):
			status = http.StatusBadRequest
		case r.Context().Err() != nil:
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	resp := solveResponse{Outcome: stats.Outcome.String(), Batched: stats.Batched}
	for j, x := range xs {
		cr := columnResult{X: x}
		if j < len(stats.Columns) {
			cs := stats.Columns[j]
			cr.Iterations, cr.RelResidual, cr.Converged = cs.Iterations, cs.RelResidual, cs.Converged
		}
		resp.Columns = append(resp.Columns, cr)
	}
	if req.B != nil && len(xs) == 1 && len(resp.Columns) == 1 && resp.Columns[0].Converged {
		resp.X = xs[0]
	}
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		// Partial failure (some column above tolerance): report it in
		// the status line and body — a 200 with the final iterate would
		// let status-only clients mistake a non-solution for the answer.
		resp.Error = err.Error()
		w.WriteHeader(http.StatusUnprocessableEntity)
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("amgserve: encode response: %v", err)
	}
}

// system assembles the CSR matrix and RHS set. Structural validation is
// left to the service boundary (serve.SolveBatch runs Matrix.Validate
// before admission), so large matrices are scanned once, not twice.
func (req *solveRequest) system() (*sparse.Matrix, [][]float64, error) {
	if req.Cols == 0 {
		req.Cols = req.Rows
	}
	a := &sparse.Matrix{Rows: req.Rows, Cols: req.Cols, RowPtr: req.RowPtr, Col: req.Col, Val: req.Val}
	bs := req.Bs
	if req.B != nil {
		bs = append([][]float64{req.B}, bs...)
	}
	if len(bs) == 0 {
		return nil, nil, fmt.Errorf(`request carries no right-hand side (set "b" or "bs")`)
	}
	return a, bs, nil
}

func handleMetrics(svc *serve.Service, w http.ResponseWriter) {
	m := svc.Metrics()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "amgserve_requests_total %d\n", m.Requests)
	fmt.Fprintf(w, "amgserve_rejected_total %d\n", m.Rejected)
	fmt.Fprintf(w, "amgserve_cache_builds_total %d\n", m.Builds)
	fmt.Fprintf(w, "amgserve_cache_refreshes_total %d\n", m.Refreshes)
	fmt.Fprintf(w, "amgserve_cache_hits_total %d\n", m.ValueHits)
	fmt.Fprintf(w, "amgserve_cache_collisions_total %d\n", m.Collisions)
	fmt.Fprintf(w, "amgserve_cache_evictions_total %d\n", m.Evictions)
	fmt.Fprintf(w, "amgserve_batch_solves_total %d\n", m.BatchSolves)
	fmt.Fprintf(w, "amgserve_batched_rhs_total %d\n", m.BatchedRHS)
	fmt.Fprintf(w, "amgserve_batched_rhs_ratio %.3f\n", m.BatchedRHSRatio())
}
