package par

import (
	"sync"
	"sync/atomic"
)

// The persistent worker pool. Instead of spawning fresh goroutines on
// every For/Scan/Filter call (the Go analogue of relaunching a Kokkos
// kernel with cold scratch memory), all Runtimes share one process-wide
// set of long-lived workers. A parallel construct packages its blocks
// into a task; the submitting goroutine and any idle workers claim
// blocks from an atomic counter until none remain.
//
// Determinism is unaffected by which goroutine runs which block: block
// boundaries are a fixed function of (n, Runtime.workers) — see Blocks —
// every block writes only to state owned by its index range, and all
// combination steps (scan offsets, reduction partials) read per-block
// results in block order. Work stealing changes the schedule, never the
// result.
//
// Each worker owns a scratch Arena that lives as long as the worker, so
// per-participant scratch (SpGEMM accumulators, stamp arrays) is
// allocated once per worker per buffer size, not once per call.

// participant is one goroutine's execution state for a task: run
// executes a block; done (optional) runs after its last block.
type participant struct {
	run  func(lo, hi int)
	done func()
}

// task is one dispatched parallel construct. Block b covers
// [b*chunk, min((b+1)*chunk, n)).
type task struct {
	n, nb, chunk int
	// body executes one block. Exactly one of body/withArena is set.
	body func(lo, hi int)
	// withArena, when set, is invoked once per participating goroutine
	// (lazily, before its first block) with that goroutine's arena.
	withArena func(a *Arena) participant

	next atomic.Int64 // next unclaimed block
	left atomic.Int64 // blocks not yet completed
	refs atomic.Int64 // outstanding references (caller + queued tokens)
	// done receives one token from the participant that completes the
	// final block, iff that participant is not the caller.
	done chan struct{}
}

var taskPool = sync.Pool{New: func() any {
	return &task{done: make(chan struct{}, 1)}
}}

// work claims and executes blocks until none remain, returning the
// number of blocks executed.
func (t *task) work(a *Arena) int64 {
	var p participant
	var did int64
	for {
		b := int(t.next.Add(1) - 1)
		if b >= t.nb {
			break
		}
		if p.run == nil {
			if t.withArena != nil {
				p = t.withArena(a)
			} else {
				p = participant{run: t.body}
			}
		}
		lo := b * t.chunk
		hi := lo + t.chunk
		if hi > t.n {
			hi = t.n
		}
		p.run(lo, hi)
		did++
	}
	if p.done != nil {
		p.done()
	}
	return did
}

// release drops one reference; the last reference recycles the task.
func (t *task) release() {
	if t.refs.Add(-1) == 0 {
		t.body = nil
		t.withArena = nil
		taskPool.Put(t)
	}
}

// pool is the process-wide worker set. Workers are spawned lazily up to
// the demand of the largest Runtime, so a Runtime with more workers than
// GOMAXPROCS still gets real goroutines (the seed behavior under the
// race detector and on oversubscribed machines).
var pool struct {
	mu      sync.Mutex
	workers int
	tasks   chan *task
}

const maxPoolWorkers = 256

func init() {
	pool.tasks = make(chan *task, 4*maxPoolWorkers)
}

// ensureWorkers grows the pool to at least n workers.
func ensureWorkers(n int) {
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	pool.mu.Lock()
	for pool.workers < n {
		pool.workers++
		go func() {
			a := &Arena{}
			for t := range pool.tasks {
				if did := t.work(a); did > 0 && t.left.Add(-did) == 0 {
					t.done <- struct{}{}
				}
				t.release()
			}
		}()
	}
	pool.mu.Unlock()
}

// run executes a parallel construct of nb chunk-sized blocks over [0, n)
// with pool assistance. Exactly one of body and withArena is non-nil,
// and nb is at least 2: every caller (For, ForWith, ForBlocks) runs
// single-block constructs inline on its own fast path, so dispatch only
// ever sees work worth sharing. The caller always participates, so
// progress never depends on pool capacity; a full task queue just means
// fewer helpers.
func dispatch(n, nb, chunk int, body func(lo, hi int), withArena func(a *Arena) participant) {
	t := taskPool.Get().(*task)
	t.n, t.nb, t.chunk = n, nb, chunk
	t.body = body
	t.withArena = withArena
	t.next.Store(0)
	t.left.Store(int64(nb))
	t.refs.Store(1)

	helpers := nb - 1
	ensureWorkers(helpers)
	sent := 0
	for i := 0; i < helpers; i++ {
		// Take the reference before the send: once the task is in the
		// channel a worker may drain and release it immediately, and the
		// caller's own reference (held until the end of dispatch) must
		// never be the only thing keeping a sent-but-unaccounted token
		// alive.
		t.refs.Add(1)
		select {
		case pool.tasks <- t:
			sent++
			continue
		default:
		}
		t.refs.Add(-1) // send failed; caller still holds its own ref
		break          // queue full; remaining helpers would not fit either
	}

	a := callerArena()
	did := t.work(a)
	releaseCallerArena(a)
	callerDone := did > 0 && t.left.Add(-did) == 0
	if sent > 0 && !callerDone {
		// A worker holds (or will complete) the final block and sends
		// exactly one token.
		<-t.done
	}
	t.release()
}

// callerArenas recycles arenas for non-worker goroutines that execute
// blocks or need longer-lived scratch.
var callerArenas = sync.Pool{New: func() any { return new(Arena) }}

func callerArena() *Arena         { return callerArenas.Get().(*Arena) }
func releaseCallerArena(a *Arena) { callerArenas.Put(a) }

// AcquireArena hands out a scratch arena for a longer-lived computation
// (e.g. reusing MIS-2 status buffers across calls). Pair with
// ReleaseArena; buffers obtained with Get and returned with Put are
// recycled across acquisitions.
func AcquireArena() *Arena { return callerArenas.Get().(*Arena) }

// ReleaseArena returns an arena obtained from AcquireArena to the pool.
func ReleaseArena(a *Arena) { callerArenas.Put(a) }
