// Tests pinning the effective-configuration reporting (power-of-two
// subdomain rounding, the Overlap==0 default-vs-explicit rule) and the
// Refresh contract: numeric-only replay bitwise identical to a fresh
// build, pattern-mismatch rejection without state damage, and the
// two-zone validity rule under mid-replay failure.
package schwarz

import (
	"math"
	"strings"
	"testing"

	"mis2go/internal/krylov"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

func TestStatsReportsEffectiveCounts(t *testing.T) {
	a, _ := poisson(40, 40)
	p, err := New(a, Options{Subdomains: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.RequestedSubdomains != 5 {
		t.Fatalf("RequestedSubdomains = %d, want 5", st.RequestedSubdomains)
	}
	if st.Parts != 8 {
		t.Fatalf("Parts = %d, want 8 (5 rounded up to a power of two)", st.Parts)
	}
	if st.Subdomains != p.NumSubdomains() || st.Subdomains == 0 || st.Subdomains > st.Parts {
		t.Fatalf("Subdomains = %d inconsistent with NumSubdomains %d / Parts %d", st.Subdomains, p.NumSubdomains(), st.Parts)
	}
	if st.AMGLocal+st.DenseLocal != st.Subdomains {
		t.Fatalf("local solver split %d+%d != %d", st.AMGLocal, st.DenseLocal, st.Subdomains)
	}
	if !p.HasCoarse() || st.CoarseSize == 0 {
		t.Fatalf("coarse stats missing: %+v", st)
	}
	if p.PartitionFingerprint() == 0 {
		t.Fatal("partition fingerprint is zero")
	}
	// Defaulting: zero Subdomains resolves to n/256 (min 2) before
	// rounding.
	pd, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pd.Stats().RequestedSubdomains, a.Rows/256; got != want {
		t.Fatalf("default RequestedSubdomains = %d, want %d", got, want)
	}
}

func TestOverlapZeroDefaultVsExplicit(t *testing.T) {
	a, b := poisson(32, 32)
	// Unset overlap defaults to 1.
	p1, err := New(a, Options{Subdomains: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := p1.Stats().Overlap; got != 1 {
		t.Fatalf("default overlap = %d, want 1", got)
	}
	// Explicit Overlap: 0 with OverlapSet is honored: pure block Jacobi,
	// whose subdomain row sets partition the rows exactly (no overlap
	// duplication).
	p0, err := New(a, Options{Subdomains: 8, Overlap: 0, OverlapSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := p0.Stats().Overlap; got != 0 {
		t.Fatalf("explicit overlap 0 reported as %d", got)
	}
	total := 0
	for _, sd := range p0.subs {
		total += sd.NumRows()
	}
	if total != a.Rows {
		t.Fatalf("block Jacobi row sets cover %d rows of %d: overlap leaked in", total, a.Rows)
	}
	for _, p := range []*Preconditioner{p0, p1} {
		x := make([]float64, a.Rows)
		st, err := krylov.CG(par.New(0), a, b, x, 1e-10, 2000, p)
		if err != nil || !st.Converged {
			t.Fatalf("overlap=%d solve failed: %v %+v", p.Stats().Overlap, err, st)
		}
	}
}

// scaleValues returns a clone of a with every value scaled, preserving
// the pattern.
func scaleValues(a *sparse.Matrix, s float64) *sparse.Matrix {
	c := a.Clone()
	for i := range c.Val {
		c.Val[i] *= s
	}
	return c
}

func TestRefreshMatchesFreshBuild(t *testing.T) {
	a, b := poisson(32, 32)
	opt := Options{Subdomains: 8, LocalAMGThreshold: 64}
	p, err := New(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	a2 := scaleValues(a, 1.5)
	if err := p.Refresh(a2); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(a2, opt)
	if err != nil {
		t.Fatal(err)
	}
	zr := make([]float64, a.Rows)
	zf := make([]float64, a.Rows)
	p.Precondition(b, zr)
	fresh.Precondition(b, zf)
	for i := range zr {
		if math.Float64bits(zr[i]) != math.Float64bits(zf[i]) {
			t.Fatalf("refresh diverges from fresh build at %d: %g vs %g", i, zr[i], zf[i])
		}
	}
}

func TestRefreshRejectsPatternMismatch(t *testing.T) {
	a, b := poisson(24, 24)
	p, err := New(a, Options{Subdomains: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.Rows)
	p.Precondition(b, want)

	other, _ := poisson(25, 24)
	if err := p.Refresh(other); err == nil {
		t.Fatal("wrong-shape refresh accepted")
	}
	// Same shape, different pattern: drop the last entry of the last row.
	mut := a.Clone()
	mut.RowPtr[mut.Rows]--
	mut.Col = mut.Col[:len(mut.Col)-1]
	mut.Val = mut.Val[:len(mut.Val)-1]
	err = p.Refresh(mut)
	if err == nil || !strings.Contains(err.Error(), "pattern") {
		t.Fatalf("pattern mismatch not rejected descriptively: %v", err)
	}
	// Zone 1: rejection happened before any mutation, so the previous
	// numeric state is untouched and still applies bitwise identically.
	if !p.Valid() {
		t.Fatal("pre-mutation rejection invalidated the preconditioner")
	}
	got := make([]float64, a.Rows)
	p.Precondition(b, got)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("rejected refresh perturbed state at %d", i)
		}
	}
}

func TestRefreshTwoZoneValidity(t *testing.T) {
	a, b := poisson(24, 24)
	p, err := New(a, Options{Subdomains: 4, NoCoarse: true})
	if err != nil {
		t.Fatal(err)
	}
	// Zone 2: an all-zero matrix has the right pattern but singular
	// local blocks, so the failure lands mid-replay (inside a subdomain
	// factorization) and must invalidate the preconditioner.
	if err := p.Refresh(scaleValues(a, 0)); err == nil {
		t.Fatal("singular refresh succeeded")
	}
	if p.Valid() {
		t.Fatal("mid-replay failure left preconditioner valid")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Precondition on invalid state did not panic")
			}
		}()
		z := make([]float64, a.Rows)
		p.Precondition(b, z)
	}()
	// A successful retry revalidates.
	if err := p.Refresh(a); err != nil {
		t.Fatal(err)
	}
	if !p.Valid() {
		t.Fatal("successful refresh did not revalidate")
	}
	z := make([]float64, a.Rows)
	p.Precondition(b, z)
}
