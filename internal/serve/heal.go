// Self-healing solves: classification of numerical failures and the
// escalation ladder. A classified failure (diverged, stagnated, broken
// down, or MaxIter exhausted) is retried with a deterministic sequence
// of progressively stronger request-local configurations — a full-f64
// hierarchy rebuild when the service runs reduced precision, then a
// point-SGS smoother, then a GMRES outer solve — each rung recorded in
// RequestStats.Escalations. The ladder is deterministic by
// construction: the rung sequence is a pure function of the service
// Config, each rung builds its hierarchy and runs its solve with the
// same deterministic kernels as the primary path, and rungs run
// request-local (no cache mutation), so the result of an escalated
// request is a pure function of (request, Config, rung index) —
// independent of cache state, concurrency, and worker count.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"mis2go/internal/amg"
	"mis2go/internal/krylov"
	"mis2go/internal/sparse"
)

// rung is one step of the escalation ladder: a name for stats/logs, the
// AMG options to rebuild with, and the outer solver choice.
type rung struct {
	name  string
	amg   amg.Options
	gmres bool
}

// buildLadder derives the escalation sequence from the resolved config,
// skipping rungs identical to the primary serving configuration (they
// would deterministically fail the same way). At most
// cfg.MaxEscalations rungs are kept.
func buildLadder(cfg Config) []rung {
	f64 := cfg.AMG
	f64.Precision = sparse.PrecisionF64
	sgs := f64
	sgs.Smoother = amg.SmootherPointSGS
	var rungs []rung
	if cfg.AMG.Precision != sparse.PrecisionF64 {
		rungs = append(rungs, rung{name: "f64", amg: f64})
	}
	if cfg.AMG.Precision != sparse.PrecisionF64 || cfg.AMG.Smoother != amg.SmootherPointSGS {
		rungs = append(rungs, rung{name: "f64+sgs", amg: sgs})
	}
	rungs = append(rungs, rung{name: "f64+gmres", amg: sgs, gmres: true})
	if len(rungs) > cfg.MaxEscalations {
		rungs = rungs[:cfg.MaxEscalations]
	}
	return rungs
}

// isNumericalFailure reports whether err is a classified numerical
// failure — the failure class the escalation ladder and the circuit
// breaker act on, as opposed to cancellations, contained panics, and
// request-shape rejections.
func isNumericalFailure(err error) bool {
	return errors.Is(err, krylov.ErrNotConverged) || errors.Is(err, krylov.ErrDiverged) ||
		errors.Is(err, krylov.ErrStagnated) || errors.Is(err, krylov.ErrNonFinite) ||
		errors.Is(err, krylov.ErrBreakdown) || errors.Is(err, amg.ErrBadValues)
}

// escalatable reports whether err is worth climbing the ladder for:
// numerical failures except non-finite residuals and rejected values —
// those are properties of the submitted inputs that no stronger method
// fixes, so they go straight to the breaker.
func (s *Service) escalatable(err error) bool {
	if len(s.rungs) == 0 {
		return false
	}
	if errors.Is(err, krylov.ErrNonFinite) || errors.Is(err, amg.ErrBadValues) {
		return false
	}
	return isNumericalFailure(err)
}

// escalate climbs the ladder for a request whose primary solve failed
// with the classified error origErr. On the first rung that converges
// every column it replaces the request's results and stats and returns
// a nil error; when every rung fails numerically it returns the
// original classified error (wrapped with the rungs attempted), so the
// caller sees the primary path's failure class, not the last rung's. A
// rung that is canceled or panics stops the ladder with that error.
// xs is the primary attempt's best-effort result, passed through
// unchanged when the ladder does not recover.
func (s *Service) escalate(ctx context.Context, a *sparse.Matrix, bs [][]float64, st *RequestStats, xs [][]float64, origErr error) ([][]float64, error) {
	for _, rg := range s.rungs {
		if ctx.Err() != nil {
			break
		}
		st.Escalations = append(st.Escalations, rg.name)
		s.m.escalations.Add(1)
		rxs, cols, rerr := s.solveRung(ctx, rg, a, bs)
		if rerr == nil {
			st.Columns = cols
			s.m.escalationRecoveries.Add(1)
			return rxs, nil
		}
		if errors.Is(rerr, ErrPanic) {
			s.m.panics.Add(1)
			return xs, fmt.Errorf("serve: escalation rung %s: %w", rg.name, rerr)
		}
		if isCancellation(rerr) {
			return xs, fmt.Errorf("serve: escalation rung %s: %w", rg.name, rerr)
		}
		// Another numerical failure: the next rung is stronger.
	}
	if len(st.Escalations) > 0 {
		return xs, fmt.Errorf("serve: escalation exhausted (%s): %w", strings.Join(st.Escalations, ", "), origErr)
	}
	return xs, origErr
}

// solveRung runs one escalation attempt, request-local and panic-
// isolated: a fresh hierarchy with the rung's options, then a guarded
// batch CG (or per-column GMRES) on the request's own matrix. Nothing
// touches the cache, so a failed rung leaves no state behind and a
// successful one is bitwise reproducible by a sequential caller using
// the same options.
func (s *Service) solveRung(ctx context.Context, rg rung, a *sparse.Matrix, bs [][]float64) (xs [][]float64, cols []krylov.Stats, err error) {
	defer recoverTo(&err)
	if err := s.fault(FaultEscalate, ctx); err != nil {
		return nil, nil, err
	}
	h, err := amg.BuildCtx(ctx, a, rg.amg)
	if err != nil {
		return nil, nil, err
	}
	n, k := a.Rows, len(bs)
	if rg.gmres {
		ws := krylov.NewWorkspace(n)
		for _, b := range bs {
			x := make([]float64, n)
			cst, serr := krylov.GMRESCtx(ctx, s.rt, a, b, x, s.cfg.Tol, s.cfg.MaxIter, 0, h, ws, s.cfg.Health)
			cols = append(cols, cst)
			xs = append(xs, x)
			if serr != nil {
				return xs, cols, serr
			}
		}
		return xs, cols, nil
	}
	bb := make([]float64, n*k)
	xb := make([]float64, n*k)
	interleave(bb, bs, n, k)
	stats, serr := krylov.CGBatchCtx(ctx, s.rt, a, bb, xb, k, s.cfg.Tol, s.cfg.MaxIter, h, nil, s.cfg.Health)
	for j := 0; j < k; j++ {
		xs = append(xs, make([]float64, n))
	}
	deinterleave(xs, xb, n, k)
	cols = append(cols, stats...)
	return xs, cols, serr
}
