// Package mis implements the paper's core contribution: the parallel,
// deterministic distance-2 maximal independent set algorithm (Algorithm 1)
// with its four optimizations, the Bell/Dalton/Olson baseline it is
// compared against (the algorithm implemented by CUSP and ViennaCL),
// Luby's MIS-1, and validity checkers.
//
//amg:deterministic
package mis

import (
	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/par"
)

// MinSIMDDegree is the average-degree threshold above which the unrolled
// ("SIMD") inner loops are used, matching the paper's GPU heuristic of 16.
const MinSIMDDegree = 16.0

// Options configures MIS2. The zero value selects the production
// configuration used for all paper experiments outside Table I:
// xorshift* per-iteration priorities, all optimizations on, GOMAXPROCS
// workers.
type Options struct {
	// Hash selects the priority scheme (Table I): XorStar (default), Xor,
	// or Fixed.
	Hash hash.Kind
	// Threads is the worker count; 0 means GOMAXPROCS.
	Threads int
	// NoSIMD disables the unrolled inner loops regardless of degree.
	NoSIMD bool
	// CollectStats records per-iteration worklist sizes in
	// Result.Worklist1/Worklist2 (diagnostics for the §V-B worklist
	// optimization; small overhead).
	CollectStats bool
}

// Result reports the outcome of an MIS-2 computation.
type Result struct {
	// InSet lists the vertices in the MIS-2, ascending.
	InSet []int32
	// Iterations is the number of Refresh/Decide rounds executed
	// (the loop trip count of Algorithm 1, as counted in Tables I and III).
	Iterations int
	// Worklist1 and Worklist2 hold the worklist sizes entering each
	// iteration when Options.CollectStats is set: Worklist1[i] counts
	// undecided vertices, Worklist2[i] vertices whose column status can
	// still change. Both are nil otherwise.
	Worklist1, Worklist2 []int
}

// MIS2 computes a distance-2 maximal independent set of g using
// Algorithm 1 with all four optimizations (per-iteration xorshift*
// priorities, dual worklists compacted by parallel prefix sums, packed
// status tuples, and unrolled inner loops on high-degree graphs).
//
// The result is deterministic: for a given graph and Options.Hash it is
// identical for every thread count and across runs.
func MIS2(g *graph.CSR, opt Options) Result {
	rt := par.New(opt.Threads)
	simd := !opt.NoSIMD && g.AvgDegree() >= MinSIMDDegree
	return mis2Packed(g, opt.Hash, simd, opt.CollectStats, rt)
}

// mis2Packed is Algorithm 1 with packed tuples and worklists.
// When simd is true the neighbor reductions use 4-way unrolled loops
// (this repository's substitute for warp-level SIMD; see DESIGN.md).
//
// All O(n) state (status arrays and the four worklist buffers) comes
// from a scratch arena, so repeated MIS-2 calls — AMG setup runs one per
// level, cluster-GS one per operator — reuse the same backing memory.
func mis2Packed(g *graph.CSR, kind hash.Kind, simd, collectStats bool, rt *par.Runtime) Result {
	n := g.N
	if n == 0 {
		return Result{InSet: []int32{}}
	}
	var stats1, stats2 []int
	c := newCodec(n)
	ar := par.AcquireArena()
	t := par.Get[uint64](ar, n) // row status  T_v
	m := par.Get[uint64](ar, n) // col status  M_v
	wl1 := par.Get[int32](ar, n)
	wl2 := par.Get[int32](ar, n)
	buf1 := par.Get[int32](ar, n)
	buf2 := par.Get[int32](ar, n)
	// Remember the full-capacity backings: wl/buf pairs swap roles each
	// round, and t/m are returned to the arena at the end.
	tb, mb, w1a, w1b, w2a, w2b := t, m, wl1, buf1, wl2, buf2
	rt.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			wl1[i] = int32(i)
			wl2[i] = int32(i)
		}
	})

	iter := 0
	for len(wl1) > 0 {
		if collectStats {
			stats1 = append(stats1, len(wl1))
			stats2 = append(stats2, len(wl2))
		}
		it64 := uint64(iter)

		// Refresh Row: assign fresh priorities to undecided vertices.
		rt.For(len(wl1), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := wl1[i]
				t[v] = c.pack(kind.Priority(it64, uint64(v)), v)
			}
		})

		// Refresh Column: M_v = min T_w over the closed neighborhood of v;
		// a minimum of IN means v is distance-1 from an IN vertex, which
		// permanently forces M_v = OUT.
		if simd {
			rt.For(len(wl2), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := wl2[i]
					mv := minClosedUnrolled(g, t, v)
					if mv == tupleIn {
						mv = tupleOut
					}
					m[v] = mv
				}
			})
		} else {
			rt.For(len(wl2), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := wl2[i]
					mv := t[v]
					for _, w := range g.Neighbors(v) {
						if tw := t[w]; tw < mv {
							mv = tw
						}
					}
					if mv == tupleIn {
						mv = tupleOut
					}
					m[v] = mv
				}
			})
		}

		// Decide Set: v is OUT if any closed neighbor's column status is
		// OUT (an IN vertex within distance 2); v is IN if its own tuple
		// is the minimum everywhere in its closed neighborhood, i.e. the
		// minimum of its radius-2 ball.
		if simd {
			rt.For(len(wl1), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := wl1[i]
					decideUnrolled(g, t, m, v)
				}
			})
		} else {
			rt.For(len(wl1), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := wl1[i]
					tv := t[v]
					anyOut := m[v] == tupleOut
					allEq := m[v] == tv
					if !anyOut {
						for _, w := range g.Neighbors(v) {
							mw := m[w]
							if mw == tupleOut {
								anyOut = true
								break
							}
							if mw != tv {
								allEq = false
							}
						}
					}
					if anyOut {
						t[v] = tupleOut
					} else if allEq {
						t[v] = tupleIn
					}
				}
			})
		}

		// Compact worklists with order-preserving parallel filters
		// (prefix-sum based, deterministic). The filtered slice aliases
		// the spare buffer; the old worklist backing becomes the spare.
		next1 := par.Filter(rt, wl1, buf1, func(v int32) bool { return isUndecided(t[v]) })
		wl1, buf1 = next1, wl1[:n]
		next2 := par.Filter(rt, wl2, buf2, func(v int32) bool { return m[v] != tupleOut })
		wl2, buf2 = next2, wl2[:n]
		iter++
	}

	in := collectIn(rt, t, n)
	par.Put(ar, tb)
	par.Put(ar, mb)
	par.Put(ar, w1a)
	par.Put(ar, w1b)
	par.Put(ar, w2a)
	par.Put(ar, w2b)
	par.ReleaseArena(ar)
	return Result{InSet: in, Iterations: iter, Worklist1: stats1, Worklist2: stats2}
}

// collectIn gathers the vertices whose row status is IN, ascending, with
// a block-counted two-pass scan (no scratch arrays proportional to n
// beyond the result).
func collectIn(rt *par.Runtime, t []uint64, n int) []int32 {
	blocks := rt.Blocks(n)
	nb := len(blocks) - 1
	ar := par.AcquireArena()
	counts := par.Get[int](ar, nb)
	offsets := par.Get[int](ar, nb+1)
	rt.ForBlocks(nb, func(b int) {
		c := 0
		for v := blocks[b]; v < blocks[b+1]; v++ {
			if t[v] == tupleIn {
				c++
			}
		}
		counts[b] = c
	})
	total := 0
	for b := 0; b < nb; b++ {
		offsets[b] = total
		total += counts[b]
	}
	offsets[nb] = total
	out := make([]int32, total)
	rt.ForBlocks(nb, func(b int) {
		k := offsets[b]
		for v := blocks[b]; v < blocks[b+1]; v++ {
			if t[v] == tupleIn {
				out[k] = int32(v)
				k++
			}
		}
	})
	par.Put(ar, counts)
	par.Put(ar, offsets)
	par.ReleaseArena(ar)
	return out
}

// minClosedUnrolled computes min(T_w) over the closed neighborhood of v
// with a 4-way unrolled loop, the CPU analogue of the paper's warp-level
// SIMD reduction over the contiguous CRS adjacency list.
func minClosedUnrolled(g *graph.CSR, t []uint64, v int32) uint64 {
	adj := g.Neighbors(v)
	m0, m1, m2, m3 := t[v], tupleOut, tupleOut, tupleOut
	i := 0
	for ; i+4 <= len(adj); i += 4 {
		if x := t[adj[i]]; x < m0 {
			m0 = x
		}
		if x := t[adj[i+1]]; x < m1 {
			m1 = x
		}
		if x := t[adj[i+2]]; x < m2 {
			m2 = x
		}
		if x := t[adj[i+3]]; x < m3 {
			m3 = x
		}
	}
	for ; i < len(adj); i++ {
		if x := t[adj[i]]; x < m0 {
			m0 = x
		}
	}
	if m1 < m0 {
		m0 = m1
	}
	if m3 < m2 {
		m2 = m3
	}
	if m2 < m0 {
		m0 = m2
	}
	return m0
}

// decideUnrolled applies the Decide Set rules for v using 4-way unrolled
// scans for the exists-OUT and forall-equal reductions.
func decideUnrolled(g *graph.CSR, t, m []uint64, v int32) {
	tv := t[v]
	mv := m[v]
	if mv == tupleOut {
		t[v] = tupleOut
		return
	}
	adj := g.Neighbors(v)
	anyOut := false
	allEq := mv == tv
	i := 0
	for ; i+4 <= len(adj); i += 4 {
		a, b, c, d := m[adj[i]], m[adj[i+1]], m[adj[i+2]], m[adj[i+3]]
		if a == tupleOut || b == tupleOut || c == tupleOut || d == tupleOut {
			anyOut = true
			break
		}
		if a != tv || b != tv || c != tv || d != tv {
			allEq = false
		}
	}
	if !anyOut {
		for ; i < len(adj); i++ {
			mw := m[adj[i]]
			if mw == tupleOut {
				anyOut = true
				break
			}
			if mw != tv {
				allEq = false
			}
		}
	}
	if anyOut {
		t[v] = tupleOut
	} else if allEq {
		t[v] = tupleIn
	}
}
