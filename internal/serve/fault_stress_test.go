// Fault-injection stress test: mixed cancel/panic/build-failure/slow
// traffic from 8+ goroutines under eviction pressure, with the fault
// hook driven deterministically per request through context values. The
// gates: no deadlock (watchdog), no goroutine leak (leakcheck), no
// invalidated-state reuse (every returned solution is bitwise identical
// to the sequential reference, faulted neighbors or not), and full
// recovery afterwards. Runs under -race in `make check`.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/gen"
	"mis2go/internal/krylov"
	"mis2go/internal/leakcheck"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

func TestServeStressFaultInjection(t *testing.T) {
	cfg := Config{
		AMG:           amg.Options{MinCoarseSize: 40},
		Tol:           1e-10,
		MaxIter:       200,
		CacheCapacity: 2, // below the pattern count: constant eviction/rebuild pressure
		BatchWindow:   100 * time.Microsecond,
		MaxBatch:      4,
		FaultHook:     planHook,
	}
	s := New(cfg)
	rt := par.New(cfg.withDefaults().Threads)

	// Three structurally different patterns, three value sets each, with
	// sequential single-caller references (fresh build, k=1 CGBatch).
	patterns := []*sparse.Matrix{
		gen.Laplacian(gen.Laplace3D(7, 7, 7), 0.05),
		gen.Laplacian(gen.Laplace2D(20, 20), 0.1),
		gen.WeightedLaplacian(gen.RandomFEM(6, 6, 6, 10, 3), 0.1, 11),
	}
	scales := []float64{1, 2.5, 0.5}
	systems := make([][]stressSystem, len(patterns))
	for p, base := range patterns {
		systems[p] = make([]stressSystem, len(scales))
		for v, sc := range scales {
			a := base.Clone()
			a.Scale(sc)
			b := make([]float64, a.Rows)
			for i := range b {
				b[i] = float64((i*13+p+v)%23) - 11
			}
			h, err := amg.Build(a.Clone(), cfg.AMG)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, a.Rows)
			if _, err := krylov.CGBatchWith(rt, a, append([]float64(nil), b...), want, 1, cfg.Tol, cfg.MaxIter, h, nil); err != nil {
				t.Fatal(err)
			}
			systems[p][v] = stressSystem{a: a, b: b, want: want}
		}
	}

	// The leak baseline comes after the reference solves: the par worker
	// pool is already up (and allowlisted anyway), so anything new from
	// here on must be gone by the end of the test.
	base := leakcheck.Capture()

	faultKinds := []string{"fail", "panic", "cancel", "slow"}
	faultPhases := []FaultPhase{FaultBuild, FaultRefresh, FaultSolve, FaultAdmitted}

	const goroutines = 8
	requests := 60
	if testing.Short() {
		requests = 20
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				p := ((g + r/10) * 7) % len(systems)
				v := (r / 4 % len(scales))
				sys := systems[p][v]

				// Every 3rd request carries a deterministic fault plan;
				// kind and phase rotate so all combinations fire. A
				// "panic" at FaultAdmitted is remapped to "fail" — that
				// phase runs outside the isolation sections by contract.
				ctx := context.Background()
				seq := g*requests + r
				faulted := seq%3 == 0
				if faulted {
					kind := faultKinds[seq/3%len(faultKinds)]
					phase := faultPhases[seq/7%len(faultPhases)]
					if phase == FaultAdmitted && kind == "panic" {
						kind = "fail"
					}
					plan := &faultPlan{phase: phase, kind: kind}
					if kind == "cancel" {
						cctx, cancel := context.WithCancel(ctx)
						defer cancel()
						ctx = cctx
						plan.cancel = cancel
					}
					ctx = context.WithValue(ctx, faultPlanKey{}, plan)
				}

				x, _, err := s.Solve(ctx, sys.a, sys.b)
				if err != nil {
					// Faulted requests fail with their injected outcome;
					// clean requests may take collateral damage from a
					// neighbor's panic or invalidation. Either way the
					// error must be one of the classified failure modes —
					// an unclassified error means a new, unhandled state.
					if !errors.Is(err, errInjected) && !errors.Is(err, ErrPanic) &&
						!errors.Is(err, ErrInvalidated) && !isCancellation(err) {
						errc <- fmt.Errorf("goroutine %d request %d: unclassified failure: %w", g, r, err)
						return
					}
					continue
				}
				// A request that returns a solution — faulted or not —
				// must return the right one, bitwise: no invalidated or
				// half-refreshed state may ever leak into a result.
				for i := range x {
					if math.Float64bits(x[i]) != math.Float64bits(sys.want[i]) {
						errc <- fmt.Errorf("goroutine %d request %d: pattern %d values %d: bit mismatch at %d (%g vs %g)",
							g, r, p, v, i, x[i], sys.want[i])
						return
					}
				}
			}
		}(g)
	}

	// Deadlock watchdog: a stranded follower or a lost condvar wakeup
	// shows up as this timeout, with goroutine dumps from the runtime.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("stress traffic deadlocked (followers stranded?)")
	}
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	m := s.Metrics()
	t.Logf("fault stress metrics: %+v", m)
	if m.Panics == 0 {
		t.Fatal("no panics were injected/contained; the stress mix is broken")
	}
	if m.Canceled == 0 {
		t.Fatal("no cancellations registered; the stress mix is broken")
	}
	if m.Builds == 0 || m.Evictions == 0 {
		t.Fatalf("traffic mix did not exercise build/evict: %+v", m)
	}

	// Recovery: after the storm, every system must solve cleanly and
	// bitwise-correctly through whatever cache state survived.
	for p := range systems {
		for v := range systems[p] {
			sys := systems[p][v]
			x, _, err := s.Solve(context.Background(), sys.a, sys.b)
			if err != nil {
				t.Fatalf("recovery solve (pattern %d values %d): %v", p, v, err)
			}
			for i := range x {
				if math.Float64bits(x[i]) != math.Float64bits(sys.want[i]) {
					t.Fatalf("recovery solve (pattern %d values %d): bit mismatch at %d", p, v, i)
				}
			}
		}
	}

	// Zero goroutine leaks: batch AfterFuncs released, no follower left
	// parked, no timer goroutines pinned.
	leakcheck.Check(t, base)
}
