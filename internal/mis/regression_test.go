package mis

import (
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/hash"
)

// Golden regression tests: the algorithms are deterministic, so exact
// outputs on fixed inputs are stable contracts. A change to any of these
// numbers means the priority sequence, packing, or phase logic changed —
// which silently invalidates every recorded experiment. Update them only
// deliberately, together with EXPERIMENTS.md.

func TestGoldenLaplace3D20(t *testing.T) {
	g := gen.Laplace3D(20, 20, 20)
	res := MIS2(g, Options{})
	if len(res.InSet) != 771 || res.Iterations != 9 {
		t.Fatalf("golden drift: size=%d iters=%d (want 771, 9)", len(res.InSet), res.Iterations)
	}
	// First and last members pin the exact set, not just its size.
	if res.InSet[0] != 0 || res.InSet[len(res.InSet)-1] != 7999 {
		t.Fatalf("golden drift: first=%d last=%d", res.InSet[0], res.InSet[len(res.InSet)-1])
	}
}

func TestGoldenHashKindsLaplace2D(t *testing.T) {
	g := gen.Laplace2D(50, 50)
	got := map[hash.Kind][2]int{}
	for _, k := range []hash.Kind{hash.XorStar, hash.Xor, hash.Fixed} {
		r := MIS2(g, Options{Hash: k})
		got[k] = [2]int{len(r.InSet), r.Iterations}
	}
	want := map[hash.Kind][2]int{
		hash.XorStar: {353, 6},
		hash.Xor:     {377, 7},
		hash.Fixed:   {363, 9},
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("golden drift for %v: got %v want %v", k, got[k], w)
		}
	}
}

func TestGoldenBellBaseline(t *testing.T) {
	g := gen.Laplace2D(40, 40)
	r := BellMISK(g, BellOptions{K: 2})
	if len(r.InSet) != 233 || r.Iterations != 8 {
		t.Fatalf("golden drift: size=%d iters=%d (want 233, 8)", len(r.InSet), r.Iterations)
	}
}

func TestGoldenLuby(t *testing.T) {
	g := gen.Laplace2D(40, 40)
	r := LubyMIS1(g, hash.XorStar, 0)
	if len(r.InSet) != 589 || r.Iterations != 5 {
		t.Fatalf("golden drift: size=%d iters=%d (want 589, 5)", len(r.InSet), r.Iterations)
	}
}

func TestGoldenECL(t *testing.T) {
	g := gen.Laplace2D(40, 40)
	r := ECLMIS1(g, 0)
	if len(r.InSet) != 617 {
		t.Fatalf("golden drift: size=%d (want 617)", len(r.InSet))
	}
}
