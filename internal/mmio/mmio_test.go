package mmio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/mis"
)

const sampleGeneral = `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.0
1 2 -1.0
2 2 3.5
3 1 0.25
`

const sampleSymmetric = `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 4.0
2 1 -1.0
3 3 2.0
`

const samplePattern = `%%MatrixMarket matrix coordinate pattern symmetric
4 4 3
2 1
3 2
4 3
`

func TestReadGeneral(t *testing.T) {
	m, err := ReadMatrix(strings.NewReader(sampleGeneral))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 3 || m.NNZ() != 4 {
		t.Fatalf("shape %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	d := m.Diagonal()
	if d[0] != 2.0 || d[1] != 3.5 || d[2] != 0 {
		t.Fatalf("diagonal %v", d)
	}
}

func TestReadSymmetricExpands(t *testing.T) {
	m, err := ReadMatrix(strings.NewReader(sampleSymmetric))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 { // 2 diagonal + mirrored off-diagonal pair
		t.Fatalf("nnz = %d, want 4", m.NNZ())
	}
	at := m.Transpose()
	for i := range m.Val {
		if m.Col[i] != at.Col[i] || m.Val[i] != at.Val[i] {
			t.Fatal("expanded matrix not symmetric")
		}
	}
}

func TestReadPatternAsGraph(t *testing.T) {
	g, err := ReadGraph(strings.NewReader(samplePattern))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.NumEdges() != 6 {
		t.Fatalf("N=%d E=%d", g.N, g.NumEdges())
	}
	// It is a path 1-2-3-4: run MIS-2 end to end on the parsed graph.
	res := mis.MIS2(g, mis.Options{})
	if err := mis.CheckMIS2(g, res.InSet); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	g := gen.Laplace2D(7, 7)
	a := gen.WeightedLaplacian(g, 0.3, 5)
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != a.Rows || b.NNZ() != a.NNZ() {
		t.Fatal("round trip changed shape")
	}
	for i := range a.Val {
		if a.Col[i] != b.Col[i] || math.Abs(a.Val[i]-b.Val[i]) > 1e-15 {
			t.Fatalf("entry %d changed: %g vs %g", i, a.Val[i], b.Val[i])
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g := gen.Laplace3D(4, 4, 4)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != g.N || h.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed graph: %d/%d vs %d/%d", h.N, h.NumEdges(), g.N, g.NumEdges())
	}
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if !h.HasEdge(v, w) {
				t.Fatalf("edge (%d,%d) lost", v, w)
			}
		}
	}
}

// TestMalformedInputsRejected pins the hardening contract: out-of-range
// indices, duplicate coordinates (including symmetric mirror pairs), and
// truncated or over-long files produce descriptive errors instead of
// silent corruption or panics.
func TestMalformedInputsRejected(t *testing.T) {
	cases := map[string]struct {
		in      string
		wantSub string // substring the error must contain
	}{
		"duplicate entry": {
			in: "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n1 1 2.5\n2 2 1.0\n",
			wantSub: "duplicate coordinate entry (1,1)",
		},
		"duplicate after sort": {
			in: "%%MatrixMarket matrix coordinate real general\n3 3 3\n2 2 1.0\n1 1 1.0\n2 2 4.0\n",
			wantSub: "duplicate coordinate entry (2,2)",
		},
		"symmetric both triangles": {
			in: "%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 1.0\n2 1 -1.0\n1 2 -1.0\n",
			wantSub: "mirror is implied",
		},
		"truncated file": {
			in: "%%MatrixMarket matrix coordinate real general\n3 3 4\n1 1 1.0\n2 2 1.0\n",
			wantSub: "truncated",
		},
		"trailing entries": {
			in: "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 1.0\n",
			wantSub: "trailing",
		},
		"row index zero": {
			in: "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n",
			wantSub: "out of bounds",
		},
		"row index past rows": {
			in: "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
			wantSub: "out of bounds",
		},
		"col index past cols": {
			in: "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 5 1.0\n",
			wantSub: "out of bounds",
		},
		"negative size": {
			in: "%%MatrixMarket matrix coordinate real general\n-2 2 1\n1 1 1.0\n",
			wantSub: "negative",
		},
		"truncated entry line": {
			in: "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2\n",
			wantSub: "short entry",
		},
	}
	for name, tc := range cases {
		_, err := ReadMatrix(strings.NewReader(tc.in))
		if err == nil {
			t.Fatalf("%s: error not reported", name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", name, err, tc.wantSub)
		}
	}
}

func TestErrorCases(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad banner":   "%%NotMatrixMarket matrix coordinate real general\n1 1 0\n",
		"array format": "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"bad field":    "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry": "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n",
		"no size":      "%%MatrixMarket matrix coordinate real general\n% only comments\n",
		"bad size":     "%%MatrixMarket matrix coordinate real general\n1 1\n",
		"oob index":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"short entry":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"wrong count":  "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1.0\n",
		"bad value":    "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 xyz\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrix(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: error not reported", name)
		}
	}
	// Graph requires square.
	rect := "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n"
	if _, err := ReadGraph(strings.NewReader(rect)); err == nil {
		t.Fatal("non-square graph accepted")
	}
}

func TestIntegerField(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
2 2 2
1 1 3
2 2 -4
`
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Val[0] != 3 || m.Val[1] != -4 {
		t.Fatalf("integer values wrong: %v", m.Val)
	}
}

func TestReaderNeverPanicsOnGarbage(t *testing.T) {
	// Robustness: arbitrary byte soup must produce an error, not a panic.
	inputs := []string{
		"\x00\x01\x02",
		"%%MatrixMarket matrix coordinate real general",
		"%%MatrixMarket matrix coordinate real general\n-1 -1 -1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1e99999\n",
		"%%MatrixMarket\n",
		strings.Repeat("%comment\n", 100),
		"%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 1\n0 1 2.0\n",
	}
	for i, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("input %d panicked: %v", i, r)
				}
			}()
			ReadMatrix(strings.NewReader(in))
			ReadGraph(strings.NewReader(in))
		}()
	}
}

func TestBigValueParsing(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 -3.14159e-300\n"
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Val[0] != -3.14159e-300 {
		t.Fatalf("value %g", m.Val[0])
	}
}

func TestWriteGraphEmpty(t *testing.T) {
	var buf bytes.Buffer
	g := gen.Laplace2D(1, 1)
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 1 || h.NumEdges() != 0 {
		t.Fatal("empty graph round trip wrong")
	}
}
