package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a config that exercises every code path fast.
func tiny(buf *bytes.Buffer) Config {
	return Config{Out: buf, Scale: 0.001, Trials: 1}
}

func countLines(s string) int { return strings.Count(s, "\n") }

func TestTable1Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table1(tiny(&buf))
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Xor*") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if countLines(out) < 19 { // title + header + 17 rows
		t.Fatalf("too few rows:\n%s", out)
	}
}

func TestTable2Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table2(tiny(&buf))
	out := buf.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "af_shell7") {
		t.Fatalf("missing content:\n%s", out)
	}
	if countLines(out) < 19 {
		t.Fatalf("too few rows:\n%s", out)
	}
}

func TestTable3Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table3(tiny(&buf))
	out := buf.String()
	if !strings.Contains(out, "Elasticity 30x30x30") || !strings.Contains(out, "Laplace 100x100x100") {
		t.Fatalf("missing rows:\n%s", out)
	}
}

func TestTable4Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table4(tiny(&buf))
	out := buf.String()
	if !strings.Contains(out, "ViennaCL") {
		t.Fatalf("missing header:\n%s", out)
	}
	// Sizes of the three implementations must be within 30% of each
	// other on every matrix (the paper's "similar quality" claim).
	for _, line := range strings.Split(out, "\n")[2:] {
		f := strings.Fields(line)
		if len(f) != 4 {
			continue
		}
		var kk, cu, vi int
		if _, err := fmtSscan(f[1], &kk); err != nil {
			continue
		}
		fmtSscan(f[2], &cu)
		fmtSscan(f[3], &vi)
		lo, hi := kk, kk
		for _, v := range []int{cu, vi} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		// The "similar quality" claim is asymptotic; tiny instances are
		// noisy, so only enforce it for meaningfully sized sets.
		if lo > 100 && float64(hi)/float64(lo) > 1.3 {
			t.Fatalf("implementation sizes diverge: %s", line)
		}
	}
}

func TestTable5Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table5(tiny(&buf))
	out := buf.String()
	for _, want := range []string{"Serial Agg", "Serial D2C", "NB D2C", "MIS2 Basic", "MIS2 Agg"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing scheme %q:\n%s", want, out)
		}
	}
}

func TestTable6Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table6(tiny(&buf))
	out := buf.String()
	for _, want := range []string{"bodyy5", "Serena", "Laplace3D_100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing matrix %q:\n%s", want, out)
		}
	}
}

func TestFig2Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig2(tiny(&buf))
	out := buf.String()
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "Worklists") {
		t.Fatalf("missing content:\n%s", out)
	}
}

func TestFig3Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig3(tiny(&buf))
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("missing header")
	}
}

func TestFig4Fig5Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig4(tiny(&buf))
	Fig5(tiny(&buf))
	out := buf.String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "Figure 5") {
		t.Fatal("missing headers")
	}
}

func TestFig6Fig7Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig6(tiny(&buf))
	Fig7(tiny(&buf))
	out := buf.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "Figure 7") {
		t.Fatal("missing headers")
	}
	if !strings.Contains(out, "geomean") {
		t.Fatal("missing geomean rows")
	}
}

func TestQualitySummarySmoke(t *testing.T) {
	var buf bytes.Buffer
	QualitySummary(tiny(&buf))
	if !strings.Contains(buf.String(), "mean size") {
		t.Fatal("missing header")
	}
}

func TestFig1Trace(t *testing.T) {
	var buf bytes.Buffer
	Fig1(tiny(&buf))
	out := buf.String()
	for _, want := range []string{"Refresh Row", "Refresh Column", "Decide Set", "MIS-2 =", "verified"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "INVALID") {
		t.Fatalf("trace produced invalid set:\n%s", out)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geomean(2,8) = %f", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("geomean(nil) != 0")
	}
}

func TestThreadConfigs(t *testing.T) {
	cfg := threadConfigs()
	if len(cfg) == 0 || cfg[0] != 1 {
		t.Fatalf("bad configs %v", cfg)
	}
	for i := 1; i < len(cfg); i++ {
		if cfg[i] <= cfg[i-1] {
			t.Fatalf("configs not increasing: %v", cfg)
		}
	}
}

// fmtSscan is a tiny wrapper so the Table4 parser reads naturally.
func fmtSscan(s string, v *int) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errNotNumber
		}
		n = n*10 + int(c-'0')
	}
	*v = n
	return 1, nil
}

var errNotNumber = errorString("not a number")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestBigScalingSmoke(t *testing.T) {
	var buf bytes.Buffer
	BigScaling(Config{Out: &buf, Scale: 0.0002, Trials: 1})
	out := buf.String()
	if !strings.Contains(out, "Strong scaling") || !strings.Contains(out, "efficiency") {
		t.Fatalf("missing header:\n%s", out)
	}
}

func TestSmoothersSmoke(t *testing.T) {
	var buf bytes.Buffer
	Smoothers(tiny(&buf))
	out := buf.String()
	for _, want := range []string{"Jacobi", "Chebyshev", "Point SGS", "Cluster SGS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing smoother %q:\n%s", want, out)
		}
	}
}

func TestPartitionComparisonSmoke(t *testing.T) {
	var buf bytes.Buffer
	PartitionComparison(tiny(&buf))
	out := buf.String()
	if !strings.Contains(out, "MIS2 cut") || !strings.Contains(out, "geomean") {
		t.Fatalf("missing headers:\n%s", out)
	}
}
