module mis2go

go 1.24
