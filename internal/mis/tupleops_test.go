package mis

import (
	"testing"
	"testing/quick"
)

// mkTriple builds a 3-slot triple store for ordering tests.
func mkTriple(stats []uint8, rnds []uint64, ids []int32) triple {
	return triple{stat: stats, rnd: rnds, id: ids}
}

func TestTupleLessLexicographic(t *testing.T) {
	tr := mkTriple(
		[]uint8{statIn, statUnd, statUnd, statOut},
		[]uint64{99, 5, 5, 0},
		[]int32{3, 1, 2, 0},
	)
	// IN < undecided regardless of rnd.
	if !tupleLess(tr, 0, tr, 1) {
		t.Fatal("IN must order below undecided")
	}
	// undecided < OUT regardless of rnd.
	if !tupleLess(tr, 2, tr, 3) {
		t.Fatal("undecided must order below OUT")
	}
	// Equal stat and rnd: id breaks the tie.
	if !tupleLess(tr, 1, tr, 2) || tupleLess(tr, 2, tr, 1) {
		t.Fatal("id tiebreak wrong")
	}
	// Irreflexive.
	if tupleLess(tr, 1, tr, 1) {
		t.Fatal("tupleLess not irreflexive")
	}
}

func TestTupleLessTotalOrderProperty(t *testing.T) {
	// Totality and antisymmetry over random tuples.
	f := func(stats []uint8, rnds []uint64, ids []int32) bool {
		n := len(stats)
		if len(rnds) < n {
			n = len(rnds)
		}
		if len(ids) < n {
			n = len(ids)
		}
		if n < 2 {
			return true
		}
		tr := mkTriple(stats[:n], rnds[:n], ids[:n])
		for i := int32(0); int(i) < n; i++ {
			for j := int32(0); int(j) < n; j++ {
				less := tupleLess(tr, i, tr, j)
				greater := tupleLess(tr, j, tr, i)
				equal := tr.stat[i] == tr.stat[j] && tr.rnd[i] == tr.rnd[j] && tr.id[i] == tr.id[j]
				if equal && (less || greater) {
					return false
				}
				if !equal && less == greater {
					return false // exactly one must hold
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTupleAssignCopiesAllFields(t *testing.T) {
	src := mkTriple([]uint8{statOut}, []uint64{42}, []int32{7})
	dst := newTriple(1)
	tupleAssign(dst, 0, src, 0)
	if dst.stat[0] != statOut || dst.rnd[0] != 42 || dst.id[0] != 7 {
		t.Fatalf("assign lost fields: %+v", dst)
	}
}

func TestStatOrderingConstants(t *testing.T) {
	// The unpacked engine's correctness depends on this ordering.
	if !(statIn < statUnd && statUnd < statOut) {
		t.Fatal("status ordering broken")
	}
}
