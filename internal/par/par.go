// Package par provides a small deterministic parallel runtime built on
// goroutines: blocked parallel-for, reductions, exclusive prefix sums
// (scans), and order-preserving parallel filtering.
//
// It plays the role Kokkos plays in the paper: every construct here is
// deterministic with respect to the number of workers, because each worker
// writes only to disjoint index ranges and combination steps use a fixed
// blocking that does not depend on scheduling.
package par

import (
	"runtime"
	"sync"
)

// Runtime executes parallel constructs with a fixed number of workers.
// The zero value is not ready for use; call New.
type Runtime struct {
	workers int
}

// New returns a Runtime with the given number of workers.
// If workers <= 0, runtime.GOMAXPROCS(0) workers are used.
func New(workers int) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runtime{workers: workers}
}

// Workers reports the worker count.
func (r *Runtime) Workers() int { return r.workers }

// minGrain is the smallest per-worker chunk worth spawning a goroutine for.
const minGrain = 512

// For splits [0, n) into contiguous blocks and calls body(lo, hi) for each
// block, possibly concurrently. body must only write to state owned by
// indices in [lo, hi) for the result to be deterministic.
func (r *Runtime) For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := r.workers
	if w == 1 || n <= minGrain {
		body(0, n)
		return
	}
	if w > n/minGrain {
		w = n / minGrain
		if w < 1 {
			w = 1
		}
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEach calls body(i) for each i in [0, n), possibly concurrently.
func (r *Runtime) ForEach(n int, body func(i int)) {
	r.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Blocks returns the block boundaries For would use for n items:
// a slice b with b[0]=0, b[len(b)-1]=n. Exposed so that two-pass
// algorithms (count, then write) can share identical blocking.
func (r *Runtime) Blocks(n int) []int {
	if n <= 0 {
		return []int{0, 0}
	}
	w := r.workers
	if w == 1 || n <= minGrain {
		return []int{0, n}
	}
	if w > n/minGrain {
		w = n / minGrain
		if w < 1 {
			w = 1
		}
	}
	chunk := (n + w - 1) / w
	b := make([]int, 0, w+1)
	for lo := 0; lo < n; lo += chunk {
		b = append(b, lo)
	}
	b = append(b, n)
	return b
}

// ForBlocks runs body(b) for each block b in [0, nb) on its own
// goroutine. Intended for block-level two-pass algorithms where each
// index is a whole chunk of work (see Blocks).
func (r *Runtime) ForBlocks(nb int, body func(b int)) {
	if nb <= 0 {
		return
	}
	if nb == 1 || r.workers == 1 {
		for b := 0; b < nb; b++ {
			body(b)
		}
		return
	}
	var wg sync.WaitGroup
	for b := 0; b < nb; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			body(b)
		}(b)
	}
	wg.Wait()
}

// Integer is the constraint for scan/reduce element types.
type Integer interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64
}

// ReduceSum returns the sum of f(i) over [0, n). The reduction order is a
// fixed function of n and the worker count, so the result is deterministic
// (and for integers, order-independent anyway).
func ReduceSum[T Integer](r *Runtime, n int, f func(i int) T) T {
	blocks := r.Blocks(n)
	nb := len(blocks) - 1
	partial := make([]T, nb)
	var wg sync.WaitGroup
	for b := 0; b < nb; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			var s T
			for i := blocks[b]; i < blocks[b+1]; i++ {
				s += f(i)
			}
			partial[b] = s
		}(b)
	}
	wg.Wait()
	var total T
	for _, p := range partial {
		total += p
	}
	return total
}

// ReduceMax returns the maximum of f(i) over [0, n), or zero if n <= 0.
func ReduceMax[T Integer](r *Runtime, n int, f func(i int) T) T {
	if n <= 0 {
		var zero T
		return zero
	}
	blocks := r.Blocks(n)
	nb := len(blocks) - 1
	partial := make([]T, nb)
	var wg sync.WaitGroup
	for b := 0; b < nb; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			m := f(blocks[b])
			for i := blocks[b] + 1; i < blocks[b+1]; i++ {
				if v := f(i); v > m {
					m = v
				}
			}
			partial[b] = m
		}(b)
	}
	wg.Wait()
	m := partial[0]
	for _, p := range partial[1:] {
		if p > m {
			m = p
		}
	}
	return m
}

// ScanExclusive computes the exclusive prefix sum of in into out and
// returns the total. out must have len(in)+1 capacity or equal length len(in);
// if len(out) == len(in)+1, out[len(in)] is set to the total.
// in and out may alias.
//
// The computation is blocked: per-block sums, a serial scan over the block
// sums, then a per-block local scan. Identical results for any worker count.
func ScanExclusive[T Integer](r *Runtime, in, out []T) T {
	n := len(in)
	if n == 0 {
		if len(out) > 0 {
			out[0] = 0
		}
		return 0
	}
	blocks := r.Blocks(n)
	nb := len(blocks) - 1
	if nb == 1 {
		var run T
		for i := 0; i < n; i++ {
			v := in[i]
			out[i] = run
			run += v
		}
		if len(out) > n {
			out[n] = run
		}
		return run
	}
	sums := make([]T, nb)
	var wg sync.WaitGroup
	for b := 0; b < nb; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			var s T
			for i := blocks[b]; i < blocks[b+1]; i++ {
				s += in[i]
			}
			sums[b] = s
		}(b)
	}
	wg.Wait()
	var run T
	offsets := make([]T, nb)
	for b := 0; b < nb; b++ {
		offsets[b] = run
		run += sums[b]
	}
	total := run
	for b := 0; b < nb; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			acc := offsets[b]
			for i := blocks[b]; i < blocks[b+1]; i++ {
				v := in[i]
				out[i] = acc
				acc += v
			}
		}(b)
	}
	wg.Wait()
	if len(out) > n {
		out[n] = total
	}
	return total
}

// Filter writes the elements of src for which keep returns true into dst,
// preserving order, and returns the filled prefix of dst. dst must have
// capacity >= len(src); src and dst must not alias.
//
// This is the worklist-compaction primitive of Algorithm 1 (lines 33-34):
// a two-pass count + exclusive scan + scatter, deterministic for any worker
// count.
func Filter[T any](r *Runtime, src []T, dst []T, keep func(T) bool) []T {
	n := len(src)
	if n == 0 {
		return dst[:0]
	}
	blocks := r.Blocks(n)
	nb := len(blocks) - 1
	if nb == 1 {
		k := 0
		for _, v := range src {
			if keep(v) {
				dst[k] = v
				k++
			}
		}
		return dst[:k]
	}
	counts := make([]int, nb)
	var wg sync.WaitGroup
	for b := 0; b < nb; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			c := 0
			for i := blocks[b]; i < blocks[b+1]; i++ {
				if keep(src[i]) {
					c++
				}
			}
			counts[b] = c
		}(b)
	}
	wg.Wait()
	total := 0
	offsets := make([]int, nb)
	for b := 0; b < nb; b++ {
		offsets[b] = total
		total += counts[b]
	}
	for b := 0; b < nb; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			k := offsets[b]
			for i := blocks[b]; i < blocks[b+1]; i++ {
				if keep(src[i]) {
					dst[k] = src[i]
					k++
				}
			}
		}(b)
	}
	wg.Wait()
	return dst[:total]
}
