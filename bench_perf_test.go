// Hot-path micro-benchmarks tracked in the BENCH_*.json perf trajectory:
// iteration-heavy kernels (repeated SpGEMM/RAP, CG solves, V-cycle and
// Gauss-Seidel applications, repeated MIS-2) whose per-call scheduling and
// allocation cost the persistent worker pool and scratch arenas remove.
// Run via `make bench`, which writes BENCH_PR<N>.json.
package mis2go

import (
	"context"
	"sync"
	"testing"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/coarsen"
	"mis2go/internal/gen"
	"mis2go/internal/gs"
	"mis2go/internal/krylov"
	"mis2go/internal/mis"
	"mis2go/internal/par"
	"mis2go/internal/serve"
	"mis2go/internal/sparse"
)

// BenchmarkRepeatedMultiply measures back-to-back SpGEMM calls with the
// same operands, the pattern of AMG setup (accumulator reuse target).
func BenchmarkRepeatedMultiply(b *testing.B) {
	g := gen.Laplace3D(20, 20, 20)
	a := gen.Laplacian(g, 0.1)
	agg := coarsen.MIS2Aggregation(g, coarsen.Options{})
	p := coarsen.Prolongator(agg)
	rt := par.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.Multiply(rt, a, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepeatedRAP measures the Galerkin triple product repeated with
// the same operands (two chained SpGEMMs sharing accumulators).
func BenchmarkRepeatedRAP(b *testing.B) {
	g := gen.Laplace3D(20, 20, 20)
	a := gen.Laplacian(g, 0.1)
	agg := coarsen.MIS2Aggregation(g, coarsen.Options{})
	p := coarsen.Prolongator(agg)
	r := p.Transpose()
	rt := par.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.RAP(rt, r, a, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCGJacobi measures repeated Jacobi-preconditioned CG solves of
// the same system, the repeated-solve pattern Workspace reuse targets.
func BenchmarkCGJacobi(b *testing.B) {
	g := gen.Laplace3D(24, 24, 24)
	a := gen.Laplacian(g, 1e-4)
	n := a.Rows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	m, err := krylov.Jacobi(a)
	if err != nil {
		b.Fatal(err)
	}
	rt := par.New(0)
	x := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := krylov.CG(rt, a, rhs, x, 1e-8, 400, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCGJacobiWorkspace is BenchmarkCGJacobi through a reused
// SolverWorkspace: the zero-allocation repeated-solve path.
func BenchmarkCGJacobiWorkspace(b *testing.B) {
	g := gen.Laplace3D(24, 24, 24)
	a := gen.Laplacian(g, 1e-4)
	n := a.Rows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	m, err := krylov.Jacobi(a)
	if err != nil {
		b.Fatal(err)
	}
	rt := par.New(0)
	x := make([]float64, n)
	ws := krylov.NewWorkspace(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := krylov.CGWith(rt, a, rhs, x, 1e-8, 400, m, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpMVHot measures the bare SpMV kernel on a mesh matrix.
func BenchmarkSpMVHot(b *testing.B) {
	g := gen.Laplace3D(40, 40, 40)
	a := gen.Laplacian(g, 0.1)
	x := make([]float64, a.Rows)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	rt := par.New(0)
	b.SetBytes(int64(12 * a.NNZ()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SpMV(rt, x, y)
	}
}

// BenchmarkSpMVSELL measures the SELL-C-sigma SpMV on the same matrix as
// BenchmarkSpMVHot (which stays on CSR): the column-compressed chunk
// kernel with 8 independent accumulators against the row-major CSR
// traversal. The ratio is recorded in BENCH_PR4.json as SELL_vs_CSR.
func BenchmarkSpMVSELL(b *testing.B) {
	g := gen.Laplace3D(40, 40, 40)
	a := gen.Laplacian(g, 0.1)
	s, err := sparse.NewSELL(a, 0)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, a.Rows)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	rt := par.New(0)
	b.SetBytes(int64(12 * a.NNZ()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpMV(rt, x, y)
	}
}

// BenchmarkSpMM8 measures the batched multi-RHS product with 8
// right-hand sides in the interleaved layout: one traversal of A serves
// all 8 columns. Compare against BenchmarkSpMV8Separate (the same work
// as 8 independent SpMV calls, re-reading A each time); the ratio is
// recorded in BENCH_PR2.json as SpMM8_vs_8xSpMV.
func BenchmarkSpMM8(b *testing.B) {
	g := gen.Laplace3D(40, 40, 40)
	a := gen.Laplacian(g, 0.1)
	const k = 8
	x := make([]float64, a.Cols*k)
	y := make([]float64, a.Rows*k)
	for i := range x {
		x[i] = float64(i % 7)
	}
	rt := par.New(0)
	b.SetBytes(int64(12 * a.NNZ() * k))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SpMM(rt, k, x, y)
	}
}

// BenchmarkSpMV8Separate is the unbatched baseline for BenchmarkSpMM8:
// 8 separate SpMV calls over contiguous single-RHS vectors.
func BenchmarkSpMV8Separate(b *testing.B) {
	g := gen.Laplace3D(40, 40, 40)
	a := gen.Laplacian(g, 0.1)
	const k = 8
	xs := make([][]float64, k)
	ys := make([][]float64, k)
	for j := 0; j < k; j++ {
		xs[j] = make([]float64, a.Cols)
		ys[j] = make([]float64, a.Rows)
		for i := range xs[j] {
			xs[j][i] = float64((i*k + j) % 7)
		}
	}
	rt := par.New(0)
	b.SetBytes(int64(12 * a.NNZ() * k))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < k; j++ {
			a.SpMV(rt, xs[j], ys[j])
		}
	}
}

// BenchmarkCGBatch8Jacobi measures a batched 8-RHS Jacobi-preconditioned
// CG solve through a reused workspace — the multi-RHS analogue of
// BenchmarkCGJacobiWorkspace, sharing one SpMM traversal per iteration
// across all columns.
func BenchmarkCGBatch8Jacobi(b *testing.B) {
	g := gen.Laplace3D(24, 24, 24)
	a := gen.Laplacian(g, 1e-4)
	n := a.Rows
	const k = 8
	rhs := make([]float64, n*k)
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	m, err := krylov.Jacobi(a)
	if err != nil {
		b.Fatal(err)
	}
	rt := par.New(0)
	x := make([]float64, n*k)
	ws := krylov.NewWorkspace(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := krylov.CGBatchWith(rt, a, rhs, x, k, 1e-8, 400, m, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMGBuild measures one full AMG setup — graph extraction,
// MIS-2 aggregation, SpGEMM pattern discovery, and all numeric work.
// Compare against BenchmarkAMGRefresh (the values-only re-setup on the
// same pattern); the ratio is recorded in BENCH_PR3.json as
// Resetup_vs_FullSetup.
func BenchmarkAMGBuild(b *testing.B) {
	g := gen.Laplace3D(24, 24, 24)
	a := gen.Laplacian(g, 1e-4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewAMG(a, AMGOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMGRefresh measures the same-pattern numeric re-setup
// (Hierarchy.Refresh): cached plans replayed, level matrices and the
// coarse factorization refilled in place.
func BenchmarkAMGRefresh(b *testing.B) {
	g := gen.Laplace3D(24, 24, 24)
	a := gen.Laplacian(g, 1e-4)
	h, err := NewAMG(a, AMGOptions{})
	if err != nil {
		b.Fatal(err)
	}
	a2 := a.Clone()
	for p := range a2.Val {
		a2.Val[p] *= 1.25
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Refresh(a2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVCycleApply measures one V-cycle application (the AMG
// preconditioner cost inside every CG iteration).
func BenchmarkVCycleApply(b *testing.B) {
	g := gen.Laplace3D(20, 20, 20)
	a := gen.Laplacian(g, 1e-4)
	h, err := NewAMG(a, AMGOptions{})
	if err != nil {
		b.Fatal(err)
	}
	n := a.Rows
	r := make([]float64, n)
	z := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Precondition(r, z)
	}
}

// BenchmarkGSSweepApply measures one symmetric multicolor GS sweep.
func BenchmarkGSSweepApply(b *testing.B) {
	g := gen.Laplace3D(20, 20, 20)
	a := gen.Laplacian(g, 1e-4)
	m, err := gs.NewPoint(a, 0)
	if err != nil {
		b.Fatal(err)
	}
	n := a.Rows
	rhs := make([]float64, n)
	x := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%5) - 2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Apply(rhs, x, 1, true)
	}
}

// BenchmarkMIS2Repeated measures back-to-back MIS-2 setups on the same
// graph (the arena reuse target for t/m and the worklists).
func BenchmarkMIS2Repeated(b *testing.B) {
	g := gen.Laplace3D(32, 32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mis.MIS2(g, mis.Options{})
	}
}

// serveBenchRequest is one request of the serving-throughput mix.
type serveBenchRequest struct {
	a *sparse.Matrix
	b []float64
}

// serveBenchMix is the fixed request mix both serving benchmarks
// replay: two sparsity patterns x four value sets x four same-operator
// repeats, ordered so same-operator requests are adjacent (concurrent
// clients pull them into the batching window together). 32 requests.
func serveBenchMix() []serveBenchRequest {
	patterns := []*sparse.Matrix{
		gen.Laplacian(gen.Laplace3D(16, 16, 16), 0.05),
		gen.Laplacian(gen.Laplace2D(56, 56), 0.1),
	}
	var mix []serveBenchRequest
	for p, base := range patterns {
		rhs := make([]float64, base.Rows)
		for i := range rhs {
			rhs[i] = 1 + float64((i+p)%13)/13
		}
		for v := 0; v < 4; v++ {
			a := base.Clone()
			a.Scale(1 + 0.25*float64(v))
			for rep := 0; rep < 4; rep++ {
				mix = append(mix, serveBenchRequest{a: a, b: rhs})
			}
		}
	}
	return mix
}

// BenchmarkServeThroughput measures the solve service on the mixed
// new-pattern/refresh/repeat request stream, driven by 8 concurrent
// client goroutines: the fingerprint cache amortizes setup, identical
// operators are served for free, and the batching window coalesces
// same-operator solves into shared CGBatch calls. One op = the whole
// 32-request mix. Compare BenchmarkSequentialSolves (the ratio is
// Serve_vs_SequentialSolves in BENCH_PR5.json).
func BenchmarkServeThroughput(b *testing.B) {
	mix := serveBenchMix()
	s := serve.New(serve.Config{Tol: 1e-8, MaxIter: 400, BatchWindow: 500 * time.Microsecond})
	ctx := context.Background()
	const clients = 8
	// Warm the cache with one sequential pass so every measured op does
	// the same work (refreshes/reuses/coalesced solves, no cold builds):
	// the ratio against BenchmarkSequentialSolves is explicitly
	// steady-state service vs. naive per-request setup.
	for _, r := range mix {
		if _, _, err := s.Solve(ctx, r.a, r.b); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make(chan serveBenchRequest, len(mix))
		for _, r := range mix {
			work <- r
		}
		close(work)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := range work {
					if _, _, err := s.Solve(ctx, r.a, r.b); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// BenchmarkSequentialSolves is the single-caller baseline for the same
// request mix: every request pays a full hierarchy build plus a solo
// CG solve, one after another — what each client would do without the
// service. One op = the whole 32-request mix.
func BenchmarkSequentialSolves(b *testing.B) {
	mix := serveBenchMix()
	rt := par.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range mix {
			h, err := amg.Build(r.a, amg.Options{})
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, r.a.Rows)
			bb := append([]float64(nil), r.b...)
			if _, err := krylov.CGBatchWith(rt, r.a, bb, x, 1, 1e-8, 400, h, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// shardedBenchStream is the request stream both sharded-serving
// benchmarks replay: one large fixed-pattern operator stepped through 8
// localized value updates (a time-stepping workload where each step
// perturbs only the diagonal of one corner of the mesh). Every request
// is a same-pattern value change, so the contest is refresh cost: the
// sharded path re-runs numeric setup only for the subdomains whose rows
// changed, the single-hierarchy path replays the whole multigrid
// numeric setup each step. (The Schwarz-CG solve itself costs more per
// iteration than AMG-CG at this size, so the ratio is not expected to
// exceed 1 — it pins the refresh-locality advantage against the solver
// overhead so regressions in either are visible.)
func shardedBenchStream() []serveBenchRequest {
	base := gen.Laplacian(gen.Laplace2D(96, 96), 0.05)
	rhs := make([]float64, base.Rows)
	for i := range rhs {
		rhs[i] = 1 + float64(i%13)/13
	}
	var mix []serveBenchRequest
	for v := 0; v < 8; v++ {
		a := base.Clone()
		// Bump the diagonal of the first 96 rows only: the update is
		// confined to one corner of the mesh, touching one or two of
		// the eight subdomains.
		for r := 0; r < 96; r++ {
			for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
				if a.Col[p] == int32(r) {
					a.Val[p] += 0.5 * float64(v+1)
				}
			}
		}
		mix = append(mix, serveBenchRequest{a: a, b: rhs})
	}
	return mix
}

// BenchmarkShardedServe measures the domain-decomposed serving path on
// the localized-update stream: requests route through ShardThreshold
// into per-subdomain cache entries, and each value step refreshes only
// the subdomains whose rows changed (SubReuses for the rest). One op =
// the whole 8-step stream. Compare BenchmarkSingleHierarchyServe (the
// ratio is Sharded_vs_Single in the bench JSON).
func BenchmarkShardedServe(b *testing.B) {
	mix := shardedBenchStream()
	s := serve.New(serve.Config{
		Tol: 1e-8, MaxIter: 400,
		ShardThreshold: 100, ShardSubdomains: 8, CacheCapacity: 32,
	})
	ctx := context.Background()
	for _, r := range mix {
		if _, _, err := s.Solve(ctx, r.a, r.b); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range mix {
			if _, _, err := s.Solve(ctx, r.a, r.b); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSingleHierarchyServe is the whole-hierarchy baseline for the
// same localized-update stream: sharding disabled, so every value step
// pays a full AMG numeric re-setup before its solve. One op = the whole
// 8-step stream.
func BenchmarkSingleHierarchyServe(b *testing.B) {
	mix := shardedBenchStream()
	s := serve.New(serve.Config{Tol: 1e-8, MaxIter: 400, CacheCapacity: 32})
	ctx := context.Background()
	for _, r := range mix {
		if _, _, err := s.Solve(ctx, r.a, r.b); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range mix {
			if _, _, err := s.Solve(ctx, r.a, r.b); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// precisionBenchSystem is the problem of the mixed-precision V-cycle
// pair: a 27-point 88^3 grid (681k rows, 18M entries). The dense
// stencil matters: per fine-level row the smoother streams 27 values +
// 27 column indices + a few vector words, so shrinking values from 8
// to 4 bytes cuts (27*12+32)/(27*8+32) ≈ 1.44x of the traffic — on a
// 7-point stencil the same arithmetic caps out near 1.3x. On top of
// that byte ratio the size is chosen so the f64 hierarchy (~280 MB)
// always spills this machine's shared L3 while the f32 one (~195 MB)
// fits when the host is quiet. Column indices are streamed either way,
// so a pure-bandwidth run can never exceed 12/8 = 1.5x; anything at or
// above that line is cache capacity, not bandwidth.
func precisionBenchSystem() *sparse.Matrix {
	return gen.Laplacian(gen.Grid3D27(88, 88, 88), 1e-4)
}

// BenchmarkVCycleF64Apply is the f64 half of the mixed-precision
// V-cycle pair: one V-cycle application through float64-valued level
// operators on the large precision benchmark system. Compare
// BenchmarkVCycleF32Apply; the ratio is recorded in BENCH_PR8.json as
// VCycleF32_vs_F64.
func BenchmarkVCycleF64Apply(b *testing.B) {
	benchVCyclePrecision(b, sparse.PrecisionF64)
}

// BenchmarkVCycleF32Apply is the f32 half: the same V-cycle through
// float32-valued operators (f64 vectors, f64 accumulation — only the
// stored bytes shrink).
func BenchmarkVCycleF32Apply(b *testing.B) {
	benchVCyclePrecision(b, sparse.PrecisionF32)
}

func benchVCyclePrecision(b *testing.B, prec sparse.Precision) {
	a := precisionBenchSystem()
	h, err := NewAMG(a, AMGOptions{Precision: prec})
	if err != nil {
		b.Fatal(err)
	}
	n := a.Rows
	r := make([]float64, n)
	z := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	h.Precondition(r, z) // touch every level once before timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Precondition(r, z)
	}
}

// precisionServeStream is the request stream of the mixed-precision
// serving pair: a 27-point 56^3 system stepped through 3 same-pattern
// value updates, each served once — a time-stepping workload where
// every request pays a numeric refresh plus an AMG-CG solve. (Smaller
// than the V-cycle pair's system on purpose: a full CG solve per step
// multiplies the per-cycle cost ~15x, and at 88^3 the pair would
// dominate the bench run's wall clock.) The refresh cost (f64 SpGEMM
// replay) is identical across precisions; what the f32 service saves
// is the V-cycle and outer matvec bandwidth of every CG iteration.
func precisionServeStream() []serveBenchRequest {
	base := gen.Laplacian(gen.Grid3D27(56, 56, 56), 1e-4)
	rhs := make([]float64, base.Rows)
	for i := range rhs {
		rhs[i] = 1 + float64(i%13)/13
	}
	var mix []serveBenchRequest
	for v := 0; v < 3; v++ {
		a := base.Clone()
		a.Scale(1 + 0.25*float64(v))
		mix = append(mix, serveBenchRequest{a: a, b: rhs})
	}
	return mix
}

// BenchmarkServePrecisionF64 serves the refresh+solve stream with the
// default all-f64 policy. Compare BenchmarkServePrecisionF32; the ratio
// is recorded in BENCH_PR8.json as ServeF32_vs_F64. One op = the whole
// 3-step stream.
func BenchmarkServePrecisionF64(b *testing.B) {
	benchServePrecision(b, sparse.PrecisionF64)
}

// BenchmarkServePrecisionF32 is the same stream through a service
// configured with Config.Precision = f32: f32-valued hierarchy levels
// and outer operator, f64 CG recurrence, bitwise-deterministic serving.
func BenchmarkServePrecisionF32(b *testing.B) {
	benchServePrecision(b, sparse.PrecisionF32)
}

func benchServePrecision(b *testing.B, prec sparse.Precision) {
	mix := precisionServeStream()
	s := serve.New(serve.Config{Tol: 1e-8, MaxIter: 400, Precision: prec, CacheCapacity: 4})
	ctx := context.Background()
	// Warm pass: the one cold hierarchy build happens here, so every
	// measured op pays the same steady-state refresh+solve work.
	for _, r := range mix {
		if _, _, err := s.Solve(ctx, r.a, r.b); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range mix {
			if _, _, err := s.Solve(ctx, r.a, r.b); err != nil {
				b.Fatal(err)
			}
		}
	}
}
