// Command amgsolve solves a Laplace3D problem with SA-AMG preconditioned
// conjugate gradient, using a selectable aggregation scheme — a
// command-line version of the paper's Table V experiment for one scheme.
//
// Usage:
//
//	amgsolve -n 60 -agg mis2agg -tol 1e-12
//
// With -resetup N the command additionally re-runs the numeric setup
// phase N times on value-perturbed same-pattern matrices
// (Hierarchy.Refresh) and reports the re-setup vs full-setup ratio —
// the time-stepping/Newton workload the symbolic/numeric split serves.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/coarsen"
	"mis2go/internal/gen"
	"mis2go/internal/graph"
	"mis2go/internal/krylov"
	"mis2go/internal/order"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

func main() {
	n := flag.Int("n", 50, "grid side (problem has n^3 unknowns)")
	aggName := flag.String("agg", "mis2agg", "aggregation: mis2agg, mis2basic, serial, d2c")
	tol := flag.Float64("tol", 1e-12, "CG relative tolerance")
	threads := flag.Int("threads", 0, "worker count (0 = all cores)")
	resetup := flag.Int("resetup", 0, "re-run the numeric setup N times on same-pattern perturbed values and report the re-setup ratio")
	formatName := flag.String("format", "auto", "per-level operator format: auto, csr, sell")
	rcm := flag.Bool("rcm", false, "reorder the system with reverse Cuthill-McKee before solving (solution is inverse-permuted back)")
	flag.Parse()
	format, err := sparse.ParseFormat(*formatName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	aggs := map[string]amg.AggregateFunc{
		"mis2agg": func(g *graph.CSR) coarsen.Aggregation {
			return coarsen.MIS2Aggregation(g, coarsen.Options{Threads: *threads})
		},
		"mis2basic": func(g *graph.CSR) coarsen.Aggregation {
			return coarsen.Basic(g, coarsen.Options{Threads: *threads})
		},
		"serial": coarsen.SerialGreedy,
		"d2c":    func(g *graph.CSR) coarsen.Aggregation { return coarsen.D2C(g, *threads, true) },
	}
	aggFn, ok := aggs[*aggName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown aggregation %q\n", *aggName)
		os.Exit(2)
	}

	g := gen.Laplace3D(*n, *n, *n)
	a := gen.DirichletLaplacian(g, 6)
	fmt.Printf("problem: Laplace3D %d^3, %d unknowns, %d nonzeros\n", *n, a.Rows, a.NNZ())

	// Optional bandwidth-reducing reordering: solve P·A·Pᵀ (Px) = Pb and
	// inverse-permute the solution back to the original numbering.
	var perm []int32
	if *rcm {
		bwBefore := order.Bandwidth(a)
		perm = order.RCM(a.Graph())
		a, err = order.PermuteMatrix(a, perm)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("rcm: bandwidth %d -> %d\n", bwBefore, order.Bandwidth(a))
	}

	start := time.Now()
	h, err := amg.Build(a, amg.Options{Aggregate: aggFn, Threads: *threads, Format: format})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	setup := time.Since(start)
	fmt.Printf("setup: %d levels, operator complexity %.2f, %.3f s\n",
		h.NumLevels(), h.OperatorComplexity(), setup.Seconds())
	fmt.Printf("formats:")
	for _, l := range h.Levels {
		fmt.Printf(" %s(%d)", l.Format(), l.A.Rows)
	}
	fmt.Println()

	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%17)/17
	}
	if perm != nil {
		pb := make([]float64, len(b))
		if err := order.PermuteVector(pb, b, perm); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b = pb
	}
	// The outer CG matvec runs through the same format policy as the
	// hierarchy levels, so -format sell accelerates the fine-grid SpMV
	// of every iteration too.
	aop, err := sparse.NewOperator(a, format, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	x := make([]float64, a.Rows)
	start = time.Now()
	st, err := krylov.CG(par.New(*threads), aop, b, x, *tol, 1000, h)
	solve := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if perm != nil {
		orig := make([]float64, len(x))
		if err := order.InversePermuteVector(orig, x, perm); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		x = orig
	}
	xsum := 0.0
	for _, v := range x {
		xsum += v
	}
	fmt.Printf("solve: %d CG iterations, relres %.2e, xsum %.6e, %.3f s\n",
		st.Iterations, st.RelResidual, xsum, solve.Seconds())

	if *resetup > 0 {
		// Same pattern, new values each round: a global SPD-preserving
		// rescale, the shape of a time step or Newton update.
		a2 := a.Clone()
		var total time.Duration
		for it := 1; it <= *resetup; it++ {
			s := 1 + 0.01*float64(it)
			for p := range a2.Val {
				a2.Val[p] = a.Val[p] * s
			}
			start = time.Now()
			if err := h.Refresh(a2); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			total += time.Since(start)
		}
		mean := total / time.Duration(*resetup)
		fmt.Printf("re-setup: %d refreshes, mean %.3f s (full setup %.3f s, %.1fx faster)\n",
			*resetup, mean.Seconds(), setup.Seconds(), setup.Seconds()/mean.Seconds())
	}
}
