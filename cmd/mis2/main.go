// Command mis2 computes a distance-2 maximal independent set of a
// generated graph and reports size, iteration count, and timing.
//
// Usage examples:
//
//	mis2 -gen laplace3d -nx 100 -ny 100 -nz 100
//	mis2 -gen elasticity -nx 30 -ny 30 -nz 30
//	mis2 -suite Hook_1498 -scale 0.1
//	mis2 -gen fem -nx 40 -ny 40 -nz 40 -avgdeg 25 -variant baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mis2go/internal/gen"
	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/matrices"
	"mis2go/internal/mis"
)

func main() {
	genName := flag.String("gen", "laplace3d", "generator: laplace3d, laplace2d, elasticity, fem")
	suite := flag.String("suite", "", "use a named suite matrix surrogate instead of -gen")
	scale := flag.Float64("scale", 0.05, "suite matrix scale (with -suite)")
	nx := flag.Int("nx", 50, "grid x dimension")
	ny := flag.Int("ny", 50, "grid y dimension")
	nz := flag.Int("nz", 50, "grid z dimension")
	avgDeg := flag.Float64("avgdeg", 20, "target average degree (fem generator)")
	threads := flag.Int("threads", 0, "worker count (0 = all cores)")
	variant := flag.String("variant", "", "ablation variant: baseline, random, worklists, packed, simd (default: production)")
	hashKind := flag.String("hash", "xorstar", "priority hash: xorstar, xor, fixed")
	verify := flag.Bool("verify", true, "verify the result is a valid MIS-2")
	stats := flag.Bool("stats", false, "print per-iteration worklist sizes")
	flag.Parse()

	var g *graph.CSR
	switch {
	case *suite != "":
		spec, err := matrices.Get(*suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		g = spec.Build(*scale)
	default:
		switch *genName {
		case "laplace3d":
			g = gen.Laplace3D(*nx, *ny, *nz)
		case "laplace2d":
			g = gen.Laplace2D(*nx, *ny)
		case "elasticity":
			g = gen.Elasticity3D(*nx, *ny, *nz, 3)
		case "fem":
			g = gen.RandomFEM(*nx, *ny, *nz, *avgDeg, 0xC0FFEE)
		default:
			fmt.Fprintf(os.Stderr, "unknown generator %q\n", *genName)
			os.Exit(2)
		}
	}

	var kind hash.Kind
	switch *hashKind {
	case "xorstar":
		kind = hash.XorStar
	case "xor":
		kind = hash.Xor
	case "fixed":
		kind = hash.Fixed
	default:
		fmt.Fprintf(os.Stderr, "unknown hash %q\n", *hashKind)
		os.Exit(2)
	}

	fmt.Printf("graph: |V|=%d |E|=%d avg deg %.2f max deg %d\n",
		g.N, g.NumEdges()/2, g.AvgDegree(), g.MaxDegree())

	var res mis.Result
	start := time.Now()
	if *variant == "" {
		res = mis.MIS2(g, mis.Options{Hash: kind, Threads: *threads, CollectStats: *stats})
	} else {
		v, ok := map[string]mis.Variant{
			"baseline": mis.VariantBaseline, "random": mis.VariantRandomized,
			"worklists": mis.VariantWorklists, "packed": mis.VariantPacked,
			"simd": mis.VariantSIMD,
		}[*variant]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
			os.Exit(2)
		}
		res = mis.MIS2Variant(g, v, *threads)
	}
	elapsed := time.Since(start)

	fmt.Printf("MIS-2: %d vertices (%.2f%% of V), %d iterations, %.3f ms\n",
		len(res.InSet), 100*float64(len(res.InSet))/float64(max(g.N, 1)),
		res.Iterations, float64(elapsed.Nanoseconds())/1e6)
	if *stats && res.Worklist1 != nil {
		fmt.Println("iteration  worklist1  worklist2")
		for i := range res.Worklist1 {
			fmt.Printf("%9d %10d %10d\n", i, res.Worklist1[i], res.Worklist2[i])
		}
	}
	if *verify {
		if err := mis.CheckMIS2(g, res.InSet); err != nil {
			fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("verified: valid distance-2 maximal independent set")
	}
}
