//go:build race

package mis2go

// raceEnabled reports whether the race detector is active; allocation-
// accounting tests skip under it because it randomly bypasses sync.Pool
// (the arena recycling path), charging spurious allocations.
const raceEnabled = true
