// Domain-decomposition example: the third coarsening use case from the
// paper's introduction (overlapping Schwarz methods, citing FROSch).
// Build a two-level additive Schwarz preconditioner whose subdomains come
// from MIS-2-coarsened multilevel partitioning and whose coarse space is
// an MIS-2 aggregation, then compare CG iteration counts against
// one-level Schwarz and plain CG.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mis2go"
)

func main() {
	g := mis2go.Laplace2D(96, 96)
	a := mis2go.DirichletLaplacian(g, 4)
	n := a.Rows
	fmt.Printf("problem: Laplace2D 96^2 = %d unknowns\n", n)

	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(0.05*float64(i)) + 1
	}

	solve := func(name string, m mis2go.Preconditioner) {
		x := make([]float64, n)
		start := time.Now()
		st, err := mis2go.SolveCG(a, b, x, 1e-10, 3000, m, 0)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-22s %4d CG iterations   %v\n",
			name, st.Iterations, time.Since(start).Round(time.Millisecond))
	}

	solve("plain CG", nil)

	oneLevel, err := mis2go.NewSchwarz(a, mis2go.SchwarzOptions{Subdomains: 16, NoCoarse: true})
	if err != nil {
		log.Fatal(err)
	}
	solve("one-level Schwarz", oneLevel)

	twoLevel, err := mis2go.NewSchwarz(a, mis2go.SchwarzOptions{Subdomains: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(two-level: %d subdomains + MIS-2 aggregation coarse space)\n",
		twoLevel.NumSubdomains())
	solve("two-level Schwarz", twoLevel)
}
