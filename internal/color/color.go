// Package color implements greedy graph coloring: serial and parallel
// distance-1 coloring (used by the multicolor Gauss-Seidel preconditioners
// of §III-C) and serial and parallel distance-2 coloring (the Serial D2C /
// NB D2C aggregation baselines of §VI-F).
//
// The parallel algorithms are Jones-Plassmann style with fixed hash
// priorities: a vertex is colored once it holds the highest priority among
// its uncolored (distance-1 or distance-2) neighbors, receiving the
// smallest color unused in its neighborhood. Because priorities are a pure
// function of the vertex id, the result is deterministic for any worker
// count.
//
//amg:deterministic
package color

import (
	"fmt"
	"sync"

	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/mis"
	"mis2go/internal/par"
)

// none marks an uncolored vertex.
const none int32 = -1

// Greedy colors g serially in vertex order with first-fit.
func Greedy(g *graph.CSR) []int32 {
	colors := make([]int32, g.N)
	for i := range colors {
		colors[i] = none
	}
	forbidden := make([]int32, g.N+1)
	for i := range forbidden {
		forbidden[i] = -1
	}
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if c := colors[w]; c != none {
				forbidden[c] = v
			}
		}
		colors[v] = firstFree(forbidden, v)
	}
	return colors
}

// GreedyDistance2 colors g serially so that no two vertices within
// distance 2 share a color.
func GreedyDistance2(g *graph.CSR) []int32 {
	colors := make([]int32, g.N)
	for i := range colors {
		colors[i] = none
	}
	forbidden := make([]int32, g.N+1)
	for i := range forbidden {
		forbidden[i] = -1
	}
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if c := colors[w]; c != none {
				forbidden[c] = v
			}
			for _, x := range g.Neighbors(w) {
				if x == v {
					continue
				}
				if c := colors[x]; c != none {
					forbidden[c] = v
				}
			}
		}
		colors[v] = firstFree(forbidden, v)
	}
	return colors
}

// firstFree returns the smallest color c >= 0 with forbidden[c] != v.
func firstFree(forbidden []int32, v int32) int32 {
	for c := int32(0); ; c++ {
		if forbidden[c] != v {
			return c
		}
	}
}

// Parallel colors g with a deterministic Jones-Plassmann iteration using
// the given worker count (0 = GOMAXPROCS).
func Parallel(g *graph.CSR, threads int) []int32 {
	return parallelColor(g, threads, false)
}

// ParallelDistance2 computes a deterministic parallel distance-2 coloring.
func ParallelDistance2(g *graph.CSR, threads int) []int32 {
	return parallelColor(g, threads, true)
}

func parallelColor(g *graph.CSR, threads int, dist2 bool) []int32 {
	rt := par.New(threads)
	n := g.N
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = none
	}
	if n == 0 {
		return colors
	}
	prio := make([]uint64, n)
	rt.For(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			prio[v] = hash.Xorshift64Star(uint64(v) + 1)
		}
	})
	higher := func(a, b int32) bool { // does a beat b?
		if prio[a] != prio[b] {
			return prio[a] > prio[b]
		}
		return a > b
	}

	wl := make([]int32, n)
	for i := range wl {
		wl[i] = int32(i)
	}
	buf := make([]int32, n)
	next := make([]int32, n) // colors assigned this round, applied at the barrier

	// Pool of per-worker forbidden-color scratch, stamped by vertex id.
	// Reuse across rounds is safe without resetting: a vertex stamps the
	// scratch only in the round it gets colored, so its stamps are never
	// consulted again.
	scratch := sync.Pool{New: func() any {
		f := make([]int32, n+1)
		for i := range f {
			f[i] = -1
		}
		return f
	}}

	for len(wl) > 0 {
		rt.For(len(wl), func(lo, hi int) {
			forbidden := scratch.Get().([]int32)
			defer scratch.Put(forbidden)
			for i := lo; i < hi; i++ {
				v := wl[i]
				next[v] = none
				isMax := true
				scan := func(w int32) bool {
					if colors[w] == none && higher(w, v) {
						return false
					}
					return true
				}
				for _, w := range g.Neighbors(v) {
					if !scan(w) {
						isMax = false
						break
					}
					if dist2 {
						for _, x := range g.Neighbors(w) {
							if x != v && !scan(x) {
								isMax = false
								break
							}
						}
						if !isMax {
							break
						}
					}
				}
				if !isMax {
					continue
				}
				for _, w := range g.Neighbors(v) {
					if c := colors[w]; c != none {
						forbidden[c] = v
					}
					if dist2 {
						for _, x := range g.Neighbors(w) {
							if x == v {
								continue
							}
							if c := colors[x]; c != none {
								forbidden[c] = v
							}
						}
					}
				}
				next[v] = firstFree(forbidden, v)
			}
		})
		// Apply this round's colors (barrier keeps reads/writes separate).
		rt.For(len(wl), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := wl[i]
				if next[v] != none {
					colors[v] = next[v]
				}
			}
		})
		remaining := par.Filter(rt, wl, buf, func(v int32) bool { return colors[v] == none })
		wl, buf = remaining, wl[:n]
	}
	return colors
}

// Distance2ViaMIS2 colors g at distance 2 by iterated maximal independent
// sets: every MIS-2 of g is a distance-2 independent set, i.e. one valid
// color class. Later classes must remain distance-2 independent *in g*
// even through already-colored vertices, so the iteration runs Luby MIS-1
// on induced subgraphs of the explicit square G² (Lemma IV.2: on the full
// graph the first round equals MIS-2(g)). This is the converse of the
// Serial D2C aggregation baseline (which derives independent sets from a
// coloring). Deterministic; parallel within each round.
func Distance2ViaMIS2(g *graph.CSR, threads int) []int32 {
	colors := make([]int32, g.N)
	for i := range colors {
		colors[i] = none
	}
	sq := g.Square()
	remaining := g.N
	keep := make([]bool, g.N)
	for c := int32(0); remaining > 0; c++ {
		for v := 0; v < g.N; v++ {
			keep[v] = colors[v] == none
		}
		sub, _, toOrig := sq.InducedSubgraph(keep)
		set := mis.LubyMIS1(sub, hash.XorStar, threads).InSet
		for _, s := range set {
			colors[toOrig[s]] = c
		}
		remaining -= len(set)
	}
	return colors
}

// NumColors returns 1 + the maximum color in the assignment (0 if empty).
func NumColors(colors []int32) int {
	m := int32(-1)
	for _, c := range colors {
		if c > m {
			m = c
		}
	}
	return int(m + 1)
}

// Sets groups vertices by color: Sets(colors)[c] lists the vertices of
// color c in ascending order. Deterministic.
func Sets(colors []int32) [][]int32 {
	nc := NumColors(colors)
	counts := make([]int, nc)
	for _, c := range colors {
		counts[c]++
	}
	sets := make([][]int32, nc)
	for c := range sets {
		sets[c] = make([]int32, 0, counts[c])
	}
	for v, c := range colors {
		sets[c] = append(sets[c], int32(v))
	}
	return sets
}

// Check verifies a distance-1 coloring: all vertices colored, no two
// adjacent vertices share a color.
func Check(g *graph.CSR, colors []int32) error {
	if len(colors) != g.N {
		return fmt.Errorf("color: %d colors for %d vertices", len(colors), g.N)
	}
	for v := int32(0); int(v) < g.N; v++ {
		if colors[v] < 0 {
			return fmt.Errorf("color: vertex %d uncolored", v)
		}
		for _, w := range g.Neighbors(v) {
			if colors[v] == colors[w] {
				return fmt.Errorf("color: adjacent vertices %d and %d share color %d", v, w, colors[v])
			}
		}
	}
	return nil
}

// CheckDistance2 verifies a distance-2 coloring.
func CheckDistance2(g *graph.CSR, colors []int32) error {
	if err := Check(g, colors); err != nil {
		return err
	}
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			for _, x := range g.Neighbors(w) {
				if x != v && colors[v] == colors[x] {
					return fmt.Errorf("color: distance-2 vertices %d and %d share color %d", v, x, colors[v])
				}
			}
		}
	}
	return nil
}
