package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mis2go/internal/amg"
	"mis2go/internal/gen"
	"mis2go/internal/serve"
)

// testServer returns an httptest server over a small solve service.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := serve.New(serve.Config{
		AMG:         amg.Options{MinCoarseSize: 30},
		Tol:         1e-10,
		MaxIter:     200,
		BatchWindow: -1,
	})
	ts := httptest.NewServer(newMux(svc, 64<<20))
	t.Cleanup(ts.Close)
	return ts
}

// laplaceRequest builds the JSON request body for a small Laplacian
// system with a deterministic RHS.
func laplaceRequest(t *testing.T, scale float64) ([]byte, int) {
	t.Helper()
	a := gen.Laplacian(gen.Laplace2D(12, 12), 0.1)
	a.Scale(scale)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	body, err := json.Marshal(solveRequest{
		Rows: a.Rows, RowPtr: a.RowPtr, Col: a.Col, Val: a.Val, B: b,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body, a.Rows
}

func postSolve(t *testing.T, ts *httptest.Server, body []byte) solveResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("solve status %d: %s", resp.StatusCode, msg)
	}
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestSolveEndpoint(t *testing.T) {
	ts := testServer(t)
	body, n := laplaceRequest(t, 1)

	sr := postSolve(t, ts, body)
	if sr.Outcome != "build" {
		t.Fatalf("first solve outcome %q, want build", sr.Outcome)
	}
	if len(sr.X) != n || len(sr.Columns) != 1 || !sr.Columns[0].Converged {
		t.Fatalf("bad response: %d unknowns, %d columns", len(sr.X), len(sr.Columns))
	}
	for _, v := range sr.X {
		if math.IsNaN(v) {
			t.Fatal("NaN in solution")
		}
	}

	// Same system again: served from cache with identical bits.
	sr2 := postSolve(t, ts, body)
	if sr2.Outcome != "reuse" {
		t.Fatalf("repeat outcome %q, want reuse", sr2.Outcome)
	}
	for i := range sr.X {
		if sr.X[i] != sr2.X[i] {
			t.Fatalf("cached solve differs at %d", i)
		}
	}

	// Same pattern, new values: numeric refresh.
	body3, _ := laplaceRequest(t, 2)
	if sr3 := postSolve(t, ts, body3); sr3.Outcome != "refresh" {
		t.Fatalf("new-values outcome %q, want refresh", sr3.Outcome)
	}
}

func TestSolveEndpointMultiRHS(t *testing.T) {
	ts := testServer(t)
	a := gen.Laplacian(gen.Laplace2D(10, 10), 0.1)
	bs := make([][]float64, 3)
	for j := range bs {
		bs[j] = make([]float64, a.Rows)
		for i := range bs[j] {
			bs[j][i] = float64((i+j)%5) + 1
		}
	}
	body, _ := json.Marshal(solveRequest{Rows: a.Rows, RowPtr: a.RowPtr, Col: a.Col, Val: a.Val, Bs: bs})
	sr := postSolve(t, ts, body)
	if len(sr.Columns) != 3 || sr.Batched != 3 {
		t.Fatalf("multi-RHS: %d columns batched %d, want 3/3", len(sr.Columns), sr.Batched)
	}
	if sr.X != nil {
		t.Fatal("single-RHS convenience field set on a bs-only request")
	}
}

func TestSolveEndpointRejectsBadRequests(t *testing.T) {
	ts := testServer(t)
	for name, body := range map[string]string{
		"garbage":    "{not json",
		"no-rhs":     `{"rows":1,"rowptr":[0,1],"col":[0],"val":[2]}`,
		"bad-matrix": `{"rows":2,"rowptr":[0,1],"col":[0],"val":[2],"b":[1,2]}`,
		"short-b":    `{"rows":2,"rowptr":[0,1,2],"col":[0,1],"val":[2,2],"b":[1]}`,
	} {
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s: accepted", name)
		}
	}
	resp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve status %d, want 405", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	body, _ := laplaceRequest(t, 1)
	postSolve(t, ts, body)
	postSolve(t, ts, body)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"amgserve_requests_total 2",
		"amgserve_cache_builds_total 1",
		"amgserve_cache_hits_total 1",
		"amgserve_canceled_total 0",
		"amgserve_panics_total 0",
		"amgserve_batched_rhs_ratio",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestSolveEndpointReportsNonConvergence: a solve that exhausts the
// iteration budget must not come back as a bare 200 — the response is
// 422 with the error and per-column stats, and the convenience "x"
// field is withheld.
func TestSolveEndpointReportsNonConvergence(t *testing.T) {
	svc := serve.New(serve.Config{
		AMG:         amg.Options{MinCoarseSize: 30},
		Tol:         1e-14,
		MaxIter:     1, // guaranteed non-convergence on a real system
		BatchWindow: -1,
	})
	ts := httptest.NewServer(newMux(svc, 64<<20))
	t.Cleanup(ts.Close)
	body, _ := laplaceRequest(t, 1)
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d for unconverged solve, want 422", resp.StatusCode)
	}
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Error == "" || sr.X != nil {
		t.Fatalf("unconverged response: error=%q x-set=%v, want error text and no convenience x", sr.Error, sr.X != nil)
	}
	if len(sr.Columns) != 1 || sr.Columns[0].Converged {
		t.Fatalf("unconverged response columns: %+v", sr.Columns)
	}
}
