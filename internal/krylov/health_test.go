package krylov

import (
	"errors"
	"math"
	"testing"

	"mis2go/internal/amg"
	"mis2go/internal/gen"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// TestHealthCheckClassifiesDivergence drives the guard state machine
// directly with a synthetic residual history: a spike shorter than the
// window is tolerated, a sustained blow-up past the factor is ErrDiverged.
func TestHealthCheckClassifiesDivergence(t *testing.T) {
	h := &Health{DivergeFactor: 100, DivergeWindow: 3}
	g := guardInit()
	// Healthy descent establishes best = 1e-3.
	for i, rel := range []float64{1, 1e-1, 1e-2, 1e-3} {
		if err := h.check(&g, "CG", -1, i, rel); err != nil {
			t.Fatalf("healthy descent tripped at %d: %v", i, err)
		}
	}
	// Two over-factor iterations, then recovery: the window resets.
	for i, rel := range []float64{1, 1, 1e-3} {
		if err := h.check(&g, "CG", -1, 4+i, rel); err != nil {
			t.Fatalf("sub-window spike tripped at %d: %v", i, err)
		}
	}
	// Three consecutive over-factor iterations trip the guard.
	var err error
	for i := 0; i < 3 && err == nil; i++ {
		err = h.check(&g, "CG", -1, 7+i, 10)
	}
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("want ErrDiverged, got %v", err)
	}
}

func TestHealthCheckClassifiesStagnation(t *testing.T) {
	h := &Health{StagnationWindow: 4, StagnationRel: 1e-2}
	g := guardInit()
	if err := h.check(&g, "CG", -1, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	// Sub-threshold "progress" counts as stagnation.
	var err error
	for i := 0; i < 4 && err == nil; i++ {
		err = h.check(&g, "CG", -1, 1+i, 0.999)
	}
	if !errors.Is(err, ErrStagnated) {
		t.Fatalf("want ErrStagnated, got %v", err)
	}
	// Real progress resets the counter.
	g = guardInit()
	rel := 1.0
	for i := 0; i < 40; i++ {
		rel *= 0.9
		if err := h.check(&g, "CG", -1, i, rel); err != nil {
			t.Fatalf("steady progress tripped at %d: %v", i, err)
		}
	}
}

func TestHealthCheckClassifiesNonFinite(t *testing.T) {
	h := DefaultHealth()
	for _, rel := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		g := guardInit()
		if err := h.check(&g, "CG", -1, 0, rel); !errors.Is(err, ErrNonFinite) {
			t.Fatalf("rel %v: want ErrNonFinite, got %v", rel, err)
		}
	}
}

// TestHealthCGNaNRHS: a NaN right-hand side poisons every residual
// norm. The guard classifies it at iteration 0; the unguarded solver
// burns the whole iteration budget before reporting ErrNotConverged.
func TestHealthCGNaNRHS(t *testing.T) {
	a, b, _ := spdProblem(10, 10)
	b[3] = math.NaN()
	x := make([]float64, a.Rows)
	st, err := CGCtx(nil, par.New(2), a, b, x, 1e-10, 500, nil, nil, DefaultHealth())
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("want ErrNonFinite, got %v", err)
	}
	if st.Iterations != 0 {
		t.Fatalf("guard should trip before the first iteration, ran %d", st.Iterations)
	}
	if _, err := CGCtx(nil, par.New(2), a, b, x, 1e-10, 500, nil, nil, nil); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("unguarded NaN solve: want ErrNotConverged, got %v", err)
	}
}

// TestHealthCGStagnationOnNearSingular: on the nearly singular Neumann
// Laplacian the attainable residual floors far above the requested
// tolerance. The guard converts the stall into ErrStagnated long
// before the iteration budget is gone.
func TestHealthCGStagnationOnNearSingular(t *testing.T) {
	g := gen.Laplace2D(20, 20)
	a := gen.Laplacian(g, 1e-9)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(0.37 * float64(i))
	}
	x := make([]float64, n)
	hg := &Health{StagnationWindow: 30}
	st, err := CGCtx(nil, par.New(2), a, b, x, 1e-14, 5000, nil, nil, hg)
	if !errors.Is(err, ErrStagnated) {
		t.Fatalf("want ErrStagnated, got %v (stats %+v)", err, st)
	}
	if st.Iterations >= 5000 {
		t.Fatalf("guard did not save the iteration budget: %d iterations", st.Iterations)
	}
}

func TestHealthCGBreakdownClassified(t *testing.T) {
	a := sparse.Identity(10)
	a.Scale(-1)
	b := make([]float64, 10)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, 10)
	if _, err := CG(par.New(1), a, b, x, 1e-8, 50, nil); !errors.Is(err, ErrBreakdown) {
		t.Fatalf("want ErrBreakdown, got %v", err)
	}
}

func TestHealthGMRESNaNRHS(t *testing.T) {
	a, b, _ := spdProblem(10, 10)
	b[0] = math.NaN()
	x := make([]float64, a.Rows)
	if _, err := GMRESCtx(nil, par.New(2), a, b, x, 1e-10, 300, 30, nil, nil, DefaultHealth()); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("want ErrNonFinite, got %v", err)
	}
}

// TestHealthCGBatchColumnClassified: one poisoned column aborts the
// batch with a classified error naming the failure class (the columns
// share one operator, so a numerical failure taints the whole batch).
func TestHealthCGBatchColumnClassified(t *testing.T) {
	a, b0, _ := spdProblem(10, 10)
	n, k := a.Rows, 3
	b := make([]float64, n*k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			b[i*k+j] = b0[i] * float64(j+1)
		}
	}
	b[5*k+1] = math.NaN() // poison column 1 only
	x := make([]float64, n*k)
	ws := NewWorkspace(n)
	_, err := CGBatchCtx(nil, par.New(2), a, b, x, k, 1e-10, 500, nil, ws, DefaultHealth())
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("want ErrNonFinite, got %v", err)
	}
}

// TestHealthGuardBitwiseIdentical: the guard reads only residual norms
// the convergence test already computes, so a guarded healthy solve is
// bitwise identical to the unguarded one at every worker count.
func TestHealthGuardBitwiseIdentical(t *testing.T) {
	a, b, _ := spdProblem(20, 20)
	ref := make([]float64, a.Rows)
	stRef, err := CGCtx(nil, par.New(1), a, b, ref, 1e-10, 2000, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 8} {
		x := make([]float64, a.Rows)
		st, err := CGCtx(nil, par.New(threads), a, b, x, 1e-10, 2000, nil, nil, DefaultHealth())
		if err != nil {
			t.Fatalf("threads %d: %v", threads, err)
		}
		if st.Iterations != stRef.Iterations {
			t.Fatalf("threads %d: %d iterations, want %d", threads, st.Iterations, stRef.Iterations)
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("threads %d: x[%d] = %x, want %x", threads, i, math.Float64bits(x[i]), math.Float64bits(ref[i]))
			}
		}
	}
}

// An exactly singular Neumann Laplacian under an AMG preconditioner is
// the canonical false-convergence poison: the CG recurrence residual
// sails below the tolerance while the true residual ||b - Ax||/||b||
// sits at ~55. The always-on false-convergence check must classify the
// solve ErrDiverged instead of reporting a garbage iterate as an
// answer (this exact case previously returned Converged with
// RelResidual 5e9 times the tolerance).
func TestHealthCGBatchFalseConvergenceClassified(t *testing.T) {
	g := gen.Laplace2D(16, 16)
	a := gen.Laplacian(g, 0)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	h, err := amg.Build(a, amg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	stats, err := CGBatch(par.New(1), a, b, x, 1, 1e-8, 500, h)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("want ErrDiverged (false convergence), got %v", err)
	}
	if stats[0].Converged {
		t.Fatalf("column reported converged with true relres %g", stats[0].RelResidual)
	}
	if stats[0].RelResidual < 1 {
		t.Fatalf("expected a catastrophic true residual, got %g", stats[0].RelResidual)
	}
}
