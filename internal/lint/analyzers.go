package lint

// All returns every amglint analyzer in stable order: the five
// repo-contract analyzers plus the two general passes (lockcopy,
// nilderef) that stand in for x/tools' copylocks/nilness in the
// offline build.
func All() []*Analyzer {
	return []*Analyzer{
		HotAlloc,
		DetOrder,
		CtxPoll,
		SentinelIs,
		AtomicField,
		LockCopy,
		NilDeref,
	}
}
