package lint_test

import (
	"testing"

	"mis2go/internal/lint"
	"mis2go/internal/lint/linttest"
)

// Each analyzer is pinned by a fixture package whose `// want` comments
// must all fire (the fixture fails without the analyzer) and whose
// clean forms must stay silent (any extra diagnostic fails the test).

func TestHotAllocFixtures(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "hotalloc")
}

func TestDetOrderFixtures(t *testing.T) {
	linttest.Run(t, lint.DetOrder, "detorder", "detorderplain")
}

func TestCtxPollFixtures(t *testing.T) {
	linttest.Run(t, lint.CtxPoll, "ctxpoll")
}

func TestSentinelIsFixtures(t *testing.T) {
	linttest.Run(t, lint.SentinelIs, "sentinelis")
}

func TestAtomicFieldFixtures(t *testing.T) {
	linttest.Run(t, lint.AtomicField, "atomicfield")
}

func TestLockCopyFixtures(t *testing.T) {
	linttest.Run(t, lint.LockCopy, "lockcopy")
}

func TestNilDerefFixtures(t *testing.T) {
	linttest.Run(t, lint.NilDeref, "nilderef")
}

// TestAnalyzerRegistry pins the advertised analyzer set: the Makefile
// and DESIGN.md document five repo-contract analyzers plus the two
// x/tools stand-ins.
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"hotalloc", "detorder", "ctxpoll", "sentinelis", "atomicfield", "lockcopy", "nilderef"}
	got := lint.All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
	}
}
