package color

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mis2go/internal/graph"
)

func randomGraph(n, m int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}
	return graph.FromEdges(n, edges)
}

func grid2D(nx, ny int) *graph.CSR {
	idx := func(x, y int) int32 { return int32(y*nx + x) }
	var edges []graph.Edge
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				edges = append(edges, graph.Edge{U: idx(x, y), V: idx(x+1, y)})
			}
			if y+1 < ny {
				edges = append(edges, graph.Edge{U: idx(x, y), V: idx(x, y+1)})
			}
		}
	}
	return graph.FromEdges(nx*ny, edges)
}

func TestGreedyValid(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%150)
		g := randomGraph(n, 4*n, seed)
		return Check(g, Greedy(g)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelValid(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%150)
		g := randomGraph(n, 4*n, seed)
		return Check(g, Parallel(g, 0)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDistance2Valid(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%80)
		g := randomGraph(n, 3*n, seed)
		return CheckDistance2(g, GreedyDistance2(g)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelDistance2Valid(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%80)
		g := randomGraph(n, 3*n, seed)
		return CheckDistance2(g, ParallelDistance2(g, 0)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelDeterministicAcrossThreads(t *testing.T) {
	g := randomGraph(400, 2000, 17)
	ref := Parallel(g, 1)
	refD2 := ParallelDistance2(g, 1)
	for _, w := range []int{2, 8, 0} {
		got := Parallel(g, w)
		gotD2 := ParallelDistance2(g, w)
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("threads=%d: D1 color of %d differs", w, v)
			}
			if gotD2[v] != refD2[v] {
				t.Fatalf("threads=%d: D2 color of %d differs", w, v)
			}
		}
	}
}

func TestGridColorCounts(t *testing.T) {
	g := grid2D(20, 20)
	// A bipartite grid needs exactly 2 colors greedily.
	if nc := NumColors(Greedy(g)); nc != 2 {
		t.Fatalf("greedy grid colors = %d, want 2", nc)
	}
	// Parallel may use a few more but must stay small.
	if nc := NumColors(Parallel(g, 0)); nc > 5 {
		t.Fatalf("parallel grid colors = %d, too many", nc)
	}
	// Distance-2 coloring of a 5-point grid needs at least 5 colors
	// (a vertex plus its 4 neighbors are mutually within distance 2).
	if nc := NumColors(GreedyDistance2(g)); nc < 5 {
		t.Fatalf("distance-2 grid colors = %d, want >= 5", nc)
	}
}

func TestSetsPartition(t *testing.T) {
	g := randomGraph(200, 1000, 23)
	colors := Greedy(g)
	sets := Sets(colors)
	if len(sets) != NumColors(colors) {
		t.Fatal("Sets length mismatch")
	}
	seen := make([]bool, g.N)
	for c, set := range sets {
		if len(set) == 0 {
			t.Fatalf("color %d empty", c)
		}
		for i, v := range set {
			if colors[v] != int32(c) {
				t.Fatal("vertex in wrong set")
			}
			if seen[v] {
				t.Fatal("vertex appears twice")
			}
			seen[v] = true
			if i > 0 && set[i-1] >= v {
				t.Fatal("set not ascending")
			}
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d missing from sets", v)
		}
	}
}

func TestCheckCatchesViolations(t *testing.T) {
	g := grid2D(3, 3)
	colors := Greedy(g)
	colors[1] = colors[0] // adjacent in the grid
	if Check(g, colors) == nil {
		t.Fatal("conflict not caught")
	}
	colors = Greedy(g)
	colors[0] = -1
	if Check(g, colors) == nil {
		t.Fatal("uncolored vertex not caught")
	}
	if Check(g, []int32{0}) == nil {
		t.Fatal("length mismatch not caught")
	}
	// D2 violation: two vertices at distance 2 with equal colors.
	colors = GreedyDistance2(g)
	// vertices 0 and 2 are distance 2 apart on the top row
	colors[2] = colors[0]
	if CheckDistance2(g, colors) == nil {
		t.Fatal("distance-2 conflict not caught")
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	empty := graph.FromEdges(0, nil)
	if len(Parallel(empty, 0)) != 0 {
		t.Fatal("empty graph coloring should be empty")
	}
	single := graph.FromEdges(1, nil)
	c := Parallel(single, 0)
	if len(c) != 1 || c[0] != 0 {
		t.Fatalf("single vertex color = %v", c)
	}
	iso := graph.FromEdges(5, nil)
	if nc := NumColors(Greedy(iso)); nc != 1 {
		t.Fatalf("isolated vertices need 1 color, got %d", nc)
	}
}
