package serve

import "sync/atomic"

// counters is the service's internal atomic counter set. Every field
// must be a sync/atomic value and every access must go through its
// atomic methods; the atomicfield analyzer enforces this.
//
//amg:atomic
type counters struct {
	requests    atomic.Int64
	rejected    atomic.Int64
	builds      atomic.Int64
	refreshes   atomic.Int64
	valueHits   atomic.Int64
	collisions  atomic.Int64
	evictions   atomic.Int64
	batchSolves atomic.Int64
	batchedRHS  atomic.Int64
	canceled    atomic.Int64
	panics      atomic.Int64

	shardedRequests atomic.Int64
	subBuilds       atomic.Int64
	subRefreshes    atomic.Int64
	subReuses       atomic.Int64

	numericalFailures    atomic.Int64
	escalations          atomic.Int64
	escalationRecoveries atomic.Int64
	quarantines          atomic.Int64
	quarantineRejections atomic.Int64
	probes               atomic.Int64
	probeSuccesses       atomic.Int64
	probeFailures        atomic.Int64
}

// Metrics is a consistent-enough snapshot of the service counters (each
// counter is read atomically; the set is not read under one lock, which
// monitoring does not need).
type Metrics struct {
	// Requests counts admitted requests; Rejected counts requests whose
	// context was canceled while waiting for admission (backpressure).
	Requests, Rejected int64
	// Builds, Refreshes, and ValueHits partition cache outcomes by what
	// the request paid: full construction, numeric-only replay, nothing.
	Builds, Refreshes, ValueHits int64
	// Collisions counts fingerprint collisions served uncached;
	// Evictions counts hierarchies dropped by LRU capacity pressure.
	Collisions, Evictions int64
	// BatchSolves counts CGBatch calls; BatchedRHS counts the
	// right-hand-side columns they carried in total.
	BatchSolves, BatchedRHS int64
	// Canceled counts admitted requests that ended canceled (before,
	// during, or while coalescing for a solve); admission-wait
	// cancellations count under Rejected instead.
	Canceled int64
	// Panics counts panics contained by the solver critical sections —
	// each one converted to an error and an entry retirement instead of
	// a dead process or a deadlocked batch.
	Panics int64
	// ShardedRequests counts requests routed through the
	// domain-decomposed path (Config.ShardThreshold). SubBuilds,
	// SubRefreshes, and SubReuses partition per-subdomain cache
	// outcomes the way Builds/Refreshes/ValueHits do for whole
	// hierarchies: local construction, numeric-only replay, bitwise
	// value hit. A request whose values touch only some subdomains
	// shows up as SubRefreshes for those and SubReuses for the rest.
	ShardedRequests                    int64
	SubBuilds, SubRefreshes, SubReuses int64
	// NumericalFailures counts requests that ultimately failed with a
	// classified numerical error (after any escalation); Escalations
	// counts ladder rungs attempted and EscalationRecoveries the
	// requests a rung rescued.
	NumericalFailures, Escalations, EscalationRecoveries int64
	// Quarantines counts breaker openings (including re-openings after
	// a failed probe); QuarantineRejections counts requests failed fast
	// with ErrQuarantined. Probes counts half-open probe requests
	// admitted; ProbeSuccesses/ProbeFailures their verdicts (a probe
	// with no verdict — canceled, panicked — counts in neither).
	Quarantines, QuarantineRejections     int64
	Probes, ProbeSuccesses, ProbeFailures int64
}

// Metrics returns a snapshot of the service counters.
func (s *Service) Metrics() Metrics {
	return Metrics{
		Requests:    s.m.requests.Load(),
		Rejected:    s.m.rejected.Load(),
		Builds:      s.m.builds.Load(),
		Refreshes:   s.m.refreshes.Load(),
		ValueHits:   s.m.valueHits.Load(),
		Collisions:  s.m.collisions.Load(),
		Evictions:   s.m.evictions.Load(),
		BatchSolves: s.m.batchSolves.Load(),
		BatchedRHS:  s.m.batchedRHS.Load(),
		Canceled:    s.m.canceled.Load(),
		Panics:      s.m.panics.Load(),

		ShardedRequests: s.m.shardedRequests.Load(),
		SubBuilds:       s.m.subBuilds.Load(),
		SubRefreshes:    s.m.subRefreshes.Load(),
		SubReuses:       s.m.subReuses.Load(),

		NumericalFailures:    s.m.numericalFailures.Load(),
		Escalations:          s.m.escalations.Load(),
		EscalationRecoveries: s.m.escalationRecoveries.Load(),
		Quarantines:          s.m.quarantines.Load(),
		QuarantineRejections: s.m.quarantineRejections.Load(),
		Probes:               s.m.probes.Load(),
		ProbeSuccesses:       s.m.probeSuccesses.Load(),
		ProbeFailures:        s.m.probeFailures.Load(),
	}
}

// BatchedRHSRatio is the mean number of right-hand sides per CGBatch
// call — 1.0 means no coalescing ever happened, higher means the
// batching window is amortizing matrix traversals across users.
func (m Metrics) BatchedRHSRatio() float64 {
	if m.BatchSolves == 0 {
		return 0
	}
	return float64(m.BatchedRHS) / float64(m.BatchSolves)
}
