// Package ctxpoll exercises the ctxpoll analyzer: exported *Ctx
// functions must reach a ctx check on their loop path.
package ctxpoll

import "context"

// SolveCtx polls per iteration: the canonical form.
func SolveCtx(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(i)
	}
	return nil
}

// SelectCtx consults ctx.Done inside the loop: also fine.
func SelectCtx(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		work(i)
	}
	return nil
}

func DriftCtx(ctx context.Context, n int) error { // want `never consults its context`
	for i := 0; i < n; i++ {
		work(i)
	}
	return nil
}

func HoistedCtx(ctx context.Context, n int) error { // want `never checks ctx inside a loop`
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		work(i)
	}
	return nil
}

// DelegateCtx has no loop and hands ctx on: fine.
func DelegateCtx(ctx context.Context, n int) error {
	return SolveCtx(ctx, n)
}

// PerIterDelegateCtx passes ctx to a callee every iteration: the callee
// owns the polling, the loop path still reaches it.
func PerIterDelegateCtx(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := step(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

// ZeroLoopCtx's loop makes no calls (pure memory traffic), so the
// hoisted check suffices.
func ZeroLoopCtx(ctx context.Context, xs []float64) error {
	for i := range xs {
		xs[i] = 0
	}
	return ctx.Err()
}

// Solver proves methods are covered.
type Solver struct{ n int }

func (s *Solver) IterateCtx(ctx context.Context) error { // want `never consults its context`
	for i := 0; i < s.n; i++ {
		work(i)
	}
	return nil
}

// helperCtx is unexported: out of contract.
func helperCtx(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		work(i)
	}
}

// NoCtx takes no context despite doing work: out of contract (the
// analyzer keys on the *Ctx suffix plus a context parameter).
func NoCtx(n int) {
	for i := 0; i < n; i++ {
		work(i)
	}
}

func work(int) {}

func step(ctx context.Context, i int) error { return ctx.Err() }
