// Command experiments regenerates every table and figure of the paper's
// evaluation section (§VI). Each subcommand prints one table/figure;
// "all" prints everything.
//
// Usage:
//
//	experiments [-scale f] [-trials n] [-threads n] <table1|table2|table3|table4|table5|table6|fig2|fig3|fig4|fig5|fig6|fig7|quality|all>
//
// -scale multiplies the paper's matrix sizes: 1.0 reproduces paper-scale
// problems (memory- and time-hungry); the default 0.05 runs the full
// sweep on a laptop in minutes.
package main

import (
	"flag"
	"fmt"
	"os"

	"mis2go/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 0.05, "matrix size as a fraction of paper scale (1.0 = paper)")
	trials := flag.Int("trials", 3, "timing trials to average (paper uses 100)")
	threads := flag.Int("threads", 0, "worker count (0 = all cores)")
	flag.Parse()

	cfg := bench.Config{Out: os.Stdout, Scale: *scale, Trials: *trials, Threads: *threads}
	runners := map[string]func(bench.Config){
		"fig1":   bench.Fig1,
		"table1": bench.Table1, "table2": bench.Table2, "table3": bench.Table3,
		"table4": bench.Table4, "table5": bench.Table5, "table6": bench.Table6,
		"fig2": bench.Fig2, "fig3": bench.Fig3, "fig4": bench.Fig4,
		"fig5": bench.Fig5, "fig6": bench.Fig6, "fig7": bench.Fig7,
		"quality": bench.QualitySummary, "scaling": bench.BigScaling, "smoothers": bench.Smoothers, "partition": bench.PartitionComparison,
	}
	order := []string{"fig1", "table1", "table2", "table3", "table4", "table5", "table6",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "quality", "scaling", "smoothers", "partition"}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <experiment...|all>")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", order)
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	for _, name := range args {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from %v\n", name, order)
			os.Exit(2)
		}
		run(cfg)
		fmt.Println()
	}
}
