// Package graph provides the compressed sparse row (CSR/CRS) graph
// representation used by every algorithm in this repository, together with
// construction, validation, and structural utilities (symmetrization,
// induced subgraphs, and the boolean square G² used by the MIS-1 reduction
// of Lemma IV.2).
//
//amg:deterministic
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// CSR is an undirected graph in compressed sparse row format.
// Vertices are 0-based int32 ids. Self-loops are not stored; algorithms
// that need closed neighborhoods treat the vertex itself implicitly.
// Adjacency lists are sorted ascending and duplicate-free for a graph that
// passes Validate.
type CSR struct {
	N      int     // number of vertices
	RowPtr []int   // length N+1; RowPtr[v]..RowPtr[v+1] indexes Col
	Col    []int32 // length RowPtr[N]; neighbor lists
}

// NumEdges returns the number of stored directed arcs (2x undirected edges).
func (g *CSR) NumEdges() int { return len(g.Col) }

// Degree returns the number of neighbors of v.
func (g *CSR) Degree(v int32) int { return g.RowPtr[v+1] - g.RowPtr[v] }

// Neighbors returns the adjacency list of v. The returned slice aliases the
// graph's storage and must not be modified.
func (g *CSR) Neighbors(v int32) []int32 { return g.Col[g.RowPtr[v]:g.RowPtr[v+1]] }

// AvgDegree returns the mean vertex degree.
func (g *CSR) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(len(g.Col)) / float64(g.N)
}

// MaxDegree returns the maximum vertex degree.
func (g *CSR) MaxDegree() int {
	m := 0
	for v := 0; v < g.N; v++ {
		if d := g.RowPtr[v+1] - g.RowPtr[v]; d > m {
			m = d
		}
	}
	return m
}

// HasEdge reports whether (u, v) is an edge, by binary search.
func (g *CSR) HasEdge(u, v int32) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Validate checks structural invariants: monotone row pointers, in-range
// sorted duplicate-free columns, no self-loops, and symmetry.
func (g *CSR) Validate() error {
	if g.N < 0 {
		return errors.New("graph: negative vertex count")
	}
	if len(g.RowPtr) != g.N+1 {
		return fmt.Errorf("graph: RowPtr length %d, want %d", len(g.RowPtr), g.N+1)
	}
	if g.RowPtr[0] != 0 {
		return errors.New("graph: RowPtr[0] != 0")
	}
	if g.RowPtr[g.N] != len(g.Col) {
		return fmt.Errorf("graph: RowPtr[N]=%d does not match len(Col)=%d", g.RowPtr[g.N], len(g.Col))
	}
	for v := 0; v < g.N; v++ {
		if g.RowPtr[v] > g.RowPtr[v+1] {
			return fmt.Errorf("graph: RowPtr not monotone at %d", v)
		}
		adj := g.Neighbors(int32(v))
		for i, w := range adj {
			if w < 0 || int(w) >= g.N {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && adj[i-1] >= w {
				return fmt.Errorf("graph: row %d not sorted/duplicate-free", v)
			}
		}
	}
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if !g.HasEdge(w, v) {
				return fmt.Errorf("graph: edge (%d,%d) has no reverse", v, w)
			}
		}
	}
	return nil
}

// Edge is an undirected edge for COO construction.
type Edge struct{ U, V int32 }

// FromEdges builds a CSR graph on n vertices from an undirected edge list.
// Each edge is inserted in both directions; duplicates and self-loops are
// dropped. The construction is deterministic.
func FromEdges(n int, edges []Edge) *CSR {
	deg := make([]int, n+1)
	for _, e := range edges {
		if e.U == e.V || e.U < 0 || e.V < 0 || int(e.U) >= n || int(e.V) >= n {
			continue
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	rowPtr := make([]int, n+1)
	for v := 0; v < n; v++ {
		rowPtr[v+1] = rowPtr[v] + deg[v+1]
	}
	col := make([]int32, rowPtr[n])
	fill := make([]int, n)
	copy(fill, rowPtr[:n])
	for _, e := range edges {
		if e.U == e.V || e.U < 0 || e.V < 0 || int(e.U) >= n || int(e.V) >= n {
			continue
		}
		col[fill[e.U]] = e.V
		fill[e.U]++
		col[fill[e.V]] = e.U
		fill[e.V]++
	}
	g := &CSR{N: n, RowPtr: rowPtr, Col: col}
	g.sortDedupe()
	return g
}

// sortDedupe sorts each adjacency list and removes duplicates, compacting
// the storage in place.
func (g *CSR) sortDedupe() {
	out := 0
	newRowPtr := make([]int, g.N+1)
	for v := 0; v < g.N; v++ {
		lo, hi := g.RowPtr[v], g.RowPtr[v+1]
		adj := g.Col[lo:hi]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		start := out
		for i, w := range adj {
			if i > 0 && adj[i-1] == w {
				continue
			}
			g.Col[out] = w
			out++
		}
		newRowPtr[v] = start
	}
	newRowPtr[g.N] = out
	// Shift starts: newRowPtr currently holds starts; convert to standard.
	g.RowPtr = newRowPtr
	g.Col = g.Col[:out]
}

// Square returns the graph whose edges connect vertices at distance 1 or 2
// in g (the boolean square of the adjacency matrix with self-loops,
// diagonal dropped). Used to verify MIS-2(G) == MIS-1(G²) (Lemma IV.2).
func (g *CSR) Square() *CSR {
	n := g.N
	rowPtr := make([]int, n+1)
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	// Pass 1: count distinct distance<=2 neighbors of each vertex.
	for v := 0; v < n; v++ {
		rowPtr[v+1] = rowPtr[v] + g.countRadius2(int32(v), stamp)
	}
	col := make([]int32, rowPtr[n])
	for i := range stamp {
		stamp[i] = -1
	}
	for v := int32(0); int(v) < n; v++ {
		k := rowPtr[v]
		stamp[v] = v
		for _, w := range g.Neighbors(v) {
			if stamp[w] != v {
				stamp[w] = v
				col[k] = w
				k++
			}
			for _, x := range g.Neighbors(w) {
				if x != v && stamp[x] != v {
					stamp[x] = v
					col[k] = x
					k++
				}
			}
		}
		adj := col[rowPtr[v]:k]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	return &CSR{N: n, RowPtr: rowPtr, Col: col}
}

// countRadius2 counts distinct vertices at distance 1..2 from v, using
// stamp as scratch (stamped with v's id).
func (g *CSR) countRadius2(v int32, stamp []int32) int {
	c := 0
	stamp[v] = v
	for _, w := range g.Neighbors(v) {
		if stamp[w] != v {
			stamp[w] = v
			c++
		}
		for _, x := range g.Neighbors(w) {
			if x != v && stamp[x] != v {
				stamp[x] = v
				c++
			}
		}
	}
	return c
}

// InducedSubgraph returns the subgraph induced by the vertices for which
// keep[v] is true, along with toSub (old id -> new id, -1 if dropped) and
// toOrig (new id -> old id). Used by Algorithm 3 phase 2.
func (g *CSR) InducedSubgraph(keep []bool) (sub *CSR, toSub []int32, toOrig []int32) {
	toSub = make([]int32, g.N)
	m := int32(0)
	for v := 0; v < g.N; v++ {
		if keep[v] {
			toSub[v] = m
			m++
		} else {
			toSub[v] = -1
		}
	}
	toOrig = make([]int32, m)
	for v := 0; v < g.N; v++ {
		if keep[v] {
			toOrig[toSub[v]] = int32(v)
		}
	}
	rowPtr := make([]int, m+1)
	for s := int32(0); s < m; s++ {
		v := toOrig[s]
		c := 0
		for _, w := range g.Neighbors(v) {
			if keep[w] {
				c++
			}
		}
		rowPtr[s+1] = rowPtr[s] + c
	}
	col := make([]int32, rowPtr[m])
	for s := int32(0); s < m; s++ {
		v := toOrig[s]
		k := rowPtr[s]
		for _, w := range g.Neighbors(v) {
			if keep[w] {
				col[k] = toSub[w]
				k++
			}
		}
	}
	return &CSR{N: int(m), RowPtr: rowPtr, Col: col}, toSub, toOrig
}

// DistanceLeq2 reports whether u and v are within distance 2 of each other
// (u != v). O(deg(u) * log deg) via adjacency binary searches.
func (g *CSR) DistanceLeq2(u, v int32) bool {
	if u == v {
		return true
	}
	if g.HasEdge(u, v) {
		return true
	}
	for _, w := range g.Neighbors(u) {
		if g.HasEdge(w, v) {
			return true
		}
	}
	return false
}

// ConnectedComponents returns a component label per vertex and the number
// of components, via iterative BFS.
func (g *CSR) ConnectedComponents() ([]int32, int) {
	label := make([]int32, g.N)
	for i := range label {
		label[i] = -1
	}
	next := 0
	queue := make([]int32, 0, 1024)
	for s := 0; s < g.N; s++ {
		if label[s] >= 0 {
			continue
		}
		id := int32(next)
		next++
		label[s] = id
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if label[w] < 0 {
					label[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return label, next
}
