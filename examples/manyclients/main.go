// Many-clients example: the workload the concurrent solve service
// exists for. Sixteen goroutines play independent clients of one
// SolveService — think request handlers in a web backend, each carrying
// its own linear system. Traffic is realistically mixed: a handful of
// distinct sparsity patterns (different meshes), per-client value
// variations on them (different material parameters), and plain repeats.
//
// The service amortizes everything that can be amortized: first request
// per pattern builds an AMG hierarchy (cached, LRU), same-pattern
// requests with new values pay only the numeric Refresh, identical
// operators pay nothing, and requests that collide in the batching
// window are coalesced into one batched CG call (one matrix traversal
// per iteration for all of them). The run ends by replaying the same
// traffic sequentially with a fresh build per request — the naive
// single-caller baseline — and printing the speedup, plus the service
// metrics that explain it.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"mis2go"
)

func main() {
	const (
		clients  = 16
		requests = 24 // per client
	)

	// Three distinct sparsity patterns with three value sets each.
	patterns := []*mis2go.Matrix{
		mis2go.GraphLaplacian(mis2go.Laplace3D(16, 16, 16), 0.05),
		mis2go.GraphLaplacian(mis2go.Laplace2D(64, 64), 0.1),
		mis2go.WeightedGraphLaplacian(mis2go.RandomFEM(10, 10, 10, 12, 7), 0.1, 3),
	}
	const valueSets = 3
	systems := make([][]*mis2go.Matrix, len(patterns))
	rhs := make([][]float64, len(patterns))
	for p, base := range patterns {
		systems[p] = make([]*mis2go.Matrix, valueSets)
		for v := 0; v < valueSets; v++ {
			m := base.Clone()
			m.Scale(1 + 0.5*float64(v))
			systems[p][v] = m
		}
		b := make([]float64, base.Rows)
		for i := range b {
			b[i] = 1 + float64((i+p)%13)/13
		}
		rhs[p] = b
	}
	fmt.Printf("traffic: %d clients x %d requests over %d patterns x %d value sets\n",
		clients, requests, len(patterns), valueSets)

	svc := mis2go.NewSolveService(mis2go.ServeConfig{
		Tol:         1e-8,
		MaxIter:     400,
		BatchWindow: 500 * time.Microsecond,
	})

	// pick maps (client, request) to its (pattern, values) pair: bursts
	// of repeats with periodic value and pattern rotation, staggered per
	// client so same-operator requests overlap in time and coalesce.
	pick := func(c, r int) (int, int) {
		return (c/6 + r/8) % len(patterns), r / 3 % valueSets
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				p, v := pick(c, r)
				if _, _, err := svc.Solve(context.Background(), systems[p][v], rhs[p]); err != nil {
					log.Fatalf("client %d: %v", c, err)
				}
			}
		}(c)
	}
	wg.Wait()
	served := time.Since(start)

	m := svc.Metrics()
	fmt.Printf("served %d requests in %.3f s (%.0f req/s)\n",
		m.Requests, served.Seconds(), float64(m.Requests)/served.Seconds())
	fmt.Printf("  cache: %d builds, %d refreshes, %d free reuses, %d evictions\n",
		m.Builds, m.Refreshes, m.ValueHits, m.Evictions)
	fmt.Printf("  batching: %d CG calls for %d right-hand sides (%.2f RHS/call)\n",
		m.BatchSolves, m.BatchedRHS, m.BatchedRHSRatio())

	// The naive baseline: every request pays a fresh hierarchy build and
	// a solo solve, one after another.
	start = time.Now()
	for c := 0; c < clients; c++ {
		for r := 0; r < requests; r++ {
			p, v := pick(c, r)
			a := systems[p][v]
			h, err := mis2go.NewAMG(a, mis2go.AMGOptions{})
			if err != nil {
				log.Fatal(err)
			}
			x := make([]float64, a.Rows)
			if _, err := mis2go.SolveCG(a, rhs[p], x, 1e-8, 400, h, 0); err != nil {
				log.Fatal(err)
			}
		}
	}
	sequential := time.Since(start)
	fmt.Printf("sequential full solves of the same mix: %.3f s\n", sequential.Seconds())
	fmt.Printf("service speedup: %.2fx\n", sequential.Seconds()/served.Seconds())
}
