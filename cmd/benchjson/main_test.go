package main

import (
	"strings"
	"testing"
)

func TestParseRatio(t *testing.T) {
	cur := map[string]Metrics{
		"SpMVHot":  {NsPerOp: 300},
		"SpMVSELL": {NsPerOp: 200},
	}
	name, num, den, err := parseRatio("SELL_vs_CSR=SpMVHot/SpMVSELL", cur)
	if err != nil {
		t.Fatal(err)
	}
	if name != "SELL_vs_CSR" || num != 300 || den != 200 {
		t.Fatalf("got %q %g/%g", name, num, den)
	}
}

// TestParseRatioMissingBenchmark: a ratio referencing a benchmark absent
// from the run must fail with an error naming the missing benchmark and
// the available ones — never emit a zero or stale ratio.
func TestParseRatioMissingBenchmark(t *testing.T) {
	cur := map[string]Metrics{"SpMVHot": {NsPerOp: 300}}
	_, _, _, err := parseRatio("SELL_vs_CSR=SpMVHot/SpMVSELL", cur)
	if err == nil {
		t.Fatal("expected an error for a missing benchmark")
	}
	msg := err.Error()
	for _, want := range []string{"SpMVSELL", "missing", "SpMVHot"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
	// Both sides missing: both named.
	_, _, _, err = parseRatio("R=A/B", cur)
	if err == nil || !strings.Contains(err.Error(), "A, B") {
		t.Fatalf("expected both missing benchmarks named, got %v", err)
	}
}

func TestParseRatioMalformed(t *testing.T) {
	cur := map[string]Metrics{"X": {NsPerOp: 1}}
	for _, def := range []string{"noequals", "name=noslash"} {
		if _, _, _, err := parseRatio(def, cur); err == nil {
			t.Fatalf("accepted malformed ratio %q", def)
		}
	}
}
