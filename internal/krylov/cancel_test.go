// Cancellation tests: the Ctx solver variants must observe a canceled
// context from inside the iteration loop (not just at entry), report
// partial progress in Stats, wrap ErrCanceled with the context cause,
// and — with an uncanceled context — remain bitwise identical to the
// context-free entry points.
package krylov

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"mis2go/internal/par"
)

// countdownCtx is a context whose Err() flips to context.Canceled after
// a fixed number of Err() calls. It lets tests cancel deterministically
// at the Nth in-loop check without timers. Done() is never closed; the
// solvers poll Err() directly, which is what makes this work.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(int64(n))
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestCGCtxCanceledMidSolve(t *testing.T) {
	a, b, _ := spdProblem(30, 30)
	rt := par.New(2)
	x := make([]float64, a.Rows)
	const allow = 5
	ctx := newCountdownCtx(allow)
	st, err := CGCtx(ctx, rt, a, b, x, 1e-12, 2000, nil, nil, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause not wrapped: %v", err)
	}
	// One check runs before the loop, then one per iteration: the solve
	// must stop after exactly allow-1 completed iterations.
	if st.Iterations != allow-1 {
		t.Fatalf("iterations = %d, want %d", st.Iterations, allow-1)
	}
	if st.Converged {
		t.Fatalf("canceled solve reported converged: %+v", st)
	}
	if math.IsInf(st.RelResidual, 1) || st.RelResidual == 0 {
		t.Fatalf("expected a finite partial residual, got %g", st.RelResidual)
	}
}

func TestCGCtxCanceledBeforeStart(t *testing.T) {
	a, b, _ := spdProblem(10, 10)
	x := make([]float64, a.Rows)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := CGCtx(ctx, par.New(1), a, b, x, 1e-10, 100, nil, nil, nil)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if st.Iterations != 0 {
		t.Fatalf("iterations = %d, want 0", st.Iterations)
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatalf("x touched before the first cancellation check (x[%d]=%g)", i, x[i])
		}
	}
}

func TestCGCtxDeadlineCause(t *testing.T) {
	a, b, _ := spdProblem(20, 20)
	x := make([]float64, a.Rows)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := CGCtx(ctx, par.New(1), a, b, x, 1e-12, 1000, nil, nil, nil)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
}

func TestCGCtxBackgroundBitwiseIdentical(t *testing.T) {
	a, b, _ := spdProblem(25, 25)
	rt := par.New(4)
	x1 := make([]float64, a.Rows)
	x2 := make([]float64, a.Rows)
	st1, err1 := CGWith(rt, a, b, x1, 1e-10, 500, nil, nil)
	st2, err2 := CGCtx(context.Background(), rt, a, b, x2, 1e-10, 500, nil, nil, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if st1 != st2 {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	for i := range x1 {
		if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("bit mismatch at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}

func TestCGBatchCtxCanceledMidSolve(t *testing.T) {
	a, b, _ := spdProblem(20, 20)
	rt := par.New(2)
	const k = 3
	n := a.Rows
	bb := make([]float64, n*k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			bb[i*k+j] = b[i] * float64(j+1)
		}
	}
	x := make([]float64, n*k)
	const allow = 4
	ctx := newCountdownCtx(allow)
	stats, err := CGBatchCtx(ctx, rt, a, bb, x, k, 1e-12, 2000, nil, nil, nil)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if len(stats) != k {
		t.Fatalf("stats length %d, want %d", len(stats), k)
	}
	for j, st := range stats {
		if st.Converged {
			t.Fatalf("column %d reported converged after cancel: %+v", j, st)
		}
		if st.Iterations != allow-1 {
			t.Fatalf("column %d iterations = %d, want %d", j, st.Iterations, allow-1)
		}
		if st.RelResidual <= 0 || math.IsInf(st.RelResidual, 1) {
			t.Fatalf("column %d residual %g not a finite partial value", j, st.RelResidual)
		}
	}
}

func TestCGBatchCtxCanceledBeforeStart(t *testing.T) {
	a, b, _ := spdProblem(10, 10)
	n := a.Rows
	x := make([]float64, n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := CGBatchCtx(ctx, par.New(1), a, b, x, 1, 1e-10, 100, nil, nil, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if stats[0].Iterations != 0 || stats[0].Converged {
		t.Fatalf("pre-start cancel stats: %+v", stats[0])
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatalf("x touched before the first cancellation check (x[%d]=%g)", i, x[i])
		}
	}
}

func TestCGBatchCtxBackgroundBitwiseIdentical(t *testing.T) {
	a, b, _ := spdProblem(15, 15)
	rt := par.New(2)
	const k = 2
	n := a.Rows
	bb := make([]float64, n*k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			bb[i*k+j] = b[i] + float64(j)
		}
	}
	x1 := make([]float64, n*k)
	x2 := make([]float64, n*k)
	s1, err1 := CGBatchWith(rt, a, append([]float64(nil), bb...), x1, k, 1e-10, 500, nil, nil)
	s2, err2 := CGBatchCtx(context.Background(), rt, a, bb, x2, k, 1e-10, 500, nil, nil, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for j := 0; j < k; j++ {
		if s1[j] != s2[j] {
			t.Fatalf("column %d stats diverged: %+v vs %+v", j, s1[j], s2[j])
		}
	}
	for i := range x1 {
		if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("bit mismatch at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}

func TestGMRESCtxCanceledMidSolve(t *testing.T) {
	a, b, _ := spdProblem(25, 25)
	rt := par.New(2)
	x := make([]float64, a.Rows)
	const allow = 6
	ctx := newCountdownCtx(allow)
	st, err := GMRESCtx(ctx, rt, a, b, x, 1e-12, 3000, 30, nil, nil, nil)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if st.Converged {
		t.Fatalf("canceled GMRES reported converged: %+v", st)
	}
	// One check per Arnoldi step: the allow-th step's check trips.
	if st.Iterations != allow {
		t.Fatalf("iterations = %d, want %d", st.Iterations, allow)
	}
	// No restart cycle completed, so the correction was never applied:
	// x must still hold the (zero) initial guess.
	for i := range x {
		if x[i] != 0 {
			t.Fatalf("half-built cycle leaked into x (x[%d]=%g)", i, x[i])
		}
	}
}

func TestGMRESCtxBackgroundBitwiseIdentical(t *testing.T) {
	a, b, _ := spdProblem(15, 15)
	rt := par.New(2)
	x1 := make([]float64, a.Rows)
	x2 := make([]float64, a.Rows)
	st1, err1 := GMRESWith(rt, a, b, x1, 1e-10, 2000, 40, nil, nil)
	st2, err2 := GMRESCtx(context.Background(), rt, a, b, x2, 1e-10, 2000, 40, nil, nil, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if st1 != st2 {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	for i := range x1 {
		if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("bit mismatch at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}
