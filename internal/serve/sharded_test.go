// Sharded-path tests: bitwise identity of served sharded solves
// against the sequential single-caller Schwarz-CG reference at several
// worker counts (run these under -race: `make check` does), the
// per-subdomain cache economics asserted through Metrics (builds once,
// numeric-only refreshes on new values, reuses on localized updates),
// and the PR 6 blast-radius rules narrowed to a single subdomain.
package serve

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/krylov"
	"mis2go/internal/leakcheck"
	"mis2go/internal/par"
	"mis2go/internal/schwarz"
	"mis2go/internal/sparse"
)

// shardProblem is a Poisson system big enough to shard meaningfully
// but small enough for -race.
func shardProblem() (*sparse.Matrix, []float64) {
	g := gen.Laplace2D(40, 40)
	a := gen.DirichletLaplacian(g, 4)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = math.Sin(0.07*float64(i)) + 1
	}
	return a, b
}

// shardConfig returns a sharded service config and the matching
// reference options. CacheCapacity is sized for the subdomain entries.
func shardConfig(threads int) (Config, schwarz.Options) {
	cfg := Config{
		ShardThreshold:  100,
		ShardSubdomains: 8,
		CacheCapacity:   32,
		Threads:         threads,
		Tol:             1e-10,
		MaxIter:         500,
	}
	return cfg, schwarz.Options{Subdomains: cfg.ShardSubdomains, Threads: threads}
}

// referenceSharded is the sequential single-caller solve a sharded
// service must match bitwise: the facade's SolveSharded, inlined.
func referenceSharded(t *testing.T, a *sparse.Matrix, b []float64, opt schwarz.Options, tol float64, maxIter int) []float64 {
	t.Helper()
	p, err := schwarz.New(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	st, err := krylov.CGCtx(nil, par.New(opt.Threads), a, b, x, tol, maxIter, p, nil, nil)
	if err != nil || !st.Converged {
		t.Fatalf("reference solve failed: %v %+v", err, st)
	}
	return x
}

func TestShardedMatchesSequentialReference(t *testing.T) {
	a, b := shardProblem()
	for _, threads := range []int{1, 2, 8} {
		cfg, opt := shardConfig(threads)
		want := referenceSharded(t, a, b, opt, cfg.Tol, cfg.MaxIter)
		s := New(cfg)
		// Build, refresh (scaled values), and reuse paths must all match
		// the reference for their operator.
		for step, scale := range []float64{1, 2, 2} {
			sa := a
			wx := want
			if scale != 1 {
				sa = a.Clone()
				for i := range sa.Val {
					sa.Val[i] *= scale
				}
				wx = referenceSharded(t, sa, b, opt, cfg.Tol, cfg.MaxIter)
			}
			x, st, err := s.Solve(context.Background(), sa, b)
			if err != nil {
				t.Fatalf("threads=%d step=%d: %v", threads, step, err)
			}
			if !st.Sharded || st.Subdomains == 0 {
				t.Fatalf("threads=%d step=%d: not sharded: %+v", threads, step, st)
			}
			for i := range x {
				if math.Float64bits(x[i]) != math.Float64bits(wx[i]) {
					t.Fatalf("threads=%d step=%d: diverges from sequential reference at %d: %g vs %g",
						threads, step, i, x[i], wx[i])
				}
			}
		}
	}
}

func TestShardedConcurrentBitwiseStress(t *testing.T) {
	// Many concurrent sharded requests against a mix of value sets:
	// every result must match the sequential reference bitwise, no
	// goroutine may leak, and concurrent assembled preconditioners over
	// the shared subdomains must interleave safely (run under -race).
	base := leakcheck.Capture()
	a, b := shardProblem()
	cfg, opt := shardConfig(4)
	s := New(cfg)
	scales := []float64{1, 2, 3}
	mats := make([]*sparse.Matrix, len(scales))
	wants := make([][]float64, len(scales))
	for i, sc := range scales {
		mats[i] = a.Clone()
		for j := range mats[i].Val {
			mats[i].Val[j] *= sc
		}
		wants[i] = referenceSharded(t, mats[i], b, opt, cfg.Tol, cfg.MaxIter)
	}
	const G = 12
	var wg sync.WaitGroup
	errs := make([]error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				pick := (g + it) % len(scales)
				x, st, err := s.Solve(context.Background(), mats[pick], b)
				if err != nil {
					errs[g] = err
					return
				}
				if !st.Sharded {
					errs[g] = errors.New("request not sharded")
					return
				}
				for i := range x {
					if math.Float64bits(x[i]) != math.Float64bits(wants[pick][i]) {
						errs[g] = errors.New("served solution diverges from sequential reference")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	leakcheck.Check(t, base)
}

func TestShardedSubdomainCacheEconomics(t *testing.T) {
	a, b := shardProblem()
	cfg, _ := shardConfig(2)
	s := New(cfg)
	ctx := context.Background()

	// First request: head build + one local build per subdomain.
	_, st, err := s.Solve(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if st.Outcome != OutcomeBuild || m.Builds != 1 {
		t.Fatalf("first sharded request outcome %v, builds %d", st.Outcome, m.Builds)
	}
	if m.SubBuilds != int64(st.Subdomains) || m.SubRefreshes != 0 {
		t.Fatalf("first request: SubBuilds %d (want %d), SubRefreshes %d", m.SubBuilds, st.Subdomains, m.SubRefreshes)
	}

	// Identical values: everything is a hit, nothing is rebuilt.
	_, st, err = s.Solve(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	m = s.Metrics()
	if st.Outcome != OutcomeReuse || m.SubBuilds != int64(st.Subdomains) || m.SubRefreshes != 0 {
		t.Fatalf("reuse request: outcome %v, SubBuilds %d, SubRefreshes %d", st.Outcome, m.SubBuilds, m.SubRefreshes)
	}
	if m.SubReuses != int64(st.Subdomains) {
		t.Fatalf("reuse request: SubReuses %d, want %d", m.SubReuses, st.Subdomains)
	}

	// Same pattern, globally scaled values: numeric-only replay — every
	// subdomain refreshes, none rebuilds. This is the acceptance
	// criterion: per-subdomain Refresh replays numeric-only on
	// same-pattern values, visible in the Metrics counters.
	a2 := a.Clone()
	for i := range a2.Val {
		a2.Val[i] *= 3
	}
	_, st, err = s.Solve(ctx, a2, b)
	if err != nil {
		t.Fatal(err)
	}
	m = s.Metrics()
	if st.Outcome != OutcomeRefresh {
		t.Fatalf("new-values request outcome %v, want refresh", st.Outcome)
	}
	if m.SubBuilds != int64(st.Subdomains) {
		t.Fatalf("new-values request rebuilt subdomains: SubBuilds %d, want %d", m.SubBuilds, st.Subdomains)
	}
	if m.SubRefreshes != int64(st.Subdomains) {
		t.Fatalf("new-values request: SubRefreshes %d, want %d", m.SubRefreshes, st.Subdomains)
	}

	// Localized update: perturb one diagonal entry. Only the subdomains
	// whose overlapped rows see that entry refresh; the rest hit.
	a3 := a2.Clone()
	for q := a3.RowPtr[0]; q < a3.RowPtr[1]; q++ {
		if a3.Col[q] == 0 {
			a3.Val[q] *= 1.5
		}
	}
	before := m.SubRefreshes
	_, st, err = s.Solve(ctx, a3, b)
	if err != nil {
		t.Fatal(err)
	}
	m = s.Metrics()
	touched := m.SubRefreshes - before
	if touched == 0 || touched == int64(st.Subdomains) {
		t.Fatalf("localized update refreshed %d of %d subdomains; want a strict subset", touched, st.Subdomains)
	}
	if m.SubReuses == 0 {
		t.Fatal("localized update produced no subdomain reuses")
	}
}

func TestShardedSubdomainPanicBlastRadius(t *testing.T) {
	// A panicked subdomain refresh retires only that subdomain's entry:
	// the request fails with ErrPanic, and the retry pays exactly one
	// subdomain rebuild while every other subdomain refreshes in place.
	a, b := shardProblem()
	cfg, _ := shardConfig(2)
	// FaultRefresh fires once at the head's value-install gate and once
	// per subdomain refresh; panic on exactly the second call so the
	// injection lands in one subdomain, after the head succeeded.
	var arm atomic.Bool
	var calls atomic.Int64
	cfg.FaultHook = func(p FaultPhase, ctx context.Context) error {
		if p == FaultRefresh && arm.Load() && calls.Add(1) == 2 {
			panic("injected subdomain refresh panic")
		}
		return nil
	}
	s := New(cfg)
	ctx := context.Background()
	if _, _, err := s.Solve(ctx, a, b); err != nil {
		t.Fatal(err)
	}
	subs := int(s.Metrics().SubBuilds)

	a2 := a.Clone()
	for i := range a2.Val {
		a2.Val[i] *= 2
	}
	arm.Store(true)
	_, _, err := s.Solve(ctx, a2, b)
	arm.Store(false)
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("want ErrPanic, got %v", err)
	}
	if !strings.Contains(err.Error(), "subdomain") {
		t.Fatalf("panic error does not name the subdomain: %v", err)
	}
	m := s.Metrics()
	if m.Panics != 1 {
		t.Fatalf("panics counter %d, want 1", m.Panics)
	}

	// Retry with the same values. The head survived (no head rebuild),
	// the panicked subdomain's entry was dropped (exactly one rebuild),
	// and the subdomains that refreshed before the panic reuse.
	_, st, err := s.Solve(ctx, a2, b)
	if err != nil {
		t.Fatal(err)
	}
	m = s.Metrics()
	if m.Builds != 1 {
		t.Fatalf("head was rebuilt after a subdomain panic: Builds %d", m.Builds)
	}
	if got := int(m.SubBuilds) - subs; got != 1 {
		t.Fatalf("retry rebuilt %d subdomains, want exactly the panicked one", got)
	}
	if st.Outcome == OutcomeBuild {
		t.Fatalf("retry outcome %v: head should have survived", st.Outcome)
	}
	// And the result is still bitwise correct.
	x, _, err := s.Solve(ctx, a2, b)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceSharded(t, a2, b, schwarz.Options{Subdomains: cfg.ShardSubdomains, Threads: cfg.Threads}, cfg.Tol, cfg.MaxIter)
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(want[i]) {
			t.Fatalf("post-recovery solution diverges at %d", i)
		}
	}
}

func TestShardedCancellation(t *testing.T) {
	a, b := shardProblem()
	cfg, _ := shardConfig(2)
	s := New(cfg)
	// Canceled before setup: the request fails, the cache is untouched,
	// and a later request builds normally.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Solve(ctx, a, b); err == nil || !isCancellation(err) {
		t.Fatalf("want cancellation, got %v", err)
	}
	if _, st, err := s.Solve(context.Background(), a, b); err != nil || st.Outcome != OutcomeBuild {
		t.Fatalf("post-cancel build failed: %v %+v", err, st)
	}
	// Canceled mid-solve (via the solve-phase fault hook canceling the
	// request's context): no partial solution, cache entry stays warm.
	var cancelNext atomic.Bool
	cfg2, _ := shardConfig(2)
	cfg2.FaultHook = func(p FaultPhase, ctx context.Context) error {
		if p == FaultSolve && cancelNext.Load() {
			if c, ok := ctx.Value(cancelKey{}).(context.CancelFunc); ok {
				c()
			}
		}
		return nil
	}
	s2 := New(cfg2)
	if _, _, err := s2.Solve(context.Background(), a, b); err != nil {
		t.Fatal(err)
	}
	cancelNext.Store(true)
	cctx, ccancel := context.WithCancel(context.Background())
	defer ccancel()
	xs, _, err := s2.Solve(context.WithValue(cctx, cancelKey{}, context.CancelFunc(ccancel)), a, b)
	cancelNext.Store(false)
	if !isCancellation(err) {
		t.Fatalf("want cancellation from mid-solve cancel, got %v", err)
	}
	if xs != nil {
		t.Fatal("canceled sharded solve returned a partial solution")
	}
	// The entry survived the cancellation: same values reuse.
	if _, st, err := s2.Solve(context.Background(), a, b); err != nil || st.Outcome != OutcomeReuse {
		t.Fatalf("cache did not survive cancellation: %v %+v", err, st)
	}
}

type cancelKey struct{}

func TestShardedSubdomainEvictionRebuildsJustThem(t *testing.T) {
	// Evicting subdomain entries (by cache pressure from other traffic)
	// must not invalidate the head: the next sharded request rebuilds
	// only the evicted subdomains and still reuses the head.
	a, b := shardProblem()
	cfg, _ := shardConfig(2)
	cfg.CacheCapacity = 12 // head + 8 subs fit; small traffic evicts some subs
	s := New(cfg)
	ctx := context.Background()
	if _, _, err := s.Solve(ctx, a, b); err != nil {
		t.Fatal(err)
	}
	subs := s.Metrics().SubBuilds
	// Unsharded traffic on distinct small patterns pushes LRU pressure.
	for i := 0; i < 6; i++ {
		g := gen.Laplace2D(5+i, 5)
		sm := gen.DirichletLaplacian(g, 4)
		sb := make([]float64, sm.Rows)
		for j := range sb {
			sb[j] = 1
		}
		if _, _, err := s.Solve(ctx, sm, sb); err != nil {
			t.Fatal(err)
		}
	}
	if s.Metrics().Evictions == 0 {
		t.Fatal("no evictions; test needs more pressure")
	}
	_, st, err := s.Solve(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	rebuilt := m.SubBuilds - subs
	if rebuilt == 0 {
		t.Fatal("expected some evicted subdomains to rebuild")
	}
	if st.Outcome == OutcomeBuild && m.Builds > 1 {
		// The head itself may have been evicted under this much
		// pressure; that is legal, but then all subs rebuild.
		if rebuilt != int64(st.Subdomains) {
			t.Fatalf("rebuilt head with %d of %d subdomain rebuilds", rebuilt, st.Subdomains)
		}
	}
	// Either way the solution still matches the reference bitwise.
	x, _, err := s.Solve(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceSharded(t, a, b, schwarz.Options{Subdomains: cfg.ShardSubdomains, Threads: cfg.Threads}, cfg.Tol, cfg.MaxIter)
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(want[i]) {
			t.Fatalf("post-eviction solution diverges at %d", i)
		}
	}
}

func TestShardedRoutingThreshold(t *testing.T) {
	// Requests below the threshold keep taking the single-hierarchy
	// path even when sharding is enabled.
	cfg, _ := shardConfig(2)
	cfg.ShardThreshold = 100000
	s := New(cfg)
	a, b := shardProblem()
	_, st, err := s.Solve(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sharded || s.Metrics().ShardedRequests != 0 {
		t.Fatalf("sub-threshold request took the sharded path: %+v", st)
	}
}
