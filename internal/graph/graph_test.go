package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a deterministic random graph for property tests.
func randomGraph(n, m int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}
	return FromEdges(n, edges)
}

func pathGraph(n int) *CSR {
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{U: int32(i), V: int32(i + 1)})
	}
	return FromEdges(n, edges)
}

func TestFromEdgesBasic(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 1}, {1, 0}, {2, 2}, {-1, 0}, {0, 9}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 4 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() != 6 { // 3 undirected edges stored twice
		t.Fatalf("NumEdges = %d, want 6", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) || g.HasEdge(2, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatal("Degree wrong")
	}
}

func TestFromEdgesEmpty(t *testing.T) {
	g := FromEdges(0, nil)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g = FromEdges(5, nil)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 || g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatal("empty graph stats wrong")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *CSR { return FromEdges(3, []Edge{{0, 1}, {1, 2}}) }

	g := fresh()
	g.RowPtr[0] = 1
	if g.Validate() == nil {
		t.Fatal("bad RowPtr[0] not caught")
	}

	g = fresh()
	g.Col[0] = 5
	if g.Validate() == nil {
		t.Fatal("out-of-range column not caught")
	}

	g = fresh()
	g.Col[0] = 0 // self loop at row 0
	if g.Validate() == nil {
		t.Fatal("self-loop not caught")
	}

	g = fresh()
	g.RowPtr = g.RowPtr[:2]
	if g.Validate() == nil {
		t.Fatal("short RowPtr not caught")
	}

	// Asymmetric: craft by hand.
	bad := &CSR{N: 2, RowPtr: []int{0, 1, 1}, Col: []int32{1}}
	if bad.Validate() == nil {
		t.Fatal("asymmetry not caught")
	}
}

func TestDegreeStats(t *testing.T) {
	g := pathGraph(5)
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 8.0/5.0 {
		t.Fatalf("AvgDegree = %f", got)
	}
}

func TestSquareAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%25)
		g := randomGraph(n, 2*n, seed)
		sq := g.Square()
		if err := sq.Validate(); err != nil {
			return false
		}
		for u := int32(0); int(u) < n; u++ {
			for v := int32(0); int(v) < n; v++ {
				if u == v {
					continue
				}
				want := g.DistanceLeq2(u, v)
				if got := sq.HasEdge(u, v); got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSquareOfPath(t *testing.T) {
	g := pathGraph(5)
	sq := g.Square()
	// In the square of a path, vertex 2 is adjacent to 0,1,3,4.
	if sq.Degree(2) != 4 {
		t.Fatalf("square degree of middle vertex = %d, want 4", sq.Degree(2))
	}
	if sq.Degree(0) != 2 {
		t.Fatalf("square degree of endpoint = %d, want 2", sq.Degree(0))
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := pathGraph(6)
	keep := []bool{true, true, false, true, true, true}
	sub, toSub, toOrig := g.InducedSubgraph(keep)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.N != 5 {
		t.Fatalf("sub.N = %d", sub.N)
	}
	if toSub[2] != -1 {
		t.Fatal("dropped vertex must map to -1")
	}
	// Edge 0-1 survives; edges through 2 are gone; 3-4, 4-5 survive.
	if !sub.HasEdge(toSub[0], toSub[1]) || !sub.HasEdge(toSub[3], toSub[4]) || !sub.HasEdge(toSub[4], toSub[5]) {
		t.Fatal("expected edges missing in subgraph")
	}
	if sub.HasEdge(toSub[1], toSub[3]) {
		t.Fatal("phantom edge in subgraph")
	}
	for s, v := range toOrig {
		if toSub[v] != int32(s) {
			t.Fatal("toSub/toOrig not inverse")
		}
	}
}

func TestInducedSubgraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 4 + int(uint64(seed)%30)
		g := randomGraph(n, 3*n, seed)
		keep := make([]bool, n)
		for i := range keep {
			keep[i] = (uint64(seed)>>(uint(i)%48))&1 == 0
		}
		sub, toSub, toOrig := g.InducedSubgraph(keep)
		if sub.Validate() != nil {
			return false
		}
		// Every subgraph edge corresponds to an original edge.
		for s := int32(0); int(s) < sub.N; s++ {
			for _, w := range sub.Neighbors(s) {
				if !g.HasEdge(toOrig[s], toOrig[w]) {
					return false
				}
			}
		}
		// Every original edge between kept vertices appears.
		for u := int32(0); int(u) < n; u++ {
			if !keep[u] {
				continue
			}
			for _, w := range g.Neighbors(u) {
				if keep[w] && !sub.HasEdge(toSub[u], toSub[w]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceLeq2(t *testing.T) {
	g := pathGraph(6)
	cases := []struct {
		u, v int32
		want bool
	}{
		{0, 0, true}, {0, 1, true}, {0, 2, true}, {0, 3, false}, {2, 4, true}, {1, 5, false},
	}
	for _, c := range cases {
		if got := g.DistanceLeq2(c.u, c.v); got != c.want {
			t.Fatalf("DistanceLeq2(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(7, []Edge{{0, 1}, {1, 2}, {3, 4}})
	label, num := g.ConnectedComponents()
	if num != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("components = %d, want 4", num)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatal("0,1,2 must share a component")
	}
	if label[3] != label[4] || label[3] == label[0] {
		t.Fatal("3,4 must share a separate component")
	}
	if label[5] == label[6] {
		t.Fatal("isolated vertices must be separate components")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := randomGraph(50, 400, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); int(v) < g.N; v++ {
		adj := g.Neighbors(v)
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				t.Fatalf("row %d not strictly sorted", v)
			}
		}
	}
}
