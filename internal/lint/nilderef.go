package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilDeref is the nilness-adjacent pass (stdlib reimplementation: the
// SSA-based x/tools nilness analyzer is not vendorable offline). It
// catches the high-confidence intra-procedural subset: inside the taken
// branch of `if x == nil`, x is known nil, so dereferencing it —
// selecting a field through the pointer, *x, indexing a nil slice,
// writing to a nil map, or calling a nil func — is a guaranteed panic.
// Flagging stops at any reassignment of x inside the branch and does
// not descend into func literals (they run later, possibly after x is
// rebound).
var NilDeref = &Analyzer{
	Name: "nilderef",
	Doc:  "check for dereferences of variables proven nil by the enclosing if",
	Run:  runNilDeref,
}

func runNilDeref(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj := nilCheckedObj(pass, ifs.Cond)
			if obj != nil {
				checkNilUses(pass, ifs.Body, obj)
			}
			return true
		})
	}
	return nil
}

// nilCheckedObj returns the object of x when cond is `x == nil` (either
// operand order) for a nillable x, else nil.
func nilCheckedObj(pass *Pass, cond ast.Expr) types.Object {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	x := be.X
	if isUntypedNil(pass.TypesInfo, be.X) {
		x = be.Y
	} else if !isUntypedNil(pass.TypesInfo, be.Y) {
		return nil
	}
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Slice, *types.Map:
		return obj
	}
	return nil
}

// checkNilUses walks the taken branch in source order, flagging
// dereferences of obj until it is reassigned.
func checkNilUses(pass *Pass, body *ast.BlockStmt, obj types.Object) {
	killed := false
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if killed {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			// Flag nil-map writes on the LHS before considering kills.
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && usesObj(ix.X) {
					if _, isMap := obj.Type().Underlying().(*types.Map); isMap {
						pass.Reportf(ix.Pos(), "write to %s, which is nil on this path", obj.Name())
					}
				}
			}
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && (pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj) {
					killed = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && usesObj(n.X) {
				killed = true // address taken: aliasing defeats the proof
			}
		case *ast.StarExpr:
			if usesObj(n.X) {
				pass.Reportf(n.Pos(), "dereference of %s, which is nil on this path", obj.Name())
			}
		case *ast.SelectorExpr:
			if !usesObj(n.X) {
				return true
			}
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
				return true
			}
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				pass.Reportf(n.Pos(), "field access through %s, which is nil on this path", obj.Name())
			}
		case *ast.IndexExpr:
			if usesObj(n.X) {
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					pass.Reportf(n.Pos(), "index of %s, which is nil (length 0) on this path", obj.Name())
				}
			}
		case *ast.CallExpr:
			if usesObj(n.Fun) {
				if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
					pass.Reportf(n.Pos(), "call of %s, which is nil on this path", obj.Name())
				}
			}
		}
		return true
	})
}
