package amg

import (
	"math"
	"testing"

	"mis2go/internal/gen"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
)

func TestMaxLevelsRespected(t *testing.T) {
	a, _ := laplaceProblem(14, 14, 14)
	h, err := Build(a, Options{MaxLevels: 2, MinCoarseSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 2 {
		t.Fatalf("levels = %d, want 2", h.NumLevels())
	}
	// The coarse level is solved directly even though it is large.
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	st, err := krylov.CG(par.New(0), a, b, x, 1e-10, 200, h)
	if err != nil || !st.Converged {
		t.Fatalf("2-level AMG failed: %v %+v", err, st)
	}
}

func TestVCycleIterationCountGridIndependentish(t *testing.T) {
	// The AMG selling point: iteration counts grow slowly with problem
	// size (unlike plain CG's sqrt(kappa) growth).
	iters := func(side int) int {
		g := gen.Laplace3D(side, side, side)
		a := gen.DirichletLaplacian(g, 6)
		h, err := Build(a, Options{MinCoarseSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = math.Sin(0.01 * float64(i))
		}
		x := make([]float64, a.Rows)
		st, err := krylov.CG(par.New(0), a, b, x, 1e-10, 500, h)
		if err != nil {
			t.Fatal(err)
		}
		return st.Iterations
	}
	small, big := iters(8), iters(20)
	if big > 3*small+5 {
		t.Fatalf("iterations grew %d -> %d; not grid independent", small, big)
	}
}

func TestElasticityProblem(t *testing.T) {
	// Multi-dof FEM-structured matrix exercises block aggregation.
	g := gen.Elasticity3D(5, 5, 5, 3)
	a := gen.DirichletLaplacian(g, float64(g.MaxDegree()+1))
	h, err := Build(a, Options{MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x := make([]float64, a.Rows)
	st, err := krylov.CG(par.New(0), a, b, x, 1e-10, 500, h)
	if err != nil || !st.Converged {
		t.Fatalf("elasticity AMG failed: %v %+v", err, st)
	}
}

func TestPreconditionIsLinearish(t *testing.T) {
	// One V-cycle from zero guess is a fixed linear operator:
	// M(alpha r) = alpha M(r).
	a, _ := laplaceProblem(8, 8, 8)
	h, err := Build(a, Options{MinCoarseSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	r := make([]float64, n)
	for i := range r {
		r[i] = math.Cos(0.1 * float64(i))
	}
	z1 := make([]float64, n)
	h.Precondition(r, z1)
	r2 := make([]float64, n)
	for i := range r2 {
		r2[i] = 3 * r[i]
	}
	z2 := make([]float64, n)
	h.Precondition(r2, z2)
	for i := range z1 {
		if math.Abs(z2[i]-3*z1[i]) > 1e-10*(1+math.Abs(z1[i])) {
			t.Fatalf("V-cycle not linear at %d: %g vs %g", i, z2[i], 3*z1[i])
		}
	}
}

func TestSpectralRadiusEstimateSane(t *testing.T) {
	// For the 7-point Dirichlet Laplacian, rho(D^{-1}A) is close to 2.
	g := gen.Laplace3D(10, 10, 10)
	a := gen.DirichletLaplacian(g, 6)
	dinv := make([]float64, a.Rows)
	for i, d := range a.Diagonal() {
		dinv[i] = 1 / d
	}
	rho := estimateSpectralRadius(par.New(0), a, dinv, 30, make([]float64, a.Rows), make([]float64, a.Rows))
	if rho < 1.2 || rho > 2.2 {
		t.Fatalf("rho estimate %f outside (1.2, 2.2)", rho)
	}
}

func TestSolveStationaryConverges(t *testing.T) {
	a, b := laplaceProblem(9, 9, 9)
	h, err := Build(a, Options{MinCoarseSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	iters, rel := h.Solve(b, x, 1e-8, 100)
	if rel >= 1e-8 {
		t.Fatalf("stationary V-cycles stalled: rel %g after %d", rel, iters)
	}
}

func TestSGSSmoothers(t *testing.T) {
	a, b := laplaceProblem(10, 10, 10)
	rt := par.New(0)
	itersJacobi := 0
	for _, sm := range []Smoother{SmootherJacobi, SmootherPointSGS, SmootherClusterSGS} {
		h, err := Build(a, Options{MinCoarseSize: 60, Smoother: sm, PreSweeps: 1, PostSweeps: 1})
		if err != nil {
			t.Fatalf("smoother %d: %v", sm, err)
		}
		x := make([]float64, a.Rows)
		st, err := krylov.CG(rt, a, b, x, 1e-10, 400, h)
		if err != nil || !st.Converged {
			t.Fatalf("smoother %d failed: %v %+v", sm, err, st)
		}
		if sm == SmootherJacobi {
			itersJacobi = st.Iterations
		} else if st.Iterations > itersJacobi+10 {
			// SGS smoothing is at least as strong as 1-sweep Jacobi.
			t.Fatalf("smoother %d iterations %d much worse than Jacobi %d", sm, st.Iterations, itersJacobi)
		}
	}
}

func TestSGSSmootherDeterministic(t *testing.T) {
	a, b := laplaceProblem(8, 8, 8)
	run := func(threads int) []float64 {
		h, err := Build(a, Options{MinCoarseSize: 50, Smoother: SmootherClusterSGS, Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		z := make([]float64, a.Rows)
		h.Precondition(b, z)
		return z
	}
	z1, z8 := run(1), run(8)
	for i := range z1 {
		if z1[i] != z8[i] {
			t.Fatalf("cluster SGS smoothing nondeterministic at %d", i)
		}
	}
}

func TestJacobiDampingOption(t *testing.T) {
	a, b := laplaceProblem(8, 8, 8)
	for _, damping := range []float64{0.5, 2.0 / 3.0, 0.9} {
		h, err := Build(a, Options{MinCoarseSize: 60, JacobiDamping: damping})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows)
		st, err := krylov.CG(par.New(0), a, b, x, 1e-8, 300, h)
		if err != nil || !st.Converged {
			t.Fatalf("damping %.2f failed: %v %+v", damping, err, st)
		}
	}
}

func TestOperatorComplexityMonotoneInDepth(t *testing.T) {
	a, _ := laplaceProblem(12, 12, 12)
	h2, err := Build(a, Options{MaxLevels: 2, MinCoarseSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	h4, err := Build(a, Options{MaxLevels: 6, MinCoarseSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if h4.OperatorComplexity() < h2.OperatorComplexity() {
		t.Fatalf("complexity decreased with depth: %.3f vs %.3f",
			h4.OperatorComplexity(), h2.OperatorComplexity())
	}
	if h2.OperatorComplexity() < 1 {
		t.Fatal("complexity below 1")
	}
}
