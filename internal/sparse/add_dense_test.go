package sparse

import (
	"strings"
	"testing"

	"mis2go/internal/par"
)

// unsortedRowMatrix builds a small matrix whose middle row is unsorted
// and whose last row holds a duplicate column — both violations of the
// Validate row invariant that Add must repair on output.
func unsortedRowMatrix() *Matrix {
	return &Matrix{
		Rows: 3, Cols: 4,
		RowPtr: []int{0, 2, 5, 7},
		Col:    []int32{0, 2, 3, 1, 0, 2, 2},
		Val:    []float64{1, 2, 3, 4, 5, 6, 7},
	}
}

func TestAddValidateRoundTrip(t *testing.T) {
	rt := par.New(1)
	_ = rt
	// Sorted inputs: merge fast path.
	a := randomMatrix(60, 40, 0.1, 41)
	b := randomMatrix(60, 40, 0.12, 42)
	c, err := Add(a, b, -2.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Add of sorted inputs fails Validate: %v", err)
	}
	da, db, dc := toDenseSlice(a), toDenseSlice(b), toDenseSlice(c)
	for i := range dc {
		if want := da[i] + -2.5*db[i]; dc[i] != want {
			t.Fatalf("Add entry %d = %v, want %v", i, dc[i], want)
		}
	}
	// Scale preserves validity (round trip through Validate).
	c.Scale(0.5)
	if err := c.Validate(); err != nil {
		t.Fatalf("Scale broke Validate: %v", err)
	}
}

func TestAddSortsUnsortedInputRows(t *testing.T) {
	u := unsortedRowMatrix()
	s := &Matrix{
		Rows: 3, Cols: 4,
		RowPtr: []int{0, 1, 3, 4},
		Col:    []int32{1, 0, 3, 0},
		Val:    []float64{10, 20, 30, 40},
	}
	// denseAccum sums duplicate entries (the CSR convention Add follows),
	// unlike toDenseSlice which overwrites.
	denseAccum := func(m *Matrix) []float64 {
		d := make([]float64, m.Rows*m.Cols)
		for i := 0; i < m.Rows; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				d[i*m.Cols+int(m.Col[p])] += m.Val[p]
			}
		}
		return d
	}
	for _, tc := range []struct {
		name string
		x, y *Matrix
	}{
		{"unsorted+sorted", u, s},
		{"sorted+unsorted", s, u},
		{"unsorted+unsorted", u, u},
	} {
		c, err := Add(tc.x, tc.y, 2)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: Add output fails Validate: %v", tc.name, err)
		}
		dx, dy, dc := denseAccum(tc.x), denseAccum(tc.y), denseAccum(c)
		for i := range dc {
			if want := dx[i] + 2*dy[i]; dc[i] != want {
				t.Fatalf("%s: entry %d = %v, want %v", tc.name, i, dc[i], want)
			}
		}
	}
}

func TestAddDimensionMismatch(t *testing.T) {
	a := randomMatrix(5, 5, 0.5, 1)
	b := randomMatrix(5, 6, 0.5, 1)
	if _, err := Add(a, b, 1); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
}

func TestDenseOrderBound(t *testing.T) {
	if _, err := NewDense(MaxDenseN + 1); err == nil {
		t.Fatal("NewDense above MaxDenseN not rejected")
	} else if !strings.Contains(err.Error(), "MaxDenseN") {
		t.Fatalf("NewDense error not descriptive: %v", err)
	}
	if _, err := NewDense(-1); err == nil {
		t.Fatal("negative order not rejected")
	}
	// ToDense of an oversized square pattern must error instead of
	// attempting the n^2 allocation. An empty CSR keeps the test cheap.
	n := MaxDenseN + 1
	a := &Matrix{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	if _, err := a.ToDense(); err == nil {
		t.Fatal("oversized ToDense not rejected")
	}
	// A hand-constructed oversized Dense must be rejected by Factorize
	// before any pivot work.
	d := &Dense{N: n}
	if err := d.Factorize(); err == nil {
		t.Fatal("oversized Factorize not rejected")
	}
}

func TestDenseFillFromReuse(t *testing.T) {
	// a + 25*I is diagonally dominant, so the factorization exists.
	a, err := Add(randomMatrix(20, 20, 0.3, 50), Identity(20), 25)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDense(a.Rows)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if err := want.Factorize(); err != nil {
		t.Fatal(err)
	}
	// Two fill+factorize rounds through the same storage must reproduce
	// the one-shot factorization bitwise.
	for round := 0; round < 2; round++ {
		if err := d.FillFrom(a); err != nil {
			t.Fatal(err)
		}
		if err := d.Factorize(); err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if d.Data[i] != want.Data[i] {
				t.Fatalf("round %d: factor entry %d = %v, want %v", round, i, d.Data[i], want.Data[i])
			}
		}
	}
	if err := d.FillFrom(randomMatrix(21, 21, 0.3, 51)); err == nil {
		t.Fatal("FillFrom with mismatched order not rejected")
	}
}
